package xpath

// Benchmarks backing EXPERIMENTS.md: one benchmark family per reproduced
// artifact (see DESIGN.md §2 for the experiment index). Custom metrics:
// "cells" is the number of context-value table cells written (the space
// quantity bounded by Theorems 7 and 10), "contexts" the number of
// single-context evaluations.
//
// Run:  go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"repro/internal/axes"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func benchEval(b *testing.B, eng engine.Engine, src string, doc *xmltree.Document) {
	b.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		b.Fatalf("compile %q: %v", src, err)
	}
	ctx := engine.RootContext(doc)
	var cells, contexts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := eng.Evaluate(q, doc, ctx)
		if err != nil {
			b.Fatalf("%s: %v", eng.Name(), err)
		}
		cells, contexts = st.TableCells, st.ContextsEvaluated
	}
	b.ReportMetric(float64(cells), "cells")
	b.ReportMetric(float64(contexts), "contexts")
}

func public(e Engine) engine.Engine { return e.impl() }

// BenchmarkE5Doubling — §1/[11]: exponential blowup of the naive strategy
// on the doubling-query family vs. flat polynomial engines.
func BenchmarkE5Doubling(b *testing.B) {
	doc := workload.Doubling()
	for _, i := range []int{4, 8, 12, 16} {
		src := workload.DoublingQuery(i)
		for _, eng := range []Engine{EngineNaive, EngineTopDown, EngineMinContext, EngineOptMinContext} {
			b.Run(fmt.Sprintf("i=%d/%s", i, eng), func(b *testing.B) {
				benchEval(b, public(eng), src, doc)
			})
		}
	}
}

// BenchmarkE6PositionHeavy — Theorem 7 time: the §2.4 query across |D|.
func BenchmarkE6PositionHeavy(b *testing.B) {
	src := workload.PositionHeavy()
	for _, n := range []int{50, 100, 200, 400} {
		doc := workload.Scaled(n)
		for _, eng := range []Engine{EngineTopDown, EngineMinContext, EngineOptMinContext} {
			b.Run(fmt.Sprintf("D=%d/%s", n, eng), func(b *testing.B) {
				benchEval(b, public(eng), src, doc)
			})
		}
	}
}

// BenchmarkE7SpaceCells — Theorem 7 space: table cells across engines
// (reported via the "cells" metric; E↑ grows ≈|D|³).
func BenchmarkE7SpaceCells(b *testing.B) {
	src := workload.PositionHeavy()
	for _, n := range []int{20, 40, 80} {
		doc := workload.Scaled(n)
		for _, eng := range []Engine{EngineBottomUp, EngineTopDown, EngineMinContext, EngineOptMinContext} {
			b.Run(fmt.Sprintf("D=%d/%s", n, eng), func(b *testing.B) {
				benchEval(b, public(eng), src, doc)
			})
		}
	}
}

// BenchmarkE8Wadler — Theorem 10: Extended Wadler queries, OPTMINCONTEXT
// vs. plain MINCONTEXT.
func BenchmarkE8Wadler(b *testing.B) {
	for qi, src := range workload.WadlerQueries() {
		for _, n := range []int{100, 200, 400} {
			doc := workload.Scaled(n)
			for _, eng := range []Engine{EngineOptMinContext, EngineMinContext} {
				b.Run(fmt.Sprintf("q%d/D=%d/%s", qi+1, n, eng), func(b *testing.B) {
					benchEval(b, public(eng), src, doc)
				})
			}
		}
	}
}

// BenchmarkE9CoreXPath — Theorem 13: Core XPath queries, the dedicated
// linear engine vs. OPTMINCONTEXT (which must match its growth) vs.
// MINCONTEXT.
func BenchmarkE9CoreXPath(b *testing.B) {
	for qi, src := range workload.CoreQueries() {
		for _, n := range []int{100, 200, 400} {
			doc := workload.Scaled(n)
			for _, eng := range []Engine{EngineCoreXPath, EngineOptMinContext, EngineMinContext} {
				b.Run(fmt.Sprintf("q%d/D=%d/%s", qi+1, n, eng), func(b *testing.B) {
					benchEval(b, public(eng), src, doc)
				})
			}
		}
	}
}

// BenchmarkE10Mixed — Corollary 11: a Wadler subexpression inside a
// full-XPath query still gets the bottom-up treatment.
func BenchmarkE10Mixed(b *testing.B) {
	src := workload.MixedQuery()
	for _, n := range []int{100, 200, 400} {
		doc := workload.Scaled(n)
		for _, eng := range []Engine{EngineOptMinContext, EngineMinContext} {
			b.Run(fmt.Sprintf("D=%d/%s", n, eng), func(b *testing.B) {
				benchEval(b, public(eng), src, doc)
			})
		}
	}
}

// BenchmarkE11AblationRelev — §3.1 ablation: relevant-context restriction
// on vs. off.
func BenchmarkE11AblationRelev(b *testing.B) {
	src := workload.PositionHeavy()
	for _, n := range []int{40, 80} {
		doc := workload.Scaled(n)
		b.Run(fmt.Sprintf("D=%d/relev-on", n), func(b *testing.B) {
			benchEval(b, core.NewMinContext(), src, doc)
		})
		b.Run(fmt.Sprintf("D=%d/relev-off", n), func(b *testing.B) {
			benchEval(b, core.NewMinContextWith(core.Options{DisableRelev: true}), src, doc)
		})
	}
}

// BenchmarkE12AblationOutermost — §3.1 ablation: outermost paths as sets
// vs. as dom×2^dom relations.
func BenchmarkE12AblationOutermost(b *testing.B) {
	src := `/descendant::b/child::c[. = 100]/following-sibling::*`
	for _, n := range []int{100, 400} {
		doc := workload.Scaled(n)
		b.Run(fmt.Sprintf("D=%d/set", n), func(b *testing.B) {
			benchEval(b, core.NewMinContext(), src, doc)
		})
		b.Run(fmt.Sprintf("D=%d/relation", n), func(b *testing.B) {
			benchEval(b, core.NewMinContextWith(core.Options{DisableOutermostSet: true}), src, doc)
		})
	}
}

// BenchmarkE14CompiledVsInterpreted — compiled plans vs. interpretation on
// repeated workload traffic: the same precompiled query evaluated over and
// over, the serving scenario the plan cache targets. Compiled evaluation
// must beat OPTMINCONTEXT wall-clock on the Core XPath workload queries.
func BenchmarkE14CompiledVsInterpreted(b *testing.B) {
	queries := map[string]string{
		"core1":    workload.CoreQueries()[0],
		"core4":    workload.CoreQueries()[3],
		"wadler1":  workload.WadlerQueries()[0],
		"position": workload.PositionHeavy(),
	}
	for _, n := range []int{100, 400} {
		doc := workload.Scaled(n)
		for qname, src := range queries {
			for _, eng := range []Engine{EngineCompiled, EngineOptMinContext} {
				b.Run(fmt.Sprintf("%s/D=%d/%s", qname, n, eng), func(b *testing.B) {
					benchEval(b, public(eng), src, doc)
				})
			}
		}
	}
}

// BenchmarkCompileCached measures the source-keyed query cache against cold
// compilation (parse + normalize + analyze + plan per call).
func BenchmarkCompileCached(b *testing.B) {
	src := workload.PositionHeavy()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Compile(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := CompileCached(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubstrates measures the building blocks: XML parsing, axis
// functions, and query compilation.
func BenchmarkSubstrates(b *testing.B) {
	b.Run("parse-xml-1k", func(b *testing.B) {
		xml := workload.Scaled(1000).XMLString()
		b.SetBytes(int64(len(xml)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := xmltree.ParseString(xml); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := syntax.Compile(workload.PositionHeavy()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAxisFunctions measures the O(|D|) axis functions of Definition 1
// on a nested document, one sub-benchmark per axis, with |X| = |D|/8.
func BenchmarkAxisFunctions(b *testing.B) {
	doc := workload.Nested(2000)
	x := xmltree.NewSet(doc)
	for i := 0; i < doc.NumNodes(); i += 8 {
		x.AddPre(i)
	}
	for _, ax := range axes.All() {
		b.Run(ax.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				axes.Apply(ax, x)
			}
		})
	}
	b.Run("inverse-id", func(b *testing.B) {
		small := workload.Nested(200)
		y := small.AllElements()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			axes.ApplyInverse(axes.ID, y)
		}
	})
}

// BenchmarkSetOps measures the bitset node-set algebra the axis functions
// are built on.
func BenchmarkSetOps(b *testing.B) {
	doc := workload.Nested(5000)
	s1, s2 := xmltree.NewSet(doc), xmltree.NewSet(doc)
	for i := 0; i < doc.NumNodes(); i += 2 {
		s1.AddPre(i)
	}
	for i := 0; i < doc.NumNodes(); i += 3 {
		s2.AddPre(i)
	}
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s1.Union(s2)
		}
	})
	b.Run("intersect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s1.Intersect(s2)
		}
	})
	b.Run("iterate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			s1.ForEach(func(*xmltree.Node) { n++ })
		}
	})
}
