package xpath

// Public-API tests for the compiled engine: engine selection, the
// source-keyed query cache, and the plan disassembly surface.

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestEngineCompiledSelectable: the compiled engine resolves by name and
// participates in Engines().
func TestEngineCompiledSelectable(t *testing.T) {
	e, ok := EngineByName("compiled")
	if !ok || e != EngineCompiled {
		t.Fatalf("EngineByName(compiled) = %v, %v", e, ok)
	}
	found := false
	for _, have := range Engines() {
		if have == EngineCompiled {
			found = true
		}
	}
	if !found {
		t.Error("EngineCompiled missing from Engines()")
	}
}

// TestCompileCached: cache hits return queries that evaluate identically to
// cold compiles, on every engine.
func TestCompileCached(t *testing.T) {
	doc := WrapTree(workload.Scaled(60))
	src := `/descendant::b[child::d]/child::c[position() = last()]`
	cold := MustCompile(src)
	q1, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Internal() != q2.Internal() {
		t.Error("CompileCached did not reuse the cached compilation")
	}
	for _, eng := range []Engine{EngineCompiled, EngineOptMinContext} {
		want, err := cold.EvaluateWith(doc, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		got, err := q1.EvaluateWith(doc, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if ids(want.Nodes()) != ids(got.Nodes()) {
			t.Errorf("%v: cached %s != cold %s", eng, ids(got.Nodes()), ids(want.Nodes()))
		}
	}
	if _, err := CompileCached(`//a[`); err == nil {
		t.Error("invalid query must fail through the cache too")
	}
}

// TestExplainPlan: the disassembly surfaces the instruction listing.
func TestExplainPlan(t *testing.T) {
	out := MustCompile(`/descendant::b[child::d]/child::c[2]`).ExplainPlan()
	for _, want := range []string{"plan:", "(main)", "stepinv", "stepsel", "return"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainPlan missing %q:\n%s", want, out)
		}
	}
}

// TestCompiledContextOptions: explicit context node/position/size flow into
// the compiled program's outer frame.
func TestCompiledContextOptions(t *testing.T) {
	doc := figure2Doc(t)
	q := MustCompile(`position() + last()`)
	res, err := q.EvaluateWith(doc, Options{Engine: EngineCompiled, Position: 2, Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Number() != 7 {
		t.Errorf("position()+last() = %v, want 7", res.Number())
	}
	q2 := MustCompile(`child::c`)
	res2, err := q2.EvaluateWith(doc, Options{Engine: EngineCompiled, ContextNode: doc.ByID("11")})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(res2.Nodes()); got != "x12 x13" {
		t.Errorf("child::c from x11 = {%s}", got)
	}
}
