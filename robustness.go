package xpath

import (
	"repro/internal/budget"
	"repro/internal/engine"
)

// This file is the public robustness surface: evaluation budgets
// (cooperative cancellation, deadlines, step fuel, result-cardinality caps),
// the structured error taxonomy, and the recovered-panic error type. The
// alias pattern mirrors observability.go: the internal packages stay the
// single implementation, the root package re-exports the vocabulary.

// Budget bounds one evaluation cooperatively; see NewBudget and
// Options.Budget. A Budget is safe for concurrent use — Cancel may be called
// from any goroutine while an evaluation runs — and trips at most once: the
// first cause (cancellation, deadline, exhaustion) wins and every later
// check observes it.
type Budget = budget.Budget

// BudgetLimits configures a Budget: a wall-clock deadline, a cooperative
// step (fuel) limit, and a result-cardinality cap. Zero fields impose no
// corresponding limit, so BudgetLimits{} yields a pure cancellation token.
type BudgetLimits = budget.Limits

// NewBudget returns a Budget enforcing the given limits, with any deadline
// armed immediately.
func NewBudget(l BudgetLimits) *Budget { return budget.New(l) }

// The evaluation error taxonomy. All three are sentinel values, comparable
// with errors.Is.
var (
	// ErrCanceled reports a cooperative cancellation: Budget.Cancel was
	// called (client disconnect, sibling-worker failure, shutdown) or
	// Options.Context was canceled.
	ErrCanceled = budget.ErrCanceled
	// ErrDeadlineExceeded reports an expired BudgetLimits.Deadline.
	ErrDeadlineExceeded = budget.ErrDeadlineExceeded
	// ErrBudgetExceeded reports exhausted step fuel or a node-set result
	// larger than BudgetLimits.MaxResultCard.
	ErrBudgetExceeded = budget.ErrBudgetExceeded
)

// EvalPanicError is a panic recovered at an evaluation boundary: every
// evaluation entry point (EvaluateWith, the store fan-outs, the HTTP
// server's workers) converts an engine panic into this error — with the
// panicking goroutine's stack captured and the engine.panics metric
// incremented — instead of crashing the process.
type EvalPanicError = engine.EvalPanicError
