package xpath

// A conformance suite for XPath 1.0 semantics, asserted against every
// engine. Each case pins down one behavior of the REC (and of the paper's
// Figure 1 effective semantics): axis direction and ordering, predicate
// positions, implicit conversions, comparison semantics across the sixteen
// type pairings, core-function edge cases, and document-order results.

import (
	"math"
	"strings"
	"testing"
)

// semDoc is a document with enough structure to exercise every axis:
//
//	r
//	└── s1 ── t1 "1", t2 "2", u1 ── v1 "x", v2 "3"
//	└── s2 ── t3 "2", u2 ── w1 "" (empty)
//	└── s3 (empty)
const semXML = `<r id="r">` +
	`<s id="s1"><t id="t1">1</t><t id="t2">2</t><u id="u1"><v id="v1">x</v><v id="v2">3</v></u></s>` +
	`<s id="s2"><t id="t3">2</t><u id="u2"><w id="w1"></w></u></s>` +
	`<s id="s3"></s>` +
	`</r>`

type semCase struct {
	name    string
	query   string
	context string // id of context node, "" = root
	// exactly one of the following is set
	nodes *string // expected ids, space-separated ("" = empty set)
	num   *float64
	str   *string
	boolv *bool
}

func nodesWant(ids string) *string { return &ids }
func numWant(v float64) *float64   { return &v }
func strWant(s string) *string     { return &s }
func boolWant(b bool) *bool        { return &b }

func semCases() []semCase {
	return []semCase{
		// ---- Axes ----
		{name: "child", query: `/r/s`, nodes: nodesWant("s1 s2 s3")},
		{name: "descendant order", query: `//v`, nodes: nodesWant("v1 v2")},
		{name: "descendant-or-self", query: `//u/descendant-or-self::u`, nodes: nodesWant("u1 u2")},
		{name: "parent", query: `//v/..`, nodes: nodesWant("u1")},
		{name: "ancestor", query: `ancestor::*`, context: "v1", nodes: nodesWant("r s1 u1")},
		{name: "ancestor-or-self", query: `ancestor-or-self::u`, context: "v1", nodes: nodesWant("u1")},
		{name: "following", query: `following::*`, context: "u1", nodes: nodesWant("s2 t3 u2 w1 s3")},
		{name: "preceding", query: `preceding::*`, context: "s2", nodes: nodesWant("s1 t1 t2 u1 v1 v2")},
		{name: "preceding excludes ancestors", query: `preceding::*`, context: "v2", nodes: nodesWant("t1 t2 v1")},
		{name: "following-sibling", query: `following-sibling::*`, context: "t1", nodes: nodesWant("t2 u1")},
		{name: "preceding-sibling", query: `preceding-sibling::*`, context: "u1", nodes: nodesWant("t1 t2")},
		{name: "self star", query: `self::*`, context: "t2", nodes: nodesWant("t2")},
		{name: "self name mismatch", query: `self::u`, context: "t2", nodes: nodesWant("")},
		{name: "root node only via node()", query: `/self::node()/r`, nodes: nodesWant("r")},

		// ---- Predicates and positions ----
		{name: "numeric predicate", query: `/r/s[2]`, nodes: nodesWant("s2")},
		{name: "last()", query: `/r/s[last()]`, nodes: nodesWant("s3")},
		{name: "position on reverse axis", query: `preceding-sibling::*[1]`, context: "u1", nodes: nodesWant("t2")},
		{name: "position on reverse axis 2", query: `ancestor::*[2]`, context: "v1", nodes: nodesWant("s1")},
		{name: "successive predicates", query: `/r/s/*[position()>1][position()=1]`, nodes: nodesWant("t2 u2")},
		{name: "predicate on step not path", query: `//t[1]`, nodes: nodesWant("t1 t3")},
		{name: "filter-path predicate", query: `(//t)[1]`, nodes: nodesWant("t1")},
		{name: "filter-path last", query: `(//t)[last()]`, nodes: nodesWant("t3")},
		{name: "boolean predicate", query: `/r/s[u]`, nodes: nodesWant("s1 s2")},
		{name: "string predicate truth", query: `/r/s["nonempty"]`, nodes: nodesWant("s1 s2 s3")},
		{name: "nested positional", query: `/r/s[t[2]]`, nodes: nodesWant("s1")},
		{name: "predicate arith position", query: `/r/s[position() mod 2 = 1]`, nodes: nodesWant("s1 s3")},

		// ---- Node-set results are sets in document order ----
		{name: "union dedup ordered", query: `//t | //t | /r/s/t`, nodes: nodesWant("t1 t2 t3")},
		{name: "parent dedup", query: `//v/parent::*`, nodes: nodesWant("u1")},
		{name: "union mixed", query: `//w | //v[. = "x"]`, nodes: nodesWant("v1 w1")},

		// ---- Conversions (Figure 1 / REC §4) ----
		{name: "count", query: `count(//t)`, num: numWant(3)},
		{name: "count empty", query: `count(//zzz)`, num: numWant(0)},
		{name: "sum", query: `sum(//t)`, num: numWant(5)},
		{name: "number of set = first node", query: `number(//t)`, num: numWant(1)},
		{name: "number of non-numeric", query: `number(//v)`, num: numWant(math.NaN())},
		{name: "string of empty set", query: `string(//zzz)`, str: strWant("")},
		{name: "string of first", query: `string(//v)`, str: strWant("x")},
		{name: "boolean of empty string", query: `boolean("")`, boolv: boolWant(false)},
		{name: "boolean of zero", query: `boolean(0)`, boolv: boolWant(false)},
		{name: "boolean of NaN", query: `boolean(0 div 0)`, boolv: boolWant(false)},
		{name: "boolean of '0' is true", query: `boolean("0")`, boolv: boolWant(true)},
		{name: "string of true", query: `string(1 = 1)`, str: strWant("true")},
		{name: "number of true", query: `number(true())`, num: numWant(1)},

		// ---- Comparisons across types ----
		{name: "nset eq num", query: `//t = 2`, boolv: boolWant(true)},
		{name: "nset neq num exists", query: `//t != 2`, boolv: boolWant(true)},
		{name: "empty nset never equal", query: `//zzz = //t`, boolv: boolWant(false)},
		{name: "empty nset never unequal", query: `//zzz != //t`, boolv: boolWant(false)},
		{name: "empty eq false bool", query: `(//zzz = 1) = false()`, boolv: boolWant(true)},
		// t strvals {"1","2"}, v strvals {"x","3"}: no common string value.
		{name: "nset eq nset", query: `//t = //v`, boolv: boolWant(false)},
		{name: "nset lt nset", query: `//t < //v`, boolv: boolWant(true)},
		{name: "str num eq", query: `"2" = 2`, boolv: boolWant(true)},
		{name: "bool beats num in eq", query: `2 = true()`, boolv: boolWant(true)},
		{name: "ordering converts to num", query: `"10" > "9"`, boolv: boolWant(true)},
		{name: "NaN not gt", query: `(0 div 0) > 0`, boolv: boolWant(false)},
		{name: "NaN neq NaN", query: `(0 div 0) != (0 div 0)`, boolv: boolWant(true)},

		// ---- Arithmetic ----
		{name: "precedence", query: `2 + 3 * 4 - 1`, num: numWant(13)},
		{name: "unary minus stack", query: `5 - -3`, num: numWant(8)},
		{name: "div by zero", query: `-2 div 0`, num: numWant(math.Inf(-1))},
		{name: "mod negative", query: `-7 mod 3`, num: numWant(-1)},
		{name: "float mod", query: `7.5 mod 2`, num: numWant(1.5)},
		{name: "sum with arithmetic", query: `sum(//t) * 2 + count(//v)`, num: numWant(12)},

		// ---- String functions ----
		{name: "concat multi", query: `concat("a", 1, true())`, str: strWant("a1true")},
		{name: "contains", query: `contains(string(//s), "1")`, boolv: boolWant(true)},
		{name: "starts-with on nset", query: `starts-with(//v, "x")`, boolv: boolWant(true)},
		{name: "substring mid", query: `substring("hello", 2)`, str: strWant("ello")},
		{name: "substring clamp", query: `substring("hello", 0, 2)`, str: strWant("h")},
		{name: "string-length of nset", query: `string-length(//s)`, num: numWant(4)}, // strval(s1)="123x3"? see note
		{name: "normalize-space", query: `normalize-space("  a  b ")`, str: strWant("a b")},
		{name: "translate", query: `translate("abcabc", "abc", "AB")`, str: strWant("ABAB")},
		{name: "substring-before missing", query: `substring-before("ab", "x")`, str: strWant("")},

		// ---- id() ----
		{name: "id simple", query: `id("t2")`, nodes: nodesWant("t2")},
		{name: "id list", query: `id("t2 v1 nope")`, nodes: nodesWant("t2 v1")},
		{name: "id of nset strvals", query: `id(//v[. = "x"])`, nodes: nodesWant("")},
		{name: "id then steps", query: `id("u1")/v`, nodes: nodesWant("v1 v2")},
		{name: "id in predicate", query: `//v[count(id("t1")) = 1]`, nodes: nodesWant("v1 v2")},

		// ---- name()/local-name() ----
		{name: "name of context", query: `name()`, context: "u1", str: strWant("u")},
		{name: "name of first in set", query: `name(//v)`, str: strWant("v")},
		{name: "local-name of root", query: `local-name(/)`, str: strWant("")},

		// ---- not / true / false / lang ----
		{name: "not of set", query: `not(//zzz)`, boolv: boolWant(true)},
		{name: "lang without attr", query: `lang("en")`, context: "t1", boolv: boolWant(false)},

		// ---- floor/ceiling/round ----
		{name: "floor", query: `floor(2.9)`, num: numWant(2)},
		{name: "ceiling negative", query: `ceiling(-2.1)`, num: numWant(-2)},
		{name: "round half", query: `round(0.5)`, num: numWant(1)},
		{name: "round neg half", query: `round(-0.5)`, num: numWant(0)},

		// ---- Composites ----
		{name: "count of union", query: `count(//t | //v)`, num: numWant(5)},
		{name: "exists deep", query: `boolean(/r/s/u/v)`, boolv: boolWant(true)},
		{name: "position in expression", query: `count(/r/s[position() != 2])`, num: numWant(2)},
		{name: "nested count compare", query: `count(//s[count(t) > 1]) = 1`, boolv: boolWant(true)},
		{name: "string-value of branch", query: `string(/r/s[2])`, str: strWant("2")},
		{name: "chained steps with filters", query: `/r/s[1]/u/v[last()]`, nodes: nodesWant("v2")},
		{name: "double slash after filter", query: `id("s1")//v`, nodes: nodesWant("v1 v2")},
		{name: "abs path in predicate", query: `//v[/r/s]`, nodes: nodesWant("v1 v2")},
		{name: "empty element strval", query: `string(//w) = ""`, boolv: boolWant(true)},
	}
}

func TestSemanticsConformance(t *testing.T) {
	doc, err := ParseDocumentString(semXML)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range semCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			q, err := Compile(c.query)
			if err != nil {
				t.Fatalf("compile %q: %v", c.query, err)
			}
			for _, eng := range allEngines {
				opts := Options{Engine: eng}
				if c.context != "" {
					opts.ContextNode = doc.ByID(c.context)
					if opts.ContextNode == nil {
						t.Fatalf("no context node %q", c.context)
					}
				}
				res, err := q.EvaluateWith(doc, opts)
				if err != nil {
					t.Fatalf("engine %v: %v", eng, err)
				}
				switch {
				case c.nodes != nil:
					var got []string
					for _, n := range res.Nodes() {
						id, _ := n.Attr("id")
						got = append(got, id)
					}
					if strings.Join(got, " ") != *c.nodes {
						t.Errorf("engine %v: %q = {%s}, want {%s}",
							eng, c.query, strings.Join(got, " "), *c.nodes)
					}
				case c.num != nil:
					got := res.Number()
					if math.IsNaN(*c.num) != math.IsNaN(got) ||
						(!math.IsNaN(got) && got != *c.num) {
						t.Errorf("engine %v: %q = %v, want %v", eng, c.query, got, *c.num)
					}
				case c.str != nil:
					if got := res.Text(); got != *c.str {
						t.Errorf("engine %v: %q = %q, want %q", eng, c.query, got, *c.str)
					}
				case c.boolv != nil:
					if got := res.Bool(); got != *c.boolv {
						t.Errorf("engine %v: %q = %v, want %v", eng, c.query, got, *c.boolv)
					}
				}
			}
		})
	}
}

// TestSemanticsReverseAxisPositions pins down positional predicates on
// every reverse axis: positions count in reverse document order (§2.1's
// <doc,χ), which is the single most common XPath implementation mistake.
func TestSemanticsReverseAxisPositions(t *testing.T) {
	doc, err := ParseDocumentString(semXML)
	if err != nil {
		t.Fatal(err)
	}
	cases := []semCase{
		{name: "preceding[1] is nearest", query: `preceding::*[1]`, context: "s2", nodes: nodesWant("v2")},
		{name: "preceding[last()] is farthest", query: `preceding::*[last()]`, context: "s2", nodes: nodesWant("s1")},
		{name: "ancestor[1] is parent", query: `ancestor::*[1]`, context: "v1", nodes: nodesWant("u1")},
		{name: "ancestor[last()] is outermost element", query: `ancestor::*[last()]`, context: "v1", nodes: nodesWant("r")},
		{name: "ancestor-or-self[1] is self", query: `ancestor-or-self::*[1]`, context: "v1", nodes: nodesWant("v1")},
		{name: "preceding-sibling[position()<=2]", query: `preceding-sibling::*[position() <= 2]`, context: "u1", nodes: nodesWant("t1 t2")},
		{name: "parent[1]", query: `parent::*[1]`, context: "t1", nodes: nodesWant("s1")},
		// Mixed: reverse-axis predicate inside a forward path.
		{name: "forward path reverse pred", query: `//u[preceding-sibling::*[1][self::t]]`, nodes: nodesWant("u1 u2")},
		{name: "reverse then forward", query: `preceding::*[2]/following-sibling::*`, context: "s2", nodes: nodesWant("v2")},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			q, err := Compile(c.query)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, eng := range allEngines {
				opts := Options{Engine: eng}
				if c.context != "" {
					opts.ContextNode = doc.ByID(c.context)
				}
				res, err := q.EvaluateWith(doc, opts)
				if err != nil {
					t.Fatalf("engine %v: %v", eng, err)
				}
				var got []string
				for _, n := range res.Nodes() {
					id, _ := n.Attr("id")
					got = append(got, id)
				}
				if strings.Join(got, " ") != *c.nodes {
					t.Errorf("engine %v: {%s}, want {%s}", eng, strings.Join(got, " "), *c.nodes)
				}
			}
		})
	}
}
