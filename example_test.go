package xpath_test

// Testable examples: these run as part of the test suite and double as the
// package documentation on go doc / pkg.go.dev-style viewers.

import (
	"fmt"

	xpath "repro"
)

func ExampleCompile() {
	doc, _ := xpath.ParseDocumentString(`<a><b>1</b><b>2</b><b>3</b></a>`)
	q, _ := xpath.Compile(`//b[position() > 1]`)
	res, _ := q.Evaluate(doc)
	for _, n := range res.Nodes() {
		fmt.Println(n.StringValue())
	}
	// Output:
	// 2
	// 3
}

func ExampleQuery_Fragment() {
	for _, src := range []string{
		`//a[b]`,          // predicates are bare paths: Core XPath
		`//a[b = 1]`,      // comparison with a constant: Extended Wadler
		`//a[count(b)=1]`, // count() violates Restriction 2: full XPath
	} {
		q, _ := xpath.Compile(src)
		fmt.Printf("%-18s %s\n", src, q.Fragment())
	}
	// Output:
	// //a[b]             core-xpath
	// //a[b = 1]         extended-wadler
	// //a[count(b)=1]    full-xpath
}

func ExampleQuery_EvaluateWith_engines() {
	doc, _ := xpath.ParseDocumentString(`<a><b>10</b><b>20</b></a>`)
	q, _ := xpath.Compile(`sum(//b)`)
	// Every engine implements the same XPath 1.0 semantics.
	for _, eng := range []xpath.Engine{xpath.EngineOptMinContext, xpath.EngineTopDown, xpath.EngineNaive} {
		res, _ := q.EvaluateWith(doc, xpath.Options{Engine: eng})
		fmt.Println(eng, res.Number())
	}
	// Output:
	// optmincontext 30
	// topdown 30
	// naive 30
}

func ExampleQuery_EvaluateWith_contextNode() {
	doc, _ := xpath.ParseDocumentString(`<a><b id="first"><c/></b><b id="second"/></a>`)
	q, _ := xpath.Compile(`count(child::c)`)
	res, _ := q.EvaluateWith(doc, xpath.Options{ContextNode: doc.ByID("first")})
	fmt.Println(res.Number())
	// Output:
	// 1
}

func ExampleCompileWithVars() {
	doc, _ := xpath.ParseDocumentString(`<a><b>5</b><b>12</b></a>`)
	q, _ := xpath.CompileWithVars(`//b[. > $threshold]`, map[string]xpath.Var{
		"threshold": xpath.NumberVar(10),
	})
	res, _ := q.Evaluate(doc)
	fmt.Println(len(res.Nodes()))
	// Output:
	// 1
}

func ExampleQuery_String() {
	// String returns the normalized, unabbreviated form with all type
	// conversions made explicit (§2.2 of the paper).
	q, _ := xpath.Compile(`//b[c]`)
	fmt.Println(q)
	// Output:
	// /descendant-or-self::node()/child::b[boolean(child::c)]
}

func ExampleResult_Stats() {
	doc, _ := xpath.ParseDocumentString(`<a><b>1</b><b>100</b></a>`)
	q, _ := xpath.Compile(`//b[. = 100]`)
	res, _ := q.EvaluateWith(doc, xpath.Options{Engine: xpath.EngineMinContext})
	// Table cells are the quantity bounded by the paper's space theorems.
	fmt.Println(res.Stats().TableCells > 0)
	// Output:
	// true
}
