package xpath

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestStoreAPI walks the public store surface end to end: add/get/remove,
// batch queries with subsets and unknown IDs, aggregated stats and corpus
// snapshot round trips.
func TestStoreAPI(t *testing.T) {
	st := NewStore()
	if st.Len() != 0 || len(st.IDs()) != 0 {
		t.Fatal("fresh store not empty")
	}
	docs := map[string]string{
		"inventory": `<a><b id="1"><c>21 22</c><d>100</d></b></a>`,
		"orders":    `<a><b id="1"><d>100</d></b><b id="2"><c>5</c></b></a>`,
		"empty":     `<a/>`,
	}
	for id, xml := range docs {
		doc, err := ParseDocumentString(xml)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(id, doc); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Join(st.IDs(), ","); got != "empty,inventory,orders" {
		t.Fatalf("IDs: %s", got)
	}
	if err := st.Add("nil-doc", nil); err == nil {
		t.Error("Add(nil document): want error, not a panic")
	}
	if _, ok := st.Get("inventory"); !ok {
		t.Fatal("Get(inventory) missing")
	}

	batch, err := st.Query(`count(//d)`, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"empty": "0", "inventory": "1", "orders": "1"}
	for _, dr := range batch.Docs {
		if dr.Err != nil {
			t.Fatalf("%s: %v", dr.ID, dr.Err)
		}
		if dr.Result.Text() != want[dr.ID] {
			t.Errorf("%s: %s want %s", dr.ID, dr.Result.Text(), want[dr.ID])
		}
	}
	if batch.Errs() != 0 {
		t.Errorf("Errs: %d", batch.Errs())
	}
	if batch.Stats().AxisCalls == 0 {
		t.Error("aggregated stats empty")
	}

	// Unknown IDs surface as per-document errors in their slots.
	batch, err = st.Query(`//d`, BatchOptions{IDs: []string{"orders", "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Errs() != 1 || batch.Docs[1].Err == nil || batch.Docs[0].Err != nil {
		t.Fatalf("unknown-ID batch: errs=%d docs=%+v", batch.Errs(), batch.Docs)
	}

	// A malformed query surfaces as one call error, not a batch.
	if _, err := st.Query(`//[`, BatchOptions{}); err == nil {
		t.Error("malformed query: want error")
	}

	// Snapshot round trip through the public API.
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(loaded.IDs(), ",") != "empty,inventory,orders" {
		t.Fatalf("loaded IDs: %v", loaded.IDs())
	}
	reBatch, err := loaded.Query(`count(//d)`, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, dr := range reBatch.Docs {
		if dr.Err != nil || dr.Result.Text() != want[dr.ID] {
			t.Errorf("loaded %s: %v %v", dr.ID, dr.Result, dr.Err)
		}
	}

	if !st.Remove("empty") || st.Remove("empty") {
		t.Error("Remove: want true then false")
	}
	if st.Len() != 2 {
		t.Fatalf("Len: %d", st.Len())
	}
}

// TestEvaluateParallelAPI covers the public parallel entry point: context
// nodes, foreign-document rejection, and scalar fallbacks.
func TestEvaluateParallelAPI(t *testing.T) {
	doc := WrapTree(workload.Scaled(900))
	other := WrapTree(workload.Figure2())

	q := MustCompile(`//b[d = 100]/child::c`)
	ref, err := q.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvaluateParallel(doc, ParallelOptions{Workers: 4, Engine: EngineCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(ref, res) {
		t.Errorf("parallel %s want %s", res, ref)
	}

	if _, err := q.EvaluateParallel(doc, ParallelOptions{ContextNode: other.Root()}); err == nil {
		t.Error("foreign context node: want error")
	}

	// Scalar queries fall back to serial and still answer correctly.
	sq := MustCompile(`count(//c) > 0`)
	sres, err := sq.EvaluateParallel(doc, ParallelOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Bool() {
		t.Error("scalar fallback: want true")
	}

	// A context node reaches the fallback path too.
	cn := doc.Root().Children()[0].Children()[0]
	rq := MustCompile(`following-sibling::*`)
	rref, err := rq.EvaluateWith(doc, Options{ContextNode: cn})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rq.EvaluateParallel(doc, ParallelOptions{Workers: 4, ContextNode: cn})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(rref, rres) {
		t.Errorf("context-relative parallel %s want %s", rres, rref)
	}
}
