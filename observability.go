package xpath

import (
	"expvar"
	"io"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// This file is the public face of the observability layer: re-exported
// tracing types (internal/trace) and access to the process-wide metrics
// registry (internal/metrics). Everything here is optional — an application
// that never touches it pays nothing beyond one nil check per instrumented
// site and a handful of atomic counter updates per evaluation.

// Tracer receives spans from an evaluation. Implementations must be cheap
// (Emit runs on the hot path of traced evaluations) and — when one tracer is
// handed to a batch or parallel evaluation — safe for concurrent use.
type Tracer = trace.Tracer

// TraceEvent is one span delivered to a Tracer: its kind (eval, step,
// opcode, …), input/output cardinalities (CardUnknown for scalars), wall
// time in nanoseconds, and the axis-scratch high-water mark in bytes.
type TraceEvent = trace.Event

// TraceRow is one aggregated line of a TraceRecorder: events with the same
// (kind, name, block, pc) are summed into call counts, total cardinalities
// and total nanoseconds.
type TraceRow = trace.Row

// TraceRecorder is the standard Tracer: it aggregates events in bounded
// memory and is safe for concurrent use, so one recorder can serve all
// workers of a batch. Reset makes it reusable across evaluations.
type TraceRecorder = trace.Recorder

// CardUnknown marks a cardinality that does not apply (scalar operands).
const CardUnknown = trace.CardUnknown

// NewTraceRecorder returns an empty, ready-to-use recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// RenderTrace renders recorder rows as an indented human-readable tree
// (root spans first, per-step and per-opcode spans indented below).
func RenderTrace(rows []TraceRow) string { return trace.Render(rows) }

// MetricsRegistry is the process-wide metrics registry type; see Metrics.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of every instrument; two
// snapshots subtract (Sub) to isolate an interval.
type MetricsSnapshot = metrics.Snapshot

// Metrics returns the process-wide registry every engine component reports
// into: evaluation counts and latencies, plan-cache hits/misses/evictions,
// compile times, parse/build throughput, topology footprint, batch queue
// waits and per-document latencies, parallel split/merge behavior.
func Metrics() *MetricsRegistry { return metrics.Default() }

// MetricsSnapshotNow captures the registry's current state.
func MetricsSnapshotNow() MetricsSnapshot { return metrics.Default().Snapshot() }

// WriteMetricsJSON writes the registry as one flat JSON object
// (expvar-compatible values: counters and gauges as numbers, histograms as
// {count, sum, mean, p50, p90, p99}).
func WriteMetricsJSON(w io.Writer) error { return metrics.Default().WriteJSON(w) }

// WriteMetricsText writes a sorted human-readable dump of the registry.
func WriteMetricsText(w io.Writer) error { return metrics.Default().WriteText(w) }

// WriteMetricsPrometheus writes the registry in the Prometheus text
// exposition format (histograms as cumulative le-buckets).
func WriteMetricsPrometheus(w io.Writer) error { return metrics.Default().WritePrometheus(w) }

// MetricsExpvar returns the registry as an expvar.Func, for mounting on an
// expvar page: expvar.Publish("xpath", xpath.MetricsExpvar()).
func MetricsExpvar() expvar.Func { return metrics.Default().Expvar() }
