package xpath

// Race-focused tests: CI runs these under -race. They pin the concurrency
// contracts of the serving layer — CompileCached converging on one cached
// compilation per source, engines evaluating one shared document from many
// goroutines, and Store.Query returning identical batches under arbitrary
// interleavings.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestConcurrentCompileCached: many goroutines compile the same set of
// sources concurrently. Every caller of a given source must get the same
// cached query object (the cache converges on one entry), and once the
// cache is warm a second stampede must compile nothing at all — the "no
// duplicate plan compilation beyond cache semantics" contract.
func TestConcurrentCompileCached(t *testing.T) {
	sources := []string{
		`//race-test-a/child::b`,
		`//race-test-b[d = 100]/child::c`,
		`/descendant::race-test-c[position() != last()]`,
		`count(//race-test-d) + sum(//race-test-d)`,
	}
	const goroutines = 24
	got := make([][]*Query, len(sources))
	for i := range got {
		got[i] = make([]*Query, goroutines)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, src := range sources {
				q, err := CompileCached(src)
				if err != nil {
					t.Errorf("CompileCached(%q): %v", src, err)
					return
				}
				got[i][g] = q
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, src := range sources {
		for g := 1; g < goroutines; g++ {
			if got[i][g].q != got[i][0].q {
				t.Errorf("%q: goroutine %d got a different cached query object", src, g)
			}
		}
	}

	// Warm stampede: zero additional compilations.
	before := queryCache.Compiles()
	wg = sync.WaitGroup{}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, src := range sources {
				if _, err := CompileCached(src); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if after := queryCache.Compiles(); after != before {
		t.Errorf("warm cache recompiled: %d new compilations", after-before)
	}
}

// TestConcurrentEvaluateSharedDoc: all engines evaluate one shared document
// from many goroutines and must agree with the serial reference — the
// immutable-document contract the batch layer is built on.
func TestConcurrentEvaluateSharedDoc(t *testing.T) {
	doc := WrapTree(workload.Scaled(300))
	src := `//b[d = 100]/child::c[position() != last()]`
	q := MustCompile(src)
	ref, err := q.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, eng := range []Engine{EngineOptMinContext, EngineTopDown, EngineCompiled} {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(eng Engine) {
				defer wg.Done()
				res, err := q.EvaluateWith(doc, Options{Engine: eng})
				if err != nil {
					t.Errorf("%v: %v", eng, err)
					return
				}
				if !sameResult(ref, res) {
					t.Errorf("%v: %s want %s", eng, res, ref)
				}
			}(eng)
		}
	}
	wg.Wait()
}

// TestConcurrentStoreQuery: many goroutines run batches against one store
// with different worker counts while other goroutines churn unrelated
// documents; every batch over the stable subset must be identical.
func TestConcurrentStoreQuery(t *testing.T) {
	st := NewStore()
	for i := 0; i < 24; i++ {
		if err := st.Add(fmt.Sprintf("stable-%02d", i), WrapTree(workload.Scaled(80+i*5))); err != nil {
			t.Fatal(err)
		}
	}
	stable := st.IDs()
	src := `//b[d = 100]/child::c`
	ref, err := st.Query(src, BatchOptions{Workers: 1, IDs: stable})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) { // churners
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i)
				if err := st.Add(id, WrapTree(workload.Doubling())); err != nil {
					t.Error(err)
					return
				}
				st.Remove(id)
			}
		}(g)
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) { // queriers
			defer wg.Done()
			for i := 0; i < 10; i++ {
				batch, err := st.Query(src, BatchOptions{
					Workers: 1 + (g+i)%8,
					IDs:     stable,
					Engine:  []Engine{EngineOptMinContext, EngineCompiled}[i%2],
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(batch.Docs) != len(ref.Docs) {
					t.Errorf("batch size %d want %d", len(batch.Docs), len(ref.Docs))
					return
				}
				for j := range batch.Docs {
					if batch.Docs[j].ID != ref.Docs[j].ID ||
						!sameResult(ref.Docs[j].Result, batch.Docs[j].Result) {
						t.Errorf("goroutine %d iter %d doc %s: batch differs", g, i, ref.Docs[j].ID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentEvaluateParallel: nested concurrency — several goroutines
// each running the data-partitioned evaluator on the same document.
func TestConcurrentEvaluateParallel(t *testing.T) {
	doc := WrapTree(workload.Scaled(1500))
	q := MustCompile(`//b[d = 100]/child::c`)
	ref, err := q.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := q.EvaluateParallel(doc, ParallelOptions{
				Workers: 2 + g%4,
				Engine:  []Engine{EngineOptMinContext, EngineCompiled}[g%2],
			})
			if err != nil {
				t.Error(err)
				return
			}
			if !sameResult(ref, res) {
				t.Errorf("goroutine %d: %s want %s", g, res, ref)
			}
		}(g)
	}
	wg.Wait()
}
