package xpath

import (
	"io"

	"repro/internal/store"
)

// Store is a sharded, concurrency-safe corpus of documents with batch
// evaluation: one compiled query fanned out across many documents on a
// bounded worker pool. Labels are interned into one table shared across the
// corpus, and whole corpora round-trip through binary snapshots
// (WriteSnapshot / LoadStore) without re-parsing XML.
//
// All methods are safe for concurrent use from any number of goroutines.
type Store struct {
	s *store.Store
}

// NewStore returns an empty document store.
func NewStore() *Store { return &Store{s: store.New()} }

// Add inserts (or replaces) a document under the given ID. The store
// interns the document's labels into its shared table during the call, so
// the document must not be concurrently evaluated while Add runs
// (afterwards it is immutable again and freely shareable).
func (st *Store) Add(id string, doc *Document) error {
	if doc == nil {
		return st.s.Add(id, nil) // the store's nil-document error
	}
	return st.s.Add(id, doc.tree)
}

// Get returns the document stored under the ID.
func (st *Store) Get(id string) (*Document, bool) {
	t, ok := st.s.Get(id)
	if !ok {
		return nil, false
	}
	return &Document{tree: t}, true
}

// Replace atomically swaps the document under the ID (inserting if absent)
// and reports whether a previous document was displaced. Readers that
// obtained the old document keep a fully valid tree; in-flight evaluations
// see either the old or the new document, never a mixture. The interning
// caveat of Add applies to the incoming document.
func (st *Store) Replace(id string, doc *Document) (bool, error) {
	if doc == nil {
		return st.s.Replace(id, nil) // the store's nil-document error
	}
	return st.s.Replace(id, doc.tree)
}

// Remove deletes the document stored under the ID, reporting whether it was
// present.
func (st *Store) Remove(id string) bool { return st.s.Remove(id) }

// Len returns the number of stored documents.
func (st *Store) Len() int { return st.s.Len() }

// IDs returns the IDs of all stored documents, sorted.
func (st *Store) IDs() []string { return st.s.IDs() }

// WriteSnapshot serializes the whole corpus (sorted-ID order) in the binary
// corpus snapshot format; LoadStore restores it, evaluation indexes
// included, without re-parsing XML.
func (st *Store) WriteSnapshot(w io.Writer) error { return st.s.WriteSnapshot(w) }

// LoadStore reads a corpus snapshot written by Store.WriteSnapshot.
func LoadStore(r io.Reader) (*Store, error) {
	s, err := store.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// SaveSnapshotFile writes the corpus snapshot to path crash-safely: the
// bytes go to a temp file in the same directory, are fsynced, and are
// atomically renamed over path — a crash at any moment leaves either the
// old file or the new one, never a torn mixture.
func (st *Store) SaveSnapshotFile(path string) error { return st.s.SaveSnapshotFile(path) }

// LoadStoreFile reads a corpus snapshot file written by SaveSnapshotFile.
func LoadStoreFile(path string) (*Store, error) {
	s, err := store.LoadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// BatchOptions configures one Store.Query batch.
type BatchOptions struct {
	// Engine selects the evaluation algorithm (default: OPTMINCONTEXT).
	Engine Engine
	// Workers bounds the worker pool (≤ 0 means GOMAXPROCS). One worker is
	// serial evaluation in ID order; any worker count produces the
	// identical BatchResult.
	Workers int
	// IDs restricts the batch to the given documents in the given order
	// (unknown IDs produce per-document errors); nil means every stored
	// document in sorted ID order.
	IDs []string
	// Tracer, when non-nil, receives the spans of every per-document
	// evaluation plus one KindBatchDoc span per document. One tracer serves
	// all workers at once, so it must be safe for concurrent use
	// (TraceRecorder is); nil costs nothing.
	Tracer Tracer
	// Budget, when non-nil, bounds the whole batch: every worker shares it,
	// each claimed document polls it before evaluating (a tripped budget
	// marks the remaining documents with the budget error), and a
	// budget-classed per-document failure cancels the siblings. Generic
	// per-document failures (unknown IDs, engine limits) stay isolated to
	// their document.
	Budget *Budget
}

// DocResult is the outcome of a batch query on one document.
type DocResult struct {
	// ID names the document within the store.
	ID string
	// Result is the evaluation result (nil when Err is set).
	Result *Result
	// Err is the per-document failure, if any; other documents of the
	// batch are unaffected.
	Err error
}

// BatchResult is the outcome of one Store.Query: per-document results in
// deterministic order plus aggregated statistics.
type BatchResult struct {
	// Docs holds one entry per selected document, in sorted ID order (or
	// the order of BatchOptions.IDs).
	Docs  []DocResult
	stats Stats
	errs  int
}

// Stats returns the instrumentation counters summed over the whole batch.
func (b *BatchResult) Stats() Stats { return b.stats }

// Errs returns the number of documents whose evaluation failed.
func (b *BatchResult) Errs() int { return b.errs }

// Query compiles src (through the process-wide plan cache) and fans it out
// across the selected documents on a bounded worker pool. The per-document
// results and their order are byte-identical for every worker count.
func (st *Store) Query(src string, opts BatchOptions) (*BatchResult, error) {
	q, err := CompileCached(src)
	if err != nil {
		return nil, err
	}
	raw, agg := st.s.Query(q.q, store.QueryOptions{
		Engine:  opts.Engine.impl(),
		Workers: opts.Workers,
		IDs:     opts.IDs,
		Tracer:  opts.Tracer,
		Budget:  opts.Budget,
	})
	out := &BatchResult{Docs: make([]DocResult, len(raw))}
	for i, r := range raw {
		dr := DocResult{ID: r.ID, Err: r.Err}
		if r.Err == nil {
			dr.Result = &Result{v: r.Value, stats: toStats(r.Stats)}
		} else {
			out.errs++
		}
		out.Docs[i] = dr
	}
	out.stats = toStats(agg)
	return out, nil
}

// ParallelOptions configures one EvaluateParallel call.
type ParallelOptions struct {
	// Engine selects the per-partition evaluation algorithm (default:
	// OPTMINCONTEXT).
	Engine Engine
	// Workers bounds the goroutine pool (≤ 0 means GOMAXPROCS).
	Workers int
	// ContextNode evaluates relative to this node (default: document root).
	ContextNode *Node
	// Tracer, when non-nil, receives the head evaluation's spans, one
	// KindSplit/KindMerge span when the parallel path is taken, and the
	// per-partition spans from every worker. The shared-tracer contract of
	// BatchOptions.Tracer applies.
	Tracer Tracer
	// Budget, when non-nil, bounds the whole call: the head evaluation and
	// every worker share it, and the first worker failure cancels it so the
	// siblings stop at their next check. Without one, a failure still cancels
	// the siblings through an internal cancellation token.
	Budget *Budget
}

// EvaluateParallel evaluates the query against one document by
// data-partitioning the outermost location step's result set across a
// bounded pool of goroutines, merging the per-partition node sets in
// document order. The result is identical to serial evaluation for every
// worker count: location-path semantics decompose per context node
// (predicates — position() and last() included — apply to per-node
// candidate lists, never across the partition boundary).
//
// Queries whose shape requires context tables spanning the whole context
// set — scalar expressions, filter-headed paths such as (//a)[2], unions,
// single-step paths — are detected and evaluated serially instead, so
// EvaluateParallel is safe to call on arbitrary queries.
func (q *Query) EvaluateParallel(doc *Document, opts ParallelOptions) (*Result, error) {
	ctx := rootContextFor(doc)
	if opts.ContextNode != nil {
		if opts.ContextNode.n.Document() != doc.tree {
			return nil, errContextForeignNode
		}
		ctx.Node = opts.ContextNode.n
	}
	ctx.Tracer = opts.Tracer
	ctx.Budget = opts.Budget
	v, st, _, err := store.EvaluateParallel(opts.Engine.impl(), q.q, doc.tree, ctx, opts.Workers)
	if err != nil {
		return nil, err
	}
	return &Result{v: v, stats: toStats(st)}, nil
}
