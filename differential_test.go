package xpath

// Differential testing (experiment E13): every engine must compute the same
// value for the same query, document and context. The engines share the
// value system but nothing of their evaluation strategy — bottom-up tables,
// vectorized top-down lists, relevant-context tables with position loops,
// inverse-axis propagation, and naive recursion disagree on the slightest
// semantic bug, so agreement over randomized workloads is a strong check.

import (
	"math"
	"testing"

	"repro/internal/naive"
	"repro/internal/workload"
)

// agree asserts that all general engines produce the same result for the
// query at the given context node.
func agree(t *testing.T, doc *Document, src string, cnID string) {
	t.Helper()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	opts := Options{Engine: EngineTopDown}
	if cnID != "" {
		opts.ContextNode = doc.ByID(cnID)
		if opts.ContextNode == nil {
			t.Fatalf("no node with id %q", cnID)
		}
	}
	ref, err := q.EvaluateWith(doc, opts)
	if err != nil {
		t.Fatalf("topdown on %q: %v", src, err)
	}
	engines := []Engine{EngineOptMinContext, EngineMinContext, EngineBottomUp, EngineNaive, EngineCompiled}
	if q.Fragment() == CoreXPath {
		engines = append(engines, EngineCoreXPath)
	}
	for _, eng := range engines {
		o := opts
		o.Engine = eng
		got, err := q.EvaluateWith(doc, o)
		if err != nil {
			if _, limited := err.(*naive.ErrWorkLimit); limited && eng == EngineNaive {
				continue // naive blew its exponential budget; fine
			}
			t.Errorf("engine %v on %q: %v", eng, src, err)
			continue
		}
		if !sameResult(ref, got) {
			t.Errorf("disagreement on %q (cn=%s):\n  topdown: %s\n  %v: %s",
				src, cnID, ref, eng, got)
		}
	}
}

func sameResult(a, b *Result) bool {
	if a.IsNodeSet() != b.IsNodeSet() {
		return false
	}
	if a.IsNodeSet() {
		na, nb := a.Nodes(), b.Nodes()
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i].Pre() != nb[i].Pre() {
				return false
			}
		}
		return true
	}
	// Scalars: compare through the string conversion; numbers additionally
	// through NaN-aware equality.
	an, bn := a.Number(), b.Number()
	if math.IsNaN(an) && math.IsNaN(bn) {
		return true
	}
	return a.Text() == b.Text()
}

// TestDifferentialHandPicked runs a curated set of semantically tricky
// queries over the Figure 2 document from several context nodes.
func TestDifferentialHandPicked(t *testing.T) {
	doc, err := ParseDocumentString(figure2XML)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// Axes and abbreviations.
		`//c`, `//b/c`, `/descendant-or-self::node()/child::b`,
		`//d/ancestor::*`, `//c/following::d`, `//d/preceding::c`,
		`//c/following-sibling::*`, `//d/preceding-sibling::node()`,
		`//b/..`, `//./self::c`,
		// Position and size.
		`//b/c[1]`, `//b/c[last()]`, `//b/*[position() = 2]`,
		`//*[position() mod 2 = 0]`, `//b/*[position() != last()]`,
		`/descendant::*[position() > last()*0.5]`,
		// Values, comparisons, functions.
		`//d = 100`, `//c != //d`, `count(//c) + count(//d)`,
		`sum(//d)`, `string(//c)`, `concat(string(//d), "-", string(//c))`,
		`//b[c = "21 22"]`, `//b[c > 20]`, `//*[. = 100]`,
		`boolean(//e)`, `not(//e)`, `string-length(normalize-space(string(//b)))`,
		`floor(sum(//d) div count(//d))`, `ceiling(1.5)`, `round(-0.4)`,
		`substring(string(//c), 2, 3)`, `translate(string(//c), "12", "21")`,
		`starts-with(string(//c), "21")`, `contains(string(//c), "1 2")`,
		`substring-before("a-b", "-")`, `substring-after("a-b", "-")`,
		// id() and the id-axis rewriting.
		`id("11")`, `id("11 21")/child::c`, `id(string(//b/c))`, `id(//c)`,
		`count(id("10")/descendant::*)`,
		// Unions and filter heads.
		`//c | //d`, `(//c | //d)[position() = last()]`,
		`(//b)[2]/child::*`, `//b[position() = count(//b)]`,
		// Nested predicates and mixed features.
		`//b[./c[position()=2] = "23 24"]`,
		`//*[count(ancestor::*) >= 2]`,
		`//b[descendant::d[. = 100]]/c[last()]`,
		`//*[self::c or self::d][. = 100]`,
		`//*[not(following::*)]`,
		`-(--3)`, `2 + 3 * 4`, `10 mod 3`, `1 div 0`, `-1 div 0`, `0 div 0`,
		`"a" < "b"`, `true() > false()`, `1 = true()`, `"" = false()`,
	}
	for _, src := range queries {
		agree(t, doc, src, "")
		agree(t, doc, src, "11")
		agree(t, doc, src, "23")
	}
}

// TestDifferentialRandom sweeps seeded random queries over seeded random
// documents — the E13 harness.
func TestDifferentialRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized differential sweep")
	}
	for docSeed := int64(1); docSeed <= 4; docSeed++ {
		doc := WrapTree(workload.Random(60, docSeed))
		for qSeed := int64(1); qSeed <= 150; qSeed++ {
			src := workload.RandomQuery(docSeed*1000 + qSeed)
			if _, err := Compile(src); err != nil {
				t.Fatalf("generator produced invalid query %q: %v", src, err)
			}
			agree(t, doc, src, "")
			agree(t, doc, src, "5")
		}
	}
}

// TestDifferentialPaperWorkloads runs the named benchmark query families
// through the agreement check on the scaled documents. Short mode shrinks
// the documents: the naive engine's superpolynomial growth dominates the
// full-size sweep, and the coverage (every query family × every document
// shape × every engine) is size-independent.
func TestDifferentialPaperWorkloads(t *testing.T) {
	scaled, deep, fan := 80, 40, 60
	if testing.Short() {
		scaled, deep, fan = 30, 16, 24
	}
	docs := map[string]*Document{
		"scaled":  WrapTree(workload.Scaled(scaled)),
		"deep":    WrapTree(workload.DeepChain(deep)),
		"widefan": WrapTree(workload.WideFan(fan)),
	}
	var queries []string
	queries = append(queries, workload.WadlerQueries()...)
	queries = append(queries, workload.CoreQueries()...)
	queries = append(queries, workload.FullXPathQueries()...)
	queries = append(queries, workload.MixedQuery(), workload.PositionHeavy())
	for i := 1; i <= 4; i++ {
		queries = append(queries, workload.DoublingQuery(i))
	}
	for name, doc := range docs {
		for _, src := range queries {
			t.Run(name+"/"+src, func(t *testing.T) {
				agree(t, doc, src, "")
			})
		}
	}
}
