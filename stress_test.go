package xpath

// Stress and structural edge-case tests across all engines: deep recursion,
// wide fans, id-axis chains, filter heads that consume the outer context
// position, and top-level unions — shapes the conformance suite does not
// reach.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestDeepDocumentRecursion: a 600-deep chain must not overflow and the
// ancestor/descendant axes must agree across engines. (E↑ is excluded: its
// |D|³ tables are the point of experiment E7, not of this test.)
func TestDeepDocumentRecursion(t *testing.T) {
	doc := WrapTree(workload.DeepChain(600))
	for _, src := range []string{
		`count(//a/ancestor::*)`,
		`//b[not(child::node())]`,
		`count(/descendant::*[last()])`,
		`string-length(string(//c)) > 0`,
	} {
		q := MustCompile(src)
		ref, err := q.EvaluateWith(doc, Options{Engine: EngineTopDown})
		if err != nil {
			t.Fatalf("topdown %q: %v", src, err)
		}
		for _, eng := range []Engine{EngineOptMinContext, EngineMinContext} {
			got, err := q.EvaluateWith(doc, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%v %q: %v", eng, src, err)
			}
			if got.Text() != ref.Text() {
				t.Errorf("%v on %q: %q vs %q", eng, src, got.Text(), ref.Text())
			}
		}
	}
}

// TestWideFanPositions: position/size semantics on a 500-sibling fan.
func TestWideFanPositions(t *testing.T) {
	doc := WrapTree(workload.WideFan(500))
	q := MustCompile(`/a/*[position() = last() - 1]`)
	for _, eng := range []Engine{EngineOptMinContext, EngineMinContext, EngineTopDown} {
		res, err := q.EvaluateWith(doc, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		nodes := res.Nodes()
		if len(nodes) != 1 || nodes[0].Pre() != doc.Size()-1 {
			t.Errorf("%v: %v", eng, nodes)
		}
	}
}

// TestIDChains: chained id() dereferences (the id-axis of §4) across
// engines, including inside predicates.
func TestIDChains(t *testing.T) {
	// n1 → "n2", n2 → "n3 n4", n3/n4 leaves.
	doc, err := ParseDocumentString(
		`<g id="g"><n id="n1">n2</n><n id="n2">n3 n4</n><n id="n3">x</n><n id="n4">y</n></g>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		`id("n1")`:            "n1",
		`id(id("n1"))`:        "n2",
		`id(id(id("n1")))`:    "n3 n4",
		`id("n1 n2")/self::n`: "n1 n2",
		`//n[id("n2")]`:       "n1 n2 n3 n4", // nonempty id() ⇒ predicate true everywhere
		`//n[. = "x"]/preceding-sibling::n[id(string(.))]`: "n1 n2",
	}
	for src, want := range cases {
		q := MustCompile(src)
		for _, eng := range allEngines {
			res, err := q.EvaluateWith(doc, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%v on %q: %v", eng, src, err)
			}
			var ids []string
			for _, n := range res.Nodes() {
				id, _ := n.Attr("id")
				ids = append(ids, id)
			}
			if got := strings.Join(ids, " "); got != want {
				t.Errorf("%v on %q: {%s}, want {%s}", eng, src, got, want)
			}
		}
	}
}

// TestFilterHeadWithOuterPosition: a path whose filter head consumes the
// outer context position — the construct that forces pathForSingleContext
// in MINCONTEXT (Relev(path) ⊇ {cp}).
func TestFilterHeadWithOuterPosition(t *testing.T) {
	doc, err := ParseDocumentString(
		`<g><n id="p1">one</n><n id="p2">two</n><n id="p3">three</n></g>`)
	if err != nil {
		t.Fatal(err)
	}
	// id(concat("p", string(position()))) resolves to a different node per
	// context position.
	q := MustCompile(`id(concat("p", string(position())))`)
	for pos := 1; pos <= 3; pos++ {
		want := fmt.Sprintf("p%d", pos)
		for _, eng := range []Engine{EngineOptMinContext, EngineMinContext, EngineTopDown, EngineNaive} {
			res, err := q.EvaluateWith(doc, Options{Engine: eng, Position: pos, Size: 3})
			if err != nil {
				t.Fatalf("%v: %v", eng, err)
			}
			nodes := res.Nodes()
			if len(nodes) != 1 {
				t.Fatalf("%v pos=%d: %d nodes", eng, pos, len(nodes))
			}
			if id, _ := nodes[0].Attr("id"); id != want {
				t.Errorf("%v pos=%d: %s, want %s", eng, pos, id, want)
			}
		}
	}
	// The same construct with a step tail.
	q2 := MustCompile(`id(concat("p", string(position())))/self::n`)
	res, err := q2.EvaluateWith(doc, Options{Engine: EngineMinContext, Position: 2, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes()) != 1 || res.Nodes()[0].StringValue() != "two" {
		t.Errorf("filter head with steps: %v", res)
	}
}

// TestTopLevelUnions: unions at the outermost level, including mixed
// absolute/relative members and nested predicates.
func TestTopLevelUnions(t *testing.T) {
	doc := figure2Doc(t)
	cases := map[string]string{
		`//c | //d`:                          "x12 x13 x14 x22 x23 x24",
		`/child::a | //b[last()]`:            "x10 x21",
		`//c[1] | //d[last()]`:               "x12 x14 x22 x24",
		`//b/c | //b/d | /descendant::a/b/c`: "x12 x13 x14 x22 x23 x24",
	}
	for src, want := range cases {
		for _, eng := range allEngines {
			if got := evalNodes(t, doc, src, eng); got != want {
				t.Errorf("%v on %q: {%s}, want {%s}", eng, src, got, want)
			}
		}
	}
}

// TestManyPredicates: long predicate chains apply strictly left to right.
// Short mode shrinks the chain — the per-predicate position loops multiply
// across engines (the naive engine re-walks the candidate list per
// predicate) without adding coverage beyond a handful of links.
func TestManyPredicates(t *testing.T) {
	chain := 10
	if testing.Short() {
		chain = 4
	}
	doc := WrapTree(workload.WideFan(40))
	src := `/a/*` + strings.Repeat(`[position() != 1]`, chain) + `[1]`
	q := MustCompile(src)
	wantPre := 2 + chain // first fan child is pre 2; each link drops one
	for _, eng := range allEngines {
		res, err := q.EvaluateWith(doc, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		nodes := res.Nodes()
		if len(nodes) != 1 || nodes[0].Pre() != wantPre {
			t.Errorf("%v: got %d nodes, first pre %d (want pre %d)",
				eng, len(nodes), nodes[0].Pre(), wantPre)
		}
	}
}

// TestLongStepChains: fifty chained child steps on a deep chain.
func TestLongStepChains(t *testing.T) {
	doc := WrapTree(workload.DeepChain(120))
	src := "/*" + strings.Repeat("/*", 49) // 50 steps
	q := MustCompile(src)
	for _, eng := range allEngines {
		res, err := q.EvaluateWith(doc, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes()) != 1 || res.Nodes()[0].Pre() != 50 {
			t.Errorf("%v: %v", eng, res)
		}
	}
}

// TestEmptyDocumentEdge: a single-element document exercises the |dom|=1
// boundary of every engine.
func TestEmptyDocumentEdge(t *testing.T) {
	doc, err := ParseDocumentString(`<only/>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		`count(//only)`:           "1",
		`count(//only/..)`:        "1", // parent::node() matches the document root
		`count(//only/parent::*)`: "0", // but '*' excludes it (not in dom)
		`count(/self::node())`:    "1",
		`boolean(//only[last()])`: "true",
		`string(//only)`:          "",
	}
	for src, want := range cases {
		for _, eng := range allEngines {
			q := MustCompile(src)
			res, err := q.EvaluateWith(doc, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%v on %q: %v", eng, src, err)
			}
			if got := res.Text(); got != want {
				t.Errorf("%v on %q = %q, want %q", eng, src, got, want)
			}
		}
	}
}
