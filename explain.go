package xpath

import (
	"fmt"
	"strings"

	"repro/internal/syntax"
	"repro/internal/trace"
)

// Explain describes how OPTMINCONTEXT will evaluate the query: the fragment
// classification, the per-node relevant contexts of Section 3.1, and the
// bottom-up evaluation plan of Algorithm 8. The output is meant for humans
// (CLI -explain flag, examples); its exact format is not part of the API
// contract.
func (q *Query) Explain() string {
	var b strings.Builder
	iq := q.q
	fmt.Fprintf(&b, "query:      %s\n", iq.Source)
	fmt.Fprintf(&b, "normalized: %s\n", iq.Root)
	fmt.Fprintf(&b, "fragment:   %s", q.Fragment())
	switch q.Fragment() {
	case CoreXPath:
		b.WriteString("  (evaluable in O(|D|·|Q|), Theorem 13)")
	case ExtendedWadler:
		b.WriteString("  (O(|D|²·|Q|²) time, O(|D|·|Q|²) space, Theorem 10)")
	default:
		b.WriteString("  (O(|D|⁴·|Q|²) time, O(|D|²·|Q|²) space, Theorem 7)")
	}
	fmt.Fprintf(&b, "\nparse tree: %d nodes\n", iq.Size())

	// Relevant-context summary: how many nodes get tabled by context node
	// only, how many need the position/size loop, how many are constant.
	var constant, cnOnly, positional int
	for id := range iq.Nodes {
		r := iq.Relev[id]
		switch {
		case r == 0:
			constant++
		case r.NeedsPosition():
			positional++
		default:
			cnOnly++
		}
	}
	fmt.Fprintf(&b, "relev:      %d constant, %d context-node-only (tabled), %d position-dependent (loop-evaluated)\n",
		constant, cnOnly, positional)

	if len(iq.BottomUp) == 0 {
		b.WriteString("bottom-up:  none (MINCONTEXT handles the whole tree)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "bottom-up:  %d subexpression(s), evaluated innermost-first via inverse axes (Algorithm 8):\n", len(iq.BottomUp))
	for _, id := range iq.BottomUp {
		pi, op, scalar := iq.BottomUpPath(id)
		if scalar == nil {
			fmt.Fprintf(&b, "  N%-3d boolean(%s)\n", id, pi)
		} else {
			fmt.Fprintf(&b, "  N%-3d %s %s %s\n", id, pi, opName(op), scalar)
		}
	}
	return b.String()
}

func opName(op syntax.BinOp) string { return op.String() }

// ExplainPlan returns the EngineCompiled instruction listing for the query:
// the disassembly of the flat register-VM program internal/plan lowers the
// normalized tree into. Like Explain, the output is meant for humans (the
// CLI's -explain flag) and its exact format is not part of the API contract.
func (q *Query) ExplainPlan() string {
	p, err := compiledEngine.Plan(q.q)
	if err != nil {
		return fmt.Sprintf("plan: compile error: %v\n", err)
	}
	return p.Disasm()
}

// ExplainAnalyze is EXPLAIN with actual numbers: it evaluates the query on
// doc with EngineCompiled under a trace recorder and returns the plan
// disassembly annotated per instruction with the observed behavior —
//
//	3  step       r1 = step(r0, child, b)[sat r2]   ; calls=1 in=1 out=2 ns=1.2µs scratch=64B
//
// calls is how many times the instruction executed (predicate blocks run
// once per candidate node), in/out are summed node-set cardinalities over
// those executions, ns is the summed wall time, and scratch is the axis
// scratch arena's high-water mark. A summary header reports the total
// evaluation time and result cardinality. Like Explain, the output is for
// humans; its exact format is not part of the API contract.
func (q *Query) ExplainAnalyze(doc *Document) (string, error) {
	p, err := compiledEngine.Plan(q.q)
	if err != nil {
		return "", fmt.Errorf("xpath: explain analyze: %w", err)
	}
	rec := NewTraceRecorder()
	res, err := q.EvaluateWith(doc, Options{Engine: EngineCompiled, Tracer: rec})
	if err != nil {
		return "", err
	}

	rows := rec.Rows()
	byInstr := make(map[[2]int]TraceRow)
	for _, r := range rows {
		if r.Kind == trace.KindOpcode {
			byInstr[[2]int{r.Block, r.PC}] = r
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "query:      %s\n", q.q.Source)
	fmt.Fprintf(&b, "engine:     %s\n", EngineCompiled)
	fmt.Fprintf(&b, "total:      %s", fmtNs(rec.TotalNs(trace.KindEval)))
	if res.IsNodeSet() {
		fmt.Fprintf(&b, "  (%d node(s))", len(res.v.Set.Nodes()))
	}
	b.WriteByte('\n')
	b.WriteString(p.DisasmAnnotated(func(block, pc int) string {
		r, ok := byInstr[[2]int{block, pc}]
		if !ok {
			return "   ; never executed"
		}
		a := fmt.Sprintf("   ; calls=%d in=%s out=%s ns=%s",
			r.Calls, fmtCard(r.In), fmtCard(r.Out), fmtNs(r.Ns))
		if r.HighWater > 0 {
			a += fmt.Sprintf(" scratch=%dB", r.HighWater)
		}
		return a
	}))
	return b.String(), nil
}

// fmtCard renders a summed cardinality; "-" when no node-set operand was
// observed (scalar instructions).
func fmtCard(n int64) string {
	if n < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

// fmtNs renders nanoseconds with a human unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
