package xpath

import (
	"fmt"
	"strings"

	"repro/internal/syntax"
)

// Explain describes how OPTMINCONTEXT will evaluate the query: the fragment
// classification, the per-node relevant contexts of Section 3.1, and the
// bottom-up evaluation plan of Algorithm 8. The output is meant for humans
// (CLI -explain flag, examples); its exact format is not part of the API
// contract.
func (q *Query) Explain() string {
	var b strings.Builder
	iq := q.q
	fmt.Fprintf(&b, "query:      %s\n", iq.Source)
	fmt.Fprintf(&b, "normalized: %s\n", iq.Root)
	fmt.Fprintf(&b, "fragment:   %s", q.Fragment())
	switch q.Fragment() {
	case CoreXPath:
		b.WriteString("  (evaluable in O(|D|·|Q|), Theorem 13)")
	case ExtendedWadler:
		b.WriteString("  (O(|D|²·|Q|²) time, O(|D|·|Q|²) space, Theorem 10)")
	default:
		b.WriteString("  (O(|D|⁴·|Q|²) time, O(|D|²·|Q|²) space, Theorem 7)")
	}
	fmt.Fprintf(&b, "\nparse tree: %d nodes\n", iq.Size())

	// Relevant-context summary: how many nodes get tabled by context node
	// only, how many need the position/size loop, how many are constant.
	var constant, cnOnly, positional int
	for id := range iq.Nodes {
		r := iq.Relev[id]
		switch {
		case r == 0:
			constant++
		case r.NeedsPosition():
			positional++
		default:
			cnOnly++
		}
	}
	fmt.Fprintf(&b, "relev:      %d constant, %d context-node-only (tabled), %d position-dependent (loop-evaluated)\n",
		constant, cnOnly, positional)

	if len(iq.BottomUp) == 0 {
		b.WriteString("bottom-up:  none (MINCONTEXT handles the whole tree)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "bottom-up:  %d subexpression(s), evaluated innermost-first via inverse axes (Algorithm 8):\n", len(iq.BottomUp))
	for _, id := range iq.BottomUp {
		pi, op, scalar := iq.BottomUpPath(id)
		if scalar == nil {
			fmt.Fprintf(&b, "  N%-3d boolean(%s)\n", id, pi)
		} else {
			fmt.Fprintf(&b, "  N%-3d %s %s %s\n", id, pi, opName(op), scalar)
		}
	}
	return b.String()
}

func opName(op syntax.BinOp) string { return op.String() }

// ExplainPlan returns the EngineCompiled instruction listing for the query:
// the disassembly of the flat register-VM program internal/plan lowers the
// normalized tree into. Like Explain, the output is meant for humans (the
// CLI's -explain flag) and its exact format is not part of the API contract.
func (q *Query) ExplainPlan() string {
	p, err := compiledEngine.Plan(q.q)
	if err != nil {
		return fmt.Sprintf("plan: compile error: %v\n", err)
	}
	return p.Disasm()
}
