package xpath

// Interleaved mutate/query differential fuzzing: randomized write traffic
// churns a store's documents through Replace while queries evaluate
// concurrently, and every observed result must equal the result of some
// complete document version — old or new, never a torn hybrid. The
// admissible set is precomputed serially on private instances of each
// version (fuzzgen.VersionedDocument regenerates them deterministically),
// so the membership check is exact: under -race this pins both memory
// safety and linearizable old-or-new observation of the mutation layer.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fuzzgen"
)

func TestInterleavedMutateQueryFuzz(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	const versions = 3
	rng := rand.New(rand.NewSource(fuzzSeed + 7))
	for round := 0; round < rounds; round++ {
		docSeed := rng.Int63()
		size := 20 + rng.Intn(30)
		src := fuzzgen.Query(rng, fuzzgen.Config{})
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("round %d: compile %q: %v", round, src, err)
		}

		// The admissible results: one render per complete version.
		want := make(map[string]bool, versions)
		for v := 0; v < versions; v++ {
			res, err := q.Evaluate(WrapTree(fuzzgen.VersionedDocument(docSeed, size, v)))
			if err != nil {
				t.Fatalf("round %d: serial eval %q on version %d: %v", round, src, v, err)
			}
			want[res.String()] = true
		}

		st := NewStore()
		if err := st.Add("x", WrapTree(fuzzgen.VersionedDocument(docSeed, size, 0))); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var mutator sync.WaitGroup
		mutator.Add(1)
		go func() {
			defer mutator.Done()
			for v := 1; ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Replace("x", WrapTree(fuzzgen.VersionedDocument(docSeed, size, v%versions))); err != nil {
					t.Error(err)
					return
				}
			}
		}()

		var queriers sync.WaitGroup
		for g := 0; g < 2; g++ {
			queriers.Add(1)
			go func() {
				defer queriers.Done()
				for i := 0; i < 15; i++ {
					doc, ok := st.Get("x")
					if !ok {
						t.Error("document vanished")
						return
					}
					res, err := q.Evaluate(doc)
					if err != nil {
						t.Errorf("eval under churn: %v", err)
						return
					}
					if !want[res.String()] {
						t.Errorf("round %d (doc seed %d, query %q): observed %q, not any complete version's result",
							round, docSeed, src, res.String())
						return
					}
				}
			}()
		}
		queriers.Wait()
		close(stop)
		mutator.Wait()
		if t.Failed() {
			t.Fatalf("round %d failed (suite seed %d)", round, fuzzSeed+7)
		}
	}
}
