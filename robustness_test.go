package xpath

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// budgetEngines is every engine the budget contract must cover. EngineAuto
// is the same implementation as EngineOptMinContext but kept separate so a
// future auto-dispatch change cannot silently drop the budget.
var budgetEngines = []Engine{
	EngineAuto, EngineOptMinContext, EngineMinContext, EngineTopDown,
	EngineBottomUp, EngineCoreXPath, EngineNaive, EngineCompiled,
}

// TestBudgetFuelTripsEveryEngine proves every engine's main loop actually
// checks the budget: with a few units of fuel against a document needing
// thousands of steps, each engine must return ErrBudgetExceeded
// mid-evaluation rather than completing or panicking.
func TestBudgetFuelTripsEveryEngine(t *testing.T) {
	doc := WrapTree(workload.Scaled(120))
	q := MustCompile(`//b[position() != last()]/child::*`)
	// The corexpath engine rejects positional predicates, so it gets a
	// query inside its fragment (Definition 12).
	qCore := MustCompile(`/descendant::b[child::d]/child::*`)
	for _, eng := range budgetEngines {
		query := q
		if eng == EngineCoreXPath {
			query = qCore
		}
		bud := NewBudget(BudgetLimits{Steps: 5})
		_, err := query.EvaluateWith(doc, Options{Engine: eng, Budget: bud})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: err = %v, want ErrBudgetExceeded", eng, err)
		}
	}
}

// TestPreCanceledBudgetEveryEngine: an already-canceled budget stops every
// engine at its first check.
func TestPreCanceledBudgetEveryEngine(t *testing.T) {
	doc := WrapTree(workload.Scaled(60))
	q := MustCompile(`//b/child::c`)
	for _, eng := range budgetEngines {
		bud := NewBudget(BudgetLimits{})
		bud.Cancel()
		_, err := q.EvaluateWith(doc, Options{Engine: eng, Budget: bud})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", eng, err)
		}
	}
}

// TestCancelMidEvaluationEveryEngine cancels from another goroutine while
// each engine evaluates (run under -race in CI: Budget sharing across
// goroutines must be clean). Documents grow until the evaluation is slow
// enough that the concurrent cancel lands mid-flight; cancellation working
// at all sizes keeps the test fast, while a broken engine fails after the
// retries rather than hanging.
func TestCancelMidEvaluationEveryEngine(t *testing.T) {
	// Per-engine workloads: heavy enough that the cancel lands mid-flight
	// at some size in the ladder, shaped to each engine's fragment (the
	// corexpath engine rejects positional predicates; naive needs the
	// doubling query to slow down at all).
	heavy := `//b[position() != last()]/descendant-or-self::*[count(child::*) >= 0]`
	core := `/descendant::b[child::d]/descendant-or-self::*/child::*`
	type attempt struct {
		doc *Document
		src string
	}
	ladder := func(src string, sizes ...int) []attempt {
		var out []attempt
		for _, n := range sizes {
			out = append(out, attempt{WrapTree(workload.Scaled(n)), src})
		}
		return out
	}
	attempts := map[Engine][]attempt{
		EngineAuto:          ladder(heavy, 400, 1600, 6400, 25600),
		EngineOptMinContext: ladder(heavy, 400, 1600, 6400, 25600),
		EngineMinContext:    ladder(heavy, 400, 1600, 6400, 25600),
		EngineTopDown:       ladder(heavy, 400, 1600, 6400),
		EngineBottomUp:      ladder(heavy, 100, 200, 400),
		EngineCoreXPath:     ladder(core, 400, 1600, 6400, 25600),
		EngineCompiled:      ladder(heavy, 400, 1600, 6400, 25600),
		EngineNaive: {
			{WrapTree(workload.Doubling()), workload.DoublingQuery(8)},
			{WrapTree(workload.Doubling()), workload.DoublingQuery(12)},
			{WrapTree(workload.Doubling()), workload.DoublingQuery(16)},
		},
	}
	for _, eng := range budgetEngines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			canceled := false
			for _, at := range attempts[eng] {
				q := MustCompile(at.src)
				bud := NewBudget(BudgetLimits{})
				done := make(chan error, 1)
				go func() {
					_, err := q.EvaluateWith(at.doc, Options{Engine: eng, Budget: bud})
					done <- err
				}()
				time.Sleep(500 * time.Microsecond)
				bud.Cancel()
				select {
				case err := <-done:
					if err == nil {
						continue // finished before the cancel; grow the workload
					}
					if !errors.Is(err, ErrCanceled) {
						t.Fatalf("%s on %s: err = %v, want ErrCanceled", eng, at.src, err)
					}
					canceled = true
				case <-time.After(30 * time.Second):
					t.Fatalf("%s on %s: cancellation never observed", eng, at.src)
				}
				if canceled {
					break
				}
			}
			if !canceled {
				t.Skipf("%s finished every workload before the cancel landed", eng)
			}
		})
	}
}

// TestOptionsContextBridging: a canceled or expired context surfaces as the
// matching budget error, before or during evaluation.
func TestOptionsContextBridging(t *testing.T) {
	doc := WrapTree(workload.Scaled(60))
	q := MustCompile(`//b/child::c`)

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.EvaluateWith(doc, Options{Context: cctx}); !errors.Is(err, ErrCanceled) {
		t.Errorf("pre-canceled context: err = %v, want ErrCanceled", err)
	}

	dctx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := q.EvaluateWith(doc, Options{Context: dctx}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("expired context: err = %v, want ErrDeadlineExceeded", err)
	}

	// A live context leaves the evaluation alone.
	if _, err := q.EvaluateWith(doc, Options{Context: context.Background()}); err != nil {
		t.Errorf("live context: %v", err)
	}

	// Context cancellation mid-evaluation reaches a caller-supplied budget.
	big := WrapTree(workload.Scaled(8000))
	mctx, cancel3 := context.WithCancel(context.Background())
	bud := NewBudget(BudgetLimits{})
	done := make(chan error, 1)
	go func() {
		_, err := q.EvaluateWith(big, Options{
			Engine: EngineTopDown, Budget: bud, Context: mctx,
		})
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel3()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Errorf("mid-evaluation context cancel: err = %v, want nil or ErrCanceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("context cancellation never reached the evaluation")
	}
}

// TestDeadlineBudget: an expiring deadline interrupts a long evaluation.
func TestDeadlineBudget(t *testing.T) {
	doc := WrapTree(workload.Scaled(4000))
	q := MustCompile(`//b[position() != last()]/descendant-or-self::*[count(child::*) >= 0]`)
	bud := NewBudget(BudgetLimits{Deadline: 2 * time.Millisecond})
	_, err := q.EvaluateWith(doc, Options{Engine: EngineTopDown, Budget: bud})
	if err != nil && !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want nil or ErrDeadlineExceeded", err)
	}
	if err == nil {
		t.Skip("evaluation beat the 2ms deadline on this machine")
	}
}

// TestResultCardinalityCap: node-set results over the cap are rejected.
func TestResultCardinalityCap(t *testing.T) {
	doc := WrapTree(workload.Scaled(100))
	q := MustCompile(`//*`)
	over, err := q.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	n := len(over.Nodes())
	if _, err := q.EvaluateWith(doc, Options{
		Budget: NewBudget(BudgetLimits{MaxResultCard: n}),
	}); err != nil {
		t.Errorf("at-cap cardinality rejected: %v", err)
	}
	_, err = q.EvaluateWith(doc, Options{
		Budget: NewBudget(BudgetLimits{MaxResultCard: n - 1}),
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("over-cap cardinality: err = %v, want ErrBudgetExceeded", err)
	}
}

// TestBudgetReuseStaysTripped documents the single-evaluation contract: a
// budget that tripped once rejects every later evaluation immediately.
func TestBudgetReuseStaysTripped(t *testing.T) {
	doc := WrapTree(workload.Scaled(30))
	q := MustCompile(`//b`)
	bud := NewBudget(BudgetLimits{Steps: 1})
	if _, err := q.EvaluateWith(doc, Options{Budget: bud}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("first evaluation: err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := q.EvaluateWith(doc, Options{Budget: bud}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("reused tripped budget: err = %v, want immediate ErrBudgetExceeded", err)
	}
}

// TestBatchBudgetCancelsSiblings: tripping a shared batch budget marks the
// untouched documents with the budget error instead of evaluating them.
func TestBatchBudgetCancelsSiblings(t *testing.T) {
	st := NewStore()
	for i := 0; i < 16; i++ {
		doc, err := ParseDocumentString(fmt.Sprintf(`<r><b id="%d"><c/></b></r>`, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(fmt.Sprintf("doc-%02d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	bud := NewBudget(BudgetLimits{})
	bud.Cancel()
	batch, err := st.Query(`//c`, BatchOptions{Budget: bud, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Errs() != len(batch.Docs) {
		t.Fatalf("%d/%d documents failed, want all (budget tripped before the batch)",
			batch.Errs(), len(batch.Docs))
	}
	for _, dr := range batch.Docs {
		if !errors.Is(dr.Err, ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", dr.ID, dr.Err)
		}
	}
}

// TestParallelBudgetCancel: EvaluateParallel honors a shared budget.
func TestParallelBudgetCancel(t *testing.T) {
	doc := WrapTree(workload.Scaled(600))
	q := MustCompile(`/child::a/child::b/child::*`)
	bud := NewBudget(BudgetLimits{})
	bud.Cancel()
	_, err := q.EvaluateParallel(doc, ParallelOptions{Budget: bud, Workers: 4})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestConcurrentCancelVsStoreAdd runs batch queries under a budget that a
// sibling goroutine cancels while other goroutines mutate the store — the
// -race job proves the budget, the store's sharding and the batch fan-out
// compose without data races.
func TestConcurrentCancelVsStoreAdd(t *testing.T) {
	st := NewStore()
	for i := 0; i < 8; i++ {
		doc, err := ParseDocumentString(fmt.Sprintf(`<r><b id="%d"><c/></b></r>`, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(fmt.Sprintf("seed-%d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	ids := st.IDs() // pin the batch to the immutable seed documents
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer: churns fresh documents while the batches run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			doc, err := ParseDocumentString(`<r><b><c/></b></r>`)
			if err != nil {
				t.Error(err)
				return
			}
			id := fmt.Sprintf("churn-%d", i%4)
			if err := st.Add(id, doc); err != nil {
				t.Error(err)
				return
			}
			st.Remove(id)
		}
	}()
	for round := 0; round < 20; round++ {
		bud := NewBudget(BudgetLimits{})
		var cwg sync.WaitGroup
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			bud.Cancel()
		}()
		batch, err := st.Query(`//c`, BatchOptions{Budget: bud, Workers: 4, IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		for _, dr := range batch.Docs {
			if dr.Err != nil && !errors.Is(dr.Err, ErrCanceled) {
				t.Fatalf("round %d, %s: err = %v", round, dr.ID, dr.Err)
			}
		}
		cwg.Wait()
	}
	close(stop)
	wg.Wait()
}
