// Quickstart: parse a document, compile a query, evaluate it, and read both
// node-set and scalar results through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	xpath "repro"
)

const doc = `
<library>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
  <book year="1992"><title>Advanced Unix Programming</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
  <book year="1999"><title>Economics of Technology</title><price>129.95</price></book>
</library>`

func main() {
	d, err := xpath.ParseDocumentString(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d element nodes\n\n", d.Size())

	// A node-set query, in abbreviated syntax.
	q, err := xpath.Compile(`//book[price < 70]/title`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:      %s\nnormalized: %s\nfragment:   %s\n\n",
		q.Source(), q, q.Fragment())

	res, err := q.Evaluate(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books under 70:")
	for _, n := range res.Nodes() {
		fmt.Printf("  - %s\n", n.StringValue())
	}

	// Scalar queries: every XPath 1.0 type is supported.
	for _, src := range []string{
		`count(//book)`,
		`sum(//book/price)`,
		`string(//book[1]/title)`,
		`boolean(//magazine)`,
		`//book[last()]/title = "Economics of Technology"`,
	} {
		q := xpath.MustCompile(src)
		res, err := q.Evaluate(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-48s = %s", src, res)
	}
	fmt.Println()
}
