// Paperfigures: replays the paper's worked examples end to end — the
// Figure 2 document, the §2.4 running query with its Example 4/5 sets, and
// the Example 9 OPTMINCONTEXT walkthrough — printing each artifact next to
// the value the paper states.
//
//	go run ./examples/paperfigures
package main

import (
	"fmt"
	"log"

	xpath "repro"
)

const figure2 = `<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`

func ids(nodes []*xpath.Node) string {
	out := "{"
	for i, n := range nodes {
		if i > 0 {
			out += ", "
		}
		id, _ := n.Attr("id")
		out += "x" + id
	}
	return out + "}"
}

func eval(doc *xpath.Document, src string, eng xpath.Engine) *xpath.Result {
	q, err := xpath.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.EvaluateWith(doc, xpath.Options{Engine: eng})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	doc, err := xpath.ParseDocumentString(figure2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 2 document: |dom| = %d (paper: 9)\n\n", doc.Size())

	// Section 2.4 / Example 4.
	e := `/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]`
	fmt.Println("§2.4 query e =", e)
	first := eval(doc, `/descendant::*`, xpath.EngineOptMinContext)
	fmt.Printf("  X after first step   = %s\n", ids(first.Nodes()))
	fmt.Println("    (paper Example 4: {x10, x11, x12, x13, x14, x21, x22, x23, x24})")
	final := eval(doc, e, xpath.EngineOptMinContext)
	fmt.Printf("  final result Y       = %s\n", ids(final.Nodes()))
	fmt.Println("    (paper: {x13, x14, x21, x22, x23, x24})")

	// The same result from every engine (the paper's algorithms are
	// semantics-preserving refinements of one another).
	fmt.Println("\n  cross-engine check:")
	for _, eng := range []xpath.Engine{xpath.EngineOptMinContext, xpath.EngineMinContext,
		xpath.EngineTopDown, xpath.EngineBottomUp, xpath.EngineNaive} {
		res := eval(doc, e, eng)
		fmt.Printf("    %-15s %s\n", eng, ids(res.Nodes()))
	}

	// Example 9.
	qSrc := `/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]`
	fmt.Println("\nExample 9 query Q =", qSrc)
	rho := eval(doc, `preceding-sibling::*/preceding::* = 100`, xpath.EngineOptMinContext)
	_ = rho
	inner := xpath.MustCompile(`preceding-sibling::*/preceding::* = 100`)
	var trueAt []string
	for _, id := range []string{"10", "11", "12", "13", "14", "21", "22", "23", "24"} {
		res, err := inner.EvaluateWith(doc, xpath.Options{Engine: xpath.EngineOptMinContext, ContextNode: doc.ByID(id)})
		if err != nil {
			log.Fatal(err)
		}
		if res.Bool() {
			trueAt = append(trueAt, "x"+id)
		}
	}
	fmt.Printf("  ρ = 100 holds at      %v   (paper: {x23, x24})\n", trueAt)
	resQ := eval(doc, qSrc, xpath.EngineOptMinContext)
	fmt.Printf("  final result          %s\n", ids(resQ.Nodes()))
	fmt.Println("    (paper: {x11, x12, x13, x14, x22})")

	// Fragment classifications the paper discusses.
	fmt.Println("\nfragments:")
	for _, src := range []string{e, qSrc, `/descendant::b[child::d]/child::c`} {
		q := xpath.MustCompile(src)
		fmt.Printf("  %-30.30s… → %s\n", src, q.Fragment())
	}
}
