// Fragments: classify queries into the paper's efficiency classes
// (Core XPath ⊂ Extended Wadler ⊂ full XPath 1.0) and show what the
// classification costs in practice — which is exactly the point of
// Section 4: "it pinpoints those features of XPath 1.0 that are the most
// expensive, even though their practical value is questionable."
//
//	go run ./examples/fragments
package main

import (
	"fmt"
	"log"
	"time"

	xpath "repro"
	"repro/internal/workload"
)

func main() {
	queries := []string{
		// Core XPath (Definition 12): O(|D|·|Q|).
		`//section[product]/name`,
		`//b[.//d and not(child::c)]`,
		// Extended Wadler (§4): O(|D|²·|Q|²) time, O(|D|·|Q|²) space.
		`//product[price = 100]`,
		`//c[position() != last()]`,
		`//b[boolean(following::d)]`,
		// Full XPath 1.0 (Theorem 7 bounds): Restrictions 1/2 violated.
		`//section[count(product) > 5]`,
		`//b[c = following::d]`,
		`//product[string-length(string(sku)) > 3]`,
	}

	fmt.Println("fragment classification:")
	for _, src := range queries {
		q, err := xpath.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-46s → %s\n", src, q.Fragment())
	}

	// Cost: the same document, one query per fragment, growing |D|.
	fmt.Println("\nwall time by fragment (OPTMINCONTEXT picks the best strategy per subexpression):")
	perFragment := map[string]string{
		"core-xpath":      `//b[.//d]/c`,
		"extended-wadler": `//c[position() != last()][following::d = 100]`,
		"full-xpath":      `//b[count(c) > 1]/d`,
	}
	for _, name := range []string{"core-xpath", "extended-wadler", "full-xpath"} {
		src := perFragment[name]
		q := xpath.MustCompile(src)
		fmt.Printf("  %-16s %s\n", name, src)
		for _, n := range []int{200, 400, 800} {
			doc := xpath.WrapTree(workload.Scaled(n))
			start := time.Now()
			res, err := q.Evaluate(doc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    |D|=%-5d %8s  (%d result nodes, %d table cells)\n",
				n, time.Since(start).Round(time.Microsecond), len(res.Nodes()), res.Stats().TableCells)
		}
	}
}
