// Catalog: a realistic product-catalog workload — the kind of
// data-oriented XML querying the paper's introduction motivates — with
// engine selection and per-engine cost comparison on the same queries.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"
	"strings"

	xpath "repro"
)

// buildCatalog synthesizes a catalog with sections, products, prices and
// stock counts, plus cross-references through id attributes.
func buildCatalog(productsPerSection int) *xpath.Document {
	var b strings.Builder
	b.WriteString(`<catalog id="cat">`)
	sections := []string{"storage", "network", "compute"}
	prices := []string{"19", "49", "100", "249", "999"}
	for si, sec := range sections {
		fmt.Fprintf(&b, `<section id="s%d"><name>%s</name>`, si, sec)
		for p := 0; p < productsPerSection; p++ {
			id := fmt.Sprintf("p%d%d", si, p)
			fmt.Fprintf(&b,
				`<product id="%s"><sku>%s</sku><price>%s</price><stock>%d</stock></product>`,
				id, strings.ToUpper(id), prices[(si+p)%len(prices)], (p*7)%13)
		}
		b.WriteString(`</section>`)
	}
	// A promotions block referring to products by id.
	b.WriteString(`<promotions><promo>p01 p12</promo><promo>p20</promo></promotions>`)
	b.WriteString(`</catalog>`)
	doc, err := xpath.ParseDocumentString(b.String())
	if err != nil {
		log.Fatal(err)
	}
	return doc
}

func main() {
	doc := buildCatalog(6)
	fmt.Printf("catalog with %d nodes\n\n", doc.Size())

	queries := []struct {
		what string
		src  string
	}{
		{"products costing exactly 100", `//product[price = 100]/sku`},
		{"cheap and in stock", `//product[price < 50][stock > 0]/sku`},
		{"sections that stock something expensive", `//section[product/price >= 249]/name`},
		{"promoted products (id dereference)", `id(//promo)/sku`},
		{"last product of each section", `//section/product[last()]/sku`},
		{"total stock value is a number", `sum(//product/stock)`},
		{"out-of-stock products exist", `boolean(//product[stock = 0])`},
	}
	for _, item := range queries {
		q, err := xpath.Compile(item.src)
		if err != nil {
			log.Fatal(err)
		}
		res, err := q.Evaluate(doc)
		if err != nil {
			log.Fatal(err)
		}
		var rendered string
		if res.IsNodeSet() {
			var parts []string
			for _, n := range res.Nodes() {
				parts = append(parts, n.StringValue())
			}
			rendered = strings.Join(parts, ", ")
		} else {
			rendered = res.Text()
		}
		fmt.Printf("%-42s %-12s → %s\n", item.what, "("+q.Fragment().String()+")", rendered)
	}

	// The same query costs very differently across the paper's engines.
	fmt.Println("\nengine cost comparison on", queries[2].src, "(catalog with 100 products/section)")
	big := buildCatalog(100)
	q := xpath.MustCompile(queries[2].src)
	for _, eng := range []xpath.Engine{xpath.EngineOptMinContext, xpath.EngineMinContext, xpath.EngineTopDown} {
		res, err := q.EvaluateWith(big, xpath.Options{Engine: eng})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats()
		fmt.Printf("  %-15s cells=%-8d contexts=%-8d axis-calls=%d\n",
			eng, s.TableCells, s.ContextsEvaluated, s.AxisCalls)
	}
}
