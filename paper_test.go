package xpath

// Golden tests reproducing the paper's running examples end-to-end:
// the Figure 2 document, the §2.4 query with its Figure 4/5 context-value
// tables, Examples 3–5 (MINCONTEXT) and Example 9 (OPTMINCONTEXT).

import (
	"strings"
	"testing"
)

// figure2XML is the sample XML document of Figure 2.
const figure2XML = `<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`

// section24Query is the running query e of Section 2.4.
const section24Query = `/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]`

// example9Query is the query Q of Example 9.
const example9Query = `/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]`

func figure2Doc(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseDocumentString(figure2XML)
	if err != nil {
		t.Fatalf("parse Figure 2 document: %v", err)
	}
	if doc.Size() != 9 {
		t.Fatalf("Figure 2 |dom| = %d, want 9", doc.Size())
	}
	return doc
}

// ids renders a node list as the paper's x-notation for comparison.
func ids(nodes []*Node) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		id, _ := n.Attr("id")
		parts[i] = "x" + id
	}
	return strings.Join(parts, " ")
}

// evalNodes evaluates the query on the engine and returns the x-notation.
func evalNodes(t *testing.T, doc *Document, query string, eng Engine) string {
	t.Helper()
	q, err := Compile(query)
	if err != nil {
		t.Fatalf("compile %q: %v", query, err)
	}
	res, err := q.EvaluateWith(doc, Options{Engine: eng})
	if err != nil {
		t.Fatalf("engine %v on %q: %v", eng, query, err)
	}
	return ids(res.Nodes())
}

// allEngines lists the engines able to run arbitrary full-XPath queries.
var allEngines = []Engine{EngineOptMinContext, EngineMinContext,
	EngineTopDown, EngineBottomUp, EngineNaive, EngineCompiled}

// TestSection24Result checks the final result of the running example:
// "The final result of evaluating e is {x13, x14, x21, x22, x23, x24}".
func TestSection24Result(t *testing.T) {
	doc := figure2Doc(t)
	want := "x13 x14 x21 x22 x23 x24"
	for _, eng := range allEngines {
		if got := evalNodes(t, doc, section24Query, eng); got != want {
			t.Errorf("engine %v: got {%s}, want {%s}", eng, got, want)
		}
	}
}

// TestFigure4N2 checks the context-value table rows of node N2 given in
// Figure 4: descendant::*[…] per previous context node.
func TestFigure4N2(t *testing.T) {
	doc := figure2Doc(t)
	sub := `descendant::*[position() > last()*0.5 or self::* = 100]`
	want := map[string]string{
		"10": "x14 x21 x22 x23 x24",
		"11": "x13 x14",
		"21": "x23 x24",
		"12": "", "13": "", "14": "", "22": "", "23": "", "24": "",
	}
	q := MustCompile(sub)
	for id, exp := range want {
		cn := doc.ByID(id)
		if cn == nil {
			t.Fatalf("node x%s missing", id)
		}
		for _, eng := range allEngines {
			res, err := q.EvaluateWith(doc, Options{Engine: eng, ContextNode: cn})
			if err != nil {
				t.Fatalf("engine %v at x%s: %v", eng, id, err)
			}
			if got := ids(res.Nodes()); got != exp {
				t.Errorf("engine %v, cn=x%s: got {%s}, want {%s}", eng, id, got, exp)
			}
		}
	}
}

// TestFigure4N3 checks rows of the predicate table N3 (Figure 4): the
// predicate value for contexts reachable via the two descendant steps.
func TestFigure4N3(t *testing.T) {
	doc := figure2Doc(t)
	pred := `position() > last()*0.5 or self::* = 100`
	q := MustCompile(pred)
	cases := []struct {
		id       string
		pos, sz  int
		expected bool
	}{
		{"11", 1, 8, false}, {"12", 2, 8, false}, {"13", 3, 8, false},
		{"14", 4, 8, true}, {"21", 5, 8, true}, {"22", 6, 8, true},
		{"23", 7, 8, true}, {"24", 8, 8, true},
		{"12", 1, 3, false}, {"13", 2, 3, true}, {"14", 3, 3, true},
		{"22", 1, 3, false}, {"23", 2, 3, true}, {"24", 3, 3, true},
	}
	for _, c := range cases {
		for _, eng := range allEngines {
			res, err := q.EvaluateWith(doc, Options{
				Engine: eng, ContextNode: doc.ByID(c.id), Position: c.pos, Size: c.sz})
			if err != nil {
				t.Fatalf("engine %v: %v", eng, err)
			}
			if got := res.Bool(); got != c.expected {
				t.Errorf("engine %v, ctx <x%s,%d,%d>: got %v, want %v",
					eng, c.id, c.pos, c.sz, got, c.expected)
			}
		}
	}
}

// TestFigure5N5 checks the reduced table of N5 (self::* = 100) from
// Figure 5. Note the figure lists x24 under "false" in the reduced table
// although Figure 4 lists it "true"; Figure 4 is consistent with the
// semantics (strval(x24) = "100"), so we test against Figure 4's values.
func TestFigure5N5(t *testing.T) {
	doc := figure2Doc(t)
	q := MustCompile(`self::* = 100`)
	want := map[string]bool{
		"11": false, "12": false, "13": false, "14": true,
		"21": false, "22": false, "23": false, "24": true,
	}
	for id, exp := range want {
		for _, eng := range allEngines {
			res, err := q.EvaluateWith(doc, Options{Engine: eng, ContextNode: doc.ByID(id)})
			if err != nil {
				t.Fatalf("engine %v: %v", eng, err)
			}
			if got := res.Bool(); got != exp {
				t.Errorf("engine %v, cn=x%s: got %v, want %v", eng, id, got, exp)
			}
		}
	}
}

// TestExample4 checks the outermost-path node sets of Example 4:
// X = dom at N1's first step and Y = {x13,…} at N2, with the final result
// read from the last location step.
func TestExample4(t *testing.T) {
	doc := figure2Doc(t)
	first := evalNodes(t, doc, `/descendant::*`, EngineOptMinContext)
	if first != "x10 x11 x12 x13 x14 x21 x22 x23 x24" {
		t.Errorf("/descendant::* = {%s}, want all of dom", first)
	}
	final := evalNodes(t, doc, section24Query, EngineOptMinContext)
	if final != "x13 x14 x21 x22 x23 x24" {
		t.Errorf("final result = {%s}", final)
	}
}

// TestExample9 checks the OPTMINCONTEXT worked example: the query Q of
// Example 9 evaluates to {x11, x12, x13, x14, x22}.
func TestExample9(t *testing.T) {
	doc := figure2Doc(t)
	want := "x11 x12 x13 x14 x22"
	for _, eng := range allEngines {
		if got := evalNodes(t, doc, example9Query, eng); got != want {
			t.Errorf("engine %v: got {%s}, want {%s}", eng, got, want)
		}
	}
}

// TestExample9InnerRho checks the bottom-up trace of Example 9: the inner
// path ρ = preceding-sibling::*/preceding::* compared with 100 holds
// exactly at {x23, x24}.
func TestExample9InnerRho(t *testing.T) {
	doc := figure2Doc(t)
	q := MustCompile(`preceding-sibling::*/preceding::* = 100`)
	want := map[string]bool{
		"10": false, "11": false, "12": false, "13": false, "14": false,
		"21": false, "22": false, "23": true, "24": true,
	}
	for id, exp := range want {
		for _, eng := range allEngines {
			res, err := q.EvaluateWith(doc, Options{Engine: eng, ContextNode: doc.ByID(id)})
			if err != nil {
				t.Fatalf("engine %v: %v", eng, err)
			}
			if got := res.Bool(); got != exp {
				t.Errorf("engine %v, cn=x%s: got %v, want %v", eng, id, got, exp)
			}
		}
	}
}

// TestExample9PiTable checks that boolean(π) of Example 9 holds exactly on
// X = {x11, x12, x13, x14, x22} ("the context-value table of the node N3
// has the value true … exactly for the nodes in X").
func TestExample9PiTable(t *testing.T) {
	doc := figure2Doc(t)
	q := MustCompile(`boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)`)
	trueAt := map[string]bool{"11": true, "12": true, "13": true, "14": true, "22": true}
	for _, id := range []string{"10", "11", "12", "13", "14", "21", "22", "23", "24"} {
		for _, eng := range allEngines {
			res, err := q.EvaluateWith(doc, Options{Engine: eng, ContextNode: doc.ByID(id)})
			if err != nil {
				t.Fatalf("engine %v: %v", eng, err)
			}
			if got := res.Bool(); got != trueAt[id] {
				t.Errorf("engine %v, cn=x%s: boolean(π) = %v, want %v", eng, id, got, trueAt[id])
			}
		}
	}
}

// TestCoreXPathEngineOnFigure2 cross-checks the linear engine against the
// general engines on Core XPath queries over the Figure 2 document.
func TestCoreXPathEngineOnFigure2(t *testing.T) {
	doc := figure2Doc(t)
	queries := []string{
		`/child::a/child::b/child::c`,
		`/descendant::d`,
		`/child::a/child::b[child::d]`,
		`/descendant::*[following-sibling::d]`,
		`/descendant::b[not(child::c) or child::d[following-sibling::d]]`,
		`/descendant::*[ancestor::b and descendant::node()]`,
	}
	for _, src := range queries {
		q := MustCompile(src)
		if q.Fragment() != CoreXPath {
			t.Errorf("%q classified %v, want core-xpath", src, q.Fragment())
			continue
		}
		want := evalNodes(t, doc, src, EngineTopDown)
		for _, eng := range []Engine{EngineCoreXPath, EngineOptMinContext, EngineMinContext, EngineNaive, EngineBottomUp} {
			if got := evalNodes(t, doc, src, eng); got != want {
				t.Errorf("%q: engine %v got {%s}, want {%s}", src, eng, got, want)
			}
		}
	}
}

// TestFigure4N6N7 checks the remaining Figure 4 tables: N6 (position())
// returns cp for every reachable context, and N7 (last()*0.5) returns 4
// for cs=8 and 1.5 for cs=3 — exactly the rows the figure prints.
func TestFigure4N6N7(t *testing.T) {
	doc := figure2Doc(t)
	n6 := MustCompile(`position()`)
	n7 := MustCompile(`last()*0.5`)
	contexts := []struct {
		id        string
		pos, size int
	}{
		{"11", 1, 8}, {"12", 2, 8}, {"13", 3, 8},
		{"22", 1, 3}, {"23", 2, 3}, {"24", 3, 3},
		{"12", 1, 3}, {"24", 3, 3},
	}
	for _, c := range contexts {
		for _, eng := range allEngines {
			opts := Options{Engine: eng, ContextNode: doc.ByID(c.id), Position: c.pos, Size: c.size}
			r6, err := n6.EvaluateWith(doc, opts)
			if err != nil {
				t.Fatalf("N6 %v: %v", eng, err)
			}
			if got := r6.Number(); got != float64(c.pos) {
				t.Errorf("N6 %v at <x%s,%d,%d>: %v, want %d", eng, c.id, c.pos, c.size, got, c.pos)
			}
			r7, err := n7.EvaluateWith(doc, opts)
			if err != nil {
				t.Fatalf("N7 %v: %v", eng, err)
			}
			if got, want := r7.Number(), float64(c.size)*0.5; got != want {
				t.Errorf("N7 %v at <x%s,%d,%d>: %v, want %v", eng, c.id, c.pos, c.size, got, want)
			}
		}
	}
}

// TestFigure4N8N9 checks the reduced tables of Figure 5 for N8 (self::*,
// the per-cn singleton sets) and N9 (the constant 100).
func TestFigure4N8N9(t *testing.T) {
	doc := figure2Doc(t)
	n8 := MustCompile(`self::*`)
	for _, id := range []string{"11", "12", "13", "14", "21", "22", "23", "24"} {
		for _, eng := range allEngines {
			res, err := n8.EvaluateWith(doc, Options{Engine: eng, ContextNode: doc.ByID(id)})
			if err != nil {
				t.Fatal(err)
			}
			nodes := res.Nodes()
			if len(nodes) != 1 || nodes[0].Pre() != doc.ByID(id).Pre() {
				t.Errorf("N8 %v at x%s: %v", eng, id, nodes)
			}
		}
	}
	n9 := MustCompile(`100`)
	res, err := n9.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Number() != 100 {
		t.Errorf("N9 = %v", res.Number())
	}
}
