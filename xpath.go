// Package xpath is a complete, stdlib-only XPath 1.0 query engine
// implementing the evaluation algorithms of Gottlob, Koch and Pichler,
// "XPath Query Evaluation: Improving Time and Space Efficiency" (ICDE
// 2003), together with the baselines they improve on.
//
// Seven interchangeable evaluation engines are provided:
//
//	OptMinContext  — Algorithm 8 (the paper's recommended processor; default)
//	MinContext     — Algorithm 6, Theorem 7 bounds
//	TopDown        — the E↓ semantics of Definition 2 ([11])
//	BottomUp       — the strict context-value-table E↑ ([11])
//	CoreXPath      — linear-time engine for the Core XPath fragment
//	Naive          — the exponential-time strategy of pre-2002 processors
//	Compiled       — whole-query compilation to a register VM (internal/plan)
//
// All engines implement the same semantics (XPath 1.0, minus the attribute
// and namespace axes the paper's data model excludes) and can be compared
// on any query; see EXPERIMENTS.md for the reproduced complexity behavior.
//
// # Quick start
//
//	doc, _ := xpath.ParseDocument(strings.NewReader(`<a><b/><b/></a>`))
//	q, _ := xpath.Compile(`/child::a/child::b[position() = last()]`)
//	res, _ := q.Evaluate(doc)
//	for _, n := range res.Nodes() {
//	    fmt.Println(n.Label())
//	}
package xpath

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bottomup"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/naive"
	"repro/internal/plan"
	"repro/internal/syntax"
	"repro/internal/topdown"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Engine selects one of the evaluation algorithms.
type Engine int

// The available engines. EngineAuto uses OPTMINCONTEXT, the paper's
// combined processor, which adheres to the best known bound for whatever
// fragment each subexpression falls into.
const (
	EngineAuto Engine = iota
	EngineOptMinContext
	EngineMinContext
	EngineTopDown
	EngineBottomUp
	EngineCoreXPath
	EngineNaive
	// EngineCompiled compiles the query to a flat register-VM program
	// (internal/plan): fused set-at-a-time step opcodes, satisfaction-set
	// predicate filters, static position() = k specialization, and a
	// concurrency-safe compiled-plan cache.
	EngineCompiled
)

// engineList is the single source of truth for engine naming: an ordered
// slice, so String, EngineByName and Engines are deterministic (a map here
// made EngineByName's answer depend on iteration order whenever two entries
// shared a name).
var engineList = []struct {
	e    Engine
	name string
}{
	{EngineAuto, "auto"},
	{EngineOptMinContext, "optmincontext"},
	{EngineMinContext, "mincontext"},
	{EngineTopDown, "topdown"},
	{EngineBottomUp, "bottomup"},
	{EngineCoreXPath, "corexpath"},
	{EngineNaive, "naive"},
	{EngineCompiled, "compiled"},
}

// String returns the engine's CLI name.
func (e Engine) String() string {
	for _, ent := range engineList {
		if ent.e == e {
			return ent.name
		}
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// EngineByName resolves a CLI engine name; ok is false for unknown names.
// Resolution scans the declaration order of engineList, so the answer is
// deterministic even if a name were ever duplicated.
func EngineByName(name string) (Engine, bool) {
	for _, ent := range engineList {
		if ent.name == name {
			return ent.e, true
		}
	}
	return 0, false
}

// Engines lists every selectable engine (excluding the Auto alias), for
// differential tests and benchmarks, in engineList order.
func Engines() []Engine {
	out := make([]Engine, 0, len(engineList)-1)
	for _, ent := range engineList {
		if ent.e != EngineAuto {
			out = append(out, ent.e)
		}
	}
	return out
}

// compiledEngine is the process-wide compiled engine: shared so its plan
// cache and VM pool survive across evaluations (plan.Engine is safe for
// concurrent use).
var compiledEngine = plan.New()

func (e Engine) impl() engine.Engine {
	switch e {
	case EngineAuto, EngineOptMinContext:
		return core.NewOptMinContext()
	case EngineMinContext:
		return core.NewMinContext()
	case EngineTopDown:
		return topdown.New()
	case EngineBottomUp:
		return bottomup.New()
	case EngineCoreXPath:
		return corexpath.New()
	case EngineNaive:
		return naive.New()
	case EngineCompiled:
		return compiledEngine
	}
	panic("xpath: unknown engine")
}

// Fragment mirrors the paper's query classification.
type Fragment int

// Fragment values, from most to least restrictive.
const (
	// CoreXPath is the fragment of Definition 12: evaluable in O(|D|·|Q|).
	CoreXPath Fragment = iota
	// ExtendedWadler is the fragment of Section 4 (Restrictions 1–3):
	// evaluable in O(|D|²·|Q|²) time and O(|D|·|Q|²) space.
	ExtendedWadler
	// FullXPath is everything else: Theorem 7 bounds apply.
	FullXPath
)

// String names the fragment.
func (f Fragment) String() string {
	return [...]string{"core-xpath", "extended-wadler", "full-xpath"}[f]
}

// Document is a parsed, immutable XML document.
type Document struct {
	tree *xmltree.Document
}

// ParseDocument reads an XML document. Comments and processing
// instructions are skipped; attributes are kept as data (the paper's data
// model has no attribute axis), with the "id" attribute feeding id().
// DefaultParseLimits applies; ParseDocumentLimits chooses other bounds.
func ParseDocument(r io.Reader) (*Document, error) {
	t, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}

// ParseLimits bounds document ingest against adversarial XML: a nesting
// depth cap (deep documents would otherwise overflow the stack of the
// recursive index builder — a fatal crash, not a recoverable panic) and a
// node count cap bounding ingest memory. Zero or negative fields impose no
// corresponding limit.
type ParseLimits = xmltree.Limits

// DefaultParseLimits returns the bounds ParseDocument, ParseDocumentString
// and the snapshot loaders apply on their own.
func DefaultParseLimits() ParseLimits { return xmltree.DefaultLimits() }

// Ingest-limit errors, comparable with errors.Is against a parse failure.
var (
	// ErrDepthLimit reports XML nested deeper than ParseLimits.MaxDepth.
	ErrDepthLimit = xmltree.ErrDepthLimit
	// ErrNodeLimit reports a document larger than ParseLimits.MaxNodes.
	ErrNodeLimit = xmltree.ErrNodeLimit
)

// ParseDocumentLimits is ParseDocument under caller-chosen ingest bounds;
// exceeding one returns an error wrapping ErrDepthLimit or ErrNodeLimit.
func ParseDocumentLimits(r io.Reader, l ParseLimits) (*Document, error) {
	t, err := xmltree.ParseWithLimits(r, l)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}

// ParseDocumentString parses an XML document held in a string.
func ParseDocumentString(s string) (*Document, error) {
	t, err := xmltree.ParseString(s)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}

// Size returns |dom|: the number of element nodes.
func (d *Document) Size() int { return d.tree.Size() }

// Root returns the document root node (the node addressed by "/").
func (d *Document) Root() *Node { return wrapNode(d.tree.Root()) }

// ByID returns the element whose id attribute equals the key, or nil.
func (d *Document) ByID(id string) *Node { return wrapNode(d.tree.ByID(id)) }

// XML serializes the document back to XML.
func (d *Document) XML() string { return d.tree.XMLString() }

// Tree exposes the underlying tree to sibling packages of this module (the
// benchmark harness); external users should not need it.
func (d *Document) Tree() *xmltree.Document { return d.tree }

// WrapTree wraps an internally built document (used by the workload
// generators and the benchmark harness).
func WrapTree(t *xmltree.Document) *Document { return &Document{tree: t} }

// Node is one node of a document.
type Node struct {
	n *xmltree.Node
}

func wrapNode(n *xmltree.Node) *Node {
	if n == nil {
		return nil
	}
	return &Node{n: n}
}

// Label returns the node's tag name ("" for the document root).
func (n *Node) Label() string { return n.n.Label() }

// StringValue returns strval(n): the concatenated character data of the
// node's subtree.
func (n *Node) StringValue() string { return n.n.StringValue() }

// Parent returns the parent node, or nil for the document root.
func (n *Node) Parent() *Node { return wrapNode(n.n.Parent()) }

// Children returns the element children in document order.
func (n *Node) Children() []*Node {
	kids := n.n.Children()
	out := make([]*Node, len(kids))
	for i, k := range kids {
		out[i] = wrapNode(k)
	}
	return out
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) { return n.n.Attr(name) }

// IsRoot reports whether this is the document root.
func (n *Node) IsRoot() bool { return n.n.IsRoot() }

// Pre returns the node's document-order index (root = 0).
func (n *Node) Pre() int { return n.n.Pre() }

// String renders the node as label plus id attribute when present.
func (n *Node) String() string {
	if n.IsRoot() {
		return "/"
	}
	if id, ok := n.Attr("id"); ok {
		return n.Label() + "#" + id
	}
	return n.Label()
}

// Query is a compiled XPath 1.0 expression.
type Query struct {
	q *syntax.Query
}

// Compile parses, normalizes and analyzes an XPath 1.0 expression.
func Compile(src string) (*Query, error) {
	q, err := syntax.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// MustCompile is Compile for known-good expressions; it panics on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// queryCache backs CompileCached: a concurrency-safe compiled-plan cache
// keyed by query source text.
var queryCache = plan.NewSourceCache(1024)

// CompileCached is Compile backed by a process-wide cache keyed by the
// query source: repeated traffic for the same expression skips lexing,
// parsing, normalization, analysis and plan compilation entirely, and
// EngineCompiled evaluations of the returned query reuse its precompiled
// instruction program. Sources that fail to compile enter a bounded
// negative cache, so repeated traffic for an invalid expression is rejected
// without re-parsing. Queries needing variable bindings must use
// CompileWithVars (bindings are substituted into the tree, so source text
// alone would not identify them).
func CompileCached(src string) (*Query, error) {
	q, _, err := CompileCachedTraced(src, nil)
	return q, err
}

// CompileCachedTraced is CompileCached with two server-grade extras: an
// optional tracer (a miss that compiles emits one KindCompile span carrying
// the compile time; tr may be nil) and a cache-hit report — hit is true
// when the call was served from the cache without compiling, including
// rejections served from the negative cache. The HTTP front-end uses it to
// attribute per-request cache behavior without racing on counter deltas.
func CompileCachedTraced(src string, tr Tracer) (q *Query, hit bool, err error) {
	e, hit, err := queryCache.GetInfo(src, tr)
	if err != nil {
		return nil, hit, err
	}
	compiledEngine.Prime(e.Query, e.Prog)
	return &Query{q: e.Query}, hit, nil
}

// QueryCacheStats is a point-in-time view of the CompileCached source
// cache's counters: served hits, compiling misses, negative-cache hits
// (known-bad sources rejected without re-parsing), capacity evictions,
// successful compiles, and the current entry count.
type QueryCacheStats struct {
	Hits, Misses, ErrorHits, Evictions, Compiles int64
	Len                                          int
}

// CompileCachedStats reports the process-wide CompileCached cache counters
// — the hit-rate source of truth for the HTTP front-end's /stats endpoint
// and the E18 load experiment.
func CompileCachedStats() QueryCacheStats {
	return QueryCacheStats{
		Hits:      queryCache.Hits(),
		Misses:    queryCache.Misses(),
		ErrorHits: queryCache.ErrorHits(),
		Evictions: queryCache.Evictions(),
		Compiles:  queryCache.Compiles(),
		Len:       queryCache.Len(),
	}
}

// CompileWithVars compiles with an input variable binding (§2.2 replaces
// each variable by the constant value of its binding).
func CompileWithVars(src string, vars map[string]Var) (*Query, error) {
	m := make(map[string]syntax.VarBinding, len(vars))
	for k, v := range vars {
		m[k] = v.b
	}
	q, err := syntax.CompileWithVars(src, m)
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Var is a scalar variable binding.
type Var struct{ b syntax.VarBinding }

// NumberVar binds a number.
func NumberVar(v float64) Var { return Var{b: syntax.NumberVar(v)} }

// StringVar binds a string.
func StringVar(s string) Var { return Var{b: syntax.StringVar(s)} }

// BoolVar binds a boolean.
func BoolVar(v bool) Var { return Var{b: syntax.BoolVar(v)} }

// String returns the normalized (unabbreviated, explicitly converted) form
// of the query.
func (q *Query) String() string { return q.q.Root.String() }

// Source returns the original expression text.
func (q *Query) Source() string { return q.q.Source }

// Size returns |Q|: the number of parse-tree nodes after normalization.
func (q *Query) Size() int { return q.q.Size() }

// Fragment returns the query's fragment classification.
func (q *Query) Fragment() Fragment {
	switch q.q.Fragment {
	case syntax.FragmentCoreXPath:
		return CoreXPath
	case syntax.FragmentExtendedWadler:
		return ExtendedWadler
	}
	return FullXPath
}

// Internal exposes the compiled query to sibling packages of this module.
func (q *Query) Internal() *syntax.Query { return q.q }

// Options configures one evaluation.
type Options struct {
	// Engine selects the evaluation algorithm (default: OPTMINCONTEXT).
	Engine Engine
	// ContextNode evaluates relative to this node (default: document root).
	ContextNode *Node
	// Position and Size set the context position/size (default 1, 1).
	Position, Size int
	// Tracer, when non-nil, receives per-step (interpreters) or per-opcode
	// (EngineCompiled) spans plus one KindEval root span for the whole
	// evaluation. Leaving it nil is the strictly zero-cost default — the
	// instrumented hot paths pay one nil check and nothing else. A
	// TraceRecorder may be reused across evaluations (Reset clears it) and,
	// unlike evaluation scratch, may be shared between goroutines.
	Tracer Tracer
	// Budget, when non-nil, bounds the evaluation cooperatively: every
	// engine's main loop checks it, so cancellation (Budget.Cancel, from any
	// goroutine), deadlines and step limits interrupt the evaluation
	// mid-flight with ErrCanceled / ErrDeadlineExceeded / ErrBudgetExceeded.
	// Like Tracer, nil costs one predicted nil check per site and a live
	// Budget stays within the pinned warm-path allocation counts. A Budget
	// is single-evaluation state: create a fresh one per evaluation (it trips
	// at most once and stays tripped).
	Budget *Budget
	// Context, when non-nil, bridges standard context cancellation into the
	// evaluation: when the context is done the evaluation's budget is
	// canceled (an internal pure-cancellation Budget is created when Budget
	// is nil). Unlike Budget alone, this path allocates (the stdlib
	// registration), so latency-critical callers who poll their own signal
	// should prefer Budget.
	Context context.Context
}

// Stats reports the instrumentation counters of one evaluation; see
// EXPERIMENTS.md for how they back the paper's space theorems.
type Stats struct {
	// TableCells counts context-value table cells written.
	TableCells int64
	// ContextsEvaluated counts single-context expression evaluations.
	ContextsEvaluated int64
	// AxisCalls counts set-at-a-time axis function applications.
	AxisCalls int64
}

// Result is the outcome of one evaluation.
type Result struct {
	v     values.Value
	stats Stats
}

// Evaluate runs the query against a document with default options.
func (q *Query) Evaluate(doc *Document) (*Result, error) {
	return q.EvaluateWith(doc, Options{})
}

// errContextForeignNode rejects context nodes from another document.
var errContextForeignNode = fmt.Errorf("xpath: context node belongs to a different document")

// rootContextFor returns the default outermost context 〈root, 1, 1〉.
func rootContextFor(doc *Document) engine.Context {
	return engine.Context{Node: doc.tree.Root(), Pos: 1, Size: 1}
}

// Evaluation instruments: every EvaluateWith increments the counter and
// feeds the wall-clock histogram; node-set results feed the cardinality
// histogram. All three are plain atomic updates — no allocation, no lock.
var (
	mEvals      = metrics.Default().Counter("xpath.evals")
	mEvalErrors = metrics.Default().Counter("xpath.eval_errors")
	mEvalNs     = metrics.Default().Histogram("xpath.eval_ns")
	mResultCard = metrics.Default().Histogram("xpath.result_card")
)

// EvaluateWith runs the query with explicit options.
func (q *Query) EvaluateWith(doc *Document, opts Options) (*Result, error) {
	ctx := rootContextFor(doc)
	if opts.ContextNode != nil {
		if opts.ContextNode.n.Document() != doc.tree {
			return nil, errContextForeignNode
		}
		ctx.Node = opts.ContextNode.n
	}
	if opts.Position > 0 {
		ctx.Pos = opts.Position
	}
	if opts.Size > 0 {
		ctx.Size = opts.Size
	}
	if ctx.Pos > ctx.Size {
		return nil, fmt.Errorf("xpath: context position %d exceeds context size %d", ctx.Pos, ctx.Size)
	}
	ctx.Tracer = opts.Tracer
	bud := opts.Budget
	if opts.Context != nil {
		// Bridge standard context cancellation into the budget: an internal
		// pure-cancellation budget is created when the caller supplied none,
		// and the AfterFunc registration is torn down before returning.
		if err := budgetErrFromContext(opts.Context); err != nil {
			mEvals.Add(1)
			mEvalErrors.Add(1)
			return nil, err
		}
		if bud == nil {
			bud = budget.New(budget.Limits{})
		}
		stop := context.AfterFunc(opts.Context, bud.Cancel)
		defer stop()
	}
	ctx.Budget = bud
	t0 := trace.Now()
	v, st, err := evalGuarded(opts.Engine.impl(), q.q, doc.tree, ctx)
	evalNs := trace.Now() - t0
	mEvals.Add(1)
	mEvalNs.Observe(evalNs)
	if err != nil {
		mEvalErrors.Add(1)
		return nil, err
	}
	out := trace.CardUnknown
	if v.T == values.KindNodeSet && v.Set != nil {
		out = v.Set.Len()
		mResultCard.Observe(int64(out))
		if bud != nil {
			if err := bud.Card(out); err != nil {
				mEvalErrors.Add(1)
				return nil, err
			}
		}
	}
	if opts.Tracer != nil {
		opts.Tracer.Emit(TraceEvent{
			Kind: trace.KindEval, Name: opts.Engine.String(),
			In: trace.CardUnknown, Out: out, Ns: evalNs,
		})
	}
	return &Result{v: v, stats: toStats(st)}, nil
}

// budgetErrFromContext maps a context's termination cause onto the
// evaluation error taxonomy.
func budgetErrFromContext(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadlineExceeded
	default:
		return ErrCanceled
	}
}

// evalGuarded is the panic-isolation boundary of every public evaluation: a
// panicking engine surfaces as an *EvalPanicError (stack captured,
// engine.panics incremented) instead of crashing the caller. The
// faultinject site lets chaos tests drive this path on demand.
func evalGuarded(eng engine.Engine, q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (v values.Value, st engine.Stats, err error) {
	defer engine.RecoverPanic(&err)
	faultinject.Hit("xpath.evaluate")
	return eng.Evaluate(q, doc, ctx)
}

// EvaluateTraced runs the query with default options plus a tracer: sugar
// for EvaluateWith(doc, Options{Tracer: tr}). A typical session:
//
//	rec := xpath.NewTraceRecorder()
//	res, err := q.EvaluateTraced(doc, rec)
//	fmt.Print(xpath.RenderTrace(rec.Rows()))
func (q *Query) EvaluateTraced(doc *Document, tr Tracer) (*Result, error) {
	return q.EvaluateWith(doc, Options{Tracer: tr})
}

// toStats converts the engines' instrumentation counters to the public
// Stats — the single conversion point for every evaluation path.
func toStats(st engine.Stats) Stats {
	return Stats{
		TableCells:        st.TableCells,
		ContextsEvaluated: st.ContextsEvaluated,
		AxisCalls:         st.AxisCalls,
	}
}

// IsNodeSet reports whether the result is a node set.
func (r *Result) IsNodeSet() bool { return r.v.T == values.KindNodeSet }

// Nodes returns the resulting node set in document order (nil for scalar
// results).
func (r *Result) Nodes() []*Node {
	if r.v.T != values.KindNodeSet {
		return nil
	}
	raw := r.v.Set.Nodes()
	out := make([]*Node, len(raw))
	for i, n := range raw {
		out[i] = wrapNode(n)
	}
	return out
}

// Number returns the result converted to a number (F[[number]]).
func (r *Result) Number() float64 { return values.ToNumber(r.v) }

// Text returns the result converted to a string (F[[string]]).
func (r *Result) Text() string { return values.ToString(r.v) }

// Bool returns the result converted to a boolean (F[[boolean]]).
func (r *Result) Bool() bool { return values.ToBool(r.v) }

// Stats returns the evaluation's instrumentation counters.
func (r *Result) Stats() Stats { return r.stats }

// String renders the result: node sets in the paper's {x11, x12} notation,
// scalars via their XPath string conversion.
func (r *Result) String() string { return values.Render(r.v) }

// WriteSnapshot serializes the document into the compact binary snapshot
// format of internal/xmltree: labels interned, tree as a preorder event
// stream. LoadSnapshot restores it — including all evaluation indexes —
// without re-parsing XML, which is the preparation step for the
// database-resident usage the paper's conclusion anticipates.
func (d *Document) WriteSnapshot(w io.Writer) error { return d.tree.WriteSnapshot(w) }

// LoadSnapshot reads a document snapshot written by WriteSnapshot.
func LoadSnapshot(r io.Reader) (*Document, error) {
	t, err := xmltree.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Document{tree: t}, nil
}
