package xpath

// Table-driven edge-case tests for EvaluateWith options and the engine
// name registry: context nodes from foreign documents, Position/Size
// validation and defaults, and context-node-relative paths on every engine.

import (
	"strings"
	"testing"
)

func TestEvaluateWithOptionErrors(t *testing.T) {
	doc := MustCompileDoc(t, `<a><b id="1"><c>x</c></b><b id="2"/></a>`)
	other := MustCompileDoc(t, `<a><b id="1"/></a>`)
	q := MustCompile(`child::b`)

	cases := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"foreign context node", Options{ContextNode: other.Root()}, "different document"},
		{"foreign non-root node", Options{ContextNode: other.ByID("1")}, "different document"},
		{"position exceeds size", Options{Position: 5, Size: 3}, "exceeds context size"},
		{"position exceeds default size", Options{Position: 2}, "exceeds context size"},
	}
	for _, eng := range Engines() {
		for _, tc := range cases {
			opts := tc.opts
			opts.Engine = eng
			_, err := q.EvaluateWith(doc, opts)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%v/%s: err = %v, want %q", eng, tc.name, err, tc.wantErr)
			}
		}
	}

	// E↑ tables are Θ(Size²): an absurd outer context size must fail with a
	// clean error, not an overflow panic.
	_, err := q.EvaluateWith(doc, Options{Engine: EngineBottomUp, Position: 1, Size: 1 << 30})
	if err == nil || !strings.Contains(err.Error(), "table range") {
		t.Errorf("bottomup huge Size: err = %v, want table-range error", err)
	}
}

// TestEvaluateWithPositionDefaults: the outermost context defaults to
// 〈root, 1, 1〉 and explicit Position/Size reach position()/last().
func TestEvaluateWithPositionDefaults(t *testing.T) {
	doc := MustCompileDoc(t, `<a><b/></a>`)
	cases := []struct {
		name string
		src  string
		opts Options
		want float64
	}{
		{"default position", `position()`, Options{}, 1},
		{"default size", `last()`, Options{}, 1},
		{"explicit position", `position()`, Options{Position: 3, Size: 7}, 3},
		{"explicit size", `last()`, Options{Position: 3, Size: 7}, 7},
		{"size without position", `position() + last()`, Options{Size: 4}, 5},
		{"position arithmetic", `last() - position()`, Options{Position: 2, Size: 9}, 7},
	}
	// CoreXPath is excluded: position()/last() are outside the Core XPath
	// fragment by Definition 12.
	engines := []Engine{EngineOptMinContext, EngineMinContext, EngineTopDown,
		EngineBottomUp, EngineNaive, EngineCompiled}
	for _, eng := range engines {
		for _, tc := range cases {
			opts := tc.opts
			opts.Engine = eng
			res, err := MustCompile(tc.src).EvaluateWith(doc, opts)
			if err != nil {
				t.Errorf("%v/%s: %v", eng, tc.name, err)
				continue
			}
			if got := res.Number(); got != tc.want {
				t.Errorf("%v/%s: %v want %v", eng, tc.name, got, tc.want)
			}
		}
	}
}

// TestEvaluateWithContextRelative: context-node-relative paths on every
// engine (CoreXPath included — the queries stay in its fragment).
func TestEvaluateWithContextRelative(t *testing.T) {
	doc := MustCompileDoc(t,
		`<a id="0"><b id="1"><c id="2">21</c><c id="3">22</c></b><b id="4"><d id="5">100</d></b></a>`)
	cases := []struct {
		name   string
		src    string
		cnID   string
		wantID []string
	}{
		{"children of b1", `child::c`, "1", []string{"2", "3"}},
		{"parent step", `parent::a`, "1", []string{"0"}},
		{"self from leaf", `self::d`, "5", []string{"5"}},
		{"sibling walk", `following-sibling::b`, "1", []string{"4"}},
		{"ancestor from leaf", `ancestor::*`, "2", []string{"0", "1"}},
		{"descendant from section", `descendant::c`, "1", []string{"2", "3"}},
		{"relative then predicate", `child::c[following-sibling::c]`, "1", []string{"2"}},
		{"absolute ignores context", `/child::a/child::b/child::d`, "2", []string{"5"}},
	}
	for _, eng := range Engines() {
		for _, tc := range cases {
			cn := doc.ByID(tc.cnID)
			if cn == nil {
				t.Fatalf("no node %q", tc.cnID)
			}
			res, err := MustCompile(tc.src).EvaluateWith(doc, Options{Engine: eng, ContextNode: cn})
			if err != nil {
				t.Errorf("%v/%s: %v", eng, tc.name, err)
				continue
			}
			var got []string
			for _, n := range res.Nodes() {
				id, _ := n.Attr("id")
				got = append(got, id)
			}
			if strings.Join(got, ",") != strings.Join(tc.wantID, ",") {
				t.Errorf("%v/%s: %v want %v", eng, tc.name, got, tc.wantID)
			}
		}
	}
}

// TestEngineNameRoundTrip: Engines() ↔ EngineByName ↔ String must
// round-trip, deterministically, with auto resolving as the alias and
// unknown names rejected. (EngineByName used to scan a map, making its
// answer iteration-order-dependent.)
func TestEngineNameRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Engines() {
		name := e.String()
		if seen[name] {
			t.Errorf("duplicate engine name %q", name)
		}
		seen[name] = true
		back, ok := EngineByName(name)
		if !ok || back != e {
			t.Errorf("EngineByName(%q) = %v, %v; want %v", name, back, ok, e)
		}
	}
	if len(seen) != 7 {
		t.Errorf("Engines() lists %d engines, want 7", len(seen))
	}
	if e, ok := EngineByName("auto"); !ok || e != EngineAuto {
		t.Errorf("EngineByName(auto) = %v, %v", e, ok)
	}
	if _, ok := EngineByName("no-such-engine"); ok {
		t.Error("EngineByName accepted an unknown name")
	}
	if got := Engine(99).String(); got != "engine(99)" {
		t.Errorf("unknown engine String() = %q", got)
	}
	// Determinism: repeated resolution always yields the same engine.
	for i := 0; i < 100; i++ {
		if e, _ := EngineByName("compiled"); e != EngineCompiled {
			t.Fatalf("EngineByName(compiled) unstable: %v", e)
		}
	}
}

// MustCompileDoc parses a document or fails the test.
func MustCompileDoc(t *testing.T, xml string) *Document {
	t.Helper()
	doc, err := ParseDocumentString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}
