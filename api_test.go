package xpath

// Tests for the public API surface: engine selection, options validation,
// variable bindings, result accessors and node navigation.

import (
	"math"
	"strings"
	"testing"
)

func TestParseDocumentErrors(t *testing.T) {
	if _, err := ParseDocumentString(`<a>`); err == nil {
		t.Error("unclosed element must fail")
	}
	if _, err := ParseDocument(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, bad := range []string{``, `@x`, `//a[`, `$v`} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) should fail", bad)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on a bad query")
		}
	}()
	MustCompile(`///`)
}

func TestEngineNames(t *testing.T) {
	for _, e := range Engines() {
		name := e.String()
		back, ok := EngineByName(name)
		if !ok || back != e {
			t.Errorf("EngineByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := EngineByName("bogus"); ok {
		t.Error("bogus engine resolved")
	}
	if a, _ := EngineByName("auto"); a != EngineAuto {
		t.Error("auto must resolve")
	}
}

func TestOptionsValidation(t *testing.T) {
	doc, _ := ParseDocumentString(`<a><b/></a>`)
	q := MustCompile(`position()`)
	if _, err := q.EvaluateWith(doc, Options{Position: 5, Size: 2}); err == nil {
		t.Error("position > size must be rejected")
	}
	res, err := q.EvaluateWith(doc, Options{Position: 2, Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Number() != 2 {
		t.Errorf("position() = %v", res.Number())
	}
}

func TestVariableBindings(t *testing.T) {
	doc, _ := ParseDocumentString(`<a><b>5</b><b>9</b></a>`)
	q, err := CompileWithVars(`//b[. > $min]`, map[string]Var{"min": NumberVar(6)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Evaluate(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes()) != 1 || res.Nodes()[0].StringValue() != "9" {
		t.Errorf("got %v", res)
	}
	q2, err := CompileWithVars(`concat($s, string($b))`, map[string]Var{
		"s": StringVar("x="), "b": BoolVar(true)})
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := q2.Evaluate(doc)
	if res2.Text() != "x=true" {
		t.Errorf("got %q", res2.Text())
	}
}

func TestResultAccessors(t *testing.T) {
	doc, _ := ParseDocumentString(`<a><b>7</b></a>`)

	num, _ := MustCompile(`1 div 0`).Evaluate(doc)
	if !math.IsInf(num.Number(), 1) || num.Text() != "Infinity" {
		t.Errorf("1 div 0: %v %q", num.Number(), num.Text())
	}
	if num.IsNodeSet() || num.Nodes() != nil {
		t.Error("scalar result misreported as node set")
	}

	set, _ := MustCompile(`//b`).Evaluate(doc)
	if !set.IsNodeSet() || len(set.Nodes()) != 1 {
		t.Errorf("//b: %v", set)
	}
	if set.Number() != 7 || set.Text() != "7" || !set.Bool() {
		t.Errorf("conversions: %v %q %v", set.Number(), set.Text(), set.Bool())
	}
	if set.String() == "" {
		t.Error("String render empty")
	}
	if set.Stats().AxisCalls == 0 {
		t.Error("stats not populated")
	}
}

func TestNodeNavigation(t *testing.T) {
	doc, _ := ParseDocumentString(`<a id="r"><b id="x">hi</b></a>`)
	root := doc.Root()
	if !root.IsRoot() || root.Parent() != nil || root.Label() != "" {
		t.Error("root accessors wrong")
	}
	a := root.Children()[0]
	b := a.Children()[0]
	if b.Label() != "b" || b.StringValue() != "hi" || b.Parent().Label() != "a" {
		t.Error("child accessors wrong")
	}
	if id, ok := b.Attr("id"); !ok || id != "x" {
		t.Error("Attr wrong")
	}
	if doc.ByID("x") == nil || doc.ByID("zz") != nil {
		t.Error("ByID wrong")
	}
	if b.String() != "b#x" || root.String() != "/" {
		t.Errorf("String renders: %q %q", b.String(), root.String())
	}
	if b.Pre() != 2 {
		t.Errorf("Pre = %d", b.Pre())
	}
	if !strings.Contains(doc.XML(), "<b id=\"x\">hi</b>") {
		t.Errorf("XML round trip: %s", doc.XML())
	}
}

func TestContextNodeOption(t *testing.T) {
	doc, _ := ParseDocumentString(`<a id="1"><b id="2"><c id="3"/></b></a>`)
	q := MustCompile(`child::c`)
	res, err := q.EvaluateWith(doc, Options{ContextNode: doc.ByID("2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes()) != 1 {
		t.Errorf("child::c from b: %v", res)
	}
}

func TestCoreXPathEngineErrors(t *testing.T) {
	doc, _ := ParseDocumentString(`<a><b/></a>`)
	q := MustCompile(`count(//b)`) // not Core XPath
	if _, err := q.EvaluateWith(doc, Options{Engine: EngineCoreXPath}); err == nil {
		t.Error("corexpath engine must reject non-core queries")
	}
}

func TestFragmentMapping(t *testing.T) {
	cases := map[string]Fragment{
		`//a[b]`:          CoreXPath,
		`//a[b = 1]`:      ExtendedWadler,
		`//a[count(b)=1]`: FullXPath,
	}
	for src, want := range cases {
		if got := MustCompile(src).Fragment(); got != want {
			t.Errorf("%q → %v, want %v", src, got, want)
		}
	}
	for _, f := range []Fragment{CoreXPath, ExtendedWadler, FullXPath} {
		if f.String() == "" {
			t.Error("fragment name empty")
		}
	}
}

func TestQuerySizeAndInternal(t *testing.T) {
	q := MustCompile(`//a[b]/c`)
	if q.Size() != q.Internal().Size() || q.Size() == 0 {
		t.Error("Size plumbing broken")
	}
}

func TestExplain(t *testing.T) {
	q := MustCompile(`/child::a/descendant::*[boolean(following::d[c = 100]/following::d)]`)
	out := q.Explain()
	for _, want := range []string{"fragment:", "parse tree:", "relev:", "bottom-up:", "boolean("} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// A query with no bottom-up plan says so.
	out2 := MustCompile(`count(//a)`).Explain()
	if !strings.Contains(out2, "none") {
		t.Errorf("Explain for plain query:\n%s", out2)
	}
	// Core XPath queries advertise the linear bound.
	out3 := MustCompile(`//a[b]`).Explain()
	if !strings.Contains(out3, "Theorem 13") {
		t.Errorf("Explain for core query:\n%s", out3)
	}
}

func TestContextNodeFromOtherDocument(t *testing.T) {
	d1, _ := ParseDocumentString(`<a id="x"><b/></a>`)
	d2, _ := ParseDocumentString(`<a id="x"><b/></a>`)
	q := MustCompile(`//b`)
	if _, err := q.EvaluateWith(d1, Options{ContextNode: d2.ByID("x")}); err == nil {
		t.Error("cross-document context node must be rejected")
	}
}

// TestConcurrentEvaluation: documents and compiled queries are immutable;
// evaluations on all engines may run concurrently.
func TestConcurrentEvaluation(t *testing.T) {
	doc, _ := ParseDocumentString(figure2XML)
	q := MustCompile(section24Query)
	done := make(chan string, 32)
	for i := 0; i < 32; i++ {
		eng := Engines()[i%4] // opt, min, topdown, bottomup
		go func(e Engine) {
			res, err := q.EvaluateWith(doc, Options{Engine: e})
			if err != nil {
				done <- err.Error()
				return
			}
			done <- ids(res.Nodes())
		}(eng)
	}
	want := "x13 x14 x21 x22 x23 x24"
	for i := 0; i < 32; i++ {
		if got := <-done; got != want {
			t.Errorf("concurrent evaluation: %q", got)
		}
	}
}

func TestPublicSnapshotRoundTrip(t *testing.T) {
	doc, _ := ParseDocumentString(figure2XML)
	var buf strings.Builder
	if err := doc.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Queries behave identically on the restored document.
	q := MustCompile(section24Query)
	r1, _ := q.Evaluate(doc)
	r2, _ := q.Evaluate(back)
	if ids(r1.Nodes()) != ids(r2.Nodes()) {
		t.Errorf("snapshot round trip changed query results: %s vs %s",
			ids(r1.Nodes()), ids(r2.Nodes()))
	}
}
