package xpath

import (
	"repro/internal/store"
)

// SyncPolicy selects when the durable store's write-ahead log fsyncs.
type SyncPolicy = store.SyncPolicy

const (
	// SyncAlways fsyncs after every mutation: an acknowledged write
	// survives power loss. The default.
	SyncAlways = store.SyncAlways
	// SyncNever leaves flushing to the OS: writes survive process crashes
	// but a power cut may lose an un-flushed suffix. Recovery still
	// reopens to a durable prefix.
	SyncNever = store.SyncNever
)

// DurableOptions configures OpenStore.
type DurableOptions struct {
	// Sync selects the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
}

// DurableStore is a Store whose mutations survive crashes: a directory
// holds one checksummed corpus snapshot plus a write-ahead log, every
// Put/Remove is logged before it is applied, and OpenStore recovers
// snapshot + log replay — truncating a torn tail to the last durable
// prefix rather than rejecting the corpus.
//
// Mutations serialize internally; queries on Store() proceed concurrently
// and see each mutation atomically (old document or new, never a torn
// one). Compact folds the log into a fresh snapshot without blocking
// either.
type DurableStore struct {
	ds *store.DurableStore
	st *Store
}

// OpenStore opens (or initializes) a durable store in dir and recovers
// its contents.
func OpenStore(dir string, opts DurableOptions) (*DurableStore, error) {
	ds, err := store.Open(dir, store.DurableOptions{Sync: opts.Sync})
	if err != nil {
		return nil, err
	}
	return &DurableStore{ds: ds, st: &Store{s: ds.Store()}}, nil
}

// Store exposes the recovered corpus for queries (Get, Query, IDs, …).
// Mutations must go through Put/Remove so they are logged.
func (d *DurableStore) Store() *Store { return d.st }

// Put durably inserts or replaces the document under the ID, reporting
// whether a previous document was displaced.
func (d *DurableStore) Put(id string, doc *Document) (bool, error) {
	if doc == nil {
		return d.ds.Put(id, nil) // the store's nil-document error
	}
	return d.ds.Put(id, doc.tree)
}

// Remove durably deletes the document under the ID, reporting whether it
// was present.
func (d *DurableStore) Remove(id string) (bool, error) { return d.ds.Remove(id) }

// Compact folds the write-ahead log into a fresh snapshot and returns the
// new corpus generation. Mutations and queries proceed while it runs.
func (d *DurableStore) Compact() (uint64, error) { return d.ds.Compact() }

// Generation returns the current corpus generation (it advances on every
// Compact).
func (d *DurableStore) Generation() uint64 { return d.ds.Generation() }

// Close syncs and closes the log. The corpus stays queryable; further
// mutations fail.
func (d *DurableStore) Close() error { return d.ds.Close() }
