package xpath

// Tests for the observability layer: EXPLAIN ANALYZE coherence, batch stats
// aggregation (including the error-document path), the shared-tracer
// contract across batch workers, and the metrics registry surface.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

const obsFixture = `<a><b><d/><c/></b><b><c/></b></a>`

// TestExplainAnalyze is the acceptance check of the observability layer: on
// a Core XPath workload query, the annotated listing must show per-step
// observed cardinalities, and the per-opcode times of the main block must
// sum to (within tolerance) the total evaluation time.
func TestExplainAnalyze(t *testing.T) {
	doc := WrapTree(workload.Scaled(200))
	q := MustCompile(`/descendant::b[child::d]/child::c`)
	out, err := q.ExplainAnalyze(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"calls=", "ns=", "in=", "out=", "total:", "b0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, out)
		}
	}
	// The final step selects the c-children of b-elements with a d-child;
	// its annotated line must carry a real observed cardinality.
	if !strings.Contains(out, "child::c") {
		t.Errorf("no step line for child::c:\n%s", out)
	}

	// Timing coherence: run traced and compare the main block's summed
	// opcode time against the whole-evaluation span. Nested predicate-block
	// time is included in the invoking main-block opcode, so block-0 opcodes
	// must cover most of — and never exceed — the total. The times are
	// aggregated over many evaluations of a larger document so per-opcode
	// work dominates the fixed per-evaluation overhead (machine pool,
	// register reset, result detach) that the opcode spans rightly exclude.
	big := WrapTree(workload.Scaled(2000))
	rec := NewTraceRecorder()
	for i := 0; i < 20; i++ {
		if _, err := q.EvaluateWith(big, Options{Engine: EngineCompiled, Tracer: rec}); err != nil {
			t.Fatal(err)
		}
	}
	total := rec.TotalNs(trace.KindEval)
	var opcodes int64
	for _, r := range rec.Rows() {
		if r.Kind == trace.KindOpcode && r.Block == 0 {
			opcodes += r.Ns
		}
	}
	if total <= 0 {
		t.Fatalf("KindEval total = %d, want > 0", total)
	}
	if opcodes > total {
		t.Errorf("main-block opcode time %dns exceeds total evaluation time %dns", opcodes, total)
	}
	if opcodes < total/4 {
		t.Errorf("main-block opcode time %dns is under a quarter of the total %dns — spans are dropping work", opcodes, total)
	}
}

// TestExplainAnalyzeCompileError: queries the plan compiler rejects surface
// the error instead of a partial listing.
func TestExplainAnalyzeError(t *testing.T) {
	doc, err := ParseDocumentString(obsFixture)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`/descendant::b`)
	if _, err := q.ExplainAnalyze(doc); err != nil {
		t.Fatalf("ExplainAnalyze on a valid query: %v", err)
	}
}

// TestBatchStatsAggregation pins BatchResult.Stats as exactly the sum of the
// per-document serial evaluations — including a batch with an unknown ID,
// whose error document must contribute nothing.
func TestBatchStatsAggregation(t *testing.T) {
	st := NewStore()
	ids := []string{"d1", "d2", "d3"}
	for i, id := range ids {
		doc, err := ParseDocumentString(fmt.Sprintf(
			`<a><b><d/><c/></b><b><c/></b><e>%d</e></a>`, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(id, doc); err != nil {
			t.Fatal(err)
		}
	}
	const src = `/descendant::b[child::d]/child::c`
	for _, withErrDoc := range []bool{false, true} {
		sel := append([]string(nil), ids...)
		if withErrDoc {
			sel = append(sel, "no-such-doc")
		}
		batch, err := st.Query(src, BatchOptions{IDs: sel, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		wantErrs := 0
		if withErrDoc {
			wantErrs = 1
		}
		if batch.Errs() != wantErrs {
			t.Fatalf("Errs() = %d, want %d", batch.Errs(), wantErrs)
		}
		var want Stats
		q := MustCompile(src)
		for _, id := range ids {
			doc, ok := st.Get(id)
			if !ok {
				t.Fatal("document vanished")
			}
			res, err := q.Evaluate(doc)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats()
			want.TableCells += s.TableCells
			want.ContextsEvaluated += s.ContextsEvaluated
			want.AxisCalls += s.AxisCalls
		}
		if got := batch.Stats(); got != want {
			t.Errorf("withErrDoc=%v: batch stats %+v != summed serial stats %+v",
				withErrDoc, got, want)
		}
	}
}

// TestBatchSharedTracer pins the shared-tracer contract: one recorder handed
// to a many-worker batch receives every document's spans without loss. Run
// under -race in CI.
func TestBatchSharedTracer(t *testing.T) {
	st := NewStore()
	const docs = 24
	var ids []string
	for i := 0; i < docs; i++ {
		id := fmt.Sprintf("doc-%02d", i)
		doc, err := ParseDocumentString(obsFixture)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(id, doc); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	rec := NewTraceRecorder()
	batch, err := st.Query(`/descendant::b[child::d]/child::c`, BatchOptions{
		Engine:  EngineCompiled,
		Workers: 8,
		Tracer:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Errs() != 0 {
		t.Fatalf("%d unexpected errors", batch.Errs())
	}
	var batchDocRows, batchDocCalls int64
	for _, r := range rec.Rows() {
		if r.Kind == trace.KindBatchDoc {
			batchDocRows++
			batchDocCalls += r.Calls
		}
	}
	if batchDocRows != docs || batchDocCalls != docs {
		t.Errorf("recorder saw %d batch-doc rows / %d calls, want %d each",
			batchDocRows, batchDocCalls, docs)
	}
}

// TestRecorderSharedAcrossEvaluations: a recorder may also be driven from
// plain concurrent single-document evaluations.
func TestRecorderSharedAcrossEvaluations(t *testing.T) {
	doc, err := ParseDocumentString(obsFixture)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile(`/descendant::b/child::c`)
	rec := NewTraceRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := q.EvaluateWith(doc, Options{Engine: EngineCompiled, Tracer: rec}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var evalCalls int64
	for _, r := range rec.Rows() {
		if r.Kind == trace.KindEval {
			evalCalls += r.Calls
		}
	}
	if evalCalls != 8*50 {
		t.Errorf("recorder aggregated %d eval spans, want %d", evalCalls, 8*50)
	}
}

// TestMetricsSurface exercises the public registry accessors end to end:
// evaluations move the counters, snapshots subtract, and every export
// format renders.
func TestMetricsSurface(t *testing.T) {
	doc, err := ParseDocumentString(obsFixture)
	if err != nil {
		t.Fatal(err)
	}
	before := MetricsSnapshotNow()
	q := MustCompile(`count(/descendant::b)`)
	const runs = 7
	for i := 0; i < runs; i++ {
		if _, err := q.Evaluate(doc); err != nil {
			t.Fatal(err)
		}
	}
	delta := MetricsSnapshotNow().Sub(before)
	if got := delta.Counters["xpath.evals"]; got != runs {
		t.Errorf("xpath.evals delta = %d, want %d", got, runs)
	}
	if h := delta.Histograms["xpath.eval_ns"]; h.Count != runs || h.Sum <= 0 {
		t.Errorf("xpath.eval_ns delta = count %d sum %d, want count %d and positive sum", h.Count, h.Sum, runs)
	}
	var json, text, prom strings.Builder
	if err := WriteMetricsJSON(&json); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsText(&text); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsPrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct{ name, out, want string }{
		{"JSON", json.String(), `"xpath.evals"`},
		{"text", text.String(), "xpath.evals"},
		{"prometheus", prom.String(), "xpath_evals"},
	} {
		if !strings.Contains(probe.out, probe.want) {
			t.Errorf("%s export missing %q", probe.name, probe.want)
		}
	}
}
