//go:build faultinject

package xpath

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// These chaos tests run under `go test -tags faultinject`: they arm
// failpoints inside the serving stack and prove the recovery paths —
// panic isolation into EvalPanicError, sibling isolation in batch
// fan-out, whole-call failure in parallel evaluation — actually run.

// TestChaosEvaluatePanic: a panic inside the evaluation guard surfaces as
// a structured EvalPanicError with the panic value and a captured stack,
// counts in engine.panics, and the next evaluation succeeds.
func TestChaosEvaluatePanic(t *testing.T) {
	defer faultinject.Reset()
	doc := WrapTree(workload.Figure2())
	q := MustCompile(`/child::a/child::b`)

	before := metrics.Default().Counter("engine.panics").Value()
	faultinject.Arm("xpath.evaluate", func() { panic("chaos: evaluate") })
	_, err := q.EvaluateWith(doc, Options{})
	var pe *EvalPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want EvalPanicError", err)
	}
	if pe.Value != "chaos: evaluate" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	if got := metrics.Default().Counter("engine.panics").Value(); got <= before {
		t.Fatalf("engine.panics = %d, want > %d", got, before)
	}

	faultinject.Disarm("xpath.evaluate")
	if _, err := q.EvaluateWith(doc, Options{}); err != nil {
		t.Fatalf("evaluation after disarm: %v", err)
	}
}

// TestChaosBatchWorkerPanic: a panic in a batch worker is contained to the
// claimed document — the batch completes with per-document errors and the
// process keeps going.
func TestChaosBatchWorkerPanic(t *testing.T) {
	defer faultinject.Reset()
	st := NewStore()
	for _, id := range []string{"a", "b", "c"} {
		if err := st.Add(id, WrapTree(workload.Scaled(10))); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Arm("store.batch.worker", func() { panic("chaos: batch") })
	res, err := st.Query(`/child::a`, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("batch call itself failed: %v", err)
	}
	if res.Errs() != 3 {
		t.Fatalf("Errs = %d, want 3 (every doc hit the failpoint)", res.Errs())
	}
	for _, d := range res.Docs {
		var pe *EvalPanicError
		if !errors.As(d.Err, &pe) {
			t.Fatalf("doc %s: err = %v, want EvalPanicError", d.ID, d.Err)
		}
	}

	faultinject.Disarm("store.batch.worker")
	res, err = st.Query(`/child::a`, BatchOptions{Workers: 2})
	if err != nil || res.Errs() != 0 {
		t.Fatalf("batch after disarm: err = %v, Errs = %d", err, res.Errs())
	}
}

// TestChaosParallelPanic: a panic in an EvaluateParallel worker fails the
// call with EvalPanicError instead of crashing the process.
func TestChaosParallelPanic(t *testing.T) {
	defer faultinject.Reset()
	doc := WrapTree(workload.Scaled(200))
	q := MustCompile(`/descendant::b/child::c`)

	faultinject.Arm("store.parallel", func() { panic("chaos: parallel") })
	_, err := q.EvaluateParallel(doc, ParallelOptions{Workers: 4})
	var pe *EvalPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want EvalPanicError", err)
	}

	faultinject.Disarm("store.parallel")
	if _, err := q.EvaluateParallel(doc, ParallelOptions{Workers: 4}); err != nil {
		t.Fatalf("parallel after disarm: %v", err)
	}
}
