package server

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Admission instruments (process-wide): how deep the queue ran, how long
// admitted requests waited for a worker, and why rejected requests bounced.
var (
	mQueueDepth     = metrics.Default().Gauge("server.queue_depth")
	mQueueDepthHist = metrics.Default().Histogram("server.queue_depth_sampled")
	mQueueWaitNs    = metrics.Default().Histogram("server.queue_wait_ns")
	mAdmitted       = metrics.Default().Counter("server.admitted")
	mRejectedFull   = metrics.Default().Counter("server.rejected.queue_full")
	mRejectedDrain  = metrics.Default().Counter("server.rejected.draining")
	mWorkerPanics   = metrics.Default().Counter("server.worker_panics")
)

// ErrQueueFull reports that the admission queue is at capacity; the HTTP
// layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrDraining reports that the pool has begun its shutdown drain; the HTTP
// layer maps it to 503 Service Unavailable.
var ErrDraining = errors.New("server: draining")

// job is one admitted unit of work: the function to run and the monotonic
// enqueue time feeding the queue-wait histogram.
type job struct {
	run      func()
	enqueued int64
}

// pool is the admission layer in front of the evaluation work: a bounded
// job queue drained by a fixed set of worker goroutines. Submit never
// blocks — a full queue is an immediate ErrQueueFull, which is the whole
// point: under overload the server sheds load at the front door in O(1)
// instead of stacking goroutines until memory runs out.
type pool struct {
	jobs chan job
	wg   sync.WaitGroup

	// draining flips once, before the queue closes. Submit holds the read
	// lock while it checks the flag and enqueues, and drain takes the write
	// lock between setting the flag and closing the channel — so no Submit
	// can slip a job into a closed channel.
	mu       sync.RWMutex
	draining atomic.Bool
}

// newPool starts workers goroutines draining a queue of the given depth.
func newPool(workers, depth int) *pool {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 1
	}
	p := &pool{jobs: make(chan job, depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				mQueueDepth.Set(int64(len(p.jobs)))
				mQueueWaitNs.Observe(trace.Now() - j.enqueued)
				runJob(j.run)
			}
		}()
	}
	return p
}

// submit enqueues run for execution, never blocking: ErrQueueFull when the
// queue is at capacity, ErrDraining once shutdown has begun. On success the
// job will run exactly once, even if drain starts meanwhile (drain closes
// the queue but the workers finish everything already admitted).
func (p *pool) submit(run func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining.Load() {
		mRejectedDrain.Add(1)
		return ErrDraining
	}
	select {
	case p.jobs <- job{run: run, enqueued: trace.Now()}:
		depth := int64(len(p.jobs))
		mQueueDepth.Set(depth)
		mQueueDepthHist.Observe(depth)
		mAdmitted.Add(1)
		return nil
	default:
		mRejectedFull.Add(1)
		return ErrQueueFull
	}
}

// runJob runs one admitted job behind the pool's last-resort panic guard.
// Jobs submitted through Server.run already recover their own panics into
// structured errors; this backstop covers any other submitter, so a single
// panicking job can never take the worker goroutine — and with it a slice
// of the pool's capacity — down for the life of the process.
func runJob(f func()) {
	defer func() {
		if r := recover(); r != nil {
			mWorkerPanics.Add(1)
		}
	}()
	f()
}

// depth returns the current queue length (diagnostics; racy by nature).
func (p *pool) depth() int { return len(p.jobs) }

// isDraining reports whether shutdown has begun.
func (p *pool) isDraining() bool { return p.draining.Load() }

// drain stops admission and blocks until every already-admitted job has
// run. Safe to call more than once; later calls just wait.
func (p *pool) drain() {
	if !p.draining.Swap(true) {
		p.mu.Lock()
		close(p.jobs)
		p.mu.Unlock()
	}
	p.wg.Wait()
}
