package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	xpath "repro"
)

// LoadCorpus builds the document store a server fronts: from a binary
// snapshot file (Store.WriteSnapshot / the CLI's -savestore), or from
// every *.xml file of a directory, keyed by file name in sorted order.
func LoadCorpus(path string) (*xpath.Store, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return xpath.LoadStore(f)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	st := xpath.NewStore()
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Open(filepath.Join(path, name))
		if err != nil {
			return nil, err
		}
		// The ingest limits are enforced explicitly on the server's document
		// path: a corpus file that nests deep enough to threaten the stack or
		// large enough to blow memory fails the load with a named error
		// instead of taking the process down before it ever serves.
		doc, err := xpath.ParseDocumentLimits(f, xpath.DefaultParseLimits())
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if err := st.Add(name, doc); err != nil {
			return nil, err
		}
	}
	if st.Len() == 0 {
		return nil, fmt.Errorf("%s: no *.xml files", path)
	}
	return st, nil
}
