package server

import (
	"fmt"
	"net/http"
	"strings"

	xpath "repro"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Mutation instruments (process-wide): write traffic against the corpus
// and snapshot compactions.
var (
	mMutations   = metrics.Default().Counter("server.mutations")
	mMutationNs  = metrics.Default().Histogram("server.mutation_ns")
	mCompactions = metrics.Default().Counter("server.compactions")
)

// The mutation endpoints make the served corpus writable under live query
// traffic:
//
//	PUT    /doc/{id}   parse the XML body, insert or replace the document
//	DELETE /doc/{id}   remove the document
//	POST   /snapshot   fold the write-ahead log into a fresh snapshot
//
// XML parsing — the expensive, untrusted part — happens on the handler
// goroutine so it never occupies an evaluation worker; only the mutation
// itself (a WAL append plus an atomic in-store swap) goes through the
// bounded admission pool, giving writes the same 429/503/504 overload
// behavior as queries. Mutations and queries interleave freely: a query
// in flight during a PUT sees the old document or the new one, never a
// torn state, and compaction never blocks either side — there is
// deliberately no "409 while compacting".

// docID extracts and validates the {id} suffix of a /doc/ path. A false
// return means the error response is already written.
func docID(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := strings.TrimPrefix(r.URL.Path, "/doc/")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing document ID in path")
		return "", false
	}
	if strings.Contains(id, "/") {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid document ID %q: contains '/'", id))
		return "", false
	}
	return id, true
}

// putDocResponse is the PUT /doc/{id} response shape.
type putDocResponse struct {
	ID       string `json:"id"`
	Replaced bool   `json:"replaced"`
	Durable  bool   `json:"durable"`
}

// handlePutDoc serves PUT /doc/{id}: the body is an XML document, parsed
// under the server's ingest limits. 201 on insert, 200 on replace.
func (s *Server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	id, ok := docID(w, r)
	if !ok {
		return
	}
	doc, err := xpath.ParseDocument(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad document: %v", err))
		return
	}
	t0 := trace.Now()
	var replaced bool
	var putErr error
	if !s.run(w, r, nil, func() {
		if s.cfg.Durable != nil {
			replaced, putErr = s.cfg.Durable.Put(id, doc)
		} else {
			replaced, putErr = s.store.Replace(id, doc)
		}
	}) {
		return
	}
	if putErr != nil {
		writeError(w, http.StatusBadRequest, putErr.Error())
		return
	}
	mMutations.Add(1)
	mMutationNs.Observe(trace.Now() - t0)
	if !replaced {
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, putDocResponse{ID: id, Replaced: replaced, Durable: s.cfg.Durable != nil})
}

// deleteDocResponse is the DELETE /doc/{id} response shape.
type deleteDocResponse struct {
	ID      string `json:"id"`
	Removed bool   `json:"removed"`
}

// handleDeleteDoc serves DELETE /doc/{id}: 200 when the document existed,
// 404 when it did not.
func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	id, ok := docID(w, r)
	if !ok {
		return
	}
	t0 := trace.Now()
	var removed bool
	var rmErr error
	if !s.run(w, r, nil, func() {
		if s.cfg.Durable != nil {
			removed, rmErr = s.cfg.Durable.Remove(id)
		} else {
			removed = s.store.Remove(id)
		}
	}) {
		return
	}
	if rmErr != nil {
		writeError(w, http.StatusInternalServerError, rmErr.Error())
		return
	}
	if !removed {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no document %q", id))
		return
	}
	mMutations.Add(1)
	mMutationNs.Observe(trace.Now() - t0)
	writeJSON(w, deleteDocResponse{ID: id, Removed: true})
}

// snapshotResponse is the POST /snapshot response shape.
type snapshotResponse struct {
	Generation uint64 `json:"generation"`
	Docs       int    `json:"docs"`
}

// handleSnapshot serves POST /snapshot: Compact on the durable store —
// the log folds into a fresh checksummed snapshot while mutations and
// queries proceed. Without a durable store there is nothing to fold, so
// the request conflicts with the server's configuration: 409.
//
// Compaction runs on the handler goroutine, not the admission pool: it is
// I/O-bound, its duration scales with corpus size rather than query cost,
// and it must never occupy an evaluation worker slot.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		mRejectedDrain.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.Durable == nil {
		writeError(w, http.StatusConflict, "server has no durable store; start with a data directory")
		return
	}
	gen, err := s.cfg.Durable.Compact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("compaction failed: %v", err))
		return
	}
	mCompactions.Add(1)
	writeJSON(w, snapshotResponse{Generation: gen, Docs: s.store.Len()})
}
