package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Router instruments (process-wide): request volume, per-status-class
// counts, and whole-request wall time.
var (
	mRequests  = metrics.Default().Counter("server.requests")
	mRequestNs = metrics.Default().Histogram("server.request_ns")
	mStatus    = [6]*metrics.Counter{
		nil,
		metrics.Default().Counter("server.status.1xx"),
		metrics.Default().Counter("server.status.2xx"),
		metrics.Default().Counter("server.status.3xx"),
		metrics.Default().Counter("server.status.4xx"),
		metrics.Default().Counter("server.status.5xx"),
	}
)

// router is a minimal exact-path, per-method dispatcher. The endpoint set
// is small and fixed, so there is no pattern matching: unknown paths are
// 404, known paths with the wrong method are 405 with an Allow header.
// Every dispatched request runs inside the instrumentation wrapper that
// feeds the request counters and the status-class metrics.
type router struct {
	routes   map[string]map[string]http.HandlerFunc // path → method → handler
	prefixes []prefixRoute                          // registration order; first match wins
}

// prefixRoute dispatches every path under one prefix (e.g. /doc/) to a
// per-method handler set; the handler extracts the suffix itself.
type prefixRoute struct {
	prefix   string
	byMethod map[string]http.HandlerFunc
}

func newRouter() *router {
	return &router{routes: make(map[string]map[string]http.HandlerFunc)}
}

// handle registers h for method on the exact path.
func (rt *router) handle(method, path string, h http.HandlerFunc) {
	byMethod := rt.routes[path]
	if byMethod == nil {
		byMethod = make(map[string]http.HandlerFunc)
		rt.routes[path] = byMethod
	}
	byMethod[method] = h
}

// handlePrefix registers h for method on every path under prefix.
func (rt *router) handlePrefix(method, prefix string, h http.HandlerFunc) {
	for i := range rt.prefixes {
		if rt.prefixes[i].prefix == prefix {
			rt.prefixes[i].byMethod[method] = h
			return
		}
	}
	rt.prefixes = append(rt.prefixes, prefixRoute{
		prefix:   prefix,
		byMethod: map[string]http.HandlerFunc{method: h},
	})
}

// statusWriter captures the status code a handler writes, for the
// status-class counters (implicit 200 when the handler never calls
// WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP dispatches and instruments one request.
func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := trace.Now()
	sw := &statusWriter{ResponseWriter: w}
	rt.dispatch(sw, r)
	mRequests.Add(1)
	mRequestNs.Observe(trace.Now() - t0)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	if class := status / 100; class >= 1 && class <= 5 {
		mStatus[class].Add(1)
	}
}

//xpathlint:deterministic
func (rt *router) dispatch(w http.ResponseWriter, r *http.Request) {
	byMethod, ok := rt.routes[r.URL.Path]
	if !ok {
		for i := range rt.prefixes {
			if strings.HasPrefix(r.URL.Path, rt.prefixes[i].prefix) {
				byMethod, ok = rt.prefixes[i].byMethod, true
				break
			}
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such endpoint %q", r.URL.Path))
		return
	}
	h, ok := byMethod[r.Method]
	if !ok {
		allowed := make([]string, 0, len(byMethod))
		for m := range byMethod {
			allowed = append(allowed, m)
		}
		sort.Strings(allowed)
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Sprintf("%s not allowed on %s", r.Method, r.URL.Path))
		return
	}
	h(w, r)
}
