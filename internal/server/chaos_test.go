//go:build faultinject

package server

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// TestChaosEnginePanicYields500 is the acceptance test for panic isolation
// end-to-end: an injected panic inside the evaluation guard answers 500
// with the engine.panics metric incremented, and the server — same worker
// pool, same process — keeps serving.
func TestChaosEnginePanicYields500(t *testing.T) {
	defer faultinject.Reset()
	s := newTestServer(t, Config{Workers: 1})

	before := metrics.Default().Counter("engine.panics").Value()
	faultinject.Arm("xpath.evaluate", func() { panic("chaos: engine") })
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	if got := metrics.Default().Counter("engine.panics").Value(); got <= before {
		t.Fatalf("engine.panics = %d, want > %d", got, before)
	}

	faultinject.Disarm("xpath.evaluate")
	w = do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("request after panic: status = %d, want 200 (body %s)",
			w.Code, w.Body.String())
	}
}

// TestChaosWorkerDelayTimesOut: an injected stall in the pool worker makes
// the request outlive its timeout (504); once disarmed the same server
// answers 200 again.
func TestChaosWorkerDelayTimesOut(t *testing.T) {
	defer faultinject.Reset()
	s := newTestServer(t, Config{Workers: 1, Timeout: 20 * time.Millisecond})

	faultinject.Arm("server.worker", func() { time.Sleep(200 * time.Millisecond) })
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body.String())
	}

	faultinject.Disarm("server.worker")
	// The injected stall is not cancelable, so give the worker time to
	// finish it before expecting clean service again.
	deadline := time.After(5 * time.Second)
	for {
		w = do(t, s, http.MethodPost, "/query",
			QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
		if w.Code == http.StatusOK {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("server never recovered from the stall, last status %d", w.Code)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
