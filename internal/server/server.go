// Package server is the HTTP front-end over the document store: the
// "millions of users" layer of the ROADMAP that makes everything built so
// far — the source-keyed plan cache (xpath.CompileCached), the sharded
// store's batch fan-out, the zero-alloc topology kernels and the metrics
// and trace substrate — servable.
//
// The endpoints ride a minimal exact-path router (plus one /doc/ prefix
// route for the mutation surface):
//
//	POST   /query     one document, one query (engine and tracer opt-in)
//	POST   /batch     one query fanned out across an ID list (Store.Query)
//	GET    /explain   plan disassembly; EXPLAIN ANALYZE when ?id= names a doc
//	GET    /stats     metrics registry as JSON or Prometheus exposition
//	GET    /healthz   liveness (503 once draining)
//	PUT    /doc/{id}  insert or replace one document (WAL-logged when durable)
//	DELETE /doc/{id}  remove one document
//	POST   /snapshot  fold the write-ahead log into a fresh snapshot
//
// Request admission sits in front of the evaluation work: a bounded job
// queue of configurable depth drained by a fixed worker pool. A full queue
// answers 429 immediately, shutdown-in-progress answers 503, and a request
// that waits longer than the per-request timeout answers 504 — the three
// overload behaviors the Gottlob/Koch/Pichler engines' polynomial-time
// guarantees need at the door so adversarial traffic degrades service
// predictably instead of unboundedly. Shutdown drains gracefully: admitted
// work always finishes.
//
// Every request flows through the source-keyed compile cache as the hot
// path and records structured per-request metrics (compile/eval
// nanoseconds, cache hit, queue wait, result cardinality, status class)
// into the process-wide metrics registry.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	xpath "repro"
	"repro/internal/engine"
	"repro/internal/faultinject"
)

// Config parameterizes one Server.
type Config struct {
	// Store is the document corpus to serve (required).
	Store *xpath.Store
	// Durable, when non-nil, is the persistence layer behind Store:
	// mutations (PUT/DELETE /doc/{id}) are write-ahead-logged through it,
	// and POST /snapshot folds the log into a fresh checksummed snapshot.
	// Without one, mutations alter the in-memory corpus only and
	// POST /snapshot answers 409. Store should be Durable.Store().
	Durable *xpath.DurableStore
	// Workers bounds the admission worker pool (≤ 0 means 1): how many
	// requests evaluate concurrently. Batch requests additionally fan out
	// on the store's own per-batch pool, bounded by BatchWorkers.
	Workers int
	// QueueDepth bounds the admission queue (≤ 0 means 2×Workers). A full
	// queue rejects with 429 instead of queuing unboundedly.
	QueueDepth int
	// Timeout bounds one request's stay in the server — queue wait plus
	// evaluation (0 means 10s). Expiry answers 504 and cancels the
	// request's evaluation budget, so the in-flight evaluation stops at its
	// next cooperative check and the worker slot frees promptly instead of
	// grinding to completion on a result nobody will read. Client
	// disconnects cancel the same way.
	Timeout time.Duration
	// MaxSteps bounds one evaluation's cooperative step fuel (0 means
	// unlimited). Exhaustion answers 422 Unprocessable Entity: the query is
	// well-formed but too expensive under this server's policy.
	MaxSteps int64
	// MaxResultCard bounds one evaluation's node-set result cardinality
	// (0 means unlimited). Exceeding it answers 422.
	MaxResultCard int
	// DefaultEngine evaluates requests that do not name an engine
	// (zero value: EngineAuto, the paper's OPTMINCONTEXT).
	DefaultEngine xpath.Engine
	// BatchWorkers bounds the per-batch fan-out pool inside Store.Query
	// (≤ 0 means GOMAXPROCS), independent of the admission Workers.
	BatchWorkers int
	// MaxBodyBytes bounds request bodies (≤ 0 means 1 MiB).
	MaxBodyBytes int64
	// MaxNodes caps how many nodes a /query response materializes as JSON
	// (≤ 0 means 1000); the full cardinality is always reported in count.
	MaxNodes int
}

// Server serves XPath evaluation over HTTP. Create with New, mount as an
// http.Handler, stop with Shutdown.
type Server struct {
	cfg      Config
	store    *xpath.Store
	pool     *pool
	router   *router
	started  time.Time
	draining atomic.Bool
}

// New returns a Server wired to cfg.Store with all routes registered.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 1000
	}
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		router:  newRouter(),
		started: time.Now(),
	}
	s.router.handle(http.MethodPost, "/query", s.handleQuery)
	s.router.handle(http.MethodPost, "/batch", s.handleBatch)
	s.router.handle(http.MethodGet, "/explain", s.handleExplain)
	s.router.handle(http.MethodGet, "/stats", s.handleStats)
	s.router.handle(http.MethodGet, "/healthz", s.handleHealthz)
	s.router.handle(http.MethodPost, "/snapshot", s.handleSnapshot)
	s.router.handlePrefix(http.MethodPut, "/doc/", s.handlePutDoc)
	s.router.handlePrefix(http.MethodDelete, "/doc/", s.handleDeleteDoc)
	return s
}

// ServeHTTP implements http.Handler by dispatching through the router.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.router.ServeHTTP(w, r)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth returns the current admission queue length (diagnostics).
func (s *Server) QueueDepth() int { return s.pool.depth() }

// Shutdown begins the graceful drain: new work is rejected with 503
// immediately, and the call blocks until every already-admitted job has
// finished or ctx expires (in which case the jobs keep running but the
// call returns ctx's error). The process's SIGTERM handler calls this
// before closing the listener, so in-flight evaluations always complete.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.pool.drain()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// newBudget builds the per-request evaluation budget from the server's
// policy: the request timeout as a deadline plus the configured step fuel
// and result-cardinality caps.
func (s *Server) newBudget() *xpath.Budget {
	return xpath.NewBudget(xpath.BudgetLimits{
		Deadline:      s.cfg.Timeout,
		Steps:         s.cfg.MaxSteps,
		MaxResultCard: s.cfg.MaxResultCard,
	})
}

// run admits work through the bounded queue and waits for it to finish,
// mapping the three overload outcomes to their status codes. ok is false
// when the response has already been written (reject, timeout, or a panic
// that escaped the evaluation guards).
//
// bud, when non-nil, is the request's evaluation budget: a timer expiry or
// client disconnect cancels it, so the in-flight evaluation returns at its
// next cooperative check and the worker moves on to the next job — the 504
// does not burn a worker slot for the rest of the evaluation.
func (s *Server) run(w http.ResponseWriter, r *http.Request, bud *xpath.Budget, work func()) (ok bool) {
	if s.draining.Load() {
		mRejectedDrain.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	done := make(chan struct{})
	var panicErr error
	err := s.pool.submit(func() {
		// LIFO defers: RecoverPanic captures a job panic into panicErr
		// first, then done closes — so the waiter below always observes the
		// outcome, panic included, and the worker goroutine never dies.
		defer close(done)
		defer engine.RecoverPanic(&panicErr)
		faultinject.Hit("server.worker")
		work()
	})
	switch err {
	case nil:
	case ErrQueueFull:
		writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		return false
	case ErrDraining:
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
		return false
	}
	timer := time.NewTimer(s.cfg.Timeout)
	defer timer.Stop()
	select {
	case <-done:
		if panicErr != nil {
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("internal error: %v", panicErr))
			return false
		}
		return true
	case <-timer.C:
		mTimeouts.Add(1)
		if bud != nil {
			bud.Cancel()
		}
		writeError(w, http.StatusGatewayTimeout, "request timed out in the server")
		return false
	case <-r.Context().Done():
		// Client went away; cancel the evaluation so the worker slot frees
		// at the next cooperative check instead of computing a result that
		// will be discarded with the connection.
		if bud != nil {
			bud.Cancel()
		}
		return false
	}
}
