package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	xpath "repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestTimeoutFreesWorkerSlot is the acceptance test for cooperative
// cancellation end-to-end: a request that times out must cancel its
// evaluation budget so the single worker frees at the next cooperative
// check — the follow-up request is admitted and succeeds instead of
// timing out behind a zombie evaluation.
//
// The slow request runs the naive engine on the exponential-blowup family
// (2^31 node visits if left alone — hours), so the follow-up's 200 is
// only possible if the 504 actually interrupted the evaluation.
func TestTimeoutFreesWorkerSlot(t *testing.T) {
	st := xpath.NewStore()
	if err := st.Add("dbl", xpath.WrapTree(workload.Doubling())); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("fig2", xpath.WrapTree(workload.Figure2())); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Store: st, Workers: 1, QueueDepth: 2, Timeout: 50 * time.Millisecond,
	})

	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "dbl", Query: workload.DoublingQuery(30), Engine: "naive"}, nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow query: status = %d, want 504 (body %s)", w.Code, w.Body.String())
	}

	// The worker slot must free within the follow-up's own 50ms budget; a
	// still-running evaluation would 504 this one too.
	w = do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("follow-up after timeout: status = %d, want 200 (body %s)",
			w.Code, w.Body.String())
	}
}

// TestBudgetStatuses pins the 422 mapping for server-policy budget trips:
// step-fuel exhaustion and result-cardinality overflow are well-formed but
// too expensive, distinct from 400 (bad request) and 504 (out of time).
func TestBudgetStatuses(t *testing.T) {
	t.Run("max steps", func(t *testing.T) {
		s := newTestServer(t, Config{MaxSteps: 5})
		var e errorBody
		w := do(t, s, http.MethodPost, "/query",
			QueryRequest{ID: "s20", Query: "/descendant-or-self::*[child::*]/child::*"}, &e)
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422 (body %s)", w.Code, w.Body.String())
		}
		if e.Error == "" {
			t.Fatal("422 body missing error field")
		}
	})
	t.Run("max result cardinality", func(t *testing.T) {
		s := newTestServer(t, Config{MaxResultCard: 2})
		w := do(t, s, http.MethodPost, "/query",
			QueryRequest{ID: "s20", Query: "/descendant-or-self::*"}, nil)
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422 (body %s)", w.Code, w.Body.String())
		}
		// Under the cap the same server answers 200.
		w = do(t, s, http.MethodPost, "/query",
			QueryRequest{ID: "s20", Query: "/child::a"}, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("small result: status = %d, want 200 (body %s)", w.Code, w.Body.String())
		}
	})
}

// TestPoolWorkerPanicBackstop: a panic that escapes every per-job guard
// still cannot kill a pool worker — the pool-level recover counts it and
// the worker keeps draining the queue.
func TestPoolWorkerPanicBackstop(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	before := metrics.Default().Counter("server.worker_panics").Value()
	if err := s.pool.submit(func() { panic("worker bomb") }); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for metrics.Default().Counter("server.worker_panics").Value() == before {
		select {
		case <-deadline:
			t.Fatal("worker panic never counted")
		case <-time.After(time.Millisecond):
		}
	}
	// The same (sole) worker serves the next request.
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("request after worker panic: status = %d, want 200 (body %s)",
			w.Code, w.Body.String())
	}
}

// cancelableRequest drives one /query through ServeHTTP on its own
// goroutine with a cancelable request context, simulating a client
// disconnect mid-request.
type cancelableRequest struct {
	cancel func()
	done   chan struct{}
}

func httptestNewCancelableRequest(t *testing.T, s *Server, body QueryRequest) *cancelableRequest {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(b)).WithContext(ctx)
	cr := &cancelableRequest{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(cr.done)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	return cr
}

// TestClientDisconnectCancelsEvaluation: when the client goes away
// mid-evaluation, the budget is canceled and the worker slot frees — the
// next request on the single worker succeeds promptly.
func TestClientDisconnectCancelsEvaluation(t *testing.T) {
	st := xpath.NewStore()
	if err := st.Add("dbl", xpath.WrapTree(workload.Doubling())); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("fig2", xpath.WrapTree(workload.Figure2())); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Store: st, Workers: 1, QueueDepth: 2, Timeout: 30 * time.Second,
	})

	// A request whose context is canceled shortly after admission: the
	// handler returns without writing, and — the part under test — the
	// evaluation stops long before its natural completion.
	req := httptestNewCancelableRequest(t, s, QueryRequest{
		ID: "dbl", Query: workload.DoublingQuery(30), Engine: "naive",
	})
	time.Sleep(20 * time.Millisecond)
	req.cancel()
	select {
	case <-req.done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler never returned after client disconnect")
	}

	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("request after disconnect: status = %d, want 200 (body %s)",
			w.Code, w.Body.String())
	}
}
