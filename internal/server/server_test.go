package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	xpath "repro"
	"repro/internal/workload"
)

// testStore builds a small corpus: fig2 (the paper's Figure 2 document)
// and two scaled documents.
func testStore(t *testing.T) *xpath.Store {
	t.Helper()
	st := xpath.NewStore()
	add := func(id string, doc *xpath.Document) {
		if err := st.Add(id, doc); err != nil {
			t.Fatalf("Add(%s): %v", id, err)
		}
	}
	add("fig2", xpath.WrapTree(workload.Figure2()))
	add("s10", xpath.WrapTree(workload.Scaled(10)))
	add("s20", xpath.WrapTree(workload.Scaled(20)))
	return st
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = testStore(t)
	}
	return New(cfg)
}

// do runs one request through the server and decodes a JSON response body.
func do(t *testing.T, s *Server, method, target string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if out != nil && strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, target, w.Body.String(), err)
		}
	}
	return w
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	var h HealthResponse
	w := do(t, s, http.MethodGet, "/healthz", nil, &h)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.Code)
	}
	if h.Status != "ok" || h.Documents != 3 {
		t.Fatalf("health = %+v, want ok/3", h)
	}
}

func TestQueryOK(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp QueryResponse
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if resp.Kind != "node-set" || resp.Count != 2 || len(resp.Nodes) != 2 {
		t.Fatalf("resp = %+v, want 2-node node-set", resp)
	}
	for _, n := range resp.Nodes {
		if n.Label != "b" {
			t.Fatalf("node label = %q, want b", n.Label)
		}
	}
	if resp.Engine != "optmincontext" && resp.Engine != "auto" {
		t.Fatalf("engine = %q", resp.Engine)
	}

	// The same source a second time must hit the process-wide source cache.
	var again QueryResponse
	do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, &again)
	if !again.CacheHit {
		t.Fatalf("second request CacheHit = false, want true")
	}
}

func TestQueryScalarAndEngines(t *testing.T) {
	s := newTestServer(t, Config{})
	// corexpath is absent: count() is outside the Core XPath fragment (its
	// node-set path is covered by TestQueryTrace).
	for _, eng := range []string{"", "topdown", "bottomup", "compiled", "mincontext"} {
		var resp QueryResponse
		w := do(t, s, http.MethodPost, "/query",
			QueryRequest{ID: "fig2", Query: "count(/descendant-or-self::*)", Engine: eng}, &resp)
		if w.Code != http.StatusOK {
			t.Fatalf("engine %q: status = %d, body %s", eng, w.Code, w.Body.String())
		}
		if resp.Kind != "scalar" || resp.Value == "" {
			t.Fatalf("engine %q: resp = %+v, want scalar with value", eng, resp)
		}
	}
}

func TestQueryTrace(t *testing.T) {
	s := newTestServer(t, Config{DefaultEngine: xpath.EngineCoreXPath})
	var resp QueryResponse
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a/child::b", Trace: true}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(resp.Trace, "child::b") {
		t.Fatalf("trace missing step span:\n%s", resp.Trace)
	}
}

func TestQueryLimit(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp QueryResponse
	do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "s20", Query: "/descendant-or-self::*", Limit: 3}, &resp)
	if len(resp.Nodes) != 3 {
		t.Fatalf("len(nodes) = %d, want 3 (limited)", len(resp.Nodes))
	}
	if resp.Count <= 3 {
		t.Fatalf("count = %d, want full cardinality > limit", resp.Count)
	}
}

func TestQueryBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		raw  string
		want int
	}{
		{name: "bad json", raw: "{", want: http.StatusBadRequest},
		{name: "unknown field", raw: `{"quarry": "/a"}`, want: http.StatusBadRequest},
		{name: "missing query", body: QueryRequest{ID: "fig2"}, want: http.StatusBadRequest},
		{name: "bad xpath", body: QueryRequest{ID: "fig2", Query: "/child::"}, want: http.StatusBadRequest},
		{name: "unknown engine", body: QueryRequest{ID: "fig2", Query: "/child::a", Engine: "warp"}, want: http.StatusBadRequest},
		{name: "unknown doc", body: QueryRequest{ID: "ghost", Query: "/child::a"}, want: http.StatusNotFound},
	}
	for _, tc := range cases {
		var w *httptest.ResponseRecorder
		if tc.raw != "" {
			req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(tc.raw))
			w = httptest.NewRecorder()
			s.ServeHTTP(w, req)
		} else {
			var e errorBody
			w = do(t, s, http.MethodPost, "/query", tc.body, &e)
			if e.Error == "" {
				t.Errorf("%s: error body missing", tc.name)
			}
		}
		if w.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, w.Code, tc.want, w.Body.String())
		}
	}
}

func TestRouterNotFoundAndMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, http.MethodGet, "/nope", nil, nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", w.Code)
	}
	w = do(t, s, http.MethodGet, "/query", nil, nil)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status = %d, want 405", w.Code)
	}
	if allow := w.Header().Get("Allow"); allow != "POST" {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

// TestQueueFull pins the 429 behavior: with one worker and a depth-1
// queue, a parked worker plus one queued job makes the next admission
// bounce immediately.
func TestQueueFull(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	running := make(chan struct{})
	release := make(chan struct{})
	// Occupy the single worker...
	if err := s.pool.submit(func() {
		close(running)
		<-release
	}); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-running
	// ...and fill the queue behind it.
	if err := s.pool.submit(func() {}); err != nil {
		t.Fatalf("submit filler: %v", err)
	}

	var e errorBody
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a"}, &e)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if e.Error == "" {
		t.Fatalf("429 body missing error field")
	}

	close(release)
	// After the drain the same request is admitted again.
	deadline := time.After(5 * time.Second)
	for {
		w = do(t, s, http.MethodPost, "/query",
			QueryRequest{ID: "fig2", Query: "/child::a"}, nil)
		if w.Code == http.StatusOK {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("server never recovered from queue-full, last status %d", w.Code)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestDraining pins the 503 behavior of a shutdown in progress.
func TestDraining(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a"}, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/query while draining: status = %d, want 503", w.Code)
	}
	var h HealthResponse
	w = do(t, s, http.MethodGet, "/healthz", nil, &h)
	if w.Code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("/healthz while draining: status = %d body %+v, want 503/draining", w.Code, h)
	}
}

// TestTimeout pins the 504 behavior: the single worker is parked, so an
// admitted request outlives its budget in the queue.
func TestTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Timeout: 20 * time.Millisecond})
	running := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if err := s.pool.submit(func() {
		close(running)
		<-release
	}); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-running
	w := do(t, s, http.MethodPost, "/query",
		QueryRequest{ID: "fig2", Query: "/child::a"}, nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body.String())
	}
}

func TestBatch(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp BatchResponse
	w := do(t, s, http.MethodPost, "/batch",
		BatchRequest{Query: "/descendant-or-self::b", IDs: []string{"fig2", "ghost", "s10"}}, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if len(resp.Docs) != 3 || resp.Errors != 1 {
		t.Fatalf("resp = %+v, want 3 docs with 1 error", resp)
	}
	if resp.Docs[0].ID != "fig2" || resp.Docs[0].Count != 2 {
		t.Fatalf("docs[0] = %+v, want fig2 count=2", resp.Docs[0])
	}
	if resp.Docs[1].ID != "ghost" || resp.Docs[1].Error == "" {
		t.Fatalf("docs[1] = %+v, want ghost error", resp.Docs[1])
	}

	// nil IDs means the whole corpus in sorted order.
	var all BatchResponse
	do(t, s, http.MethodPost, "/batch", BatchRequest{Query: "/child::a"}, &all)
	if len(all.Docs) != 3 || all.Errors != 0 {
		t.Fatalf("all-docs batch = %+v, want 3 docs no errors", all)
	}

	w = do(t, s, http.MethodPost, "/batch", BatchRequest{IDs: []string{"fig2"}}, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("missing query: status = %d, want 400", w.Code)
	}
	w = do(t, s, http.MethodPost, "/batch", BatchRequest{Query: "/child::", IDs: []string{"fig2"}}, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad query: status = %d, want 400", w.Code)
	}
}

func TestExplain(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, http.MethodGet, "/explain?q="+url.QueryEscape("/child::a/child::b"), nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	body := w.Body.String()
	if !strings.Contains(body, "child::a") || !strings.Contains(body, "plan") {
		t.Fatalf("explain output missing plan:\n%s", body)
	}

	w = do(t, s, http.MethodGet, "/explain?id=fig2&q="+url.QueryEscape("/child::a/child::b"), nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("analyze status = %d, body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "calls=") {
		t.Fatalf("analyze output missing per-instruction annotations:\n%s", w.Body.String())
	}

	if w = do(t, s, http.MethodGet, "/explain", nil, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("missing q: status = %d, want 400", w.Code)
	}
	if w = do(t, s, http.MethodGet, "/explain?q=%2Fchild%3A%3A", nil, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad q: status = %d, want 400", w.Code)
	}
	if w = do(t, s, http.MethodGet, "/explain?id=ghost&q=%2Fchild%3A%3Aa", nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown id: status = %d, want 404", w.Code)
	}
}

func TestStats(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	// Generate some traffic first so the counters are non-trivial.
	do(t, s, http.MethodPost, "/query", QueryRequest{ID: "fig2", Query: "/child::a"}, nil)

	var resp StatsResponse
	w := do(t, s, http.MethodGet, "/stats", nil, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if resp.Server.Documents != 3 || resp.Server.Workers != 2 || resp.Server.QueueCap != 8 {
		t.Fatalf("server stats = %+v", resp.Server)
	}
	var reg map[string]any
	if err := json.Unmarshal(resp.Metrics, &reg); err != nil {
		t.Fatalf("metrics block not JSON: %v", err)
	}

	w = do(t, s, http.MethodGet, "/stats?format=prometheus", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("prometheus status = %d", w.Code)
	}
	if body := w.Body.String(); !strings.Contains(body, "# TYPE") || !strings.Contains(body, "server_requests") {
		t.Fatalf("prometheus body missing exposition lines:\n%.400s", body)
	}

	if w = do(t, s, http.MethodGet, "/stats?format=xml", nil, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown format: status = %d, want 400", w.Code)
	}
}

// TestConcurrentQueryAndAdd drives /query while documents are added to the
// same store — the -race job's main target for this package.
func TestConcurrentQueryAndAdd(t *testing.T) {
	st := testStore(t)
	s := newTestServer(t, Config{Store: st, Workers: 4, QueueDepth: 64})
	const writers, readers, iters = 2, 4, 40

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := st.Add(id, xpath.WrapTree(workload.Scaled(5))); err != nil {
					t.Errorf("Add(%s): %v", id, err)
					return
				}
			}
		}(w)
	}
	for rr := 0; rr < readers; rr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w := do(t, s, http.MethodPost, "/query",
					QueryRequest{ID: "fig2", Query: "/child::a/child::b"}, nil)
				// 429 is legitimate under pressure; anything else must be 200.
				if w.Code != http.StatusOK && w.Code != http.StatusTooManyRequests {
					t.Errorf("status = %d, body %s", w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
}
