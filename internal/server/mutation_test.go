package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	xpath "repro"
)

// doRaw sends a non-JSON body (mutations take raw XML).
func doRaw(t *testing.T, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestPutDocInsertAndReplace(t *testing.T) {
	s := newTestServer(t, Config{})
	w := doRaw(t, s, http.MethodPut, "/doc/new", `<a><b>1</b></a>`)
	if w.Code != http.StatusCreated {
		t.Fatalf("insert status = %d, want 201 (body %s)", w.Code, w.Body.String())
	}
	w = doRaw(t, s, http.MethodPut, "/doc/new", `<a><b>2</b></a>`)
	if w.Code != http.StatusOK {
		t.Fatalf("replace status = %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"replaced":true`) {
		t.Fatalf("replace body %s", w.Body.String())
	}

	// The new version serves immediately.
	var q QueryResponse
	do(t, s, http.MethodPost, "/query", QueryRequest{ID: "new", Query: "string(/child::a/child::b)"}, &q)
	if q.Value != "2" {
		t.Fatalf("query after replace: %+v", q)
	}
}

func TestPutDocRejectsBadInput(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := doRaw(t, s, http.MethodPut, "/doc/bad", `<unclosed>`); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed XML: status = %d, want 400", w.Code)
	}
	if w := doRaw(t, s, http.MethodPut, "/doc/", `<a/>`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty ID: status = %d, want 400", w.Code)
	}
	if w := doRaw(t, s, http.MethodPut, "/doc/a/b", `<a/>`); w.Code != http.StatusBadRequest {
		t.Fatalf("nested path: status = %d, want 400", w.Code)
	}
	if w := doRaw(t, s, http.MethodGet, "/doc/x", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /doc: status = %d, want 405", w.Code)
	}
}

func TestDeleteDoc(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := doRaw(t, s, http.MethodDelete, "/doc/s10", ""); w.Code != http.StatusOK {
		t.Fatalf("delete status = %d (body %s)", w.Code, w.Body.String())
	}
	if w := doRaw(t, s, http.MethodDelete, "/doc/s10", ""); w.Code != http.StatusNotFound {
		t.Fatalf("second delete status = %d, want 404", w.Code)
	}
	var h HealthResponse
	do(t, s, http.MethodGet, "/healthz", nil, &h)
	if h.Documents != 2 {
		t.Fatalf("documents after delete = %d, want 2", h.Documents)
	}
}

func TestSnapshotWithoutDurableStoreConflicts(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := doRaw(t, s, http.MethodPost, "/snapshot", ""); w.Code != http.StatusConflict {
		t.Fatalf("status = %d, want 409 (body %s)", w.Code, w.Body.String())
	}
}

// TestDurableServerMutateCompactQuery: the full serving loop against a
// durable store — mutations write ahead, compaction runs under traffic,
// and a reopened server sees everything.
func TestDurableServerMutateCompactQuery(t *testing.T) {
	dir := t.TempDir()
	ds, err := xpath.OpenStore(dir, xpath.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: ds.Store(), Durable: ds})

	if w := doRaw(t, s, http.MethodPut, "/doc/a", `<r><v>1</v></r>`); w.Code != http.StatusCreated {
		t.Fatalf("put status = %d (body %s)", w.Code, w.Body.String())
	}
	w := doRaw(t, s, http.MethodPost, "/snapshot", "")
	if w.Code != http.StatusOK {
		t.Fatalf("snapshot status = %d (body %s)", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"generation":1`) {
		t.Fatalf("snapshot body %s", w.Body.String())
	}
	// Mutations keep flowing after (and logically during) compaction —
	// there is no 409-while-compacting.
	if w := doRaw(t, s, http.MethodPut, "/doc/b", `<r><v>2</v></r>`); w.Code != http.StatusCreated {
		t.Fatalf("put after compact: %d (body %s)", w.Code, w.Body.String())
	}
	if w := doRaw(t, s, http.MethodDelete, "/doc/a", ""); w.Code != http.StatusOK {
		t.Fatalf("delete after compact: %d", w.Code)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the directory: snapshot + WAL replay reproduce the state.
	ds2, err := xpath.OpenStore(dir, xpath.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	s2 := New(Config{Store: ds2.Store(), Durable: ds2})
	var q QueryResponse
	do(t, s2, http.MethodPost, "/query", QueryRequest{ID: "b", Query: "string(/child::r/child::v)"}, &q)
	if q.Value != "2" {
		t.Fatalf("recovered query: %+v", q)
	}
	if w := doRaw(t, s2, http.MethodDelete, "/doc/a", ""); w.Code != http.StatusNotFound {
		t.Fatalf("deleted document resurrected: %d", w.Code)
	}
}

func TestMutationRejectedWhileDraining(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if w := doRaw(t, s, http.MethodPut, "/doc/x", `<a/>`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("PUT while draining: %d, want 503", w.Code)
	}
	if w := doRaw(t, s, http.MethodPost, "/snapshot", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /snapshot while draining: %d, want 503", w.Code)
	}
}
