package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	xpath "repro"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Per-request evaluation instruments (process-wide): the structured metrics
// every /query and /batch records — compile/eval time, compile-cache
// behavior, result cardinality and timeout pressure.
var (
	mTimeouts    = metrics.Default().Counter("server.timeouts")
	mCacheHits   = metrics.Default().Counter("server.cache_hits")
	mCacheMisses = metrics.Default().Counter("server.cache_misses")
	mCompileNs   = metrics.Default().Histogram("server.compile_ns")
	mEvalNs      = metrics.Default().Histogram("server.eval_ns")
	mResultCard  = metrics.Default().Histogram("server.result_card")
	mBatchSize   = metrics.Default().Histogram("server.batch_size")
)

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all we can do is note it in the metrics.
		mStatus[5].Add(1)
	}
}

// decodeBody decodes a bounded JSON request body into v, rejecting
// trailing garbage. A false return means the 400 is already written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "bad request body: trailing data")
		return false
	}
	return true
}

// resolveEngine maps a request's engine field to an Engine ("" means the
// server default). A false return means the 400 is already written.
func (s *Server) resolveEngine(w http.ResponseWriter, name string) (xpath.Engine, bool) {
	if name == "" {
		return s.cfg.DefaultEngine, true
	}
	eng, ok := xpath.EngineByName(name)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown engine %q", name))
		return 0, false
	}
	return eng, true
}

// evalStatus maps an evaluation failure to its HTTP status and message:
// recovered panics are the server's fault (500), budget trips are policy
// (504 for time, 422 for fuel/cardinality — the query is well-formed but
// too expensive), and everything else is the request's fault (400).
func evalStatus(err error) (int, string) {
	var pe *xpath.EvalPanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError, fmt.Sprintf("internal error: %v", err)
	case errors.Is(err, xpath.ErrCanceled), errors.Is(err, xpath.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, fmt.Sprintf("evaluation timed out: %v", err)
	case errors.Is(err, xpath.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity, fmt.Sprintf("evaluation exceeded its budget: %v", err)
	default:
		return http.StatusBadRequest, fmt.Sprintf("evaluation failed: %v", err)
	}
}

// NodeJSON is one result node of a /query response.
type NodeJSON struct {
	// Pre is the node's document-order (preorder) index; root = 0.
	Pre int `json:"pre"`
	// Label is the tag name.
	Label string `json:"label"`
	// Value is the node's string-value, truncated to keep responses small.
	Value string `json:"value,omitempty"`
}

// StatsJSON carries the engine instrumentation counters of an evaluation.
type StatsJSON struct {
	TableCells        int64 `json:"table_cells"`
	ContextsEvaluated int64 `json:"contexts_evaluated"`
	AxisCalls         int64 `json:"axis_calls"`
}

// TimingsJSON is the per-request timing breakdown, in nanoseconds.
type TimingsJSON struct {
	CompileNs int64 `json:"compile_ns"`
	EvalNs    int64 `json:"eval_ns"`
	TotalNs   int64 `json:"total_ns"`
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// ID names the stored document to query.
	ID string `json:"id"`
	// Query is the XPath 1.0 source text.
	Query string `json:"query"`
	// Engine optionally names the evaluation engine (default: the server's).
	Engine string `json:"engine,omitempty"`
	// Trace opts into per-step/per-opcode tracing; the rendered trace tree
	// rides back on the response.
	Trace bool `json:"trace,omitempty"`
	// Limit caps the materialized node list (0 means the server default);
	// count always reports the full cardinality.
	Limit int `json:"limit,omitempty"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	ID       string      `json:"id"`
	Engine   string      `json:"engine"`
	Kind     string      `json:"kind"` // node-set | number | string | boolean
	Count    int         `json:"count,omitempty"`
	Nodes    []NodeJSON  `json:"nodes,omitempty"`
	Value    string      `json:"value,omitempty"`
	CacheHit bool        `json:"cache_hit"`
	Stats    StatsJSON   `json:"stats"`
	Timings  TimingsJSON `json:"timings"`
	Trace    string      `json:"trace,omitempty"`
}

const maxNodeValueLen = 120

func nodeJSON(n *xpath.Node) NodeJSON {
	v := n.StringValue()
	if len(v) > maxNodeValueLen {
		v = v[:maxNodeValueLen-3] + "..."
	}
	return NodeJSON{Pre: n.Pre(), Label: n.Label(), Value: v}
}

// resultKind names a result's XPath type for the wire.
func resultKind(res *xpath.Result) string {
	switch {
	case res.IsNodeSet():
		return "node-set"
	default:
		// Scalars render through the standard conversions; the concrete
		// type is recovered from the rendered text by the client if it
		// cares. Number/boolean/string all carry Value.
		return "scalar"
	}
}

// handleQuery serves POST /query: one document, one query, engine and
// tracer opt-in. The compile (cache hot path) runs on the handler
// goroutine — a 400 must not cost an admission slot — and the evaluation
// runs through the bounded admission queue.
//
//xpathlint:deterministic
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	eng, ok := s.resolveEngine(w, req.Engine)
	if !ok {
		return
	}
	doc, ok := s.store.Get(req.ID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no document with ID %q", req.ID))
		return
	}

	var rec *xpath.TraceRecorder
	var tr xpath.Tracer
	if req.Trace {
		rec = xpath.NewTraceRecorder()
		tr = rec
	}
	t0 := trace.Now()
	q, hit, err := xpath.CompileCachedTraced(req.Query, tr)
	compileNs := trace.Now() - t0
	mCompileNs.Observe(compileNs)
	if hit {
		mCacheHits.Add(1)
	} else {
		mCacheMisses.Add(1)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad query: %v", err))
		return
	}

	var (
		res     *xpath.Result
		evalErr error
		evalNs  int64
	)
	bud := s.newBudget()
	if !s.run(w, r, bud, func() {
		tEval := trace.Now()
		res, evalErr = q.EvaluateWith(doc, xpath.Options{Engine: eng, Tracer: tr, Budget: bud})
		evalNs = trace.Now() - tEval
		mEvalNs.Observe(evalNs)
	}) {
		return
	}
	if evalErr != nil {
		status, msg := evalStatus(evalErr)
		writeError(w, status, msg)
		return
	}

	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxNodes {
		limit = s.cfg.MaxNodes
	}
	st := res.Stats()
	resp := QueryResponse{
		ID:       req.ID,
		Engine:   eng.String(),
		Kind:     resultKind(res),
		CacheHit: hit,
		Stats: StatsJSON{
			TableCells:        st.TableCells,
			ContextsEvaluated: st.ContextsEvaluated,
			AxisCalls:         st.AxisCalls,
		},
		Timings: TimingsJSON{
			CompileNs: compileNs,
			EvalNs:    evalNs,
			TotalNs:   trace.Now() - t0,
		},
	}
	if res.IsNodeSet() {
		nodes := res.Nodes()
		resp.Count = len(nodes)
		mResultCard.Observe(int64(len(nodes)))
		if len(nodes) > limit {
			nodes = nodes[:limit]
		}
		resp.Nodes = make([]NodeJSON, len(nodes))
		for i, n := range nodes {
			resp.Nodes[i] = nodeJSON(n)
		}
	} else {
		resp.Value = res.Text()
	}
	if rec != nil {
		resp.Trace = xpath.RenderTrace(rec.Rows())
	}
	writeJSON(w, resp)
}

// BatchRequest is the body of POST /batch.
type BatchRequest struct {
	// Query is the XPath 1.0 source text.
	Query string `json:"query"`
	// IDs restricts the batch (order preserved; unknown IDs yield
	// per-document errors); nil means every stored document.
	IDs []string `json:"ids,omitempty"`
	// Engine optionally names the evaluation engine.
	Engine string `json:"engine,omitempty"`
	// Workers bounds the per-batch fan-out pool (0: the server's
	// BatchWorkers setting).
	Workers int `json:"workers,omitempty"`
	// Trace opts into a shared trace recorder across the whole batch.
	Trace bool `json:"trace,omitempty"`
}

// BatchDocJSON is one document's outcome within a /batch response.
type BatchDocJSON struct {
	ID    string `json:"id"`
	Kind  string `json:"kind,omitempty"`
	Count int    `json:"count,omitempty"`
	Value string `json:"value,omitempty"`
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /batch.
type BatchResponse struct {
	Engine  string         `json:"engine"`
	Docs    []BatchDocJSON `json:"docs"`
	Errors  int            `json:"errors"`
	Stats   StatsJSON      `json:"stats"`
	Timings TimingsJSON    `json:"timings"`
	Trace   string         `json:"trace,omitempty"`
}

// handleBatch serves POST /batch: one query fanned out across an ID list
// through Store.Query. The whole batch occupies one admission slot; its
// internal fan-out runs on the store's own bounded pool.
//
//xpathlint:deterministic
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	eng, ok := s.resolveEngine(w, req.Engine)
	if !ok {
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.BatchWorkers
	}
	var rec *xpath.TraceRecorder
	bud := s.newBudget()
	opts := xpath.BatchOptions{Engine: eng, Workers: workers, IDs: req.IDs, Budget: bud}
	if req.Trace {
		rec = xpath.NewTraceRecorder()
		opts.Tracer = rec
	}

	var (
		batch    *xpath.BatchResult
		batchErr error
		evalNs   int64
	)
	t0 := trace.Now()
	if !s.run(w, r, bud, func() {
		tEval := trace.Now()
		batch, batchErr = s.store.Query(req.Query, opts)
		evalNs = trace.Now() - tEval
		mEvalNs.Observe(evalNs)
	}) {
		return
	}
	if batchErr != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad query: %v", batchErr))
		return
	}

	mBatchSize.Observe(int64(len(batch.Docs)))
	st := batch.Stats()
	resp := BatchResponse{
		Engine: eng.String(),
		Docs:   make([]BatchDocJSON, len(batch.Docs)),
		Errors: batch.Errs(),
		Stats: StatsJSON{
			TableCells:        st.TableCells,
			ContextsEvaluated: st.ContextsEvaluated,
			AxisCalls:         st.AxisCalls,
		},
		Timings: TimingsJSON{EvalNs: evalNs, TotalNs: trace.Now() - t0},
	}
	for i, dr := range batch.Docs {
		dj := BatchDocJSON{ID: dr.ID}
		switch {
		case dr.Err != nil:
			dj.Error = dr.Err.Error()
		case dr.Result.IsNodeSet():
			dj.Kind = "node-set"
			dj.Count = len(dr.Result.Nodes())
		default:
			dj.Kind = "scalar"
			dj.Value = dr.Result.Text()
		}
		resp.Docs[i] = dj
	}
	if rec != nil {
		resp.Trace = xpath.RenderTrace(rec.Rows())
	}
	writeJSON(w, resp)
}

// handleExplain serves GET /explain?q=<xpath>[&id=<doc>]: the static
// OPTMINCONTEXT plan and compiled-VM disassembly, or — when id names a
// stored document — EXPLAIN ANALYZE, the disassembly annotated with the
// observed per-instruction behavior of a real traced run. Output is plain
// text for humans, exactly what the CLI's -explain/-analyze flags print.
//
//xpathlint:deterministic
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("q")
	if src == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	q, hit, err := xpath.CompileCachedTraced(src, nil)
	if hit {
		mCacheHits.Add(1)
	} else {
		mCacheMisses.Add(1)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad query: %v", err))
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, q.Explain())
		fmt.Fprint(w, q.ExplainPlan())
		return
	}
	doc, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no document with ID %q", id))
		return
	}
	var out string
	var evalErr error
	if !s.run(w, r, nil, func() {
		out, evalErr = q.ExplainAnalyze(doc)
	}) {
		return
	}
	if evalErr != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("explain analyze: %v", evalErr))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// ServerStatsJSON is the server block of a /stats response.
type ServerStatsJSON struct {
	Documents  int            `json:"documents"`
	QueueDepth int            `json:"queue_depth"`
	Draining   bool           `json:"draining"`
	UptimeNs   int64          `json:"uptime_ns"`
	Cache      CacheStatsJSON `json:"compile_cache"`
	Workers    int            `json:"workers"`
	QueueCap   int            `json:"queue_capacity"`
}

// CacheStatsJSON mirrors xpath.QueryCacheStats on the wire.
type CacheStatsJSON struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	ErrorHits int64 `json:"error_hits"`
	Evictions int64 `json:"evictions"`
	Compiles  int64 `json:"compiles"`
	Len       int   `json:"len"`
}

// StatsResponse is the body of GET /stats (JSON form).
type StatsResponse struct {
	Server  ServerStatsJSON `json:"server"`
	Metrics json.RawMessage `json:"metrics"`
}

// handleStats serves GET /stats: the process metrics registry plus the
// server's own state, as JSON by default or in the Prometheus text
// exposition format when ?format=prometheus (or an Accept header asking
// for text/plain) selects it.
//
//xpathlint:deterministic
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain") {
		format = "prometheus"
	}
	switch format {
	case "", "json":
		var buf strings.Builder
		if err := xpath.WriteMetricsJSON(&buf); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		cs := xpath.CompileCachedStats()
		writeJSON(w, StatsResponse{
			Server: ServerStatsJSON{
				Documents:  s.store.Len(),
				QueueDepth: s.pool.depth(),
				Draining:   s.draining.Load(),
				UptimeNs:   int64(time.Since(s.started)),
				Workers:    s.cfg.Workers,
				QueueCap:   s.cfg.QueueDepth,
				Cache: CacheStatsJSON{
					Hits:      cs.Hits,
					Misses:    cs.Misses,
					ErrorHits: cs.ErrorHits,
					Evictions: cs.Evictions,
					Compiles:  cs.Compiles,
					Len:       cs.Len,
				},
			},
			Metrics: json.RawMessage(buf.String()),
		})
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := xpath.WriteMetricsPrometheus(w); err != nil {
			mStatus[5].Add(1)
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (want json or prometheus)", format))
	}
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status    string `json:"status"`
	Documents int    `json:"documents"`
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once draining
// (load balancers stop routing here first during a rolling restart).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(HealthResponse{Status: "draining", Documents: s.store.Len()})
		return
	}
	writeJSON(w, HealthResponse{Status: "ok", Documents: s.store.Len()})
}
