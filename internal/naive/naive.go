// Package naive implements the exponential-time XPath evaluation strategy
// the paper's introduction measures in XALAN, XT and Internet Explorer 6:
// context-at-a-time recursive evaluation of location paths. A location step
// applied to a node evaluates the remainder of the path once per selected
// node, and intermediate results are never deduplicated, so documents in
// which steps fan out and refold (e.g. the b/parent::a doubling queries of
// [11]) cost time exponential in the query size.
//
// This engine is the documented substitution for the proprietary
// comparators (see DESIGN.md §3): it is semantically a correct XPath 1.0
// evaluator — results are deduplicated at the very end — and differs from
// the polynomial engines only in its evaluation strategy.
package naive

import (
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Engine is the naive evaluator. The zero value is ready to use.
type Engine struct{}

// New returns a naive engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (*Engine) Name() string { return "naive" }

// MaxWork bounds the number of node visits during location-path recursion
// before evaluation aborts; the exponential benchmarks rely on it so a
// mis-sized sweep degrades into an error instead of a hang. Zero means
// no bound.
var MaxWork int64 = 1 << 26

// ErrWorkLimit is returned when MaxWork is exceeded.
type ErrWorkLimit struct{ Visited int64 }

func (e *ErrWorkLimit) Error() string {
	return "naive: exponential evaluation exceeded the work limit"
}

// Evaluate implements engine.Engine.
func (*Engine) Evaluate(q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (values.Value, engine.Stats, error) {
	ev := &evaluator{doc: doc, bud: ctx.Budget}
	defer func() {
		// Translate the work-limit panic into an error; any other panic is
		// a bug and propagates.
		if r := recover(); r != nil {
			if _, ok := r.(*ErrWorkLimit); !ok {
				panic(r)
			}
		}
	}()
	v, err := ev.evalSafe(q.Root, ctx)
	return v, ev.st, err
}

type evaluator struct {
	doc  *xmltree.Document
	st   engine.Stats
	work int64
	bud  *budget.Budget
}

// evalSafe wraps eval, converting the work-limit panic (and a budget bail)
// into an error.
func (ev *evaluator) evalSafe(e syntax.Expr, ctx engine.Context) (v values.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if wl, ok := r.(*ErrWorkLimit); ok {
				err = wl
				return
			}
			if berr, ok := budget.FromPanic(r); ok {
				err = berr
				return
			}
			panic(r)
		}
	}()
	return ev.eval(e, ctx), nil
}

func (ev *evaluator) charge() {
	ev.work++
	if MaxWork > 0 && ev.work > MaxWork {
		panic(&ErrWorkLimit{Visited: ev.work})
	}
	if b := ev.bud; b != nil {
		if err := b.Step(1); err != nil {
			budget.Bail(err)
		}
	}
}

// eval evaluates any expression for a single context, recursively.
func (ev *evaluator) eval(e syntax.Expr, ctx engine.Context) values.Value {
	ev.st.ContextsEvaluated++
	ev.charge()
	switch e := e.(type) {
	case *syntax.NumberLit:
		return values.Number(e.Val)
	case *syntax.StringLit:
		return values.String(e.Val)
	case *syntax.Negate:
		return values.Number(-values.ToNumber(ev.eval(e.E, ctx)))
	case *syntax.Binary:
		return ev.evalBinary(e, ctx)
	case *syntax.Call:
		return ev.evalCall(e, ctx)
	case *syntax.Union:
		out := xmltree.NewSet(ev.doc)
		for _, p := range e.Paths {
			out.UnionWith(ev.eval(p, ctx).Set)
		}
		return values.NodeSet(out)
	case *syntax.Path:
		return values.NodeSet(ev.evalPath(e, ctx))
	}
	panic("naive: eval: unhandled expression")
}

func (ev *evaluator) evalBinary(e *syntax.Binary, ctx engine.Context) values.Value {
	switch {
	case e.Op == syntax.OpOr:
		if values.ToBool(ev.eval(e.L, ctx)) {
			return values.Boolean(true)
		}
		return values.Boolean(values.ToBool(ev.eval(e.R, ctx)))
	case e.Op == syntax.OpAnd:
		if !values.ToBool(ev.eval(e.L, ctx)) {
			return values.Boolean(false)
		}
		return values.Boolean(values.ToBool(ev.eval(e.R, ctx)))
	case e.Op.IsRelational():
		return values.Boolean(values.Compare(e.Op, ev.eval(e.L, ctx), ev.eval(e.R, ctx)))
	default:
		return values.Number(values.Arith(e.Op,
			values.ToNumber(ev.eval(e.L, ctx)), values.ToNumber(ev.eval(e.R, ctx))))
	}
}

func (ev *evaluator) evalCall(e *syntax.Call, ctx engine.Context) values.Value {
	switch e.Fn {
	case syntax.FnPosition:
		return values.Number(float64(ctx.Pos))
	case syntax.FnLast:
		return values.Number(float64(ctx.Size))
	}
	args := make([]values.Value, len(e.Args))
	for i, a := range e.Args {
		args[i] = ev.eval(a, ctx)
	}
	v, err := values.Call(e.Fn, args, values.CallEnv{Doc: ev.doc, Node: ctx.Node})
	if err != nil {
		panic(err) // unreachable: signatures were checked at compile time
	}
	return v
}

// evalPath evaluates a location path for one context. The recursion over
// remaining steps per selected node — with no deduplication of the
// intermediate node lists — is the exponential strategy under study.
func (ev *evaluator) evalPath(p *syntax.Path, ctx engine.Context) *xmltree.Set {
	var starts []*xmltree.Node
	switch {
	case p.Abs:
		starts = []*xmltree.Node{ev.doc.Root()}
	case p.Filter != nil:
		set := ev.eval(p.Filter, ctx).Set
		nodes := set.Nodes()
		for _, pred := range p.FPreds {
			nodes = ev.filterByPredicate(pred, nodes)
		}
		starts = nodes
	default:
		starts = []*xmltree.Node{ctx.Node}
	}
	out := xmltree.NewSet(ev.doc)
	for _, s := range starts {
		for _, n := range ev.evalSteps(p.Steps, s) {
			out.Add(n)
		}
	}
	return out
}

// evalSteps returns the nodes reached from x via the remaining steps, with
// duplicates preserved (the defining trait of the naive strategy). Each
// visit counts as a context evaluation: it is the unit of the exponential
// blowup the §1 experiments measure.
func (ev *evaluator) evalSteps(steps []*syntax.Step, x *xmltree.Node) []*xmltree.Node {
	ev.st.ContextsEvaluated++
	ev.charge()
	if len(steps) == 0 {
		return []*xmltree.Node{x}
	}
	step := steps[0]
	cands := engine.Candidates(step.Axis, step.Test, x, nil)
	for _, pred := range step.Preds {
		cands = ev.filterByPredicate(pred, cands)
	}
	var out []*xmltree.Node
	for _, y := range cands {
		out = append(out, ev.evalSteps(steps[1:], y)...)
	}
	return out
}

// filterByPredicate keeps the candidates for which the (normalized,
// boolean-typed) predicate holds, using positions within the candidate
// list, which is already in <doc,χ order.
func (ev *evaluator) filterByPredicate(pred syntax.Expr, cands []*xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	size := len(cands)
	for i, c := range cands {
		v := ev.eval(pred, engine.Context{Node: c, Pos: i + 1, Size: size})
		if values.ToBool(v) {
			out = append(out, c)
		}
	}
	return out
}
