package naive

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/xmltree"
)

func eval(t *testing.T, doc *xmltree.Document, src string) (values.Value, engine.Stats) {
	t.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, st, err := New().Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatalf("evaluate %q: %v", src, err)
	}
	return v, st
}

func doublingQuery(i int) string {
	var b strings.Builder
	b.WriteString("//b")
	for k := 0; k < i; k++ {
		b.WriteString("/parent::a/child::b")
	}
	return b.String()
}

// TestExponentialBlowup verifies the defining property of the naive
// strategy: on the two-leaf document of [11], each parent/child round trip
// doubles the work. This is the behavior §1 reports for XALAN, XT and IE6.
func TestExponentialBlowup(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b/><b/></a>`)
	var prev int64
	for i := 2; i <= 8; i++ {
		_, st := eval(t, doc, doublingQuery(i))
		if i > 2 {
			ratio := float64(st.ContextsEvaluated) / float64(prev)
			if ratio < 1.7 || ratio > 2.3 {
				t.Errorf("step %d: work ratio %.2f, want ≈2 (exponential doubling)", i, ratio)
			}
		}
		prev = st.ContextsEvaluated
	}
}

// TestResultsStayCorrect: despite duplicate-laden intermediate lists the
// final result is a proper set.
func TestResultsStayCorrect(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b/><b/></a>`)
	v, _ := eval(t, doc, doublingQuery(5))
	if v.Set.Len() != 2 {
		t.Errorf("result size %d, want 2", v.Set.Len())
	}
}

// TestWorkLimit: the exponential guard trips with an error, not a hang.
func TestWorkLimit(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b/><b/></a>`)
	q, err := syntax.Compile(doublingQuery(40))
	if err != nil {
		t.Fatal(err)
	}
	old := MaxWork
	MaxWork = 10000
	defer func() { MaxWork = old }()
	_, _, err = New().Evaluate(q, doc, engine.RootContext(doc))
	if _, ok := err.(*ErrWorkLimit); !ok {
		t.Fatalf("err = %v, want ErrWorkLimit", err)
	}
}

// TestScalarQueries: the naive engine handles non-path roots.
func TestScalarQueries(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b>1</b><b>2</b></a>`)
	v, _ := eval(t, doc, `count(//b) * 10 + sum(//b)`)
	if v.Num != 23 {
		t.Errorf("got %v, want 23", v.Num)
	}
	v2, _ := eval(t, doc, `concat("n=", string(count(//b)))`)
	if v2.Str != "n=2" {
		t.Errorf("got %q", v2.Str)
	}
}

// TestShortCircuit: and/or do not evaluate their right side when decided —
// observable through the work counter.
func TestShortCircuit(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b/><b/></a>`)
	_, stCheap := eval(t, doc, `false() and (`+doublingQuery(12)+` = 0)`)
	_, stFull := eval(t, doc, `true() and (`+doublingQuery(12)+` = 0)`)
	if stCheap.ContextsEvaluated*100 > stFull.ContextsEvaluated {
		t.Errorf("short-circuit did not skip work: cheap=%d full=%d",
			stCheap.ContextsEvaluated, stFull.ContextsEvaluated)
	}
}

// TestFilterAndUnionPaths: the naive engine's filter-head and union paths.
func TestFilterAndUnionPaths(t *testing.T) {
	doc := xmltree.MustParseString(`<a id="r"><b id="1">x</b><b id="2">y</b><c id="3">z</c></a>`)
	cases := map[string]int{
		`//b | //c`:        3,
		`(//b)[2]`:         1,
		`id("1 3")`:        2,
		`(//b | //c)[3]`:   1,
		`id("r")/child::b`: 2,
	}
	for src, want := range cases {
		v, _ := eval(t, doc, src)
		if v.Set.Len() != want {
			t.Errorf("%q: %d nodes, want %d", src, v.Set.Len(), want)
		}
	}
}

// TestRelativeFromContext: relative paths resolve from the context node.
func TestRelativeFromContext(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b id="b1"><c/></b><b id="b2"/></a>`)
	q, err := syntax.Compile(`count(child::c)`)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := New().Evaluate(q, doc, engine.Context{Node: doc.ByID("b1"), Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Num != 1 {
		t.Errorf("got %v", v.Num)
	}
}
