// Package trace is a hermetic stand-in for repro/internal/trace:
// tracerguard matches the Tracer interface by package-suffix + name.
package trace

type Event struct {
	Name string
	Dur  int64
}

type Tracer interface {
	Emit(Event)
	Begin(name string) int
	End(id int)
}
