// Package fmt is a hermetic stand-in for the standard fmt package, just
// large enough for the analyzer fixtures: noalloc flags any call into
// fmt, and maporder recognizes Fprin*/Print* as output writers.
package fmt

func Sprintf(format string, a ...any) string { return format }

func Errorf(format string, a ...any) error { return nil }

func Fprintf(w any, format string, a ...any) (int, error) { return 0, nil }

func Println(a ...any) (int, error) { return 0, nil }
