// Package budgetguard exercises the nil-budget contract: every Step, Err
// or Card call on a *budget.Budget needs a dominating nil check of that
// same expression.
package budgetguard

import "budget"

type machine struct {
	bud *budget.Budget
}

func unguarded(m *machine) error {
	return m.bud.Step(1) // want `call to m\.bud\.Step is not dominated by a nil check of m\.bud`
}

func guardedIf(m *machine) error {
	if m.bud != nil {
		return m.bud.Step(1)
	}
	return nil
}

func guardedShortVar(m *machine) error {
	if b := m.bud; b != nil {
		return b.Step(1)
	}
	return nil
}

func guardedEarlyReturn(m *machine) error {
	if m.bud == nil {
		return nil
	}
	return m.bud.Err()
}

// repairIdiom: `if x == nil { x = New(...) }` establishes non-nil for the
// rest of the block, including inside later closures.
func repairIdiom(bud *budget.Budget) error {
	if bud == nil {
		bud = budget.New(budget.Limits{})
	}
	f := func() error { return bud.Err() }
	return f()
}

// repairToNil assigns nil in the repair body: guarantees nothing.
func repairToNil(bud *budget.Budget) error {
	if bud == nil {
		bud = nil
	}
	return bud.Err() // want `call to bud\.Err is not dominated by a nil check of bud`
}

// wrongGuard checks a different budget: does not dominate.
func wrongGuard(m, other *machine) error {
	if other.bud != nil {
		return m.bud.Card(3) // want `not dominated by a nil check of m\.bud`
	}
	return nil
}

// coldPath: Cancel is not a hot-path method, no guard required.
func coldPath(m *machine) {
	m.bud.Cancel()
}
