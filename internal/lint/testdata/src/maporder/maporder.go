// Package maporder exercises the deterministic-output rule: map ranges
// that write output are flagged everywhere; in //xpathlint:deterministic
// functions only order-insensitive accumulation is allowed.
package maporder

import "fmt"

type sink struct{}

func (sink) WriteString(s string) (int, error) { return 0, nil }

func writesInLoop(w sink, m map[string]int) {
	for k := range m { // want `writesInLoop ranges over a map and writes output \(w\.WriteString\)`
		w.WriteString(k)
	}
}

func fprintInLoop(w any, m map[string]int) {
	for k, v := range m { // want `ranges over a map and writes output \(fmt\.Fprintf\)`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// collectThenSort is the allowed idiom: accumulate, sort, then write.
//
//xpathlint:deterministic
func collectThenSort(w sink, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		w.WriteString(k)
	}
}

// counting folds into a scalar: order-insensitive.
//
//xpathlint:deterministic
func counting(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

//xpathlint:deterministic
func sideEffects(m map[string]int) {
	for k := range m { // want `sideEffects is annotated //xpathlint:deterministic but ranges over a map doing more than order-insensitive accumulation`
		observe(k)
	}
}

// unannotated and no output in the loop: side effects are its business.
func unannotated(m map[string]int) {
	for k := range m {
		observe(k)
	}
}

func observe(s string) {}

func sortStrings(s []string) {}
