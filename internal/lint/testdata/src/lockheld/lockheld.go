// Package lockheld exercises the admission-layer rule: no blocking
// channel send and no pool submit while a sync mutex is held; the
// select-with-default try-send and handing off to a goroutine are the
// sanctioned shapes.
package lockheld

import "sync"

type pool struct{ ch chan func() }

func (p *pool) Submit(f func()) {}

type admission struct {
	mu    sync.RWMutex
	queue chan int
	p     *pool
}

func blockingSend(a *admission, n int) {
	a.mu.Lock()
	a.queue <- n // want `blockingSend sends on a channel while holding a\.mu`
	a.mu.Unlock()
}

func sendAfterUnlock(a *admission, n int) {
	a.mu.Lock()
	a.mu.Unlock()
	a.queue <- n
}

func deferredHold(a *admission, n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queue <- n // want `sends on a channel while holding a\.mu`
}

func condSend(a *admission, n int) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if n > 0 {
		a.queue <- n // want `sends on a channel while holding a\.mu`
	}
}

// trySend is the sanctioned non-blocking shape: a select with default
// sheds in O(1) instead of wedging submitters.
func trySend(a *admission, n int) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	select {
	case a.queue <- n:
		return true
	default:
		return false
	}
}

func submitHeld(a *admission, f func()) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.p.Submit(f) // want `submitHeld calls a\.p\.Submit while holding a\.mu`
}

func submitAfterUnlock(a *admission, f func()) {
	a.mu.Lock()
	a.mu.Unlock()
	a.p.Submit(f)
}

// goroutineFree: a new goroutine does not hold this goroutine's locks.
func goroutineFree(a *admission, n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	go func() {
		a.queue <- n
	}()
}
