// Package scratchown exercises the kernel ownership rule: borrowed
// *axes.Scratch and dst *xmltree.Set parameters must not outlive the
// call (no struct fields, globals, channels, returns), while using them
// locally — including wiring a call-local evaluator — stays allowed.
package scratchown

import (
	"axes"
	"xmltree"
)

type evaluator struct {
	sc  *axes.Scratch
	dst *xmltree.Set
}

var global *axes.Scratch

var scratchChan chan *axes.Scratch

func storeField(e *evaluator, sc *axes.Scratch) {
	e.sc = sc // want `stores its borrowed \*axes\.Scratch parameter sc into a struct field`
}

func storeGlobal(sc *axes.Scratch) {
	global = sc // want `stores its borrowed \*axes\.Scratch parameter sc into a package-level variable`
}

func sendIt(sc *axes.Scratch) {
	scratchChan <- sc // want `sends its borrowed \*axes\.Scratch parameter sc on a channel`
}

func returnIt(sc *axes.Scratch) *axes.Scratch {
	return sc // want `returns its borrowed \*axes\.Scratch parameter sc`
}

func storeDst(e *evaluator, dst *xmltree.Set) {
	e.dst = dst // want `stores its borrowed dst \*xmltree\.Set parameter dst into a struct field`
}

// localUse: a call-local evaluator dies with the call — same borrow.
func localUse(sc *axes.Scratch, dst *xmltree.Set) {
	local := evaluator{sc: sc, dst: dst}
	use(&local)
	tmp := sc
	tmp.Release()
	dst.Clear()
}

func use(e *evaluator) {}

// otherSet is not named dst: the naming convention is the contract.
func otherSet(e *evaluator, out *xmltree.Set) {
	e.dst = out
}

// methods on Scratch manage their own memory by design: receivers are
// exempt from the borrow rule.
type holder struct{ sc *axes.Scratch }

func (h *holder) adopt(sc *axes.Scratch) {
	h.sc = sc // want `stores its borrowed \*axes\.Scratch parameter sc into a struct field`
}
