// Package axes is a hermetic stand-in for repro/internal/axes:
// scratchown matches the Scratch type by package-suffix + name.
package axes

import "xmltree"

type Scratch struct{ seen *xmltree.Set }

func (sc *Scratch) Release() { sc.seen = nil }
