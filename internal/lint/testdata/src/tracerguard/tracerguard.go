// Package tracerguard exercises the nil-tracer contract: every method
// call on a trace.Tracer-typed expression needs a dominating nil check
// of that same expression.
package tracerguard

import "trace"

type machine struct {
	tr trace.Tracer
}

func unguarded(m *machine) {
	m.tr.Emit(trace.Event{}) // want `call to m\.tr\.Emit is not dominated by a nil check of m\.tr`
}

func guardedIf(m *machine) {
	if m.tr != nil {
		m.tr.Emit(trace.Event{})
	}
}

func guardedAnd(m *machine, deep bool) {
	if deep && m.tr != nil {
		m.tr.Emit(trace.Event{})
	}
}

func guardedEarlyReturn(m *machine) {
	if m.tr == nil {
		return
	}
	m.tr.Emit(trace.Event{})
}

func guardedElseBranch(m *machine) {
	if m.tr == nil {
		m.tr = nil
	} else {
		m.tr.Emit(trace.Event{})
	}
}

// wrongGuard checks a different receiver: does not dominate.
func wrongGuard(m, other *machine) {
	if other.tr != nil {
		m.tr.Emit(trace.Event{}) // want `not dominated by a nil check of m\.tr`
	}
}

// orGuard: an || chain guarantees nothing when true.
func orGuard(m *machine, loud bool) {
	if loud || m.tr != nil {
		m.tr.Emit(trace.Event{}) // want `not dominated by a nil check of m\.tr`
	}
}

// localCopy: the guard must cover the same expression that is called on.
func localCopy(m *machine) {
	tr := m.tr
	if tr != nil {
		tr.Begin("step")
	}
	tr.End(0) // want `call to tr\.End is not dominated by a nil check of tr`
}

// concrete recorder types are exempt: the contract is about the
// interface-typed field on the hot path.
type recorder struct{}

func (recorder) Emit(trace.Event) {}
func (recorder) Begin(string) int { return 0 }
func (recorder) End(int)          {}

func concreteOK(r recorder) {
	r.Emit(trace.Event{})
}
