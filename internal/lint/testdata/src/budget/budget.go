// Package budget is a hermetic stand-in for repro/internal/budget:
// budgetguard matches *budget.Budget by package-suffix + name.
package budget

type Limits struct {
	Steps int64
}

type Budget struct {
	fuel int64
}

func New(l Limits) *Budget { return &Budget{fuel: l.Steps} }

func (b *Budget) Step(n int64) error { return nil }
func (b *Budget) Err() error         { return nil }
func (b *Budget) Card(n int) error   { return nil }
func (b *Budget) Cancel()            {}
