// Package sync is a hermetic stand-in for the standard sync package:
// lockheld matches Mutex/RWMutex by package-suffix + type name, so these
// fakes exercise it without touching GOROOT.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
