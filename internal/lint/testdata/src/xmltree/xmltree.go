// Package xmltree is a hermetic stand-in for repro/internal/xmltree:
// scratchown matches the Set type by package-suffix + name.
package xmltree

type Node struct{ pre int }

type Set struct{ words []uint64 }

func (s *Set) Add(n *Node) {}
func (s *Set) Clear()      {}
