// Package noalloc exercises the noalloc analyzer: every syntactic
// allocator inside an annotated function is flagged, unannotated
// functions are never flagged, and the reslice-append (in-place filter)
// idiom stays allowed.
package noalloc

import "fmt"

type item struct {
	name string
	n    int
}

var sink any

//xpathlint:noalloc
func allocators(xs []int, s string) {
	m := make([]int, 8) // want `calls make`
	_ = m
	p := new(item) // want `calls new`
	_ = p
	q := &item{name: "x"} // want `takes the address of a composite literal`
	_ = q
	lit := []int{1, 2, 3} // want `allocates a slice literal`
	_ = lit
	table := map[string]int{} // want `allocates a map literal`
	_ = table
	xs = append(xs, 1)             // want `growing append`
	_ = fmt.Sprintf("%d", len(xs)) // want `calls fmt\.Sprintf`
	_ = s + s                      // want `concatenates strings at runtime`
	b := []byte(s)                 // want `converts between string and byte/rune slice`
	_ = b
}

//xpathlint:noalloc
func control(ch chan int) {
	f := func() {} // want `contains a function literal`
	_ = f
	go sendOne(ch) // want `starts a goroutine`
}

func sendOne(ch chan int) {}

//xpathlint:noalloc
func boxing(n int, p *item) {
	sink = n   // want `boxes a int into an interface`
	sink = p   // pointer-shaped: rides in the interface word, no allocation
	takeAny(n) // want `boxes a int into an interface argument`
	takeAny(p)
}

func takeAny(v any) {}

//xpathlint:noalloc
func boxReturn(n int) any {
	return n // want `boxes a int into an interface return value`
}

//xpathlint:noalloc
func coldPanic(n int) {
	if n < 0 {
		panic(n) // want `boxes a int into panic's interface argument`
	}
}

//xpathlint:noalloc
func appendAll(buf, src []int) []int {
	buf = append(buf, src...) // want `appends a whole slice`
	return buf
}

// filterInPlace is the steady-state-capacity idiom the kernels use:
// appending onto a buffer derived by reslicing does not grow.
//
//xpathlint:noalloc
func filterInPlace(xs []int) []int {
	kept := xs[:0]
	for _, x := range xs {
		if x > 0 {
			kept = append(kept, x)
		}
	}
	return kept
}

// constConcat folds at compile time: no runtime work, not flagged.
//
//xpathlint:noalloc
func constConcat() string {
	const pre = "xpath"
	return pre + "lint"
}

// unannotated functions may allocate freely.
func unannotated(s string) []string {
	return append(make([]string, 0, 2), s, s+s)
}
