// Package fsyncguard exercises the durable-install ordering rule: every
// Rename call must be lexically preceded by a Sync call in the same
// function, and pass-through wrappers named Rename are exempt.
package fsyncguard

type file struct{}

func (*file) Write(p []byte) (int, error) { return len(p), nil }
func (*file) Sync() error                 { return nil }
func (*file) Close() error                { return nil }

type filesystem struct{}

func (filesystem) Create(name string) (*file, error)    { return &file{}, nil }
func (filesystem) Rename(oldname, newname string) error { return nil }
func (filesystem) SyncDir(dir string) error             { return nil }

// installDurably is the sanctioned shape: write, sync, close, rename,
// sync the directory.
func installDurably(fs filesystem, tmp, path string, data []byte) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(path)
}

// installUnsynced never syncs: the rename can become durable before the
// data it names.
func installUnsynced(fs filesystem, tmp, path string, data []byte) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil { // Close is not Sync
		return err
	}
	return fs.Rename(tmp, path) // want `installUnsynced calls fs\.Rename without a preceding Sync`
}

// syncTooLate orders the calls backwards — the sync must dominate the
// rename, not trail it.
func syncTooLate(fs filesystem, f *file, tmp, path string) error {
	if err := fs.Rename(tmp, path); err != nil { // want `syncTooLate calls fs\.Rename without a preceding Sync`
		return err
	}
	return f.Sync()
}

// secondRenameCovered: one sync lexically dominates both renames.
func secondRenameCovered(fs filesystem, f *file, a, b, dst string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fs.Rename(a, dst); err != nil {
		return err
	}
	return fs.Rename(b, dst)
}

// inner wraps a filesystem; its Rename method is a pass-through and so
// exempt — the obligation sits with callers.
type inner struct{ fs filesystem }

func (r inner) Rename(oldname, newname string) error {
	return r.fs.Rename(oldname, newname)
}
