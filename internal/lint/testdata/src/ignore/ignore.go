// Package ignore exercises the //xpathlint:ignore escape hatch: a
// well-formed directive (analyzer list + mandatory reason) suppresses
// the named analyzers on its own line and the line below; malformed
// directives are themselves diagnostics, and suppress nothing.
package ignore

import "trace"

type machine struct{ tr trace.Tracer }

func suppressedSameLine(m *machine) {
	m.tr.Emit(trace.Event{}) //xpathlint:ignore tracerguard fixture proves same-line suppression
}

func suppressedLineAbove(m *machine) {
	//xpathlint:ignore tracerguard fixture proves line-above suppression
	m.tr.Emit(trace.Event{})
}

func notSuppressed(m *machine) {
	m.tr.Emit(trace.Event{}) // want `not dominated by a nil check of m\.tr`
}

// multiName: one directive, a comma list of analyzers, both suppressed.
//
//xpathlint:noalloc
func multiName(m *machine) {
	//xpathlint:ignore noalloc,tracerguard fixture proves the comma-list form
	m.tr.Emit(trace.Event{Name: "x" + suffix()})
}

func suffix() string { return "y" }

// wildcard: * suppresses every analyzer on the covered lines.
func wildcard(m *machine) {
	//xpathlint:ignore * fixture proves the wildcard form
	m.tr.Emit(trace.Event{})
}

// missingReason: the reason is mandatory, and the broken directive
// suppresses nothing — the underlying diagnostic still fires.
func missingReason(m *machine) {
	// want+ `ignore directive for "tracerguard" has no reason`
	//xpathlint:ignore tracerguard
	m.tr.Emit(trace.Event{}) // want `not dominated by a nil check of m\.tr`
}

// unknownName: naming an analyzer that does not exist is a diagnostic.
func unknownName(m *machine) {
	// want+ `ignore directive names unknown analyzer "nosuch"`
	//xpathlint:ignore nosuch there is no such analyzer
	m.tr.Emit(trace.Event{}) // want `not dominated by a nil check of m\.tr`
}

// bareDirective: an ignore naming no analyzer at all is a diagnostic.
func bareDirective(m *machine) {
	// want+ `ignore directive names no analyzer`
	//xpathlint:ignore
	m.tr.Emit(trace.Event{}) // want `not dominated by a nil check of m\.tr`
}
