package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc flags syntactic allocators inside functions annotated
// //xpathlint:noalloc: the axes kernels, the VM opcode loop and the
// other warm-eval paths whose zero-allocation property the runtime
// AllocsPerRun guards pin. The check is intra-procedural and syntactic —
// calls into helper functions are trusted (the helpers carry their own
// annotation or their own AllocsPerRun pin), which is exactly the
// granularity at which the runtime guards measure.
//
// Flagged: make and new; composite literals that allocate (&T{}, slice
// and map literals); growing append (append is allowed only onto a
// buffer derived by reslicing — the in-place filter idiom kept
// allocation-free by steady-state capacity); runtime string
// concatenation and string↔[]byte/[]rune conversions; calls into fmt
// and errors; function literals (closure environments allocate); go
// statements; and interface boxing of non-pointer-shaped values at call
// arguments, assignments and returns.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid syntactic allocators in //xpathlint:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasAnnotation(fn, "noalloc") {
				continue
			}
			checkNoAlloc(pass, fn)
		}
	}
}

func checkNoAlloc(pass *Pass, fn *ast.FuncDecl) {
	resliced := reslicedVars(pass, fn)
	var sig *types.Signature
	if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is annotated //xpathlint:noalloc but contains a function literal (closure environments allocate)", funcName(fn))
			return false // the closure body is the closure's problem
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is annotated //xpathlint:noalloc but starts a goroutine", funcName(fn))
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is annotated //xpathlint:noalloc but takes the address of a composite literal", funcName(fn))
				}
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, fn, n)
		case *ast.CallExpr:
			checkCallAlloc(pass, fn, n, resliced)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isRuntimeStringConcat(pass, n) {
				pass.Reportf(n.Pos(), "%s is annotated //xpathlint:noalloc but concatenates strings at runtime", funcName(fn))
			}
		case *ast.AssignStmt:
			checkAssignBoxing(pass, fn, n)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, sig, n)
		}
		return true
	})
}

// reslicedVars collects the variables that are (somewhere in fn)
// assigned a slice expression of another value — `kept := z[:0]`,
// `row := list[a:b]`. Appending to such a buffer is the in-place filter
// idiom: in steady state the capacity is already there, so the append
// does not grow.
func reslicedVars(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if _, isSlice := rhs.(*ast.SliceExpr); !isSlice {
				continue
			}
			if id, isIdent := assign.Lhs[i].(*ast.Ident); isIdent {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func checkCompositeLit(pass *Pass, fn *ast.FuncDecl, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Reportf(lit.Pos(), "%s is annotated //xpathlint:noalloc but allocates a %s literal", funcName(fn), kindName(t))
	}
	// A plain struct literal by value does not allocate; &T{} does.
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return "composite"
	}
}

func checkCallAlloc(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, resliced map[types.Object]bool) {
	// Conversions first: call.Fun may be any type expression ([]byte,
	// pkg.T, a bare ident), and a conversion has no signature to box into.
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		checkConversion(pass, fn, call)
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s is annotated //xpathlint:noalloc but calls make", funcName(fn))
			case "new":
				pass.Reportf(call.Pos(), "%s is annotated //xpathlint:noalloc but calls new", funcName(fn))
			case "append":
				checkAppend(pass, fn, call, resliced)
			case "panic":
				// panic's operand boxes, but a panic is already off the
				// measured path; the concat/boxing rules still see the
				// argument expression itself.
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				path := pkg.Imported().Path()
				if pkgPathIs(path, "fmt") || pkgPathIs(path, "errors") {
					pass.Reportf(call.Pos(), "%s is annotated //xpathlint:noalloc but calls %s.%s", funcName(fn), pkg.Imported().Name(), fun.Sel.Name)
					return
				}
			}
		}
	}
	checkArgBoxing(pass, fn, call)
}

func checkAppend(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, resliced map[types.Object]bool) {
	if call.Ellipsis != token.NoPos {
		pass.Reportf(call.Pos(), "%s is annotated //xpathlint:noalloc but appends a whole slice (growing append)", funcName(fn))
		return
	}
	if len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && resliced[obj] {
				return // in-place filter idiom: buffer derived by reslicing
			}
		}
	}
	pass.Reportf(call.Pos(), "%s is annotated //xpathlint:noalloc but contains a growing append (append is allowed only onto a buffer derived by reslicing)", funcName(fn))
}

// checkConversion flags string↔[]byte and string↔[]rune conversions,
// which copy.
func checkConversion(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	to := pass.TypeOf(call.Fun)
	from := pass.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
		pass.Reportf(call.Pos(), "%s is annotated //xpathlint:noalloc but converts between string and byte/rune slice", funcName(fn))
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isRuntimeStringConcat reports whether the + has string type and is not
// folded to a constant by the compiler.
func isRuntimeStringConcat(pass *Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant-folded: no runtime work
		return false
	}
	return isString(tv.Type)
}

// boxes reports whether assigning an expression of type from to a
// location of type to converts a concrete value into an interface in a
// way that can heap-allocate: the target is an interface, the source is
// a concrete type, and the source is not pointer-shaped (pointers,
// channels, maps and funcs ride in the interface word without copying
// the pointee).
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false
	}
	if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

func checkArgBoxing(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// Builtin panic boxes its operand; every other builtin is exempt.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() != "panic" {
				return
			}
			for _, arg := range call.Args {
				if boxes(types.NewInterfaceType(nil, nil), pass.TypeOf(arg)) {
					pass.Reportf(arg.Pos(), "%s is annotated //xpathlint:noalloc but boxes a %s into panic's interface argument", funcName(fn), pass.TypeOf(arg))
				}
			}
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pt, pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "%s is annotated //xpathlint:noalloc but boxes a %s into an interface argument", funcName(fn), pass.TypeOf(arg))
		}
	}
}

func checkAssignBoxing(pass *Pass, fn *ast.FuncDecl, assign *ast.AssignStmt) {
	if assign.Tok == token.DEFINE || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		if boxes(pass.TypeOf(assign.Lhs[i]), pass.TypeOf(assign.Rhs[i])) {
			pass.Reportf(assign.Rhs[i].Pos(), "%s is annotated //xpathlint:noalloc but boxes a %s into an interface", funcName(fn), pass.TypeOf(assign.Rhs[i]))
		}
	}
}

func checkReturnBoxing(pass *Pass, fn *ast.FuncDecl, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		if boxes(sig.Results().At(i).Type(), pass.TypeOf(res)) {
			pass.Reportf(res.Pos(), "%s is annotated //xpathlint:noalloc but boxes a %s into an interface return value", funcName(fn), pass.TypeOf(res))
		}
	}
}
