package lint

import (
	"go/ast"
	"go/token"
)

// BudgetGuard enforces the "nil budget is strictly zero-cost" contract,
// the Budget twin of tracerguard: every hot-path method call — Step, Err,
// Card — on an expression of type *budget.Budget must be dominated by a
// nil check of that same expression. Accepted guard shapes are the ones
// tracerguard accepts (`if x != nil { ... }`, `if x == nil { return }`)
// plus the repair idiom of the fan-out paths:
//
//	if x == nil {
//		x = budget.New(...)
//	}
//
// which establishes x != nil for everything after it in the block.
//
// Constructor-adjacent methods (Cancel, Bail and friends) are exempt:
// they run on cold paths where the caller provably holds a fresh budget.
// The budget package itself is exempt — the methods are the contract's
// implementation, not its consumers.
var BudgetGuard = &Analyzer{
	Name: "budgetguard",
	Doc:  "require a dominating nil check before Budget.Step/Err/Card calls",
	Run:  runBudgetGuard,
}

// budgetHotMethods are the per-iteration calls engines make on the hot
// path; only these need the nil-guard discipline.
var budgetHotMethods = map[string]bool{"Step": true, "Err": true, "Card": true}

func runBudgetGuard(pass *Pass) {
	if pkgPathIs(pass.Pkg.Path(), "budget") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBudgetGuard(pass, fn)
		}
	}
}

func checkBudgetGuard(pass *Pass, fn *ast.FuncDecl) {
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv := budgetReceiver(pass, call); recv != nil {
				if !nilGuarded(pass, stack, n, recv) && !nilRepaired(stack, n, recv) {
					pass.Reportf(call.Pos(), "call to %s.%s is not dominated by a nil check of %s (a nil Budget must stay zero-cost)",
						exprString(recv), calledName(call), exprString(recv))
				}
			}
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// budgetReceiver returns the receiver expression when call is one of the
// hot-path methods on a *budget.Budget, else nil.
func budgetReceiver(pass *Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !budgetHotMethods[sel.Sel.Name] {
		return nil
	}
	if !typeIs(pass.TypeOf(sel.X), "budget", "Budget") {
		return nil
	}
	return sel.X
}

// nilRepaired reports whether an earlier statement of an enclosing block
// is `if recv == nil { ...; recv = <non-nil> }` — the repair idiom that
// guarantees recv != nil for every later statement.
func nilRepaired(stack []ast.Node, node ast.Node, recv ast.Expr) bool {
	want := exprString(recv)
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		parent := stack[i]
		if p, ok := parent.(*ast.BlockStmt); ok {
			for _, stmt := range p.List {
				if containsNode(stmt, child) {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || ifs.Else != nil || !condChecksIsNil(ifs.Cond, want) {
					continue
				}
				if assignsNonNil(ifs.Body, want) {
					return true
				}
			}
		}
		child = parent
	}
	return false
}

// assignsNonNil reports whether the block's final statement assigns a
// non-nil expression to want.
func assignsNonNil(b *ast.BlockStmt, want string) bool {
	if len(b.List) == 0 {
		return false
	}
	as, ok := b.List[len(b.List)-1].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	return exprString(as.Lhs[0]) == want && !isNilIdent(as.Rhs[0])
}
