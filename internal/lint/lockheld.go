package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// LockHeld enforces the admission-layer rule of internal/server: while
// holding a sync.Mutex or sync.RWMutex, a function may not block on a
// channel send or hand work to a pool. A blocking send while holding
// the admission mutex would let one slow consumer wedge every
// submitter — the bounded-queue design exists precisely so overload
// sheds in O(1) at the front door.
//
// The analyzer tracks lock regions lexically inside one function:
// x.Lock()/x.RLock() opens a region for x, x.Unlock()/x.RUnlock()
// closes it, and defer x.Unlock() holds to the end of the function.
// While any region is open it flags channel sends (unless inside a
// select with a default clause — a non-blocking try-send) and calls to
// methods named submit/Submit.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "forbid blocking channel sends and pool submits while holding a mutex",
	Run:  runLockHeld,
}

func runLockHeld(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := make(map[string]bool)
			checkLockHeld(pass, fn, fn.Body.List, held)
		}
	}
}

// lockCall classifies a call as a mutex acquire (+name), release
// (-name), or neither, keyed by the printed receiver expression.
func lockCall(pass *Pass, call *ast.CallExpr) (recv string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil || (!typeIs(t, "sync", "Mutex") && !typeIs(t, "sync", "RWMutex")) {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprString(sel.X), true, false
	case "Unlock", "RUnlock":
		return exprString(sel.X), false, true
	}
	return "", false, false
}

// checkLockHeld walks stmts in order, maintaining the set of held lock
// receivers, and flags blocking operations while the set is non-empty.
// Nested blocks inherit (a copy of) the current state.
func checkLockHeld(pass *Pass, fn *ast.FuncDecl, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, acq, rel := lockCall(pass, call); acq {
					held[recv] = true
					continue
				} else if rel {
					delete(held, recv)
					continue
				}
			}
			flagBlockingIn(pass, fn, s, held, false)
		case *ast.DeferStmt:
			// defer x.Unlock() keeps the lock held to function end — the
			// held set simply stays as is. Other defers are inspected for
			// blocking work that would run while held... at Unlock time
			// the lock is being released, so skip.
			if _, _, rel := lockCall(pass, s.Call); rel {
				continue
			}
			flagBlockingIn(pass, fn, s, held, false)
		case *ast.SendStmt:
			flagBlockingIn(pass, fn, s, held, false)
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range s.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					// The comm op itself blocks only without a default.
					flagBlockingIn(pass, fn, cc.Comm, held, hasDefault)
				}
				checkLockHeld(pass, fn, cc.Body, copyHeld(held))
			}
		case *ast.BlockStmt:
			checkLockHeld(pass, fn, s.List, copyHeld(held))
		case *ast.IfStmt:
			flagBlockingIn(pass, fn, s.Cond, held, false)
			checkLockHeld(pass, fn, s.Body.List, copyHeld(held))
			if s.Else != nil {
				checkLockHeld(pass, fn, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			checkLockHeld(pass, fn, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			checkLockHeld(pass, fn, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockHeld(pass, fn, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockHeld(pass, fn, cc.Body, copyHeld(held))
				}
			}
		case *ast.GoStmt:
			// A new goroutine does not hold this goroutine's locks.
			checkLockHeld(pass, fn, bodyOf(s.Call), make(map[string]bool))
		default:
			flagBlockingIn(pass, fn, s, held, false)
		}
	}
}

// bodyOf returns the statements of a go'd function literal, if any.
func bodyOf(call *ast.CallExpr) []ast.Stmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body.List
	}
	return nil
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// flagBlockingIn reports channel sends and submit calls inside node
// while locks are held. nonBlockingSend exempts the send (it sits in a
// select with a default clause).
func flagBlockingIn(pass *Pass, fn *ast.FuncDecl, node ast.Node, held map[string]bool, nonBlockingSend bool) {
	if len(held) == 0 || node == nil {
		return
	}
	locks := heldNames(held)
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // not executed here
		case *ast.SendStmt:
			if !nonBlockingSend {
				pass.Reportf(n.Pos(), "%s sends on a channel while holding %s — a blocking send under the admission lock can wedge every submitter; use a select with default or release the lock first",
					funcName(fn), locks)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "submit" || sel.Sel.Name == "Submit" {
					pass.Reportf(n.Pos(), "%s calls %s.%s while holding %s — pool submission under the admission lock can deadlock the drain path",
						funcName(fn), exprString(sel.X), sel.Sel.Name, locks)
				}
			}
		}
		return true
	})
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
