package lint

import (
	"testing"
)

// TestSuiteCleanOverRepository runs every analyzer over the whole module
// — the same invocation CI gates on (go run ./cmd/xpathlint ./...) — and
// requires zero findings. A hot-path regression (an allocator slipping
// into a kernel, an unguarded tracer call) fails this test before it
// fails a benchmark.
func TestSuiteCleanOverRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repository lint in -short mode (shells out to go list -export)")
	}
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern ./... resolved incompletely", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("xpathlint finding: %s", d)
	}
}
