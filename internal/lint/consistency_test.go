package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoallocAnnotationsHaveAllocGuards pins the static annotations to
// the runtime guards: every function annotated //xpathlint:noalloc must
// be reachable, through the repository's call graph, from a closure
// measured by testing.AllocsPerRun. The analyzer proves "no syntactic
// allocator"; the AllocsPerRun pin proves "zero allocations observed";
// an annotation without a pin is a claim nobody measures.
//
// Reachability is name-based (a call to Add marks every function named
// Add), which is deliberately over-approximate: it can never rot into
// false failures when a method moves between types, and an annotated
// function that is not even name-reachable from any measured closure is
// unambiguously unguarded.
func TestNoallocAnnotationsHaveAllocGuards(t *testing.T) {
	fset := token.NewFileSet()
	var files []*ast.File
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." && name != ".." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}

	annotated := make(map[string][]token.Position) // bare name → decl sites
	calls := make(map[string]map[string]bool)      // bare name → bare callee names
	roots := make(map[string]bool)                 // names called inside AllocsPerRun closures

	calleeNames := func(n ast.Node, into map[string]bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				into[fun.Name] = true
			case *ast.SelectorExpr:
				into[fun.Sel.Name] = true
			}
			return true
		})
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if hasAnnotation(fn, "noalloc") {
				annotated[fn.Name.Name] = append(annotated[fn.Name.Name], fset.Position(fn.Pos()))
			}
			if fn.Body == nil {
				continue
			}
			set := calls[fn.Name.Name]
			if set == nil {
				set = make(map[string]bool)
				calls[fn.Name.Name] = set
			}
			calleeNames(fn.Body, set)
		}
		// Roots: the closures handed to testing.AllocsPerRun.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AllocsPerRun" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					calleeNames(lit.Body, roots)
				} else if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					// AllocsPerRun(n, f) where f is a named closure:
					// treat the name itself as called.
					roots[id.Name] = true
				}
			}
			return true
		})
	}

	if len(annotated) == 0 {
		t.Fatal("no //xpathlint:noalloc annotations found — the guard test is vacuous")
	}
	if len(roots) == 0 {
		t.Fatal("no testing.AllocsPerRun closures found — the guard test is vacuous")
	}

	reachable := make(map[string]bool)
	queue := make([]string, 0, len(roots))
	for name := range roots {
		reachable[name] = true
		queue = append(queue, name)
	}
	for len(queue) > 0 {
		name := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for callee := range calls[name] {
			if !reachable[callee] {
				reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}

	for name, sites := range annotated {
		if !reachable[name] {
			t.Errorf("%s is annotated //xpathlint:noalloc at %v but is not reachable from any testing.AllocsPerRun closure — add a runtime allocation guard or drop the annotation", name, sites)
		}
	}
}
