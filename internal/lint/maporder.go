package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder guards the deterministic-output rule (the invariant whose
// violation shipped the map-ordered EngineByName bug): functions that
// produce user-visible or wire-format output — server handlers, EXPLAIN
// rendering, the Prometheus/text exporters, batch-result assembly —
// are annotated //xpathlint:deterministic, and inside them a `range`
// over a map is allowed only as an order-insensitive accumulation
// (collecting keys for a later sort, counting, merging into another
// map). Any map range whose body does more than accumulate — calls with
// side effects, writes to output — is flagged.
//
// Independently of the annotation, a map range whose body directly
// writes output (fmt.Fprint*/Print*, Write*/print methods, Encode) is
// flagged in every function: iteration order would leak to a reader.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-sensitive map iteration in deterministic-output functions",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			deterministic := hasAnnotation(fn, "deterministic")
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if w := outputCallIn(pass, rng.Body); w != "" {
					pass.Reportf(rng.Pos(), "%s ranges over a map and writes output (%s) inside the loop — map iteration order reaches the reader; sort the keys first",
						funcName(fn), w)
					return true
				}
				if deterministic && !orderInsensitive(rng.Body) {
					pass.Reportf(rng.Pos(), "%s is annotated //xpathlint:deterministic but ranges over a map doing more than order-insensitive accumulation — sort the keys first",
						funcName(fn))
				}
				return true
			})
		}
	}
}

// outputCallIn returns a description of the first output-writing call
// inside the block, or "".
func outputCallIn(pass *Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if isWriterMethod(name) {
			found = exprString(sel.X) + "." + name
			return false
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkgPathIs(pkg.Imported().Path(), "fmt") {
				if len(name) >= 5 && (name[:5] == "Fprin" || name[:5] == "Print") {
					found = "fmt." + name
					return false
				}
			}
		}
		return true
	})
	return found
}

func isWriterMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return true
	}
	return false
}

// orderInsensitive reports whether every statement in the loop body is
// an accumulation whose end state does not depend on iteration order:
// assignments (indexed writes, appends, += and friends), inc/dec,
// declarations, and control flow around those. Any expression statement
// (a call for its side effects) disqualifies the loop.
func orderInsensitive(body *ast.BlockStmt) bool {
	ok := true
	var check func(stmts []ast.Stmt)
	check = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			if !ok {
				return
			}
			switch s := s.(type) {
			case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
				// accumulation
			case *ast.BranchStmt:
				// continue/break: flow control only
			case *ast.IfStmt:
				check([]ast.Stmt{s.Body})
				if s.Else != nil {
					check([]ast.Stmt{s.Else})
				}
			case *ast.BlockStmt:
				check(s.List)
			case *ast.ForStmt:
				check(s.Body.List)
			case *ast.RangeStmt:
				check(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, isCase := c.(*ast.CaseClause); isCase {
						check(cc.Body)
					}
				}
			default:
				ok = false
			}
		}
	}
	check(body.List)
	return ok
}
