package lint

import (
	"go/ast"
	"go/types"
)

// ScratchOwn enforces the kernel ownership rule of the README: a
// *axes.Scratch parameter, and a destination-set parameter named dst of
// type *xmltree.Set, are borrows for the duration of the call. The
// callee may use them (method calls, passing them on to other
// borrowers) but must not retain them: no storing into a struct field
// or package-level variable, no sending on a channel, no returning.
//
// Receivers are exempt — a method on Scratch manages the scratch's own
// memory by design (seenSet rebinding the mark set is the point).
// Initializing a function-local evaluator struct with the borrowed
// pointer is allowed: the evaluator dies with the call, which is the
// same borrow. What the rule catches is the leak into state that
// outlives the call.
var ScratchOwn = &Analyzer{
	Name: "scratchown",
	Doc:  "forbid retaining borrowed *axes.Scratch / dst *xmltree.Set parameters",
	Run:  runScratchOwn,
}

func runScratchOwn(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Type.Params == nil {
				continue
			}
			borrowed := borrowedParams(pass, fn)
			if len(borrowed) == 0 {
				continue
			}
			checkScratchOwn(pass, fn, borrowed)
		}
	}
}

// borrowedParams returns the parameter objects covered by the ownership
// rule: every *axes.Scratch parameter, and *xmltree.Set parameters
// named dst.
func borrowedParams(pass *Pass, fn *ast.FuncDecl) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			switch {
			case typeIs(t, "axes", "Scratch") && isPointer(t):
				out[obj] = "*axes.Scratch"
			case name.Name == "dst" && typeIs(t, "xmltree", "Set") && isPointer(t):
				out[obj] = "dst *xmltree.Set"
			}
		}
	}
	return out
}

func isPointer(t types.Type) bool {
	_, ok := t.(*types.Pointer)
	return ok
}

func checkScratchOwn(pass *Pass, fn *ast.FuncDecl, borrowed map[types.Object]string) {
	isBorrowed := func(e ast.Expr) (string, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return "", false
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return "", false
		}
		kind, ok := borrowed[obj]
		return kind, ok
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				kind, ok := isBorrowed(rhs)
				if !ok {
					continue
				}
				if i < len(n.Lhs) && escapesThroughLHS(pass, n.Lhs[i]) {
					pass.Reportf(rhs.Pos(), "%s stores its borrowed %s parameter %s into %s (ownership stays with the caller)",
						funcName(fn), kind, exprString(rhs), describeLHS(pass, n.Lhs[i]))
				}
			}
		case *ast.SendStmt:
			if kind, ok := isBorrowed(n.Value); ok {
				pass.Reportf(n.Value.Pos(), "%s sends its borrowed %s parameter %s on a channel (ownership stays with the caller)",
					funcName(fn), kind, exprString(n.Value))
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if kind, ok := isBorrowed(res); ok {
					pass.Reportf(res.Pos(), "%s returns its borrowed %s parameter %s (ownership stays with the caller)",
						funcName(fn), kind, exprString(res))
				}
			}
		}
		return true
	})
}

// escapesThroughLHS reports whether assigning to lhs stores the value
// where it outlives the call: a field selector, an index expression, a
// dereference, or a package-level variable. Plain locals are fine.
func escapesThroughLHS(pass *Pass, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(l)
		if v, ok := obj.(*types.Var); ok {
			// A package-level variable outlives every call.
			return v.Parent() == pass.Pkg.Scope()
		}
	}
	return false
}

func describeLHS(pass *Pass, lhs ast.Expr) string {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "an indexed element"
	case *ast.StarExpr:
		return "a dereferenced location"
	default:
		return "a package-level variable"
	}
}
