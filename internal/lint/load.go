package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// newInfo returns a types.Info with every map the analyzers read.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks the packages matching patterns,
// rooted at dir (the module root or any directory inside it). It shells
// out to `go list -export` for dependency resolution so the type
// information is exactly what the compiler built, without re-checking
// the world from source.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: unsafeAware{imp}}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// unsafeAware routes "unsafe" to the builtin package; the gc export
// importer handles everything else.
type unsafeAware struct{ types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.Importer.Import(path)
}

func goList(dir string, withDeps bool, patterns []string) ([]listedPkg, error) {
	args := []string{"list", "-e", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,Incomplete,Error"}
	if withDeps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// fixtureLoader type-checks hermetic GOPATH-style fixture trees
// (testdata/src/<import path>/*.go). Imports resolve inside the tree
// only — fixtures fake the few external packages they mention (fmt,
// sync, axes, trace, xmltree), which keeps analyzer tests independent
// of GOROOT and fast.
type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	cache map[string]*Package
}

// LoadFixture loads the fixture package at srcRoot/path (and,
// transitively, everything it imports from the same tree).
func LoadFixture(srcRoot, path string) (*Package, error) {
	l := &fixtureLoader{root: srcRoot, fset: token.NewFileSet(), cache: make(map[string]*Package)}
	return l.load(path)
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: fixture %q: no Go files", path)
	}
	info := newInfo()
	conf := types.Config{Importer: fixtureImporter{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %w", path, err)
	}
	p := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	l.cache[path] = p
	return p, nil
}

type fixtureImporter struct{ l *fixtureLoader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	p, err := fi.l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}
