package lint

// All returns every xpathlint analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{BudgetGuard, FsyncGuard, LockHeld, MapOrder, NoAlloc, ScratchOwn, TracerGuard}
}

// ByName returns the named analyzers; unknown names return nil, false.
func ByName(names []string) ([]*Analyzer, bool) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
