package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TracerGuard enforces the "nil tracer is strictly zero-cost" contract:
// every method call on an expression whose static type is the
// trace.Tracer interface must be dominated by a nil check of that same
// expression — either an enclosing `if x != nil { ... }` (possibly in
// an && chain) or an earlier `if x == nil { return }` in an enclosing
// block. Calls on concrete recorder types are exempt: the contract is
// about the interface-typed field an engine reads on its hot path.
//
// Dominance is computed on the AST, which matches how the guards are
// written in this codebase (and keeps the check dependency-free); a
// guard the analyzer cannot see can be acknowledged with
// //xpathlint:ignore tracerguard <reason>.
var TracerGuard = &Analyzer{
	Name: "tracerguard",
	Doc:  "require a dominating nil check before any trace.Tracer method call",
	Run:  runTracerGuard,
}

func runTracerGuard(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkTracerGuard(pass, fn)
		}
	}
}

func checkTracerGuard(pass *Pass, fn *ast.FuncDecl) {
	// Walk with an explicit parent stack so dominance can look upward.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv := tracerReceiver(pass, call); recv != nil {
				if !nilGuarded(pass, stack, n, recv) {
					pass.Reportf(call.Pos(), "call to %s.%s is not dominated by a nil check of %s (a nil Tracer must stay zero-cost)",
						exprString(recv), calledName(call), exprString(recv))
				}
			}
		}
		stack = append(stack, n)
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// tracerReceiver returns the receiver expression when call is a method
// call on a value of static type trace.Tracer (the interface), else nil.
func tracerReceiver(pass *Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !typeIs(t, "trace", "Tracer") {
		return nil
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return nil
	}
	return sel.X
}

func calledName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return exprString(call.Fun)
}

// nilGuarded reports whether node (a descendant of the nodes on stack,
// innermost last) is dominated by a nil check of recv.
func nilGuarded(pass *Pass, stack []ast.Node, node ast.Node, recv ast.Expr) bool {
	want := exprString(recv)
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		parent := stack[i]
		switch p := parent.(type) {
		case *ast.IfStmt:
			if p.Body == child && condChecksNotNil(p.Cond, want) {
				return true
			}
			if p.Else == child && condChecksIsNil(p.Cond, want) {
				return true
			}
		case *ast.BlockStmt:
			// An earlier `if recv == nil { return }` (or any terminating
			// body) in this block dominates everything after it.
			for _, stmt := range p.List {
				if containsNode(stmt, child) {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || ifs.Else != nil {
					continue
				}
				if condChecksIsNil(ifs.Cond, want) && terminates(ifs.Body) {
					return true
				}
			}
		}
		child = parent
	}
	return false
}

// condChecksNotNil reports whether cond guarantees want != nil when it
// evaluates true: a `want != nil` comparison, possibly inside an &&
// chain. || branches guarantee nothing.
func condChecksNotNil(cond ast.Expr, want string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return condChecksNotNil(c.X, want) || condChecksNotNil(c.Y, want)
		case token.NEQ:
			return comparesToNil(c, want)
		}
	}
	return false
}

// condChecksIsNil reports whether cond is exactly `want == nil` (the
// early-return guard shape; an || chain would weaken it).
func condChecksIsNil(cond ast.Expr, want string) bool {
	c, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	return ok && c.Op == token.EQL && comparesToNil(c, want)
}

func comparesToNil(c *ast.BinaryExpr, want string) bool {
	if isNilIdent(c.Y) && exprString(ast.Unparen(c.X)) == want {
		return true
	}
	return isNilIdent(c.X) && exprString(ast.Unparen(c.Y)) == want
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block always transfers control away
// (return, panic, continue, break, goto as its final statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// containsNode reports whether root's subtree contains target.
func containsNode(root, target ast.Node) bool {
	if root == target {
		return true
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n == target {
			found = true
			return false
		}
		return true
	})
	return found
}
