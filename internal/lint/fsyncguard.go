package lint

import (
	"go/ast"
	"go/token"
)

// FsyncGuard enforces the durable-install ordering of internal/store: a
// file may be renamed into place only after its contents were fsynced.
// Rename-before-sync is the classic crash-consistency bug — the
// directory entry can become durable while the data it names is still
// in the page cache, so a crash leaves a validly-named file full of
// garbage (or zeros). The snapshot installer writes temp → Sync → Close
// → Rename → SyncDir; this analyzer keeps that order machine-checked.
//
// The check is lexical, per function: every call to a method or
// function named Rename must be preceded, earlier in the same function
// body, by a call to a method named Sync. Functions themselves named
// Rename are exempt — they are the pass-through wrappers (osFS.Rename,
// recording filesystems) whose callers carry the obligation.
var FsyncGuard = &Analyzer{
	Name: "fsyncguard",
	Doc:  "require an fsync before every rename-into-place",
	Run:  runFsyncGuard,
}

func runFsyncGuard(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Name.Name == "Rename" {
				continue
			}
			checkFsyncGuard(pass, fn)
		}
	}
}

// checkFsyncGuard flags Rename calls in fn not lexically dominated by a
// Sync call. ast.Inspect visits in source order, so a single pass with
// a running last-Sync position suffices; the token.Pos comparison makes
// the "preceded by" relation explicit.
func checkFsyncGuard(pass *Pass, fn *ast.FuncDecl) {
	synced := token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Sync":
			synced = call.Pos()
		case "Rename":
			if synced == token.NoPos || synced >= call.Pos() {
				pass.Reportf(call.Pos(), "%s calls %s.Rename without a preceding Sync — renaming a file whose data is not yet durable can install a torn snapshot after a crash; fsync the temp file first",
					funcName(fn), exprString(sel.X))
			}
		}
		return true
	})
}
