// Package lint is xpathlint: a suite of static analyzers that
// machine-check the engine's hot-path invariants — the conventions that
// keep the paper's O(|D|·|Q|) guarantees true in this codebase but that
// used to live only in README prose and reviewer memory.
//
// The analyzers:
//
//   - noalloc: functions annotated //xpathlint:noalloc may not contain
//     syntactic allocators (make/new, allocating composite literals,
//     growing append, runtime string concatenation, fmt/errors calls,
//     closures, go statements, interface boxing). It is the compile-time
//     companion of the runtime testing.AllocsPerRun pins.
//   - scratchown: a *axes.Scratch or dst *xmltree.Set parameter is a
//     borrow — it must not be stored into a struct field, global, or
//     channel, and must not be returned (the kernel ownership rule of
//     the README).
//   - tracerguard: every method call on a trace.Tracer-typed expression
//     must be dominated by a nil check, preserving the "nil tracer is
//     strictly zero-cost" contract.
//   - budgetguard: every Step/Err/Card call on a *budget.Budget must be
//     dominated by a nil check, preserving the twin "nil budget is
//     strictly zero-cost" contract on every engine's hot path.
//   - maporder: functions annotated //xpathlint:deterministic (the ones
//     producing user-visible or wire-format output) may range over a map
//     only to accumulate order-insensitively (collect-then-sort,
//     counting); and in any function, a map range whose body writes
//     output directly is flagged.
//   - lockheld: no blocking channel send and no pool submit while
//     holding a sync.Mutex/RWMutex (the admission-layer rule of
//     internal/server).
//   - fsyncguard: every Rename call must be lexically preceded by a
//     Sync call in the same function (the crash-safe install order of
//     internal/store: write temp, fsync, close, rename, fsync dir).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is built on the standard
// library alone: this module has no dependencies and the build
// environment has no module proxy access, so the x/tools framework is
// unavailable. If the dependency ever lands, each Analyzer.Run ports
// one-to-one.
//
// Suppression: a comment
//
//	//xpathlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line, or alone on the line above it, suppresses those
// analyzers' diagnostics there. The reason is mandatory: a directive
// without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a package and reports
// findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// Run applies the analyzers to the packages, resolves ignore directives,
// and returns the surviving diagnostics sorted by position. Malformed
// and unused-analyzer-name directives are themselves reported under the
// analyzer name "xpathlint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			a.Run(pass)
		}
		ignores, bad := collectIgnores(pkg.Fset, pkg.Files, known)
		diags = append(diags, bad...)
		for _, d := range diags {
			if ignores.covers(d) {
				continue
			}
			all = append(all, d)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// ignoreSet maps file → line → analyzer names suppressed at that line.
// A directive suppresses its own line and the line below, so both the
// end-of-line and the line-above comment placements work.
type ignoreSet map[string]map[int]map[string]bool

func (ig ignoreSet) covers(d Diagnostic) bool {
	lines := ig[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[ln]; names != nil && (names[d.Analyzer] || names["*"]) {
			return true
		}
	}
	return false
}

const ignorePrefix = "//xpathlint:ignore"

// collectIgnores scans every comment for ignore directives. Directives
// missing a reason or naming no known analyzer are returned as
// diagnostics so the escape hatch cannot rot silently.
func collectIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) (ignoreSet, []Diagnostic) {
	ig := make(ignoreSet)
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "xpathlint",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //xpathlint:ignoreXYZ — not a directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "ignore directive names no analyzer (want //xpathlint:ignore <analyzer> <reason>)")
					continue
				}
				names := strings.Split(fields[0], ",")
				valid := true
				for _, n := range names {
					if n != "*" && !known[n] {
						report(c.Pos(), "ignore directive names unknown analyzer %q", n)
						valid = false
					}
				}
				if len(fields) < 2 {
					report(c.Pos(), "ignore directive for %q has no reason (the reason is mandatory)", fields[0])
					valid = false
				}
				if !valid {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ig[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ig[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return ig, bad
}

// hasAnnotation reports whether the function's doc comment carries the
// //xpathlint:<name> marker.
func hasAnnotation(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	want := "//xpathlint:" + name
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// namedType unwraps pointers and reports the named type's package path
// and name; ok is false for unnamed types.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// typeIs reports whether t (or the type it points to) is the named type
// pkg.name, where pkg matches the last path segment — so the check holds
// for both the real package ("repro/internal/axes") and the fixture fake
// ("axes").
func typeIs(t types.Type, pkg, name string) bool {
	if t == nil {
		return false
	}
	p, n, ok := namedType(t)
	if !ok || n != name {
		return false
	}
	return p == pkg || strings.HasSuffix(p, "/"+pkg)
}

// pkgPathIs reports whether path names the package pkg, by exact match
// or last segment (fixture fakes live at the bare path).
func pkgPathIs(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// exprString renders an expression compactly for matching and messages
// (types.ExprString is stable for the selector chains we compare).
func exprString(e ast.Expr) string { return types.ExprString(e) }

// funcName renders a FuncDecl's name including the receiver type, for
// messages: "(*machine).runBlock" or "ApplyInto".
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	return "(" + exprString(fn.Recv.List[0].Type) + ")." + fn.Name.Name
}
