package lint

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest conventions on the
// hermetic loader: each package under testdata/src carries
//
//	code // want `regexp`
//
// comments on the lines where diagnostics must appear (several per line
// allowed, one backquoted regexp each), and
//
//	// want+ `regexp`
//
// on the line above when the flagged line is itself a comment (the
// malformed-directive cases). Every diagnostic must match a want and
// every want must be matched.
var fixtureTests = []struct {
	path      string
	analyzers []*Analyzer
}{
	{"noalloc", []*Analyzer{NoAlloc}},
	{"budgetguard", []*Analyzer{BudgetGuard}},
	{"scratchown", []*Analyzer{ScratchOwn}},
	{"tracerguard", []*Analyzer{TracerGuard}},
	{"maporder", []*Analyzer{MapOrder}},
	{"lockheld", []*Analyzer{LockHeld}},
	{"fsyncguard", []*Analyzer{FsyncGuard}},
	{"ignore", All()}, // the escape hatch interacts with every analyzer
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureTests {
		t.Run(tc.path, func(t *testing.T) {
			pkg, err := LoadFixture("testdata/src", tc.path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := Run([]*Package{pkg}, tc.analyzers)
			checkWants(t, pkg, diags)
		})
	}
}

type wantExpect struct {
	re      *regexp.Regexp
	raw     string
	line    int
	matched bool
}

var backquoted = regexp.MustCompile("`([^`]+)`")

// collectWants parses the // want and // want+ comments of a fixture
// package into file → line → expectations.
func collectWants(t *testing.T, pkg *Package) map[string]map[int][]*wantExpect {
	t.Helper()
	wants := make(map[string]map[int][]*wantExpect)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var offset int
				switch {
				case strings.HasPrefix(text, "want+"):
					offset = 1
				case strings.HasPrefix(text, "want"):
					offset = 0
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				groups := backquoted.FindAllStringSubmatch(text, -1)
				if len(groups) == 0 {
					t.Errorf("%s:%d: want comment carries no backquoted regexp", pos.Filename, pos.Line)
					continue
				}
				lines := wants[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*wantExpect)
					wants[pos.Filename] = lines
				}
				for _, g := range groups {
					re, err := regexp.Compile(g[1])
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, g[1], err)
						continue
					}
					ln := pos.Line + offset
					lines[ln] = append(lines[ln], &wantExpect{re: re, raw: g[1], line: ln})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	total := 0
	for _, lines := range wants {
		for _, ws := range lines {
			total += len(ws)
		}
	}
	if total == 0 {
		t.Fatalf("fixture %s has no want comments — the harness would vacuously pass", pkg.Path)
	}
	for _, d := range diags {
		s := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.re.MatchString(s) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for file, lines := range wants {
		for _, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want `%s`", file, w.line, w.raw)
				}
			}
		}
	}
}

// TestFixtureCleanFunctionsStayClean pins the negative space: running
// every analyzer over every fixture must produce no diagnostic outside
// the want-annotated lines (checkWants already enforces this — the test
// here asserts the fixtures load under the full suite, catching, e.g., a
// fake package drifting from what an analyzer type-matches).
func TestFixtureCleanFunctionsStayClean(t *testing.T) {
	for _, tc := range fixtureTests {
		pkg, err := LoadFixture("testdata/src", tc.path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", tc.path, err)
		}
		for _, d := range Run([]*Package{pkg}, All()) {
			lines := collectWants(t, pkg)[d.Pos.Filename]
			found := false
			for _, w := range lines[d.Pos.Line] {
				if w.re.MatchString(d.Analyzer + ": " + d.Message) {
					found = true
				}
			}
			if !found {
				t.Errorf("full suite over %s: unexpected diagnostic %s", tc.path, d)
			}
		}
	}
}

// TestIgnoreDirectiveIsLoadBearing removes the ignore directives from
// the ignore fixture's source and re-runs the suite: the suppressed
// diagnostics must reappear. This is the "deleting the escape hatch
// fails the build" guarantee, tested end to end.
func TestIgnoreDirectiveIsLoadBearing(t *testing.T) {
	pkg, err := LoadFixture("testdata/src", "ignore")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	base := len(Run([]*Package{pkg}, All()))

	// Drop every comment group so no directive (and no want) survives;
	// diagnostics attached to suppressed lines must come back.
	for _, f := range pkg.Files {
		f.Comments = nil
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				n.Doc = nil
			case *ast.GenDecl:
				n.Doc = nil
			}
			return true
		})
	}
	stripped := Run([]*Package{pkg}, All())
	// Stripping comments also removes the //xpathlint:noalloc annotation
	// on multiName, so compare against the tracerguard count alone: the
	// fixture has 4 suppressed or annotation-dependent tracer calls that
	// must reappear (suppressedSameLine, suppressedLineAbove, multiName,
	// wildcard) on top of the 4 that were already flagged.
	var tracer int
	for _, d := range stripped {
		if d.Analyzer == "tracerguard" {
			tracer++
		}
	}
	if tracer != 8 {
		t.Errorf("stripped fixture: got %d tracerguard diagnostics, want 8 (suppression was not load-bearing); all: %v", tracer, stripped)
	}
	if base >= tracer {
		t.Errorf("suppression not observable: %d diagnostics with directives, %d without", base, tracer)
	}
}
