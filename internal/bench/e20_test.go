package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestE20Claims gates the deterministic half of E20: every corpus size
// produces a row, both recovery paths reproduce the full corpus, the WAL
// and snapshot both hit disk, and every timing is positive. The latency
// ratios (fsync vs buffered, replay vs snapshot load) are storage-stack-
// dependent and deliberately not gated.
func TestE20Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	cfg := Config{Reps: 1, CorpusSizes: []int{8, 16}}
	_, rows := E20(cfg)
	if len(rows) != 2 {
		t.Fatalf("E20 produced %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.RecoveredOK {
			t.Errorf("docs=%d: recovery did not reproduce the corpus", r.Docs)
		}
		if r.WALBytes <= 0 || r.SnapshotBytes <= 0 {
			t.Errorf("docs=%d: empty on-disk footprint (wal %d, snap %d)", r.Docs, r.WALBytes, r.SnapshotBytes)
		}
		for name, ns := range map[string]int64{
			"mem put": r.MemPutNs, "wal put": r.WALPutNs, "wal+fsync put": r.WALSyncPutNs,
			"replay open": r.ReplayOpenNs, "snapshot open": r.SnapshotOpenNs,
		} {
			if ns <= 0 {
				t.Errorf("docs=%d: non-positive %s timing %d", r.Docs, name, ns)
			}
		}
	}
}

// TestE20JSONRoundTrip pins the artifact shape of BENCH_E20.json.
func TestE20JSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	cfg := Config{Reps: 1, CorpusSizes: []int{8}}
	_, rows := E20(cfg)
	path := filepath.Join(t.TempDir(), "BENCH_E20.json")
	if err := WriteE20JSON(path, rows); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string   `json:"experiment"`
		Rows       []E20Row `json:"rows"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if doc.Experiment != "E20" || len(doc.Rows) != len(rows) {
		t.Fatalf("artifact = %q with %d rows, want E20 with %d", doc.Experiment, len(doc.Rows), len(rows))
	}
}
