package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/axes"
	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// E16 measures the flat structure-of-arrays topology and the zero-alloc
// fused axis kernels against the retained pointer-chasing reference
// implementation (axes.ApplyReference), in two tiers:
//
//   - axis-kernel microbenchmarks: one set-at-a-time axis application on a
//     workload document, before (reference: []*Node scans, fresh scratch
//     and output allocations per call) vs after (flat kernels into a reused
//     destination with a shared Scratch);
//   - end-to-end workload queries on the set-at-a-time engines (compiled,
//     corexpath, optmincontext), switched between the two kernel
//     implementations via axes.SetReferenceMode — everything else about
//     the engines is identical, so the delta isolates the kernels.
//
// ns/op is best-of-Reps over averaged inner loops; allocs/op comes from
// testing.AllocsPerRun. The rows are also emitted as BENCH_E16.json (see
// WriteE16JSON) so the perf trajectory of the kernels is machine-readable.
//
// Single-core container note: all numbers are single-threaded ns/op and
// allocs/op — the quantities that are meaningful on 1 CPU — not parallel
// wall-clock scaling.

// E16Row is one measurement of the E16 before/after comparison.
type E16Row struct {
	Name   string  `json:"name"`             // e.g. "kernel/descendant" or "e2e/compiled/<query>"
	Mode   string  `json:"mode"`             // "before" (reference) or "after" (flat kernels)
	NsOp   float64 `json:"ns_per_op"`        // single-threaded nanoseconds per operation
	Allocs float64 `json:"allocs_per_op"`    // allocations per operation
	Param  int     `json:"param,omitempty"`  // |D| of the document used
	Source string  `json:"source,omitempty"` // query text for end-to-end rows
}

// e16Queries are the end-to-end workloads: two descendant-heavy Core XPath
// queries (the acceptance workload class) and the position-heavy §2.4 query.
func e16Queries() []string {
	return []string{
		workload.CoreQueries()[0], // /descendant::b[child::d]/child::c
		workload.CoreQueries()[3], // //b[.//d]//c (descendant-heavy)
		workload.PositionHeavy(),
	}
}

// E16 runs the before/after comparison and returns the printable table plus
// the raw rows for JSON emission.
func E16(cfg Config) (*Table, []E16Row) {
	cfg = cfg.Defaults()
	size := 0
	for _, n := range cfg.Sizes {
		if n > size {
			size = n
		}
	}
	doc := workload.Scaled(size)
	var rows []E16Row

	// Tier 1: axis kernels. X = T(b), a mid-size label set, so every axis
	// has real work; id is excluded (it is string-value-, not topology-bound).
	x := doc.LabelSet("b").Clone()
	dst := xmltree.NewSet(doc)
	sc := axes.NewScratch()
	kernelAxes := []axes.Axis{axes.Child, axes.Parent, axes.Descendant,
		axes.Ancestor, axes.DescendantOrSelf, axes.Following, axes.Preceding,
		axes.FollowingSibling, axes.PrecedingSibling}
	for _, a := range kernelAxes {
		a := a
		before := func() { _ = axes.ApplyReference(a, x) }
		after := func() { axes.ApplyInto(dst, a, x, sc) }
		rows = append(rows,
			E16Row{Name: "kernel/" + a.String(), Mode: "before", Param: size,
				NsOp: measureNs(before, cfg.Reps), Allocs: testing.AllocsPerRun(30, before)},
			E16Row{Name: "kernel/" + a.String(), Mode: "after", Param: size,
				NsOp: measureNs(after, cfg.Reps), Allocs: testing.AllocsPerRun(30, after)})
	}

	// Tier 2: end-to-end queries on the set-at-a-time engines.
	compiled := plan.New()
	engines := []struct {
		name string
		eng  engine.Engine
	}{
		{"compiled", compiled},
		{"corexpath", corexpath.New()},
		{"optmincontext", core.NewOptMinContext()},
	}
	for qi, src := range e16Queries() {
		q := mustCompile(src)
		if _, err := compiled.Plan(q); err != nil {
			panic(fmt.Sprintf("bench: plan %q: %v", src, err))
		}
		for _, e := range engines {
			if _, _, err := e.eng.Evaluate(q, doc, engine.RootContext(doc)); err != nil {
				continue // outside the engine's fragment
			}
			run := func() {
				if _, _, err := e.eng.Evaluate(q, doc, engine.RootContext(doc)); err != nil {
					panic(err)
				}
			}
			name := fmt.Sprintf("e2e/q%d/%s", qi+1, e.name)
			axes.SetReferenceMode(true)
			rows = append(rows, E16Row{Name: name, Mode: "before", Param: size, Source: src,
				NsOp: measureNs(run, cfg.Reps), Allocs: testing.AllocsPerRun(20, run)})
			axes.SetReferenceMode(false)
			rows = append(rows, E16Row{Name: name, Mode: "after", Param: size, Source: src,
				NsOp: measureNs(run, cfg.Reps), Allocs: testing.AllocsPerRun(20, run)})
		}
	}

	return e16Table(rows, size), rows
}

// measureNs returns the best-of-reps average nanoseconds per call of f,
// with an inner loop sized so one sample is at least ~2ms of work.
func measureNs(f func(), reps int) float64 {
	f() // warm caches, pools and the plan cache
	inner := 1
	for {
		start := time.Now()
		for i := 0; i < inner; i++ {
			f()
		}
		if d := time.Since(start); d >= 2*time.Millisecond || inner >= 1<<16 {
			break
		}
		inner *= 4
	}
	best := float64(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < inner; i++ {
			f()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(inner)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// e16Table renders the rows in the repository's table style: one row per
// measurement name, columns before/after ns and allocs plus the speedup.
func e16Table(rows []E16Row, size int) *Table {
	type pair struct{ before, after *E16Row }
	byName := map[string]*pair{}
	var order []string
	for i := range rows {
		r := &rows[i]
		p, ok := byName[r.Name]
		if !ok {
			p = &pair{}
			byName[r.Name] = p
			order = append(order, r.Name)
		}
		if r.Mode == "before" {
			p.before = r
		} else {
			p.after = r
		}
	}
	cols := []string{"name", "before", "after", "speedup", "allocs before", "allocs after"}
	params := make([]int, len(order))
	for i := range params {
		params[i] = i
	}
	t := NewTable(
		"E16 — flat-topology axis kernels: before/after",
		fmt.Sprintf("|D| = %d; before = pointer-chasing reference kernels, after = flat SoA kernels (fused test, reused scratch); single-threaded ns/op", size),
		"#", "mixed", params, cols)
	for i, name := range order {
		p := byName[name]
		t.Set("name", i, name)
		t.Set("before", i, formatDuration(time.Duration(p.before.NsOp)))
		t.Set("after", i, formatDuration(time.Duration(p.after.NsOp)))
		t.Set("speedup", i, fmt.Sprintf("%.2fx", p.before.NsOp/p.after.NsOp))
		t.Set("allocs before", i, fmt.Sprintf("%.1f", p.before.Allocs))
		t.Set("allocs after", i, fmt.Sprintf("%.1f", p.after.Allocs))
	}
	return t
}

// WriteE16JSON emits the E16 rows as a JSON document for the perf
// trajectory (BENCH_E16.json at the repository root).
func WriteE16JSON(path string, rows []E16Row) error {
	doc := struct {
		Experiment string   `json:"experiment"`
		Unit       string   `json:"unit"`
		Note       string   `json:"note"`
		Rows       []E16Row `json:"rows"`
	}{
		Experiment: "E16",
		Unit:       "ns/op, allocs/op (single-threaded)",
		Note:       "before = axes.ApplyReference (pointer-chasing, per-call allocations); after = flat structure-of-arrays kernels with fused node tests and reused Scratch",
		Rows:       rows,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
