package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/axes"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestE16RowsAndJSON runs E16 on a tiny configuration and checks the row
// structure plus the JSON round trip — the shape the perf-trajectory
// tooling consumes.
func TestE16RowsAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	tab, rows := E16(Config{Reps: 1, Sizes: []int{30, 60}})
	if len(rows) == 0 || len(rows)%2 != 0 {
		t.Fatalf("E16 returned %d rows, want a nonzero even count (before/after pairs)", len(rows))
	}
	modes := map[string]int{}
	for _, r := range rows {
		if r.NsOp <= 0 {
			t.Errorf("row %s/%s: non-positive ns/op %v", r.Name, r.Mode, r.NsOp)
		}
		if r.Allocs < 0 {
			t.Errorf("row %s/%s: negative allocs", r.Name, r.Mode)
		}
		modes[r.Mode]++
	}
	if modes["before"] != modes["after"] {
		t.Errorf("unpaired rows: %d before vs %d after", modes["before"], modes["after"])
	}
	if len(tab.Cells["speedup"]) != len(rows)/2 {
		t.Errorf("table has %d rows, want %d", len(tab.Cells["speedup"]), len(rows)/2)
	}

	path := filepath.Join(t.TempDir(), "BENCH_E16.json")
	if err := WriteE16JSON(path, rows); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string   `json:"experiment"`
		Rows       []E16Row `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if doc.Experiment != "E16" || len(doc.Rows) != len(rows) {
		t.Fatalf("JSON content mismatch: %q, %d rows", doc.Experiment, len(doc.Rows))
	}
}

// The benchmarks below are the CI smoke surface (go test -run=NONE -bench=.
// -benchtime=1x ./internal/bench/...): they keep the benchmark code
// compiling and running on every push, and double as the manual entry point
// for kernel-level profiling.

func benchDocAndSet(b *testing.B) (*xmltree.Document, *xmltree.Set) {
	b.Helper()
	doc := workload.Scaled(400)
	return doc, doc.LabelSet("b").Clone()
}

// BenchmarkKernelDescendant measures the flat descendant kernel — the
// bit-range fast path the E16 acceptance criterion is built on.
func BenchmarkKernelDescendant(b *testing.B) {
	doc, x := benchDocAndSet(b)
	dst := xmltree.NewSet(doc)
	sc := axes.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axes.ApplyInto(dst, axes.Descendant, x, sc)
	}
}

// BenchmarkKernelDescendantReference measures the retained pointer-chasing
// implementation for comparison.
func BenchmarkKernelDescendantReference(b *testing.B) {
	_, x := benchDocAndSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = axes.ApplyReference(axes.Descendant, x)
	}
}

// BenchmarkKernelFusedStep measures the fused axis+test kernel (descendant
// image ANDed with a per-label bitset).
func BenchmarkKernelFusedStep(b *testing.B) {
	doc, x := benchDocAndSet(b)
	dst := xmltree.NewSet(doc)
	sc := axes.NewScratch()
	test := doc.LabelSet("c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axes.ApplyTest(dst, axes.Descendant, x, test, sc)
	}
}

// BenchmarkE16CompiledDescendantHeavy measures the warm compiled-plan
// end-to-end path on the descendant-heavy Core XPath workload query.
func BenchmarkE16CompiledDescendantHeavy(b *testing.B) {
	doc := workload.Scaled(400)
	q := mustCompile(workload.CoreQueries()[0])
	e := plan.New()
	ctx := engine.RootContext(doc)
	if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
