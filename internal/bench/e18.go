package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	xpath "repro"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

// E18 is the query-service load experiment: a synthetic client drives the
// HTTP front-end (internal/server) in-process through httptest — no
// sockets, no network jitter — across three phases:
//
//   - warm-cache: a small set of distinct queries repeated many times,
//     serially. This is the production steady state the source-keyed plan
//     cache (xpath.CompileCached) is built for; the phase reports its
//     measured hit rate (≥ 99% by construction: at most one miss per
//     distinct query) and the per-request allocation count.
//   - cold-cache: every request carries a previously unseen query text, so
//     every request pays a parse+compile. The contrast with warm-cache
//     prices the cache.
//   - overload: concurrent clients against one worker and a shallow queue.
//     Admission sheds the excess as 429s in O(1); the phase records the
//     accept/reject split and the queue-depth and queue-wait histograms.
//
// Runs in a single-core container report deterministic operation counts,
// status splits and cache-hit rates; nanosecond figures and the exact
// overload accept/reject split vary with the machine, so E18 makes no
// wall-clock speedup claims.

// E18Row is one phase of the E18 load experiment.
type E18Row struct {
	Phase string `json:"phase"`
	// Ops is the number of HTTP requests issued.
	Ops int `json:"ops"`
	// Distinct is the number of distinct query texts in the phase.
	Distinct int `json:"distinct_queries"`
	// Concurrency is the number of synthetic clients (1 = serial).
	Concurrency int `json:"concurrency"`
	// Workers/QueueDepth are the server's admission configuration.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Status counts responses by HTTP status code.
	Status map[string]int `json:"status"`
	// CacheHits counts responses that reported cache_hit=true;
	// CacheHitRate is CacheHits/Ops.
	CacheHits    int     `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// AllocsPerOp is allocations per request on the serial hot path
	// (0 for concurrent phases, where AllocsPerRun is meaningless).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// RequestNs/QueueWaitNs/QueueDepthSampled are the interval histograms
	// of the phase: whole-request latency, time spent queued, and the
	// queue depth sampled at each admission.
	RequestNs         metrics.HistogramSnapshot `json:"request_ns"`
	QueueWaitNs       metrics.HistogramSnapshot `json:"queue_wait_ns"`
	QueueDepthSampled metrics.HistogramSnapshot `json:"queue_depth_sampled"`
}

// e18Store builds the served corpus: the Figure 2 document plus two scaled
// documents, the same shapes the engine experiments use.
func e18Store() *xpath.Store {
	st := xpath.NewStore()
	for id, doc := range map[string]*xpath.Document{
		"fig2": xpath.WrapTree(workload.Figure2()),
		"s60":  xpath.WrapTree(workload.Scaled(60)),
		"s200": xpath.WrapTree(workload.Scaled(200)),
	} {
		if err := st.Add(id, doc); err != nil {
			panic(fmt.Sprintf("bench: e18 store: %v", err))
		}
	}
	return st
}

// e18WarmQueries is the repeated-query working set of the warm-cache phase.
func e18WarmQueries() []string {
	qs := append([]string{}, workload.CoreQueries()...)
	qs = append(qs, workload.WadlerQueries()...)
	return qs
}

// e18ColdSeq feeds the cold-cache phase's numeric literals. The compile
// cache is process-wide, so a process-unique sequence keeps every
// cold-phase query text genuinely unseen even when E18 runs twice in one
// process (RunAll followed by the smoke test).
var e18ColdSeq atomic.Int64

// e18Request issues one POST /query and returns the status code and
// whether the response reported a compile-cache hit.
func e18Request(h http.Handler, id, src string) (status int, cacheHit bool) {
	body, _ := json.Marshal(map[string]any{"id": id, "query": src})
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp struct {
		CacheHit bool `json:"cache_hit"`
	}
	json.Unmarshal(w.Body.Bytes(), &resp)
	return w.Code, resp.CacheHit
}

// e18Delta reduces a metrics interval to the three histograms a row keeps.
func e18Delta(before metrics.Snapshot) (req, wait, depth metrics.HistogramSnapshot) {
	d := metrics.Default().Snapshot().Sub(before)
	return d.Histograms["server.request_ns"],
		d.Histograms["server.queue_wait_ns"],
		d.Histograms["server.queue_depth_sampled"]
}

// E18 runs the three load phases and returns the printable table plus the
// raw rows for JSON emission.
func E18(cfg Config) (*Table, []E18Row) {
	cfg = cfg.Defaults()
	st := e18Store()
	ids := []string{"fig2", "s60", "s200"}
	var rows []E18Row

	// Phase 1 — warm-cache: the repeated-query steady state, serial.
	{
		srv := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 8})
		warm := e18WarmQueries()
		reps := 500 * cfg.Reps
		if reps < 1000 {
			reps = 1000
		}
		ops := reps * len(warm)
		status := map[string]int{}
		hits := 0
		before := metrics.Default().Snapshot()
		for i := 0; i < ops; i++ {
			code, hit := e18Request(srv, ids[i%len(ids)], warm[i%len(warm)])
			status[fmt.Sprint(code)]++
			if hit {
				hits++
			}
		}
		req, wait, depth := e18Delta(before)
		allocs := testing.AllocsPerRun(50, func() {
			e18Request(srv, "fig2", warm[0])
		})
		rows = append(rows, E18Row{
			Phase: "warm-cache", Ops: ops, Distinct: len(warm), Concurrency: 1,
			Workers: 2, QueueDepth: 8, Status: status,
			CacheHits: hits, CacheHitRate: float64(hits) / float64(ops),
			AllocsPerOp: allocs,
			RequestNs:   req, QueueWaitNs: wait, QueueDepthSampled: depth,
		})
	}

	// Phase 2 — cold-cache: every request is a previously unseen source
	// text (a fresh numeric literal), so every request compiles.
	{
		srv := server.New(server.Config{Store: st, Workers: 2, QueueDepth: 8})
		const ops = 512
		status := map[string]int{}
		hits := 0
		before := metrics.Default().Snapshot()
		for i := 0; i < ops; i++ {
			src := fmt.Sprintf(`/descendant::b[count(child::c) != %d]/child::c`, 1000+e18ColdSeq.Add(1))
			code, hit := e18Request(srv, ids[i%len(ids)], src)
			status[fmt.Sprint(code)]++
			if hit {
				hits++
			}
		}
		req, wait, depth := e18Delta(before)
		rows = append(rows, E18Row{
			Phase: "cold-cache", Ops: ops, Distinct: ops, Concurrency: 1,
			Workers: 2, QueueDepth: 8, Status: status,
			CacheHits: hits, CacheHitRate: float64(hits) / float64(ops),
			RequestNs: req, QueueWaitNs: wait, QueueDepthSampled: depth,
		})
	}

	// Phase 3 — overload: concurrent clients against one worker and a
	// shallow queue; admission sheds the excess as 429s.
	{
		srv := server.New(server.Config{
			Store: st, Workers: 1, QueueDepth: 2, Timeout: 30 * time.Second,
		})
		const clients, perClient = 8, 64
		src := workload.CoreQueries()[0]
		var mu sync.Mutex
		status := map[string]int{}
		hits := 0
		before := metrics.Default().Snapshot()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					code, hit := e18Request(srv, ids[(c+i)%len(ids)], src)
					mu.Lock()
					status[fmt.Sprint(code)]++
					if hit {
						hits++
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		req, wait, depth := e18Delta(before)
		rows = append(rows, E18Row{
			Phase: "overload", Ops: clients * perClient, Distinct: 1,
			Concurrency: clients, Workers: 1, QueueDepth: 2, Status: status,
			CacheHits: hits, CacheHitRate: float64(hits) / float64(clients*perClient),
			RequestNs: req, QueueWaitNs: wait, QueueDepthSampled: depth,
		})
	}

	return e18Table(rows), rows
}

// e18Table renders one line per phase: volume, status split, cache hit
// rate and the latency/queue-wait quantile summaries.
func e18Table(rows []E18Row) *Table {
	cols := []string{"phase", "ops", "2xx", "429", "hit rate", "allocs/op", "p50", "p99", "queue p99"}
	params := make([]int, len(rows))
	for i := range params {
		params[i] = i
	}
	t := NewTable(
		"E18 — query service under synthetic load",
		"in-process httptest clients; warm/cold price the source-keyed plan cache, overload prices bounded admission (429 = shed); single-core container, no wall-clock speedup claims",
		"#", "mixed", params, cols)
	for i, r := range rows {
		t.Set("phase", i, r.Phase)
		t.Set("ops", i, fmt.Sprint(r.Ops))
		t.Set("2xx", i, fmt.Sprint(r.Status["200"]))
		t.Set("429", i, fmt.Sprint(r.Status["429"]))
		t.Set("hit rate", i, fmt.Sprintf("%.2f%%", 100*r.CacheHitRate))
		t.Set("allocs/op", i, fmt.Sprintf("%.0f", r.AllocsPerOp))
		t.Set("p50", i, formatDuration(time.Duration(r.RequestNs.Quantile(0.50))))
		t.Set("p99", i, formatDuration(time.Duration(r.RequestNs.Quantile(0.99))))
		t.Set("queue p99", i, formatDuration(time.Duration(r.QueueWaitNs.Quantile(0.99))))
	}
	return t
}

// WriteE18JSON emits the E18 rows plus a process metrics-registry snapshot
// as a JSON document (BENCH_E18.json at the repository root).
func WriteE18JSON(path string, rows []E18Row) error {
	doc := struct {
		Experiment string           `json:"experiment"`
		Unit       string           `json:"unit"`
		Note       string           `json:"note"`
		Rows       []E18Row         `json:"rows"`
		Metrics    metrics.Snapshot `json:"metrics"`
	}{
		Experiment: "E18",
		Unit:       "ops, status counts, cache-hit rate, ns histograms",
		Note:       "synthetic in-process load against internal/server: warm-cache (repeated queries, serial), cold-cache (all-distinct queries), overload (8 clients vs 1 worker, depth-2 queue); deterministic ops/status-split/hit-rate, machine-dependent nanoseconds — no wall-clock speedup claims",
		Rows:       rows,
		Metrics:    metrics.Default().Snapshot(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
