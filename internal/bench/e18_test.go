package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestE18Smoke runs the load experiment at the smallest configuration and
// checks the acceptance claims: the warm-cache phase hits the source cache
// on ≥ 99% of requests and everything that should be a 200 is one.
func TestE18Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment in -short mode")
	}
	tbl, rows := E18(Config{Reps: 1, Sizes: []int{20}, SmallSizes: []int{10}})
	if tbl == nil || len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 phases", len(rows))
	}
	byPhase := map[string]E18Row{}
	for _, r := range rows {
		byPhase[r.Phase] = r
	}

	warm := byPhase["warm-cache"]
	if warm.CacheHitRate < 0.99 {
		t.Errorf("warm-cache hit rate = %.4f, want >= 0.99", warm.CacheHitRate)
	}
	if warm.Status["200"] != warm.Ops {
		t.Errorf("warm-cache status = %v, want all %d requests 200", warm.Status, warm.Ops)
	}
	if warm.RequestNs.Count != int64(warm.Ops) {
		t.Errorf("warm-cache latency histogram count = %d, want %d", warm.RequestNs.Count, warm.Ops)
	}

	cold := byPhase["cold-cache"]
	if cold.Status["200"] != cold.Ops {
		t.Errorf("cold-cache status = %v, want all %d requests 200", cold.Status, cold.Ops)
	}
	// Every cold query text is fresh, so at most rounding noise can hit.
	if cold.CacheHits != 0 {
		t.Errorf("cold-cache hits = %d, want 0", cold.CacheHits)
	}

	over := byPhase["overload"]
	if got := over.Status["200"] + over.Status["429"]; got != over.Ops {
		t.Errorf("overload status = %v, want 200s+429s == %d", over.Status, over.Ops)
	}
	if over.Status["200"] == 0 {
		t.Errorf("overload served nothing: %v", over.Status)
	}

	path := filepath.Join(t.TempDir(), "e18.json")
	if err := WriteE18JSON(path, rows); err != nil {
		t.Fatalf("WriteE18JSON: %v", err)
	}
	if b, err := os.ReadFile(path); err != nil || len(b) == 0 {
		t.Fatalf("read back: %v (%d bytes)", err, len(b))
	}
}
