package bench

// Claims tests: the space statements of EXPERIMENTS.md, asserted as test
// invariants. Table-cell counts are deterministic (no timing involved), so
// the fitted growth exponents are stable and can gate regressions: if an
// engine's table layout loses its complexity class, these tests fail.

import (
	"testing"

	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/topdown"
	"repro/internal/workload"
)

var (
	naiveEngine     = naive.New()
	coreXPathEngine = corexpath.New()
)

// cellExponent measures the growth exponent of table cells over |D| for an
// engine on a query, using nested documents.
func cellExponent(t *testing.T, eng engine.Engine, src string, sizes []int) float64 {
	t.Helper()
	q := mustCompile(src)
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(sizes))
	for i, n := range sizes {
		doc := workload.Nested(n)
		m := Run(eng, q, doc, 1)
		if m.Err != nil {
			t.Fatalf("%s on %q at |D|=%d: %v", eng.Name(), src, n, m.Err)
		}
		xs[i] = float64(n)
		ys[i] = float64(m.Stats.TableCells)
	}
	return FitExponent(xs, ys)
}

// TestClaimE7SpaceClasses: on the §2.4 query, the space classes separate as
// §3.1 predicts — E↑ cubic, E↓ superlinear, MINCONTEXT ≈ linear,
// OPTMINCONTEXT ≈ linear.
func TestClaimE7SpaceClasses(t *testing.T) {
	sizes := []int{20, 40, 60, 80}
	src := workload.PositionHeavy()

	up := cellExponent(t, bottomup.New(), src, sizes)
	if up < 2.7 {
		t.Errorf("E↑ cell exponent %.2f, expected ≥ 2.7 (≈|D|³ tables)", up)
	}
	down := cellExponent(t, topdown.New(), src, sizes)
	if down < 1.4 {
		t.Errorf("E↓ cell exponent %.2f, expected ≥ 1.4 (pair relations)", down)
	}
	minc := cellExponent(t, core.NewMinContext(), src, sizes)
	if minc > 1.3 {
		t.Errorf("MINCONTEXT cell exponent %.2f, expected ≈ 1 (Relev-reduced tables)", minc)
	}
	opt := cellExponent(t, core.NewOptMinContext(), src, sizes)
	if opt > 1.3 {
		t.Errorf("OPTMINCONTEXT cell exponent %.2f, expected ≈ 1", opt)
	}
	// And the ordering: each refinement is at least as compact.
	if !(up > down && down > minc) {
		t.Errorf("space-class ordering violated: E↑ %.2f, E↓ %.2f, MINCONTEXT %.2f", up, down, minc)
	}
}

// TestClaimTheorem10Space: on a Wadler query whose inner path relation is
// quadratic, OPTMINCONTEXT stays linear while MINCONTEXT goes quadratic.
func TestClaimTheorem10Space(t *testing.T) {
	sizes := []int{50, 100, 200, 400}
	src := `/descendant::*[preceding-sibling::*/preceding::* = 100]`

	opt := cellExponent(t, core.NewOptMinContext(), src, sizes)
	if opt > 1.2 {
		t.Errorf("OPTMINCONTEXT cell exponent %.2f, Theorem 10 promises ≈ 1", opt)
	}
	minc := cellExponent(t, core.NewMinContext(), src, sizes)
	if minc < 1.6 {
		t.Errorf("MINCONTEXT cell exponent %.2f, expected ≈ 2 on this query", minc)
	}
}

// TestClaimE12OutermostSets: the outermost-set optimization keeps the
// §2.4-style query linear in cells; the relation representation does not.
func TestClaimE12OutermostSets(t *testing.T) {
	sizes := []int{50, 100, 200, 400}
	src := `/descendant::*/descendant::*[self::* = 100]`

	set := cellExponent(t, core.NewMinContext(), src, sizes)
	rel := cellExponent(t, core.NewMinContextWith(core.Options{DisableOutermostSet: true}), src, sizes)
	if set > 1.2 {
		t.Errorf("set representation exponent %.2f, expected ≈ 1", set)
	}
	if rel <= set+0.15 {
		t.Errorf("relation representation exponent %.2f not clearly above set's %.2f", rel, set)
	}
}

// TestClaimNaiveExponential: the naive engine's work doubles per appended
// parent/child round trip (deterministic context counts, no timing).
func TestClaimNaiveExponential(t *testing.T) {
	doc := workload.Doubling()
	q8 := mustCompile(workload.DoublingQuery(8))
	q10 := mustCompile(workload.DoublingQuery(10))
	eng := newNaive()
	m8 := Run(eng, q8, doc, 1)
	m10 := Run(eng, q10, doc, 1)
	ratio := float64(m10.Stats.ContextsEvaluated) / float64(m8.Stats.ContextsEvaluated)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("work ratio over two steps = %.2f, want ≈ 4 (doubling per step)", ratio)
	}
}

// TestClaimCoreXPathLinearCells: the dedicated Core XPath engine's cells
// grow linearly.
func TestClaimCoreXPathLinearCells(t *testing.T) {
	sizes := []int{100, 200, 400, 800}
	src := `/descendant::b[child::d]/child::c`
	exp := cellExponent(t, newCoreXPath(), src, sizes)
	if exp > 1.15 {
		t.Errorf("Core XPath cell exponent %.2f, Theorem 13 promises 1", exp)
	}
}

// Constructors routed through tiny helpers so the imports stay tidy.
func newNaive() engine.Engine     { return naiveEngine }
func newCoreXPath() engine.Engine { return coreXPathEngine }
