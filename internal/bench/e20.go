package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// E20 prices the durability layer of internal/store: what writing ahead
// costs per mutation, and what recovery costs per corpus. Two sweeps per
// corpus size:
//
//   - mutation latency: mean Put time against an in-memory Store.Replace
//     baseline, once with the WAL armed but unsynced (SyncNever — the
//     encode+write price) and once with fsync-per-record (SyncAlways —
//     the full durable acknowledgement price). The fsync column is
//     storage-stack-dependent and reported, not gated.
//   - recovery time: Open on a directory holding only a WAL (pure replay,
//     one decode+apply per mutation) against Open after Compact (pure
//     snapshot load, zero records to replay), with the on-disk byte
//     footprint of each representation.

// E20Row is one corpus-size cell of the E20 sweep.
type E20Row struct {
	Docs    int `json:"docs"`
	DocSize int `json:"doc_size"`
	// Per-mutation mean latency: in-memory Replace baseline, WAL append
	// without fsync, WAL append with fsync-per-record.
	MemPutNs     int64 `json:"mem_put_ns"`
	WALPutNs     int64 `json:"wal_put_ns"`
	WALSyncPutNs int64 `json:"wal_sync_put_ns"`
	// Whole-directory Open time replaying the WAL vs loading the compacted
	// snapshot, and the byte footprint of each on disk.
	ReplayOpenNs   int64 `json:"replay_open_ns"`
	SnapshotOpenNs int64 `json:"snapshot_open_ns"`
	WALBytes       int64 `json:"wal_bytes"`
	SnapshotBytes  int64 `json:"snapshot_bytes"`
	// RecoveredOK reports that both recovery paths reproduced the full
	// corpus (document count checked after each Open).
	RecoveredOK bool `json:"recovered_ok"`
}

// e20IDs names the corpus documents; every leg writes the same IDs so
// the three stores hold identical logical state.
func e20IDs(docs int) []string {
	ids := make([]string, docs)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc-%05d", i)
	}
	return ids
}

// e20Corpus builds a fresh document instance per ID. Each leg gets its
// own instances — a store interns labels into the document in place, so
// one instance cannot be handed to two stores — generated outside the
// timed loop so the measurement is pure mutation cost.
func e20Corpus(docs, docSize int) []*xmltree.Document {
	out := make([]*xmltree.Document, docs)
	for i := range out {
		out[i] = workload.Scaled(docSize + (i%5)*10)
	}
	return out
}

// e20DiskFootprint sums the WAL segment and snapshot bytes under dir.
func e20DiskFootprint(dir string) (walBytes, snapBytes int64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(e.Name(), "wal."):
			walBytes += info.Size()
		case e.Name() == "corpus.snap":
			snapBytes += info.Size()
		}
	}
	return walBytes, snapBytes
}

// E20 runs the durability-pricing sweep and returns the printable table
// plus the raw rows for JSON emission.
func E20(cfg Config) (*Table, []E20Row) {
	cfg = cfg.Defaults()
	const docSize = 60
	var rows []E20Row
	for _, docs := range cfg.CorpusSizes {
		ids := e20IDs(docs)
		row := E20Row{Docs: docs, DocSize: docSize}

		// Baseline: in-memory Replace, no durability.
		mem := store.New()
		memDocs := e20Corpus(docs, docSize)
		start := time.Now()
		for i, id := range ids {
			if _, err := mem.Replace(id, memDocs[i]); err != nil {
				panic(err)
			}
		}
		row.MemPutNs = time.Since(start).Nanoseconds() / int64(docs)

		// WAL without fsync: the encode+write price per acknowledged Put.
		dirNoSync, err := os.MkdirTemp("", "e20-nosync-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dirNoSync)
		dsNoSync, err := store.Open(dirNoSync, store.DurableOptions{Sync: store.SyncNever})
		if err != nil {
			panic(err)
		}
		noSyncDocs := e20Corpus(docs, docSize)
		start = time.Now()
		for i, id := range ids {
			if _, err := dsNoSync.Put(id, noSyncDocs[i]); err != nil {
				panic(err)
			}
		}
		row.WALPutNs = time.Since(start).Nanoseconds() / int64(docs)
		if err := dsNoSync.Close(); err != nil {
			panic(err)
		}

		// WAL with fsync-per-record: the full durable acknowledgement.
		dirSync, err := os.MkdirTemp("", "e20-sync-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dirSync)
		dsSync, err := store.Open(dirSync, store.DurableOptions{Sync: store.SyncAlways})
		if err != nil {
			panic(err)
		}
		syncDocs := e20Corpus(docs, docSize)
		start = time.Now()
		for i, id := range ids {
			if _, err := dsSync.Put(id, syncDocs[i]); err != nil {
				panic(err)
			}
		}
		row.WALSyncPutNs = time.Since(start).Nanoseconds() / int64(docs)
		if err := dsSync.Close(); err != nil {
			panic(err)
		}

		// Recovery leg 1: reopen the unsynced directory — pure WAL replay.
		row.WALBytes, _ = e20DiskFootprint(dirNoSync)
		start = time.Now()
		replayed, err := store.Open(dirNoSync, store.DurableOptions{Sync: store.SyncNever})
		if err != nil {
			panic(err)
		}
		row.ReplayOpenNs = time.Since(start).Nanoseconds()
		replayOK := replayed.Store().Len() == docs

		// Recovery leg 2: compact, reopen — pure snapshot load.
		if _, err := replayed.Compact(); err != nil {
			panic(err)
		}
		if err := replayed.Close(); err != nil {
			panic(err)
		}
		_, row.SnapshotBytes = e20DiskFootprint(dirNoSync)
		start = time.Now()
		snapshotted, err := store.Open(dirNoSync, store.DurableOptions{Sync: store.SyncNever})
		if err != nil {
			panic(err)
		}
		row.SnapshotOpenNs = time.Since(start).Nanoseconds()
		row.RecoveredOK = replayOK && snapshotted.Store().Len() == docs
		if err := snapshotted.Close(); err != nil {
			panic(err)
		}

		rows = append(rows, row)
	}
	return e20Table(rows), rows
}

// e20Table renders one line per corpus size.
func e20Table(rows []E20Row) *Table {
	cols := []string{"docs", "mem put", "wal put", "wal+fsync put", "replay open", "snapshot open", "wal bytes", "snap bytes", "recovered"}
	params := make([]int, len(rows))
	for i := range params {
		params[i] = i
	}
	t := NewTable(
		"E20 — durability pricing: WAL overhead and recovery time",
		"per-mutation mean Put latency (in-memory baseline / WAL append / WAL append + fsync-per-record) and whole-directory Open time (WAL replay vs compacted-snapshot load); fsync nanoseconds are storage-stack-dependent — not gated",
		"#", "mixed", params, cols)
	for i, r := range rows {
		t.Set("docs", i, fmt.Sprint(r.Docs))
		t.Set("mem put", i, formatDuration(time.Duration(r.MemPutNs)))
		t.Set("wal put", i, formatDuration(time.Duration(r.WALPutNs)))
		t.Set("wal+fsync put", i, formatDuration(time.Duration(r.WALSyncPutNs)))
		t.Set("replay open", i, formatDuration(time.Duration(r.ReplayOpenNs)))
		t.Set("snapshot open", i, formatDuration(time.Duration(r.SnapshotOpenNs)))
		t.Set("wal bytes", i, fmt.Sprint(r.WALBytes))
		t.Set("snap bytes", i, fmt.Sprint(r.SnapshotBytes))
		if r.RecoveredOK {
			t.Set("recovered", i, "ok")
		} else {
			t.Set("recovered", i, "FAIL")
		}
	}
	return t
}

// WriteE20JSON emits the E20 rows plus a process metrics-registry snapshot
// as a JSON document (BENCH_E20.json at the repository root).
func WriteE20JSON(path string, rows []E20Row) error {
	doc := struct {
		Experiment string           `json:"experiment"`
		Unit       string           `json:"unit"`
		Note       string           `json:"note"`
		Rows       []E20Row         `json:"rows"`
		Metrics    metrics.Snapshot `json:"metrics"`
	}{
		Experiment: "E20",
		Unit:       "ns (mean per-mutation Put latency; whole-directory Open time)",
		Note:       "durability pricing: WAL append vs in-memory Replace baseline under SyncNever and SyncAlways, and recovery time replaying the WAL vs loading the compacted snapshot, with on-disk byte footprints; fsync latency is storage-stack-dependent — no wall-clock claims gated",
		Rows:       rows,
		Metrics:    metrics.Default().Snapshot(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
