package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestE19Claims gates the deterministic half of E19: every engine in the
// sweep produces rows, every row's tiny-fuel run classified as
// ErrBudgetExceeded, and the measured times are sane. The overhead ratio
// and the cancellation latency are machine-dependent and deliberately not
// gated.
func TestE19Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	cfg := Config{Reps: 1, Sizes: []int{20, 40}}
	_, rows := E19(cfg)
	if len(rows) == 0 {
		t.Fatal("E19 produced no rows")
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Engine] = true
		if !r.TripOK {
			t.Errorf("%s |D|=%d: tiny fuel did not classify as ErrBudgetExceeded", r.Engine, r.Size)
		}
		if r.NilBudgetNs <= 0 || r.LiveBudgetNs <= 0 {
			t.Errorf("%s |D|=%d: non-positive timing (%d, %d)", r.Engine, r.Size, r.NilBudgetNs, r.LiveBudgetNs)
		}
	}
	for _, e := range e19Engines() {
		if !seen[e.name] {
			t.Errorf("no rows for engine %s", e.name)
		}
	}
}

// TestE19JSONRoundTrip pins the artifact shape of BENCH_E19.json.
func TestE19JSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	cfg := Config{Reps: 1, Sizes: []int{20}}
	_, rows := E19(cfg)
	path := filepath.Join(t.TempDir(), "BENCH_E19.json")
	if err := WriteE19JSON(path, rows); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string   `json:"experiment"`
		Rows       []E19Row `json:"rows"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if doc.Experiment != "E19" || len(doc.Rows) != len(rows) {
		t.Fatalf("artifact = %q with %d rows, want E19 with %d", doc.Experiment, len(doc.Rows), len(rows))
	}
}
