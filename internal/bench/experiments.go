package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/plan"
	"repro/internal/store"
	"repro/internal/syntax"
	"repro/internal/topdown"
	"repro/internal/values"
	"repro/internal/workload"
)

// Config scales the experiment sweeps. Zero fields take defaults sized for
// a laptop run of a few minutes total.
type Config struct {
	Reps        int   // repetitions per timing cell (best-of)
	Sizes       []int // |D| sweep for the scaling experiments
	SmallSizes  []int // |D| sweep for the E↑/E↓ experiments (|D|³+ growth)
	MaxDouble   int   // last i of the E5 doubling-query family
	Workers     []int // worker sweep for the E15 batch/parallel experiment
	CorpusSizes []int // corpus document counts for E15
}

// Defaults fills in unset fields.
func (c Config) Defaults() Config {
	if c.Reps == 0 {
		c.Reps = 3
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{50, 100, 200, 400, 800}
	}
	if len(c.SmallSizes) == 0 {
		c.SmallSizes = []int{20, 40, 60, 80}
	}
	if c.MaxDouble == 0 {
		c.MaxDouble = 20
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if len(c.CorpusSizes) == 0 {
		c.CorpusSizes = []int{100, 250}
	}
	return c
}

func mustCompile(src string) *syntax.Query {
	q, err := syntax.Compile(src)
	if err != nil {
		panic(fmt.Sprintf("bench: compile %q: %v", src, err))
	}
	return q
}

// E5 reproduces the §1 claim carried over from [11]: contemporary engines
// (represented by the naive strategy, see DESIGN.md §3) take time
// exponential in the query size, while every polynomial engine stays flat.
func E5(cfg Config) *Table {
	cfg = cfg.Defaults()
	doc := workload.Doubling()
	cols := []string{"naive", "topdown", "mincontext", "optmincontext"}
	params := []int{}
	for i := 2; i <= cfg.MaxDouble; i += 2 {
		params = append(params, i)
	}
	t := NewTable(
		"E5 — exponential query-size blowup (§1, [11] experiments)",
		fmt.Sprintf("document: <a><b/><b/></a> (|D|=%d); query_i = //b(/parent::a/child::b)^i; metric: wall time", doc.Size()),
		"i", "time", params, cols)
	naiveTimes := make([]float64, 0, len(params))
	engines := map[string]engine.Engine{
		"naive": naive.New(), "topdown": topdown.New(),
		"mincontext": core.NewMinContext(), "optmincontext": core.NewOptMinContext(),
	}
	for row, i := range params {
		q := mustCompile(workload.DoublingQuery(i))
		for _, col := range cols {
			m := Run(engines[col], q, doc, cfg.Reps)
			if m.Err != nil {
				t.Set(col, row, "limit")
				continue
			}
			t.SetDuration(col, row, m.Time)
			if col == "naive" {
				naiveTimes = append(naiveTimes, float64(m.Time))
			}
		}
	}
	// Parameters advance by two steps per row; report the per-step factor.
	t.FitNote["naive"] = fmt.Sprintf("×%.2f/step", math.Sqrt(DoublingRatio(naiveTimes)))
	return t
}

// E6 verifies the Theorem 7 time improvement: on the paper's running query
// (position()/last() predicate), MINCONTEXT scales at least one |D|-factor
// better than the E↓ baseline.
func E6(cfg Config) *Table {
	cfg = cfg.Defaults()
	q := mustCompile(workload.PositionHeavy())
	cols := []string{"topdown", "mincontext", "optmincontext"}
	t := NewTable(
		"E6 — Theorem 7 time scaling on the §2.4 query",
		"query: "+workload.PositionHeavy()+"; nested documents (deep descendant relations); metric: wall time",
		"|D|", "time", cfg.Sizes, cols)
	engines := map[string]engine.Engine{
		"topdown": topdown.New(), "mincontext": core.NewMinContext(),
		"optmincontext": core.NewOptMinContext(),
	}
	times := map[string][]float64{}
	for row, n := range cfg.Sizes {
		doc := workload.Nested(n)
		for _, col := range cols {
			m := Run(engines[col], q, doc, cfg.Reps)
			t.SetDuration(col, row, m.Time)
			times[col] = append(times[col], float64(m.Time))
		}
	}
	for _, col := range cols {
		t.Fit(col, times[col])
	}
	return t
}

// E7 verifies the Theorem 7 space improvement, measured in context-value
// table cells: E↑ grows ≈|D|³ on scalar tables, E↓ with the pair relation,
// MINCONTEXT stays ≈|D|·|Q| plus the outermost sets.
func E7(cfg Config) *Table {
	cfg = cfg.Defaults()
	q := mustCompile(workload.PositionHeavy())
	cols := []string{"bottomup", "topdown", "mincontext", "optmincontext"}
	t := NewTable(
		"E7 — Theorem 7 space (context-value table cells)",
		"query: "+workload.PositionHeavy()+"; nested documents; metric: table cells written",
		"|D|", "cells", cfg.SmallSizes, cols)
	engines := map[string]engine.Engine{
		"bottomup": bottomup.New(), "topdown": topdown.New(),
		"mincontext": core.NewMinContext(), "optmincontext": core.NewOptMinContext(),
	}
	cells := map[string][]float64{}
	for row, n := range cfg.SmallSizes {
		doc := workload.Nested(n)
		for _, col := range cols {
			m := Run(engines[col], q, doc, 1)
			if m.Err != nil {
				t.Set(col, row, "limit")
				cells[col] = append(cells[col], 0)
				continue
			}
			t.SetCount(col, row, m.Stats.TableCells)
			cells[col] = append(cells[col], float64(m.Stats.TableCells))
		}
	}
	for _, col := range cols {
		t.Fit(col, cells[col])
	}
	return t
}

// E8 verifies Theorem 10: Extended Wadler queries run in quadratic time and
// linear table space under OPTMINCONTEXT; plain MINCONTEXT pays more.
func E8(cfg Config) []*Table {
	cfg = cfg.Defaults()
	var out []*Table
	for _, src := range workload.WadlerQueries() {
		q := mustCompile(src)
		cols := []string{"optmincontext(time)", "mincontext(time)",
			"optmincontext(cells)", "mincontext(cells)"}
		t := NewTable(
			"E8 — Theorem 10 (Extended Wadler Fragment)",
			"query: "+src, "|D|", "mixed", cfg.Sizes, cols)
		opt, min := core.NewOptMinContext(), core.NewMinContext()
		optCells, minCells := []float64{}, []float64{}
		optTime := []float64{}
		for row, n := range cfg.Sizes {
			doc := workload.Scaled(n)
			mo := Run(opt, q, doc, cfg.Reps)
			mm := Run(min, q, doc, cfg.Reps)
			t.SetDuration("optmincontext(time)", row, mo.Time)
			t.SetDuration("mincontext(time)", row, mm.Time)
			t.SetCount("optmincontext(cells)", row, mo.Stats.TableCells)
			t.SetCount("mincontext(cells)", row, mm.Stats.TableCells)
			optCells = append(optCells, float64(mo.Stats.TableCells))
			minCells = append(minCells, float64(mm.Stats.TableCells))
			optTime = append(optTime, float64(mo.Time))
		}
		t.Fit("optmincontext(cells)", optCells)
		t.Fit("mincontext(cells)", minCells)
		t.Fit("optmincontext(time)", optTime)
		out = append(out, t)
	}
	return out
}

// E9 verifies Theorem 13: Core XPath paths evaluate in linear time, and
// OPTMINCONTEXT matches the dedicated linear engine's growth.
func E9(cfg Config) []*Table {
	cfg = cfg.Defaults()
	var out []*Table
	for _, src := range workload.CoreQueries() {
		q := mustCompile(src)
		cols := []string{"corexpath", "optmincontext", "mincontext"}
		t := NewTable(
			"E9 — Theorem 13 (Core XPath, linear time)",
			"query: "+src, "|D|", "time", cfg.Sizes, cols)
		engines := map[string]engine.Engine{
			"corexpath": corexpath.New(), "optmincontext": core.NewOptMinContext(),
			"mincontext": core.NewMinContext(),
		}
		times := map[string][]float64{}
		for row, n := range cfg.Sizes {
			doc := workload.Scaled(n)
			for _, col := range cols {
				m := Run(engines[col], q, doc, cfg.Reps)
				if m.Err != nil {
					t.Set(col, row, "n/a")
					continue
				}
				t.SetDuration(col, row, m.Time)
				times[col] = append(times[col], float64(m.Time))
			}
		}
		for _, col := range cols {
			if len(times[col]) == len(cfg.Sizes) {
				t.Fit(col, times[col])
			}
		}
		out = append(out, t)
	}
	return out
}

// E10 verifies Corollary 11: a Wadler subexpression inside a non-Wadler
// query still gets the bottom-up treatment under OPTMINCONTEXT.
func E10(cfg Config) *Table {
	cfg = cfg.Defaults()
	src := workload.MixedQuery()
	q := mustCompile(src)
	cols := []string{"optmincontext(time)", "mincontext(time)",
		"optmincontext(cells)", "mincontext(cells)"}
	t := NewTable(
		"E10 — Corollary 11 (Wadler subexpression in a full-XPath query)",
		"query: "+src+"; nested documents", "|D|", "mixed", cfg.Sizes, cols)
	opt, min := core.NewOptMinContext(), core.NewMinContext()
	for row, n := range cfg.Sizes {
		doc := workload.Nested(n)
		mo := Run(opt, q, doc, cfg.Reps)
		mm := Run(min, q, doc, cfg.Reps)
		t.SetDuration("optmincontext(time)", row, mo.Time)
		t.SetDuration("mincontext(time)", row, mm.Time)
		t.SetCount("optmincontext(cells)", row, mo.Stats.TableCells)
		t.SetCount("mincontext(cells)", row, mm.Stats.TableCells)
	}
	return t
}

// E11 measures the §3.1 "restriction to the relevant context" ablation:
// single-context evaluations explode when nothing is tabled.
func E11(cfg Config) *Table {
	cfg = cfg.Defaults()
	// The descendant::c = 100 subterm has Relev = {cn}: tabled once per
	// candidate under MINCONTEXT, recomputed per previous/current pair when
	// the restriction is disabled.
	src := `/descendant::*/descendant::*[descendant::c = 100 or position() > last()*0.5]`
	q := mustCompile(src)
	cols := []string{"mincontext(contexts)", "norelev(contexts)",
		"mincontext(cells)", "norelev(cells)",
		"mincontext(time)", "norelev(time)"}
	t := NewTable(
		"E11 — ablation: relevant-context restriction off (§3.1)",
		"query: "+src+"; nested documents. Without the restriction nothing scalar is tabled:"+
			" fewer cells, but every predicate subtree is recomputed per context"+
			" (the |D|³-table alternative is E7's bottomup column)",
		"|D|", "mixed", cfg.SmallSizes, cols)
	on := core.NewMinContext()
	off := core.NewMinContextWith(core.Options{DisableRelev: true})
	for row, n := range cfg.SmallSizes {
		doc := workload.Nested(n)
		mo := Run(on, q, doc, cfg.Reps)
		mf := Run(off, q, doc, cfg.Reps)
		t.SetCount("mincontext(contexts)", row, mo.Stats.ContextsEvaluated)
		t.SetCount("norelev(contexts)", row, mf.Stats.ContextsEvaluated)
		t.SetCount("mincontext(cells)", row, mo.Stats.TableCells)
		t.SetCount("norelev(cells)", row, mf.Stats.TableCells)
		t.SetDuration("mincontext(time)", row, mo.Time)
		t.SetDuration("norelev(time)", row, mf.Time)
	}
	return t
}

// E12 measures the §3.1 outermost-path-as-set ablation: the dom × 2^dom
// relation costs quadratic cells where sets cost linear.
func E12(cfg Config) *Table {
	cfg = cfg.Defaults()
	src := `/descendant::*/descendant::*[self::* = 100]`
	q := mustCompile(src)
	cols := []string{"mincontext(cells)", "noouterset(cells)"}
	t := NewTable(
		"E12 — ablation: outermost location paths as relations (§3.1)",
		"query: "+src+"; nested documents (Example 4's 2-dimensional tables)",
		"|D|", "cells", cfg.Sizes, cols)
	on := core.NewMinContext()
	off := core.NewMinContextWith(core.Options{DisableOutermostSet: true})
	onC, offC := []float64{}, []float64{}
	for row, n := range cfg.Sizes {
		doc := workload.Nested(n)
		mo := Run(on, q, doc, 1)
		mf := Run(off, q, doc, 1)
		t.SetCount("mincontext(cells)", row, mo.Stats.TableCells)
		t.SetCount("noouterset(cells)", row, mf.Stats.TableCells)
		onC = append(onC, float64(mo.Stats.TableCells))
		offC = append(offC, float64(mf.Stats.TableCells))
	}
	t.Fit("mincontext(cells)", onC)
	t.Fit("noouterset(cells)", offC)
	return t
}

// E13 runs the differential agreement sweep and reports the number of
// (query, document, engine) checks that agreed.
func E13(cfg Config) *Table {
	cfg = cfg.Defaults()
	engines := map[string]engine.Engine{
		"topdown": topdown.New(), "bottomup": bottomup.New(),
		"mincontext": core.NewMinContext(), "optmincontext": core.NewOptMinContext(),
		"naive": naive.New(),
	}
	params := []int{1, 2, 3, 4}
	cols := []string{"queries", "checks", "disagreements"}
	t := NewTable(
		"E13 — cross-engine differential agreement",
		"random documents (|D|≈60) × random queries; all engines must agree",
		"doc seed", "counts", params, cols)
	for row, seed := range params {
		doc := workload.Random(60, int64(seed))
		checks, disagreements, queries := 0, 0, 0
		for qs := int64(1); qs <= 60; qs++ {
			q := mustCompile(workload.RandomQuery(int64(seed)*1000 + qs))
			queries++
			ref, _, refErr := engines["topdown"].Evaluate(q, doc, engine.RootContext(doc))
			if refErr != nil {
				continue
			}
			for name, eng := range engines {
				if name == "topdown" {
					continue
				}
				got, _, err := eng.Evaluate(q, doc, engine.RootContext(doc))
				if err != nil {
					continue // work/size limits
				}
				checks++
				if !values.Equal(ref, got) {
					disagreements++
				}
			}
		}
		t.SetCount("queries", row, int64(queries))
		t.SetCount("checks", row, int64(checks))
		t.SetCount("disagreements", row, int64(disagreements))
	}
	return t
}

// E14 measures compiled-plan execution against interpretation: the same
// repeated workload queries on the same documents, evaluated by the
// register-VM engine of internal/plan, by OPTMINCONTEXT, and (on Core XPath
// queries) by the dedicated linear engine. The per-query compile happens
// once, outside the timed loop — the serving scenario the plan cache
// targets.
func E14(cfg Config) []*Table {
	cfg = cfg.Defaults()
	queries := []string{
		workload.CoreQueries()[0],
		workload.CoreQueries()[3],
		workload.WadlerQueries()[0],
		workload.PositionHeavy(),
	}
	compiled := plan.New()
	var out []*Table
	for _, src := range queries {
		q := mustCompile(src)
		if _, err := compiled.Plan(q); err != nil { // compile outside the timed loop
			panic(fmt.Sprintf("bench: plan %q: %v", src, err))
		}
		cols := []string{"compiled", "optmincontext"}
		engines := map[string]engine.Engine{
			"compiled": compiled, "optmincontext": core.NewOptMinContext(),
		}
		if q.Fragment == syntax.FragmentCoreXPath {
			cols = append(cols, "corexpath")
			engines["corexpath"] = corexpath.New()
		}
		t := NewTable(
			"E14 — compiled plans vs. interpretation",
			"query: "+src+"; metric: wall time (plan compiled once, reused)",
			"|D|", "time", cfg.Sizes, cols)
		times := map[string][]float64{}
		for row, n := range cfg.Sizes {
			doc := workload.Scaled(n)
			for _, col := range cols {
				m := Run(engines[col], q, doc, cfg.Reps)
				if m.Err != nil {
					t.Set(col, row, "n/a")
					continue
				}
				t.SetDuration(col, row, m.Time)
				times[col] = append(times[col], float64(m.Time))
			}
		}
		for _, col := range cols {
			if len(times[col]) == len(cfg.Sizes) {
				t.Fit(col, times[col])
			}
		}
		out = append(out, t)
	}
	return out
}

// E15 measures the concurrency layer of internal/store: the batch fan-out
// of one compiled plan across a document corpus on a bounded worker pool,
// and the data-partitioned parallel evaluation of a single large document —
// the scaling curve workers × corpus size, compiled vs OPTMINCONTEXT. Every
// cell is verified byte-identical to the 1-worker (serial) row before its
// time is reported; a disagreement renders as "MISMATCH".
func E15(cfg Config) []*Table {
	cfg = cfg.Defaults()
	const querySrc = `//b[d = 100]/child::c`
	q := mustCompile(querySrc)
	compiled := plan.New()
	if _, err := compiled.Plan(q); err != nil {
		panic(fmt.Sprintf("bench: plan %q: %v", querySrc, err))
	}
	engines := map[string]engine.Engine{
		"compiled": compiled, "optmincontext": core.NewOptMinContext(),
	}
	cols := []string{"compiled", "optmincontext"}
	var out []*Table

	// Part 1: Store.Query across a corpus, one table per corpus size.
	for _, docs := range cfg.CorpusSizes {
		st := store.New()
		for i := 0; i < docs; i++ {
			// Vary document sizes so the batch is not embarrassingly uniform.
			if err := st.Add(fmt.Sprintf("doc-%05d", i), workload.Scaled(150+(i%7)*50)); err != nil {
				panic(err)
			}
		}
		t := NewTable(
			"E15 — store batch fan-out (parallel corpus evaluation)",
			fmt.Sprintf("query: %s; corpus: %d documents (|D| 150–450); metric: wall time for the whole batch", querySrc, docs),
			"workers", "time", cfg.Workers, cols)
		for _, col := range cols {
			eng := engines[col]
			ref, _ := st.Query(q, store.QueryOptions{Engine: eng, Workers: 1})
			for row, workers := range cfg.Workers {
				best := time.Duration(math.MaxInt64)
				var res []store.DocResult
				for rep := 0; rep < cfg.Reps; rep++ {
					start := time.Now()
					res, _ = st.Query(q, store.QueryOptions{Engine: eng, Workers: workers})
					if d := time.Since(start); d < best {
						best = d
					}
				}
				if !sameBatch(ref, res) {
					t.Set(col, row, "MISMATCH")
					continue
				}
				t.SetDuration(col, row, best)
			}
		}
		out = append(out, t)
	}

	// Part 2: single-document data partitioning (EvaluateParallel). The
	// document is 25× the largest sweep size, so the default config yields
	// |D| = 20000 while test configs stay small.
	docSize := 0
	for _, n := range cfg.Sizes {
		if n > docSize {
			docSize = n
		}
	}
	docSize *= 25
	doc := workload.Scaled(docSize)
	t := NewTable(
		"E15 — single-document data partitioning (EvaluateParallel)",
		fmt.Sprintf("query: %s; one document, |D| = %d; metric: wall time", querySrc, docSize),
		"workers", "time", cfg.Workers, cols)
	for _, col := range cols {
		eng := engines[col]
		refVal, _, err := eng.Evaluate(q, doc, engine.RootContext(doc))
		if err != nil {
			panic(err)
		}
		for row, workers := range cfg.Workers {
			best := time.Duration(math.MaxInt64)
			var got values.Value
			for rep := 0; rep < cfg.Reps; rep++ {
				start := time.Now()
				v, _, _, err := store.EvaluateParallel(eng, q, doc, engine.RootContext(doc), workers)
				if err != nil {
					panic(err)
				}
				got = v
				if d := time.Since(start); d < best {
					best = d
				}
			}
			if values.Render(got) != values.Render(refVal) {
				t.Set(col, row, "MISMATCH")
				continue
			}
			t.SetDuration(col, row, best)
		}
	}
	out = append(out, t)
	return out
}

// sameBatch reports whether two batch results are byte-identical.
func sameBatch(a, b []store.DocResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || (a[i].Err == nil) != (b[i].Err == nil) ||
			values.Render(a[i].Value) != values.Render(b[i].Value) {
			return false
		}
	}
	return true
}

// RunAll executes every experiment and prints the tables. A non-empty
// e16JSONPath additionally emits the E16 before/after rows as JSON
// (likewise e17JSONPath through e20JSONPath for E17/E18/E19/E20).
func RunAll(w io.Writer, cfg Config, e16JSONPath, e17JSONPath, e18JSONPath, e19JSONPath, e20JSONPath string) {
	start := time.Now()
	E5(cfg).Print(w)
	E6(cfg).Print(w)
	E7(cfg).Print(w)
	for _, t := range E8(cfg) {
		t.Print(w)
	}
	for _, t := range E9(cfg) {
		t.Print(w)
	}
	E10(cfg).Print(w)
	E11(cfg).Print(w)
	E12(cfg).Print(w)
	E13(cfg).Print(w)
	for _, t := range E14(cfg) {
		t.Print(w)
	}
	for _, t := range E15(cfg) {
		t.Print(w)
	}
	t16, rows := E16(cfg)
	t16.Print(w)
	if e16JSONPath != "" {
		if err := WriteE16JSON(e16JSONPath, rows); err != nil {
			fmt.Fprintf(w, "E16 JSON: %v\n", err)
		} else {
			fmt.Fprintf(w, "wrote %s\n", e16JSONPath)
		}
	}
	t17, rows17 := E17(cfg)
	t17.Print(w)
	if e17JSONPath != "" {
		if err := WriteE17JSON(e17JSONPath, rows17); err != nil {
			fmt.Fprintf(w, "E17 JSON: %v\n", err)
		} else {
			fmt.Fprintf(w, "wrote %s\n", e17JSONPath)
		}
	}
	t18, rows18 := E18(cfg)
	t18.Print(w)
	if e18JSONPath != "" {
		if err := WriteE18JSON(e18JSONPath, rows18); err != nil {
			fmt.Fprintf(w, "E18 JSON: %v\n", err)
		} else {
			fmt.Fprintf(w, "wrote %s\n", e18JSONPath)
		}
	}
	t19, rows19 := E19(cfg)
	t19.Print(w)
	if e19JSONPath != "" {
		if err := WriteE19JSON(e19JSONPath, rows19); err != nil {
			fmt.Fprintf(w, "E19 JSON: %v\n", err)
		} else {
			fmt.Fprintf(w, "wrote %s\n", e19JSONPath)
		}
	}
	t20, rows20 := E20(cfg)
	t20.Print(w)
	if e20JSONPath != "" {
		if err := WriteE20JSON(e20JSONPath, rows20); err != nil {
			fmt.Fprintf(w, "E20 JSON: %v\n", err)
		} else {
			fmt.Fprintf(w, "wrote %s\n", e20JSONPath)
		}
	}
	fmt.Fprintf(w, "total experiment time: %s\n", time.Since(start).Round(time.Millisecond))
}
