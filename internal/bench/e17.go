package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E17 measures the cost of the observability layer: every end-to-end query
// of the E16 workload runs on the instrumented engines with tracing off
// (nil tracer — the production default, one predicted branch per
// instrumented site) and with tracing on (a shared trace.Recorder receiving
// per-step / per-opcode spans). The "off" rows are the zero-overhead claim:
// ns/op within noise of the pre-instrumentation numbers and the identical
// allocation counts, which plan's TestWarmEvaluateAllocs pins exactly. The
// "on" rows price a fully traced evaluation.
//
// The emitted BENCH_E17.json additionally embeds a snapshot of the process
// metrics registry taken after the runs, so the registry's own surface
// (counter/histogram names and shapes) is recorded with the experiment.

// E17Row is one measurement of the E17 tracing off/on comparison.
type E17Row struct {
	Name   string  `json:"name"`             // e.g. "e2e/q1/compiled"
	Mode   string  `json:"mode"`             // "off" (nil tracer) or "on" (recorder attached)
	NsOp   float64 `json:"ns_per_op"`        // single-threaded nanoseconds per evaluation
	Allocs float64 `json:"allocs_per_op"`    // allocations per evaluation
	Param  int     `json:"param,omitempty"`  // |D| of the document used
	Source string  `json:"source,omitempty"` // query text
}

// E17 runs the tracing off/on comparison and returns the printable table
// plus the raw rows for JSON emission.
func E17(cfg Config) (*Table, []E17Row) {
	cfg = cfg.Defaults()
	size := 0
	for _, n := range cfg.Sizes {
		if n > size {
			size = n
		}
	}
	doc := workload.Scaled(size)

	compiled := plan.New()
	engines := []struct {
		name string
		eng  engine.Engine
	}{
		{"compiled", compiled},
		{"corexpath", corexpath.New()},
		{"optmincontext", core.NewOptMinContext()},
	}

	var rows []E17Row
	rec := trace.NewRecorder()
	for qi, src := range e16Queries() {
		q := mustCompile(src)
		if _, err := compiled.Plan(q); err != nil {
			panic(fmt.Sprintf("bench: plan %q: %v", src, err))
		}
		for _, e := range engines {
			if _, _, err := e.eng.Evaluate(q, doc, engine.RootContext(doc)); err != nil {
				continue // outside the engine's fragment
			}
			off := func() {
				if _, _, err := e.eng.Evaluate(q, doc, engine.RootContext(doc)); err != nil {
					panic(err)
				}
			}
			on := func() {
				ctx := engine.RootContext(doc)
				ctx.Tracer = rec
				if _, _, err := e.eng.Evaluate(q, doc, ctx); err != nil {
					panic(err)
				}
			}
			name := fmt.Sprintf("e2e/q%d/%s", qi+1, e.name)
			rows = append(rows,
				E17Row{Name: name, Mode: "off", Param: size, Source: src,
					NsOp: measureNs(off, cfg.Reps), Allocs: testing.AllocsPerRun(20, off)},
				E17Row{Name: name, Mode: "on", Param: size, Source: src,
					NsOp: measureNs(on, cfg.Reps), Allocs: testing.AllocsPerRun(20, on)})
			rec.Reset() // bound the recorder between engines
		}
	}
	return e17Table(rows, size), rows
}

// e17Table renders the rows: one line per (query, engine), columns for the
// off/on timings and allocation counts plus the relative tracing overhead.
func e17Table(rows []E17Row, size int) *Table {
	type pair struct{ off, on *E17Row }
	byName := map[string]*pair{}
	var order []string
	for i := range rows {
		r := &rows[i]
		p, ok := byName[r.Name]
		if !ok {
			p = &pair{}
			byName[r.Name] = p
			order = append(order, r.Name)
		}
		if r.Mode == "off" {
			p.off = r
		} else {
			p.on = r
		}
	}
	cols := []string{"name", "untraced", "traced", "overhead", "allocs untraced", "allocs traced"}
	params := make([]int, len(order))
	for i := range params {
		params[i] = i
	}
	t := NewTable(
		"E17 — observability layer: tracing off/on",
		fmt.Sprintf("|D| = %d; untraced = nil tracer (production default), traced = shared trace.Recorder; single-threaded ns/op", size),
		"#", "mixed", params, cols)
	for i, name := range order {
		p := byName[name]
		t.Set("name", i, name)
		t.Set("untraced", i, formatDuration(time.Duration(p.off.NsOp)))
		t.Set("traced", i, formatDuration(time.Duration(p.on.NsOp)))
		t.Set("overhead", i, fmt.Sprintf("%+.1f%%", 100*(p.on.NsOp-p.off.NsOp)/p.off.NsOp))
		t.Set("allocs untraced", i, fmt.Sprintf("%.1f", p.off.Allocs))
		t.Set("allocs traced", i, fmt.Sprintf("%.1f", p.on.Allocs))
	}
	return t
}

// WriteE17JSON emits the E17 rows plus a process metrics-registry snapshot
// as a JSON document (BENCH_E17.json at the repository root).
func WriteE17JSON(path string, rows []E17Row) error {
	doc := struct {
		Experiment string           `json:"experiment"`
		Unit       string           `json:"unit"`
		Note       string           `json:"note"`
		Rows       []E17Row         `json:"rows"`
		Metrics    metrics.Snapshot `json:"metrics"`
	}{
		Experiment: "E17",
		Unit:       "ns/op, allocs/op (single-threaded)",
		Note:       "off = nil tracer (one predicted branch per instrumented site); on = shared trace.Recorder receiving per-step/per-opcode spans; metrics = process registry snapshot after the runs",
		Rows:       rows,
		Metrics:    metrics.Default().Snapshot(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
