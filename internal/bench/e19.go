package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/syntax"
	"repro/internal/topdown"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// E19 prices the robustness layer: what a live evaluation Budget costs on
// the warm path, and how fast cooperative cancellation actually lands.
// Three measurements per engine:
//
//   - overhead: best-of warm evaluation time with ctx.Budget == nil (the
//     zero-cost default, one predicted nil check per loop iteration)
//     against a live Budget with fuel, deadline and cardinality cap all
//     armed. The contract — mirrored by the alloc pins of
//     internal/plan and internal/axes — is that the difference stays in
//     the noise; the ratio is reported, not gated (single-core container
//     nanoseconds are machine-dependent).
//   - cancellation latency: a concurrent Cancel() against an in-flight
//     evaluation on the largest document, measured from the Cancel call
//     to the engine's error return — the bound on how long a 504'd
//     request can keep holding a server worker slot.
//   - trip time: time to ErrBudgetExceeded with a few steps of fuel, the
//     deterministic classification proving the fuel accounting works at
//     every size.

// E19Row is one engine × document-size cell of the E19 sweep.
type E19Row struct {
	Engine string `json:"engine"`
	Size   int    `json:"size"`
	// NilBudgetNs and LiveBudgetNs are best-of warm evaluation times with
	// no budget and with a generous live budget; OverheadPct is their
	// relative difference (negative = in the noise).
	NilBudgetNs  int64   `json:"nil_budget_ns"`
	LiveBudgetNs int64   `json:"live_budget_ns"`
	OverheadPct  float64 `json:"overhead_pct"`
	// TripOK reports that a tiny fuel allowance produced
	// ErrBudgetExceeded; TripNs is the time from call to that error.
	TripOK bool  `json:"trip_ok"`
	TripNs int64 `json:"trip_ns"`
	// Canceled/CancelLatencyNs are set on the largest size only: a
	// concurrent cancel against the in-flight evaluation, measured from
	// Cancel() to the engine's return. Canceled is false when the
	// evaluation finished before the cancel landed (fast engine, small
	// document) — the latency is then meaningless and omitted.
	Canceled        bool  `json:"canceled,omitempty"`
	CancelLatencyNs int64 `json:"cancel_latency_ns,omitempty"`
}

// e19Engines returns the engine sweep and the query each one runs: the
// positional running query for the full-XPath engines, a Core XPath
// fragment query for corexpath.
func e19Engines() []struct {
	name string
	eng  engine.Engine
	src  string
} {
	const heavy = `//b[position() != last()]/descendant-or-self::*[count(child::*) >= 0]`
	const coreq = `/descendant::b[child::d]/descendant-or-self::*/child::*`
	return []struct {
		name string
		eng  engine.Engine
		src  string
	}{
		{"optmincontext", core.NewOptMinContext(), heavy},
		{"topdown", topdown.New(), heavy},
		{"compiled", plan.New(), heavy},
		{"corexpath", corexpath.New(), coreq},
	}
}

// e19Best times best-of-reps warm evaluation under the given budget
// limits (nil limits = nil budget). A fresh budget per call keeps the
// fuel from accumulating across reps.
func e19Best(eng engine.Engine, q *syntax.Query, doc *xmltree.Document, reps int, lim *budget.Limits) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		ctx := engine.RootContext(doc)
		if lim != nil {
			ctx.Budget = budget.New(*lim)
		}
		start := time.Now()
		_, _, err := eng.Evaluate(q, doc, ctx)
		if err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// e19Cancel measures one concurrent cancellation against an in-flight
// evaluation: the delay before canceling is half the engine's measured
// full evaluation time on the same document, and the latency runs from
// Cancel() to return. The caller passes a document big enough that the
// evaluation comfortably outlives time.Sleep's scheduling granularity;
// a false return means the evaluation still finished first.
func e19Cancel(eng engine.Engine, q *syntax.Query, doc *xmltree.Document, full time.Duration) (canceled bool, latency time.Duration) {
	bud := budget.New(budget.Limits{})
	ctx := engine.RootContext(doc)
	ctx.Budget = bud
	done := make(chan error, 1)
	go func() {
		_, _, err := eng.Evaluate(q, doc, ctx)
		done <- err
	}()
	delay := full / 2
	if delay < 50*time.Microsecond {
		delay = 50 * time.Microsecond
	}
	time.Sleep(delay)
	t0 := time.Now()
	bud.Cancel()
	err := <-done
	if !errors.Is(err, budget.ErrCanceled) {
		return false, 0 // finished before the cancel landed
	}
	return true, time.Since(t0)
}

// E19 runs the budget-pricing sweep and returns the printable table plus
// the raw rows for JSON emission.
func E19(cfg Config) (*Table, []E19Row) {
	cfg = cfg.Defaults()
	live := budget.Limits{Steps: 1 << 40, Deadline: time.Hour, MaxResultCard: 1 << 30}
	var rows []E19Row
	for _, e := range e19Engines() {
		q := mustCompile(e.src)
		for i, n := range cfg.Sizes {
			doc := workload.Scaled(n)
			row := E19Row{Engine: e.name, Size: n}
			nilNs, err := e19Best(e.eng, q, doc, cfg.Reps, nil)
			if err != nil {
				continue // engine limit (e.g. bottomup table estimate); skip the cell
			}
			liveNs, err := e19Best(e.eng, q, doc, cfg.Reps, &live)
			if err != nil {
				continue
			}
			row.NilBudgetNs = nilNs.Nanoseconds()
			row.LiveBudgetNs = liveNs.Nanoseconds()
			row.OverheadPct = 100 * (float64(liveNs) - float64(nilNs)) / float64(nilNs)

			// Trip time: a handful of fuel must classify as exceeded.
			tripStart := time.Now()
			ctx := engine.RootContext(doc)
			ctx.Budget = budget.New(budget.Limits{Steps: 8})
			_, _, terr := e.eng.Evaluate(q, doc, ctx)
			row.TripNs = time.Since(tripStart).Nanoseconds()
			row.TripOK = errors.Is(terr, budget.ErrBudgetExceeded)

			if i == len(cfg.Sizes)-1 {
				// The cancel leg runs on a document an order of magnitude
				// larger, so the in-flight window dwarfs time.Sleep's
				// millisecond-scale scheduling granularity.
				big := workload.Scaled(8 * n)
				fullNs, err := e19Best(e.eng, q, big, 1, nil)
				if err == nil {
					canceled, lat := e19Cancel(e.eng, q, big, fullNs)
					row.Canceled, row.CancelLatencyNs = canceled, lat.Nanoseconds()
				}
			}
			rows = append(rows, row)
		}
	}
	return e19Table(rows), rows
}

// e19Table renders one line per engine × size.
func e19Table(rows []E19Row) *Table {
	cols := []string{"engine", "|D|", "nil budget", "live budget", "overhead", "trip", "cancel latency"}
	params := make([]int, len(rows))
	for i := range params {
		params[i] = i
	}
	t := NewTable(
		"E19 — budget-check overhead and cancellation latency",
		"warm best-of evaluation with nil vs live Budget (fuel+deadline+card armed); trip = time to ErrBudgetExceeded on 8 fuel; cancel latency = concurrent Cancel() to engine return on the largest |D|; single-core container, overhead ratio not gated",
		"#", "mixed", params, cols)
	for i, r := range rows {
		t.Set("engine", i, r.Engine)
		t.Set("|D|", i, fmt.Sprint(r.Size))
		t.Set("nil budget", i, formatDuration(time.Duration(r.NilBudgetNs)))
		t.Set("live budget", i, formatDuration(time.Duration(r.LiveBudgetNs)))
		t.Set("overhead", i, fmt.Sprintf("%+.1f%%", r.OverheadPct))
		if r.TripOK {
			t.Set("trip", i, formatDuration(time.Duration(r.TripNs)))
		} else {
			t.Set("trip", i, "MISS")
		}
		if r.Canceled {
			t.Set("cancel latency", i, formatDuration(time.Duration(r.CancelLatencyNs)))
		} else {
			t.Set("cancel latency", i, "-")
		}
	}
	return t
}

// WriteE19JSON emits the E19 rows plus a process metrics-registry snapshot
// as a JSON document (BENCH_E19.json at the repository root).
func WriteE19JSON(path string, rows []E19Row) error {
	doc := struct {
		Experiment string           `json:"experiment"`
		Unit       string           `json:"unit"`
		Note       string           `json:"note"`
		Rows       []E19Row         `json:"rows"`
		Metrics    metrics.Snapshot `json:"metrics"`
	}{
		Experiment: "E19",
		Unit:       "ns (best-of warm evaluation, trip time, cancel latency)",
		Note:       "budget pricing: nil vs live Budget on the warm path (the nil check is the whole price by contract), deterministic ErrBudgetExceeded classification on 8 fuel, and concurrent-cancel latency on the largest document; nanoseconds are machine-dependent — no wall-clock claims gated",
		Rows:       rows,
		Metrics:    metrics.Default().Snapshot(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
