package bench

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestFitExponent(t *testing.T) {
	// y = x²  →  exponent 2.
	xs := []float64{10, 20, 40, 80}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	if got := FitExponent(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("FitExponent(x²) = %v", got)
	}
	// Constant → 0.
	if got := FitExponent(xs, []float64{5, 5, 5, 5}); math.Abs(got) > 1e-9 {
		t.Errorf("FitExponent(const) = %v", got)
	}
	// Too few points → NaN.
	if got := FitExponent([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("FitExponent(1 point) = %v", got)
	}
}

func TestDoublingRatio(t *testing.T) {
	if got := DoublingRatio([]float64{1, 2, 4, 8}); math.Abs(got-2) > 1e-9 {
		t.Errorf("DoublingRatio = %v", got)
	}
	if got := DoublingRatio([]float64{3}); !math.IsNaN(got) {
		t.Errorf("DoublingRatio(1 value) = %v", got)
	}
}

func TestTablePrint(t *testing.T) {
	tab := NewTable("demo", "a note", "|D|", "time", []int{10, 100}, []string{"x", "y"})
	tab.SetDuration("x", 0, 1500*time.Nanosecond)
	tab.SetDuration("x", 1, 2*time.Millisecond)
	tab.SetCount("y", 0, 12)
	tab.SetCount("y", 1, 120000)
	tab.Fit("y", []float64{12, 120000})
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a note", "|D|", "1.5µs", "2.00ms", "120.0k", "fit", "~n^"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMeasurement(t *testing.T) {
	doc := workload.Figure2()
	q := mustCompile(`/descendant::d`)
	m := Run(core.NewOptMinContext(), q, doc, 3)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Time <= 0 {
		t.Error("no time measured")
	}
}

// TestExperimentsSmoke runs every experiment at minimum size to guard the
// harness itself against regressions. The real sweeps run via
// cmd/xpathbench and the root benchmarks.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	cfg := Config{Reps: 1, Sizes: []int{20, 40}, SmallSizes: []int{10, 20}, MaxDouble: 6,
		Workers: []int{1, 2, 4}, CorpusSizes: []int{12, 24}}
	var buf bytes.Buffer
	dir := t.TempDir()
	RunAll(&buf, cfg, filepath.Join(dir, "BENCH_E16.json"), filepath.Join(dir, "BENCH_E17.json"),
		filepath.Join(dir, "BENCH_E18.json"), filepath.Join(dir, "BENCH_E19.json"),
		filepath.Join(dir, "BENCH_E20.json"))
	out := buf.String()
	for _, want := range []string{"E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %s", want)
		}
	}
	if strings.Contains(out, "disagreements") {
		// E13 must report zero disagreements in each row.
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "limit") {
				continue
			}
		}
	}
	// E15 verifies every parallel cell against the serial reference and
	// renders disagreements as MISMATCH.
	if strings.Contains(out, "MISMATCH") {
		t.Error("E15 reported a parallel/serial result mismatch")
	}
}

// TestE15Identical asserts the batch and single-document parallel paths
// return byte-identical results for every worker count (the E15 tables
// render any disagreement as MISMATCH).
func TestE15Identical(t *testing.T) {
	tabs := E15(Config{Reps: 1, Sizes: []int{30, 60}, Workers: []int{1, 2, 4, 8},
		CorpusSizes: []int{20}}.Defaults())
	for _, tab := range tabs {
		for col, cells := range tab.Cells {
			for i, cell := range cells {
				if strings.Contains(cell, "MISMATCH") {
					t.Errorf("%s: %s row %d: parallel result differs from serial", tab.Title, col, i)
				}
			}
		}
	}
}

// TestE13NoDisagreements asserts the differential experiment reports zero
// disagreements.
func TestE13NoDisagreements(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep")
	}
	tab := E13(Config{Reps: 1}.Defaults())
	for i := range tab.Params {
		if got := tab.Cells["disagreements"][i]; got != "0" {
			t.Errorf("seed row %d: %s disagreements", i, got)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
