// Package bench is the experiment harness behind EXPERIMENTS.md: it runs
// the parameter sweeps E5–E13 of DESIGN.md, measures wall-clock time and
// the engines' instrumentation counters, fits growth exponents, and prints
// paper-style tables. cmd/xpathbench is its CLI; the root bench_test.go
// exposes the same workloads as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/xmltree"
)

// Measurement is one cell of an experiment table.
type Measurement struct {
	Time  time.Duration
	Stats engine.Stats
	Err   error
}

// Run evaluates the query on the engine, returning the best-of-k wall time
// and the (deterministic) stats of one evaluation.
func Run(eng engine.Engine, q *syntax.Query, doc *xmltree.Document, reps int) Measurement {
	ctx := engine.RootContext(doc)
	var m Measurement
	var err error
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		_, st, e := eng.Evaluate(q, doc, ctx)
		d := time.Since(start)
		if e != nil {
			err = e
			break
		}
		if d < best {
			best = d
		}
		m.Stats = st
	}
	m.Time = best
	m.Err = err
	return m
}

// Table is a printable experiment result: one row per parameter value, one
// column group per engine.
type Table struct {
	Title   string
	Note    string
	Param   string   // e.g. "|D|" or "i (query steps)"
	Columns []string // engine names
	Metric  string   // "time", "cells", "contexts"
	Params  []int
	Cells   map[string][]string // column → rendered cells, aligned to Params
	FitNote map[string]string   // column → fitted growth annotation
}

// NewTable prepares a table for the given parameter values and columns.
func NewTable(title, note, param, metric string, params []int, cols []string) *Table {
	t := &Table{Title: title, Note: note, Param: param, Metric: metric,
		Params: params, Columns: cols,
		Cells:   make(map[string][]string, len(cols)),
		FitNote: make(map[string]string, len(cols)),
	}
	for _, c := range cols {
		t.Cells[c] = make([]string, len(params))
	}
	return t
}

// Set records a rendered cell.
func (t *Table) Set(col string, rowIdx int, cell string) { t.Cells[col][rowIdx] = cell }

// SetDuration records a time cell.
func (t *Table) SetDuration(col string, rowIdx int, d time.Duration) {
	t.Set(col, rowIdx, formatDuration(d))
}

// SetCount records a counter cell.
func (t *Table) SetCount(col string, rowIdx int, v int64) {
	t.Set(col, rowIdx, formatCount(v))
}

// Fit annotates a column with the fitted growth exponent over the rows,
// treating the parameter as x and the measured value as y.
func (t *Table) Fit(col string, ys []float64) {
	xs := make([]float64, len(t.Params))
	for i, p := range t.Params {
		xs[i] = float64(p)
	}
	t.FitNote[col] = fmt.Sprintf("~n^%.2f", FitExponent(xs, ys))
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	width := utf8.RuneCountInString
	widths := make([]int, len(t.Columns)+1)
	widths[0] = width(t.Param)
	if len(t.FitNote) > 0 && widths[0] < len("fit") {
		widths[0] = len("fit")
	}
	for _, p := range t.Params {
		if l := width(fmt.Sprint(p)); l > widths[0] {
			widths[0] = l
		}
	}
	for c, col := range t.Columns {
		widths[c+1] = width(col)
		for _, cell := range t.Cells[col] {
			if width(cell) > widths[c+1] {
				widths[c+1] = width(cell)
			}
		}
		if fit := t.FitNote[col]; width(fit) > widths[c+1] {
			widths[c+1] = width(fit)
		}
	}
	pad := func(s string, wd int) string {
		if n := wd - width(s); n > 0 {
			return strings.Repeat(" ", n) + s
		}
		return s
	}
	fmt.Fprintf(w, "   %s", pad(t.Param, widths[0]))
	for c, col := range t.Columns {
		fmt.Fprintf(w, "  %s", pad(col, widths[c+1]))
	}
	fmt.Fprintln(w)
	for i, p := range t.Params {
		fmt.Fprintf(w, "   %s", pad(fmt.Sprint(p), widths[0]))
		for c, col := range t.Columns {
			fmt.Fprintf(w, "  %s", pad(t.Cells[col][i], widths[c+1]))
		}
		fmt.Fprintln(w)
	}
	if len(t.FitNote) > 0 {
		fmt.Fprintf(w, "   %s", pad("fit", widths[0]))
		for c, col := range t.Columns {
			fmt.Fprintf(w, "  %s", pad(t.FitNote[col], widths[c+1]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// FitExponent returns the slope of the least-squares line through
// (log x, log y): the empirical growth exponent of y ≈ c·x^k. Non-positive
// values are clamped to a tiny epsilon so cold cells do not produce ±Inf.
func FitExponent(xs, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 {
			continue
		}
		y := ys[i]
		if y <= 0 {
			y = 1e-12
		}
		lx, ly := math.Log(xs[i]), math.Log(y)
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}

// DoublingRatio returns the geometric mean of successive ratios y[i+1]/y[i]
// — ≈2 indicates the exponential doubling of experiment E5.
func DoublingRatio(ys []float64) float64 {
	if len(ys) < 2 {
		return math.NaN()
	}
	prod := 1.0
	n := 0
	for i := 1; i < len(ys); i++ {
		if ys[i-1] > 0 {
			prod *= ys[i] / ys[i-1]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Pow(prod, 1/float64(n))
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func formatCount(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprint(v)
	}
}

// SortedKeys is a small helper for deterministic map iteration in reports.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
