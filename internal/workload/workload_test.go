package workload

import (
	"strings"
	"testing"

	"repro/internal/syntax"
)

func TestFigure2Shape(t *testing.T) {
	d := Figure2()
	if d.Size() != 9 {
		t.Errorf("|dom| = %d, want 9", d.Size())
	}
	if d.ByID("14").StringValue() != "100" {
		t.Error("strval(x14) != 100")
	}
}

func TestDoubling(t *testing.T) {
	d := Doubling()
	if d.Size() != 3 {
		t.Errorf("|dom| = %d, want 3", d.Size())
	}
}

func TestScaledSizes(t *testing.T) {
	for _, n := range []int{10, 50, 200, 999} {
		d := Scaled(n)
		if d.Size() < n-1 || d.Size() > n+1 {
			t.Errorf("Scaled(%d) has %d nodes", n, d.Size())
		}
		// The paper's predicates need some "100" leaves.
		if !strings.Contains(d.XMLString(), ">100<") {
			t.Errorf("Scaled(%d) has no '100' leaves", n)
		}
	}
}

func TestDeepChain(t *testing.T) {
	d := DeepChain(30)
	if d.Size() != 30 {
		t.Errorf("size %d, want 30", d.Size())
	}
	// Depth: walk down.
	n := d.Root()
	depth := 0
	for len(n.Children()) > 0 {
		n = n.Children()[0]
		depth++
	}
	if depth != 30 {
		t.Errorf("depth %d, want 30", depth)
	}
}

func TestWideFan(t *testing.T) {
	d := WideFan(50)
	if d.Size() != 50 {
		t.Errorf("size %d", d.Size())
	}
	if got := len(d.Root().Children()[0].Children()); got != 49 {
		t.Errorf("fanout %d, want 49", got)
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(80, 42).XMLString()
	b := Random(80, 42).XMLString()
	if a != b {
		t.Error("Random is not deterministic for equal seeds")
	}
	c := Random(80, 43).XMLString()
	if a == c {
		t.Error("different seeds should give different documents")
	}
}

func TestDoublingQueryShape(t *testing.T) {
	q := DoublingQuery(3)
	if got := strings.Count(q, "parent::a"); got != 3 {
		t.Errorf("%q has %d parent steps", q, got)
	}
	if _, err := syntax.Compile(q); err != nil {
		t.Errorf("DoublingQuery(3) does not compile: %v", err)
	}
}

func TestAllQueryFamiliesCompile(t *testing.T) {
	var all []string
	all = append(all, PositionHeavy(), MixedQuery())
	all = append(all, WadlerQueries()...)
	all = append(all, CoreQueries()...)
	all = append(all, FullXPathQueries()...)
	for i := 1; i <= 6; i++ {
		all = append(all, DoublingQuery(i))
	}
	for _, src := range all {
		if _, err := syntax.Compile(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestQueryFamilyFragments(t *testing.T) {
	for _, src := range CoreQueries() {
		q, err := syntax.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if q.Fragment != syntax.FragmentCoreXPath {
			t.Errorf("%q classified %v, want core", src, q.Fragment)
		}
	}
	for _, src := range WadlerQueries() {
		q, err := syntax.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if q.Fragment == syntax.FragmentFullXPath {
			t.Errorf("%q classified full-xpath, want a restricted fragment", src)
		}
	}
	for _, src := range FullXPathQueries() {
		q, err := syntax.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if q.Fragment != syntax.FragmentFullXPath {
			t.Errorf("%q classified %v, want full-xpath", src, q.Fragment)
		}
	}
}

func TestRandomQueryDeterminismAndValidity(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a, b := RandomQuery(seed), RandomQuery(seed)
		if a != b {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
		if _, err := syntax.Compile(a); err != nil {
			t.Errorf("seed %d: %q does not compile: %v", seed, a, err)
		}
	}
}
