// Package workload synthesizes the documents and query families used by the
// test suite and the benchmark harness. Everything is deterministic: random
// generators take explicit seeds, so every experiment in EXPERIMENTS.md is
// reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// Figure2 returns the paper's running-example document (Figure 2).
func Figure2() *xmltree.Document {
	return xmltree.MustParseString(`<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`)
}

// Doubling returns the two-leaf document of the [11] exponential-blowup
// experiment: a root a with two b children. Each parent::a/child::b round
// trip doubles the naive evaluator's intermediate result list.
func Doubling() *xmltree.Document {
	return xmltree.MustParseString(`<a><b/><b/></a>`)
}

// Scaled builds a document shaped like Figure 2 but with size |dom| ≈ n:
// a root <a> holding sections <b>, each containing a run of <c> and <d>
// leaves carrying numeric text ("100" sprinkled in so the paper's
// predicates select nonempty sets). It is the standard sweep document of
// the |D|-scaling experiments.
func Scaled(n int) *xmltree.Document {
	const perSection = 8 // leaves per <b> section
	b := xmltree.NewBuilder()
	b.Start("a", xmltree.Attr{Name: "id", Value: "0"})
	i := 1
	for b.Count() < n {
		b.Start("b", xmltree.Attr{Name: "id", Value: fmt.Sprint(i)})
		i++
		for j := 0; j < perSection && b.Count() < n; j++ {
			label := "c"
			text := fmt.Sprintf("%d %d", 20+j, 21+j)
			if j%3 == 2 {
				label = "d"
				text = "100"
			}
			b.Elem(label, text, xmltree.Attr{Name: "id", Value: fmt.Sprint(i)})
			i++
		}
		if err := b.End(); err != nil {
			panic(err)
		}
	}
	if err := b.End(); err != nil {
		panic(err)
	}
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

// Nested builds a recursively nested document of size ≈ n: every <b>
// section holds a few <c>/<d> leaves and one nested <b>, giving depth
// Θ(n) / leaves-per-level. Ancestor/descendant relations are then Θ(n²)
// pairs, which is what separates the paper's space classes (a table
// ⊆ dom × 2^dom genuinely grows quadratically here, while shallow documents
// keep it linear).
func Nested(n int) *xmltree.Document {
	const leaves = 4
	b := xmltree.NewBuilder()
	b.Start("a", xmltree.Attr{Name: "id", Value: "0"})
	id := 1
	depth := 1
	for b.Count()+depth < n {
		b.Start("b", xmltree.Attr{Name: "id", Value: fmt.Sprint(id)})
		id++
		depth++
		for j := 0; j < leaves && b.Count()+depth < n; j++ {
			label, text := "c", fmt.Sprintf("%d %d", 20+j, 21+j)
			if j == leaves-1 {
				label, text = "d", "100"
			}
			b.Elem(label, text, xmltree.Attr{Name: "id", Value: fmt.Sprint(id)})
			id++
		}
	}
	for b.Depth() > 0 {
		if err := b.End(); err != nil {
			panic(err)
		}
	}
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

// DeepChain builds a path-shaped document of depth n (one child per node),
// stressing ancestor/descendant axes and recursion depth.
func DeepChain(n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	labels := [...]string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		b.Start(labels[i%len(labels)], xmltree.Attr{Name: "id", Value: fmt.Sprint(i)})
	}
	b.Text("100")
	for i := 0; i < n; i++ {
		if err := b.End(); err != nil {
			panic(err)
		}
	}
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

// WideFan builds a two-level document: a root with n-1 leaf children of
// alternating labels, stressing the sibling axes and position predicates.
func WideFan(n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Start("a", xmltree.Attr{Name: "id", Value: "0"})
	labels := [...]string{"b", "c", "d"}
	for i := 1; i < n; i++ {
		text := fmt.Sprint(i)
		if i%5 == 0 {
			text = "100"
		}
		b.Elem(labels[i%len(labels)], text, xmltree.Attr{Name: "id", Value: fmt.Sprint(i)})
	}
	if err := b.End(); err != nil {
		panic(err)
	}
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

// Random builds a random tree with about n nodes, labels drawn from
// {a,b,c,d,e}, small integer text at leaves, and id attributes throughout.
// The same seed always yields the same document.
func Random(n int, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	labels := [...]string{"a", "b", "c", "d", "e"}
	b := xmltree.NewBuilder()
	b.Start("a", xmltree.Attr{Name: "id", Value: "0"})
	id := 1
	for b.Count() < n {
		switch {
		case b.Depth() > 1 && (rng.Intn(3) == 0 || b.Depth() > 6):
			if err := b.End(); err != nil {
				panic(err)
			}
		case rng.Intn(4) == 0:
			// Leaf with text; "100" sometimes, to light up = 100 predicates.
			text := fmt.Sprint(rng.Intn(120))
			if rng.Intn(6) == 0 {
				text = "100"
			}
			b.Elem(labels[rng.Intn(len(labels))], text,
				xmltree.Attr{Name: "id", Value: fmt.Sprint(id)})
			id++
		default:
			b.Start(labels[rng.Intn(len(labels))],
				xmltree.Attr{Name: "id", Value: fmt.Sprint(id)})
			id++
		}
	}
	for b.Depth() > 0 {
		if err := b.End(); err != nil {
			panic(err)
		}
	}
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}
