package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// DoublingQuery returns the i-th query of the [11] exponential-blowup
// family: //b followed by i rounds of /parent::a/child::b. On the Doubling
// document, a naive context-at-a-time evaluator touches 2^(i+1) nodes,
// while every polynomial engine stays linear in i.
func DoublingQuery(i int) string {
	var b strings.Builder
	b.WriteString("//b")
	for k := 0; k < i; k++ {
		b.WriteString("/parent::a/child::b")
	}
	return b.String()
}

// PositionHeavy is the paper's running query (§2.4): two descendant steps
// with a position()/last() predicate. It keeps MINCONTEXT in its positional
// loop, which is where the Theorem 7 time bound is exercised.
func PositionHeavy() string {
	return `/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]`
}

// WadlerQueries is the Extended Wadler family of experiment E8: location
// paths with boolean(π) and π RelOp constant predicates plus position
// arithmetic, but none of the Restriction 1/2 features.
func WadlerQueries() []string {
	return []string{
		`/descendant::b[boolean(child::d)]/child::c`,
		`/descendant::*[preceding-sibling::*/preceding::* = 100]`,
		`/descendant::c[position() != last()][following::d = 100]`,
		`/child::a/descendant::*[boolean(following::d[position() != last()]/following::d)]`,
	}
}

// CoreQueries is the Core XPath family of experiment E9 (Definition 12):
// no position(), last(), or comparisons — just path existence predicates.
func CoreQueries() []string {
	return []string{
		`/descendant::b[child::d]/child::c`,
		`/descendant::*[following-sibling::d and not(child::node())]`,
		`/child::a/child::b[descendant::d[preceding-sibling::c]]/child::c`,
		`//b[.//d]//c`,
	}
}

// FullXPathQueries exercises the features the Extended Wadler fragment
// forbids — count/sum, nset-vs-nset comparison, data-selecting functions —
// so only the Theorem 7 engines handle them at their general bounds.
func FullXPathQueries() []string {
	return []string{
		`/descendant::b[count(child::c) > 1]/child::d`,
		`/descendant::*[sum(child::d) >= 100]`,
		`/descendant::c[string-length(string()) > 3]`,
		`/descendant::b[child::c = following::d]`,
	}
}

// MixedQuery is the Corollary 11 workload of experiment E10: a query that
// is not in the Extended Wadler Fragment overall (count violates
// Restriction 2) but whose boolean(π) subexpression is, so OPTMINCONTEXT
// evaluates that part bottom-up at the better bound.
func MixedQuery() string {
	return `/descendant::b[boolean(descendant::d[preceding-sibling::c])][count(child::node()) > 1]`
}

// RandomQuery generates a random full-XPath query for differential
// testing: random axes, node tests over the Random document's label set,
// and bounded-depth predicates mixing path existence, comparisons,
// position()/last() arithmetic, count() and string functions. The same
// seed always yields the same query.
func RandomQuery(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	return genPath(rng, 2, true)
}

var genAxes = []string{
	"self", "child", "parent", "descendant", "ancestor",
	"descendant-or-self", "ancestor-or-self", "following", "preceding",
	"following-sibling", "preceding-sibling",
}

var genTests = []string{"a", "b", "c", "d", "e", "*", "node()"}

func genPath(rng *rand.Rand, depth int, absolute bool) string {
	var b strings.Builder
	switch {
	case absolute && rng.Intn(4) == 0 && depth > 0:
		// A filter-expression head: id(...) or a parenthesized path with a
		// positional predicate.
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "id(\"%d %d\")/", rng.Intn(40), rng.Intn(40))
		} else {
			fmt.Fprintf(&b, "(%s)[%d]/", genPath(rng, depth-1, true), 1+rng.Intn(3))
		}
	case absolute && rng.Intn(2) == 0:
		b.WriteString("/")
		if rng.Intn(2) == 0 {
			b.WriteString("descendant::*/")
		}
	}
	steps := 1 + rng.Intn(3)
	for i := 0; i < steps; i++ {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(genAxes[rng.Intn(len(genAxes))])
		b.WriteString("::")
		b.WriteString(genTests[rng.Intn(len(genTests))])
		if depth > 0 && rng.Intn(3) == 0 {
			b.WriteString("[")
			b.WriteString(genPred(rng, depth-1))
			b.WriteString("]")
		}
	}
	if absolute && depth > 0 && rng.Intn(8) == 0 {
		// Top-level union.
		return b.String() + " | " + genPath(rng, depth-1, absolute)
	}
	return b.String()
}

func genPred(rng *rand.Rand, depth int) string {
	switch rng.Intn(11) {
	case 0:
		return genPath(rng, depth, false)
	case 1:
		return fmt.Sprintf("position() %s %d", genRelOp(rng), 1+rng.Intn(4))
	case 2:
		return "position() != last()"
	case 3:
		return fmt.Sprintf("%s %s %d", genPath(rng, depth, false), genRelOp(rng), rng.Intn(120))
	case 4:
		return fmt.Sprintf("count(%s) %s %d", genPath(rng, depth, false), genRelOp(rng), rng.Intn(3))
	case 5:
		if depth > 0 {
			return fmt.Sprintf("(%s) and (%s)", genPred(rng, depth-1), genPred(rng, depth-1))
		}
		return genPath(rng, depth, false)
	case 6:
		if depth > 0 {
			return fmt.Sprintf("not(%s)", genPred(rng, depth-1))
		}
		return "true()"
	case 7:
		// Unparenthesized operator after a wildcard step — the lexical
		// disambiguation pattern ('* and', '* or', '* = …').
		if depth > 0 {
			return fmt.Sprintf("self::* and %s", genPred(rng, depth-1))
		}
		return "self::* or true()"
	case 8:
		return fmt.Sprintf("boolean(%s | %s)", genPath(rng, depth, false), genPath(rng, depth, false))
	case 9:
		return fmt.Sprintf("id(string(%s)) %s %d", genPath(rng, depth, false), genRelOp(rng), rng.Intn(50))
	default:
		return fmt.Sprintf("contains(string(), %q)", fmt.Sprint(rng.Intn(10)))
	}
}

func genRelOp(rng *rand.Rand) string {
	return []string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)]
}
