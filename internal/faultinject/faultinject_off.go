//go:build !faultinject

package faultinject

// Enabled reports whether the build carries failpoint support.
const Enabled = false

// Arm is a no-op without the faultinject build tag.
func Arm(string, func()) {}

// Disarm is a no-op without the faultinject build tag.
func Disarm(string) {}

// Reset is a no-op without the faultinject build tag.
func Reset() {}

// Hit is a no-op without the faultinject build tag; it is small enough that
// the compiler inlines it away, so instrumented call sites cost nothing in
// production builds.
func Hit(string) {}
