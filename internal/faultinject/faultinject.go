//go:build faultinject

// Package faultinject is the chaos-testing failpoint registry. In default
// builds (no "faultinject" build tag) every function is an inlined no-op, so
// production binaries carry zero overhead and zero attack surface; under
// `go test -tags faultinject` the chaos tests arm failpoints by site name to
// force panics, delays and budget exhaustion at precise places inside the
// serving stack, proving the recovery paths actually run.
//
// Sites wired into the stack:
//
//	xpath.evaluate         — inside EvaluateWith's panic-guarded region
//	server.worker          — inside a pool worker, before running a job
//	store.batch.worker     — inside a batch worker, per claimed document
//	store.parallel         — inside an EvaluateParallel worker
//	store.wal.append       — between a WAL record's frame header and its
//	                         payload: a crash here leaves a torn record
//	store.snapshot.rename  — after the snapshot temp file is written and
//	                         fsynced, before the atomic rename installs it
package faultinject

import "sync"

// Enabled reports whether the build carries failpoint support.
const Enabled = true

var (
	mu    sync.Mutex
	sites = map[string]func(){}
)

// Arm installs f at the named site: every subsequent Hit(site) invokes it
// (panicking f's panic at the Hit call site, sleeping f's sleep, and so on)
// until Disarm or Reset. Arming replaces any previous function at the site.
func Arm(site string, f func()) {
	mu.Lock()
	defer mu.Unlock()
	sites[site] = f
}

// Disarm removes the failpoint at the named site.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, site)
}

// Reset removes every armed failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = map[string]func(){}
}

// Hit fires the failpoint armed at the named site, if any.
func Hit(site string) {
	mu.Lock()
	f := sites[site]
	mu.Unlock()
	if f != nil {
		f()
	}
}
