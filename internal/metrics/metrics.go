// Package metrics is the engine-wide observability substrate: a registry of
// cheap, concurrency-safe instruments that every layer of the evaluator
// reports into (plan cache, XML parse, batch fan-out, parallel split, public
// evaluations), with mergeable snapshots and ready-made export formats for
// the ROADMAP's query-service front-end.
//
// Three instrument kinds are provided:
//
//   - Counter — a monotonically increasing, cache-line-padded striped
//     counter: increments land on one of several padded cells chosen by a
//     per-thread random source, so concurrent writers (store batch workers,
//     parallel evaluation goroutines) do not serialize on one cache line;
//   - Gauge — a single instantaneous value (cache length, pool size) with
//     Set/Add/Max;
//   - Histogram — a fixed-bucket distribution with power-of-two buckets
//     (bucket i counts values in [2^(i-1), 2^i)), suited to nanosecond
//     latencies and node-set cardinalities alike. Snapshots are mergeable
//     across registries and subtractable for interval views.
//
// All instrument operations are allocation-free after creation, so they are
// safe to place on the pinned 0–2-alloc warm evaluation path. The exported
// views — Snapshot, WriteJSON (expvar-compatible), WritePrometheus and the
// human WriteText — serve the future HTTP front-end's /stats endpoint with
// no extra plumbing.
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// numStripes is the stripe count of a Counter: enough that a handful of
// worker goroutines rarely collide, small enough that a counter is 512 B.
// Must be a power of two.
const numStripes = 8

// stripe is one padded counter cell. The padding keeps adjacent stripes on
// distinct cache lines so concurrent Adds do not false-share.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	stripes [numStripes]stripe
}

// Add increments the counter by d (d must be non-negative for the exported
// formats to make sense; this is not checked). The stripe is chosen by the
// runtime's per-thread random source, so concurrent writers spread across
// cache lines instead of contending on one atomic.
func (c *Counter) Add(d int64) {
	c.stripes[rand.Uint64()&(numStripes-1)].v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total. The sum over stripes is not a
// single atomic snapshot; concurrent increments may or may not be included,
// which is the usual (and harmless) monotonic-counter semantics.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous value. The zero value is ready to use; all
// methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Max raises the gauge to v if v exceeds the current value — the high-water
// update used for scratch-memory marks.
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBuckets covers all non-negative int64 values: bucket 0 counts zeros,
// bucket i (1 ≤ i ≤ 63) counts values in [2^(i-1), 2^i).
const numBuckets = 64

// Histogram is a fixed-bucket distribution with power-of-two buckets. The
// zero value is ready to use; Observe is one atomic add plus one atomic add
// to the sum, with no allocation and no locking.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a value to its bucket index. Negative values (which the
// engine's instruments never produce, but a clock step could) clamp to 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper returns the exclusive upper bound of bucket i (inclusive for
// bucket 0, which holds only zeros).
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1 << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot returns the histogram's current state. Like Counter.Value it is
// not a single atomic cut, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: total count and
// sum plus the per-bucket counts. Snapshots are plain values — mergeable
// (Merge), subtractable (Sub, for interval views) and serializable.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets [numBuckets]int64 `json:"buckets"`
}

// Merge returns the element-wise sum of two snapshots — the distribution of
// the union of both observation streams.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Sub returns the snapshot of the observations made after prev was taken
// (assuming prev was taken from the same histogram earlier).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	return out
}

// Mean returns the arithmetic mean of the observed values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1): the geometric
// midpoint of the bucket holding the q·Count-th observation. Power-of-two
// buckets bound the relative error by √2.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			lo := float64(int64(1) << uint(i-1))
			return lo * math.Sqrt2 // geometric midpoint of [2^(i-1), 2^i)
		}
	}
	return float64(bucketUpper(numBuckets - 1))
}

// String summarizes the distribution for the human-readable dump.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("count=%d sum=%d mean=%.0f p50≈%.0f p90≈%.0f p99≈%.0f",
		s.Count, s.Sum, s.Mean(), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99))
}

// Registry is a named collection of instruments. Instruments are created on
// first use (Counter/Gauge/Histogram are get-or-create) and live for the
// registry's lifetime; lookups take a read lock, so hot paths should cache
// the returned instrument pointer in a package variable.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// std is the process-wide default registry every engine layer reports into.
var std = New()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time copy of a whole registry, serializable as
// JSON and mergeable/subtractable instrument-wise.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Sub returns the interval view: every counter and histogram reduced by its
// value in prev (gauges keep their instantaneous values).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.Sub(prev.Histograms[name])
	}
	return out
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// output in every export format.
//
//xpathlint:deterministic
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the registry as one JSON object mapping instrument names
// to values (histograms to their snapshot objects) — the flat shape expvar
// handlers serve, so the registry can stand in for /debug/vars.
//
//xpathlint:deterministic
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	flat := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		flat[name] = v
	}
	for name, v := range s.Gauges {
		flat[name] = v
	}
	for name, h := range s.Histograms {
		flat[name] = h
	}
	enc := json.NewEncoder(w)
	return enc.Encode(flat)
}

// Expvar returns the registry as an expvar.Func whose String() is the
// WriteJSON object, so callers can expvar.Publish("xpath", reg.Expvar())
// and serve the registry through the standard /debug/vars endpoint.
func (r *Registry) Expvar() expvar.Func {
	return expvar.Func(func() any {
		s := r.Snapshot()
		flat := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
		for name, v := range s.Counters {
			flat[name] = v
		}
		for name, v := range s.Gauges {
			flat[name] = v
		}
		for name, h := range s.Histograms {
			flat[name] = h
		}
		return flat
	})
}

// promName rewrites an instrument name into the Prometheus identifier
// charset ([a-zA-Z0-9_:]).
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (counters, gauges, and histograms with cumulative power-of-two
// le buckets), so the future HTTP front-end can serve /stats by calling
// this on the default registry.
//
//xpathlint:deterministic
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := promName(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, n := range h.Buckets {
			if n == 0 {
				continue
			}
			cum += n
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bucketUpper(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteText writes a sorted, human-readable dump of the registry — the
// format the CLI's -metrics flag prints.
//
//xpathlint:deterministic
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-44s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if _, err := fmt.Fprintf(w, "%-44s %s\n", name, s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}
