package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Counter.Value() = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Max(5)
	if got := g.Value(); got != 10 {
		t.Fatalf("Max(5) lowered the gauge to %d", got)
	}
	g.Max(25)
	if got := g.Value(); got != 25 {
		t.Fatalf("Max(25) = %d, want 25", got)
	}
	g.Add(-5)
	if got := g.Value(); got != 20 {
		t.Fatalf("Add(-5) = %d, want 20", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Zeros land in bucket 0; 1 in bucket 1 ([1,2)); 1000 in bucket 10
	// ([512,1024)); negatives clamp to bucket 0.
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(-7)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 0+1+1000-7 {
		t.Fatalf("Sum = %d, want 994", s.Sum)
	}
	if s.Buckets[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2 (zero and the clamped negative)", s.Buckets[0])
	}
	if s.Buckets[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", s.Buckets[1])
	}
	if s.Buckets[10] != 1 {
		t.Errorf("bucket 10 = %d, want 1 (1000 ∈ [512,1024))", s.Buckets[10])
	}
}

func TestHistogramQuantileAndMerge(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7: [64,128)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000) // bucket 17
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 64 || p50 > 128 {
		t.Errorf("p50 = %v, want within [64,128)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 65536 || p99 > 262144 {
		t.Errorf("p99 = %v, want within the 100000 bucket neighborhood", p99)
	}
	merged := s.Merge(s)
	if merged.Count != 2*s.Count || merged.Sum != 2*s.Sum {
		t.Errorf("Merge: count/sum = %d/%d, want doubled", merged.Count, merged.Sum)
	}
	if diff := merged.Sub(s); diff.Count != s.Count || diff.Sum != s.Sum {
		t.Errorf("Sub: count/sum = %d/%d, want original", diff.Count, diff.Sum)
	}
}

func TestRegistrySnapshotAndSub(t *testing.T) {
	r := New()
	r.Counter("a.hits").Add(3)
	r.Gauge("a.len").Set(7)
	r.Histogram("a.ns").Observe(100)

	prev := r.Snapshot()
	r.Counter("a.hits").Add(2)
	r.Histogram("a.ns").Observe(200)
	cur := r.Snapshot()

	if cur.Counters["a.hits"] != 5 {
		t.Fatalf("counter = %d, want 5", cur.Counters["a.hits"])
	}
	d := cur.Sub(prev)
	if d.Counters["a.hits"] != 2 {
		t.Errorf("interval counter = %d, want 2", d.Counters["a.hits"])
	}
	if d.Histograms["a.ns"].Count != 1 {
		t.Errorf("interval histogram count = %d, want 1", d.Histograms["a.ns"].Count)
	}
	if d.Gauges["a.len"] != 7 {
		t.Errorf("gauge should keep its instantaneous value, got %d", d.Gauges["a.len"])
	}
}

func TestRegistryGetOrCreateIsStable(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter get-or-create returned distinct instruments")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge get-or-create returned distinct instruments")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram get-or-create returned distinct instruments")
	}
}

func TestWriteJSONIsExpvarCompatible(t *testing.T) {
	r := New()
	r.Counter("plan.cache.hits").Add(4)
	r.Gauge("plan.cache.len").Set(2)
	r.Histogram("eval.ns").Observe(1234)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if flat["plan.cache.hits"].(float64) != 4 {
		t.Errorf("hits = %v, want 4", flat["plan.cache.hits"])
	}
	if _, ok := flat["eval.ns"].(map[string]any); !ok {
		t.Errorf("histogram should serialize as an object, got %T", flat["eval.ns"])
	}
	// The expvar.Func view must render the same object.
	if !strings.Contains(r.Expvar().String(), "plan.cache.hits") {
		t.Error("Expvar() output missing instrument name")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("plan.cache.hits").Add(4)
	r.Gauge("store.docs").Set(9)
	h := r.Histogram("eval.ns")
	h.Observe(100)
	h.Observe(100)
	h.Observe(100_000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE plan_cache_hits counter",
		"plan_cache_hits 4",
		"# TYPE store_docs gauge",
		"store_docs 9",
		"# TYPE eval_ns histogram",
		`eval_ns_bucket{le="128"} 2`,
		`eval_ns_bucket{le="+Inf"} 3`,
		"eval_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing.
	if !strings.Contains(out, `eval_ns_bucket{le="131072"} 3`) {
		t.Errorf("cumulative bucket for the 100000 observation missing:\n%s", out)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	var one, two bytes.Buffer
	if err := r.WriteText(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("WriteText output is not deterministic")
	}
	if strings.Index(one.String(), "a") > strings.Index(one.String(), "b") {
		t.Error("WriteText output is not sorted")
	}
}
