// Package bottomup implements the strict bottom-up evaluation E↑ of the
// predecessor paper [11], recalled in Section 2.3: the pure context-value
// table principle. For every parse-tree node, a table over *all* possible
// contexts is materialized — scalar-typed expressions over the full context
// domain C = {〈cn, cp, cs〉 | 1 ≤ cp ≤ cs ≤ |dom|} (the |dom|³ behavior
// Section 3.1 attributes to E↑), node-set-typed expressions as relations
// keyed by the context node. Tables of subexpressions are combined upward
// until the root's table yields the query result.
//
// The engine exists as the paper's baseline: MINCONTEXT's improvements are
// measured against its table sizes (experiment E7).
package bottomup

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// MaxCells bounds the total number of table cells a single evaluation may
// allocate (the |dom|³·|Q| tables grow quickly); exceeding it returns an
// error rather than exhausting memory. Zero means no bound.
var MaxCells int64 = 64 << 20

// ErrUnsupportedID rejects id() calls whose argument depends on the context
// position/size: strict E↑ would need a |C|-sized node-set table for them, a
// combination outside every fragment the paper evaluates. Historically this
// was a panic deep in table assembly; it is a plain evaluation error now.
var ErrUnsupportedID = fmt.Errorf("bottomup: id() with position-dependent argument is not supported by E↑ tables")

// Engine is the E↑ evaluator. The zero value is ready to use.
type Engine struct{}

// New returns a bottom-up E↑ engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (*Engine) Name() string { return "bottomup" }

// Evaluate implements engine.Engine.
func (*Engine) Evaluate(q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (values.Value, engine.Stats, error) {
	ev := &evaluator{
		doc:    doc,
		q:      q,
		n:      doc.Size(),
		nodes:  doc.NumNodes(),
		bud:    ctx.Budget,
		scalar: make([][]values.Value, q.Size()),
		nset:   make([][]*xmltree.Set, q.Size()),
	}
	// Scalar tables are dense over cn × {(cp,cs) | cp ≤ cs}; the maximum
	// context size is |dom|+1 because candidate lists over node() tests can
	// include the document root. A caller-supplied outer context may name a
	// larger size still (Options.Size is arbitrary); widen the tables to
	// cover it, or the root read below would index past the triangle. The
	// widening is bounded: the triangle is Θ(maxCS²) cells, and an absurd
	// context size must fail cleanly here rather than overflow tri and
	// slip past the MaxCells estimate below.
	ev.maxCS = ev.n + 1
	if ctx.Size > ev.maxCS {
		if ctx.Size > 1<<15 {
			return values.Value{}, engine.Stats{}, fmt.Errorf(
				"bottomup: context size %d exceeds the supported table range (%d)", ctx.Size, 1<<15)
		}
		ev.maxCS = ctx.Size
	}
	ev.tri = ev.maxCS * (ev.maxCS + 1) / 2
	if est := int64(ev.nodes) * int64(ev.tri) * int64(countScalarNodes(q)); MaxCells > 0 && est > MaxCells {
		return values.Value{}, engine.Stats{}, fmt.Errorf(
			"bottomup: table estimate %d cells exceeds limit %d (|dom|³ growth; use a smaller document)", est, MaxCells)
	}
	if err := ev.build(q.Root); err != nil {
		return values.Value{}, ev.st, err
	}
	// Read the result off the root's context-value table.
	root := q.Root
	if root.ResultType() == syntax.TypeNodeSet {
		return values.NodeSet(ev.nset[root.ID()][ctx.Node.Pre()]), ev.st, nil
	}
	return ev.scalar[root.ID()][ev.cellIndex(ctx.Node.Pre(), ctx.Pos, ctx.Size)], ev.st, nil
}

func countScalarNodes(q *syntax.Query) int {
	n := 0
	for _, e := range q.Nodes {
		if e.ResultType() != syntax.TypeNodeSet {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

type evaluator struct {
	doc   *xmltree.Document
	q     *syntax.Query
	n     int // |dom|
	nodes int // |dom| + 1 (document root)
	maxCS int // largest context size: |dom| + 1
	tri   int // number of (cp,cs) pairs

	scalar [][]values.Value // per parse node: cn × (cp,cs) → value
	nset   [][]*xmltree.Set // per parse node: cn → node set
	st     engine.Stats
	bud    *budget.Budget
}

// charge spends n budget steps; the table-building loops check it per
// context-node row, so a canceled evaluation stops within one row.
func (ev *evaluator) charge(n int64) error {
	if b := ev.bud; b != nil {
		return b.Step(n)
	}
	return nil
}

// cellIndex addresses the (cn, cp, cs) cell of a dense scalar table.
func (ev *evaluator) cellIndex(cnPre, cp, cs int) int {
	return cnPre*ev.tri + cs*(cs-1)/2 + (cp - 1)
}

// build fills table(e) for e and, first, all of its subexpressions.
func (ev *evaluator) build(e syntax.Expr) error {
	for _, c := range childExprs(e) {
		if err := ev.build(c); err != nil {
			return err
		}
	}
	if e.ResultType() == syntax.TypeNodeSet {
		return ev.buildNodeSet(e)
	}
	return ev.buildScalar(e)
}

// childExprs lists the direct subexpressions whose tables must exist before
// e's table can be assembled. For paths this includes every step's
// predicates (the steps themselves are processed inline by buildNodeSet).
func childExprs(e syntax.Expr) []syntax.Expr {
	switch e := e.(type) {
	case *syntax.Path:
		var out []syntax.Expr
		if e.Filter != nil {
			out = append(out, e.Filter)
		}
		out = append(out, e.FPreds...)
		for _, s := range e.Steps {
			out = append(out, s.Preds...)
		}
		return out
	case *syntax.Union:
		return e.Paths
	case *syntax.Binary:
		return []syntax.Expr{e.L, e.R}
	case *syntax.Negate:
		return []syntax.Expr{e.E}
	case *syntax.Call:
		return e.Args
	}
	return nil
}

// buildScalar fills the full |C|-sized context-value table of a scalar
// expression: one F[[Op]] application per context triple, exactly the
// strict bottom-up regime of Section 2.3.
func (ev *evaluator) buildScalar(e syntax.Expr) error {
	tab := make([]values.Value, ev.nodes*ev.tri)
	ev.scalar[e.ID()] = tab
	ev.st.TableCells += int64(len(tab))
	for cn := 0; cn < ev.nodes; cn++ {
		node := ev.doc.Node(cn)
		for cs := 1; cs <= ev.maxCS; cs++ {
			// Fuel maps to cells written: cs cells per (cn, cs) row.
			if err := ev.charge(int64(cs)); err != nil {
				return err
			}
			for cp := 1; cp <= cs; cp++ {
				ev.st.ContextsEvaluated++
				tab[ev.cellIndex(cn, cp, cs)] = ev.valueAt(e, node, cp, cs)
			}
		}
	}
	return nil
}

// valueAt computes one cell by combining the children's (already built)
// tables — it never recurses into subexpression evaluation.
func (ev *evaluator) valueAt(e syntax.Expr, cn *xmltree.Node, cp, cs int) values.Value {
	lookup := func(c syntax.Expr) values.Value {
		if c.ResultType() == syntax.TypeNodeSet {
			return values.NodeSet(ev.nset[c.ID()][cn.Pre()])
		}
		return ev.scalar[c.ID()][ev.cellIndex(cn.Pre(), cp, cs)]
	}
	switch e := e.(type) {
	case *syntax.NumberLit:
		return values.Number(e.Val)
	case *syntax.StringLit:
		return values.String(e.Val)
	case *syntax.Negate:
		return values.Number(-values.ToNumber(lookup(e.E)))
	case *syntax.Binary:
		l, r := lookup(e.L), lookup(e.R)
		switch {
		case e.Op == syntax.OpOr:
			return values.Boolean(values.ToBool(l) || values.ToBool(r))
		case e.Op == syntax.OpAnd:
			return values.Boolean(values.ToBool(l) && values.ToBool(r))
		case e.Op.IsRelational():
			return values.Boolean(values.Compare(e.Op, l, r))
		default:
			return values.Number(values.Arith(e.Op, values.ToNumber(l), values.ToNumber(r)))
		}
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnPosition:
			return values.Number(float64(cp))
		case syntax.FnLast:
			return values.Number(float64(cs))
		}
		args := make([]values.Value, len(e.Args))
		for i, a := range e.Args {
			args[i] = lookup(a)
		}
		v, err := values.Call(e.Fn, args, values.CallEnv{Doc: ev.doc, Node: cn})
		if err != nil {
			panic(err) // unreachable: signature checked at compile time
		}
		return v
	}
	panic("bottomup: valueAt: unhandled scalar expression")
}

// buildNodeSet fills the relation-shaped table of a node-set expression:
// for every possible context node, the resulting node set.
func (ev *evaluator) buildNodeSet(e syntax.Expr) error {
	tab := make([]*xmltree.Set, ev.nodes)
	ev.nset[e.ID()] = tab
	switch e := e.(type) {
	case *syntax.Union:
		for cn := 0; cn < ev.nodes; cn++ {
			if err := ev.charge(1); err != nil {
				return err
			}
			s := xmltree.NewSet(ev.doc)
			for _, p := range e.Paths {
				s.UnionWith(ev.nset[p.ID()][cn])
			}
			tab[cn] = s
			ev.st.TableCells += int64(s.Len())
		}
		return nil
	case *syntax.Path:
		return ev.buildPath(e, tab)
	case *syntax.Call:
		// id(s) with a scalar argument (the nset form was normalized away).
		// The argument is read from its (cp=1, cs=1) cells below, which is
		// only sound when it is context-position-independent; otherwise E↑
		// would need a |C|-sized nset table — a combination outside every
		// fragment the paper evaluates. Reject it up front (it used to be
		// detected one row into table assembly, as a panic).
		if ev.q.RelevOf(e.Args[0]).NeedsPosition() {
			return ErrUnsupportedID
		}
		for cn := 0; cn < ev.nodes; cn++ {
			if err := ev.charge(1); err != nil {
				return err
			}
			node := ev.doc.Node(cn)
			arg := ev.scalar[e.Args[0].ID()][ev.cellIndex(cn, 1, 1)]
			v, err := values.Call(e.Fn, []values.Value{arg}, values.CallEnv{Doc: ev.doc, Node: node})
			if err != nil {
				return err
			}
			tab[cn] = v.Set
			ev.st.TableCells += int64(v.Set.Len())
		}
		return nil
	}
	panic("bottomup: buildNodeSet: unhandled node-set expression")
}

// buildPath composes the per-step pair relations into the path's table.
func (ev *evaluator) buildPath(p *syntax.Path, tab []*xmltree.Set) error {
	// Step relations: M[x] = nodes selected by the step from source x,
	// filtered through the step's predicate tables.
	stepRel := func(step *syntax.Step) ([][]*xmltree.Node, error) {
		m := make([][]*xmltree.Node, ev.nodes)
		for x := 0; x < ev.nodes; x++ {
			if err := ev.charge(1); err != nil {
				return nil, err
			}
			cands := engine.Candidates(step.Axis, step.Test, ev.doc.Node(x), nil)
			for _, pred := range step.Preds {
				kept := cands[:0]
				size := len(cands)
				for j, y := range cands {
					v := ev.scalar[pred.ID()][ev.cellIndex(y.Pre(), j+1, size)]
					if values.ToBool(v) {
						kept = append(kept, y)
					}
				}
				cands = kept
			}
			m[x] = cands
			ev.st.TableCells += int64(len(cands))
		}
		ev.st.AxisCalls++
		return m, nil
	}

	// Start sets per context node.
	starts := make([]*xmltree.Set, ev.nodes)
	for cn := 0; cn < ev.nodes; cn++ {
		switch {
		case p.Abs:
			starts[cn] = xmltree.Singleton(ev.doc.Root())
		case p.Filter != nil:
			s := ev.nset[p.Filter.ID()][cn]
			nodes := s.Nodes()
			for _, pred := range p.FPreds {
				kept := nodes[:0]
				size := len(nodes)
				for j, y := range nodes {
					if values.ToBool(ev.scalar[pred.ID()][ev.cellIndex(y.Pre(), j+1, size)]) {
						kept = append(kept, y)
					}
				}
				nodes = kept
			}
			starts[cn] = xmltree.SetFromNodes(ev.doc, nodes)
		default:
			starts[cn] = xmltree.Singleton(ev.doc.Node(cn))
		}
	}

	// Compose the step relations over the start sets.
	cur := starts
	for _, step := range p.Steps {
		m, err := stepRel(step)
		if err != nil {
			return err
		}
		next := make([]*xmltree.Set, ev.nodes)
		for cn := 0; cn < ev.nodes; cn++ {
			if err := ev.charge(1); err != nil {
				return err
			}
			s := xmltree.NewSet(ev.doc)
			cur[cn].ForEach(func(x *xmltree.Node) {
				for _, y := range m[x.Pre()] {
					s.Add(y)
				}
			})
			next[cn] = s
			ev.st.TableCells += int64(s.Len())
		}
		cur = next
	}
	copy(tab, cur)
	return nil
}
