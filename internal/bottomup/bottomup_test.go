package bottomup

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func eval(t *testing.T, doc *xmltree.Document, src string) (values.Value, engine.Stats) {
	t.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, st, err := New().Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatalf("evaluate %q: %v", src, err)
	}
	return v, st
}

// TestFullTables: E↑ materializes the complete |C|-sized table for scalar
// subexpressions — the |dom|³ behavior §3.1 attributes to it.
func TestFullTables(t *testing.T) {
	doc := workload.Figure2() // |dom| = 9, plus root ⇒ 10 nodes, maxCS 10
	_, st := eval(t, doc, `position()`)
	// One scalar node: 10 (cn) × 55 (cp ≤ cs ≤ 10) = 550 cells.
	if st.TableCells != 550 {
		t.Errorf("position() table = %d cells, want 550 (= |C|)", st.TableCells)
	}
}

// TestCubicGrowth: scalar table cells grow cubically with |dom|.
func TestCubicGrowth(t *testing.T) {
	src := `position() != last()`
	var cells [2]int64
	for i, n := range []int{20, 40} {
		doc := workload.Scaled(n)
		_, st := eval(t, doc, src)
		cells[i] = st.TableCells
	}
	ratio := float64(cells[1]) / float64(cells[0])
	if ratio < 6 || ratio > 10 {
		t.Errorf("cell growth ratio %.1f for 2× |D|, want ≈8 (cubic)", ratio)
	}
}

// TestMaxCells: the guard fails cleanly instead of exhausting memory.
func TestMaxCells(t *testing.T) {
	doc := workload.Scaled(500)
	q, err := syntax.Compile(`//b[position() > 1]`)
	if err != nil {
		t.Fatal(err)
	}
	old := MaxCells
	MaxCells = 1000
	defer func() { MaxCells = old }()
	_, _, err = New().Evaluate(q, doc, engine.RootContext(doc))
	if err == nil {
		t.Fatal("expected a MaxCells error")
	}
}

// TestPathTables: node-set results are read per context node.
func TestPathTables(t *testing.T) {
	doc := workload.Figure2()
	q, err := syntax.Compile(`child::d`)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[string]int{"11": 1, "21": 2, "12": 0} {
		v, _, err := New().Evaluate(q, doc, engine.Context{Node: doc.ByID(id), Pos: 1, Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		if v.Set.Len() != want {
			t.Errorf("child::d from x%s: %d nodes, want %d", id, v.Set.Len(), want)
		}
	}
}

// TestScalarResultAtContext: scalar roots honor the full input context.
func TestScalarResultAtContext(t *testing.T) {
	doc := workload.Figure2()
	q, err := syntax.Compile(`position() * 10 + last()`)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := New().Evaluate(q, doc, engine.Context{Node: doc.ByID("12"), Pos: 2, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	if v.Num != 23 {
		t.Errorf("got %v, want 23", v.Num)
	}
}

// TestPolynomialOnDoublingQuery: E↑ is immune to the naive blowup.
func TestPolynomialOnDoublingQuery(t *testing.T) {
	doc := workload.Doubling()
	var prev int64
	for i := 2; i <= 6; i++ {
		_, st := eval(t, doc, workload.DoublingQuery(i))
		if i > 2 && prev > 0 {
			if ratio := float64(st.ContextsEvaluated) / float64(prev); ratio > 1.7 {
				t.Errorf("step %d: ratio %.2f suggests exponential growth", i, ratio)
			}
		}
		prev = st.ContextsEvaluated
	}
}

// TestUnionAndFilterTables: union node tables and filter-headed paths.
func TestUnionAndFilterTables(t *testing.T) {
	doc := workload.Figure2()
	if v, _ := eval(t, doc, `//c | //d`); v.Set.Len() != 6 {
		t.Errorf("union: %s", v.Set)
	}
	if v, _ := eval(t, doc, `(//b)[2]/child::d`); v.Set.Len() != 2 {
		t.Errorf("filter path: %s", v.Set)
	}
	if v, _ := eval(t, doc, `id("11 21")/child::c`); v.Set.Len() != 3 {
		t.Errorf("id call: %s", v.Set)
	}
}

// TestPositionDependentIDIsError: id() whose argument depends on the
// context position is outside every fragment E↑ tables cover. Before the
// fix this was a panic("bottomup: id() with position-dependent argument…")
// raised one row into table assembly — a compilable query could crash the
// process; it must be a plain evaluation error.
func TestPositionDependentIDIsError(t *testing.T) {
	doc := workload.Figure2()
	for _, src := range []string{
		`id(string(position()))`,
		`id(concat("1", string(last())))/child::c`,
	} {
		q, err := syntax.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("evaluate %q panicked: %v", src, r)
			}
		}()
		_, _, err = New().Evaluate(q, doc, engine.RootContext(doc))
		if !errors.Is(err, ErrUnsupportedID) {
			t.Errorf("evaluate %q: err = %v, want ErrUnsupportedID", src, err)
		}
	}
}

// TestAbsolutePathsIgnoreContext: /π from any context node.
func TestAbsolutePathsIgnoreContext(t *testing.T) {
	doc := workload.Figure2()
	q, err := syntax.Compile(`/child::a/child::b`)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"12", "24"} {
		v, _, err := New().Evaluate(q, doc, engine.Context{Node: doc.ByID(id), Pos: 1, Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		if v.Set.Len() != 2 {
			t.Errorf("from x%s: %s", id, v.Set)
		}
	}
}
