package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderAggregates(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindOpcode, Name: "step", Block: 0, PC: 2, In: 5, Out: 3, Ns: 100})
	r.Emit(Event{Kind: KindOpcode, Name: "step", Block: 0, PC: 2, In: 7, Out: 4, Ns: 50, HighWater: 64})
	r.Emit(Event{Kind: KindOpcode, Name: "step", Block: 1, PC: 9, In: CardUnknown, Out: 1, Ns: 25})
	r.Emit(Event{Kind: KindEval, Name: "compiled", In: CardUnknown, Out: 3, Ns: 400})

	rows := r.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (same (kind,name,block,pc) must aggregate)", len(rows))
	}
	first := rows[0]
	if first.Calls != 2 || first.In != 12 || first.Out != 7 || first.Ns != 150 {
		t.Errorf("aggregated row = %+v, want calls=2 in=12 out=7 ns=150", first)
	}
	if first.HighWater != 64 {
		t.Errorf("HighWater = %d, want max 64", first.HighWater)
	}
	if rows[1].In != 0 {
		t.Errorf("CardUnknown input must not be summed, got %d", rows[1].In)
	}
	if got := r.TotalNs(KindOpcode); got != 175 {
		t.Errorf("TotalNs(KindOpcode) = %d, want 175", got)
	}

	r.Reset()
	if len(r.Rows()) != 0 {
		t.Error("Reset did not clear the recorder")
	}
}

// TestRecorderConcurrent pins the shared-tracer contract: one Recorder may
// be used from many goroutines at once (the store batch hands one tracer to
// every worker). Run under -race in CI.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Emit(Event{Kind: KindStep, Name: "child::b", In: 1, Out: 1, Ns: 1})
				if i%100 == 0 {
					_ = r.Rows()
				}
			}
		}(g)
	}
	wg.Wait()
	rows := r.Rows()
	if len(rows) != 1 || rows[0].Calls != goroutines*perG {
		t.Fatalf("rows = %+v, want one row with %d calls", rows, goroutines*perG)
	}
}

func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
}

func TestRender(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindEval, Name: "compiled", In: CardUnknown, Out: 3, Ns: 400})
	r.Emit(Event{Kind: KindOpcode, Name: "step", Block: 0, PC: 2, In: 5, Out: 3, Ns: 100, HighWater: 128})
	r.Emit(Event{Kind: KindStep, Name: "child::c", In: 4, Out: 2, Ns: 80})
	out := Render(r.Rows())
	for _, want := range []string{"trace:", "eval", "b0/02 step", "child::c", "calls=", "scratch=128B"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// eval (a root span) must precede the opcode rows.
	if strings.Index(out, "eval") > strings.Index(out, "opcode") {
		t.Errorf("root span should render before opcode spans:\n%s", out)
	}
}
