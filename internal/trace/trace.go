// Package trace is the per-evaluation observability layer: an optional
// Tracer that the plan VM, the set-at-a-time engines and the batch/parallel
// fan-out report spans into — per-opcode and per-location-step events with
// input/output node-set cardinalities, scratch high-water marks and
// monotonic nanosecond timings.
//
// The tracer is strictly opt-in: every instrumented site guards its
// reporting with a nil check, so a nil Tracer costs one predicted branch and
// zero allocations on the warm evaluation path (pinned by the AllocsPerRun
// guards in internal/plan and internal/axes). When a Tracer is present the
// engines pay two monotonic clock reads and one Emit per span.
//
// Ownership rules mirror the axes.Scratch rules: a Recorder may be reused
// across any number of evaluations (Reset between them to start fresh), and
// — unlike a Scratch — it MAY be shared between goroutines: Emit is
// internally synchronized, so one Recorder can observe a whole store batch
// across all its workers.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a span.
type Kind uint8

// The span kinds, in the order the renderer groups them.
const (
	// KindParse is one XML parse (document build).
	KindParse Kind = iota
	// KindCompile is one query compilation (lex/parse/analyze/plan).
	KindCompile
	// KindEval is one whole evaluation (the root span of a trace tree).
	KindEval
	// KindStep is one set-at-a-time location step of an interpreting engine
	// (corexpath forward steps, core outermost-path steps).
	KindStep
	// KindSat is one satisfaction-set / bottom-up propagation pass
	// (corexpath pathSat, core evalBottomupPath).
	KindSat
	// KindOpcode is one plan-VM instruction execution.
	KindOpcode
	// KindBatchDoc is one document of a store batch.
	KindBatchDoc
	// KindSplit is one EvaluateParallel split decision (Name says which).
	KindSplit
	// KindMerge is the document-order merge of EvaluateParallel.
	KindMerge
)

var kindNames = [...]string{
	KindParse: "parse", KindCompile: "compile", KindEval: "eval",
	KindStep: "step", KindSat: "sat", KindOpcode: "opcode",
	KindBatchDoc: "batch-doc", KindSplit: "split", KindMerge: "merge",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one reported span. In and Out are node-set cardinalities
// (CardUnknown when the span has no set input/output); HighWater is the
// axis-kernel scratch arena's high-water mark in bytes at the time of the
// span; Block/PC locate VM opcodes inside their program (both 0 outside the
// VM).
type Event struct {
	Kind      Kind
	Name      string
	Block, PC int
	In, Out   int
	Ns        int64
	HighWater int64
}

// CardUnknown marks an In/Out cardinality that does not apply to the span.
const CardUnknown = -1

// Tracer receives spans. Implementations must be safe for concurrent use
// when shared across goroutines (the store batch fan-out hands one tracer
// to every worker). Emit must not retain the event beyond the call.
type Tracer interface {
	Emit(Event)
}

// base anchors the package's monotonic clock; time.Since reads the
// monotonic reading of base, so Now never goes backwards.
var base = time.Now()

// Now returns monotonic nanoseconds since an arbitrary process-local epoch.
func Now() int64 { return int64(time.Since(base)) }

// Row is the aggregation of every event sharing (Kind, Name, Block, PC):
// call count, summed cardinalities and nanoseconds, and the maximum
// scratch high-water mark.
type Row struct {
	Kind      Kind
	Name      string
	Block, PC int
	Calls     int64
	In, Out   int64 // summed cardinalities (CardUnknown inputs excluded)
	Ns        int64
	HighWater int64 // max over the aggregated events
}

// rowKey identifies one aggregation row.
type rowKey struct {
	kind      Kind
	name      string
	block, pc int
}

// Recorder is the standard Tracer: it aggregates events by
// (Kind, Name, Block, PC) under a mutex, so predicate blocks that execute
// thousands of opcode spans stay O(program size) in memory, and one
// Recorder can be shared across batch workers. The zero value is ready to
// use.
type Recorder struct {
	mu    sync.Mutex
	index map[rowKey]int
	rows  []Row
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	k := rowKey{e.Kind, e.Name, e.Block, e.PC}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.index == nil {
		r.index = make(map[rowKey]int)
	}
	i, ok := r.index[k]
	if !ok {
		i = len(r.rows)
		r.index[k] = i
		r.rows = append(r.rows, Row{Kind: e.Kind, Name: e.Name, Block: e.Block, PC: e.PC})
	}
	row := &r.rows[i]
	row.Calls++
	if e.In != CardUnknown {
		row.In += int64(e.In)
	}
	if e.Out != CardUnknown {
		row.Out += int64(e.Out)
	}
	row.Ns += e.Ns
	if e.HighWater > row.HighWater {
		row.HighWater = e.HighWater
	}
}

// Rows returns a copy of the aggregated rows in first-emission order.
func (r *Recorder) Rows() []Row {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Row, len(r.rows))
	copy(out, r.rows)
	return out
}

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.index = nil
	r.rows = nil
}

// TotalNs sums the nanoseconds of every row of the given kind.
func (r *Recorder) TotalNs(k Kind) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ns int64
	for i := range r.rows {
		if r.rows[i].Kind == k {
			ns += r.rows[i].Ns
		}
	}
	return ns
}

// Render returns the human-readable trace tree the CLI's -analyze flag
// prints: root spans (parse, compile, eval, batch documents) at the top
// level, per-step / per-sat / per-opcode spans indented beneath. Rows are
// ordered by kind, then block/pc, then first-emission order, so the output
// is deterministic for a deterministic evaluation.
//
//xpathlint:deterministic
func Render(rows []Row) string {
	var b strings.Builder
	ordered := make([]Row, len(rows))
	copy(ordered, rows)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Kind != ordered[j].Kind {
			return ordered[i].Kind < ordered[j].Kind
		}
		if ordered[i].Block != ordered[j].Block {
			return ordered[i].Block < ordered[j].Block
		}
		return ordered[i].PC < ordered[j].PC
	})
	b.WriteString("trace:\n")
	for _, row := range ordered {
		indent := "  "
		switch row.Kind {
		case KindStep, KindSat, KindOpcode, KindMerge, KindSplit:
			indent = "  |- "
		}
		fmt.Fprintf(&b, "%s%s\n", indent, row.describe())
	}
	return b.String()
}

// describe renders one row.
func (row Row) describe() string {
	var b strings.Builder
	name := row.Name
	if row.Kind == KindOpcode {
		name = fmt.Sprintf("b%d/%02d %s", row.Block, row.PC, row.Name)
	}
	fmt.Fprintf(&b, "%-9s %-36s calls=%-6d ns=%-10d", row.Kind, name, row.Calls, row.Ns)
	fmt.Fprintf(&b, " in=%-7d out=%-7d", row.In, row.Out)
	if row.HighWater > 0 {
		fmt.Fprintf(&b, " scratch=%dB", row.HighWater)
	}
	return b.String()
}
