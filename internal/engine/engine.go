// Package engine defines what all six evaluators in this repository share:
// the evaluation context of Section 2.2, the Engine interface, the
// instrumentation counters backing the space experiments (context-value
// table cells are the quantity Theorems 7 and 10 bound), and small helpers
// for node tests and step images that keep the per-engine code close to the
// paper's pseudo-code.
package engine

import (
	"fmt"

	"repro/internal/axes"
	"repro/internal/budget"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Context is an XPath evaluation context 〈cn, cp, cs〉 (§2.2). Pos and Size
// are 1-based; engines that support the wildcard contexts of the Section 6
// pseudo-code use 0 to mean "∗" (irrelevant).
//
// Tracer, when non-nil, receives per-step / per-opcode spans from the
// engines that support tracing (the plan VM, corexpath, core); a nil Tracer
// is the strictly zero-cost default — every instrumented site guards its
// reporting with one nil check, pinned allocation-free by the AllocsPerRun
// guards.
//
// Budget, when non-nil, is checked in every engine's main loop (VM block
// entries, per-step set loops, per-context recursions), so cancellation,
// deadlines and step limits interrupt an evaluation mid-flight. It follows
// the same contract as Tracer: nil costs one predicted nil check per site,
// and a live Budget stays within the pinned allocation counts.
type Context struct {
	Node   *xmltree.Node
	Pos    int
	Size   int
	Tracer trace.Tracer
	Budget *budget.Budget
}

// RootContext returns the default outermost context 〈root, 1, 1〉.
func RootContext(doc *xmltree.Document) Context {
	return Context{Node: doc.Root(), Pos: 1, Size: 1}
}

// Stats instruments one evaluation. TableCells counts every context-value
// table cell written — the exact quantity the paper's space theorems bound.
// ContextsEvaluated counts single-context expression evaluations (the time
// proxy), and AxisCalls counts set-at-a-time axis function applications.
type Stats struct {
	TableCells        int64
	ContextsEvaluated int64
	AxisCalls         int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.TableCells += other.TableCells
	s.ContextsEvaluated += other.ContextsEvaluated
	s.AxisCalls += other.AxisCalls
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("cells=%d contexts=%d axis-calls=%d",
		s.TableCells, s.ContextsEvaluated, s.AxisCalls)
}

// Engine is one of the evaluation algorithms of the paper (or of its
// predecessor [11], or the exponential comparator of §1).
type Engine interface {
	// Name returns the engine's identifier as used by the CLI and benches.
	Name() string
	// Evaluate evaluates the compiled query against the document in the
	// given context, returning the result value and the instrumentation
	// counters for this evaluation. Implementations are deterministic and
	// safe for concurrent use on immutable documents.
	Evaluate(q *syntax.Query, doc *xmltree.Document, ctx Context) (values.Value, Stats, error)
}

// MatchTest reports whether node n passes node test t. The document root is
// matched only by node() — it is not part of dom (§2.1, cf. the running
// example where dom excludes the root).
//
//xpathlint:noalloc
func MatchTest(t syntax.NodeTest, n *xmltree.Node) bool {
	switch t.Kind {
	case syntax.TestNode:
		return true
	case syntax.TestStar:
		return !n.IsRoot()
	default:
		return n.Label() == t.Name
	}
}

// TestSet returns T(t) as a set: the nodes passing the node test. The
// result is shared for TestName/TestStar/TestNode (cached on the document);
// callers must not modify it.
func TestSet(doc *xmltree.Document, t syntax.NodeTest) *xmltree.Set {
	switch t.Kind {
	case syntax.TestNode:
		return doc.AllNodes()
	case syntax.TestStar:
		return doc.AllElements()
	default:
		return doc.LabelSet(t.Name)
	}
}

// StepImage computes "nodes reachable from X via χ::t" (the Y of the
// Section 6 pseudo-code): χ(X) ∩ T(t), in O(|D|), allocating the result.
// Hot paths use StepImageInto with a reused destination and Scratch.
func StepImage(st *Stats, a axes.Axis, t syntax.NodeTest, x *xmltree.Set) *xmltree.Set {
	y := xmltree.NewSet(x.Document())
	StepImageInto(st, y, a, t, x, nil)
	return y
}

// StepImageInto is the fused, allocation-free form of StepImage: the axis
// kernel writes χ(X) into dst (cleared first) and the node test is applied
// as one word-parallel bitset intersection instead of a per-node filter.
// dst is caller-owned and must not alias x or a shared document set.
//
//xpathlint:noalloc
func StepImageInto(st *Stats, dst *xmltree.Set, a axes.Axis, t syntax.NodeTest, x *xmltree.Set, sc *axes.Scratch) {
	st.AxisCalls++
	var test *xmltree.Set
	if t.Kind != syntax.TestNode {
		test = TestSet(x.Document(), t)
	}
	axes.ApplyTest(dst, a, x, test, sc)
}

// Candidates returns the ordered candidate list of step χ::t from a single
// context node x: Neighborhood(χ, x) filtered by t, in the <doc,χ order
// that makes idxχ the 1-based slice index. The list is appended to dst and
// filtered in place, so a reused buffer with capacity makes the call
// allocation-free.
//
//xpathlint:noalloc
func Candidates(a axes.Axis, t syntax.NodeTest, x *xmltree.Node, dst []*xmltree.Node) []*xmltree.Node {
	base := len(dst)
	dst = axes.Neighborhood(a, x, dst)
	if t.Kind == syntax.TestNode {
		return dst
	}
	kept := dst[:base]
	for _, n := range dst[base:] {
		if MatchTest(t, n) {
			kept = append(kept, n)
		}
	}
	return kept
}

// CandidatesWithin returns Candidates restricted to members of keep,
// preserving order. Used where the pseudo-code writes Z := {z ∈ Y | x χ z}.
//
//xpathlint:noalloc
func CandidatesWithin(a axes.Axis, t syntax.NodeTest, x *xmltree.Node, keep *xmltree.Set, dst []*xmltree.Node) []*xmltree.Node {
	base := len(dst)
	dst = axes.Neighborhood(a, x, dst)
	kept := dst[:base]
	for _, n := range dst[base:] {
		if MatchTest(t, n) && keep.Has(n) {
			kept = append(kept, n)
		}
	}
	return kept
}
