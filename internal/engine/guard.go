package engine

import (
	"fmt"
	"runtime/debug"

	"repro/internal/budget"
	"repro/internal/metrics"
)

// mPanics counts recovered evaluation panics process-wide — the "engine
// survived a crash" signal the serving layer alarms on.
var mPanics = metrics.Default().Counter("engine.panics")

// EvalPanicError is a panic recovered at an evaluation boundary: the
// panicked value plus the goroutine stack captured at recovery time. The
// serving layer maps it to a 500 while the process keeps serving; the stack
// makes the report actionable without crashing anything.
type EvalPanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted stack of the panicking goroutine.
	Stack []byte
}

// Error implements error.
func (e *EvalPanicError) Error() string {
	return fmt.Sprintf("xpath: evaluation panicked: %v", e.Value)
}

// RecoverPanic is the deferred panic guard of every evaluation boundary
// (public EvaluateWith, server pool workers, store batch and parallel
// goroutines): it converts an in-flight panic into an *EvalPanicError in
// *errp and counts it, so one crashing evaluation cannot take down its
// process. Budget bails that escaped an engine's own RecoverBail are
// translated into their plain budget error instead of a panic report.
//
//	defer engine.RecoverPanic(&err)
func RecoverPanic(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if err, ok := budget.FromPanic(r); ok {
		*errp = err
		return
	}
	mPanics.Inc()
	*errp = &EvalPanicError{Value: r, Stack: debug.Stack()}
}
