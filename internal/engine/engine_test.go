package engine

import (
	"testing"

	"repro/internal/axes"
	"repro/internal/syntax"
	"repro/internal/xmltree"
)

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(`<a id="1"><b id="2"/><c id="3"><b id="4"/></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMatchTest(t *testing.T) {
	d := doc(t)
	root := d.Root()
	a := d.ByID("1")
	b := d.ByID("2")

	name := syntax.NodeTest{Kind: syntax.TestName, Name: "b"}
	star := syntax.NodeTest{Kind: syntax.TestStar}
	node := syntax.NodeTest{Kind: syntax.TestNode}

	if MatchTest(name, a) || !MatchTest(name, b) {
		t.Error("name test wrong")
	}
	if MatchTest(star, root) || !MatchTest(star, a) {
		t.Error("star test wrong: must exclude the document root")
	}
	if !MatchTest(node, root) || !MatchTest(node, b) {
		t.Error("node() must match everything including the root")
	}
}

func TestTestSet(t *testing.T) {
	d := doc(t)
	if got := TestSet(d, syntax.NodeTest{Kind: syntax.TestName, Name: "b"}).Len(); got != 2 {
		t.Errorf("|T(b)| = %d", got)
	}
	if got := TestSet(d, syntax.NodeTest{Kind: syntax.TestStar}).Len(); got != 4 {
		t.Errorf("|T(*)| = %d", got)
	}
	if got := TestSet(d, syntax.NodeTest{Kind: syntax.TestNode}).Len(); got != 5 {
		t.Errorf("|node()| = %d", got)
	}
}

func TestStepImage(t *testing.T) {
	d := doc(t)
	var st Stats
	x := xmltree.Singleton(d.ByID("1"))
	y := StepImage(&st, axes.Descendant, syntax.NodeTest{Kind: syntax.TestName, Name: "b"}, x)
	if y.Len() != 2 {
		t.Errorf("descendant::b from a: %v", y)
	}
	if st.AxisCalls != 1 {
		t.Errorf("AxisCalls = %d", st.AxisCalls)
	}
}

func TestCandidatesOrder(t *testing.T) {
	d := doc(t)
	// preceding from b#4: nodes before it, reverse document order.
	got := Candidates(axes.Preceding, syntax.NodeTest{Kind: syntax.TestStar}, d.ByID("4"), nil)
	if len(got) != 1 {
		t.Fatalf("preceding::* from b#4: %d nodes", len(got))
	}
	if id, _ := got[0].Attr("id"); id != "2" {
		t.Errorf("first preceding = %s", id)
	}
	// CandidatesWithin keeps order and filters.
	keep := xmltree.Singleton(d.ByID("4"))
	within := CandidatesWithin(axes.Descendant, syntax.NodeTest{Kind: syntax.TestName, Name: "b"},
		d.ByID("1"), keep, nil)
	if len(within) != 1 || within[0] != d.ByID("4") {
		t.Errorf("CandidatesWithin: %v", within)
	}
}

func TestRootContext(t *testing.T) {
	d := doc(t)
	ctx := RootContext(d)
	if ctx.Node != d.Root() || ctx.Pos != 1 || ctx.Size != 1 {
		t.Errorf("RootContext = %+v", ctx)
	}
}

func TestStatsAddString(t *testing.T) {
	a := Stats{TableCells: 1, ContextsEvaluated: 2, AxisCalls: 3}
	a.Add(Stats{TableCells: 10, ContextsEvaluated: 20, AxisCalls: 30})
	if a.TableCells != 11 || a.ContextsEvaluated != 22 || a.AxisCalls != 33 {
		t.Errorf("Add: %+v", a)
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}
