package core

import (
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// evalOutermostLocpath is the procedure eval_outermost_locpath of
// Section 6: it evaluates a location path that does not occur inside
// another expression, representing intermediate results as plain node sets
// ⊆ dom instead of dom × 2^dom relations (the "special treatment of
// location paths on the outermost level" of Section 3.1).
func (ev *evaluation) evalOutermostLocpath(e syntax.Expr, x *xmltree.Set) *xmltree.Set {
	switch e := e.(type) {
	case *syntax.Union:
		// expr(N) = π1 | π2:  Y1 ∪ Y2.
		out := xmltree.NewSet(ev.doc)
		for _, p := range e.Paths {
			out.UnionWith(ev.evalOutermostLocpath(p, x))
		}
		return out
	case *syntax.Path:
		cur := x
		switch {
		case e.Abs:
			// expr(N) = /π: restart from {root}.
			cur = xmltree.Singleton(ev.doc.Root())
		case e.Filter != nil:
			cur = ev.filterHeadSet(e, x)
		}
		// expr(N) = π1/π2 is handled by the step chain; each location step
		// is the pseudo-code's χ::t[e1]…[eq] case.
		for _, step := range e.Steps {
			cur = ev.stepForward(step, cur)
		}
		return cur
	}
	panic("core: evalOutermostLocpath: not a location path")
}

// stepForward applies one location step to a set of context nodes and
// returns the union of the selected nodes — the R := R ∪ Z accumulation of
// the pseudo-code's outermost case.
func (ev *evaluation) stepForward(step *syntax.Step, x *xmltree.Set) *xmltree.Set {
	var t0 int64
	if ev.inCtx.Tracer != nil {
		t0 = trace.Now()
	}
	out := xmltree.NewSet(ev.doc)
	ev.stepMap(step, x, func(_ *xmltree.Node, sel []*xmltree.Node) {
		for _, z := range sel {
			out.Add(z)
		}
	})
	if tr := ev.inCtx.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.KindStep, Name: step.String(),
			In: x.Len(), Out: out.Len(), Ns: trace.Now() - t0,
			HighWater: ev.sc.HighWater(),
		})
	}
	return out
}

// stepMap evaluates the location step χ::t[e1]…[eq] from every context node
// x ∈ X and reports the selected candidates per x. It implements the shared
// core of the pseudo-code's step cases:
//
//	Y := nodes reachable from X via χ::t;
//	for i := 1 to q do eval_by_cnode_only(node(ei), Y);
//	if no ei depends on cp/cs:  filter Y by single-context predicate checks;
//	else: per x, loop over the ordered candidate list with 〈zj, j, m〉.
func (ev *evaluation) stepMap(step *syntax.Step, x *xmltree.Set, emit func(x *xmltree.Node, selected []*xmltree.Node)) {
	ev.charge(1)
	y := xmltree.NewSet(ev.doc)
	engine.StepImageInto(&ev.st, y, step.Axis, step.Test, x, ev.sc)
	needsPos := false
	for _, pred := range step.Preds {
		ev.evalByCnodeOnly(pred, ev.cnodeArg(pred, y))
		if ev.relevOf(pred).NeedsPosition() {
			needsPos = true
		}
	}

	if !needsPos {
		// All predicates are independent of the context position/size:
		// filter the image once, then distribute per context node.
		sat := y
		if len(step.Preds) > 0 {
			sat = xmltree.NewSet(ev.doc)
			y.ForEach(func(n *xmltree.Node) {
				if ev.predsHold(step.Preds, n) {
					sat.Add(n)
				}
			})
		}
		var buf []*xmltree.Node
		x.ForEach(func(xn *xmltree.Node) {
			buf = engine.CandidatesWithin(step.Axis, step.Test, xn, sat, buf[:0])
			emit(xn, buf)
		})
		return
	}

	// At least one predicate depends on cp or cs: loop over all pairs of
	// previous/current context node with positions idxχ(z, Z).
	var buf []*xmltree.Node
	x.ForEach(func(xn *xmltree.Node) {
		z := engine.Candidates(step.Axis, step.Test, xn, buf[:0])
		for _, pred := range step.Preds {
			m := len(z)
			kept := z[:0]
			for j, cand := range z {
				if values.ToBool(ev.evalSingleContext(pred, cand, j+1, m)) {
					kept = append(kept, cand)
				}
			}
			z = kept
		}
		emit(xn, z)
		buf = z[:0]
	})
}

// predsHold checks position-independent predicates at the wildcard context
// 〈y, ∗, ∗〉.
func (ev *evaluation) predsHold(preds []syntax.Expr, y *xmltree.Node) bool {
	for _, pred := range preds {
		if !values.ToBool(ev.evalSingleContext(pred, y, 0, 0)) {
			return false
		}
	}
	return true
}

// evalByCnodeOnly is the procedure eval_by_cnode_only of Section 6: for
// every node M in the subtree rooted at N whose expression does not depend
// on the current context position/size, it fills table(M) for the context
// nodes in X (nil X is the wildcard "∗").
func (ev *evaluation) evalByCnodeOnly(e syntax.Expr, x *xmltree.Set) {
	ev.charge(1)
	if ev.filled(e, x) {
		return // already tabled (bottom-up pre-pass, or an earlier call)
	}
	r := ev.relevOf(e)

	// Case 1: expr(N) depends on cp/cs — recurse into children, no table.
	// For location paths this situation arises only through a filter head
	// that consumes the context position (outside the paper's grammar);
	// the head's position-independent subtrees still need their tables.
	// Step and filter predicates are tabled later, against their candidate
	// sets, by stepMap and filterNodeList.
	if r.NeedsPosition() {
		switch e := e.(type) {
		case *syntax.Path:
			if e.Filter != nil {
				ev.evalByCnodeOnly(e.Filter, ev.cnodeArg(e.Filter, x))
			}
		case *syntax.Union:
			for _, p := range e.Paths {
				ev.evalByCnodeOnly(p, ev.cnodeArg(p, x))
			}
		default:
			for _, c := range directChildren(e) {
				ev.evalByCnodeOnly(c, ev.cnodeArg(c, x))
			}
		}
		return
	}

	// Case 2: expr(N) is a location path — table(N) := eval_inner_locpath.
	if isLocationPath(e) {
		ev.evalInnerLocpath(e, x)
		return
	}

	// Case 3: expr(N) = Op(e1, …, ek) — combine the children's tables.
	for _, c := range directChildren(e) {
		ev.evalByCnodeOnly(c, ev.cnodeArg(c, x))
	}
	if !r.Has(syntax.CN) {
		ev.store(e, wildcardKey, ev.combine(e, ev.doc.Root()))
		return
	}
	x.ForEach(func(n *xmltree.Node) {
		ev.store(e, n.Pre(), ev.combine(e, n))
	})
}

// directChildren lists the children evalByCnodeOnly recurses into for
// non-path nodes. (Paths manage their own subtrees via evalInnerLocpath.)
func directChildren(e syntax.Expr) []syntax.Expr {
	switch e := e.(type) {
	case *syntax.Binary:
		return []syntax.Expr{e.L, e.R}
	case *syntax.Negate:
		return []syntax.Expr{e.E}
	case *syntax.Call:
		return e.Args
	}
	return nil
}

// combine computes F[[Op]](r1, …, rk) for one context node from the
// children's tables — the table(N) assembly step of eval_by_cnode_only.
func (ev *evaluation) combine(e syntax.Expr, cn *xmltree.Node) values.Value {
	ev.charge(1)
	ev.st.ContextsEvaluated++
	switch e := e.(type) {
	case *syntax.NumberLit:
		return values.Number(e.Val)
	case *syntax.StringLit:
		return values.String(e.Val)
	case *syntax.Negate:
		return values.Number(-values.ToNumber(ev.lookup(e.E, cn)))
	case *syntax.Binary:
		l, r := ev.lookup(e.L, cn), ev.lookup(e.R, cn)
		switch {
		case e.Op == syntax.OpOr:
			return values.Boolean(values.ToBool(l) || values.ToBool(r))
		case e.Op == syntax.OpAnd:
			return values.Boolean(values.ToBool(l) && values.ToBool(r))
		case e.Op.IsRelational():
			return values.Boolean(values.Compare(e.Op, l, r))
		default:
			return values.Number(values.Arith(e.Op, values.ToNumber(l), values.ToNumber(r)))
		}
	case *syntax.Call:
		args := make([]values.Value, len(e.Args))
		for i, a := range e.Args {
			args[i] = ev.lookup(a, cn)
		}
		v, err := values.Call(e.Fn, args, values.CallEnv{Doc: ev.doc, Node: cn})
		if err != nil {
			panic(err) // unreachable: signature checked at compile time
		}
		return v
	}
	panic("core: combine: unhandled operator node")
}

// evalSingleContext is the procedure eval_single_context of Section 6: it
// evaluates expr(N) for a single context 〈cn, cp, cs〉, where cp/cs may be
// 0 for the wildcard "∗". It requires that eval_by_cnode_only has been run
// for N (with a covering context-node set) beforehand.
func (ev *evaluation) evalSingleContext(e syntax.Expr, cn *xmltree.Node, cp, cs int) values.Value {
	ev.charge(1)
	ev.st.ContextsEvaluated++
	if !ev.relevOf(e).NeedsPosition() {
		return ev.lookup(e, cn)
	}
	switch e := e.(type) {
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnPosition:
			return values.Number(float64(cp))
		case syntax.FnLast:
			return values.Number(float64(cs))
		}
		args := make([]values.Value, len(e.Args))
		for i, a := range e.Args {
			args[i] = ev.evalSingleContext(a, cn, cp, cs)
		}
		v, err := values.Call(e.Fn, args, values.CallEnv{Doc: ev.doc, Node: cn})
		if err != nil {
			panic(err)
		}
		return v
	case *syntax.Negate:
		return values.Number(-values.ToNumber(ev.evalSingleContext(e.E, cn, cp, cs)))
	case *syntax.Binary:
		switch {
		case e.Op == syntax.OpOr:
			if values.ToBool(ev.evalSingleContext(e.L, cn, cp, cs)) {
				return values.Boolean(true)
			}
			return values.Boolean(values.ToBool(ev.evalSingleContext(e.R, cn, cp, cs)))
		case e.Op == syntax.OpAnd:
			if !values.ToBool(ev.evalSingleContext(e.L, cn, cp, cs)) {
				return values.Boolean(false)
			}
			return values.Boolean(values.ToBool(ev.evalSingleContext(e.R, cn, cp, cs)))
		case e.Op.IsRelational():
			return values.Boolean(values.Compare(e.Op,
				ev.evalSingleContext(e.L, cn, cp, cs),
				ev.evalSingleContext(e.R, cn, cp, cs)))
		default:
			return values.Number(values.Arith(e.Op,
				values.ToNumber(ev.evalSingleContext(e.L, cn, cp, cs)),
				values.ToNumber(ev.evalSingleContext(e.R, cn, cp, cs))))
		}
	case *syntax.NumberLit:
		return values.Number(e.Val)
	case *syntax.StringLit:
		return values.String(e.Val)
	case *syntax.Path:
		// Reached only for paths whose filter head depends on cp/cs, or
		// under the DisableRelev ablation.
		return values.NodeSet(ev.pathForSingleContext(e, cn, cp, cs))
	case *syntax.Union:
		out := xmltree.NewSet(ev.doc)
		for _, p := range e.Paths {
			out.UnionWith(ev.evalSingleContext(p, cn, cp, cs).Set)
		}
		return values.NodeSet(out)
	}
	panic("core: evalSingleContext: unhandled expression")
}

// pathForSingleContext evaluates a location path for one concrete context.
// MINCONTEXT proper never needs this — paths have Relev {'cn'} and are
// tabled — but paths whose filter head consumes cp/cs (a construct outside
// the paper's grammar, supported for full XPath 1.0 coverage) and the
// DisableRelev ablation land here.
func (ev *evaluation) pathForSingleContext(p *syntax.Path, cn *xmltree.Node, cp, cs int) *xmltree.Set {
	var cur *xmltree.Set
	switch {
	case p.Abs:
		cur = xmltree.Singleton(ev.doc.Root())
	case p.Filter != nil:
		head := ev.evalSingleContext(p.Filter, cn, cp, cs)
		nodes := head.Set.Nodes()
		for _, pred := range p.FPreds {
			nodes = ev.filterNodeList(pred, nodes)
		}
		cur = xmltree.SetFromNodes(ev.doc, nodes)
	default:
		cur = xmltree.Singleton(cn)
	}
	for _, step := range p.Steps {
		cur = ev.stepForward(step, cur)
	}
	return cur
}

// filterHeadSet evaluates a filter-expression path head for every context
// node in X and returns the union of the filtered head sets — the
// outermost-level analogue of the pseudo-code's /π case.
func (ev *evaluation) filterHeadSet(p *syntax.Path, x *xmltree.Set) *xmltree.Set {
	out := xmltree.NewSet(ev.doc)
	if ev.relevOf(p.Filter).NeedsPosition() {
		// The head consumes the outer position/size: those of the query's
		// input context (evalOutermostLocpath runs at the top level only).
		// Table the head's position-independent subtrees first.
		ev.evalByCnodeOnly(p.Filter, ev.cnodeArg(p.Filter, x))
		x.ForEach(func(n *xmltree.Node) {
			head := ev.evalSingleContext(p.Filter, n, ev.inCtx.Pos, ev.inCtx.Size)
			nodes := head.Set.Nodes()
			for _, pred := range p.FPreds {
				nodes = ev.filterNodeList(pred, nodes)
			}
			for _, m := range nodes {
				out.Add(m)
			}
		})
		return out
	}
	ev.evalByCnodeOnly(p.Filter, ev.cnodeArg(p.Filter, x))
	x.ForEach(func(n *xmltree.Node) {
		head := ev.lookup(p.Filter, n)
		nodes := head.Set.Nodes()
		for _, pred := range p.FPreds {
			nodes = ev.filterNodeList(pred, nodes)
		}
		for _, m := range nodes {
			out.Add(m)
		}
	})
	return out
}

// filterNodeList applies one (boolean-typed, normalized) predicate to an
// ordered node list with document-order positions, tabling the predicate's
// position-independent parts first.
func (ev *evaluation) filterNodeList(pred syntax.Expr, nodes []*xmltree.Node) []*xmltree.Node {
	ev.evalByCnodeOnly(pred, ev.cnodeArg(pred, xmltree.SetFromNodes(ev.doc, nodes)))
	out := nodes[:0]
	size := len(nodes)
	for i, n := range nodes {
		if values.ToBool(ev.evalSingleContext(pred, n, i+1, size)) {
			out = append(out, n)
		}
	}
	return out
}

// evalInnerLocpath is the procedure eval_inner_locpath of Section 6: it
// fills table(N) ⊆ dom × 2^dom for a location path N occurring inside a
// predicate or function argument, restricted to the context nodes X.
func (ev *evaluation) evalInnerLocpath(e syntax.Expr, x *xmltree.Set) {
	rel := ev.innerRelation(e, x)
	x.ForEach(func(n *xmltree.Node) {
		set := rel[n.Pre()]
		if set == nil {
			set = xmltree.NewSet(ev.doc)
		}
		ev.store(e, n.Pre(), values.NodeSet(set))
	})
}

// innerRelation computes {(x0, y) | y reachable from x0 via the path} as a
// map from x0 to its result set.
func (ev *evaluation) innerRelation(e syntax.Expr, x *xmltree.Set) map[int]*xmltree.Set {
	switch e := e.(type) {
	case *syntax.Union:
		// R1 ∪ R2.
		out := make(map[int]*xmltree.Set)
		for _, p := range e.Paths {
			part := ev.innerRelation(p, x)
			for k, s := range part {
				if out[k] == nil {
					out[k] = xmltree.NewSet(ev.doc)
				}
				out[k].UnionWith(s)
			}
		}
		return out
	case *syntax.Path:
		rel := make(map[int]*xmltree.Set)
		switch {
		case e.Abs:
			// expr(N) = /π: R′ := eval_inner_locpath(π, {root}), then
			// broadcast {(x0, x) | x0 ∈ X ∧ (root, x) ∈ R′}. The recursive
			// evaluation runs through the relation pipeline (with its
			// per-step tables), exactly like the pseudo-code.
			// The synthetic relative path shares the steps (and thus the
			// predicate nodes with their IDs); its own ID is never read.
			sub := &syntax.Path{Steps: e.Steps}
			r := ev.innerRelation(sub, xmltree.Singleton(ev.doc.Root()))
			fromRoot := r[ev.doc.Root().Pre()]
			if fromRoot == nil {
				fromRoot = xmltree.NewSet(ev.doc)
			}
			x.ForEach(func(n *xmltree.Node) { rel[n.Pre()] = fromRoot })
			return rel
		case e.Filter != nil:
			ev.evalByCnodeOnly(e.Filter, ev.cnodeArg(e.Filter, x))
			x.ForEach(func(n *xmltree.Node) {
				nodes := ev.lookup(e.Filter, n).Set.Nodes()
				for _, pred := range e.FPreds {
					nodes = ev.filterNodeList(pred, nodes)
				}
				rel[n.Pre()] = xmltree.SetFromNodes(ev.doc, nodes)
			})
		default:
			x.ForEach(func(n *xmltree.Node) { rel[n.Pre()] = xmltree.Singleton(n) })
		}
		// Compose the steps: R := {(x0, z) | ∃x1: (x0,x1) ∈ R1 ∧ (x1,z) ∈ R2}.
		for _, step := range e.Steps {
			// Y := {y | ∃x0: (x0, y) ∈ R}.
			y := xmltree.NewSet(ev.doc)
			for _, s := range rel {
				y.UnionWith(s)
			}
			m := make(map[int]*xmltree.Set, y.Len())
			ev.stepMap(step, y, func(src *xmltree.Node, sel []*xmltree.Node) {
				m[src.Pre()] = xmltree.SetFromNodes(ev.doc, sel)
				// The per-step pair relation is the context-value table
				// table(N) ⊆ dom × 2^dom of the step node (cf. Example 4's
				// "2-dimensional tables" at N1/N2); it is materialized for
				// inner location paths and counts toward the Theorem 7
				// space bound. The outermost set representation avoids it.
				ev.st.TableCells += int64(1 + len(sel))
			})
			next := make(map[int]*xmltree.Set, len(rel))
			for x0, mid := range rel {
				s := xmltree.NewSet(ev.doc)
				mid.ForEach(func(x1 *xmltree.Node) {
					if t := m[x1.Pre()]; t != nil {
						s.UnionWith(t)
					}
				})
				next[x0] = s
			}
			rel = next
		}
		return rel
	}
	panic("core: innerRelation: not a location path")
}
