// Package core implements the paper's two new algorithms:
//
//   - MINCONTEXT (Section 3, pseudo-code in Section 6): full XPath 1.0 in
//     time O(|D|⁴·|Q|²) and space O(|D|²·|Q|²) (Theorem 7), by (i)
//     restricting each context-value table to the relevant context
//     Relev(N), (ii) treating outermost location paths as node sets rather
//     than relations, and (iii) looping over 〈cp,cs〉 pairs instead of
//     tabling them;
//
//   - OPTMINCONTEXT (Section 5, Algorithm 8): a pre-pass that evaluates
//     "bottom-up location paths" — subexpressions boolean(π) and π RelOp s
//     with context-independent s — by backward propagation through inverse
//     axes (Section 4), filling their tables in linear space, then running
//     MINCONTEXT over the remainder. On the Extended Wadler Fragment this
//     yields O(|D|²·|Q|²) time and O(|D|·|Q|²) space (Theorem 10), and on
//     Core XPath location paths O(|D|·|π|) time (Theorem 13).
//
// The procedure names below mirror the paper's: evalOutermostLocpath,
// evalByCnodeOnly, evalSingleContext, evalInnerLocpath, evalBottomupPath
// and propagatePathBackwards.
//
// One documented fidelity correction (see DESIGN.md): in the positional
// branch of propagate_path_backwards, the paper's pseudo-code computes
// predicate positions within the backward-propagated candidate subset
// Z ⊆ Y′. Positions are defined by Definition 2 over *all* candidates
// χ(x) ∩ T(t); we evaluate them there and intersect with Y′ afterwards,
// which preserves both XPath semantics and the complexity bounds.
package core

import (
	"fmt"
	"sync"

	"repro/internal/axes"
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Options toggles the individual design choices of Section 3.1 so the
// ablation experiments (E11, E12) can measure their effect. The zero value
// enables everything, i.e. full MINCONTEXT.
type Options struct {
	// DisableRelev switches off the relevant-context restriction: every
	// non-path node is treated as depending on 〈cn,cp,cs〉, so nothing
	// scalar is tabled and all predicate work happens in per-context
	// recomputation loops.
	DisableRelev bool
	// DisableOutermostSet switches off the special treatment of outermost
	// location paths: the query's top-level path is evaluated through
	// evalInnerLocpath, materializing the O(|D|²) pair relation the paper's
	// "special treatment" avoids.
	DisableOutermostSet bool
}

// Engine evaluates queries with MINCONTEXT (bottomUp == false) or
// OPTMINCONTEXT (bottomUp == true).
type Engine struct {
	opts     Options
	bottomUp bool
	// scratch pools axis-kernel scratch arenas: one is checked out per
	// evaluation, so concurrent callers (e.g. the workers of a store batch)
	// each reuse one arena across all their evaluations instead of paying
	// per-axis-call scratch allocations.
	scratch sync.Pool
}

// NewMinContext returns the MINCONTEXT engine (Algorithm 6).
func NewMinContext() *Engine { return &Engine{} }

// NewMinContextWith returns a MINCONTEXT engine with ablation options.
func NewMinContextWith(opts Options) *Engine { return &Engine{opts: opts} }

// NewOptMinContext returns the OPTMINCONTEXT engine (Algorithm 8).
func NewOptMinContext() *Engine { return &Engine{bottomUp: true} }

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.bottomUp {
		return "optmincontext"
	}
	switch {
	case e.opts.DisableRelev && e.opts.DisableOutermostSet:
		return "mincontext-norelev-noouterset"
	case e.opts.DisableRelev:
		return "mincontext-norelev"
	case e.opts.DisableOutermostSet:
		return "mincontext-noouterset"
	}
	return "mincontext"
}

// Evaluate implements engine.Engine: Algorithm 6 (MINCONTEXT), preceded by
// the bottom-up pass of Algorithm 8 when the engine is OPTMINCONTEXT.
func (e *Engine) Evaluate(q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (v values.Value, st engine.Stats, err error) {
	sc, _ := e.scratch.Get().(*axes.Scratch)
	if sc == nil {
		sc = axes.NewScratch()
	}
	defer e.scratch.Put(sc)
	// The recursive procedures have no error returns (they mirror the
	// paper's pseudo-code); a tripped budget travels out as a bail.
	defer budget.RecoverBail(&err)
	ev := &evaluation{
		q:     q,
		doc:   doc,
		inCtx: ctx,
		opts:  e.opts,
		sc:    sc,
		bud:   ctx.Budget,
		tab:   make([]map[int]values.Value, q.Size()),
	}
	if e.bottomUp {
		// "evaluate all bottom-up location paths (starting with the
		// innermost ones in case of nesting)" — Algorithm 8.
		for _, id := range q.BottomUp {
			ev.evalBottomupPath(id)
		}
	}
	v, err = ev.run()
	return v, ev.st, err
}

// evaluation holds the global state of one query evaluation: the paper's
// "parse tree and context-value tables treated as global variables".
type evaluation struct {
	q     *syntax.Query
	doc   *xmltree.Document
	inCtx engine.Context
	opts  Options
	st    engine.Stats
	sc    *axes.Scratch  // kernel scratch, reused across every axis call
	bud   *budget.Budget // optional cooperative budget; nil = unlimited

	// tab[N.ID()] is table(N): context → value, keyed by the context node's
	// document-order index, or by wildcardKey when Relev(N) ∩ {cn} = ∅.
	// For location-path nodes the stored values are node sets, making the
	// table the dom × 2^dom relation of evalInnerLocpath.
	tab []map[int]values.Value
}

// wildcardKey indexes the single row of a context-independent table — the
// "∗" of the Section 6 pseudo-code.
const wildcardKey = -1

// charge spends n budget steps, bailing out of the recursion on a tripped
// budget (Evaluate's deferred RecoverBail translates the bail back into the
// budget error). The nil-budget fast path is one predicted branch.
func (ev *evaluation) charge(n int64) {
	if b := ev.bud; b != nil {
		if err := b.Step(n); err != nil {
			budget.Bail(err)
		}
	}
}

// run is Algorithm 6 (MINCONTEXT proper).
func (ev *evaluation) run() (values.Value, error) {
	root := ev.q.Root
	if isLocationPath(root) && !ev.opts.DisableOutermostSet {
		set := ev.evalOutermostLocpath(root, xmltree.Singleton(ev.inCtx.Node))
		return values.NodeSet(set), nil
	}
	ev.evalByCnodeOnly(root, ev.cnodeArg(root, xmltree.Singleton(ev.inCtx.Node)))
	v := ev.evalSingleContext(root, ev.inCtx.Node, ev.inCtx.Pos, ev.inCtx.Size)
	return v, nil
}

// isLocationPath reports whether the node is treated as a location path by
// the pseudo-code's case analysis (a Path, or a union of paths).
func isLocationPath(e syntax.Expr) bool {
	switch e.(type) {
	case *syntax.Path, *syntax.Union:
		return true
	}
	return false
}

// relevOf returns Relev(N), or the full context under the DisableRelev
// ablation (location paths keep {'cn'} — without any tabling of paths the
// algorithm would lose its polynomial bound entirely).
func (ev *evaluation) relevOf(e syntax.Expr) syntax.Ctx {
	r := ev.q.Relev[e.ID()]
	if ev.opts.DisableRelev && !isLocationPath(e) {
		return syntax.CN | syntax.CP | syntax.CS
	}
	return r
}

// cnodeArg returns the context-node set to hand to evalByCnodeOnly for a
// child: X itself when the child depends on 'cn', the wildcard otherwise.
func (ev *evaluation) cnodeArg(e syntax.Expr, x *xmltree.Set) *xmltree.Set {
	if ev.relevOf(e).Has(syntax.CN) {
		return x
	}
	return nil // wildcard "∗"
}

// store writes one table row and accounts its cells (a node-set row costs
// its cardinality, matching the relation-size accounting of the theorems).
func (ev *evaluation) store(e syntax.Expr, key int, v values.Value) {
	m := ev.tab[e.ID()]
	if m == nil {
		m = make(map[int]values.Value)
		ev.tab[e.ID()] = m
	}
	if _, dup := m[key]; dup {
		return
	}
	m[key] = v
	if v.T == values.KindNodeSet {
		ev.st.TableCells += int64(1 + v.Set.Len())
	} else {
		ev.st.TableCells++
	}
}

// lookup reads table(N) at a context node (projN of the pseudo-code).
func (ev *evaluation) lookup(e syntax.Expr, cn *xmltree.Node) values.Value {
	key := wildcardKey
	if ev.relevOf(e).Has(syntax.CN) {
		key = cn.Pre()
	}
	v, ok := ev.tab[e.ID()][key]
	if !ok {
		panic(fmt.Sprintf("core: table miss at node %d (%s) for cn=%d — evalByCnodeOnly was not called for this context set", e.ID(), e, key))
	}
	return v
}

// filled reports whether table(N) already exists (bottom-up pre-pass, or an
// earlier evalByCnodeOnly call) and covers the given context-node set.
func (ev *evaluation) filled(e syntax.Expr, x *xmltree.Set) bool {
	m := ev.tab[e.ID()]
	if m == nil {
		return false
	}
	if !ev.relevOf(e).Has(syntax.CN) {
		_, ok := m[wildcardKey]
		return ok
	}
	if x == nil {
		return true
	}
	covered := true
	x.ForEach(func(n *xmltree.Node) {
		if covered {
			if _, ok := m[n.Pre()]; !ok {
				covered = false
			}
		}
	})
	return covered
}
