package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func evalWith(t *testing.T, eng *Engine, doc *xmltree.Document, src string) (values.Value, engine.Stats) {
	t.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, st, err := eng.Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatalf("evaluate %q: %v", src, err)
	}
	return v, st
}

func setIDs(s *xmltree.Set) string { return s.String() }

// TestExample9BackwardTrace reproduces the intermediate sets of the
// Example 9 bottom-up evaluation of ρ and π.
func TestExample9BackwardTrace(t *testing.T) {
	doc := workload.Figure2()
	// ρ = 100: table true exactly at {x23, x24}.
	q, err := syntax.Compile(`preceding-sibling::*/preceding::* = 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.BottomUp) != 1 {
		t.Fatalf("ρ = 100 should be one bottom-up node, got %v", q.BottomUp)
	}
	ev := &evaluation{q: q, doc: doc, inCtx: engine.RootContext(doc),
		tab: make([]map[int]values.Value, q.Size())}
	ev.evalBottomupPath(q.BottomUp[0])
	trueSet := xmltree.NewSet(doc)
	doc.AllNodes().ForEach(func(n *xmltree.Node) {
		if v := ev.tab[q.BottomUp[0]][n.Pre()]; v.Bool {
			trueSet.Add(n)
		}
	})
	if got := setIDs(trueSet); got != "{x23, x24}" {
		t.Errorf("table(ρ=100) true at %s, want {x23, x24}", got)
	}
}

// TestExample9PiPropagation checks boolean(π)'s bottom-up table: true
// exactly on X = {x11, x12, x13, x14, x22}.
func TestExample9PiPropagation(t *testing.T) {
	doc := workload.Figure2()
	q, err := syntax.Compile(`boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)`)
	if err != nil {
		t.Fatal(err)
	}
	ev := &evaluation{q: q, doc: doc, inCtx: engine.RootContext(doc),
		tab: make([]map[int]values.Value, q.Size())}
	for _, id := range q.BottomUp {
		ev.evalBottomupPath(id)
	}
	rootID := q.Root.ID()
	if ev.tab[rootID] == nil {
		t.Fatal("boolean(π) was not bottom-up evaluated")
	}
	trueSet := xmltree.NewSet(doc)
	doc.AllNodes().ForEach(func(n *xmltree.Node) {
		if v := ev.tab[rootID][n.Pre()]; v.Bool {
			trueSet.Add(n)
		}
	})
	if got := setIDs(trueSet); got != "{x11, x12, x13, x14, x22}" {
		t.Errorf("table(boolean(π)) true at %s, want {x11, x12, x13, x14, x22}", got)
	}
}

// TestAblationsAgree: the ablated engines compute identical results, only
// with different cost profiles.
func TestAblationsAgree(t *testing.T) {
	doc := workload.Scaled(60)
	queries := []string{
		workload.PositionHeavy(),
		`//b[c = 100]/d`,
		`count(//c[position() != last()])`,
		`//b[count(child::c) > 1]`,
	}
	engines := []*Engine{
		NewMinContext(),
		NewOptMinContext(),
		NewMinContextWith(Options{DisableRelev: true}),
		NewMinContextWith(Options{DisableOutermostSet: true}),
		NewMinContextWith(Options{DisableRelev: true, DisableOutermostSet: true}),
	}
	for _, src := range queries {
		ref, _ := evalWith(t, engines[0], doc, src)
		for _, eng := range engines[1:] {
			got, _ := evalWith(t, eng, doc, src)
			if !values.Equal(ref, got) {
				t.Errorf("%s on %q: %s vs mincontext %s",
					eng.Name(), src, values.Render(got), values.Render(ref))
			}
		}
	}
}

// TestOutermostSetSavesCells: the outermost-path-as-set optimization (E12)
// must reduce table cells on a deep document, where the pair relation of
// Example 4's "2-dimensional tables" genuinely grows quadratically.
func TestOutermostSetSavesCells(t *testing.T) {
	doc := workload.Nested(150)
	src := `/descendant::*/descendant::*[self::* = 100]`
	_, stOn := evalWith(t, NewMinContext(), doc, src)
	_, stOff := evalWith(t, NewMinContextWith(Options{DisableOutermostSet: true}), doc, src)
	if stOn.TableCells >= stOff.TableCells {
		t.Errorf("outermost-set optimization saved nothing: on=%d off=%d",
			stOn.TableCells, stOff.TableCells)
	}
}

// TestRelevSavesWork: disabling the relevant-context restriction (E11) must
// increase per-context evaluations on predicate-heavy queries.
func TestRelevSavesWork(t *testing.T) {
	doc := workload.Nested(80)
	src := `/descendant::*/descendant::*[descendant::c = 100 or position() > last()*0.5]`
	_, stOn := evalWith(t, NewMinContext(), doc, src)
	_, stOff := evalWith(t, NewMinContextWith(Options{DisableRelev: true}), doc, src)
	if stOn.ContextsEvaluated >= stOff.ContextsEvaluated {
		t.Errorf("Relev restriction saved nothing: on=%d off=%d",
			stOn.ContextsEvaluated, stOff.ContextsEvaluated)
	}
}

// TestBottomUpSavesCells: OPTMINCONTEXT's bottom-up pass keeps Wadler
// predicates in linear-size tables where MINCONTEXT materializes the inner
// path relation (Theorem 10 vs Theorem 7 space).
func TestBottomUpSavesCells(t *testing.T) {
	doc := workload.Scaled(200)
	src := `/descendant::*[preceding-sibling::*/preceding::* = 100]`
	_, stOpt := evalWith(t, NewOptMinContext(), doc, src)
	_, stMin := evalWith(t, NewMinContext(), doc, src)
	if stOpt.TableCells >= stMin.TableCells {
		t.Errorf("bottom-up pass saved no cells: opt=%d min=%d",
			stOpt.TableCells, stMin.TableCells)
	}
}

// TestWildcardContexts: context-independent queries table exactly one row.
func TestWildcardContexts(t *testing.T) {
	doc := workload.Figure2()
	_, st := evalWith(t, NewMinContext(), doc, `1 + 2 * 3`)
	if st.TableCells != 5 {
		t.Errorf("constant query wrote %d cells, want 5 (one per parse node)", st.TableCells)
	}
}

// TestEngineNames: ablations are distinguishable in benchmark output.
func TestEngineNames(t *testing.T) {
	names := map[string]bool{}
	for _, e := range []*Engine{NewMinContext(), NewOptMinContext(),
		NewMinContextWith(Options{DisableRelev: true}),
		NewMinContextWith(Options{DisableOutermostSet: true}),
		NewMinContextWith(Options{DisableRelev: true, DisableOutermostSet: true})} {
		if names[e.Name()] {
			t.Errorf("duplicate engine name %q", e.Name())
		}
		names[e.Name()] = true
	}
}

// TestContextPositionQueries: explicit cp/cs at the top level.
func TestContextPositionQueries(t *testing.T) {
	doc := workload.Figure2()
	q, err := syntax.Compile(`position() + last()`)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := NewMinContext().Evaluate(q, doc, engine.Context{Node: doc.Root(), Pos: 3, Size: 7})
	if err != nil {
		t.Fatal(err)
	}
	if v.Num != 10 {
		t.Errorf("position()+last() at <root,3,7> = %v, want 10", v.Num)
	}
}

// TestBackwardPositionalFidelity pins down the deviation documented in the
// package comment: predicate positions during backward propagation must be
// computed over the full candidate set χ(x) ∩ T(t) (Definition 2), not
// inside the backward-propagated subset as the literal pseudo-code of
// Section 6 does.
//
// Counterexample: boolean(child::a[position() = 2]/child::b) at the root of
//
//	<r><a id="a1"/><a id="a2"><b id="b1"/></a></r>
//
// True semantics: child::a = (a1, a2); position 2 is a2; a2 has a b child,
// so the expression is TRUE. The literal pseudo-code propagates Y′ = {a2}
// backwards and computes positions within it, finds a2 at position 1, and
// wrongly returns FALSE.
func TestBackwardPositionalFidelity(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a id="a1"/><a id="a2"><b id="b1"/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := syntax.Compile(`boolean(child::a[position() = 2]/child::b)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.BottomUp) != 1 {
		t.Fatalf("expected one bottom-up node, got %v", q.BottomUp)
	}
	rootNode := doc.Root().Children()[0] // <r>
	v, _, err := NewOptMinContext().Evaluate(q, doc, engine.Context{Node: rootNode, Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool {
		t.Error("OPTMINCONTEXT returned false — the literal-pseudo-code position bug is back")
	}
	// And the backward result agrees with forward MINCONTEXT.
	v2, _, err := NewMinContext().Evaluate(q, doc, engine.Context{Node: rootNode, Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Bool != v.Bool {
		t.Errorf("bottom-up (%v) and forward (%v) evaluation disagree", v.Bool, v2.Bool)
	}
}

// TestBackwardReverseAxisPositions: positions in backward propagation over
// a reverse axis (preceding-sibling) count in reverse document order.
func TestBackwardReverseAxisPositions(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a id="a1"><b/></a><a id="a2"/><c id="c1"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// From c1: preceding-sibling::a = (a2, a1) in reverse document order;
	// position 2 is a1, which has a b child.
	q, err := syntax.Compile(`boolean(preceding-sibling::a[position() = 2]/child::b)`)
	if err != nil {
		t.Fatal(err)
	}
	c1 := doc.ByID("c1")
	v, _, err := NewOptMinContext().Evaluate(q, doc, engine.Context{Node: c1, Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool {
		t.Error("reverse-axis backward positions wrong")
	}
	// position 1 is a2, which has no b child.
	q2, err := syntax.Compile(`boolean(preceding-sibling::a[position() = 1]/child::b)`)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := NewOptMinContext().Evaluate(q2, doc, engine.Context{Node: c1, Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Bool {
		t.Error("position 1 on reverse axis should be the nearest sibling (a2, no b)")
	}
}

// TestDumpTables: the EvaluateWithDump hook returns the tables the
// evaluation materialized, keyed and ordered deterministically.
func TestDumpTables(t *testing.T) {
	doc := workload.Figure2()
	q, err := syntax.Compile(`/descendant::*[self::* = 100]`)
	if err != nil {
		t.Fatal(err)
	}
	v, dumps, err := NewMinContext().EvaluateWithDump(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatal(err)
	}
	if v.Set.String() != "{x14, x24}" {
		t.Errorf("result %s", v.Set)
	}
	if len(dumps) == 0 {
		t.Fatal("no tables dumped")
	}
	for i := 1; i < len(dumps); i++ {
		if dumps[i].NodeID <= dumps[i-1].NodeID {
			t.Error("dumps not ordered by node ID")
		}
	}
	// The self::* = 100 predicate must have a per-cn boolean table.
	found := false
	for _, d := range dumps {
		if d.Expr == "(self::* = 100)" {
			found = true
			if len(d.Rows) != 9 {
				t.Errorf("predicate table has %d rows, want 9 (the candidates)", len(d.Rows))
			}
		}
	}
	if !found {
		t.Error("predicate table missing from dump")
	}
}
