package core

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// TableRow is one row of a dumped context-value table.
type TableRow struct {
	// CN is the context node's document-order index, or -1 for the
	// wildcard row of a context-independent table.
	CN int
	// Value is the rendered result value.
	Value string
}

// TableDump is the context-value table of one parse-tree node after an
// evaluation — the reduced tables of Figure 5 (tables restricted to their
// relevant context).
type TableDump struct {
	NodeID int
	Expr   string
	Relev  syntax.Ctx
	Rows   []TableRow
}

// EvaluateWithDump evaluates like Evaluate and additionally returns every
// context-value table the run materialized, ordered by parse-tree node ID.
// cmd/xpathtables uses it to regenerate the paper's Figure 5.
func (e *Engine) EvaluateWithDump(q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (values.Value, []TableDump, error) {
	ev := &evaluation{
		q:     q,
		doc:   doc,
		inCtx: ctx,
		opts:  e.opts,
		tab:   make([]map[int]values.Value, q.Size()),
	}
	if e.bottomUp {
		for _, id := range q.BottomUp {
			ev.evalBottomupPath(id)
		}
	}
	v, err := ev.run()
	if err != nil {
		return values.Value{}, nil, err
	}
	var dumps []TableDump
	for id, m := range ev.tab {
		if m == nil {
			continue
		}
		d := TableDump{NodeID: id, Expr: q.Node(id).String(), Relev: q.Relev[id]}
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			d.Rows = append(d.Rows, TableRow{CN: k, Value: values.Render(m[k])})
		}
		dumps = append(dumps, d)
	}
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].NodeID < dumps[j].NodeID })
	return v, dumps, nil
}
