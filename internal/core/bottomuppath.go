package core

import (
	"repro/internal/axes"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// evalBottomupPath is the procedure eval_bottomup_path of Section 6. The
// parse-tree node id designates an expression boolean(π) or π RelOp s with
// context-independent scalar s; the procedure computes the set X of context
// nodes for which the expression is true — by backward propagation of an
// initial node set through the inverse axes of π — and fills table(N) with
// {(x, true) | x ∈ X} ∪ {(x, false) | x ∉ X}, using linear space.
func (ev *evaluation) evalBottomupPath(id int) {
	ev.charge(1)
	e := ev.q.Node(id)
	if ev.tab[id] != nil {
		return // already filled (shared subexpression of an earlier pass)
	}
	pi, op, scalar := ev.q.BottomUpPath(id)
	if tr := ev.inCtx.Tracer; tr != nil {
		t0 := trace.Now()
		defer func() {
			tr.Emit(trace.Event{
				Kind: trace.KindSat, Name: pi.String(), PC: id,
				In: trace.CardUnknown, Out: trace.CardUnknown,
				Ns: trace.Now() - t0, HighWater: ev.sc.HighWater(),
			})
		}()
	}

	// Step 1: determine the initial node set Y.
	var y *xmltree.Set
	if scalar == nil {
		// expr(N) = boolean(π): Y := dom (plus the document root, which
		// backward steps over ancestor axes may pass through).
		y = ev.doc.AllNodes().Clone()
	} else {
		// expr(N) = π RelOp s: evaluate the context-independent s once and
		// keep the nodes whose string value satisfies the comparison. The
		// three scalar cases of the pseudo-code (nset, str, num) all reduce
		// to the existential node-set comparison with a singleton left side.
		ev.evalByCnodeOnly(scalar, nil)
		sval := ev.lookup(scalar, ev.doc.Root())
		y = xmltree.NewSet(ev.doc)
		ev.doc.AllNodes().ForEach(func(n *xmltree.Node) {
			ev.st.ContextsEvaluated++
			if values.Compare(op, values.NodeSet(xmltree.Singleton(n)), sval) {
				y.Add(n)
			}
		})
	}

	// Step 2: propagate Y backwards via π and fill in table(N).
	x := ev.propagatePathBackwards(pi, y)
	ev.doc.AllNodes().ForEach(func(n *xmltree.Node) {
		ev.store(e, n.Pre(), values.Boolean(x.Has(n)))
	})
}

// propagatePathBackwards is the procedure propagate_path_backwards of
// Section 6: starting from the target set Y of the final location step, it
// walks the steps of π from last to first, at each step restricting to the
// node test, filtering through the predicates, and applying the inverse
// axis function χ⁻¹ — so that the result is
//
//	X = {x ∈ dom | ∃y ∈ Y reachable from x via π}.
//
// Fidelity note (see the package comment): in the positional branch,
// predicate positions are computed over the full candidate set χ(x) ∩ T(t)
// as Definition 2 requires, and the propagated set Y′ is intersected
// afterwards; the paper's literal pseudo-code computes positions inside Y′,
// which disagrees with its own Definition 2 on queries like
// following::d[position() != last()].
func (ev *evaluation) propagatePathBackwards(pi *syntax.Path, y *xmltree.Set) *xmltree.Set {
	cur := y
	for i := len(pi.Steps) - 1; i >= 0; i-- {
		ev.charge(1)
		if cur.IsEmpty() {
			// "if Y = ∅ then return ∅".
			break
		}
		step := pi.Steps[i]
		// Y′ := {y ∈ Y | node test t is true for y}.
		yPrime := cur.Intersect(engine.TestSet(ev.doc, step.Test))

		needsPos := false
		for _, pred := range step.Preds {
			if ev.relevOf(pred).NeedsPosition() {
				needsPos = true
			}
		}

		if !needsPos {
			for _, pred := range step.Preds {
				ev.evalByCnodeOnly(pred, ev.cnodeArg(pred, yPrime))
			}
			// Y″ := {y ∈ Y′ | all predicates true at 〈y, ∗, ∗〉}.
			yPP := yPrime
			if len(step.Preds) > 0 {
				yPP = xmltree.NewSet(ev.doc)
				yPrime.ForEach(func(n *xmltree.Node) {
					if ev.predsHold(step.Preds, n) {
						yPP.Add(n)
					}
				})
			}
			ev.st.AxisCalls++
			next := xmltree.NewSet(ev.doc)
			axes.ApplyInverseInto(next, step.Axis, yPP, ev.sc)
			cur = next
			continue
		}

		// Positional branch: X′ := χ⁻¹(Y′); for each x ∈ X′ run the
		// candidate loop with true positions, then keep x when a surviving
		// candidate leads into Y′.
		ev.st.AxisCalls++
		xPrime := xmltree.NewSet(ev.doc)
		axes.ApplyInverseInto(xPrime, step.Axis, yPrime, ev.sc)
		// Table the predicates over the full forward image, which contains
		// every candidate the position loop will evaluate.
		img := xmltree.NewSet(ev.doc)
		engine.StepImageInto(&ev.st, img, step.Axis, step.Test, xPrime, ev.sc)
		for _, pred := range step.Preds {
			ev.evalByCnodeOnly(pred, ev.cnodeArg(pred, img))
		}
		r := xmltree.NewSet(ev.doc)
		var buf []*xmltree.Node
		xPrime.ForEach(func(xn *xmltree.Node) {
			z := engine.Candidates(step.Axis, step.Test, xn, buf[:0])
			for _, pred := range step.Preds {
				m := len(z)
				kept := z[:0]
				for j, cand := range z {
					if values.ToBool(ev.evalSingleContext(pred, cand, j+1, m)) {
						kept = append(kept, cand)
					}
				}
				z = kept
			}
			for _, cand := range z {
				if yPrime.Has(cand) {
					r.Add(xn)
					break
				}
			}
			buf = z[:0]
		})
		cur = r
	}

	// "if location step at M2 is '/'": an absolute path matches from every
	// context node iff the root can start the chain.
	if pi.Abs {
		if cur.Has(ev.doc.Root()) {
			return ev.doc.AllNodes().Clone()
		}
		return xmltree.NewSet(ev.doc)
	}
	return cur
}
