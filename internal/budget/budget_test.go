package budget

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestZeroLimitsNeverTrips(t *testing.T) {
	b := New(Limits{})
	for i := 0; i < 10_000; i++ {
		if err := b.Step(1); err != nil {
			t.Fatalf("Step(1) #%d: %v", i, err)
		}
	}
	if err := b.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if err := b.Card(1 << 30); err != nil {
		t.Fatalf("Card: %v", err)
	}
}

func TestCancelIsStickyAndIdempotent(t *testing.T) {
	b := New(Limits{Steps: 1000})
	if err := b.Step(1); err != nil {
		t.Fatalf("pre-cancel Step: %v", err)
	}
	b.Cancel()
	b.Cancel() // idempotent
	for i := 0; i < 3; i++ {
		if err := b.Step(1); !errors.Is(err, ErrCanceled) {
			t.Fatalf("post-cancel Step = %v, want ErrCanceled", err)
		}
		if err := b.Err(); !errors.Is(err, ErrCanceled) {
			t.Fatalf("post-cancel Err = %v, want ErrCanceled", err)
		}
		if err := b.Card(0); !errors.Is(err, ErrCanceled) {
			t.Fatalf("post-cancel Card = %v, want ErrCanceled", err)
		}
	}
}

func TestFuelExhaustion(t *testing.T) {
	b := New(Limits{Steps: 10})
	var err error
	steps := 0
	for ; steps < 100; steps++ {
		if err = b.Step(1); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("exhaustion error = %v, want ErrBudgetExceeded", err)
	}
	if steps != 10 {
		t.Fatalf("tripped after %d steps, want 10", steps)
	}
	if err := b.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err after exhaustion = %v", err)
	}
}

func TestFuelBulkCharge(t *testing.T) {
	b := New(Limits{Steps: 100})
	if err := b.Step(100); err != nil {
		t.Fatalf("Step(100) within fuel: %v", err)
	}
	if err := b.Step(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Step past fuel = %v, want ErrBudgetExceeded", err)
	}
}

func TestDeadline(t *testing.T) {
	b := New(Limits{Deadline: time.Millisecond})
	time.Sleep(5 * time.Millisecond)
	// Err reads the clock unconditionally.
	if err := b.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Err past deadline = %v, want ErrDeadlineExceeded", err)
	}
	if err := b.Step(1); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Step past deadline = %v, want ErrDeadlineExceeded", err)
	}
}

func TestDeadlineNoticedWithinAmortizationWindow(t *testing.T) {
	b := New(Limits{Deadline: time.Millisecond})
	time.Sleep(5 * time.Millisecond)
	// Step amortizes clock reads over deadlineTick calls, so the expired
	// deadline must surface within that many checks.
	for i := 0; i < deadlineTick; i++ {
		if err := b.Step(1); err != nil {
			if !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("Step = %v, want ErrDeadlineExceeded", err)
			}
			return
		}
	}
	t.Fatalf("deadline not noticed within %d steps", deadlineTick)
}

func TestFirstCauseWins(t *testing.T) {
	b := New(Limits{Steps: 1})
	if err := b.Step(5); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Step = %v, want ErrBudgetExceeded", err)
	}
	b.Cancel() // must not overwrite the recorded cause
	if err := b.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err after late Cancel = %v, want ErrBudgetExceeded (first cause)", err)
	}
}

func TestCardCap(t *testing.T) {
	b := New(Limits{MaxResultCard: 5})
	if err := b.Card(5); err != nil {
		t.Fatalf("Card(5) at cap: %v", err)
	}
	if err := b.Card(6); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Card(6) = %v, want ErrBudgetExceeded", err)
	}
	// Tripping through Card is sticky like every other trip.
	if err := b.Step(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Step after Card trip = %v, want ErrBudgetExceeded", err)
	}
}

func TestConcurrentCancelAndStep(t *testing.T) {
	// Exercised under -race in CI: many goroutines stepping while one
	// cancels must converge on ErrCanceled without data races.
	b := New(Limits{})
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				if err := b.Step(1); err != nil {
					if !errors.Is(err, ErrCanceled) {
						t.Errorf("Step = %v, want ErrCanceled", err)
					}
					return
				}
			}
		}()
	}
	close(start)
	b.Cancel()
	wg.Wait()
}

func TestBailRoundTrip(t *testing.T) {
	run := func() (err error) {
		defer RecoverBail(&err)
		Bail(ErrCanceled)
		return nil
	}
	if err := run(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("bail round trip = %v, want ErrCanceled", err)
	}
}

func TestRecoverBailRepanicsForeignPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("foreign panic swallowed by RecoverBail")
		}
		if r != "boom" {
			t.Fatalf("re-panicked value = %v, want boom", r)
		}
	}()
	var err error
	func() {
		defer RecoverBail(&err)
		panic("boom")
	}()
}

func TestFromPanic(t *testing.T) {
	func() {
		defer func() {
			r := recover()
			err, ok := FromPanic(r)
			if !ok {
				t.Errorf("FromPanic failed to classify a bail")
			}
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Errorf("FromPanic err = %v", err)
			}
		}()
		Bail(ErrBudgetExceeded)
	}()
	if _, ok := FromPanic("boom"); ok {
		t.Fatalf("FromPanic claimed a foreign panic")
	}
}

func TestStepAllocationFree(t *testing.T) {
	b := New(Limits{Steps: 1 << 30, Deadline: time.Hour})
	allocs := testing.AllocsPerRun(1000, func() {
		if err := b.Step(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %v per call, want 0", allocs)
	}
	// Tripped budgets return sentinel errors: still allocation-free.
	b.Cancel()
	allocs = testing.AllocsPerRun(1000, func() {
		if b.Step(1) == nil {
			t.Fatal("tripped Step returned nil")
		}
	})
	if allocs != 0 {
		t.Fatalf("tripped Step allocates %v per call, want 0", allocs)
	}
}
