// Package budget is the cooperative-cancellation substrate of the engine:
// a per-evaluation Budget carrying a deadline, a cancel flag, a step (fuel)
// counter and a result-cardinality cap, checked by every engine's main loop.
//
// The contract mirrors the Tracer contract of internal/trace: a nil *Budget
// costs exactly one predicted nil check at every instrumented site and
// nothing else — the warm evaluation path's allocation pins (2 allocs for
// node-set results, 0 for scalars) hold with a live Budget attached, because
// every Budget method is allocation-free (sentinel errors, atomic state).
//
// A Budget is safe for concurrent use: the server cancels it from the
// handler goroutine while a pool worker evaluates, and the store fan-outs
// share one Budget across all their workers so the first failure stops the
// siblings. Cancellation is prompt (every Step call loads the state word);
// deadline checks amortize the monotonic clock read over 16 Step calls, so
// a deadline is noticed within 16 checked steps of expiring.
package budget

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// The error taxonomy. All three are sentinel values — engines return them
// unwrapped from the hot path, so tripping a budget allocates nothing.
var (
	// ErrCanceled reports a cooperative cancellation (Cancel was called:
	// client disconnect, sibling-worker failure, server shutdown).
	ErrCanceled = errors.New("xpath: evaluation canceled")
	// ErrDeadlineExceeded reports an expired evaluation deadline.
	ErrDeadlineExceeded = errors.New("xpath: evaluation deadline exceeded")
	// ErrBudgetExceeded reports an exhausted step budget or an over-cap
	// result cardinality.
	ErrBudgetExceeded = errors.New("xpath: evaluation budget exceeded")
)

// Budget trip counters, by cause. Incremented once per Budget at the
// transition into the tripped state, not per observation.
var (
	mCanceled  = metrics.Default().Counter("budget.canceled")
	mDeadline  = metrics.Default().Counter("budget.deadline_exceeded")
	mExhausted = metrics.Default().Counter("budget.exhausted")
)

// Budget states. The zero state is "running"; a Budget trips at most once
// (first cause wins) and stays tripped.
const (
	stateOK int32 = iota
	stateCanceled
	stateDeadline
	stateExhausted
)

// stateErrs maps a tripped state to its sentinel error.
var stateErrs = [...]error{
	stateOK:        nil,
	stateCanceled:  ErrCanceled,
	stateDeadline:  ErrDeadlineExceeded,
	stateExhausted: ErrBudgetExceeded,
}

// Limits configures a Budget. Zero fields impose no corresponding limit, so
// the zero Limits yields a pure cancellation token (only Cancel trips it).
type Limits struct {
	// Deadline bounds the evaluation's wall-clock duration, measured from
	// New. The deadline clock is the monotonic trace.Now.
	Deadline time.Duration
	// Steps bounds the cooperative step count: every engine charges its
	// main-loop iterations (context evaluations, VM block entries, location
	// steps) against this fuel counter.
	Steps int64
	// MaxResultCard bounds the cardinality of a node-set result, checked by
	// Card when the evaluation completes.
	MaxResultCard int
}

// Budget is a shared, concurrency-safe evaluation budget. Create one with
// New; the zero value works but imposes no limits and cannot be shared
// before first use is published.
type Budget struct {
	state atomic.Int32
	// tick amortizes deadline clock reads: Step reads the clock on every
	// 16th call, so an expired deadline is noticed within 16 checks.
	tick    atomic.Uint32
	fuel    atomic.Int64
	hasFuel bool
	// deadline is the trace.Now instant after which the budget trips
	// (0 = no deadline).
	deadline int64
	maxCard  int
}

// New returns a Budget enforcing the given limits, with any deadline armed
// immediately.
func New(l Limits) *Budget {
	b := &Budget{maxCard: l.MaxResultCard}
	if l.Steps > 0 {
		b.hasFuel = true
		b.fuel.Store(l.Steps)
	}
	if l.Deadline > 0 {
		b.deadline = trace.Now() + int64(l.Deadline)
	}
	return b
}

// deadlineTick is the Step-call interval between deadline clock reads.
// Power of two so the amortization is one mask.
const deadlineTick = 16

// Step charges n units of work and reports whether evaluation may continue.
// A non-nil return is sticky: the budget has tripped and every future Step,
// Err and Card observes the same error. Allocation-free.
func (b *Budget) Step(n int64) error {
	if s := b.state.Load(); s != stateOK {
		return stateErrs[s]
	}
	if b.hasFuel && b.fuel.Add(-n) < 0 {
		return b.trip(stateExhausted)
	}
	if b.deadline != 0 && b.tick.Add(1)&(deadlineTick-1) == 0 && trace.Now() > b.deadline {
		return b.trip(stateDeadline)
	}
	return nil
}

// Err reports the budget's current state without charging work, reading the
// deadline clock unconditionally (unlike Step's amortized read). Fan-out
// coordinators poll it between work items.
func (b *Budget) Err() error {
	if s := b.state.Load(); s != stateOK {
		return stateErrs[s]
	}
	if b.deadline != 0 && trace.Now() > b.deadline {
		return b.trip(stateDeadline)
	}
	if b.hasFuel && b.fuel.Load() < 0 {
		return b.trip(stateExhausted)
	}
	return nil
}

// Card checks a result cardinality against the MaxResultCard cap, tripping
// the budget when n exceeds it.
func (b *Budget) Card(n int) error {
	if b.maxCard > 0 && n > b.maxCard {
		return b.trip(stateExhausted)
	}
	if s := b.state.Load(); s != stateOK {
		return stateErrs[s]
	}
	return nil
}

// Cancel trips the budget cooperatively: every in-flight evaluation checking
// this budget returns ErrCanceled at its next check. Idempotent, safe from
// any goroutine, a no-op on an already-tripped budget.
func (b *Budget) Cancel() {
	b.trip(stateCanceled)
}

// trip moves the budget into state s unless it already tripped; the first
// cause wins and is the one counted and reported forever after.
func (b *Budget) trip(s int32) error {
	if b.state.CompareAndSwap(stateOK, s) {
		switch s {
		case stateCanceled:
			mCanceled.Inc()
		case stateDeadline:
			mDeadline.Inc()
		case stateExhausted:
			mExhausted.Inc()
		}
	}
	return stateErrs[b.state.Load()]
}

// bail carries a budget error through recursions that predate error returns
// (core, topdown, naive): the engine panics with a *bail at the check site
// and translates it back into a plain error at its Evaluate boundary.
type bail struct{ err error }

// Bail panics with err wrapped for RecoverBail. Only budget errors should
// travel this way; anything else is a real panic and must stay one.
func Bail(err error) {
	panic(&bail{err: err})
}

// RecoverBail is the deferred counterpart of Bail: it converts an in-flight
// bail back into *errp and re-panics anything else.
//
//	func (e *engine) Evaluate(...) (v values.Value, st engine.Stats, err error) {
//	    defer budget.RecoverBail(&err)
//	    ...
func RecoverBail(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if b, ok := r.(*bail); ok {
		*errp = b.err
		return
	}
	panic(r)
}

// FromPanic inspects a recovered value: if it is a budget bail, it returns
// the carried error. Recovery sites that handle several panic protocols
// (naive's work limit, the engine-wide panic guard) use it to keep budget
// errors out of the panic taxonomy.
func FromPanic(r any) (error, bool) {
	if b, ok := r.(*bail); ok {
		return b.err, true
	}
	return nil, false
}
