package xmltree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomDoc builds a seeded random document of about n elements directly
// with the Builder (no dependency on internal/fuzzgen, which would cycle).
func randomDoc(t *testing.T, seed int64, n int) *Document {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "d"}
	b := NewBuilder()
	b.Start("a")
	depth := 1
	for b.Count() < n {
		switch {
		case depth > 1 && rng.Intn(4) == 0:
			if err := b.End(); err != nil {
				t.Fatal(err)
			}
			depth--
		case depth < 7 && rng.Intn(3) == 0:
			b.Start(labels[rng.Intn(len(labels))])
			depth++
		default:
			b.Elem(labels[rng.Intn(len(labels))], fmt.Sprint(rng.Intn(50)))
		}
	}
	for depth > 0 {
		if err := b.End(); err != nil {
			t.Fatal(err)
		}
		depth--
	}
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestTopologyMatchesNodes checks every column of the flat topology against
// the pointer-based node accessors it mirrors.
func TestTopologyMatchesNodes(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		doc := randomDoc(t, seed, 120)
		topo := doc.Topology()
		if got, want := len(topo.KidOff), doc.NumNodes()+1; got != want {
			t.Fatalf("seed %d: len(KidOff) = %d, want %d", seed, got, want)
		}
		for _, n := range doc.Nodes() {
			pre := n.Pre()
			wantParent := int32(-1)
			if p := n.Parent(); p != nil {
				wantParent = int32(p.Pre())
			}
			if topo.Parent[pre] != wantParent {
				t.Fatalf("Parent[%d] = %d, want %d", pre, topo.Parent[pre], wantParent)
			}
			if int(topo.Start[pre]) != n.StartEvent() || int(topo.End[pre]) != n.EndEvent() {
				t.Fatalf("Start/End[%d] = %d/%d, want %d/%d",
					pre, topo.Start[pre], topo.End[pre], n.StartEvent(), n.EndEvent())
			}
			if int(topo.Level[pre]) != n.Level() || int(topo.SibIdx[pre]) != n.SiblingIndex() {
				t.Fatalf("Level/SibIdx[%d] mismatch", pre)
			}
			kids := topo.Kids(int32(pre))
			if len(kids) != len(n.Children()) {
				t.Fatalf("Kids(%d): %d children, want %d", pre, len(kids), len(n.Children()))
			}
			for i, k := range n.Children() {
				if int(kids[i]) != k.Pre() {
					t.Fatalf("Kids(%d)[%d] = %d, want %d", pre, i, kids[i], k.Pre())
				}
			}
			// SubEnd: the subtree [pre, SubEnd) must hold exactly the nodes
			// with start/end nested inside n's events.
			for _, m := range doc.Nodes() {
				inRange := m.Pre() >= pre && m.Pre() < int(topo.SubEnd[pre])
				inSubtree := m == n || m.IsDescendantOf(n)
				if inRange != inSubtree {
					t.Fatalf("SubEnd[%d]: node %d range=%v subtree=%v", pre, m.Pre(), inRange, inSubtree)
				}
			}
			if doc.LabelByID(topo.LabelID[pre]) != n.Label() {
				t.Fatalf("LabelID[%d] resolves to %q, want %q", pre, doc.LabelByID(topo.LabelID[pre]), n.Label())
			}
		}
		// Per-labelID bitsets agree with LabelSet.
		for id := int32(0); id < int32(doc.LabelCount()); id++ {
			label := doc.LabelByID(id)
			if label == "" {
				continue // the root's empty label has no T(t)
			}
			if !doc.LabelSetByID(id).Equal(doc.LabelSet(label)) {
				t.Fatalf("LabelSetByID(%d) != LabelSet(%q)", id, label)
			}
		}
	}
}

// TestSetAddRange cross-checks the word-parallel range insert against
// bit-at-a-time inserts, including the cardinality bookkeeping.
func TestSetAddRange(t *testing.T) {
	doc := randomDoc(t, 7, 200)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		a, b := NewSet(doc), NewSet(doc)
		// Pre-populate identically so range inserts overlap existing bits.
		for i := 0; i < 20; i++ {
			pre := rng.Intn(doc.NumNodes())
			a.AddPre(pre)
			b.AddPre(pre)
		}
		lo := rng.Intn(doc.NumNodes() + 1)
		hi := rng.Intn(doc.NumNodes() + 1)
		a.AddRange(lo, hi)
		for p := lo; p < hi; p++ {
			b.AddPre(p)
		}
		if !a.Equal(b) || a.Len() != b.Len() {
			t.Fatalf("AddRange(%d,%d): sets differ (len %d vs %d)", lo, hi, a.Len(), b.Len())
		}
	}
}

// TestSetLenConcurrentReaders pins the Set.Len data-race fix: a result set
// produced by word-level mutators is read by Len/IsEmpty/First from many
// goroutines at once. Before the fix, Len lazily wrote the cached
// cardinality on this read path (same class as the LabelSet race fixed
// earlier), which the race detector flagged.
func TestSetLenConcurrentReaders(t *testing.T) {
	doc := randomDoc(t, 11, 300)
	s := NewSet(doc)
	s.AddRange(1, doc.NumNodes())
	other := NewSet(doc)
	for p := 0; p < doc.NumNodes(); p += 3 {
		other.AddPre(p)
	}
	s.IntersectWith(other) // word-level mutation before the set is shared
	want := s.Len()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if s.Len() != want {
					panic("Len changed under concurrent readers")
				}
				if s.IsEmpty() {
					panic("IsEmpty changed under concurrent readers")
				}
				_ = s.First()
				_ = s.HasPre(3)
			}
		}()
	}
	wg.Wait()
}

// TestSetCardinalityInvariant checks that every mutator keeps the eager
// cardinality equal to the popcount of the words.
func TestSetCardinalityInvariant(t *testing.T) {
	doc := randomDoc(t, 13, 150)
	rng := rand.New(rand.NewSource(5))
	s := NewSet(doc)
	other := NewSet(doc)
	for p := 0; p < doc.NumNodes(); p += 2 {
		other.AddPre(p)
	}
	check := func(op string) {
		t.Helper()
		n := 0
		s.ForEachPre(func(int) { n++ })
		if s.Len() != n {
			t.Fatalf("after %s: Len() = %d, popcount = %d", op, s.Len(), n)
		}
	}
	for i := 0; i < 500; i++ {
		switch rng.Intn(7) {
		case 0:
			s.AddPre(rng.Intn(doc.NumNodes()))
			check("AddPre")
		case 1:
			s.RemovePre(rng.Intn(doc.NumNodes()))
			check("RemovePre")
		case 2:
			lo, hi := rng.Intn(doc.NumNodes()), rng.Intn(doc.NumNodes())
			s.AddRange(lo, hi)
			check("AddRange")
		case 3:
			s.UnionWith(other)
			check("UnionWith")
		case 4:
			s.IntersectWith(other)
			check("IntersectWith")
		case 5:
			s.SubtractWith(other)
			check("SubtractWith")
		case 6:
			s.CopyFrom(other)
			check("CopyFrom")
		}
	}
}

// TestLabelTableCanonical checks the always-on interning property: equal
// labels within one document share one backing string.
func TestLabelTableCanonical(t *testing.T) {
	doc, err := ParseString("<a><b/><b/><c><b/></c></a>")
	if err != nil {
		t.Fatal(err)
	}
	var bs []*Node
	for _, n := range doc.Nodes() {
		if n.Label() == "b" {
			bs = append(bs, n)
		}
	}
	if len(bs) != 3 {
		t.Fatalf("want 3 b nodes, got %d", len(bs))
	}
	for _, n := range bs {
		// Pointer-equal backing strings: unsafe-free check via the label table.
		if n.Label() != doc.LabelByID(doc.Topology().LabelID[n.Pre()]) {
			t.Fatal("label not canonicalized through the label table")
		}
	}
	if _, ok := doc.LabelIDOf("b"); !ok {
		t.Fatal("LabelIDOf(b) missing")
	}
	if _, ok := doc.LabelIDOf("zzz"); ok {
		t.Fatal("LabelIDOf(zzz) should be absent")
	}
	if doc.LabelCount() != 4 { // "", a, b, c
		t.Fatalf("LabelCount = %d, want 4", doc.LabelCount())
	}
}
