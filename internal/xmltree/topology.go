package xmltree

// Topology is the flat structure-of-arrays encoding of a document's tree
// shape, built once at finish() time. All slices are indexed by the node's
// document-order (pre) index and are immutable after construction, so they
// are safe for any number of concurrent readers.
//
// The encoding exploits that a preorder numbering makes every subtree a
// contiguous pre range: node p's descendants are exactly the pre indexes
// [p+1, SubEnd[p]). The set-at-a-time axis kernels of internal/axes run
// over these arrays and over raw bitset words instead of pointer-chasing
// Parent()/Children(), which is where their constant factor comes from.
type Topology struct {
	// Parent[p] is the pre index of p's parent, or -1 for the document root.
	Parent []int32
	// Start[p] and End[p] are the pre/post event numbers (StartEvent and
	// EndEvent of the node API): y is a descendant of x iff
	// Start[x] < Start[y] and End[y] < End[x].
	Start, End []int32
	// Level[p] is the node's depth; the document root has level 0.
	Level []int32
	// SibIdx[p] is the node's position among its parent's children.
	SibIdx []int32
	// SubEnd[p] is one past the pre index of p's last descendant: the
	// subtree rooted at p occupies exactly the pre range [p, SubEnd[p]).
	SubEnd []int32
	// LabelID[p] identifies the node's label in the document's label table
	// (Document.LabelCount/LabelByID); the root's empty label has an ID too.
	LabelID []int32
	// KidOff/KidList encode the children lists in CSR form: the children of
	// node p, in sibling order, are KidList[KidOff[p]:KidOff[p+1]].
	// len(KidOff) == NumNodes()+1.
	KidOff  []int32
	KidList []int32
}

// Topology returns the document's flat structure-of-arrays encoding. The
// returned struct and all of its slices are shared and must not be modified.
func (d *Document) Topology() *Topology { return &d.topo }

// Kids returns the children of the node with pre index p as a shared slice
// of pre indexes (the CSR row of the topology).
func (t *Topology) Kids(p int32) []int32 {
	return t.KidList[t.KidOff[p]:t.KidOff[p+1]]
}

// Bytes returns the memory footprint of the topology's column arrays in
// bytes (the structure-of-arrays encoding is the document's dominant
// axis-kernel working set, so the observability layer reports it).
func (t *Topology) Bytes() int64 {
	return 4 * int64(len(t.Parent)+len(t.Start)+len(t.End)+len(t.Level)+
		len(t.SibIdx)+len(t.SubEnd)+len(t.LabelID)+len(t.KidOff)+len(t.KidList))
}

// buildTopology fills d.topo and the label table from the finished node
// slice. Called exactly once, by finish, after pre/start/end/level/sibIdx
// have been assigned.
func (d *Document) buildTopology() {
	n := len(d.nodes)
	t := &d.topo
	// One backing array for the seven per-node columns keeps them adjacent.
	backing := make([]int32, 7*n)
	t.Parent, backing = backing[:n:n], backing[n:]
	t.Start, backing = backing[:n:n], backing[n:]
	t.End, backing = backing[:n:n], backing[n:]
	t.Level, backing = backing[:n:n], backing[n:]
	t.SibIdx, backing = backing[:n:n], backing[n:]
	t.SubEnd, backing = backing[:n:n], backing[n:]
	t.LabelID = backing[:n:n]
	t.KidOff = make([]int32, n+1)
	t.KidList = make([]int32, n-1) // every node but the root is some child

	d.labelIDs = make(map[string]int32)
	for pre, nd := range d.nodes {
		if p := nd.parent; p != nil {
			t.Parent[pre] = int32(p.pre)
		} else {
			t.Parent[pre] = -1
		}
		t.Start[pre] = int32(nd.start)
		t.End[pre] = int32(nd.end)
		t.Level[pre] = int32(nd.level)
		t.SibIdx[pre] = int32(nd.sibIdx)
		t.KidOff[pre+1] = t.KidOff[pre] + int32(len(nd.kids))

		// Always-on per-document label interning: every node's label string
		// is replaced by the canonical first occurrence, so equal labels are
		// pointer-equal within the document and each label gets a dense ID.
		id, ok := d.labelIDs[nd.label]
		if !ok {
			id = int32(len(d.labels))
			d.labelIDs[nd.label] = id
			d.labels = append(d.labels, nd.label)
		}
		nd.label = d.labels[id]
		t.LabelID[pre] = id
	}
	for pre, nd := range d.nodes {
		row := t.KidList[t.KidOff[pre]:t.KidOff[pre+1]]
		for i, k := range nd.kids {
			row[i] = int32(k.pre)
		}
	}
	// SubEnd in reverse preorder: a leaf's subtree is [p, p+1); otherwise it
	// ends where the last child's subtree ends (children have higher pre, so
	// they are already done when their parent is reached).
	for pre := n - 1; pre >= 0; pre-- {
		if t.KidOff[pre] == t.KidOff[pre+1] {
			t.SubEnd[pre] = int32(pre + 1)
		} else {
			t.SubEnd[pre] = t.SubEnd[t.KidList[t.KidOff[pre+1]-1]]
		}
	}

	// Per-labelID bitsets, aligned with the label table; shared with the
	// byLabel map so LabelSet keeps returning the same canonical sets.
	d.labelSets = make([]*Set, len(d.labels))
	for id, label := range d.labels {
		if s, ok := d.byLabel[label]; ok {
			d.labelSets[id] = s
		} else {
			// The root's empty label (and any label only the root carries)
			// has no T(t) set; node tests never match the root by name.
			d.labelSets[id] = d.emptySet
		}
	}
}

// LabelCount returns the number of distinct labels in the document
// (including the root's empty label).
func (d *Document) LabelCount() int { return len(d.labels) }

// LabelByID returns the canonical label string with the given dense ID.
func (d *Document) LabelByID(id int32) string { return d.labels[id] }

// LabelIDOf returns the dense ID of a label and whether the label occurs in
// the document at all.
func (d *Document) LabelIDOf(label string) (int32, bool) {
	id, ok := d.labelIDs[label]
	return id, ok
}

// LabelSetByID returns the per-labelID bitset T(label) for a dense label ID.
// The returned set is shared; callers must not modify it.
func (d *Document) LabelSetByID(id int32) *Set { return d.labelSets[id] }
