package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestParseBasicShape(t *testing.T) {
	d := mustParse(t, sample)
	if d.Size() != 9 {
		t.Fatalf("Size = %d, want 9", d.Size())
	}
	if d.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", d.NumNodes())
	}
	root := d.Root()
	if !root.IsRoot() || root.Label() != "" || root.Parent() != nil {
		t.Errorf("root malformed: %+v", root)
	}
	a := root.Children()
	if len(a) != 1 || a[0].Label() != "a" {
		t.Fatalf("document element: %v", a)
	}
	if got := len(a[0].Children()); got != 2 {
		t.Errorf("a has %d children, want 2", got)
	}
}

func TestDocumentOrder(t *testing.T) {
	d := mustParse(t, sample)
	wantIDs := []string{"10", "11", "12", "13", "14", "21", "22", "23", "24"}
	for i, n := range d.Nodes()[1:] {
		id, _ := n.Attr("id")
		if id != wantIDs[i] {
			t.Errorf("node %d: id %s, want %s", i+1, id, wantIDs[i])
		}
		if n.Pre() != i+1 {
			t.Errorf("node %s: Pre = %d, want %d", id, n.Pre(), i+1)
		}
	}
}

func TestStringValue(t *testing.T) {
	d := mustParse(t, sample)
	cases := map[string]string{
		"12": "21 22",
		"14": "100",
		"11": "21 2223 24100",
		"10": "21 2223 2410011 1213 14100",
	}
	for id, want := range cases {
		n := d.ByID(id)
		if n == nil {
			t.Fatalf("no node %s", id)
		}
		if got := n.StringValue(); got != want {
			t.Errorf("strval(x%s) = %q, want %q", id, got, want)
		}
	}
	if got := d.Root().StringValue(); got != d.ByID("10").StringValue() {
		t.Errorf("strval(root) = %q, want document element's", got)
	}
}

func TestInterleavedText(t *testing.T) {
	d := mustParse(t, `<a>x<b>y</b>z</a>`)
	if got := d.Root().StringValue(); got != "xyz" {
		t.Errorf("strval = %q, want xyz (interleaving must be preserved)", got)
	}
}

func TestEventNumbering(t *testing.T) {
	d := mustParse(t, sample)
	x11, x14, x21 := d.ByID("11"), d.ByID("14"), d.ByID("21")
	if !x11.IsAncestorOf(x14) {
		t.Error("x11 should be an ancestor of x14")
	}
	if x11.IsAncestorOf(x21) {
		t.Error("x11 is not an ancestor of x21")
	}
	if !x14.IsDescendantOf(d.ByID("10")) {
		t.Error("x14 should descend from x10")
	}
	if x21.StartEvent() <= x14.EndEvent() {
		t.Error("x21 must follow x14 in event order")
	}
}

func TestIDs(t *testing.T) {
	d := mustParse(t, sample)
	if d.ByID("13") == nil || d.ByID("13").Label() != "c" {
		t.Error("ByID(13) wrong")
	}
	if d.ByID("nope") != nil {
		t.Error("ByID(nope) should be nil")
	}
	set := d.DerefIDs(" 11\t24  99 ")
	if set.Len() != 2 || !set.Has(d.ByID("11")) || !set.Has(d.ByID("24")) {
		t.Errorf("DerefIDs = %v", set)
	}
}

func TestLabelSets(t *testing.T) {
	d := mustParse(t, sample)
	if got := d.LabelSet("c").Len(); got != 3 {
		t.Errorf("|T(c)| = %d, want 3", got)
	}
	if got := d.LabelSet("zzz").Len(); got != 0 {
		t.Errorf("|T(zzz)| = %d, want 0", got)
	}
	if got := d.AllElements().Len(); got != 9 {
		t.Errorf("|T(*)| = %d, want 9", got)
	}
	if got := d.AllNodes().Len(); got != 10 {
		t.Errorf("|node()| = %d, want 10", got)
	}
	if d.AllElements().Has(d.Root()) {
		t.Error("T(*) must not contain the document root")
	}
}

func TestSiblings(t *testing.T) {
	d := mustParse(t, sample)
	x13 := d.ByID("13")
	fs := x13.FollowingSiblings()
	if len(fs) != 1 || fs[0] != d.ByID("14") {
		t.Errorf("following siblings of x13: %v", fs)
	}
	ps := x13.PrecedingSiblings()
	if len(ps) != 1 || ps[0] != d.ByID("12") {
		t.Errorf("preceding siblings of x13: %v", ps)
	}
	if x13.SiblingIndex() != 1 {
		t.Errorf("SiblingIndex(x13) = %d, want 1", x13.SiblingIndex())
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Done(); err == nil {
		t.Error("empty document must fail")
	}
	b := NewBuilder()
	b.Start("a")
	if _, err := b.Done(); err == nil {
		t.Error("unclosed element must fail")
	}
	b2 := NewBuilder()
	b2.Text("stray")
	if _, err := b2.Done(); err == nil {
		t.Error("text outside document element must fail")
	}
	b3 := NewBuilder()
	b3.Start("a")
	_ = b3.End()
	b3.Start("b")
	_ = b3.End()
	if _, err := b3.Done(); err == nil {
		t.Error("two top-level elements must fail")
	}
	b4 := NewBuilder()
	b4.Start("a")
	_ = b4.End()
	if err := b4.End(); err == nil {
		t.Error("unbalanced End must fail")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{``, `<a>`, `<a></b>`, `text only`} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := mustParse(t, sample)
	again := mustParse(t, d.XMLString())
	if again.Size() != d.Size() {
		t.Fatalf("round trip changed size: %d vs %d", again.Size(), d.Size())
	}
	for i := range d.Nodes() {
		a, b := d.Nodes()[i], again.Nodes()[i]
		if a.Label() != b.Label() || a.StringValue() != b.StringValue() {
			t.Errorf("node %d differs after round trip", i)
		}
	}
}

func TestXMLEscaping(t *testing.T) {
	d := mustParse(t, `<a m="&lt;&amp;&quot;">x &lt; &amp; y</a>`)
	el := d.Root().Children()[0]
	if v, _ := el.Attr("m"); v != `<&"` {
		t.Errorf("attr = %q", v)
	}
	if el.StringValue() != "x < & y" {
		t.Errorf("strval = %q", el.StringValue())
	}
	again := mustParse(t, d.XMLString())
	if again.Root().StringValue() != d.Root().StringValue() {
		t.Error("escaping broken in round trip")
	}
}

func TestSetOps(t *testing.T) {
	d := mustParse(t, sample)
	s1 := NewSet(d)
	s1.Add(d.ByID("11"))
	s1.Add(d.ByID("13"))
	s2 := NewSet(d)
	s2.Add(d.ByID("13"))
	s2.Add(d.ByID("24"))

	if got := s1.Union(s2).Len(); got != 3 {
		t.Errorf("union len = %d", got)
	}
	if got := s1.Intersect(s2).Len(); got != 1 {
		t.Errorf("intersect len = %d", got)
	}
	if !s1.Intersects(s2) {
		t.Error("Intersects should be true")
	}
	s3 := s1.Clone()
	s3.SubtractWith(s2)
	if s3.Len() != 1 || !s3.Has(d.ByID("11")) {
		t.Errorf("subtract: %v", s3)
	}
	if s1.First() != d.ByID("11") || s1.Last() != d.ByID("13") {
		t.Errorf("first/last wrong")
	}
	s1.Remove(d.ByID("11"))
	if s1.Len() != 1 {
		t.Errorf("after remove: %d", s1.Len())
	}
	s1.Clear()
	if !s1.IsEmpty() {
		t.Error("clear failed")
	}
}

func TestSetIterationOrder(t *testing.T) {
	d := mustParse(t, sample)
	s := NewSet(d)
	for _, id := range []string{"24", "11", "14"} {
		s.Add(d.ByID(id))
	}
	var fwd, rev []string
	s.ForEach(func(n *Node) { id, _ := n.Attr("id"); fwd = append(fwd, id) })
	s.ForEachReverse(func(n *Node) { id, _ := n.Attr("id"); rev = append(rev, id) })
	if !reflect.DeepEqual(fwd, []string{"11", "14", "24"}) {
		t.Errorf("forward order: %v", fwd)
	}
	if !reflect.DeepEqual(rev, []string{"24", "14", "11"}) {
		t.Errorf("reverse order: %v", rev)
	}
	if nodes := s.Nodes(); len(nodes) != 3 || nodes[0] != d.ByID("11") {
		t.Errorf("Nodes: %v", nodes)
	}
}

func TestSetString(t *testing.T) {
	d := mustParse(t, sample)
	s := NewSet(d)
	s.Add(d.ByID("11"))
	s.Add(d.ByID("12"))
	if got := s.String(); got != "{x11, x12}" {
		t.Errorf("String = %q", got)
	}
	if got := NewSet(d).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// buildRandomDoc makes a random document for property tests.
func buildRandomDoc(seed int64, n int) *Document {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	b.Start("r")
	for b.Count() < n {
		switch {
		case b.Depth() > 1 && rng.Intn(3) == 0:
			_ = b.End()
		default:
			b.Start([]string{"a", "b", "c"}[rng.Intn(3)])
		}
	}
	for b.Depth() > 0 {
		_ = b.End()
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

// TestQuickSetUnionCommutes: s ∪ t == t ∪ s and related algebra, via
// testing/quick over random membership vectors.
func TestQuickSetUnionCommutes(t *testing.T) {
	d := buildRandomDoc(7, 40)
	f := func(aBits, bBits uint64) bool {
		a, b := NewSet(d), NewSet(d)
		for i := 0; i < d.NumNodes(); i++ {
			if aBits&(1<<uint(i%64)) != 0 {
				a.AddPre(i)
			}
			if bBits&(1<<uint(i%64)) != 0 {
				b.AddPre(i)
			}
			aBits = aBits>>1 | aBits<<63
			bBits = bBits>>1 | bBits<<63
		}
		ab, ba := a.Union(b), b.Union(a)
		inter := a.Intersect(b)
		// |A∪B| = |A| + |B| − |A∩B|, union commutes, intersect ⊆ union.
		return ab.Equal(ba) &&
			ab.Len() == a.Len()+b.Len()-inter.Len() &&
			inter.Union(ab).Equal(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPrePostConsistency: for every pair of nodes exactly one of
// ancestor / descendant / preceding / following / equal holds.
func TestQuickPrePostConsistency(t *testing.T) {
	f := func(seed int64) bool {
		d := buildRandomDoc(seed, 30)
		nodes := d.Nodes()
		for _, x := range nodes {
			for _, y := range nodes {
				rels := 0
				if x == y {
					rels++
				}
				if x.IsAncestorOf(y) {
					rels++
				}
				if y.IsAncestorOf(x) {
					rels++
				}
				if y.StartEvent() > x.EndEvent() {
					rels++ // y follows x
				}
				if y.EndEvent() < x.StartEvent() {
					rels++ // y precedes x
				}
				if rels != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickStringValueConcat: strval(n) equals the concatenation of the
// text under n in document order, checked against a reference
// serialization-based computation.
func TestQuickStringValueConcat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		b.Start("r")
		for b.Count() < 20 {
			switch rng.Intn(4) {
			case 0:
				if b.Depth() > 1 {
					_ = b.End()
				}
			case 1:
				b.Text([]string{"x", "10", " ", "zz"}[rng.Intn(4)])
			default:
				b.Start("e")
			}
		}
		for b.Depth() > 0 {
			_ = b.End()
		}
		d, err := b.Done()
		if err != nil {
			return false
		}
		// Reference: strip tags from the serialization of each subtree.
		for _, n := range d.Nodes() {
			var ref strings.Builder
			var walk func(*Node)
			walk = func(m *Node) {
				for _, seg := range segmentsOf(m) {
					if seg.child != nil {
						walk(seg.child)
					} else {
						ref.WriteString(seg.text)
					}
				}
			}
			walk(n)
			if n.StringValue() != ref.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// segmentsOf exposes the segment list to the white-box property test.
func segmentsOf(n *Node) []segment { return n.segments }
