package xmltree

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d := mustParse(t, sample)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != d.Size() {
		t.Fatalf("size %d, want %d", back.Size(), d.Size())
	}
	for i, orig := range d.Nodes() {
		got := back.Node(i)
		if got.Label() != orig.Label() || got.StringValue() != orig.StringValue() ||
			got.StartEvent() != orig.StartEvent() || got.EndEvent() != orig.EndEvent() {
			t.Errorf("node %d differs after round trip", i)
		}
		for _, a := range orig.Attrs() {
			if v, ok := got.Attr(a.Name); !ok || v != a.Value {
				t.Errorf("node %d attr %s differs", i, a.Name)
			}
		}
	}
	// Derived indexes rebuilt.
	if back.ByID("14") == nil || back.LabelSet("c").Len() != 3 {
		t.Error("indexes not rebuilt")
	}
	if back.XMLString() != d.XMLString() {
		t.Error("XML serialization differs after snapshot round trip")
	}
}

func TestSnapshotErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("XPT1"),                   // truncated after magic
		[]byte("XPT1\x01\x01a\x01\x00"),  // start with bad label index tail
		append([]byte("XPT1\x00"), 0x05), // unknown event
	}
	for i, b := range bad {
		if _, err := LoadSnapshot(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: expected an error", i)
		}
	}
}

// TestQuickSnapshotRoundTrip: random documents survive the snapshot codec
// byte-for-byte in their XML serialization.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		d := buildRandomDoc(seed, 40)
		var buf bytes.Buffer
		if err := d.WriteSnapshot(&buf); err != nil {
			return false
		}
		back, err := LoadSnapshot(&buf)
		if err != nil {
			return false
		}
		return back.XMLString() == d.XMLString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotWithSpecialContent(t *testing.T) {
	d := mustParse(t, `<a x="&lt;&amp;"><b>text &amp; more</b><c/>tail</a>`)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root().StringValue() != d.Root().StringValue() {
		t.Errorf("string value %q vs %q", back.Root().StringValue(), d.Root().StringValue())
	}
	el := back.Root().Children()[0]
	if v, _ := el.Attr("x"); v != "<&" {
		t.Errorf("attr = %q", v)
	}
}

func TestSnapshotCompactness(t *testing.T) {
	// The snapshot should not be drastically larger than the XML.
	d := mustParse(t, strings.Repeat(``, 0)+sample)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 2*len(d.XMLString()) {
		t.Errorf("snapshot %d bytes for %d bytes of XML", buf.Len(), len(d.XMLString()))
	}
}
