package xmltree

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternerRefcounting: retention is per document per distinct label;
// release drops table entries only when the last retaining document leaves.
func TestInternerRefcounting(t *testing.T) {
	in := NewInterner()
	d1 := MustParseString(`<a x="1"><b/><b/></a>`) // labels a, b; attr x
	d2 := MustParseString(`<a><c/></a>`)           // labels a, c
	d1.InternLabels(in)
	d2.InternLabels(in)

	for label, want := range map[string]int{"a": 2, "b": 1, "c": 1, "x": 1, "zzz": 0} {
		if got := in.Refs(label); got != want {
			t.Errorf("Refs(%q) = %d want %d", label, got, want)
		}
	}

	d1.ReleaseLabels(in)
	if got := in.Refs("a"); got != 1 {
		t.Errorf("after d1 release: Refs(a) = %d want 1", got)
	}
	if got := in.Refs("b"); got != 0 {
		t.Errorf("after d1 release: Refs(b) = %d want 0", got)
	}
	// b and x left the table entirely; a, c and the root's empty label
	// (retained by d2) remain canonical.
	if in.Len() != 3 {
		t.Errorf("Len = %d want 3 (a, c, root)", in.Len())
	}

	d2.ReleaseLabels(in)
	if in.Len() != 0 {
		t.Errorf("Len after all releases = %d want 0", in.Len())
	}

	// The departed document is untouched: its strings are still valid.
	if d1.Root().Children()[0].Label() != "a" {
		t.Error("released document lost its labels")
	}

	// Double release is a no-op, not an underflow.
	d1.ReleaseLabels(in)
	if in.Refs("a") != 0 {
		t.Error("double release underflowed")
	}
}

// TestInternerUntrackedIntern: Intern without the retain protocol keeps
// working and is unaffected by releases of never-retained strings.
func TestInternerUntrackedIntern(t *testing.T) {
	in := NewInterner()
	c := in.Intern("standalone")
	if c != "standalone" || in.Len() != 1 {
		t.Fatalf("Intern: %q Len=%d", c, in.Len())
	}
	d := MustParseString(`<standalone/>`)
	d.InternLabels(in)
	d.ReleaseLabels(in)
	// The document's retain/release cycle dropped the entry; re-interning
	// simply re-installs it.
	if got := in.Intern("standalone"); got != "standalone" {
		t.Fatalf("re-intern: %q", got)
	}
}

// TestInternerConcurrentRetainRelease: churning documents through
// InternLabels/ReleaseLabels while readers intern — run under -race.
func TestInternerConcurrentRetainRelease(t *testing.T) {
	in := NewInterner()
	base := MustParseString(`<shared><k/></shared>`)
	base.InternLabels(in)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := MustParseString(fmt.Sprintf(`<shared g="%d"><k/><u%d/></shared>`, g, g))
				d.InternLabels(in)
				_ = in.Intern("shared")
				d.ReleaseLabels(in)
			}
		}(g)
	}
	wg.Wait()
	if got := in.Refs("shared"); got != 1 {
		t.Fatalf("Refs(shared) = %d want 1 (only base retains)", got)
	}
	for g := 0; g < 8; g++ {
		if got := in.Refs(fmt.Sprintf("u%d", g)); got != 0 {
			t.Fatalf("Refs(u%d) = %d want 0", g, got)
		}
	}
}
