// Package xmltree implements the XML data model of Gottlob/Koch/Pichler
// (ICDE 2003, Section 2.1): an unranked, ordered, labeled tree over a node
// domain dom, together with the auxiliary machinery the paper's algorithms
// rely on — document order <doc, node tests T(t), string values strval, and
// the deref_ids function backing the id() core-library function.
//
// Following the paper, all nodes are of one kind; the synthetic document
// root (the node selected by "/") exists as Node 0 of every Document but is
// not part of dom: no node test matches it except node(), so it never
// appears in query results unless explicitly addressed.
//
// Documents are immutable after construction, which makes every accessor
// safe for concurrent readers.
package xmltree

import (
	"sort"
	"strings"
	"unicode"
)

// Node is a single node of the document tree. The zero value is not useful;
// Nodes are created by Parse or by a Builder and are immutable afterwards.
type Node struct {
	doc    *Document
	parent *Node
	kids   []*Node

	// segments interleaves character data and element children in document
	// order, so that StringValue can reproduce exactly the concatenation of
	// non-tag strings between the node's start and end tags (§2.1).
	segments []segment

	label string
	attrs []Attr

	// pre is the node's index in Document.Nodes, i.e. its position in
	// document order. The document root has pre == 0.
	pre int
	// start and end are pre/post event numbers: start is assigned when the
	// node's opening tag is seen, end when the closing tag is seen. They
	// give O(1) tests for the descendant, following and preceding relations.
	start, end int
	// level is the depth of the node; the document root has level 0.
	level int
	// sibIdx is the node's position among its parent's children.
	sibIdx int

	strval string
}

// segment is one piece of a node's direct content: either text or a child
// element (never both).
type segment struct {
	text  string
	child *Node
}

// Attr is a single attribute of an element. The paper's data model does not
// include an attribute axis; attributes are retained purely as data (most
// importantly the "id" attribute feeding deref_ids).
type Attr struct {
	Name  string
	Value string
}

// Document returns the document the node belongs to.
func (n *Node) Document() *Document { return n.doc }

// Parent returns the node's parent, or nil for the document root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's element children in document order. The
// returned slice is shared and must not be modified.
func (n *Node) Children() []*Node { return n.kids }

// Label returns the node's tag name. The document root has the empty label.
func (n *Node) Label() string { return n.label }

// IsRoot reports whether the node is the synthetic document root (the node
// addressed by "/").
func (n *Node) IsRoot() bool { return n.parent == nil }

// Pre returns the node's document-order (preorder) index; the document root
// has Pre 0, the document element Pre 1.
func (n *Node) Pre() int { return n.pre }

// Level returns the node's depth; the document root is at level 0.
func (n *Node) Level() int { return n.level }

// SiblingIndex returns the node's position among its parent's children
// (0-based). The document root has index 0.
func (n *Node) SiblingIndex() int { return n.sibIdx }

// StartEvent returns the node's opening-tag event number. Together with
// EndEvent it gives O(1) descendant/following/preceding tests:
// y is a descendant of x iff start(x) < start(y) and end(y) < end(x);
// y follows x iff start(y) > end(x).
func (n *Node) StartEvent() int { return n.start }

// EndEvent returns the node's closing-tag event number.
func (n *Node) EndEvent() int { return n.end }

// Attrs returns the node's attributes in document order. The returned slice
// is shared and must not be modified.
func (n *Node) Attrs() []Attr { return n.attrs }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// StringValue returns strval(n): the concatenation of all character data
// between the node's start and end tags, in document order (§2.1). Values
// are precomputed when the document is built, so the accessor is O(1) and
// safe for concurrent readers.
func (n *Node) StringValue() string { return n.strval }

// computeStrval fills n.strval from the (already computed) children's
// values; Document.finish calls it in post-order.
func (n *Node) computeStrval() {
	// Fast paths: leaves with zero or one text segment need no builder.
	switch len(n.segments) {
	case 0:
		n.strval = ""
		return
	case 1:
		if n.segments[0].child != nil {
			n.strval = n.segments[0].child.strval
		} else {
			n.strval = n.segments[0].text
		}
		return
	}
	var b strings.Builder
	for _, s := range n.segments {
		if s.child != nil {
			b.WriteString(s.child.strval)
		} else {
			b.WriteString(s.text)
		}
	}
	n.strval = b.String()
}

// Before reports whether n precedes m in document order (n <doc m).
func (n *Node) Before(m *Node) bool { return n.pre < m.pre }

// IsAncestorOf reports whether n is a proper ancestor of m.
func (n *Node) IsAncestorOf(m *Node) bool {
	return n.start < m.start && m.end < n.end
}

// IsDescendantOf reports whether n is a proper descendant of m.
func (n *Node) IsDescendantOf(m *Node) bool { return m.IsAncestorOf(n) }

// FollowingSiblings returns the siblings after n in document order.
func (n *Node) FollowingSiblings() []*Node {
	if n.parent == nil {
		return nil
	}
	sib := n.parent.kids
	for i, c := range sib {
		if c == n {
			return sib[i+1:]
		}
	}
	return nil
}

// PrecedingSiblings returns the siblings before n, in document order
// (callers that need reverse document order iterate backwards).
func (n *Node) PrecedingSiblings() []*Node {
	if n.parent == nil {
		return nil
	}
	sib := n.parent.kids
	for i, c := range sib {
		if c == n {
			return sib[:i]
		}
	}
	return nil
}

// Document is an immutable parsed XML document: the node domain dom plus the
// synthetic root, in document order, with the auxiliary indexes used by the
// evaluation algorithms.
type Document struct {
	root  *Node
	nodes []*Node // document order; nodes[0] is the root

	ids      map[string]*Node
	byLabel  map[string]*Set
	allElems *Set // T(*): every node except the document root
	allNodes *Set // node(): every node including the document root
	emptySet *Set // shared T(t) for labels absent from the document

	// Flat structure-of-arrays tree encoding (see topology.go) plus the
	// always-on per-document label table backing it: labels[id] is the
	// canonical string of dense label ID id, labelSets[id] its T(t) bitset.
	topo      Topology
	labels    []string
	labelIDs  map[string]int32
	labelSets []*Set
}

// Root returns the synthetic document root (the node selected by "/").
func (d *Document) Root() *Node { return d.root }

// Nodes returns all nodes in document order, including the document root at
// index 0. The returned slice is shared and must not be modified.
func (d *Document) Nodes() []*Node { return d.nodes }

// Size returns |dom|: the number of nodes excluding the document root.
func (d *Document) Size() int { return len(d.nodes) - 1 }

// NumNodes returns the total node count including the document root; it is
// the universe size of node Sets over this document.
func (d *Document) NumNodes() int { return len(d.nodes) }

// Node returns the node with the given document-order index.
func (d *Document) Node(pre int) *Node { return d.nodes[pre] }

// ByID returns the node whose "id" attribute equals the given key, or nil.
// When several nodes share an id, the first in document order wins, per the
// XPath 1.0 deref_ids semantics.
func (d *Document) ByID(id string) *Node { return d.ids[id] }

// DerefIDs interprets s as a whitespace-separated list of keys and returns
// the set of nodes whose ids are contained in the list (§2.1 deref_ids).
func (d *Document) DerefIDs(s string) *Set {
	out := NewSet(d)
	for _, key := range strings.Fields(s) {
		if n := d.ids[key]; n != nil {
			out.Add(n)
		}
	}
	return out
}

// DerefIDsInto adds deref_ids(s) to dst. It is the allocation-free form of
// DerefIDs used by the axis kernels: the key list is tokenized in place
// (same whitespace classes as strings.Fields) and dst is not cleared.
func (d *Document) DerefIDsInto(dst *Set, s string) {
	forEachField(s, func(key string) bool {
		if n := d.ids[key]; n != nil {
			dst.AddPre(n.pre)
		}
		return true
	})
}

// DerefIDsIntersect reports whether deref_ids(s) ∩ y ≠ ∅ without
// materializing the dereferenced set.
func (d *Document) DerefIDsIntersect(s string, y *Set) bool {
	hit := false
	forEachField(s, func(key string) bool {
		if n := d.ids[key]; n != nil && y.HasPre(n.pre) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// forEachField calls f for every whitespace-separated field of s (the
// fields strings.Fields would return), stopping early when f returns false.
func forEachField(s string, f func(string) bool) {
	start := -1
	for i, r := range s {
		if isSpaceRune(r) {
			if start >= 0 {
				if !f(s[start:i]) {
					return
				}
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		f(s[start:])
	}
}

// isSpaceRune mirrors unicode.IsSpace for the rune classes strings.Fields
// splits on, with the ASCII fast path inlined.
func isSpaceRune(r rune) bool {
	switch r {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	case 0x85, 0xA0:
		return true
	}
	return r > 0xFF && unicode.IsSpace(r)
}

// LabelSet returns T(t) for a tag name t: the set of nodes labeled t. The
// returned set is cached and shared; callers must not modify it.
func (d *Document) LabelSet(label string) *Set {
	if s, ok := d.byLabel[label]; ok {
		return s
	}
	// Unknown labels share one canonical empty set per document, built at
	// finish() time: caching per unknown label here would write the map and
	// break the document's safe-for-concurrent-readers guarantee.
	return d.emptySet
}

// AllElements returns T(*): every node except the document root. The
// returned set is shared; callers must not modify it.
func (d *Document) AllElements() *Set { return d.allElems }

// AllNodes returns the set matched by node(): every node including the
// document root. The returned set is shared; callers must not modify it.
func (d *Document) AllNodes() *Set { return d.allNodes }

// finish assigns pre/start/end numbers, builds the label and id indexes, and
// freezes the document. It is called exactly once by Parse and Builder.Done.
func (d *Document) finish() {
	d.nodes = d.nodes[:0]
	d.ids = make(map[string]*Node)
	counter := 0
	var walk func(n *Node, level int)
	var order []*Node
	walk = func(n *Node, level int) {
		n.doc = d
		n.pre = len(order)
		n.level = level
		n.start = counter
		counter++
		order = append(order, n)
		for i, c := range n.kids {
			c.sibIdx = i
			walk(c, level+1)
		}
		n.end = counter
		counter++
	}
	walk(d.root, 0)
	d.nodes = order
	// String values, post-order so children are ready before their parents.
	for i := len(order) - 1; i >= 0; i-- {
		order[i].computeStrval()
	}

	d.byLabel = make(map[string]*Set)
	d.allElems = NewSet(d)
	d.allNodes = NewSet(d)
	d.emptySet = NewSet(d)
	for _, n := range d.nodes {
		d.allNodes.Add(n)
		if n.parent == nil {
			continue
		}
		d.allElems.Add(n)
		s, ok := d.byLabel[n.label]
		if !ok {
			s = NewSet(d)
			d.byLabel[n.label] = s
		}
		s.Add(n)
		if id, ok := n.Attr("id"); ok {
			if _, dup := d.ids[id]; !dup {
				d.ids[id] = n
			}
		}
	}
	d.buildTopology()
}

// SortDocOrder sorts a slice of nodes into document order in place.
func SortDocOrder(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].pre < nodes[j].pre })
}
