package xmltree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// deepXML returns a document nested depth elements deep.
func deepXML(depth int) string {
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("</a>")
	}
	return sb.String()
}

func TestParseDepthLimit(t *testing.T) {
	l := Limits{MaxDepth: 8}
	if _, err := ParseWithLimits(strings.NewReader(deepXML(8)), l); err != nil {
		t.Fatalf("depth 8 under MaxDepth 8: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader(deepXML(9)), l)
	if !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("depth 9 under MaxDepth 8: err = %v, want ErrDepthLimit", err)
	}
}

func TestParseNodeLimit(t *testing.T) {
	// 8 elements + document root = 9 nodes.
	xml := "<r>" + strings.Repeat("<a/>", 7) + "</r>"
	if _, err := ParseWithLimits(strings.NewReader(xml), Limits{MaxNodes: 9}); err != nil {
		t.Fatalf("9 nodes under MaxNodes 9: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader(xml), Limits{MaxNodes: 8})
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("9 nodes under MaxNodes 8: err = %v, want ErrNodeLimit", err)
	}
}

func TestParseUnlimitedWhenZero(t *testing.T) {
	if _, err := ParseWithLimits(strings.NewReader(deepXML(100)), Limits{}); err != nil {
		t.Fatalf("zero Limits must not limit: %v", err)
	}
}

func TestParseDefaultLimitsApplied(t *testing.T) {
	_, err := ParseString(deepXML(DefaultMaxDepth + 1))
	if !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("Parse past DefaultMaxDepth: err = %v, want ErrDepthLimit", err)
	}
	// Builder stays unlimited: generators synthesize what Parse rejects.
	b := NewBuilder()
	for i := 0; i < DefaultMaxDepth+10; i++ {
		b.Start("a")
	}
	for i := 0; i < DefaultMaxDepth+10; i++ {
		if err := b.End(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Done(); err != nil {
		t.Fatalf("deep Builder document: %v", err)
	}
}

func TestLoadSnapshotDepthLimit(t *testing.T) {
	d, err := ParseWithLimits(strings.NewReader(deepXML(40)), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotWithLimits(bytes.NewReader(buf.Bytes()), Limits{MaxDepth: 40}); err != nil {
		t.Fatalf("depth 40 under MaxDepth 40: %v", err)
	}
	_, err = LoadSnapshotWithLimits(bytes.NewReader(buf.Bytes()), Limits{MaxDepth: 39})
	if !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("depth 40 under MaxDepth 39: err = %v, want ErrDepthLimit", err)
	}
	_, err = LoadSnapshotWithLimits(bytes.NewReader(buf.Bytes()), Limits{MaxNodes: 10})
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("41 nodes under MaxNodes 10: err = %v, want ErrNodeLimit", err)
	}
}

// TestSnapshotHugeClaimsFailSmall: a tiny stream declaring huge counts or
// string lengths must fail with an error after a bounded allocation — the
// length words are claims, not facts.
func TestSnapshotHugeClaimsFailSmall(t *testing.T) {
	uv := func(v uint64) []byte {
		var b [binary.MaxVarintLen64]byte
		return b[:binary.PutUvarint(b[:], v)]
	}
	cases := map[string][]byte{
		// Label table claiming 2^24 labels, then nothing.
		"huge label count": append([]byte(snapshotMagic), uv(1<<24)...),
		// One label claiming a gigabyte of bytes, then nothing.
		"huge string length": append(append([]byte(snapshotMagic), uv(1)...), uv(1<<30)...),
		// A start event claiming 2^20 attributes, then nothing.
		"huge attr count": func() []byte {
			b := append([]byte(snapshotMagic), uv(1)...) // one label
			b = append(b, uv(1)...)                      // len("a")
			b = append(b, 'a')
			b = append(b, evStart)
			b = append(b, uv(0)...)     // label index
			b = append(b, uv(1<<20)...) // attr count claim
			return b
		}(),
	}
	for name, stream := range cases {
		if _, err := LoadSnapshot(bytes.NewReader(stream)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// FuzzLoadSnapshot: arbitrary and mutated snapshot bytes must never panic
// or over-allocate — any outcome but (valid document | error) is a bug.
func FuzzLoadSnapshot(f *testing.F) {
	d := MustParseString(`<a x="1"><b>hi</b><c/>tail</a>`)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	// Truncations and single-byte corruptions of a valid snapshot.
	for cut := 1; cut < len(valid); cut += 3 {
		f.Add(valid[:cut])
	}
	for i := 0; i < len(valid); i += 2 {
		mut := bytes.Clone(valid)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := LoadSnapshotWithLimits(bytes.NewReader(data), Limits{MaxDepth: 64, MaxNodes: 1 << 12})
		if err == nil && doc == nil {
			t.Fatal("nil document without error")
		}
	})
}
