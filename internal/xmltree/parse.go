package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Ingest instruments. Parse times include the topology build (Done calls
// finish); programmatic Builder use reports only the build histogram and the
// topology footprint.
var (
	mParseDocs  = metrics.Default().Counter("xmltree.parse.docs")
	mParseNodes = metrics.Default().Counter("xmltree.parse.nodes")
	mParseBytes = metrics.Default().Counter("xmltree.parse.bytes")
	mParseNs    = metrics.Default().Histogram("xmltree.parse_ns")
	mBuildNs    = metrics.Default().Histogram("xmltree.build_ns")
	mTopoBytes  = metrics.Default().Counter("xmltree.topology_bytes")
)

// Ingest bounds. The derived-index builder (Document.finish) and the
// snapshot writer recurse once per nesting level, so an adversarial
// document that is deep enough overflows the goroutine stack — a fatal,
// unrecoverable crash, unlike a panic. The node cap bounds ingest memory.
// Both defaults are far above anything a real document does (XML in the
// wild nests tens of levels, not thousands) while keeping the recursion
// comfortably inside Go's default stack budget.
const (
	// DefaultMaxDepth is the element-nesting bound Parse and LoadSnapshot
	// apply when the caller does not choose its own Limits.
	DefaultMaxDepth = 4096
	// DefaultMaxNodes is the matching node-count bound (elements plus the
	// document root).
	DefaultMaxNodes = 1 << 26
)

// ErrDepthLimit and ErrNodeLimit classify ingest-limit failures; both are
// wrapped with the offending limit, comparable with errors.Is.
var (
	ErrDepthLimit = errors.New("xmltree: document exceeds the nesting depth limit")
	ErrNodeLimit  = errors.New("xmltree: document exceeds the node count limit")
)

// Limits bounds one document ingest against adversarial input. A zero or
// negative field imposes no corresponding limit; DefaultLimits returns the
// bounds Parse and LoadSnapshot use on their own.
type Limits struct {
	// MaxDepth caps element nesting depth.
	MaxDepth int
	// MaxNodes caps the total node count, document root included.
	MaxNodes int
}

// DefaultLimits returns the ingest bounds applied by Parse and LoadSnapshot.
func DefaultLimits() Limits {
	return Limits{MaxDepth: DefaultMaxDepth, MaxNodes: DefaultMaxNodes}
}

// checkDepth enforces MaxDepth against the current nesting depth.
func (l Limits) checkDepth(depth int) error {
	if l.MaxDepth > 0 && depth > l.MaxDepth {
		return fmt.Errorf("%w (%d)", ErrDepthLimit, l.MaxDepth)
	}
	return nil
}

// checkNodes enforces MaxNodes against the current node count.
func (l Limits) checkNodes(count int) error {
	if l.MaxNodes > 0 && count > l.MaxNodes {
		return fmt.Errorf("%w (%d)", ErrNodeLimit, l.MaxNodes)
	}
	return nil
}

// countingReader counts the raw bytes the decoder consumes.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Parse reads an XML document from r and returns its tree representation.
// Comments and processing instructions are skipped (the paper's data model
// has a single node kind); attributes are kept as data on their element.
// Namespace prefixes are retained verbatim in labels — the paper excludes
// namespace processing. DefaultLimits applies; ParseWithLimits chooses
// other bounds (the programmatic Builder is never limited — generators
// synthesize arbitrarily large documents through it).
func Parse(r io.Reader) (*Document, error) {
	return ParseWithLimits(r, DefaultLimits())
}

// ParseWithLimits is Parse under caller-chosen ingest bounds; exceeding one
// returns an error wrapping ErrDepthLimit or ErrNodeLimit.
func ParseWithLimits(r io.Reader, l Limits) (*Document, error) {
	t0 := trace.Now()
	cr := &countingReader{r: r}
	dec := xml.NewDecoder(cr)
	// The evaluation algorithms never dereference external entities; the
	// default strict decoder settings are what we want, but we accept
	// repeated attributes etc. as encoding/xml does.
	b := NewBuilder()
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if err := l.checkDepth(depth); err != nil {
				return nil, err
			}
			attrs := make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				attrs = append(attrs, Attr{Name: attrName(a.Name), Value: a.Value})
			}
			b.Start(attrName(t.Name), attrs...)
			if err := l.checkNodes(b.count); err != nil {
				return nil, err
			}
		case xml.EndElement:
			if err := b.End(); err != nil {
				return nil, err
			}
			depth--
		case xml.CharData:
			if depth > 0 {
				b.Text(string(t))
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Not part of the data model (§2.1).
		}
	}
	d, err := b.Done()
	if err != nil {
		return nil, err
	}
	mParseDocs.Add(1)
	mParseNodes.Add(int64(d.NumNodes()))
	mParseBytes.Add(cr.n)
	mParseNs.Observe(trace.Now() - t0)
	return d, nil
}

func attrName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	// encoding/xml resolves prefixes to URIs; for the paper's namespace-free
	// model we keep the local name and note the space only when it would
	// otherwise be ambiguous. xml:... attributes keep their conventional
	// prefix form (the decoder reports them under the XML namespace URI).
	if n.Space == "xml" || n.Space == "http://www.w3.org/XML/1998/namespace" {
		return "xml:" + n.Local
	}
	return n.Local
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString is ParseString for known-good documents (tests, examples);
// it panics on error.
func MustParseString(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Builder constructs documents programmatically, which the workload
// generators use to synthesize large documents without paying XML
// serialization costs. Calls must form a well-nested element sequence:
//
//	b := NewBuilder()
//	b.Start("a"); b.Text("hi"); b.Start("b"); b.End(); b.End()
//	doc, err := b.Done()
type Builder struct {
	root  *Node
	stack []*Node
	count int
	err   error
}

// NewBuilder returns a builder with an empty document root on the stack.
func NewBuilder() *Builder {
	root := &Node{}
	return &Builder{root: root, stack: []*Node{root}, count: 1}
}

// Start opens a new element with the given label and attributes.
func (b *Builder) Start(label string, attrs ...Attr) *Builder {
	if b.err != nil {
		return b
	}
	parent := b.stack[len(b.stack)-1]
	n := &Node{parent: parent, label: label, attrs: attrs}
	parent.kids = append(parent.kids, n)
	parent.segments = append(parent.segments, segment{child: n})
	b.stack = append(b.stack, n)
	b.count++
	return b
}

// Text appends character data to the currently open element. Text directly
// under the document root is rejected (XML well-formedness).
func (b *Builder) Text(s string) *Builder {
	if b.err != nil || s == "" {
		return b
	}
	cur := b.stack[len(b.stack)-1]
	if cur == b.root {
		b.err = fmt.Errorf("xmltree: character data outside the document element")
		return b
	}
	cur.segments = append(cur.segments, segment{text: s})
	return b
}

// End closes the currently open element.
func (b *Builder) End() error {
	if b.err != nil {
		return b.err
	}
	if len(b.stack) <= 1 {
		b.err = fmt.Errorf("xmltree: End without matching Start")
		return b.err
	}
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

// Elem emits a complete element with optional text content and no children;
// it is shorthand for Start+Text+End.
func (b *Builder) Elem(label, text string, attrs ...Attr) *Builder {
	b.Start(label, attrs...)
	b.Text(text)
	if err := b.End(); err != nil {
		return b
	}
	return b
}

// Count returns the number of nodes created so far, including the document
// root; generators use it to stop at a target |D|.
func (b *Builder) Count() int { return b.count }

// Depth returns the number of currently open elements (document root
// excluded).
func (b *Builder) Depth() int { return len(b.stack) - 1 }

// Done finalizes and returns the document. It fails if elements remain open,
// if no document element was produced, or if more than one top-level element
// was produced.
func (b *Builder) Done() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("xmltree: %d element(s) left open", len(b.stack)-1)
	}
	if len(b.root.kids) == 0 {
		return nil, fmt.Errorf("xmltree: document has no document element")
	}
	if len(b.root.kids) > 1 {
		return nil, fmt.Errorf("xmltree: document has %d top-level elements, want 1", len(b.root.kids))
	}
	d := &Document{root: b.root}
	t0 := trace.Now()
	d.finish()
	mBuildNs.Observe(trace.Now() - t0)
	mTopoBytes.Add(d.topo.Bytes())
	return d, nil
}

// WriteXML serializes the document back to XML. It is used by examples and
// by round-trip tests; the output has no declaration and no indentation so
// that string values survive the round trip exactly.
func (d *Document) WriteXML(w io.Writer) error {
	var write func(n *Node) error
	write = func(n *Node) error {
		if !n.IsRoot() {
			if _, err := io.WriteString(w, "<"+n.label); err != nil {
				return err
			}
			for _, a := range n.attrs {
				if _, err := io.WriteString(w, " "+a.Name+`="`+xmlEscape(a.Value)+`"`); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, ">"); err != nil {
				return err
			}
		}
		for _, s := range n.segments {
			if s.child != nil {
				if err := write(s.child); err != nil {
					return err
				}
			} else if _, err := io.WriteString(w, xmlEscape(s.text)); err != nil {
				return err
			}
		}
		if !n.IsRoot() {
			if _, err := io.WriteString(w, "</"+n.label+">"); err != nil {
				return err
			}
		}
		return nil
	}
	return write(d.root)
}

// XMLString returns the document serialized as XML.
func (d *Document) XMLString() string {
	var b strings.Builder
	// strings.Builder's Write never fails.
	_ = d.WriteXML(&b)
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
