package xmltree

import (
	"strings"
	"sync"
)

// Interner is a concurrency-safe, reference-counted string intern table. A
// document store holding many documents parsed from similar vocabularies
// wastes memory on duplicate label strings: encoding/xml allocates a fresh
// string per start tag, so a corpus of n documents with a shared schema
// carries n copies of every tag name. Interning maps every equal label onto
// one canonical backing string shared across all documents of the corpus.
//
// The reference counts exist for the mutable-corpus scenario: documents are
// retained into the table when they join a store (Document.InternLabels)
// and released when they leave it (Document.ReleaseLabels), so a label used
// by no live document is dropped from the table instead of pinning its
// canonical string forever under Replace/Remove churn. Dropping an entry
// never invalidates strings already handed out — Go strings are immutable —
// it only means a future Intern of the same text re-clones it.
type Interner struct {
	mu   sync.RWMutex
	m    map[string]string
	refs map[string]int
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string), refs: make(map[string]int)}
}

// Intern returns the canonical copy of s, installing one on first sight.
// The canonical string is cloned from s, so it never pins a larger parse
// buffer s might be a slice of. Interning alone does not retain the string:
// retention is per document, via InternLabels/ReleaseLabels.
func (in *Interner) Intern(s string) string {
	in.mu.RLock()
	c, ok := in.m[s]
	in.mu.RUnlock()
	if ok {
		return c
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok := in.m[s]; ok {
		return c
	}
	c = strings.Clone(s)
	in.m[c] = c
	return c
}

// retain increments the reference count of every label in the set.
func (in *Interner) retain(labels map[string]struct{}) {
	in.mu.Lock()
	for l := range labels {
		in.refs[l]++
	}
	in.mu.Unlock()
}

// release decrements the reference count of every label in the set,
// dropping table entries whose count reaches zero. Labels never retained
// (interned directly, or counted down already) are left alone: the table
// must keep working for callers that use Intern without the
// retain/release protocol.
func (in *Interner) release(labels map[string]struct{}) {
	in.mu.Lock()
	for l := range labels {
		c, ok := in.refs[l]
		if !ok {
			continue
		}
		if c <= 1 {
			delete(in.refs, l)
			delete(in.m, l)
		} else {
			in.refs[l] = c - 1
		}
	}
	in.mu.Unlock()
}

// Len returns the number of canonical strings held.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}

// Refs returns the reference count currently held for the label (0 when
// the label is not retained). Diagnostics and tests only.
func (in *Interner) Refs(label string) int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.refs[label]
}

// labelSet collects the document's distinct element labels and attribute
// names — exactly the strings InternLabels canonicalizes — so retain and
// release see the same multiset (one count per distinct string per
// document).
func (d *Document) labelSet() map[string]struct{} {
	set := make(map[string]struct{}, len(d.labels)+4)
	for _, n := range d.nodes {
		set[n.label] = struct{}{}
		for i := range n.attrs {
			set[n.attrs[i].Name] = struct{}{}
		}
	}
	return set
}

// InternLabels replaces every element label and attribute name of the
// document with its canonical interned copy, re-keys the label index
// accordingly so the old per-document strings become collectable, and
// retains one reference per distinct label on behalf of this document.
// Attribute and text values are left alone (they are usually unique).
//
// The replacement strings are equal to the originals, so the document's
// observable state is unchanged; but because string headers are rewritten
// in place, InternLabels must not run concurrently with readers of the
// document. Call it once, before the document is shared — Store.Add does.
func (d *Document) InternLabels(in *Interner) {
	for _, n := range d.nodes {
		n.label = in.Intern(n.label)
		for i := range n.attrs {
			n.attrs[i].Name = in.Intern(n.attrs[i].Name)
		}
	}
	byLabel := make(map[string]*Set, len(d.byLabel))
	for k, v := range d.byLabel {
		byLabel[in.Intern(k)] = v
	}
	d.byLabel = byLabel
	// Keep the flat label table canonical too, so LabelByID returns the
	// interned copy and per-document strings become collectable.
	for i, l := range d.labels {
		d.labels[i] = in.Intern(l)
	}
	in.retain(d.labelSet())
}

// ReleaseLabels drops the references InternLabels retained: call it when
// the document leaves the store that interned it (Store.Remove, or the
// displaced document of Store.Replace). Unlike InternLabels it only reads
// the document, so it is safe to run while old readers still evaluate the
// departing document — their strings stay valid; only the intern table's
// bookkeeping changes.
func (d *Document) ReleaseLabels(in *Interner) {
	in.release(d.labelSet())
}
