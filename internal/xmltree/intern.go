package xmltree

import (
	"strings"
	"sync"
)

// Interner is a concurrency-safe string intern table. A document store
// holding many documents parsed from similar vocabularies wastes memory on
// duplicate label strings: encoding/xml allocates a fresh string per start
// tag, so a corpus of n documents with a shared schema carries n copies of
// every tag name. Interning maps every equal label onto one canonical
// backing string shared across all documents of the corpus.
type Interner struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner { return &Interner{m: make(map[string]string)} }

// Intern returns the canonical copy of s, installing one on first sight.
// The canonical string is cloned from s, so it never pins a larger parse
// buffer s might be a slice of.
func (in *Interner) Intern(s string) string {
	in.mu.RLock()
	c, ok := in.m[s]
	in.mu.RUnlock()
	if ok {
		return c
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok := in.m[s]; ok {
		return c
	}
	c = strings.Clone(s)
	in.m[c] = c
	return c
}

// Len returns the number of canonical strings held.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}

// InternLabels replaces every element label and attribute name of the
// document with its canonical interned copy, and re-keys the label index
// accordingly so the old per-document strings become collectable. Attribute
// and text values are left alone (they are usually unique).
//
// The replacement strings are equal to the originals, so the document's
// observable state is unchanged; but because string headers are rewritten
// in place, InternLabels must not run concurrently with readers of the
// document. Call it once, before the document is shared — Store.Add does.
func (d *Document) InternLabels(in *Interner) {
	for _, n := range d.nodes {
		n.label = in.Intern(n.label)
		for i := range n.attrs {
			n.attrs[i].Name = in.Intern(n.attrs[i].Name)
		}
	}
	byLabel := make(map[string]*Set, len(d.byLabel))
	for k, v := range d.byLabel {
		byLabel[in.Intern(k)] = v
	}
	d.byLabel = byLabel
	// Keep the flat label table canonical too, so LabelByID returns the
	// interned copy and per-document strings become collectable.
	for i, l := range d.labels {
		d.labels[i] = in.Intern(l)
	}
}
