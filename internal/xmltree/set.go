package xmltree

import (
	"math/bits"
	"strings"
)

// Set is a set of nodes of one Document, represented as a bitset over the
// document-order index. This is the node-set representation assumed by
// Definition 1 of the paper: unions, intersections and membership are cheap,
// and iteration enumerates nodes in document order (or reverse document
// order), which the axis functions and position/size loops require.
//
// The cardinality is maintained eagerly by every mutating method, so all
// read methods (Len, IsEmpty, Has, iteration, …) are pure and safe for any
// number of concurrent readers once mutation has ceased. (An earlier lazy
// Len cache wrote the set on a read path — a data race when a shared result
// set was read concurrently.)
//
// The zero value is not useful; use NewSet.
type Set struct {
	doc   *Document
	words []uint64
	n     int // cardinality, maintained eagerly by all mutators
}

// NewSet returns an empty set over the given document's nodes.
func NewSet(doc *Document) *Set {
	return &Set{doc: doc, words: make([]uint64, (doc.NumNodes()+63)/64)}
}

// Document returns the document this set draws its nodes from.
func (s *Set) Document() *Document { return s.doc }

// Words exposes the set's backing bit words (bit i of word w is the node
// with pre index w*64+i). The slice is the live backing store: callers must
// treat it as read-only, and writes to the set invalidate derived counts.
// It exists for the word-at-a-time axis kernels of internal/axes.
//
//xpathlint:noalloc
func (s *Set) Words() []uint64 { return s.words }

// Add inserts the node into the set.
//
//xpathlint:noalloc
func (s *Set) Add(node *Node) { s.AddPre(node.pre) }

// AddPre inserts the node with the given document-order index.
//
//xpathlint:noalloc
func (s *Set) AddPre(pre int) {
	w, b := pre/64, uint(pre%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.n++
	}
}

// AddRange inserts every node with pre index in [lo, hi), word-parallel.
//
//xpathlint:noalloc
func (s *Set) AddRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo/64, (hi-1)/64
	loMask := ^uint64(0) << uint(lo%64)
	hiMask := ^uint64(0) >> uint(63-(hi-1)%64)
	if loW == hiW {
		s.orWord(loW, loMask&hiMask)
		return
	}
	s.orWord(loW, loMask)
	for w := loW + 1; w < hiW; w++ {
		s.orWord(w, ^uint64(0))
	}
	s.orWord(hiW, hiMask)
}

// orWord ORs a mask into one word, keeping the cardinality exact.
//
//xpathlint:noalloc
func (s *Set) orWord(w int, mask uint64) {
	old := s.words[w]
	s.words[w] = old | mask
	s.n += bits.OnesCount64(mask &^ old)
}

// Remove deletes the node from the set.
func (s *Set) Remove(node *Node) { s.RemovePre(node.pre) }

// RemovePre deletes the node with the given document-order index.
//
//xpathlint:noalloc
func (s *Set) RemovePre(pre int) {
	w, b := pre/64, uint(pre%64)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.n--
	}
}

// Has reports whether the node is in the set.
func (s *Set) Has(node *Node) bool { return s.HasPre(node.pre) }

// HasPre reports whether the node with the given document-order index is in
// the set.
//
//xpathlint:noalloc
func (s *Set) HasPre(pre int) bool {
	return s.words[pre/64]&(1<<uint(pre%64)) != 0
}

// Len returns the number of nodes in the set. It is a pure read.
func (s *Set) Len() int { return s.n }

// IsEmpty reports whether the set contains no nodes.
func (s *Set) IsEmpty() bool { return s.n == 0 }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{doc: s.doc, words: w, n: s.n}
}

// CopyFrom makes s an exact copy of t (both over the same document),
// reusing s's backing words.
//
//xpathlint:noalloc
func (s *Set) CopyFrom(t *Set) {
	copy(s.words, t.words)
	s.n = t.n
}

// Clear removes all nodes from the set.
//
//xpathlint:noalloc
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// UnionWith adds every node of t to s (s ∪= t).
//
//xpathlint:noalloc
func (s *Set) UnionWith(t *Set) {
	n := 0
	for i, w := range t.words {
		v := s.words[i] | w
		s.words[i] = v
		n += bits.OnesCount64(v)
	}
	s.n = n
}

// IntersectWith removes from s every node not in t (s ∩= t).
//
//xpathlint:noalloc
func (s *Set) IntersectWith(t *Set) {
	n := 0
	for i := range s.words {
		v := s.words[i] & t.words[i]
		s.words[i] = v
		n += bits.OnesCount64(v)
	}
	s.n = n
}

// SubtractWith removes from s every node in t (s −= t).
//
//xpathlint:noalloc
func (s *Set) SubtractWith(t *Set) {
	n := 0
	for i := range s.words {
		v := s.words[i] &^ t.words[i]
		s.words[i] = v
		n += bits.OnesCount64(v)
	}
	s.n = n
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	out := s.Clone()
	out.UnionWith(t)
	return out
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	out := s.Clone()
	out.IntersectWith(t)
	return out
}

// Equal reports whether s and t contain exactly the same nodes.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is nonempty.
func (s *Set) Intersects(t *Set) bool {
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// First returns the first node of the set in document order
// (first_<doc of §2.1), or nil if the set is empty.
func (s *Set) First() *Node {
	if pre := s.FirstPre(); pre >= 0 {
		return s.doc.nodes[pre]
	}
	return nil
}

// FirstPre returns the pre index of the first node in document order, or -1.
func (s *Set) FirstPre() int {
	for i, w := range s.words {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Last returns the last node of the set in document order, or nil.
func (s *Set) Last() *Node {
	if pre := s.LastPre(); pre >= 0 {
		return s.doc.nodes[pre]
	}
	return nil
}

// LastPre returns the pre index of the last node in document order, or -1.
func (s *Set) LastPre() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*64 + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// ForEach calls f for every node of the set in document order.
func (s *Set) ForEach(f func(*Node)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(s.doc.nodes[i*64+b])
			w &^= 1 << uint(b)
		}
	}
}

// ForEachPre calls f for every member's pre index in document order.
func (s *Set) ForEachPre(f func(int)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(i*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// ForEachReverse calls f for every node of the set in reverse document
// order, the iteration order <doc,χ of the backward axes (§2.1).
func (s *Set) ForEachReverse(f func(*Node)) {
	for i := len(s.words) - 1; i >= 0; i-- {
		w := s.words[i]
		for w != 0 {
			b := 63 - bits.LeadingZeros64(w)
			f(s.doc.nodes[i*64+b])
			w &^= 1 << uint(b)
		}
	}
}

// Nodes returns the set's nodes as a fresh slice in document order.
func (s *Set) Nodes() []*Node {
	out := make([]*Node, 0, s.Len())
	s.ForEach(func(n *Node) { out = append(out, n) })
	return out
}

// NodesReverse returns the set's nodes as a fresh slice in reverse document
// order.
func (s *Set) NodesReverse() []*Node {
	out := make([]*Node, 0, s.Len())
	s.ForEachReverse(func(n *Node) { out = append(out, n) })
	return out
}

// AppendTo appends the set's nodes in document order to dst and returns the
// extended slice; it is the allocation-conscious form of Nodes.
func (s *Set) AppendTo(dst []*Node) []*Node {
	s.ForEach(func(n *Node) { dst = append(dst, n) })
	return dst
}

// String renders the set as the labels-with-ids notation used in the paper's
// examples, e.g. "{x11, x12}". Nodes without an id attribute render by label
// and document-order index.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("{")
	first := true
	s.ForEach(func(n *Node) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		if id, ok := n.Attr("id"); ok {
			b.WriteString("x" + id)
		} else if n.IsRoot() {
			b.WriteString("/")
		} else {
			b.WriteString(n.Label())
		}
	})
	b.WriteString("}")
	return b.String()
}

// SetFromNodes builds a set containing the given nodes, which must all
// belong to doc.
func SetFromNodes(doc *Document, nodes []*Node) *Set {
	s := NewSet(doc)
	for _, n := range nodes {
		s.Add(n)
	}
	return s
}

// Singleton returns the set {n}.
func Singleton(n *Node) *Set {
	s := NewSet(n.doc)
	s.Add(n)
	return s
}
