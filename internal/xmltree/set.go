package xmltree

import (
	"math/bits"
	"strings"
)

// Set is a set of nodes of one Document, represented as a bitset over the
// document-order index. This is the node-set representation assumed by
// Definition 1 of the paper: unions, intersections and membership are cheap,
// and iteration enumerates nodes in document order (or reverse document
// order), which the axis functions and position/size loops require.
//
// The zero value is not useful; use NewSet.
type Set struct {
	doc   *Document
	words []uint64
	n     int // cached cardinality; -1 when stale
}

// NewSet returns an empty set over the given document's nodes.
func NewSet(doc *Document) *Set {
	return &Set{doc: doc, words: make([]uint64, (doc.NumNodes()+63)/64), n: 0}
}

// Document returns the document this set draws its nodes from.
func (s *Set) Document() *Document { return s.doc }

// Add inserts the node into the set.
func (s *Set) Add(node *Node) { s.AddPre(node.pre) }

// AddPre inserts the node with the given document-order index.
func (s *Set) AddPre(pre int) {
	w, b := pre/64, uint(pre%64)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		if s.n >= 0 {
			s.n++
		}
	}
}

// Remove deletes the node from the set.
func (s *Set) Remove(node *Node) {
	w, b := node.pre/64, uint(node.pre%64)
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		if s.n >= 0 {
			s.n--
		}
	}
}

// Has reports whether the node is in the set.
func (s *Set) Has(node *Node) bool { return s.HasPre(node.pre) }

// HasPre reports whether the node with the given document-order index is in
// the set.
func (s *Set) HasPre(pre int) bool {
	return s.words[pre/64]&(1<<uint(pre%64)) != 0
}

// Len returns the number of nodes in the set.
func (s *Set) Len() int {
	if s.n < 0 {
		n := 0
		for _, w := range s.words {
			n += bits.OnesCount64(w)
		}
		s.n = n
	}
	return s.n
}

// IsEmpty reports whether the set contains no nodes.
func (s *Set) IsEmpty() bool {
	if s.n >= 0 {
		return s.n == 0
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{doc: s.doc, words: w, n: s.n}
}

// Clear removes all nodes from the set.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// UnionWith adds every node of t to s (s ∪= t).
func (s *Set) UnionWith(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
	s.n = -1
}

// IntersectWith removes from s every node not in t (s ∩= t).
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
	s.n = -1
}

// SubtractWith removes from s every node in t (s −= t).
func (s *Set) SubtractWith(t *Set) {
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
	s.n = -1
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	out := s.Clone()
	out.UnionWith(t)
	return out
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	out := s.Clone()
	out.IntersectWith(t)
	return out
}

// Equal reports whether s and t contain exactly the same nodes.
func (s *Set) Equal(t *Set) bool {
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is nonempty.
func (s *Set) Intersects(t *Set) bool {
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// First returns the first node of the set in document order
// (first_<doc of §2.1), or nil if the set is empty.
func (s *Set) First() *Node {
	for i, w := range s.words {
		if w != 0 {
			return s.doc.nodes[i*64+bits.TrailingZeros64(w)]
		}
	}
	return nil
}

// Last returns the last node of the set in document order, or nil.
func (s *Set) Last() *Node {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return s.doc.nodes[i*64+63-bits.LeadingZeros64(w)]
		}
	}
	return nil
}

// ForEach calls f for every node of the set in document order.
func (s *Set) ForEach(f func(*Node)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(s.doc.nodes[i*64+b])
			w &^= 1 << uint(b)
		}
	}
}

// ForEachReverse calls f for every node of the set in reverse document
// order, the iteration order <doc,χ of the backward axes (§2.1).
func (s *Set) ForEachReverse(f func(*Node)) {
	for i := len(s.words) - 1; i >= 0; i-- {
		w := s.words[i]
		for w != 0 {
			b := 63 - bits.LeadingZeros64(w)
			f(s.doc.nodes[i*64+b])
			w &^= 1 << uint(b)
		}
	}
}

// Nodes returns the set's nodes as a fresh slice in document order.
func (s *Set) Nodes() []*Node {
	out := make([]*Node, 0, s.Len())
	s.ForEach(func(n *Node) { out = append(out, n) })
	return out
}

// NodesReverse returns the set's nodes as a fresh slice in reverse document
// order.
func (s *Set) NodesReverse() []*Node {
	out := make([]*Node, 0, s.Len())
	s.ForEachReverse(func(n *Node) { out = append(out, n) })
	return out
}

// AppendTo appends the set's nodes in document order to dst and returns the
// extended slice; it is the allocation-conscious form of Nodes.
func (s *Set) AppendTo(dst []*Node) []*Node {
	s.ForEach(func(n *Node) { dst = append(dst, n) })
	return dst
}

// String renders the set as the labels-with-ids notation used in the paper's
// examples, e.g. "{x11, x12}". Nodes without an id attribute render by label
// and document-order index.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("{")
	first := true
	s.ForEach(func(n *Node) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		if id, ok := n.Attr("id"); ok {
			b.WriteString("x" + id)
		} else if n.IsRoot() {
			b.WriteString("/")
		} else {
			b.WriteString(n.Label())
		}
	})
	b.WriteString("}")
	return b.String()
}

// SetFromNodes builds a set containing the given nodes, which must all
// belong to doc.
func SetFromNodes(doc *Document, nodes []*Node) *Set {
	s := NewSet(doc)
	for _, n := range nodes {
		s.Add(n)
	}
	return s
}

// Singleton returns the set {n}.
func Singleton(n *Node) *Set {
	s := NewSet(n.doc)
	s.Add(n)
	return s
}
