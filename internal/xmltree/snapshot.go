package xmltree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot is a compact binary serialization of a Document: labels are
// interned into a string table and the tree is emitted as a preorder event
// stream. Loading a snapshot rebuilds the document — including all derived
// indexes (document order, event numbers, string values, label sets, ids) —
// without re-parsing XML. It is the persistence substrate the paper's
// conclusion points at ("using our techniques for XPath processors that
// query XML documents stored in a database"): documents can be prepared
// once and memory-mapped into evaluation processes cheaply.
//
// Format (all integers unsigned varints, strings length-prefixed):
//
//	magic "XPT1"
//	labelCount, labels…
//	events…  where each event is one of
//	    0 end-of-element
//	    1 start-of-element: labelIdx, attrCount, (name, value)…
//	    2 text: content
//	    3 end-of-document
const snapshotMagic = "XPT1"

const (
	evEnd byte = iota
	evStart
	evText
	evEOF
)

// WriteSnapshot serializes the document.
func (d *Document) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}

	// Label table, in order of first appearance.
	labelIdx := make(map[string]int)
	var labels []string
	for _, n := range d.nodes[1:] {
		if _, ok := labelIdx[n.label]; !ok {
			labelIdx[n.label] = len(labels)
			labels = append(labels, n.label)
		}
	}
	WriteUvarint(bw, uint64(len(labels)))
	for _, l := range labels {
		WriteSnapString(bw, l)
	}

	var walk func(n *Node) error
	walk = func(n *Node) error {
		if !n.IsRoot() {
			if err := bw.WriteByte(evStart); err != nil {
				return err
			}
			WriteUvarint(bw, uint64(labelIdx[n.label]))
			WriteUvarint(bw, uint64(len(n.attrs)))
			for _, a := range n.attrs {
				WriteSnapString(bw, a.Name)
				WriteSnapString(bw, a.Value)
			}
		}
		for _, seg := range n.segments {
			if seg.child != nil {
				if err := walk(seg.child); err != nil {
					return err
				}
			} else {
				if err := bw.WriteByte(evText); err != nil {
					return err
				}
				WriteSnapString(bw, seg.text)
			}
		}
		if !n.IsRoot() {
			if err := bw.WriteByte(evEnd); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(d.root); err != nil {
		return err
	}
	if err := bw.WriteByte(evEOF); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSnapshot reads a snapshot written by WriteSnapshot and rebuilds the
// document with all evaluation indexes.
func LoadSnapshot(r io.Reader) (*Document, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("xmltree: snapshot: bad magic %q", magic)
	}
	nLabels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: label count: %w", err)
	}
	if nLabels > 1<<24 {
		return nil, fmt.Errorf("xmltree: snapshot: implausible label count %d", nLabels)
	}
	labels := make([]string, nLabels)
	for i := range labels {
		if labels[i], err = ReadSnapString(br); err != nil {
			return nil, fmt.Errorf("xmltree: snapshot: label %d: %w", i, err)
		}
	}

	b := NewBuilder()
	for {
		ev, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("xmltree: snapshot: event: %w", err)
		}
		switch ev {
		case evStart:
			li, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if li >= uint64(len(labels)) {
				return nil, fmt.Errorf("xmltree: snapshot: label index %d out of range", li)
			}
			nAttrs, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if nAttrs > 1<<20 {
				return nil, fmt.Errorf("xmltree: snapshot: implausible attribute count %d", nAttrs)
			}
			attrs := make([]Attr, nAttrs)
			for i := range attrs {
				if attrs[i].Name, err = ReadSnapString(br); err != nil {
					return nil, err
				}
				if attrs[i].Value, err = ReadSnapString(br); err != nil {
					return nil, err
				}
			}
			b.Start(labels[li], attrs...)
		case evText:
			s, err := ReadSnapString(br)
			if err != nil {
				return nil, err
			}
			b.Text(s)
		case evEnd:
			if err := b.End(); err != nil {
				return nil, fmt.Errorf("xmltree: snapshot: %w", err)
			}
		case evEOF:
			return b.Done()
		default:
			return nil, fmt.Errorf("xmltree: snapshot: unknown event %d", ev)
		}
	}
}

// WriteUvarint, WriteSnapString and ReadSnapString are the shared framing
// primitives of the snapshot formats — the per-document "XPT1" stream here
// and the corpus "XPC1" stream of internal/store both use them, so the two
// formats cannot drift apart on varint encoding or sanity limits.

// WriteUvarint appends an unsigned varint.
func WriteUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	// bufio.Writer.Write never returns an error until Flush.
	_, _ = w.Write(buf[:n])
}

// WriteSnapString appends a length-prefixed string.
func WriteSnapString(w *bufio.Writer, s string) {
	WriteUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

// ReadSnapString reads a length-prefixed string, rejecting implausible
// lengths (the cap admits large text segments; callers with tighter
// domains — e.g. document IDs — validate at write time).
func ReadSnapString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
