package xmltree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a compact binary serialization of a Document: labels are
// interned into a string table and the tree is emitted as a preorder event
// stream. Loading a snapshot rebuilds the document — including all derived
// indexes (document order, event numbers, string values, label sets, ids) —
// without re-parsing XML. It is the persistence substrate the paper's
// conclusion points at ("using our techniques for XPath processors that
// query XML documents stored in a database"): documents can be prepared
// once and memory-mapped into evaluation processes cheaply.
//
// Format (all integers unsigned varints, strings length-prefixed):
//
//	magic "XPT1"
//	labelCount, labels…
//	events…  where each event is one of
//	    0 end-of-element
//	    1 start-of-element: labelIdx, attrCount, (name, value)…
//	    2 text: content
//	    3 end-of-document
const snapshotMagic = "XPT1"

const (
	evEnd byte = iota
	evStart
	evText
	evEOF
)

// WriteSnapshot serializes the document.
func (d *Document) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}

	// Label table, in order of first appearance.
	labelIdx := make(map[string]int)
	var labels []string
	for _, n := range d.nodes[1:] {
		if _, ok := labelIdx[n.label]; !ok {
			labelIdx[n.label] = len(labels)
			labels = append(labels, n.label)
		}
	}
	WriteUvarint(bw, uint64(len(labels)))
	for _, l := range labels {
		WriteSnapString(bw, l)
	}

	var walk func(n *Node) error
	walk = func(n *Node) error {
		if !n.IsRoot() {
			if err := bw.WriteByte(evStart); err != nil {
				return err
			}
			WriteUvarint(bw, uint64(labelIdx[n.label]))
			WriteUvarint(bw, uint64(len(n.attrs)))
			for _, a := range n.attrs {
				WriteSnapString(bw, a.Name)
				WriteSnapString(bw, a.Value)
			}
		}
		for _, seg := range n.segments {
			if seg.child != nil {
				if err := walk(seg.child); err != nil {
					return err
				}
			} else {
				if err := bw.WriteByte(evText); err != nil {
					return err
				}
				WriteSnapString(bw, seg.text)
			}
		}
		if !n.IsRoot() {
			if err := bw.WriteByte(evEnd); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(d.root); err != nil {
		return err
	}
	if err := bw.WriteByte(evEOF); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSnapshot reads a snapshot written by WriteSnapshot and rebuilds the
// document with all evaluation indexes. DefaultLimits applies:
// snapshot bytes come from disk or the network, so they get the same
// adversarial-input treatment as raw XML.
func LoadSnapshot(r io.Reader) (*Document, error) {
	return LoadSnapshotWithLimits(r, DefaultLimits())
}

// LoadSnapshotWithLimits is LoadSnapshot under caller-chosen ingest bounds.
//
// Every count read from the stream is treated as a claim, not a fact: the
// label table and attribute lists grow with the bytes actually present
// (capped preallocation) so a short, corrupted stream declaring huge counts
// fails with a read error after a small allocation instead of committing
// gigabytes up front.
func LoadSnapshotWithLimits(r io.Reader, l Limits) (*Document, error) {
	d, _, err := LoadSnapshotCounted(r, l)
	return d, err
}

// LoadSnapshotCounted is LoadSnapshotWithLimits reporting additionally how
// many bytes of r the snapshot occupied — the exact count the decoder
// consumed, read-ahead excluded. Framed embeddings (the corpus formats of
// internal/store) use it to detect slack: declared frame bytes the
// document stream never accounted for.
func LoadSnapshotCounted(r io.Reader, l Limits) (*Document, int64, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	d, err := loadSnapshotFrom(br, l)
	return d, cr.n - int64(br.Buffered()), err
}

func loadSnapshotFrom(br *bufio.Reader, l Limits) (*Document, error) {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("xmltree: snapshot: bad magic %q", magic)
	}
	nLabels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: label count: %w", err)
	}
	if nLabels > 1<<24 {
		return nil, fmt.Errorf("xmltree: snapshot: implausible label count %d", nLabels)
	}
	labels := make([]string, 0, min(nLabels, 4096))
	for i := uint64(0); i < nLabels; i++ {
		s, err := ReadSnapString(br)
		if err != nil {
			return nil, fmt.Errorf("xmltree: snapshot: label %d: %w", i, err)
		}
		labels = append(labels, s)
	}

	b := NewBuilder()
	depth := 0
	for {
		ev, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("xmltree: snapshot: event: %w", err)
		}
		switch ev {
		case evStart:
			li, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if li >= uint64(len(labels)) {
				return nil, fmt.Errorf("xmltree: snapshot: label index %d out of range", li)
			}
			nAttrs, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if nAttrs > 1<<20 {
				return nil, fmt.Errorf("xmltree: snapshot: implausible attribute count %d", nAttrs)
			}
			attrs := make([]Attr, 0, min(nAttrs, 64))
			for i := uint64(0); i < nAttrs; i++ {
				var a Attr
				if a.Name, err = ReadSnapString(br); err != nil {
					return nil, err
				}
				if a.Value, err = ReadSnapString(br); err != nil {
					return nil, err
				}
				attrs = append(attrs, a)
			}
			depth++
			if err := l.checkDepth(depth); err != nil {
				return nil, err
			}
			b.Start(labels[li], attrs...)
			if err := l.checkNodes(b.count); err != nil {
				return nil, err
			}
		case evText:
			s, err := ReadSnapString(br)
			if err != nil {
				return nil, err
			}
			b.Text(s)
		case evEnd:
			if err := b.End(); err != nil {
				return nil, fmt.Errorf("xmltree: snapshot: %w", err)
			}
			depth--
		case evEOF:
			return b.Done()
		default:
			return nil, fmt.Errorf("xmltree: snapshot: unknown event %d", ev)
		}
	}
}

// WriteUvarint, WriteSnapString and ReadSnapString are the shared framing
// primitives of the snapshot formats — the per-document "XPT1" stream here
// and the corpus "XPC1" stream of internal/store both use them, so the two
// formats cannot drift apart on varint encoding or sanity limits.

// WriteUvarint appends an unsigned varint.
func WriteUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	// bufio.Writer.Write never returns an error until Flush.
	_, _ = w.Write(buf[:n])
}

// WriteSnapString appends a length-prefixed string.
func WriteSnapString(w *bufio.Writer, s string) {
	WriteUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

// ReadSnapString reads a length-prefixed string, rejecting implausible
// lengths (the cap admits large text segments; callers with tighter
// domains — e.g. document IDs — validate at write time).
//
// The length prefix is a claim, not a fact: beyond one chunk the buffer
// grows with the bytes actually read, so a truncated stream declaring a
// gigabyte string fails with an io error after at most one chunk's
// allocation instead of committing the claimed size up front.
func ReadSnapString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var sb strings.Builder
	buf := make([]byte, chunk)
	for remaining := n; remaining > 0; {
		m := uint64(chunk)
		if remaining < m {
			m = remaining
		}
		if _, err := io.ReadFull(r, buf[:m]); err != nil {
			return "", err
		}
		sb.Write(buf[:m])
		remaining -= m
	}
	return sb.String(), nil
}
