package axes

import (
	"math/bits"

	"repro/internal/xmltree"
)

// This file holds the zero-allocation axis kernels: set-at-a-time axis
// functions computed over the document's flat structure-of-arrays topology
// (xmltree.Topology) and raw bitset words, writing into caller-owned
// destination sets. The key facts the kernels exploit:
//
//   - a preorder numbering makes every subtree a contiguous pre range
//     [p, SubEnd[p]), so descendant/following/preceding images are bit-range
//     operations (word-parallel) instead of per-node scans;
//   - start events are monotone in pre, so document-order boundaries are pre
//     boundaries;
//   - children are CSR rows of pre indexes, so sibling axes touch only the
//     relevant rows.
//
// Ownership rules (documented in the README): dst is owned by the caller,
// is cleared on entry, and must not alias x, test, or any shared document
// set (AllNodes/AllElements/LabelSet). A Scratch may be reused across any
// number of kernel calls but never concurrently.

// Scratch is caller-owned scratch memory for the axis kernels. One Scratch
// per evaluation (or per worker) removes all per-call scratch allocations:
// the sibling kernels need a per-parent "seen" mark set, which Scratch
// carries across calls and rebinds when the document changes.
//
// The zero value is ready to use. A Scratch must not be shared between
// goroutines.
type Scratch struct {
	seen *xmltree.Set
}

// NewScratch returns an empty scratch arena. Allocation of the backing
// memory is deferred until a kernel needs it, sized for the document then
// in use.
func NewScratch() *Scratch { return &Scratch{} }

// Release drops the scratch's document-bound memory so a pooled Scratch
// does not pin a document it will no longer serve; the next kernel call
// reallocates for the document then in use.
func (sc *Scratch) Release() {
	if sc != nil {
		sc.seen = nil
	}
}

// HighWater returns the scratch arena's current high-water mark in bytes
// (the bitset words held for the sibling-kernel dedup marks). Tracing
// engines report it in their step spans; the call is allocation-free and a
// nil Scratch reports 0.
//
//xpathlint:noalloc
func (sc *Scratch) HighWater() int64 {
	if sc == nil || sc.seen == nil {
		return 0
	}
	return int64(len(sc.seen.Words())) * 8
}

// seenSet returns a cleared mark set over doc, reusing the previous backing
// memory when the document matches. A nil Scratch allocates a fresh set
// (the compatibility path of the non-Into wrappers).
func (sc *Scratch) seenSet(doc *xmltree.Document) *xmltree.Set {
	if sc == nil {
		return xmltree.NewSet(doc)
	}
	if sc.seen == nil || sc.seen.Document() != doc {
		sc.seen = xmltree.NewSet(doc)
		return sc.seen
	}
	sc.seen.Clear()
	return sc.seen
}

// ApplyInto computes χ(X) (Definition 1) into dst, which is cleared first.
// dst must not alias x. sc may be nil (a fresh scratch is allocated when a
// kernel needs one); passing a reused Scratch makes the call allocation-free
// for every axis except id (whose output depends on string values, not
// topology). Runs in O(|D|/w + |X| + |output|) word operations for the
// structural axes, against the O(|D|) node scans of ApplyReference.
//
//xpathlint:noalloc
func ApplyInto(dst *xmltree.Set, a Axis, x *xmltree.Set, sc *Scratch) {
	if referenceMode.Load() {
		dst.CopyFrom(ApplyReference(a, x))
		return
	}
	dst.Clear()
	if x.IsEmpty() {
		return
	}
	doc := x.Document()
	t := doc.Topology()
	words := x.Words()

	switch a {
	case Self:
		dst.CopyFrom(x)

	case Child:
		// Children of members, via CSR rows: O(Σ |kids(x)|).
		for wi, w := range words {
			for w != 0 {
				pre := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				for _, k := range t.KidList[t.KidOff[pre]:t.KidOff[pre+1]] {
					dst.AddPre(int(k))
				}
			}
		}

	case Parent:
		for wi, w := range words {
			for w != 0 {
				pre := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if p := t.Parent[pre]; p >= 0 {
					dst.AddPre(int(p))
				}
			}
		}

	case Descendant, DescendantOrSelf:
		// Subtrees are contiguous pre ranges; members in document order have
		// non-decreasing covered frontiers, so each member either extends the
		// covered range (one word-parallel AddRange) or is already inside it.
		cover := 0
		for wi, w := range words {
			for w != 0 {
				pre := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				hi := int(t.SubEnd[pre])
				lo := pre + 1
				if lo < cover {
					lo = cover
				}
				if lo < hi {
					dst.AddRange(lo, hi)
					cover = hi
				}
			}
		}
		if a == DescendantOrSelf {
			dst.UnionWith(x)
		}

	case Ancestor, AncestorOrSelf:
		// Climb parent chains, stopping at the first node already in dst:
		// every stop point was fully climbed by an earlier member, so the
		// total work is O(|output| + |X|).
		for wi, w := range words {
			for w != 0 {
				pre := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				for p := t.Parent[pre]; p >= 0 && !dst.HasPre(int(p)); p = t.Parent[p] {
					dst.AddPre(int(p))
				}
			}
		}
		if a == AncestorOrSelf {
			dst.UnionWith(x)
		}

	case Following:
		// following(X) = the pre range after the earliest-ending member's
		// subtree: start events are monotone in pre, so {y | start(y) >
		// end(x)} is exactly [SubEnd[x], |D|), and the union over X is the
		// range of the minimal SubEnd.
		minSub := len(t.SubEnd)
		for wi, w := range words {
			for w != 0 {
				pre := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if s := int(t.SubEnd[pre]); s < minSub {
					minSub = s
				}
			}
		}
		dst.AddRange(minSub, doc.NumNodes())

	case Preceding:
		// preceding(X) = preceding of the last member in document order:
		// everything before it minus its ancestors (and the root, which the
		// range below never includes because it starts at pre 1).
		last := x.LastPre()
		dst.AddRange(1, last)
		for p := t.Parent[last]; p > 0; p = t.Parent[p] {
			dst.RemovePre(int(p))
		}

	case FollowingSibling:
		// Document order visits each parent's first X-child first; later
		// X-children of the same parent are subsumed, so one CSR row suffix
		// per touched parent is added. The per-parent dedup marks live in
		// the caller's scratch.
		seen := sc.seenSet(doc)
		for wi, w := range words {
			for w != 0 {
				pre := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				p := t.Parent[pre]
				if p < 0 || seen.HasPre(int(p)) {
					continue
				}
				seen.AddPre(int(p))
				row := t.KidList[t.KidOff[p]:t.KidOff[p+1]]
				for _, k := range row[t.SibIdx[pre]+1:] {
					dst.AddPre(int(k))
				}
			}
		}

	case PrecedingSibling:
		// Reverse document order visits each parent's last X-child first.
		seen := sc.seenSet(doc)
		for wi := len(words) - 1; wi >= 0; wi-- {
			w := words[wi]
			for w != 0 {
				pre := wi<<6 + 63 - bits.LeadingZeros64(w)
				w &^= 1 << uint(pre&63)
				p := t.Parent[pre]
				if p < 0 || seen.HasPre(int(p)) {
					continue
				}
				seen.AddPre(int(p))
				row := t.KidList[t.KidOff[p]:t.KidOff[p+1]]
				for _, k := range row[:t.SibIdx[pre]] {
					dst.AddPre(int(k))
				}
			}
		}

	case ID:
		nodes := doc.Nodes()
		for wi, w := range words {
			for w != 0 {
				pre := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				doc.DerefIDsInto(dst, nodes[pre].StringValue())
			}
		}

	default:
		//xpathlint:ignore noalloc cold panic path, unreachable for valid axes
		panic("axes: ApplyInto: unknown axis " + a.String())
	}
}

// ApplyTest computes the fused location-step image χ(X) ∩ T(t) into dst:
// the axis kernel runs first, then the node-test bitset is ANDed
// word-parallel instead of re-testing nodes one at a time. test is the
// T(t) set of the step's node test (Document.LabelSet / AllElements /
// AllNodes); nil means node(), i.e. no restriction. dst must alias neither
// x nor test.
//
//xpathlint:noalloc
func ApplyTest(dst *xmltree.Set, a Axis, x *xmltree.Set, test *xmltree.Set, sc *Scratch) {
	ApplyInto(dst, a, x, sc)
	if test != nil {
		dst.IntersectWith(test)
	}
}

// ApplyInverseInto computes χ⁻¹(Y) (Definition 1) into dst, which is
// cleared first. For the structural axes this is ApplyInto of the symmetric
// axis; for the id-axis it is the F[[Op]]⁻¹ computation of Section 6,
// evaluated without materializing any per-node dereference sets.
//
//xpathlint:noalloc
func ApplyInverseInto(dst *xmltree.Set, a Axis, y *xmltree.Set, sc *Scratch) {
	if a != ID {
		ApplyInto(dst, a.Inverse(), y, sc)
		return
	}
	if referenceMode.Load() {
		dst.CopyFrom(ApplyInverseReference(a, y))
		return
	}
	dst.Clear()
	if y.IsEmpty() {
		return
	}
	doc := y.Document()
	for _, n := range doc.Nodes() {
		if n.IsRoot() {
			continue
		}
		if doc.DerefIDsIntersect(n.StringValue(), y) {
			dst.AddPre(n.Pre())
		}
	}
}
