package axes

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/xmltree"
)

// buildDoc makes a seeded random document with ids and numeric-ish text so
// the id-axis has something to dereference.
func buildDoc(t testing.TB, seed int64, n int) *xmltree.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "d"}
	b := xmltree.NewBuilder()
	b.Start("a", xmltree.Attr{Name: "id", Value: "0"})
	id := 1
	depth := 1
	for b.Count() < n {
		switch {
		case depth > 1 && rng.Intn(4) == 0:
			if err := b.End(); err != nil {
				t.Fatal(err)
			}
			depth--
		case depth < 6 && rng.Intn(3) == 0:
			b.Start(labels[rng.Intn(len(labels))], xmltree.Attr{Name: "id", Value: fmt.Sprint(id)})
			id++
			depth++
			b.Text(fmt.Sprintf("%d %d", rng.Intn(2*n), rng.Intn(2*n)))
		default:
			b.Elem(labels[rng.Intn(len(labels))], fmt.Sprint(rng.Intn(2*n)))
		}
	}
	for depth > 0 {
		if err := b.End(); err != nil {
			t.Fatal(err)
		}
		depth--
	}
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// randomSet draws a random subset of the document's nodes, occasionally
// empty, a singleton, or the full domain — the edge shapes the kernels
// branch on.
func randomSet(rng *rand.Rand, doc *xmltree.Document) *xmltree.Set {
	s := xmltree.NewSet(doc)
	switch rng.Intn(6) {
	case 0: // empty
	case 1: // singleton (root included sometimes)
		s.AddPre(rng.Intn(doc.NumNodes()))
	case 2: // everything
		s.AddRange(0, doc.NumNodes())
	default:
		for pre := 0; pre < doc.NumNodes(); pre++ {
			if rng.Intn(4) == 0 {
				s.AddPre(pre)
			}
		}
	}
	return s
}

// TestKernelsMatchReference holds the flat-topology kernels bit-identical
// to the retained pointer-chasing reference on randomized documents and
// node sets, for every axis, forward and inverse, with and without a
// shared Scratch.
func TestKernelsMatchReference(t *testing.T) {
	sc := NewScratch()
	for seed := int64(1); seed <= 8; seed++ {
		doc := buildDoc(t, seed, 80+int(seed)*17)
		rng := rand.New(rand.NewSource(seed * 101))
		dst := xmltree.NewSet(doc)
		for trial := 0; trial < 40; trial++ {
			x := randomSet(rng, doc)
			for _, a := range All() {
				want := ApplyReference(a, x)
				ApplyInto(dst, a, x, sc)
				if !dst.Equal(want) || dst.Len() != want.Len() {
					t.Fatalf("seed %d trial %d: ApplyInto(%v) = %v, want %v", seed, trial, a, dst, want)
				}
				ApplyInto(dst, a, x, nil) // nil-Scratch path
				if !dst.Equal(want) {
					t.Fatalf("seed %d trial %d: ApplyInto(%v, nil scratch) diverged", seed, trial, a)
				}
				wantInv := ApplyInverseReference(a, x)
				ApplyInverseInto(dst, a, x, sc)
				if !dst.Equal(wantInv) || dst.Len() != wantInv.Len() {
					t.Fatalf("seed %d trial %d: ApplyInverseInto(%v) = %v, want %v", seed, trial, a, dst, wantInv)
				}
			}
		}
	}
}

// TestApplyTestFusion checks the fused axis+test kernel against the
// two-pass reference (apply, then intersect with T(t)).
func TestApplyTestFusion(t *testing.T) {
	sc := NewScratch()
	for seed := int64(1); seed <= 4; seed++ {
		doc := buildDoc(t, seed, 100)
		rng := rand.New(rand.NewSource(seed * 7))
		dst := xmltree.NewSet(doc)
		tests := []*xmltree.Set{nil, doc.AllNodes(), doc.AllElements(),
			doc.LabelSet("b"), doc.LabelSet("d"), doc.LabelSet("nosuch")}
		for trial := 0; trial < 30; trial++ {
			x := randomSet(rng, doc)
			for _, a := range All() {
				for _, ts := range tests {
					want := ApplyReference(a, x)
					if ts != nil {
						want.IntersectWith(ts)
					}
					ApplyTest(dst, a, x, ts, sc)
					if !dst.Equal(want) {
						t.Fatalf("seed %d: ApplyTest(%v) diverged from reference", seed, a)
					}
				}
			}
		}
	}
}

// TestApplyWrappersMatchInto pins the allocating wrappers to the kernels.
func TestApplyWrappersMatchInto(t *testing.T) {
	doc := buildDoc(t, 3, 90)
	rng := rand.New(rand.NewSource(17))
	dst := xmltree.NewSet(doc)
	for trial := 0; trial < 20; trial++ {
		x := randomSet(rng, doc)
		for _, a := range All() {
			ApplyInto(dst, a, x, nil)
			if got := Apply(a, x); !got.Equal(dst) {
				t.Fatalf("Apply(%v) != ApplyInto", a)
			}
			ApplyInverseInto(dst, a, x, nil)
			if got := ApplyInverse(a, x); !got.Equal(dst) {
				t.Fatalf("ApplyInverse(%v) != ApplyInverseInto", a)
			}
		}
	}
}

// TestReferenceModeRoundTrip makes sure the E16 benchmarking switch routes
// through the reference and back without changing results.
func TestReferenceModeRoundTrip(t *testing.T) {
	doc := buildDoc(t, 5, 70)
	rng := rand.New(rand.NewSource(23))
	x := randomSet(rng, doc)
	dst := xmltree.NewSet(doc)
	ref := xmltree.NewSet(doc)
	for _, a := range All() {
		ApplyInto(dst, a, x, nil)
		SetReferenceMode(true)
		ApplyInto(ref, a, x, nil)
		SetReferenceMode(false)
		if !dst.Equal(ref) {
			t.Fatalf("reference mode diverged on %v", a)
		}
	}
}

// TestKernelAllocs pins the structural-axis kernels at zero allocations per
// call once dst and Scratch are reused — the regression guard for the
// zero-alloc contract. (The id axis is excluded: its output depends on
// string values and may grow the destination via map lookups, but it is
// also documented as the one non-zero-alloc axis.)
func TestKernelAllocs(t *testing.T) {
	doc := buildDoc(t, 9, 400)
	sc := NewScratch()
	dst := xmltree.NewSet(doc)
	x := xmltree.NewSet(doc)
	for pre := 1; pre < doc.NumNodes(); pre += 3 {
		x.AddPre(pre)
	}
	test := doc.LabelSet("b")
	structural := []Axis{Self, Child, Parent, Descendant, Ancestor,
		DescendantOrSelf, AncestorOrSelf, Following, Preceding,
		FollowingSibling, PrecedingSibling}
	for _, a := range structural {
		a := a
		if n := testing.AllocsPerRun(20, func() { ApplyInto(dst, a, x, sc) }); n != 0 {
			t.Errorf("ApplyInto(%v): %v allocs/op, want 0", a, n)
		}
		if n := testing.AllocsPerRun(20, func() { ApplyTest(dst, a, x, test, sc) }); n != 0 {
			t.Errorf("ApplyTest(%v): %v allocs/op, want 0", a, n)
		}
		if n := testing.AllocsPerRun(20, func() { ApplyInverseInto(dst, a, x, sc) }); n != 0 {
			t.Errorf("ApplyInverseInto(%v): %v allocs/op, want 0", a, n)
		}
	}
	// The id axis must stay allocation-free too: DerefIDsInto tokenizes in
	// place and map lookups by substring do not allocate.
	if n := testing.AllocsPerRun(20, func() { ApplyInto(dst, ID, x, sc) }); n != 0 {
		t.Errorf("ApplyInto(id): %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { ApplyInverseInto(dst, ID, x, sc) }); n != 0 {
		t.Errorf("ApplyInverseInto(id): %v allocs/op, want 0", n)
	}
	// HighWater is read on every traced span; it must be allocation-free and
	// reflect the scratch the sibling kernels just used.
	if n := testing.AllocsPerRun(20, func() { _ = sc.HighWater() }); n != 0 {
		t.Errorf("Scratch.HighWater: %v allocs/op, want 0", n)
	}
	if hw := sc.HighWater(); hw <= 0 {
		t.Errorf("Scratch.HighWater = %d after sibling kernels ran, want > 0", hw)
	}
	if hw := (*Scratch)(nil).HighWater(); hw != 0 {
		t.Errorf("nil Scratch HighWater = %d, want 0", hw)
	}

	// The engines interleave budget checks with kernel calls on the hot
	// path; a live Budget (fuel and deadline armed) must keep the combined
	// loop allocation-free, exactly like the Tracer nil-check contract.
	bud := budget.New(budget.Limits{Steps: 1 << 40, Deadline: time.Hour})
	if n := testing.AllocsPerRun(20, func() {
		if err := bud.Step(1); err != nil {
			t.Fatal(err)
		}
		ApplyInto(dst, Descendant, x, sc)
	}); n != 0 {
		t.Errorf("ApplyInto with live Budget: %v allocs/op, want 0", n)
	}
}
