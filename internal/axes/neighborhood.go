package axes

import (
	"repro/internal/xmltree"
)

// Neighborhood returns the candidate list {z ∈ dom ∪ {root} | x χ z} in the
// order <doc,χ of Section 2.1: document order for the forward axes, reverse
// document order for the backward axes. This is the list the MINCONTEXT
// position/size loops (Section 6 pseudo-code: "let Z = {z1,…,zm} ordered
// according to axis χ") iterate; idxχ(z, Z) is the 1-based slice index.
//
// The result is appended to dst, which may be nil; the returned slice is
// valid until dst is reused.
func Neighborhood(a Axis, x *xmltree.Node, dst []*xmltree.Node) []*xmltree.Node {
	switch a {
	case Self:
		dst = append(dst, x)

	case Child:
		dst = append(dst, x.Children()...)

	case Parent:
		if p := x.Parent(); p != nil {
			dst = append(dst, p)
		}

	case Descendant, DescendantOrSelf:
		if a == DescendantOrSelf {
			dst = append(dst, x)
		}
		// The subtree is the contiguous pre range [pre+1, SubEnd[pre]), and
		// pre order is document order — no recursion needed.
		doc := x.Document()
		t := doc.Topology()
		for pre := x.Pre() + 1; pre < int(t.SubEnd[x.Pre()]); pre++ {
			dst = append(dst, doc.Node(pre))
		}

	case Ancestor, AncestorOrSelf:
		// Reverse document order: nearest ancestor first.
		if a == AncestorOrSelf {
			dst = append(dst, x)
		}
		for p := x.Parent(); p != nil; p = p.Parent() {
			dst = append(dst, p)
		}

	case Following:
		// Everything after x's subtree: the pre range [SubEnd[pre], |D|),
		// already in document order.
		doc := x.Document()
		t := doc.Topology()
		for pre := int(t.SubEnd[x.Pre()]); pre < doc.NumNodes(); pre++ {
			dst = append(dst, doc.Node(pre))
		}

	case Preceding:
		// All nodes whose end event is before x's start event, in reverse
		// document order; the flat End column avoids the pointer chase.
		doc := x.Document()
		t := doc.Topology()
		start := int32(x.StartEvent())
		for pre := x.Pre() - 1; pre >= 0; pre-- {
			if t.End[pre] < start {
				dst = append(dst, doc.Node(pre))
			}
		}

	case FollowingSibling:
		dst = append(dst, x.FollowingSiblings()...)

	case PrecedingSibling:
		// Reverse document order: nearest sibling first.
		sibs := x.PrecedingSiblings()
		for i := len(sibs) - 1; i >= 0; i-- {
			dst = append(dst, sibs[i])
		}

	case ID:
		// Document order, per <doc,id being standard document order.
		dst = x.Document().DerefIDs(x.StringValue()).AppendTo(dst)

	default:
		panic("axes: Neighborhood: unknown axis " + a.String())
	}
	return dst
}

// NeighborhoodFiltered returns Neighborhood(a, x) restricted to members of
// keep, preserving the <doc,χ order. It is the "Z := {z ∈ Y | x χ z}" step
// of the Section 6 pseudo-code.
func NeighborhoodFiltered(a Axis, x *xmltree.Node, keep *xmltree.Set, dst []*xmltree.Node) []*xmltree.Node {
	switch a {
	// For the scan-based axes it is cheaper to test membership inline.
	case Following:
		end := x.EndEvent()
		keep.ForEach(func(n *xmltree.Node) {
			if n.StartEvent() > end {
				dst = append(dst, n)
			}
		})
		return dst
	case Preceding:
		start := x.StartEvent()
		keep.ForEachReverse(func(n *xmltree.Node) {
			if n.EndEvent() < start {
				dst = append(dst, n)
			}
		})
		return dst
	case Descendant, DescendantOrSelf:
		s, e := x.StartEvent(), x.EndEvent()
		keep.ForEach(func(n *xmltree.Node) {
			if n.StartEvent() > s && n.EndEvent() < e {
				dst = append(dst, n)
			} else if a == DescendantOrSelf && n == x {
				dst = append(dst, n)
			}
		})
		return dst
	}
	all := Neighborhood(a, x, nil)
	for _, n := range all {
		if keep.Has(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// Related reports whether x χ y holds, in O(1) for the structural axes and
// O(|strval(x)|) for the id-axis.
func Related(a Axis, x, y *xmltree.Node) bool {
	switch a {
	case Self:
		return x == y
	case Child:
		return y.Parent() == x
	case Parent:
		return x.Parent() == y
	case Descendant:
		return y.IsDescendantOf(x)
	case Ancestor:
		return y.IsAncestorOf(x)
	case DescendantOrSelf:
		return x == y || y.IsDescendantOf(x)
	case AncestorOrSelf:
		return x == y || y.IsAncestorOf(x)
	case Following:
		return y.StartEvent() > x.EndEvent()
	case Preceding:
		return y.EndEvent() < x.StartEvent()
	case FollowingSibling:
		return x.Parent() != nil && y.Parent() == x.Parent() && y.SiblingIndex() > x.SiblingIndex()
	case PrecedingSibling:
		return x.Parent() != nil && y.Parent() == x.Parent() && y.SiblingIndex() < x.SiblingIndex()
	case ID:
		return x.Document().DerefIDs(x.StringValue()).Has(y)
	}
	panic("axes: Related: unknown axis " + a.String())
}

// OrderBy sorts nodes into the <doc,χ order of the axis: document order for
// forward axes, reverse document order for backward axes. It sorts in place.
func OrderBy(a Axis, nodes []*xmltree.Node) {
	xmltree.SortDocOrder(nodes)
	if a.IsReverse() {
		for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		}
	}
}
