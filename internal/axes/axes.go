// Package axes implements the XPath axis relations χ of the paper's
// Section 2.1 as set-valued functions (Definition 1):
//
//	χ(X)   = { y ∈ dom | ∃x ∈ X : x χ y }
//	χ⁻¹(Y) = { x ∈ dom | χ({x}) ∩ Y ≠ ∅ }
//
// Every axis function runs in time O(|D|) over bitset node sets, which is
// the bound all complexity theorems of the paper build on. The package also
// provides per-node ordered neighborhoods — the candidate list {z | x χ z}
// sorted by <doc,χ — which the position/size loops of MINCONTEXT and
// OPTMINCONTEXT iterate.
//
// The id-"axis" of Section 4 (the rewriting of nested id() calls into
// location steps) is included as a twelfth axis, with the F[[Op]]⁻¹ inverse
// the paper's propagate_path_backwards relies on.
package axes

import (
	"fmt"

	"repro/internal/xmltree"
)

// Axis identifies one of the XPath axes handled by the paper, plus the
// id-"axis" introduced in Section 4.
type Axis int

// The axes of Section 2.1, in the order the paper lists them, plus ID.
const (
	Self Axis = iota
	Child
	Parent
	Descendant
	Ancestor
	DescendantOrSelf
	AncestorOrSelf
	Following
	Preceding
	FollowingSibling
	PrecedingSibling
	ID // the id-"axis" of Section 4
	numAxes
)

var axisNames = [...]string{
	Self:             "self",
	Child:            "child",
	Parent:           "parent",
	Descendant:       "descendant",
	Ancestor:         "ancestor",
	DescendantOrSelf: "descendant-or-self",
	AncestorOrSelf:   "ancestor-or-self",
	Following:        "following",
	Preceding:        "preceding",
	FollowingSibling: "following-sibling",
	PrecedingSibling: "preceding-sibling",
	ID:               "id",
}

// String returns the axis's XPath name ("descendant-or-self", …).
func (a Axis) String() string {
	if a < 0 || int(a) >= len(axisNames) {
		return fmt.Sprintf("axis(%d)", int(a))
	}
	return axisNames[a]
}

// ByName resolves an XPath axis name; ok is false for unknown names.
func ByName(name string) (Axis, bool) {
	for a, n := range axisNames {
		if n == name {
			return Axis(a), true
		}
	}
	return 0, false
}

// All lists every axis, for exhaustive tests.
func All() []Axis {
	out := make([]Axis, numAxes)
	for i := range out {
		out[i] = Axis(i)
	}
	return out
}

// IsReverse reports whether <doc,χ is reverse document order for this axis
// (§2.1): true for parent, ancestor, ancestor-or-self, preceding and
// preceding-sibling; false for the forward axes, self, and id.
func (a Axis) IsReverse() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf, Preceding, PrecedingSibling:
		return true
	}
	return false
}

// Inverse returns the axis χ⁻¹ with x χ y ⇔ y χ⁻¹ x. The id-axis has no
// syntactic inverse; callers must use ApplyInverse for it (the paper's
// F[[Op]]⁻¹), and Inverse panics to make misuse loud.
func (a Axis) Inverse() Axis {
	switch a {
	case Self:
		return Self
	case Child:
		return Parent
	case Parent:
		return Child
	case Descendant:
		return Ancestor
	case Ancestor:
		return Descendant
	case DescendantOrSelf:
		return AncestorOrSelf
	case AncestorOrSelf:
		return DescendantOrSelf
	case Following:
		return Preceding
	case Preceding:
		return Following
	case FollowingSibling:
		return PrecedingSibling
	case PrecedingSibling:
		return FollowingSibling
	}
	panic("axes: Inverse of " + a.String())
}

// Apply computes χ(X) in O(|D|) (Definition 1).
func Apply(a Axis, x *xmltree.Set) *xmltree.Set {
	doc := x.Document()
	out := xmltree.NewSet(doc)
	if x.IsEmpty() {
		return out
	}
	switch a {
	case Self:
		out.UnionWith(x)

	case Child:
		// y ∈ child(X) iff parent(y) ∈ X: one scan over dom.
		for _, n := range doc.Nodes() {
			if p := n.Parent(); p != nil && x.Has(p) {
				out.Add(n)
			}
		}

	case Parent:
		x.ForEach(func(n *xmltree.Node) {
			if p := n.Parent(); p != nil {
				out.Add(p)
			}
		})

	case Descendant, DescendantOrSelf:
		// One preorder scan carrying "some proper ancestor is in X". The
		// document-order slice is a preorder, so a node's ancestors have
		// already been classified when it is reached; memoize per node via
		// a flags array indexed by pre.
		marked := make([]bool, doc.NumNodes())
		for _, n := range doc.Nodes() {
			p := n.Parent()
			if p != nil && (marked[p.Pre()] || x.Has(p)) {
				marked[n.Pre()] = true
				out.Add(n)
			}
		}
		if a == DescendantOrSelf {
			out.UnionWith(x)
		}

	case Ancestor, AncestorOrSelf:
		// y is an ancestor of some x ∈ X iff some child subtree of y
		// contains an X node. Postorder aggregation: scan dom in reverse
		// preorder; by then every child has been classified.
		contains := make([]bool, doc.NumNodes())
		nodes := doc.Nodes()
		for i := len(nodes) - 1; i >= 0; i-- {
			n := nodes[i]
			c := x.Has(n)
			if !c {
				for _, k := range n.Children() {
					if contains[k.Pre()] {
						c = true
						break
					}
				}
			}
			contains[n.Pre()] = c
			if p := n.Parent(); c && p != nil {
				out.Add(p)
			}
		}
		// The loop adds parents of subtrees containing X members, i.e. all
		// proper ancestors, because containment propagates upward.
		// Fill transitively: a parent added above may itself have ancestors
		// that were only discovered via the same child chain; the contains
		// flags make the loop already transitive since contains[n] is true
		// whenever any descendant is in X.
		if a == AncestorOrSelf {
			out.UnionWith(x)
		}

	case Following:
		// y follows some x ∈ X iff start(y) > end(x) for the x with the
		// smallest end event. One pass to find it, one pass to collect.
		minEnd := -1
		x.ForEach(func(n *xmltree.Node) {
			if minEnd == -1 || nodeEnd(n) < minEnd {
				minEnd = nodeEnd(n)
			}
		})
		for _, n := range doc.Nodes() {
			if nodeStart(n) > minEnd {
				out.Add(n)
			}
		}

	case Preceding:
		// y precedes some x ∈ X iff end(y) < start(x) for the x with the
		// largest start event. Ancestors are excluded by the event test.
		maxStart := -1
		x.ForEach(func(n *xmltree.Node) {
			if nodeStart(n) > maxStart {
				maxStart = nodeStart(n)
			}
		})
		for _, n := range doc.Nodes() {
			if nodeEnd(n) < maxStart {
				out.Add(n)
			}
		}

	case FollowingSibling:
		// For each parent, collect children positioned after the first
		// X-child. Total work is Σ children = O(|D|).
		seen := make(map[*xmltree.Node]int) // parent → index of first X child
		x.ForEach(func(n *xmltree.Node) {
			p := n.Parent()
			if p == nil {
				return
			}
			idx := childIndex(n)
			if old, ok := seen[p]; !ok || idx < old {
				seen[p] = idx
			}
		})
		for p, idx := range seen {
			kids := p.Children()
			for _, k := range kids[idx+1:] {
				out.Add(k)
			}
		}

	case PrecedingSibling:
		seen := make(map[*xmltree.Node]int) // parent → index of last X child
		x.ForEach(func(n *xmltree.Node) {
			p := n.Parent()
			if p == nil {
				return
			}
			idx := childIndex(n)
			if old, ok := seen[p]; !ok || idx > old {
				seen[p] = idx
			}
		})
		for p, idx := range seen {
			kids := p.Children()
			for _, k := range kids[:idx] {
				out.Add(k)
			}
		}

	case ID:
		x.ForEach(func(n *xmltree.Node) {
			out.UnionWith(doc.DerefIDs(n.StringValue()))
		})

	default:
		panic("axes: Apply: unknown axis " + a.String())
	}
	return out
}

// ApplyInverse computes χ⁻¹(Y) (Definition 1). For the structural axes this
// is Apply of the symmetric axis; for the id-axis it is the F[[Op]]⁻¹
// computation of Section 6: all x whose string value dereferences to a node
// of Y.
func ApplyInverse(a Axis, y *xmltree.Set) *xmltree.Set {
	if a != ID {
		return Apply(a.Inverse(), y)
	}
	doc := y.Document()
	out := xmltree.NewSet(doc)
	if y.IsEmpty() {
		return out
	}
	for _, n := range doc.Nodes() {
		if n.IsRoot() {
			continue
		}
		if doc.DerefIDs(n.StringValue()).Intersects(y) {
			out.Add(n)
		}
	}
	return out
}

// childIndex returns n's position among its parent's children, precomputed
// at document-build time so the sibling-axis functions stay O(|D|).
func childIndex(n *xmltree.Node) int { return n.SiblingIndex() }

// nodeStart/nodeEnd expose the event numbering through the xmltree API.
func nodeStart(n *xmltree.Node) int { return n.StartEvent() }
func nodeEnd(n *xmltree.Node) int   { return n.EndEvent() }
