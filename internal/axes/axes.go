// Package axes implements the XPath axis relations χ of the paper's
// Section 2.1 as set-valued functions (Definition 1):
//
//	χ(X)   = { y ∈ dom | ∃x ∈ X : x χ y }
//	χ⁻¹(Y) = { x ∈ dom | χ({x}) ∩ Y ≠ ∅ }
//
// Every axis function runs in time O(|D|) over bitset node sets, which is
// the bound all complexity theorems of the paper build on. The package also
// provides per-node ordered neighborhoods — the candidate list {z | x χ z}
// sorted by <doc,χ — which the position/size loops of MINCONTEXT and
// OPTMINCONTEXT iterate.
//
// The id-"axis" of Section 4 (the rewriting of nested id() calls into
// location steps) is included as a twelfth axis, with the F[[Op]]⁻¹ inverse
// the paper's propagate_path_backwards relies on.
package axes

import (
	"fmt"

	"repro/internal/xmltree"
)

// Axis identifies one of the XPath axes handled by the paper, plus the
// id-"axis" introduced in Section 4.
type Axis int

// The axes of Section 2.1, in the order the paper lists them, plus ID.
const (
	Self Axis = iota
	Child
	Parent
	Descendant
	Ancestor
	DescendantOrSelf
	AncestorOrSelf
	Following
	Preceding
	FollowingSibling
	PrecedingSibling
	ID // the id-"axis" of Section 4
	numAxes
)

var axisNames = [...]string{
	Self:             "self",
	Child:            "child",
	Parent:           "parent",
	Descendant:       "descendant",
	Ancestor:         "ancestor",
	DescendantOrSelf: "descendant-or-self",
	AncestorOrSelf:   "ancestor-or-self",
	Following:        "following",
	Preceding:        "preceding",
	FollowingSibling: "following-sibling",
	PrecedingSibling: "preceding-sibling",
	ID:               "id",
}

// String returns the axis's XPath name ("descendant-or-self", …).
func (a Axis) String() string {
	if a < 0 || int(a) >= len(axisNames) {
		return fmt.Sprintf("axis(%d)", int(a))
	}
	return axisNames[a]
}

// ByName resolves an XPath axis name; ok is false for unknown names.
func ByName(name string) (Axis, bool) {
	for a, n := range axisNames {
		if n == name {
			return Axis(a), true
		}
	}
	return 0, false
}

// All lists every axis, for exhaustive tests.
func All() []Axis {
	out := make([]Axis, numAxes)
	for i := range out {
		out[i] = Axis(i)
	}
	return out
}

// IsReverse reports whether <doc,χ is reverse document order for this axis
// (§2.1): true for parent, ancestor, ancestor-or-self, preceding and
// preceding-sibling; false for the forward axes, self, and id.
func (a Axis) IsReverse() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf, Preceding, PrecedingSibling:
		return true
	}
	return false
}

// Inverse returns the axis χ⁻¹ with x χ y ⇔ y χ⁻¹ x. The id-axis has no
// syntactic inverse; callers must use ApplyInverse for it (the paper's
// F[[Op]]⁻¹), and Inverse panics to make misuse loud.
func (a Axis) Inverse() Axis {
	switch a {
	case Self:
		return Self
	case Child:
		return Parent
	case Parent:
		return Child
	case Descendant:
		return Ancestor
	case Ancestor:
		return Descendant
	case DescendantOrSelf:
		return AncestorOrSelf
	case AncestorOrSelf:
		return DescendantOrSelf
	case Following:
		return Preceding
	case Preceding:
		return Following
	case FollowingSibling:
		return PrecedingSibling
	case PrecedingSibling:
		return FollowingSibling
	}
	panic("axes: Inverse of " + a.String())
}

// Apply computes χ(X) in O(|D|) (Definition 1), allocating the result set.
// It is the convenience form of ApplyInto; hot paths pass a reused
// destination and Scratch to ApplyInto/ApplyTest instead.
func Apply(a Axis, x *xmltree.Set) *xmltree.Set {
	out := xmltree.NewSet(x.Document())
	ApplyInto(out, a, x, nil)
	return out
}

// ApplyInverse computes χ⁻¹(Y) (Definition 1). For the structural axes this
// is Apply of the symmetric axis; for the id-axis it is the F[[Op]]⁻¹
// computation of Section 6: all x whose string value dereferences to a node
// of Y. Hot paths use ApplyInverseInto.
func ApplyInverse(a Axis, y *xmltree.Set) *xmltree.Set {
	out := xmltree.NewSet(y.Document())
	ApplyInverseInto(out, a, y, nil)
	return out
}
