package axes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

const sample = `<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func byIDs(d *xmltree.Document, ids ...string) *xmltree.Set {
	s := xmltree.NewSet(d)
	for _, id := range ids {
		n := d.ByID(id)
		if n == nil {
			panic("no node " + id)
		}
		s.Add(n)
	}
	return s
}

func setIDs(s *xmltree.Set) []string {
	var out []string
	s.ForEach(func(n *xmltree.Node) {
		if n.IsRoot() {
			out = append(out, "/")
			return
		}
		id, _ := n.Attr("id")
		out = append(out, id)
	})
	return out
}

func eqIDs(t *testing.T, what string, got *xmltree.Set, want ...string) {
	t.Helper()
	g := setIDs(got)
	if len(g) != len(want) {
		t.Errorf("%s: got %v, want %v", what, g, want)
		return
	}
	for i := range g {
		if g[i] != want[i] {
			t.Errorf("%s: got %v, want %v", what, g, want)
			return
		}
	}
}

func TestApplyOnFigure2(t *testing.T) {
	d := doc(t)
	eqIDs(t, "child(x11)", Apply(Child, byIDs(d, "11")), "12", "13", "14")
	eqIDs(t, "parent(x12,x22)", Apply(Parent, byIDs(d, "12", "22")), "11", "21")
	eqIDs(t, "descendant(x11)", Apply(Descendant, byIDs(d, "11")), "12", "13", "14")
	eqIDs(t, "descendant-or-self(x21)", Apply(DescendantOrSelf, byIDs(d, "21")), "21", "22", "23", "24")
	eqIDs(t, "ancestor(x14)", Apply(Ancestor, byIDs(d, "14")), "/", "10", "11")
	eqIDs(t, "ancestor-or-self(x14)", Apply(AncestorOrSelf, byIDs(d, "14")), "/", "10", "11", "14")
	eqIDs(t, "following(x14)", Apply(Following, byIDs(d, "14")), "21", "22", "23", "24")
	eqIDs(t, "following(x12)", Apply(Following, byIDs(d, "12")), "13", "14", "21", "22", "23", "24")
	eqIDs(t, "preceding(x21)", Apply(Preceding, byIDs(d, "21")), "11", "12", "13", "14")
	eqIDs(t, "following-sibling(x12)", Apply(FollowingSibling, byIDs(d, "12")), "13", "14")
	eqIDs(t, "preceding-sibling(x14)", Apply(PrecedingSibling, byIDs(d, "14")), "12", "13")
	eqIDs(t, "self(x13)", Apply(Self, byIDs(d, "13")), "13")
}

func TestApplyEmpty(t *testing.T) {
	d := doc(t)
	for _, a := range All() {
		if got := Apply(a, xmltree.NewSet(d)); !got.IsEmpty() {
			t.Errorf("%v(∅) = %v, want ∅", a, setIDs(got))
		}
	}
}

func TestIDAxis(t *testing.T) {
	d := doc(t)
	// strval(x22) = "11 12" → nodes with ids 11 and 12.
	eqIDs(t, "id(x22)", Apply(ID, byIDs(d, "22")), "11", "12")
	// Inverse: nodes whose string value references x14 (id "14"):
	// strval(x23) = "13 14" → mentions id 14? "13 14" splits to 13, 14 → yes.
	inv := ApplyInverse(ID, byIDs(d, "14"))
	eqIDs(t, "id⁻¹(x14)", inv, "23")
}

func TestInverseRoundTrip(t *testing.T) {
	for _, a := range All() {
		if a == ID {
			continue
		}
		if got := a.Inverse().Inverse(); got != a {
			t.Errorf("Inverse(Inverse(%v)) = %v", a, got)
		}
	}
}

func TestIsReverse(t *testing.T) {
	rev := map[Axis]bool{Parent: true, Ancestor: true, AncestorOrSelf: true,
		Preceding: true, PrecedingSibling: true}
	for _, a := range All() {
		if a.IsReverse() != rev[a] {
			t.Errorf("IsReverse(%v) = %v", a, a.IsReverse())
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, ok := ByName(a.String())
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.String(), got, ok)
		}
	}
	if _, ok := ByName("attribute"); ok {
		t.Error("attribute axis must not resolve")
	}
}

func randomDoc(seed int64, n int) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder()
	b.Start("r")
	for b.Count() < n {
		if b.Depth() > 1 && rng.Intn(3) == 0 {
			_ = b.End()
		} else {
			b.Start([]string{"a", "b", "c"}[rng.Intn(3)])
		}
	}
	for b.Depth() > 0 {
		_ = b.End()
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

// TestQuickApplyMatchesRelated: χ(X) computed set-at-a-time must equal the
// brute-force {y | ∃x ∈ X : Related(χ, x, y)} on random documents and
// random X, for every structural axis.
func TestQuickApplyMatchesRelated(t *testing.T) {
	f := func(seed int64, mask uint64) bool {
		d := randomDoc(seed, 25)
		x := xmltree.NewSet(d)
		for i := 0; i < d.NumNodes(); i++ {
			if mask&(1<<uint(i%64)) != 0 {
				x.AddPre(i)
			}
			mask = mask>>1 | mask<<63
		}
		for _, a := range All() {
			if a == ID {
				continue
			}
			got := Apply(a, x)
			want := xmltree.NewSet(d)
			for _, y := range d.Nodes() {
				found := false
				x.ForEach(func(xn *xmltree.Node) {
					if !found && Related(a, xn, y) {
						found = true
					}
				})
				if found {
					want.Add(y)
				}
			}
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickInverseSymmetry: y ∈ χ({x}) ⇔ x ∈ χ⁻¹({y}) — Definition 1.
func TestQuickInverseSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 20)
		for _, a := range All() {
			if a == ID {
				continue
			}
			for _, x := range d.Nodes() {
				fwd := Apply(a, xmltree.Singleton(x))
				for _, y := range d.Nodes() {
					back := ApplyInverse(a, xmltree.Singleton(y))
					if fwd.Has(y) != back.Has(x) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickNeighborhoodOrder: Neighborhood(χ, x) contains exactly
// {y | x χ y}, ordered by <doc,χ (document order, reversed for the
// backward axes).
func TestQuickNeighborhoodOrder(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 25)
		for _, a := range All() {
			if a == ID {
				continue
			}
			for _, x := range d.Nodes() {
				nb := Neighborhood(a, x, nil)
				seen := make(map[*xmltree.Node]bool, len(nb))
				for i, y := range nb {
					if !Related(a, x, y) || seen[y] {
						return false
					}
					seen[y] = true
					if i > 0 {
						prev, cur := nb[i-1].Pre(), y.Pre()
						if a.IsReverse() && prev < cur {
							return false
						}
						if !a.IsReverse() && prev > cur {
							return false
						}
					}
				}
				for _, y := range d.Nodes() {
					if Related(a, x, y) && !seen[y] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartition: child-based partition axes cover dom: for any x,
// {x} ∪ ancestors ∪ descendants ∪ preceding ∪ following = all nodes.
func TestQuickPartition(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDoc(seed, 30)
		for _, x := range d.Nodes() {
			s := xmltree.Singleton(x)
			u := Apply(Ancestor, s)
			u.UnionWith(Apply(Descendant, s))
			u.UnionWith(Apply(Preceding, s))
			u.UnionWith(Apply(Following, s))
			u.Add(x)
			if !u.Equal(d.AllNodes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNeighborhoodFiltered(t *testing.T) {
	d := doc(t)
	keep := byIDs(d, "13", "23", "24")
	got := NeighborhoodFiltered(Following, d.ByID("12"), keep, nil)
	if len(got) != 3 {
		t.Fatalf("filtered following: %d nodes", len(got))
	}
	for i, id := range []string{"13", "23", "24"} {
		if g, _ := got[i].Attr("id"); g != id {
			t.Errorf("pos %d: %s, want %s", i, g, id)
		}
	}
	// Reverse axis keeps reverse order.
	gotP := NeighborhoodFiltered(Preceding, d.ByID("23"), byIDs(d, "12", "14"), nil)
	if len(gotP) != 2 {
		t.Fatalf("filtered preceding: %d nodes", len(gotP))
	}
	if id, _ := gotP[0].Attr("id"); id != "14" {
		t.Errorf("preceding order: first is %s, want 14 (reverse doc order)", id)
	}
}

func TestOrderBy(t *testing.T) {
	d := doc(t)
	nodes := []*xmltree.Node{d.ByID("23"), d.ByID("11"), d.ByID("14")}
	OrderBy(Following, nodes)
	if id, _ := nodes[0].Attr("id"); id != "11" {
		t.Errorf("forward order starts with %s", id)
	}
	OrderBy(Ancestor, nodes)
	if id, _ := nodes[0].Attr("id"); id != "23" {
		t.Errorf("reverse order starts with %s", id)
	}
}
