package axes

import (
	"sync/atomic"

	"repro/internal/xmltree"
)

// referenceMode routes the Into kernels through ApplyReference, the
// retained pointer-chasing implementation the flat kernels replaced. It
// exists solely for the E16 before/after benchmark (bench.E16) and must
// never be enabled in concurrent or production use.
var referenceMode atomic.Bool

// SetReferenceMode switches the set-at-a-time kernels between the flat
// structure-of-arrays implementation (false, the default) and the retained
// node-pointer reference implementation (true). Benchmarking hook only.
func SetReferenceMode(on bool) { referenceMode.Store(on) }

// ApplyReference computes χ(X) with the original pointer-chasing,
// allocate-per-call implementation (scanning []*Node via Parent()/
// Children() with fresh scratch slices). It is retained as the semantic
// reference: the property suite holds the flat kernels bit-identical to it
// on randomized inputs, and E16 measures the two against each other.
func ApplyReference(a Axis, x *xmltree.Set) *xmltree.Set {
	doc := x.Document()
	out := xmltree.NewSet(doc)
	if x.IsEmpty() {
		return out
	}
	switch a {
	case Self:
		out.UnionWith(x)

	case Child:
		// y ∈ child(X) iff parent(y) ∈ X: one scan over dom.
		for _, n := range doc.Nodes() {
			if p := n.Parent(); p != nil && x.Has(p) {
				out.Add(n)
			}
		}

	case Parent:
		x.ForEach(func(n *xmltree.Node) {
			if p := n.Parent(); p != nil {
				out.Add(p)
			}
		})

	case Descendant, DescendantOrSelf:
		// One preorder scan carrying "some proper ancestor is in X". The
		// document-order slice is a preorder, so a node's ancestors have
		// already been classified when it is reached; memoize per node via
		// a flags array indexed by pre.
		marked := make([]bool, doc.NumNodes())
		for _, n := range doc.Nodes() {
			p := n.Parent()
			if p != nil && (marked[p.Pre()] || x.Has(p)) {
				marked[n.Pre()] = true
				out.Add(n)
			}
		}
		if a == DescendantOrSelf {
			out.UnionWith(x)
		}

	case Ancestor, AncestorOrSelf:
		// y is an ancestor of some x ∈ X iff some child subtree of y
		// contains an X node. Postorder aggregation: scan dom in reverse
		// preorder; by then every child has been classified.
		contains := make([]bool, doc.NumNodes())
		nodes := doc.Nodes()
		for i := len(nodes) - 1; i >= 0; i-- {
			n := nodes[i]
			c := x.Has(n)
			if !c {
				for _, k := range n.Children() {
					if contains[k.Pre()] {
						c = true
						break
					}
				}
			}
			contains[n.Pre()] = c
			if p := n.Parent(); c && p != nil {
				out.Add(p)
			}
		}
		if a == AncestorOrSelf {
			out.UnionWith(x)
		}

	case Following:
		// y follows some x ∈ X iff start(y) > end(x) for the x with the
		// smallest end event. One pass to find it, one pass to collect.
		minEnd := -1
		x.ForEach(func(n *xmltree.Node) {
			if minEnd == -1 || n.EndEvent() < minEnd {
				minEnd = n.EndEvent()
			}
		})
		for _, n := range doc.Nodes() {
			if n.StartEvent() > minEnd {
				out.Add(n)
			}
		}

	case Preceding:
		// y precedes some x ∈ X iff end(y) < start(x) for the x with the
		// largest start event. Ancestors are excluded by the event test.
		maxStart := -1
		x.ForEach(func(n *xmltree.Node) {
			if n.StartEvent() > maxStart {
				maxStart = n.StartEvent()
			}
		})
		for _, n := range doc.Nodes() {
			if n.EndEvent() < maxStart {
				out.Add(n)
			}
		}

	case FollowingSibling:
		// For each parent, collect children positioned after the first
		// X-child. Total work is Σ children = O(|D|).
		seen := make(map[*xmltree.Node]int) // parent → index of first X child
		x.ForEach(func(n *xmltree.Node) {
			p := n.Parent()
			if p == nil {
				return
			}
			idx := n.SiblingIndex()
			if old, ok := seen[p]; !ok || idx < old {
				seen[p] = idx
			}
		})
		for p, idx := range seen {
			kids := p.Children()
			for _, k := range kids[idx+1:] {
				out.Add(k)
			}
		}

	case PrecedingSibling:
		seen := make(map[*xmltree.Node]int) // parent → index of last X child
		x.ForEach(func(n *xmltree.Node) {
			p := n.Parent()
			if p == nil {
				return
			}
			idx := n.SiblingIndex()
			if old, ok := seen[p]; !ok || idx > old {
				seen[p] = idx
			}
		})
		for p, idx := range seen {
			kids := p.Children()
			for _, k := range kids[:idx] {
				out.Add(k)
			}
		}

	case ID:
		x.ForEach(func(n *xmltree.Node) {
			out.UnionWith(doc.DerefIDs(n.StringValue()))
		})

	default:
		panic("axes: ApplyReference: unknown axis " + a.String())
	}
	return out
}

// ApplyInverseReference is the reference counterpart of ApplyInverse.
func ApplyInverseReference(a Axis, y *xmltree.Set) *xmltree.Set {
	if a != ID {
		return ApplyReference(a.Inverse(), y)
	}
	doc := y.Document()
	out := xmltree.NewSet(doc)
	if y.IsEmpty() {
		return out
	}
	for _, n := range doc.Nodes() {
		if n.IsRoot() {
			continue
		}
		if doc.DerefIDs(n.StringValue()).Intersects(y) {
			out.Add(n)
		}
	}
	return out
}
