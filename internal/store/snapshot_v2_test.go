package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// reload round-trips a store through the current snapshot format.
func reload(t *testing.T, s *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// sameCorpus asserts that two stores hold the same documents.
func sameCorpus(t *testing.T, got, want *Store) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len: %d want %d", got.Len(), want.Len())
	}
	for _, id := range want.IDs() {
		w, _ := want.Get(id)
		g, ok := got.Get(id)
		if !ok {
			t.Fatalf("document %q missing", id)
		}
		if g.XMLString() != w.XMLString() {
			t.Fatalf("document %q differs", id)
		}
	}
}

func TestSnapshotV2CarriesGeneration(t *testing.T) {
	s := corpus(t, 4)
	var buf bytes.Buffer
	if err := writeSnapshotEntries(&buf, 7, s.snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, gen, err := loadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 {
		t.Fatalf("generation %d want 7", gen)
	}
	sameCorpus(t, loaded, s)
}

func TestSnapshotLegacyV1StillLoads(t *testing.T) {
	s := corpus(t, 5)
	var buf bytes.Buffer
	if err := writeSnapshotV1(&buf, s.snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, gen, err := loadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("legacy generation %d want 0", gen)
	}
	sameCorpus(t, loaded, s)
}

// v1FrameWithSlack builds a one-document XPC1 stream whose frame declares
// pad extra bytes beyond the document stream.
func v1FrameWithSlack(t *testing.T, pad int) []byte {
	t.Helper()
	var doc bytes.Buffer
	if err := xmltree.MustParseString(`<r><c>x</c></r>`).WriteSnapshot(&doc); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.WriteString(corpusMagicV1)
	putUvarint(&b, 1)
	putString(&b, "padded")
	putUvarint(&b, uint64(doc.Len()+pad))
	b.Write(doc.Bytes())
	b.Write(make([]byte, pad))
	return b.Bytes()
}

func TestSnapshotV1SlackToleratedAndCounted(t *testing.T) {
	before := mSnapSlackBytes.Value()
	s, err := LoadSnapshot(bytes.NewReader(v1FrameWithSlack(t, 3)))
	if err != nil {
		t.Fatalf("legacy slack must load: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len %d want 1", s.Len())
	}
	if got := mSnapSlackBytes.Value() - before; got != 3 {
		t.Fatalf("store.snapshot.slack_bytes grew by %d, want 3", got)
	}
}

// v2FrameWithSlack builds a one-document XPC2 stream whose document frame
// declares pad extra bytes, with a recomputed (valid!) frame CRC — so only
// the slack check can reject it.
func v2FrameWithSlack(t *testing.T, pad int) []byte {
	t.Helper()
	var doc bytes.Buffer
	if err := xmltree.MustParseString(`<r><c>x</c></r>`).WriteSnapshot(&doc); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	writeSection := func(payload []byte) {
		b.Write(payload)
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], crc32.Checksum(payload, crcTable))
		b.Write(tmp[:])
	}
	b.WriteString(corpusMagicV2)
	var sec bytes.Buffer
	putUvarint(&sec, 0) // generation
	putUvarint(&sec, 1) // count
	writeSection(sec.Bytes())
	sec.Reset()
	putString(&sec, "padded")
	putUvarint(&sec, uint64(doc.Len()+pad))
	sec.Write(doc.Bytes())
	sec.Write(make([]byte, pad))
	writeSection(sec.Bytes())
	sec.Reset()
	sec.WriteString(corpusFooterMagic)
	putUvarint(&sec, 1)
	putUvarint(&sec, 0)
	writeSection(sec.Bytes())
	return b.Bytes()
}

func TestSnapshotV2SlackRejected(t *testing.T) {
	_, err := LoadSnapshot(bytes.NewReader(v2FrameWithSlack(t, 2)))
	if err == nil || !strings.Contains(err.Error(), "slack") {
		t.Fatalf("want slack rejection, got %v", err)
	}
	// Control: the same construction with zero padding loads.
	if _, err := LoadSnapshot(bytes.NewReader(v2FrameWithSlack(t, 0))); err != nil {
		t.Fatalf("zero-slack control must load: %v", err)
	}
}

// TestSnapshotHostileLengthClaims: counts and lengths read from the stream
// are claims; absurd ones must fail fast instead of committing the reader
// to huge allocations or scans.
func TestSnapshotHostileLengthClaims(t *testing.T) {
	// V1: absurd document count.
	var b bytes.Buffer
	b.WriteString(corpusMagicV1)
	putUvarint(&b, maxCorpusDocs+1)
	if _, err := LoadSnapshot(bytes.NewReader(b.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "implausible document count") {
		t.Fatalf("V1 hostile count: got %v", err)
	}
	// V1: absurd per-document length claim (the regression this release
	// fixes: it used to flow unchecked into a LimitReader).
	b.Reset()
	b.WriteString(corpusMagicV1)
	putUvarint(&b, 1)
	putString(&b, "evil")
	putUvarint(&b, maxDocSnapLen+1)
	if _, err := LoadSnapshot(bytes.NewReader(b.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "implausible document length") {
		t.Fatalf("V1 hostile length: got %v", err)
	}
	// V2: absurd document count, CRC-valid so only the bound can reject.
	b.Reset()
	b.WriteString(corpusMagicV2)
	var sec bytes.Buffer
	putUvarint(&sec, 0)
	putUvarint(&sec, maxCorpusDocs+1)
	b.Write(sec.Bytes())
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], crc32.Checksum(sec.Bytes(), crcTable))
	b.Write(tmp[:])
	if _, err := LoadSnapshot(bytes.NewReader(b.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "implausible document count") {
		t.Fatalf("V2 hostile count: got %v", err)
	}
}

// TestSnapshotV2DetectsCorruption: any flipped bit in the stream must
// surface as an error — the CRCs leave no blind spots.
func TestSnapshotV2DetectsCorruption(t *testing.T) {
	s := corpus(t, 3)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for i := len(corpusMagicV2); i < len(valid); i++ {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x01
		if _, err := LoadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at offset %d loaded cleanly", i)
		}
	}
}

// TestSnapshotV2DetectsTruncation: the footer makes every truncation —
// even one cutting exactly at a frame boundary — detectable.
func TestSnapshotV2DetectsTruncation(t *testing.T) {
	s := corpus(t, 3)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut++ {
		if _, err := LoadSnapshot(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded cleanly", cut, len(valid))
		}
	}
	// Trailing garbage after a complete stream is equally rejected.
	if _, err := LoadSnapshot(bytes.NewReader(append(bytes.Clone(valid), 0))); err == nil {
		t.Fatal("trailing byte after footer loaded cleanly")
	}
}

func TestSaveSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.snap")
	s := corpus(t, 6)
	if err := s.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameCorpus(t, loaded, s)

	// Overwriting an existing snapshot is equally atomic.
	if err := s.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if loaded, err = LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	sameCorpus(t, loaded, s)
}

func TestStoreReplaceSwapsAtomically(t *testing.T) {
	s := New()
	if _, err := s.Replace("a", xmltree.MustParseString(`<old/>`)); err != nil {
		t.Fatal(err)
	}
	replaced, err := s.Replace("a", xmltree.MustParseString(`<new/>`))
	if err != nil {
		t.Fatal(err)
	}
	if !replaced {
		t.Fatal("second Replace must report displacement")
	}
	d, _ := s.Get("a")
	if got := d.XMLString(); !strings.Contains(got, "new") {
		t.Fatalf("got %q", got)
	}
	if _, err := s.Replace("", xmltree.MustParseString(`<x/>`)); err == nil {
		t.Fatal("empty ID must fail")
	}
	if _, err := s.Replace("b", nil); err == nil {
		t.Fatal("nil document must fail")
	}
}
