package store

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/xmltree"
)

// DurableStore is the durability and write-traffic layer over Store: a
// directory holding one checksummed corpus snapshot plus generation-named
// write-ahead-log segments. Every mutation is logged before it is applied,
// Open recovers snapshot + WAL replay (truncating a torn tail to the last
// durable prefix), and Compact folds the log into a fresh snapshot without
// blocking readers or writers for more than a brief rotation.
//
// Directory layout:
//
//	corpus.snap            current XPC2 snapshot (generation G)
//	wal.<gen>.log          mutation segments, generation-named; replay
//	                       applies every segment with gen ≥ G in order
//	*.tmp                  in-flight atomic installs; deleted on Open
//
// Concurrency: mutations serialize on one mutex (WAL append + in-memory
// apply are one linearization point); queries read the embedded Store
// lock-free of that mutex, so every evaluation sees exactly an old-or-new
// document, never a torn one. Compact holds the mutation mutex only while
// rotating to a fresh segment and capturing the point-in-time listing —
// the snapshot encode and fsync run concurrently with new mutations.
type DurableStore struct {
	dir   string
	fs    fsys
	sync  SyncPolicy
	store *Store

	mu     sync.Mutex // serializes mutations, rotation, close
	wal    *walWriter
	gen    uint64 // active WAL segment generation (≥ snapshot generation)
	seq    uint64 // last assigned mutation sequence number
	closed bool

	compactMu sync.Mutex // serializes whole compactions
}

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: an acknowledged
	// mutation survives power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: mutations survive process
	// crashes (the bytes are in the page cache) but a power cut may lose
	// the un-flushed suffix. Recovery still reopens to a durable prefix.
	SyncNever
)

// DurableOptions configures Open.
type DurableOptions struct {
	// Sync selects the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// fs substitutes the filesystem (tests only; nil means the real one).
	fs fsys
}

const snapFileName = "corpus.snap"

// walFileName names the segment for a generation; fixed-width decimal so
// lexicographic directory order is generation order.
func walFileName(gen uint64) string {
	return fmt.Sprintf("wal.%020d.log", gen)
}

// parseWALFileName inverts walFileName.
func parseWALFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal.") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal."), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Open recovers (or initializes) a durable store in dir: loads the
// snapshot if one exists, replays every WAL segment of the snapshot's
// generation or newer in order, truncates a torn tail to the last durable
// prefix, deletes stale segments and leftover temp files, and arms an
// active segment for appends.
func Open(dir string, opts DurableOptions) (*DurableStore, error) {
	fs := opts.fs
	if fs == nil {
		fs = osFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}

	// Leftover temp files are failed atomic installs: garbage by
	// construction (the install is the rename), never state.
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
		}
	}

	ds := &DurableStore{dir: dir, fs: fs, sync: opts.Sync, store: New()}

	// Snapshot, if present.
	haveSnap := false
	for _, name := range names {
		if name == snapFileName {
			haveSnap = true
		}
	}
	if haveSnap {
		f, err := fs.Open(filepath.Join(dir, snapFileName))
		if err != nil {
			return nil, err
		}
		st, gen, err := loadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
		ds.store = st
		ds.gen = gen
	}

	// WAL segments: stale ones (older than the snapshot) are already
	// folded in; current and newer ones replay in generation order.
	var segs []uint64
	for _, name := range names {
		g, ok := parseWALFileName(name)
		if !ok {
			continue
		}
		if g < ds.gen {
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
			continue
		}
		segs = append(segs, g)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for _, g := range segs {
		if err := ds.replaySegment(g); err != nil {
			return nil, err
		}
		ds.gen = g
	}

	// Arm the active segment: append to the newest replayed one, or start
	// the first segment of this generation.
	path := filepath.Join(dir, walFileName(ds.gen))
	if len(segs) > 0 {
		w, err := fs.OpenAppend(path)
		if err != nil {
			return nil, err
		}
		ds.wal = &walWriter{f: w, sync: opts.Sync}
	} else {
		w, err := createWAL(fs, path, ds.gen, opts.Sync)
		if err != nil {
			return nil, err
		}
		if err := fs.SyncDir(dir); err != nil {
			w.close()
			return nil, err
		}
		ds.wal = w
	}
	return ds, nil
}

// replaySegment replays one WAL segment into the store, truncating the
// file to its durable prefix if the tail is torn.
func (ds *DurableStore) replaySegment(gen uint64) error {
	path := filepath.Join(ds.dir, walFileName(gen))
	f, err := ds.fs.Open(path)
	if err != nil {
		return err
	}
	fileGen, goodOffset, lastSeq, err := replayWAL(f, func(rec walRecord) error {
		return applyWALRecord(ds.store, rec)
	})
	f.Close()
	if err != nil {
		return fmt.Errorf("store: open %s: %w", ds.dir, err)
	}
	if fileGen != gen {
		return fmt.Errorf("store: open %s: %s claims generation %d", ds.dir, walFileName(gen), fileGen)
	}
	size, err := ds.fs.Size(path)
	if err != nil {
		return err
	}
	if size > goodOffset {
		// Torn tail: cut the file back to the durable prefix so the next
		// append continues from a clean record boundary.
		if err := ds.fs.Truncate(path, goodOffset); err != nil {
			return err
		}
		mWALTruncated.Add(size - goodOffset)
	}
	if lastSeq > ds.seq {
		ds.seq = lastSeq
	}
	return nil
}

// Store exposes the embedded in-memory store for queries (Get, Query,
// IDs, …). Mutations must go through the DurableStore methods.
func (ds *DurableStore) Store() *Store { return ds.store }

// Dir returns the directory backing the store.
func (ds *DurableStore) Dir() string { return ds.dir }

// Generation returns the active WAL generation (it advances on every
// Compact).
func (ds *DurableStore) Generation() uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.gen
}

// Seq returns the last assigned mutation sequence number.
func (ds *DurableStore) Seq() uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.seq
}

var errClosed = fmt.Errorf("store: durable store is closed")

// Put inserts or replaces the document under the given ID: the mutation is
// WAL-logged first (fsynced per policy), then applied to the in-memory
// store — one linearization point under the mutation mutex, with readers
// never blocked. It reports whether a previous document was replaced.
func (ds *DurableStore) Put(id string, doc *xmltree.Document) (replaced bool, err error) {
	if err := validateDoc(id, doc); err != nil {
		return false, err
	}
	// Serialize outside the lock: the document is still private to the
	// caller here (the Store.Add contract), and encoding is the slow part.
	var buf bytes.Buffer
	if err := doc.WriteSnapshot(&buf); err != nil {
		return false, err
	}
	if buf.Len() > maxDocSnapLen {
		return false, fmt.Errorf("store: document %q snapshot is %d bytes, above the %d cap", id, buf.Len(), maxDocSnapLen)
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return false, errClosed
	}
	_, existed := ds.store.Get(id)
	op := walOpAdd
	if existed {
		op = walOpReplace
	}
	ds.seq++
	if err := ds.wal.append(walRecord{op: op, seq: ds.seq, id: id, doc: buf.Bytes()}); err != nil {
		return false, err
	}
	return ds.store.Replace(id, doc)
}

// Remove deletes the document under the ID (WAL-logged first), reporting
// whether it was present. Removing an absent ID writes nothing.
func (ds *DurableStore) Remove(id string) (bool, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return false, errClosed
	}
	if _, ok := ds.store.Get(id); !ok {
		return false, nil
	}
	ds.seq++
	if err := ds.wal.append(walRecord{op: walOpRemove, seq: ds.seq, id: id}); err != nil {
		return false, err
	}
	return ds.store.Remove(id), nil
}

// Compact folds the WAL into a fresh snapshot: it rotates to a new
// segment and captures a point-in-time listing under the mutation mutex
// (brief — no disk writes beyond the new segment header), then encodes,
// fsyncs and atomically installs the snapshot while mutations and queries
// proceed, and finally deletes the folded segments. It returns the new
// generation.
func (ds *DurableStore) Compact() (uint64, error) {
	ds.compactMu.Lock()
	defer ds.compactMu.Unlock()

	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return 0, errClosed
	}
	newGen := ds.gen + 1
	w, err := createWAL(ds.fs, filepath.Join(ds.dir, walFileName(newGen)), newGen, ds.sync)
	if err != nil {
		ds.mu.Unlock()
		return 0, err
	}
	oldWal := ds.wal
	ds.wal = w
	ds.gen = newGen
	items := ds.store.snapshot()
	ds.mu.Unlock()
	mWALRotations.Add(1)

	// The rotated-out segment is complete; sync and close it so the
	// snapshot below can only ever be ahead of — never behind — the log.
	if err := oldWal.close(); err != nil {
		return 0, err
	}
	err = saveSnapshotFile(ds.fs, filepath.Join(ds.dir, snapFileName), func(sw io.Writer) error {
		return writeSnapshotEntries(sw, newGen, items)
	})
	if err != nil {
		// The snapshot install failed but the rotation stands: recovery
		// replays the old segment (still on disk) plus the new one.
		return 0, err
	}

	// Snapshot durable: segments older than newGen are folded in.
	names, err := ds.fs.ReadDir(ds.dir)
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		if g, ok := parseWALFileName(name); ok && g < newGen {
			if err := ds.fs.Remove(filepath.Join(ds.dir, name)); err != nil {
				return 0, err
			}
		}
	}
	return newGen, nil
}

// Close syncs and closes the active WAL segment. The embedded store stays
// readable; further mutations and compactions fail.
func (ds *DurableStore) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return nil
	}
	ds.closed = true
	return ds.wal.close()
}
