package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

func mustDoc(t *testing.T, xml string) *xmltree.Document {
	t.Helper()
	return xmltree.MustParseString(xml)
}

func openDurable(t *testing.T, dir string) *DurableStore {
	t.Helper()
	ds, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDurableOpenEmptyPutReopen(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	if ds.Store().Len() != 0 {
		t.Fatalf("fresh dir Len %d", ds.Store().Len())
	}
	if replaced, err := ds.Put("a", mustDoc(t, `<r><c>1</c></r>`)); err != nil || replaced {
		t.Fatalf("first Put: replaced=%v err=%v", replaced, err)
	}
	if replaced, err := ds.Put("a", mustDoc(t, `<r><c>2</c></r>`)); err != nil || !replaced {
		t.Fatalf("second Put: replaced=%v err=%v", replaced, err)
	}
	if _, err := ds.Put("b", mustDoc(t, `<r><c>3</c></r>`)); err != nil {
		t.Fatal(err)
	}
	if removed, err := ds.Remove("b"); err != nil || !removed {
		t.Fatalf("Remove: %v %v", removed, err)
	}
	if removed, err := ds.Remove("ghost"); err != nil || removed {
		t.Fatalf("Remove absent: %v %v", removed, err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: pure WAL replay (no snapshot yet).
	ds2 := openDurable(t, dir)
	defer ds2.Close()
	if ds2.Store().Len() != 1 {
		t.Fatalf("recovered Len %d want 1", ds2.Store().Len())
	}
	d, ok := ds2.Store().Get("a")
	if !ok || !strings.Contains(d.XMLString(), "2") {
		t.Fatalf("recovered document: ok=%v %s", ok, d.XMLString())
	}
	if ds2.Seq() != 4 {
		t.Fatalf("recovered seq %d want 4", ds2.Seq())
	}
}

func TestDurableCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	for i := 0; i < 10; i++ {
		if _, err := ds.Put(fmt.Sprintf("doc-%d", i), mustDoc(t, fmt.Sprintf(`<r><n>%d</n></r>`, i))); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := ds.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation %d want 1", gen)
	}
	// Post-compaction traffic lands in the new segment.
	if _, err := ds.Put("late", mustDoc(t, `<r><n>late</n></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Remove("doc-0"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the current-generation segment and the snapshot remain.
	names, err := osFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{snapFileName, walFileName(1)}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("directory %v want %v", names, want)
	}

	ds2 := openDurable(t, dir)
	defer ds2.Close()
	if got := ds2.Store().Len(); got != 10 { // 10 added, +late, -doc-0
		t.Fatalf("recovered Len %d want 10", got)
	}
	if _, ok := ds2.Store().Get("doc-0"); ok {
		t.Fatal("doc-0 must stay removed after recovery")
	}
	if _, ok := ds2.Store().Get("late"); !ok {
		t.Fatal("late must survive recovery")
	}
	if ds2.Generation() != 1 {
		t.Fatalf("recovered generation %d want 1", ds2.Generation())
	}
}

// TestDurableRecoversFromTornTail: bytes chopped off the active segment —
// a crash mid-append — must reopen to the last durable prefix, and the
// next mutation must append cleanly from there.
func TestDurableRecoversFromTornTail(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	if _, err := ds.Put("keep", mustDoc(t, `<r><c>keep</c></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Put("torn", mustDoc(t, `<r><c>torn</c></r>`)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, walFileName(0))
	size, err := osFS{}.Size(path)
	if err != nil {
		t.Fatal(err)
	}
	for chop := int64(1); chop < 12; chop++ {
		if err := os.Truncate(path, size-chop); err != nil {
			t.Fatal(err)
		}
		ds2 := openDurable(t, dir)
		if _, ok := ds2.Store().Get("keep"); !ok {
			t.Fatalf("chop %d: first record lost", chop)
		}
		if _, ok := ds2.Store().Get("torn"); ok {
			t.Fatalf("chop %d: torn record replayed", chop)
		}
		// The truncated store accepts new traffic on the cut boundary.
		if _, err := ds2.Put("fresh", mustDoc(t, `<r><c>fresh</c></r>`)); err != nil {
			t.Fatalf("chop %d: %v", chop, err)
		}
		if err := ds2.Close(); err != nil {
			t.Fatal(err)
		}
		ds3 := openDurable(t, dir)
		if _, ok := ds3.Store().Get("fresh"); !ok {
			t.Fatalf("chop %d: post-recovery append lost", chop)
		}
		ds3.Close()
		// Reset for the next chop depth: drop "fresh" and restore "torn" so
		// the segment again ends in the record the next chop will tear.
		ds4 := openDurable(t, dir)
		if _, err := ds4.Remove("fresh"); err != nil {
			t.Fatal(err)
		}
		if _, err := ds4.Put("torn", mustDoc(t, `<r><c>torn</c></r>`)); err != nil {
			t.Fatal(err)
		}
		ds4.Close()
		size, err = osFS{}.Size(path)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDurableLeftoverTmpCleaned(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "corpus.snap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds := openDurable(t, dir)
	defer ds.Close()
	if _, err := os.Stat(filepath.Join(dir, "corpus.snap.tmp")); !os.IsNotExist(err) {
		t.Fatalf("tmp not cleaned: %v", err)
	}
}

func TestDurableClosedRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	ds := openDurable(t, dir)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Put("a", mustDoc(t, `<r/>`)); err == nil {
		t.Fatal("Put after Close must fail")
	}
	if _, err := ds.Remove("a"); err == nil {
		t.Fatal("Remove of a present doc after Close must fail")
	}
	if _, err := ds.Compact(); err == nil {
		t.Fatal("Compact after Close must fail")
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// recordingFS wraps a real fsys and logs every durability-relevant
// operation in order, so tests can assert the flush → sync → rename
// discipline rather than trust it.
type recordingFS struct {
	real osFS
	mu   sync.Mutex
	ops  []string
}

func (r *recordingFS) log(format string, args ...any) {
	r.mu.Lock()
	r.ops = append(r.ops, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func (r *recordingFS) Ops() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.ops...)
}

type recordingFile struct {
	vfile
	fs   *recordingFS
	name string
}

func (f *recordingFile) Write(p []byte) (int, error) {
	f.fs.log("write %s %d", f.name, len(p))
	return f.vfile.Write(p)
}

func (f *recordingFile) Sync() error {
	f.fs.log("sync %s", f.name)
	return f.vfile.Sync()
}

func (f *recordingFile) Close() error {
	f.fs.log("close %s", f.name)
	return f.vfile.Close()
}

func (r *recordingFS) Create(name string) (vfile, error) {
	r.log("create %s", filepath.Base(name))
	f, err := r.real.Create(name)
	if err != nil {
		return nil, err
	}
	return &recordingFile{vfile: f, fs: r, name: filepath.Base(name)}, nil
}

func (r *recordingFS) OpenAppend(name string) (vfile, error) {
	r.log("append %s", filepath.Base(name))
	f, err := r.real.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &recordingFile{vfile: f, fs: r, name: filepath.Base(name)}, nil
}

func (r *recordingFS) Open(name string) (io.ReadCloser, error) { return r.real.Open(name) }

func (r *recordingFS) Rename(oldname, newname string) error {
	r.log("rename %s %s", filepath.Base(oldname), filepath.Base(newname))
	return r.real.Rename(oldname, newname)
}

func (r *recordingFS) Remove(name string) error {
	r.log("remove %s", filepath.Base(name))
	return r.real.Remove(name)
}

func (r *recordingFS) Truncate(name string, size int64) error {
	r.log("truncate %s %d", filepath.Base(name), size)
	return r.real.Truncate(name, size)
}

func (r *recordingFS) MkdirAll(dir string) error { return r.real.MkdirAll(dir) }

func (r *recordingFS) ReadDir(dir string) ([]string, error) { return r.real.ReadDir(dir) }

func (r *recordingFS) SyncDir(dir string) error {
	r.log("syncdir")
	return r.real.SyncDir(dir)
}

func (r *recordingFS) Size(name string) (int64, error) { return r.real.Size(name) }

// TestSnapshotInstallOrdering: the atomic install must write and sync the
// temp file, close it, rename it over the target, and sync the directory —
// in exactly that order. Any other order has a crash window that can
// install unsynced bytes.
func TestSnapshotInstallOrdering(t *testing.T) {
	dir := t.TempDir()
	rfs := &recordingFS{}
	s := corpus(t, 2)
	if err := saveSnapshotFile(rfs, filepath.Join(dir, "corpus.snap"), func(w io.Writer) error {
		return s.WriteSnapshot(w)
	}); err != nil {
		t.Fatal(err)
	}
	var seq []string
	for _, op := range rfs.Ops() {
		switch {
		case strings.HasPrefix(op, "sync corpus.snap.tmp"):
			seq = append(seq, "sync")
		case strings.HasPrefix(op, "close corpus.snap.tmp"):
			seq = append(seq, "close")
		case strings.HasPrefix(op, "rename corpus.snap.tmp corpus.snap"):
			seq = append(seq, "rename")
		case op == "syncdir":
			seq = append(seq, "syncdir")
		}
	}
	want := []string{"sync", "close", "rename", "syncdir"}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("install order %v want %v\nfull log: %v", seq, want, rfs.Ops())
	}
}

// TestWALAppendSyncOrdering: under SyncAlways every record's bytes are
// synced before Put returns; the sync follows the payload write.
func TestWALAppendSyncOrdering(t *testing.T) {
	dir := t.TempDir()
	rfs := &recordingFS{}
	ds, err := Open(dir, DurableOptions{Sync: SyncAlways, fs: rfs})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	mark := len(rfs.Ops())
	if _, err := ds.Put("a", mustDoc(t, `<r/>`)); err != nil {
		t.Fatal(err)
	}
	ops := rfs.Ops()[mark:]
	wal := walFileName(0)
	var writes, syncs int
	lastWrite, lastSync := -1, -1
	for i, op := range ops {
		if strings.HasPrefix(op, "write "+wal) {
			writes++
			lastWrite = i
		}
		if strings.HasPrefix(op, "sync "+wal) {
			syncs++
			lastSync = i
		}
	}
	if writes != 2 || syncs != 1 || lastSync < lastWrite {
		t.Fatalf("per-record ops: %d writes, %d syncs, order write<%d> sync<%d>\n%v",
			writes, syncs, lastWrite, lastSync, ops)
	}
}

// TestDurableConcurrentMutateQueryCompact exercises the full interleaving
// promise under -race: writers, readers and a compactor all proceed at
// once; every read observes an old-or-new document, never a torn one.
func TestDurableConcurrentMutateQueryCompact(t *testing.T) {
	dir := t.TempDir()
	ds, err := Open(dir, DurableOptions{Sync: SyncNever}) // fsync throughput not under test
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("w%d-%d", g, i%5)
				if _, err := ds.Put(id, mustDoc(t, fmt.Sprintf(`<r><n>%d</n></r>`, i))); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					if _, err := ds.Remove(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range ds.Store().IDs() {
				if d, ok := ds.Store().Get(id); ok {
					_ = d.XMLString()
				}
			}
		}
	}()
	for c := 0; c < 3; c++ {
		if _, err := ds.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2 := openDurable(t, dir)
	defer ds2.Close()
	if got, want := ds2.Store().Len(), ds.Store().Len(); got != want {
		t.Fatalf("recovered Len %d want %d", got, want)
	}
	for _, id := range ds.Store().IDs() {
		a, _ := ds.Store().Get(id)
		b, ok := ds2.Store().Get(id)
		if !ok || a.XMLString() != b.XMLString() {
			t.Fatalf("document %q differs after recovery", id)
		}
	}
}
