package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/xmltree"
)

// The write-ahead log makes store mutations durable between snapshots:
// every Add/Replace/Remove appends one self-checking record before it
// touches the in-memory store, so a crash at any moment loses at most the
// mutation being written — never a previously acknowledged one (under
// SyncAlways) and never the store's integrity.
//
// File layout (integers unsigned varints unless noted):
//
//	header  magic "XWL1", generation, crc32c(generation varint) u32-LE
//	record  payloadLen u32-LE, crc32c(payload) u32-LE, payload
//	payload op byte (1 add | 2 replace | 3 remove), seq, id,
//	        and for add/replace: docLen, document snapshot ("XPT1")
//
// The fixed-width length/CRC pair in front of every payload makes torn
// tails self-evident on replay: a record whose frame is incomplete or
// whose checksum fails marks the end of the durable prefix. Replay
// truncates there — a torn tail is the expected signature of a crash
// mid-append, not corruption to reject the corpus over.
const walMagic = "XWL1"

const (
	walOpAdd     byte = 1
	walOpReplace byte = 2
	walOpRemove  byte = 3
)

// maxWALPayload bounds one record's declared payload: a document snapshot
// at its cap, plus an ID and framing slop.
const maxWALPayload = maxDocSnapLen + maxIDLen + 64

var (
	mWALAppends   = metrics.Default().Counter("store.wal.appends")
	mWALAppendNs  = metrics.Default().Histogram("store.wal.append_ns")
	mWALBytes     = metrics.Default().Counter("store.wal.bytes")
	mWALFsyncNs   = metrics.Default().Histogram("store.wal.fsync_ns")
	mWALReplayed  = metrics.Default().Counter("store.wal.replayed_records")
	mWALTruncated = metrics.Default().Counter("store.wal.truncated_bytes")
	mWALRotations = metrics.Default().Counter("store.wal.rotations")
)

// walRecord is one decoded mutation.
type walRecord struct {
	op  byte
	seq uint64
	id  string
	doc []byte // XPT1 snapshot bytes for add/replace, nil for remove
}

// encodeWALHeader appends the file header for a segment of the given
// generation.
func encodeWALHeader(b *bytes.Buffer, generation uint64) {
	b.WriteString(walMagic)
	var gv bytes.Buffer
	putUvarint(&gv, generation)
	b.Write(gv.Bytes())
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], crc32.Checksum(gv.Bytes(), crcTable))
	b.Write(tmp[:])
}

// encodeWALRecord appends one framed record.
func encodeWALRecord(b *bytes.Buffer, rec walRecord) {
	var payload bytes.Buffer
	payload.WriteByte(rec.op)
	putUvarint(&payload, rec.seq)
	putString(&payload, rec.id)
	if rec.op != walOpRemove {
		putUvarint(&payload, uint64(len(rec.doc)))
		payload.Write(rec.doc)
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(tmp[4:], crc32.Checksum(payload.Bytes(), crcTable))
	b.Write(tmp[:])
	b.Write(payload.Bytes())
}

// walWriter appends records to one segment file.
type walWriter struct {
	f    vfile
	buf  bytes.Buffer
	sync SyncPolicy
}

// createWAL creates a fresh segment with a durable header.
func createWAL(fs fsys, path string, generation uint64, sync SyncPolicy) (*walWriter, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	w := &walWriter{f: f, sync: sync}
	w.buf.Reset()
	encodeWALHeader(&w.buf, generation)
	if _, err := f.Write(w.buf.Bytes()); err != nil {
		f.Close()
		return nil, err
	}
	// The header is synced unconditionally: replay must always be able to
	// attribute the segment to its generation.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// append frames and writes one record, then syncs per policy. The frame
// header and payload go out in two writes with a failpoint between them:
// under -tags faultinject the chaos suite arms store.wal.append to crash
// there, leaving a genuinely torn record for the recovery tests.
func (w *walWriter) append(rec walRecord) error {
	t0 := trace.Now()
	w.buf.Reset()
	encodeWALRecord(&w.buf, rec)
	frame := w.buf.Bytes()
	if _, err := w.f.Write(frame[:8]); err != nil {
		return err
	}
	faultinject.Hit("store.wal.append")
	if _, err := w.f.Write(frame[8:]); err != nil {
		return err
	}
	if w.sync == SyncAlways {
		ts := trace.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		mWALFsyncNs.Observe(trace.Now() - ts)
	}
	mWALAppends.Add(1)
	mWALBytes.Add(int64(len(frame)))
	mWALAppendNs.Observe(trace.Now() - t0)
	return nil
}

// close syncs (regardless of policy — a closing segment must be complete
// on disk) and closes the file.
func (w *walWriter) close() error {
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayWAL decodes a segment stream, invoking apply for every intact
// record. It returns the segment's generation, the byte offset of the end
// of the last intact record (the durable prefix — callers truncate the
// file there), and the highest sequence number seen.
//
// A torn tail — incomplete frame, short payload, checksum mismatch — ends
// replay without error: that is the signature of a crash mid-append, and
// the durable prefix before it is intact by construction. Only a
// malformed header or an undecodable CRC-valid payload is a real error.
func replayWAL(r io.Reader, apply func(walRecord) error) (generation uint64, goodOffset int64, lastSeq uint64, err error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	consumed := func() int64 { return cr.n - int64(br.Buffered()) }

	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, 0, 0, fmt.Errorf("store: wal: header: %w", err)
	}
	if string(magic) != walMagic {
		return 0, 0, 0, fmt.Errorf("store: wal: bad magic %q", magic)
	}
	hc := &crcReader{br: br}
	generation, err = binary.ReadUvarint(hc)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: wal: generation: %w", err)
	}
	if err := hc.expectCRC("wal header"); err != nil {
		return 0, 0, 0, err
	}
	goodOffset = consumed()

	var frame [8]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			// EOF exactly at a record boundary is a clean end; anything
			// partial is a torn tail. Either way the durable prefix ends here.
			return generation, goodOffset, lastSeq, nil
		}
		payloadLen := binary.LittleEndian.Uint32(frame[:4])
		wantCRC := binary.LittleEndian.Uint32(frame[4:])
		if uint64(payloadLen) > maxWALPayload {
			// An absurd length claim means the frame header itself is
			// garbage — the durable prefix ended at the previous record.
			mWALTruncated.Add(8)
			return generation, goodOffset, lastSeq, nil
		}
		if cap(payload) < int(payloadLen) {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return generation, goodOffset, lastSeq, nil
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return generation, goodOffset, lastSeq, nil
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			// CRC-valid but undecodable: this was written that way, which a
			// torn write cannot produce. Surface it.
			return generation, goodOffset, lastSeq, fmt.Errorf("store: wal: record at offset %d: %w", goodOffset, err)
		}
		if err := apply(rec); err != nil {
			return generation, goodOffset, lastSeq, err
		}
		lastSeq = rec.seq
		goodOffset = consumed()
		mWALReplayed.Add(1)
	}
}

// decodeWALPayload parses one checksummed payload.
func decodeWALPayload(p []byte) (walRecord, error) {
	var rec walRecord
	if len(p) == 0 {
		return rec, fmt.Errorf("empty payload")
	}
	rec.op = p[0]
	b := bytes.NewReader(p[1:])
	var err error
	if rec.seq, err = binary.ReadUvarint(b); err != nil {
		return rec, fmt.Errorf("sequence: %w", err)
	}
	idLen, err := binary.ReadUvarint(b)
	if err != nil {
		return rec, fmt.Errorf("id length: %w", err)
	}
	if idLen > maxIDLen {
		return rec, fmt.Errorf("implausible id length %d", idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(b, id); err != nil {
		return rec, fmt.Errorf("id: %w", err)
	}
	rec.id = string(id)
	switch rec.op {
	case walOpAdd, walOpReplace:
		docLen, err := binary.ReadUvarint(b)
		if err != nil {
			return rec, fmt.Errorf("doc length: %w", err)
		}
		if docLen > maxDocSnapLen {
			return rec, fmt.Errorf("implausible doc length %d", docLen)
		}
		doc := make([]byte, docLen)
		if _, err := io.ReadFull(b, doc); err != nil {
			return rec, fmt.Errorf("doc: %w", err)
		}
		rec.doc = doc
	case walOpRemove:
	default:
		return rec, fmt.Errorf("unknown op %d", rec.op)
	}
	if b.Len() != 0 {
		return rec, fmt.Errorf("%d trailing payload bytes", b.Len())
	}
	return rec, nil
}

// applyWALRecord replays one mutation into the store (upsert semantics for
// both add and replace, so replay after compaction is idempotent).
func applyWALRecord(s *Store, rec walRecord) error {
	switch rec.op {
	case walOpAdd, walOpReplace:
		doc, err := xmltree.LoadSnapshot(bytes.NewReader(rec.doc))
		if err != nil {
			return fmt.Errorf("store: wal: %q: %w", rec.id, err)
		}
		_, err = s.Replace(rec.id, doc)
		return err
	case walOpRemove:
		s.Remove(rec.id)
		return nil
	}
	return fmt.Errorf("store: wal: unknown op %d", rec.op)
}
