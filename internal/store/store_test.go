package store

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/workload"
)

func mustQuery(t *testing.T, src string) *syntax.Query {
	t.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return q
}

func corpus(t *testing.T, n int) *Store {
	t.Helper()
	s := New()
	for i := 0; i < n; i++ {
		if err := s.Add(fmt.Sprintf("doc-%03d", i), workload.Scaled(60+i*7)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddGetRemove(t *testing.T) {
	s := New()
	if err := s.Add("", workload.Figure2()); err == nil {
		t.Error("Add with empty ID: want error")
	}
	if err := s.Add("x", nil); err == nil {
		t.Error("Add with nil document: want error")
	}
	if err := s.Add(strings.Repeat("x", maxIDLen+1), workload.Figure2()); err == nil {
		t.Error("Add with oversized ID: want error (snapshot would be unloadable)")
	}
	doc := workload.Figure2()
	if err := s.Add("fig2", doc); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("fig2")
	if !ok || got != doc {
		t.Fatalf("Get: %v %v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get(missing): want !ok")
	}
	// Replacement keeps Len stable.
	if err := s.Add("fig2", workload.Doubling()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after replace: %d", s.Len())
	}
	if !s.Remove("fig2") || s.Remove("fig2") {
		t.Error("Remove: want true then false")
	}
	if s.Len() != 0 {
		t.Fatalf("Len after remove: %d", s.Len())
	}
}

func TestIDsSorted(t *testing.T) {
	s := corpus(t, 12)
	ids := s.IDs()
	if len(ids) != 12 {
		t.Fatalf("IDs: %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %q >= %q", ids[i-1], ids[i])
		}
	}
}

// TestLabelInterning: documents added to one store share canonical label
// strings, and the intern table stays bounded by the vocabulary size.
func TestLabelInterning(t *testing.T) {
	s := New()
	for i := 0; i < 8; i++ {
		if err := s.Add(fmt.Sprintf("d%d", i), workload.Scaled(100)); err != nil {
			t.Fatal(err)
		}
	}
	// Scaled uses labels a, b, c, d and the attribute name id.
	if n := s.Interner().Len(); n > 8 {
		t.Errorf("interner holds %d strings; want the corpus vocabulary (≤ 8)", n)
	}
	d0, _ := s.Get("d0")
	d1, _ := s.Get("d1")
	l0, l1 := d0.Root().Children()[0].Label(), d1.Root().Children()[0].Label()
	if l0 != l1 {
		t.Fatalf("labels differ: %q vs %q", l0, l1)
	}
}

// TestBatchQueryDeterministic: any worker count produces the identical
// per-document result sequence.
func TestBatchQueryDeterministic(t *testing.T) {
	s := corpus(t, 30)
	q := mustQuery(t, `//b[c = 100]/child::c`)
	eng := core.NewOptMinContext()
	ref, refStats := s.Query(q, QueryOptions{Engine: eng, Workers: 1})
	if len(ref) != 30 {
		t.Fatalf("batch size: %d", len(ref))
	}
	for _, workers := range []int{2, 4, 8, 33} {
		got, gotStats := s.Query(q, QueryOptions{Engine: eng, Workers: workers})
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: batch size %d", workers, len(got))
		}
		for i := range got {
			if got[i].ID != ref[i].ID || got[i].Err != nil ||
				values.Render(got[i].Value) != values.Render(ref[i].Value) {
				t.Errorf("workers=%d doc %s: %s vs %s", workers, ref[i].ID,
					values.Render(got[i].Value), values.Render(ref[i].Value))
			}
		}
		if gotStats != refStats {
			t.Errorf("workers=%d: stats %v vs %v", workers, gotStats, refStats)
		}
	}
}

// TestBatchQueryEngines: the batch layer agrees across evaluation engines.
func TestBatchQueryEngines(t *testing.T) {
	s := corpus(t, 10)
	q := mustQuery(t, `/child::a/child::b/child::d`)
	ref, _ := s.Query(q, QueryOptions{Engine: core.NewOptMinContext(), Workers: 4})
	got, _ := s.Query(q, QueryOptions{Engine: plan.New(), Workers: 4})
	for i := range ref {
		if values.Render(ref[i].Value) != values.Render(got[i].Value) {
			t.Errorf("doc %s: optmincontext %s vs compiled %s", ref[i].ID,
				values.Render(ref[i].Value), values.Render(got[i].Value))
		}
	}
}

// TestBatchQuerySubset: explicit ID selections keep their order and report
// unknown IDs as per-document errors in the right slots.
func TestBatchQuerySubset(t *testing.T) {
	s := corpus(t, 6)
	q := mustQuery(t, `count(//c)`)
	ids := []string{"doc-004", "doc-000", "nope", "doc-002"}
	res, _ := s.Query(q, QueryOptions{Engine: core.NewOptMinContext(), Workers: 3, IDs: ids})
	if len(res) != 4 {
		t.Fatalf("len: %d", len(res))
	}
	for i, id := range ids {
		if res[i].ID != id {
			t.Errorf("slot %d: %q want %q", i, res[i].ID, id)
		}
	}
	if res[2].Err == nil {
		t.Error("unknown ID: want error")
	}
	if res[0].Err != nil || res[1].Err != nil || res[3].Err != nil {
		t.Error("known IDs: want no error")
	}
}

// TestBatchUnknownIDSpans pins the tracing contract for erroring batches: a
// shared recorder must see exactly one KindBatchDoc span per selected
// document — unknown IDs included — so span count always equals len(Docs).
// It also pins the metrics side: unknown IDs evaluate nothing, so they must
// not feed the store.batch.queue_wait_ns histogram. (The first version
// skipped the span and observed the queue wait for nil-document entries, so
// a traced batch with erroring IDs undercounted documents versus Errs()
// while polluting the wait distribution.)
func TestBatchUnknownIDSpans(t *testing.T) {
	s := corpus(t, 4)
	q := mustQuery(t, `//c`)
	ids := []string{"doc-000", "ghost-a", "doc-002", "ghost-b", "doc-003"}
	rec := trace.NewRecorder()
	before := metrics.Default().Snapshot()
	res, _ := s.Query(q, QueryOptions{
		Engine: core.NewOptMinContext(), Workers: 2, IDs: ids, Tracer: rec,
	})
	delta := metrics.Default().Snapshot().Sub(before)
	if len(res) != len(ids) {
		t.Fatalf("len: %d want %d", len(res), len(ids))
	}
	var spans int64
	for _, row := range rec.Rows() {
		if row.Kind == trace.KindBatchDoc {
			spans += row.Calls
		}
	}
	if spans != int64(len(ids)) {
		t.Errorf("recorder saw %d batch-doc spans, want %d (one per selected document)", spans, len(ids))
	}
	for _, ghost := range []string{"ghost-a", "ghost-b"} {
		found := false
		for _, row := range rec.Rows() {
			if row.Kind == trace.KindBatchDoc && row.Name == ghost {
				found = true
			}
		}
		if !found {
			t.Errorf("no batch-doc span for unknown ID %q", ghost)
		}
	}
	if got := delta.Histograms["store.batch.queue_wait_ns"].Count; got != 3 {
		t.Errorf("queue_wait_ns observed %d items, want 3 (unknown IDs must not pollute the wait histogram)", got)
	}
}

// TestBatchQueryEmpty: an empty store yields an empty batch.
func TestBatchQueryEmpty(t *testing.T) {
	s := New()
	res, agg := s.Query(mustQuery(t, `//c`), QueryOptions{Engine: core.NewOptMinContext(), Workers: 8})
	if len(res) != 0 || (agg != engine.Stats{}) {
		t.Fatalf("empty store: %v %v", res, agg)
	}
}

// TestCorpusSnapshotRoundTrip: WriteSnapshot → LoadSnapshot preserves IDs,
// document content and query results.
func TestCorpusSnapshotRoundTrip(t *testing.T) {
	s := corpus(t, 9)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("Len: %d want %d", loaded.Len(), s.Len())
	}
	q := mustQuery(t, `//b[c = 100]/child::c`)
	eng := core.NewOptMinContext()
	want, _ := s.Query(q, QueryOptions{Engine: eng, Workers: 2})
	got, _ := loaded.Query(q, QueryOptions{Engine: eng, Workers: 2})
	for i := range want {
		if want[i].ID != got[i].ID ||
			values.Render(want[i].Value) != values.Render(got[i].Value) {
			t.Errorf("doc %s: %s vs %s", want[i].ID,
				values.Render(want[i].Value), values.Render(got[i].Value))
		}
	}
	// XML serialization survives too.
	d0, _ := s.Get("doc-000")
	l0, _ := loaded.Get("doc-000")
	if d0.XMLString() != l0.XMLString() {
		t.Error("XML round trip mismatch")
	}
}

func TestCorpusSnapshotBadInput(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic: want error")
	}
	if _, err := LoadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("empty input: want error")
	}
}

// TestConcurrentStoreMutation: concurrent Add/Remove/Get/Query across
// goroutines — run under -race in CI.
func TestConcurrentStoreMutation(t *testing.T) {
	s := corpus(t, 20)
	q := mustQuery(t, `count(//d)`)
	eng := core.NewOptMinContext()
	stable := s.IDs() // batch over a fixed subset while other IDs churn
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i)
				if err := s.Add(id, workload.Doubling()); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(id); !ok {
					t.Errorf("Get(%s) after Add: missing", id)
					return
				}
				res, _ := s.Query(q, QueryOptions{Engine: eng, Workers: 2, IDs: stable})
				if len(res) != len(stable) {
					t.Errorf("batch size %d want %d", len(res), len(stable))
					return
				}
				s.Remove(id)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 20 {
		t.Fatalf("Len after churn: %d", s.Len())
	}
}

// TestUnknownLabelConcurrent: LabelSet on labels absent from the document
// must be read-only (the lazily-cached empty set used to be a data race
// under concurrent evaluation).
func TestUnknownLabelConcurrent(t *testing.T) {
	doc := workload.Figure2()
	q := mustQuery(t, `/descendant::zzz/child::yyy`)
	eng := core.NewOptMinContext()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := eng.Evaluate(q, doc, engine.RootContext(doc))
			if err != nil || v.Set.Len() != 0 {
				t.Errorf("unknown label: %v %v", v, err)
			}
		}()
	}
	wg.Wait()
}
