//go:build faultinject

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/xmltree"
)

// The chaos suite crashes the durability layer at its two injected fault
// sites — mid-WAL-append and pre-snapshot-rename — and proves the recovery
// contract: reopening the directory always lands on the last durable
// prefix, with no acknowledged mutation lost and no torn state visible.

func chaosDoc(t *testing.T, body string) *xmltree.Document {
	t.Helper()
	return xmltree.MustParseString(fmt.Sprintf(`<r><v>%s</v></r>`, body))
}

// crashPut runs one Put expecting the armed failpoint to panic it.
func crashPut(t *testing.T, ds *DurableStore, id, body string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("armed failpoint did not fire")
		}
	}()
	ds.Put(id, chaosDoc(t, body))
}

// TestChaosTornWALAppendRecovers: a crash between a record's frame header
// and its payload leaves a torn record on disk. Reopening must truncate to
// the durable prefix (every acknowledged Put intact, the torn one gone)
// and accept new appends on the cut boundary.
func TestChaosTornWALAppendRecovers(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	ds, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ds.Put(fmt.Sprintf("ok-%d", i), chaosDoc(t, fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}

	faultinject.Arm("store.wal.append", func() { panic("chaos: torn append") })
	crashPut(t, ds, "torn", "never")
	faultinject.Disarm("store.wal.append")

	// The torn frame header is on disk but the mutation was never
	// acknowledged — and never applied in memory either.
	if _, ok := ds.Store().Get("torn"); ok {
		t.Fatal("unacknowledged mutation visible in memory")
	}

	truncatedBefore := metrics.Default().Counter("store.wal.truncated_bytes").Value()
	ds2, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	if ds2.Store().Len() != 3 {
		t.Fatalf("recovered Len %d want 3", ds2.Store().Len())
	}
	for i := 0; i < 3; i++ {
		if _, ok := ds2.Store().Get(fmt.Sprintf("ok-%d", i)); !ok {
			t.Fatalf("acknowledged Put ok-%d lost", i)
		}
	}
	if _, ok := ds2.Store().Get("torn"); ok {
		t.Fatal("torn record replayed")
	}
	if got := metrics.Default().Counter("store.wal.truncated_bytes").Value(); got <= truncatedBefore {
		t.Fatal("store.wal.truncated_bytes did not grow")
	}

	// Appends continue cleanly on the truncated boundary and survive
	// another recovery.
	if _, err := ds2.Put("after", chaosDoc(t, "after")); err != nil {
		t.Fatal(err)
	}
	if err := ds2.Close(); err != nil {
		t.Fatal(err)
	}
	ds3, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds3.Close()
	if _, ok := ds3.Store().Get("after"); !ok {
		t.Fatal("post-recovery append lost")
	}
}

// TestChaosSnapshotRenameCrashRecovers: a crash after the snapshot temp
// file is written but before the atomic rename must leave the previous
// snapshot authoritative; the rotated WAL segments still carry every
// mutation, so reopening loses nothing, and the orphaned temp file is
// cleaned up.
func TestChaosSnapshotRenameCrashRecovers(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	ds, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ds.Put(fmt.Sprintf("base-%d", i), chaosDoc(t, fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.Compact(); err != nil { // a real snapshot exists (gen 1)
		t.Fatal(err)
	}
	if _, err := ds.Put("post-compact", chaosDoc(t, "pc")); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm("store.snapshot.rename", func() { panic("chaos: pre-rename crash") })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("armed failpoint did not fire")
			}
		}()
		ds.Compact()
	}()
	faultinject.Disarm("store.snapshot.rename")
	ds.Close()

	// The crashed compaction left both generations' segments behind; the
	// installed snapshot is still generation 1.
	names, err := osFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, walFileName(1)) || !strings.Contains(joined, walFileName(2)) {
		t.Fatalf("directory after crash: %v", names)
	}

	ds2, err := Open(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after rename crash: %v", err)
	}
	defer ds2.Close()
	if ds2.Store().Len() != 5 {
		t.Fatalf("recovered Len %d want 5", ds2.Store().Len())
	}
	if _, ok := ds2.Store().Get("post-compact"); !ok {
		t.Fatal("mutation between compactions lost")
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("orphaned snapshot temp file survived recovery: %v", err)
	}
	if ds2.Generation() != 2 {
		t.Fatalf("recovered generation %d want 2 (newest segment)", ds2.Generation())
	}
}
