package store

import (
	"bytes"
	"fmt"
	"regexp"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/xmltree"
)

// These tests pin the mutation layer's concurrency promise under -race:
// Replace and Remove may run against live query traffic — batch Query,
// EvaluateParallel, WriteSnapshot — and every reader observes some
// complete document version (old or new), never a torn state. Mutators
// parse a fresh document per iteration: a stored document's label storage
// belongs to the store (InternLabels runs inside Replace), so re-adding
// the same instance would be the caller's race, not the store's.

func TestReplaceConcurrentWithQuery(t *testing.T) {
	s := corpus(t, 8)
	q := mustQuery(t, `count(//b)`)
	eng := core.NewOptMinContext()
	ids := s.IDs()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 30; i++ {
				id := ids[(g*7+i)%len(ids)]
				doc := xmltree.MustParseString(fmt.Sprintf(`<a><b>%d</b><b>%d</b></a>`, g, i))
				if _, err := s.Replace(id, doc); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	go func() { writers.Wait(); close(stop) }()
	for {
		select {
		case <-stop:
			return
		default:
		}
		res, _ := s.Query(q, QueryOptions{Engine: eng, Workers: 2, IDs: ids})
		for _, r := range res {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
}

func TestRemoveConcurrentWithEvaluateParallel(t *testing.T) {
	s := New()
	// One big shared document under parallel evaluation while unrelated IDs
	// churn through Replace/Remove: the interner is the shared surface.
	shared := xmltree.MustParseString(`<a>` + bigChildren(200) + `</a>`)
	if err := s.Add("shared", shared); err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `/descendant::b/child::c`)
	eng := core.NewOptMinContext()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("churn-%d", g)
				doc := xmltree.MustParseString(fmt.Sprintf(`<a><b><c>%d</c></b></a>`, i))
				if _, err := s.Replace(id, doc); err != nil {
					t.Error(err)
					return
				}
				s.Remove(id)
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				d, _ := s.Get("shared")
				ctx := engine.RootContext(d)
				v, _, _, err := EvaluateParallel(eng, q, d, ctx, 4)
				if err != nil {
					t.Error(err)
					return
				}
				if v.Set.Len() != 200 {
					t.Errorf("cardinality %d want 200", v.Set.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func bigChildren(n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<b><c>%d</c></b>", i)
	}
	return b.String()
}

// TestWriteSnapshotConcurrentWithReplace: a snapshot taken under write
// traffic must be a clean linearization — it loads without error and every
// document it holds is some complete version a writer produced.
func TestWriteSnapshotConcurrentWithReplace(t *testing.T) {
	s := New()
	const docs = 6
	for i := 0; i < docs; i++ {
		if err := s.Add(fmt.Sprintf("d%d", i), xmltree.MustParseString(`<r><v>init</v></r>`)); err != nil {
			t.Fatal(err)
		}
	}
	valid := regexp.MustCompile(`^<r><v>(init|g\d+-\d+)</v></r>$`)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("d%d", (g+i)%docs)
				doc := xmltree.MustParseString(fmt.Sprintf(`<r><v>g%d-%d</v></r>`, g, i))
				if _, err := s.Replace(id, doc); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for snap := 0; snap < 5; snap++ {
		var buf bytes.Buffer
		if err := s.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("snapshot under write traffic does not load: %v", err)
		}
		if loaded.Len() != docs {
			t.Fatalf("snapshot Len %d want %d", loaded.Len(), docs)
		}
		for _, id := range loaded.IDs() {
			d, _ := loaded.Get(id)
			if !valid.MatchString(d.XMLString()) {
				t.Fatalf("torn document %q: %s", id, d.XMLString())
			}
		}
	}
	close(stop)
	wg.Wait()
}
