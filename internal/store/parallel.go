package store

import (
	"runtime"
	"sync"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Intra-query parallelism instruments: how often the last-step split is
// taken versus the serial fallback, and the cost of the document-order
// merge of the per-worker sets.
var (
	mParSplit  = metrics.Default().Counter("store.parallel.split")
	mParSerial = metrics.Default().Counter("store.parallel.serial")
	mMergeNs   = metrics.Default().Histogram("store.parallel.merge_ns")
)

// minParallelContexts gates the parallel path: below this many context
// nodes per worker the goroutine and per-call evaluator overhead outweighs
// any speedup, so EvaluateParallel falls back to one serial evaluation.
const minParallelContexts = 4

// EvaluateParallel evaluates q against doc by data-partitioning the last
// location step of the query across a bounded pool of goroutines.
//
// The decomposition is the classical one for location paths: for a pure
// step path π = s1/…/sk, S[[sk]](X) = ⋃ₓ∈X S[[sk]]({x}) — predicates
// inside a step are evaluated against per-context-node candidate lists
// (position() and last() included), so splitting the context set at a step
// boundary preserves XPath semantics exactly. The head s1/…/sk-1 is
// evaluated once, serially and set-at-a-time, in the given context — no
// work is duplicated across workers; its result set is cut into contiguous
// document-order chunks, each worker evaluates the final step per context
// node with the provided engine, and the per-worker sets are merged by set
// union — a deterministic document-order merge, since node sets order by
// preorder rank.
//
// Queries where context-value tables must span the whole context set fall
// back to one serial evaluation: non-path roots (scalar expressions, whose
// single result is not partitionable), filter-headed paths such as
// (//a)[2] (their predicates are positional over the entire node set),
// unions, paths with fewer than two steps, and paths whose final step
// carries a predicate with an absolute or filter-headed subpath (legal to
// partition, but each worker would recompute a whole-document table per
// context node — the shared-table case, served better serially). The
// returned bool reports whether the parallel path was taken; the result
// value is identical either way.
func EvaluateParallel(eng engine.Engine, q *syntax.Query, doc *xmltree.Document,
	ctx engine.Context, workers int) (values.Value, engine.Stats, bool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	head, tail, ok := splitCached(q)
	if !ok || workers == 1 {
		mParSerial.Add(1)
		v, st, err := evalParallelPart(eng, q, doc, ctx)
		return v, st, false, err
	}

	hv, hst, err := evalParallelPart(eng, head, doc, ctx)
	if err != nil {
		return values.Value{}, hst, false, err
	}
	contexts := hv.Set.Nodes()
	if len(contexts) < minParallelContexts*workers {
		mParSerial.Add(1)
		// Not enough contexts to pay for the fan-out: finish the final step
		// on this goroutine, reusing the head result already computed. The
		// shared-tracer contract of ParallelOptions.Tracer holds here too —
		// the tail steps must reach the caller's tracer exactly as they
		// would on the parallel path.
		acc := xmltree.NewSet(doc)
		agg := hst
		for _, x := range contexts {
			v, st, err := evalParallelPart(eng, tail, doc,
				engine.Context{Node: x, Pos: 1, Size: 1, Tracer: ctx.Tracer, Budget: ctx.Budget})
			agg.Add(st)
			if err != nil {
				return values.Value{}, agg, false, err
			}
			acc.UnionWith(v.Set)
		}
		return values.NodeSet(acc), agg, false, nil
	}
	if workers > len(contexts) {
		workers = len(contexts)
	}
	mParSplit.Add(1)
	if ctx.Tracer != nil {
		ctx.Tracer.Emit(trace.Event{
			Kind: trace.KindSplit, Name: q.Source,
			In: len(contexts), Out: workers, Ns: 0,
		})
	}

	// The workers share one budget so termination coordinates: the caller's
	// budget when given, otherwise a local pure-cancellation token. The first
	// worker failure cancels it, and every sibling stops at its next
	// per-context poll (or mid-evaluation, at its engine's next check).
	bud := ctx.Budget
	if bud == nil {
		bud = budget.New(budget.Limits{})
	}
	var (
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		failOnce.Do(func() { firstErr = err })
		bud.Cancel()
	}

	sets := make([]*xmltree.Set, workers)
	stats := make([]engine.Stats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(contexts) / workers
		hi := (w + 1) * len(contexts) / workers
		wg.Add(1)
		go func(w int, part []*xmltree.Node) {
			defer wg.Done()
			acc := xmltree.NewSet(doc)
			for _, x := range part {
				if err := bud.Err(); err != nil {
					errs[w] = err
					return
				}
				// The shared-tracer contract of QueryOptions.Tracer applies
				// here too: the tracer reaches every worker at once.
				v, st, err := evalParallelPart(eng, tail, doc,
					engine.Context{Node: x, Pos: 1, Size: 1, Tracer: ctx.Tracer, Budget: bud})
				stats[w].Add(st)
				if err != nil {
					errs[w] = err
					fail(err)
					return
				}
				acc.UnionWith(v.Set)
			}
			sets[w] = acc
		}(w, contexts[lo:hi])
	}
	wg.Wait()

	tMerge := trace.Now()
	merged := xmltree.NewSet(doc)
	agg := hst
	for w := 0; w < workers; w++ {
		agg.Add(stats[w])
	}
	// Report the root cause: the failure that tripped the shared budget, not
	// the ErrCanceled echoes the siblings observed after it.
	if firstErr != nil {
		return values.Value{}, agg, true, firstErr
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return values.Value{}, agg, true, errs[w]
		}
		merged.UnionWith(sets[w])
	}
	mergeNs := trace.Now() - tMerge
	mMergeNs.Observe(mergeNs)
	if ctx.Tracer != nil {
		ctx.Tracer.Emit(trace.Event{
			Kind: trace.KindMerge, Name: q.Source,
			In: workers, Out: merged.Len(), Ns: mergeNs,
		})
	}
	return values.NodeSet(merged), agg, true, nil
}

// evalParallelPart runs one evaluation (head, tail chunk, or the serial
// fallback) behind the fan-out's panic guard, so a panicking engine surfaces
// as an *engine.EvalPanicError on one part instead of killing the process
// from an unsupervised goroutine.
func evalParallelPart(eng engine.Engine, q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (v values.Value, st engine.Stats, err error) {
	defer engine.RecoverPanic(&err)
	faultinject.Hit("store.parallel")
	return eng.Evaluate(q, doc, ctx)
}

// splitEntry is one memoized SplitQuery outcome.
type splitEntry struct {
	head, tail *syntax.Query
	ok         bool
}

// splitCache memoizes SplitQuery per analyzed query. Queries are immutable
// after syntax.Compile, so pointer identity is a sound key; without the
// cache, every EvaluateParallel call would clone and re-analyze two
// subtrees and — worse — hand the plan engine two fresh *syntax.Query
// pointers per call, defeating its pointer-keyed plan cache. Bounded like
// the plan cache: beyond the cap an arbitrary entry is evicted (splits are
// cheap to redo; the bound only prevents unbounded growth under churning
// ad-hoc queries).
var splitCache = struct {
	sync.RWMutex
	m map[*syntax.Query]splitEntry
}{m: make(map[*syntax.Query]splitEntry)}

const maxCachedSplits = 1024

func splitCached(q *syntax.Query) (head, tail *syntax.Query, ok bool) {
	splitCache.RLock()
	e, hit := splitCache.m[q]
	splitCache.RUnlock()
	if hit {
		return e.head, e.tail, e.ok
	}
	head, tail, ok = SplitQuery(q)
	splitCache.Lock()
	defer splitCache.Unlock()
	if e, hit := splitCache.m[q]; hit {
		return e.head, e.tail, e.ok // converge on the racing winner
	}
	if len(splitCache.m) >= maxCachedSplits {
		for k := range splitCache.m {
			delete(splitCache.m, k)
			break
		}
	}
	splitCache.m[q] = splitEntry{head, tail, ok}
	return head, tail, ok
}

// SplitQuery decomposes a partitionable query into a head query (all steps
// but the last, evaluated serially and set-at-a-time to produce the context
// set) and a tail query (the final step, evaluated per context node). ok is
// false when the query's shape requires shared context tables and must be
// evaluated serially.
func SplitQuery(q *syntax.Query) (head, tail *syntax.Query, ok bool) {
	p, isPath := q.Root.(*syntax.Path)
	if !isPath || p.Filter != nil || !p.Abs || len(p.Steps) < 2 {
		return nil, nil, false
	}
	last := p.Steps[len(p.Steps)-1]
	for _, pred := range last.Preds {
		if hasGlobalPath(pred) {
			return nil, nil, false
		}
	}
	head = syntax.Subquery(q.Source+" <head>", &syntax.Path{Abs: true, Steps: p.Steps[:len(p.Steps)-1]})
	tail = syntax.Subquery(q.Source+" <tail>", &syntax.Path{Steps: p.Steps[len(p.Steps)-1:]})
	return head, tail, true
}

// hasGlobalPath reports whether the expression contains an absolute or
// filter-headed location path — a subexpression whose evaluation builds a
// whole-document table that per-context-node fan-out would rebuild for
// every context.
func hasGlobalPath(e syntax.Expr) bool {
	if p, ok := e.(*syntax.Path); ok && (p.Abs || p.Filter != nil) {
		return true
	}
	for _, c := range syntax.Children(e) {
		if hasGlobalPath(c) {
			return true
		}
	}
	return false
}
