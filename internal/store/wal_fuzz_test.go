package store

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// FuzzWALReplay drives the WAL decoder with truncated and corrupted
// segment bytes. The contract under fuzz: replay either succeeds (possibly
// on a shorter durable prefix — goodOffset never exceeds the input) or
// returns an error; it never panics, never over-allocates from a hostile
// length claim, and never reports a prefix longer than the stream.
func FuzzWALReplay(f *testing.F) {
	var doc bytes.Buffer
	if err := xmltree.MustParseString(`<r a="1"><c>hi</c></r>`).WriteSnapshot(&doc); err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	encodeWALHeader(&seed, 3)
	encodeWALRecord(&seed, walRecord{op: walOpAdd, seq: 1, id: "a", doc: doc.Bytes()})
	encodeWALRecord(&seed, walRecord{op: walOpReplace, seq: 2, id: "a", doc: doc.Bytes()})
	encodeWALRecord(&seed, walRecord{op: walOpRemove, seq: 3, id: "a"})
	valid := seed.Bytes()
	f.Add(valid)
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	for cut := 1; cut < len(valid); cut += 2 {
		f.Add(valid[:cut])
	}
	for i := 0; i < len(valid); i++ {
		mut := bytes.Clone(valid)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		_, goodOffset, _, err := replayWAL(bytes.NewReader(data),
			func(rec walRecord) error { return applyWALRecord(s, rec) })
		if err != nil {
			return
		}
		if goodOffset < 0 || goodOffset > int64(len(data)) {
			t.Fatalf("goodOffset %d outside stream of %d bytes", goodOffset, len(data))
		}
	})
}
