package store

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// FuzzLoadSnapshot drives the corpus loader — current "XPC2" framing with
// section checksums, legacy "XPC1", and the inner per-document "XPT1"
// streams — with truncated and corrupted bytes: every outcome but
// (valid store | error) — a panic, a runaway allocation — is a bug. The
// per-document layer has its own fuzzer in internal/xmltree; this one
// exercises the framing, the CRCs, the ID strings and the length-bounded
// document regions.
func FuzzLoadSnapshot(f *testing.F) {
	s := New()
	for _, id := range []string{"a", "b"} {
		if err := s.Add(id, xmltree.MustParseString(`<r x="1"><c>hi</c></r>`)); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := writeSnapshotV1(&legacy, s.snapshot()); err != nil {
		f.Fatal(err)
	}
	for _, valid := range [][]byte{buf.Bytes(), legacy.Bytes()} {
		f.Add(valid)
		for cut := 1; cut < len(valid); cut += 3 {
			f.Add(valid[:cut])
		}
		for i := 0; i < len(valid); i += 2 {
			mut := bytes.Clone(valid)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add([]byte(corpusMagicV1))
	f.Add([]byte(corpusMagicV2))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := LoadSnapshot(bytes.NewReader(data))
		if err == nil && st == nil {
			t.Fatal("nil store without error")
		}
	})
}
