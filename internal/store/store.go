// Package store implements a sharded, concurrency-safe document store and
// the batch/parallel evaluation layer on top of it: one compiled query
// fanned out across a corpus of documents on a bounded worker pool
// (Store.Query), and a single large document data-partitioned across
// goroutines (EvaluateParallel). It is the multi-core serving substrate the
// ROADMAP's north star asks for; the data-partitioning strategy follows
// Sato et al., "Parallelization of XPath Queries using Modern XQuery
// Processors" (see PAPERS.md), transplanted onto the Gottlob/Koch/Pichler
// engines whose context-value tables partition naturally over disjoint
// context sets.
package store

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"

	"repro/internal/xmltree"
)

// numShards fixes the shard count. 16 keeps lock contention negligible for
// tens of writer goroutines while costing only 16 small maps per store.
const numShards = 16

type shard struct {
	mu   sync.RWMutex
	docs map[string]*xmltree.Document
}

// Store is a sharded map from document IDs to immutable documents. All
// methods are safe for concurrent use; reads take only a per-shard RLock.
// Labels of every added document are interned into one table shared across
// the corpus, so a thousand documents over one schema carry one copy of
// each tag name.
type Store struct {
	seed   maphash.Seed
	shards [numShards]shard
	intern *xmltree.Interner
}

// New returns an empty store.
func New() *Store {
	s := &Store{seed: maphash.MakeSeed(), intern: xmltree.NewInterner()}
	for i := range s.shards {
		s.shards[i].docs = make(map[string]*xmltree.Document)
	}
	return s
}

func (s *Store) shardFor(id string) *shard {
	return &s.shards[maphash.String(s.seed, id)%numShards]
}

// maxIDLen bounds document IDs so every corpus snapshot stays loadable:
// the snapshot reader rejects implausible string lengths, and an ID
// accepted here must never trip that guard on the way back in.
const maxIDLen = 4096

// validateDoc checks the (id, doc) pair every insertion path shares.
func validateDoc(id string, doc *xmltree.Document) error {
	if id == "" {
		return fmt.Errorf("store: empty document ID")
	}
	if len(id) > maxIDLen {
		return fmt.Errorf("store: document ID length %d exceeds %d", len(id), maxIDLen)
	}
	if doc == nil {
		return fmt.Errorf("store: nil document for ID %q", id)
	}
	return nil
}

// Add inserts (or replaces) the document under the given ID, interning its
// labels into the store's shared table. The store takes over the document's
// label storage: doc must not be evaluated concurrently with the Add call
// itself (afterwards it is immutable again and freely shareable).
func (s *Store) Add(id string, doc *xmltree.Document) error {
	_, err := s.Replace(id, doc)
	return err
}

// Replace atomically swaps the document under the ID (inserting if absent)
// and reports whether a previous document was displaced. Readers holding
// the old document keep a fully valid tree — displacement only drops the
// store's interner references for labels no live document uses; it never
// mutates the departing document.
func (s *Store) Replace(id string, doc *xmltree.Document) (bool, error) {
	if err := validateDoc(id, doc); err != nil {
		return false, err
	}
	doc.InternLabels(s.intern)
	sh := s.shardFor(id)
	sh.mu.Lock()
	old, replaced := sh.docs[id]
	sh.docs[id] = doc
	sh.mu.Unlock()
	if replaced {
		old.ReleaseLabels(s.intern)
	}
	return replaced, nil
}

// Get returns the document stored under the ID.
func (s *Store) Get(id string) (*xmltree.Document, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	doc, ok := sh.docs[id]
	sh.mu.RUnlock()
	return doc, ok
}

// Remove deletes the document stored under the ID, reporting whether it was
// present.
func (s *Store) Remove(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	old, ok := sh.docs[id]
	delete(sh.docs, id)
	sh.mu.Unlock()
	if ok {
		old.ReleaseLabels(s.intern)
	}
	return ok
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns the IDs of all stored documents, sorted.
//
//xpathlint:deterministic
func (s *Store) IDs() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.docs {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Interner exposes the shared label table (for tests and diagnostics).
func (s *Store) Interner() *xmltree.Interner { return s.intern }

// snapshot returns a point-in-time (id, doc) listing sorted by ID. Each
// shard is read under its RLock; the listing as a whole is not atomic
// across shards, which is fine for batch evaluation (a concurrent Add lands
// in either this batch or the next).
type entry struct {
	id  string
	doc *xmltree.Document
}

//xpathlint:deterministic
func (s *Store) snapshot() []entry {
	out := make([]entry, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, doc := range sh.docs {
			out = append(out, entry{id, doc})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
