package store

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The durability layer writes through this narrow filesystem seam so the
// flush → sync → rename discipline is unit-testable: the default
// implementation is the real os package, and tests substitute a recording
// filesystem that logs the exact operation order (see durable_test.go).
// Production code never sees anything but osFS.

// vfile is a writable file handle as durability needs it: append bytes,
// force them to stable storage, close.
type vfile interface {
	io.Writer
	Sync() error
	Close() error
}

// fsys is the slice of filesystem behavior the durable store uses.
type fsys interface {
	// Create truncates/creates the named file for writing.
	Create(name string) (vfile, error)
	// OpenAppend opens the named file for appending, creating it if absent.
	OpenAppend(name string) (vfile, error)
	// Open opens the named file for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically installs oldname at newname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// MkdirAll ensures the directory exists.
	MkdirAll(dir string) error
	// ReadDir lists the names (not paths) of the directory's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames and creates
	// within it durable.
	SyncDir(dir string) error
	// Size returns the named file's length in bytes.
	Size(name string) (int64, error)
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) Create(name string) (vfile, error) { return os.Create(name) }

func (osFS) OpenAppend(name string) (vfile, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) Size(name string) (int64, error) {
	info, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
