package store

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/topdown"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// parallelQueries mixes partitionable shapes (absolute multi-step paths,
// positional predicates on the final step) with shapes that must fall back
// (scalars, filter heads, unions, single steps, global subpaths in the
// final step's predicate).
var parallelQueries = []struct {
	src       string
	splitsOK  bool
	splitNote string
}{
	{`//c`, true, "two steps after normalization"},
	{`//b[c = 100]/child::d`, true, "predicate rides in the head"},
	{`/descendant::*/child::c[position() = last()]`, true, "positional predicate is per-context"},
	{`//b/descendant-or-self::*[. = 100]`, true, "value predicate on the final step"},
	{`//b/child::*[position() mod 2 = 1]`, true, "arithmetic position predicate"},
	{`/child::a/child::b/child::c`, true, "plain child chain"},
	{`count(//c)`, false, "scalar root"},
	{`(//c)[2]`, false, "filter head: positional over the whole set"},
	{`//c | //d`, false, "union root"},
	{`/child::a`, false, "single step"},
	{`//b/child::d[//c = 100]`, false, "global subpath in final-step predicate"},
	{`//b/child::d[count(id("10")/child::b) > 0]`, false, "filter-headed subpath in predicate"},
}

func TestSplitQuery(t *testing.T) {
	for _, tc := range parallelQueries {
		q := mustQuery(t, tc.src)
		head, tail, ok := SplitQuery(q)
		if ok != tc.splitsOK {
			t.Errorf("SplitQuery(%q) ok=%v, want %v (%s)", tc.src, ok, tc.splitsOK, tc.splitNote)
			continue
		}
		if ok && (head == nil || tail == nil) {
			t.Errorf("SplitQuery(%q): nil part", tc.src)
		}
		// Splitting must not disturb the original query's analyzed tree.
		if q.Root.ID() != 0 || q.Nodes[0] != q.Root {
			t.Errorf("SplitQuery(%q) mutated the original query", tc.src)
		}
	}
}

// TestEvaluateParallelMatchesSerial: for every query, engine and worker
// count, the parallel evaluator returns exactly the serial result.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	docs := []*xmltree.Document{
		workload.Figure2(),
		workload.Scaled(800),
		workload.Nested(400),
	}
	engines := []engine.Engine{core.NewOptMinContext(), topdown.New(), plan.New()}
	for _, doc := range docs {
		for _, eng := range engines {
			for _, tc := range parallelQueries {
				q := mustQuery(t, tc.src)
				want, _, err := eng.Evaluate(q, doc, engine.RootContext(doc))
				if err != nil {
					t.Fatalf("%s serial on %s: %v", eng.Name(), tc.src, err)
				}
				for _, workers := range []int{1, 2, 3, 8} {
					got, _, _, err := EvaluateParallel(eng, q, doc, engine.RootContext(doc), workers)
					if err != nil {
						t.Fatalf("%s parallel(%d) on %s: %v", eng.Name(), workers, tc.src, err)
					}
					if values.Render(got) != values.Render(want) {
						t.Errorf("%s workers=%d on %q: %s vs serial %s",
							eng.Name(), workers, tc.src, values.Render(got), values.Render(want))
					}
				}
			}
		}
	}
}

// TestEvaluateParallelTakesParallelPath: on a large document, a
// partitionable query actually fans out (guards against the gate silently
// sending everything down the serial path).
func TestEvaluateParallelTakesParallelPath(t *testing.T) {
	doc := workload.Scaled(2000)
	q := mustQuery(t, `//b[d = 100]/child::c`)
	eng := plan.New()
	_, _, parallel, err := EvaluateParallel(eng, q, doc, engine.RootContext(doc), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !parallel {
		t.Error("large document, partitionable query: want the parallel path")
	}
	// Tiny documents must take the serial gate.
	small := workload.Figure2()
	_, _, parallel, err = EvaluateParallel(eng, q, small, engine.RootContext(small), 4)
	if err != nil {
		t.Fatal(err)
	}
	if parallel {
		t.Error("tiny document: want the serial fallback")
	}
}

// TestSplitCachedStable: repeated parallel evaluations of one query must
// reuse the same head/tail query objects — the compiled engine's plan
// cache is pointer-keyed, so fresh clones per call would defeat it.
func TestSplitCachedStable(t *testing.T) {
	q := mustQuery(t, `//b[d = 100]/child::c`)
	h1, t1, ok1 := splitCached(q)
	h2, t2, ok2 := splitCached(q)
	if !ok1 || !ok2 {
		t.Fatal("split refused a partitionable query")
	}
	if h1 != h2 || t1 != t2 {
		t.Error("splitCached returned fresh query objects on a repeat call")
	}
}

// TestSerialFallbackPropagatesTracer pins the shared-tracer contract on the
// low-context serial fallback: when a partitionable query's context set is
// below the fan-out threshold, the tail steps are evaluated on the calling
// goroutine — and their spans must still reach ctx.Tracer, exactly as they
// would on the parallel path. (The first version of the fallback built the
// per-context engine.Context without the tracer, so per-step spans silently
// vanished precisely when the fallback triggered.)
func TestSerialFallbackPropagatesTracer(t *testing.T) {
	doc := workload.Figure2() // two <b> sections: far below minParallelContexts*workers
	q := mustQuery(t, `/child::a/child::b/child::c`)
	eng := corexpath.New()
	rec := trace.NewRecorder()
	ctx := engine.RootContext(doc)
	ctx.Tracer = rec
	_, _, parallel, err := EvaluateParallel(eng, q, doc, ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parallel {
		t.Fatal("tiny document: want the below-threshold serial fallback")
	}
	var tailSteps int64
	for _, row := range rec.Rows() {
		if row.Kind == trace.KindStep && row.Name == `child::c` {
			tailSteps += row.Calls
		}
	}
	// The head yields two <b> context nodes, so the tail step must have
	// been traced twice — once per context.
	if tailSteps != 2 {
		t.Errorf("recorder saw %d tail-step spans, want 2 (tracer lost on the serial fallback)", tailSteps)
	}
}

// TestEvaluateParallelRelativeContext: partitioning respects a non-root
// context node... by falling back (relative paths are not absolute) while
// still returning the correct result.
func TestEvaluateParallelRelativeContext(t *testing.T) {
	doc := workload.Figure2()
	q := mustQuery(t, `child::c`)
	eng := core.NewOptMinContext()
	cn := doc.ByID("11")
	if cn == nil {
		t.Fatal("no node 11")
	}
	ctx := engine.Context{Node: cn, Pos: 1, Size: 1}
	want, _, err := eng.Evaluate(q, doc, ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, _, parallel, err := EvaluateParallel(eng, q, doc, ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parallel {
		t.Error("relative single-step path: want serial fallback")
	}
	if values.Render(got) != values.Render(want) {
		t.Errorf("%s vs %s", values.Render(got), values.Render(want))
	}
}
