package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/xmltree"
)

// Corpus snapshots persist a whole store: the per-document binary snapshot
// format of internal/xmltree, framed with document IDs. Loading a corpus
// rebuilds every document with all evaluation indexes and re-interns labels
// into the store's shared table, so a snapshot round trip is the cheap
// preparation path for batch serving.
//
// Format (integers are unsigned varints, strings length-prefixed):
//
//	magic "XPC1"
//	docCount
//	per document: id, snapshotLen, snapshot bytes (xmltree "XPT1" format)
const corpusMagic = "XPC1"

// WriteSnapshot serializes the whole corpus in sorted-ID order.
//
//xpathlint:deterministic
func (s *Store) WriteSnapshot(w io.Writer) error {
	items := s.snapshot()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(corpusMagic); err != nil {
		return err
	}
	xmltree.WriteUvarint(bw, uint64(len(items)))
	var buf bytes.Buffer
	for _, it := range items {
		buf.Reset()
		if err := it.doc.WriteSnapshot(&buf); err != nil {
			return fmt.Errorf("store: snapshot %q: %w", it.id, err)
		}
		xmltree.WriteSnapString(bw, it.id)
		xmltree.WriteUvarint(bw, uint64(buf.Len()))
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot reads a corpus written by WriteSnapshot into a fresh store.
func LoadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(corpusMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	if string(magic) != corpusMagic {
		return nil, fmt.Errorf("store: snapshot: bad magic %q", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: document count: %w", err)
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("store: snapshot: implausible document count %d", count)
	}
	s := New()
	for i := uint64(0); i < count; i++ {
		id, err := xmltree.ReadSnapString(br)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: document %d ID: %w", i, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: %q: length: %w", id, err)
		}
		lr := io.LimitReader(br, int64(n))
		doc, err := xmltree.LoadSnapshot(lr)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: %q: %w", id, err)
		}
		// The document loader buffers internally and stops at its own EOF
		// marker; drain whatever of the framed region it left unread so the
		// outer stream stays aligned on the next document.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("store: snapshot: %q: %w", id, err)
		}
		if err := s.Add(id, doc); err != nil {
			return nil, err
		}
	}
	return s, nil
}
