package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/xmltree"
)

// Corpus snapshots persist a whole store: the per-document binary snapshot
// format of internal/xmltree, framed with document IDs. Loading a corpus
// rebuilds every document with all evaluation indexes and re-interns labels
// into the store's shared table, so a snapshot round trip is the cheap
// preparation path for batch serving.
//
// Two format versions exist. The current "XPC2" format is self-verifying:
// every section carries a CRC32-C, the header carries the corpus
// generation (the durability layer's compaction counter), and a
// self-describing footer closes the stream so truncation is always
// detected. The legacy "XPC1" format (no checksums, no footer) is still
// readable.
//
// XPC2 layout (integers are unsigned varints, strings length-prefixed,
// CRCs fixed 4-byte little-endian CRC32-C):
//
//	header    magic "XPC2", generation, docCount, crc(varints)
//	document  id, snapLen, snapshot bytes (xmltree "XPT1"), crc(frame)
//	footer    magic "XPE2", docCount, generation, crc(magic+varints)
//
// Each document CRC covers the whole frame — ID, length varint and
// snapshot bytes — so a flipped bit anywhere is caught before the decoded
// document can enter a store. XPC2 additionally rejects slack: snapLen
// must equal exactly what the document decoder consumed. XPC1 tolerated
// (and silently discarded) slack; the reader now counts it into the
// store.snapshot.slack_bytes metric in both versions and fails only XPC2.
//
// XPC1 layout (legacy): magic "XPC1", docCount, then per document
// id, snapshotLen, snapshot bytes.
const (
	corpusMagicV1     = "XPC1"
	corpusMagicV2     = "XPC2"
	corpusFooterMagic = "XPE2"
)

// maxCorpusDocs bounds the document count a snapshot may claim.
const maxCorpusDocs = 1 << 24

// maxDocSnapLen bounds one document's snapshot region. Like the string cap
// of xmltree.ReadSnapString it is a plausibility bound, not a quota: a
// hostile header claiming more fails immediately instead of driving a
// gigantic allocation or an unbounded stream scan.
const maxDocSnapLen = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Snapshot and WAL instruments (process-wide).
var (
	mSnapSaves      = metrics.Default().Counter("store.snapshot.saves")
	mSnapSaveNs     = metrics.Default().Histogram("store.snapshot.save_ns")
	mSnapLoads      = metrics.Default().Counter("store.snapshot.loads")
	mSnapLoadNs     = metrics.Default().Histogram("store.snapshot.load_ns")
	mSnapBytes      = metrics.Default().Gauge("store.snapshot.bytes")
	mSnapSlackBytes = metrics.Default().Counter("store.snapshot.slack_bytes")
)

// putUvarint appends an unsigned varint to the buffer.
func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// putString appends a length-prefixed string to the buffer.
func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

// writeCRC appends the section checksum that closes every XPC2 section.
func writeCRC(w *bufio.Writer, sum uint32) error {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], sum)
	_, err := w.Write(tmp[:])
	return err
}

// WriteSnapshot serializes the whole corpus in sorted-ID order, in the
// current XPC2 format with generation 0. The durability layer uses
// writeSnapshotEntries directly to stamp its compaction generation.
//
//xpathlint:deterministic
func (s *Store) WriteSnapshot(w io.Writer) error {
	return writeSnapshotEntries(w, 0, s.snapshot())
}

// writeSnapshotEntries emits the XPC2 stream for a point-in-time entry
// listing (already sorted by the caller).
func writeSnapshotEntries(w io.Writer, generation uint64, items []entry) error {
	t0 := trace.Now()
	bw := bufio.NewWriter(w)
	var section bytes.Buffer

	// Header.
	putUvarint(&section, generation)
	putUvarint(&section, uint64(len(items)))
	if _, err := bw.WriteString(corpusMagicV2); err != nil {
		return err
	}
	if _, err := bw.Write(section.Bytes()); err != nil {
		return err
	}
	if err := writeCRC(bw, crc32.Checksum(section.Bytes(), crcTable)); err != nil {
		return err
	}

	// Document frames.
	var docBuf bytes.Buffer
	total := int64(len(corpusMagicV2) + section.Len() + 4)
	for _, it := range items {
		docBuf.Reset()
		if err := it.doc.WriteSnapshot(&docBuf); err != nil {
			return fmt.Errorf("store: snapshot %q: %w", it.id, err)
		}
		if docBuf.Len() > maxDocSnapLen {
			return fmt.Errorf("store: snapshot %q: document snapshot is %d bytes, above the %d cap", it.id, docBuf.Len(), maxDocSnapLen)
		}
		section.Reset()
		putString(&section, it.id)
		putUvarint(&section, uint64(docBuf.Len()))
		section.Write(docBuf.Bytes())
		if _, err := bw.Write(section.Bytes()); err != nil {
			return err
		}
		if err := writeCRC(bw, crc32.Checksum(section.Bytes(), crcTable)); err != nil {
			return err
		}
		total += int64(section.Len() + 4)
	}

	// Footer: repeats the header facts so a truncated stream can never
	// pass for a complete one.
	section.Reset()
	section.WriteString(corpusFooterMagic)
	putUvarint(&section, uint64(len(items)))
	putUvarint(&section, generation)
	if _, err := bw.Write(section.Bytes()); err != nil {
		return err
	}
	if err := writeCRC(bw, crc32.Checksum(section.Bytes(), crcTable)); err != nil {
		return err
	}
	total += int64(section.Len() + 4)
	if err := bw.Flush(); err != nil {
		return err
	}
	mSnapSaves.Add(1)
	mSnapSaveNs.Observe(trace.Now() - t0)
	mSnapBytes.Set(total)
	return nil
}

// writeSnapshotV1 emits the legacy XPC1 stream. Kept (unexported) so the
// compatibility and fuzz suites can produce real legacy corpora; new
// snapshots are always XPC2.
func writeSnapshotV1(w io.Writer, items []entry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(corpusMagicV1); err != nil {
		return err
	}
	xmltree.WriteUvarint(bw, uint64(len(items)))
	var buf bytes.Buffer
	for _, it := range items {
		buf.Reset()
		if err := it.doc.WriteSnapshot(&buf); err != nil {
			return fmt.Errorf("store: snapshot %q: %w", it.id, err)
		}
		xmltree.WriteSnapString(bw, it.id)
		xmltree.WriteUvarint(bw, uint64(buf.Len()))
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot reads a corpus written by WriteSnapshot (either format
// version) into a fresh store.
func LoadSnapshot(r io.Reader) (*Store, error) {
	s, _, err := loadSnapshot(r)
	return s, err
}

// loadSnapshot reads either corpus format, returning the generation the
// snapshot carries (always 0 for XPC1).
func loadSnapshot(r io.Reader) (*Store, uint64, error) {
	t0 := trace.Now()
	br := bufio.NewReader(r)
	magic := make([]byte, len(corpusMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("store: snapshot: %w", err)
	}
	var (
		s   *Store
		gen uint64
		err error
	)
	switch string(magic) {
	case corpusMagicV1:
		s, err = loadSnapshotV1(br)
	case corpusMagicV2:
		s, gen, err = loadSnapshotV2(br)
	default:
		return nil, 0, fmt.Errorf("store: snapshot: bad magic %q", magic)
	}
	if err != nil {
		return nil, 0, err
	}
	mSnapLoads.Add(1)
	mSnapLoadNs.Observe(trace.Now() - t0)
	return s, gen, nil
}

// loadSnapshotV1 reads the legacy unchecksummed body after the magic.
// Frame slack — declared document bytes the decoder did not consume — is
// tolerated for compatibility but counted into store.snapshot.slack_bytes.
func loadSnapshotV1(br *bufio.Reader) (*Store, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: document count: %w", err)
	}
	if count > maxCorpusDocs {
		return nil, fmt.Errorf("store: snapshot: implausible document count %d", count)
	}
	s := New()
	for i := uint64(0); i < count; i++ {
		id, err := xmltree.ReadSnapString(br)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: document %d ID: %w", i, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: %q: length: %w", id, err)
		}
		// The length word is a claim, not a fact: bound it like the document
		// count above, so a hostile header cannot commit the reader to
		// scanning (or allocating toward) an absurd region.
		if n > maxDocSnapLen {
			return nil, fmt.Errorf("store: snapshot: %q: implausible document length %d", id, n)
		}
		lr := io.LimitReader(br, int64(n))
		doc, consumed, err := xmltree.LoadSnapshotCounted(lr, xmltree.DefaultLimits())
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: %q: %w", id, err)
		}
		// The document decoder stops at its own EOF marker; whatever of the
		// framed region it left unread is slack. Legacy streams may carry it
		// (and old writers never produced any), so tolerate — but count — it,
		// and drain to stay aligned on the next document.
		if slack := int64(n) - consumed; slack > 0 {
			mSnapSlackBytes.Add(slack)
			if _, err := io.Copy(io.Discard, lr); err != nil {
				return nil, fmt.Errorf("store: snapshot: %q: %w", id, err)
			}
		}
		if err := s.Add(id, doc); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// crcReader accumulates a CRC32-C over every byte read through it, so
// section checksums verify against exactly the bytes the decoder consumed.
type crcReader struct {
	br  *bufio.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.crc = crc32.Update(c.crc, crcTable, p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return 0, err
	}
	var one [1]byte
	one[0] = b
	c.crc = crc32.Update(c.crc, crcTable, one[:])
	return b, nil
}

func (c *crcReader) reset() { c.crc = 0 }

// expectCRC reads the stored section checksum (not CRC-accumulated) and
// compares it against what the reader computed.
func (c *crcReader) expectCRC(section string) error {
	var tmp [4]byte
	if _, err := io.ReadFull(c.br, tmp[:]); err != nil {
		return fmt.Errorf("store: %s checksum: %w", section, err)
	}
	if got, want := c.crc, binary.LittleEndian.Uint32(tmp[:]); got != want {
		return fmt.Errorf("store: %s checksum mismatch (computed %08x, stored %08x)", section, got, want)
	}
	return nil
}

// countingReader counts bytes read through it; with a bufio consumer on
// top, consumed = counted − buffered gives exact decode offsets.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readString reads a length-prefixed string through the CRC reader,
// bounded by maxLen.
func readString(c *crcReader, maxLen uint64, what string) (string, error) {
	n, err := binary.ReadUvarint(c)
	if err != nil {
		return "", fmt.Errorf("store: snapshot: %s length: %w", what, err)
	}
	if n > maxLen {
		return "", fmt.Errorf("store: snapshot: implausible %s length %d", what, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return "", fmt.Errorf("store: snapshot: %s: %w", what, err)
	}
	return string(buf), nil
}

// loadSnapshotV2 reads the checksummed XPC2 body after the magic.
func loadSnapshotV2(br *bufio.Reader) (*Store, uint64, error) {
	// Section checksums cover varints and payload bytes only — the magics
	// are consumed before version dispatch and checked literally.
	cr := &crcReader{br: br}
	generation, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, 0, fmt.Errorf("store: snapshot: generation: %w", err)
	}
	count, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, 0, fmt.Errorf("store: snapshot: document count: %w", err)
	}
	if count > maxCorpusDocs {
		return nil, 0, fmt.Errorf("store: snapshot: implausible document count %d", count)
	}
	if err := cr.expectCRC("snapshot header"); err != nil {
		return nil, 0, err
	}

	s := New()
	var docBuf bytes.Buffer
	for i := uint64(0); i < count; i++ {
		cr.reset()
		id, err := readString(cr, maxIDLen, "document ID")
		if err != nil {
			return nil, 0, fmt.Errorf("store: snapshot: document %d: %w", i, err)
		}
		n, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, 0, fmt.Errorf("store: snapshot: %q: length: %w", id, err)
		}
		if n > maxDocSnapLen {
			return nil, 0, fmt.Errorf("store: snapshot: %q: implausible document length %d", id, n)
		}
		// CopyN grows the buffer with the bytes actually present, so the
		// length claim alone cannot drive a huge allocation.
		docBuf.Reset()
		if _, err := io.CopyN(&docBuf, cr, int64(n)); err != nil {
			return nil, 0, fmt.Errorf("store: snapshot: %q: %w", id, err)
		}
		if err := cr.expectCRC(fmt.Sprintf("snapshot document %q", id)); err != nil {
			return nil, 0, err
		}
		doc, consumed, err := xmltree.LoadSnapshotCounted(bytes.NewReader(docBuf.Bytes()), xmltree.DefaultLimits())
		if err != nil {
			return nil, 0, fmt.Errorf("store: snapshot: %q: %w", id, err)
		}
		// XPC2 writers emit exact frames; slack means the frame was not
		// produced by WriteSnapshot, so reject instead of tolerating.
		if slack := int64(n) - consumed; slack != 0 {
			mSnapSlackBytes.Add(slack)
			return nil, 0, fmt.Errorf("store: snapshot: %q: %d slack bytes in document frame", id, slack)
		}
		if err := s.Add(id, doc); err != nil {
			return nil, 0, err
		}
	}

	// Footer: must match the header's facts exactly.
	cr.reset()
	ftMagic := make([]byte, len(corpusFooterMagic))
	if _, err := io.ReadFull(cr, ftMagic); err != nil {
		return nil, 0, fmt.Errorf("store: snapshot: footer: %w", err)
	}
	if string(ftMagic) != corpusFooterMagic {
		return nil, 0, fmt.Errorf("store: snapshot: bad footer magic %q", ftMagic)
	}
	ftCount, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, 0, fmt.Errorf("store: snapshot: footer count: %w", err)
	}
	ftGen, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, 0, fmt.Errorf("store: snapshot: footer generation: %w", err)
	}
	if err := cr.expectCRC("snapshot footer"); err != nil {
		return nil, 0, err
	}
	if ftCount != count || ftGen != generation {
		return nil, 0, fmt.Errorf("store: snapshot: footer disagrees with header (count %d vs %d, generation %d vs %d)",
			ftCount, count, ftGen, generation)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, 0, fmt.Errorf("store: snapshot: trailing data after footer")
	}
	return s, generation, nil
}

// SaveSnapshotFile writes the corpus snapshot crash-safely: into a
// temporary sibling first, flushed and fsynced, then atomically renamed
// over path, with the directory fsynced after the rename. A crash at any
// point leaves either the old file or the new one — never a torn mix.
func (s *Store) SaveSnapshotFile(path string) error {
	return saveSnapshotFile(osFS{}, path, func(w io.Writer) error { return s.WriteSnapshot(w) })
}

// saveSnapshotFile is the atomic-install write path shared by
// SaveSnapshotFile and the durability layer's Compact.
func saveSnapshotFile(fs fsys, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	faultinject.Hit("store.snapshot.rename")
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// LoadSnapshotFile reads a corpus snapshot file written by
// SaveSnapshotFile (or any WriteSnapshot output on disk).
func LoadSnapshotFile(path string) (*Store, error) {
	f, err := osFS{}.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f)
}
