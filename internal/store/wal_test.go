package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// docBytes renders one parsed document as XPT1 snapshot bytes.
func docBytes(t *testing.T, xml string) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := xmltree.MustParseString(xml).WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// sampleWAL builds a segment: header plus add/replace/remove traffic.
func sampleWAL(t *testing.T, generation uint64) []byte {
	t.Helper()
	var b bytes.Buffer
	encodeWALHeader(&b, generation)
	encodeWALRecord(&b, walRecord{op: walOpAdd, seq: 1, id: "a", doc: docBytes(t, `<r><c>1</c></r>`)})
	encodeWALRecord(&b, walRecord{op: walOpAdd, seq: 2, id: "b", doc: docBytes(t, `<r><c>2</c></r>`)})
	encodeWALRecord(&b, walRecord{op: walOpReplace, seq: 3, id: "a", doc: docBytes(t, `<r><c>3</c></r>`)})
	encodeWALRecord(&b, walRecord{op: walOpRemove, seq: 4, id: "b"})
	return b.Bytes()
}

func TestWALReplayAppliesMutations(t *testing.T) {
	s := New()
	gen, goodOffset, lastSeq, err := replayWAL(bytes.NewReader(sampleWAL(t, 9)),
		func(rec walRecord) error { return applyWALRecord(s, rec) })
	if err != nil {
		t.Fatal(err)
	}
	if gen != 9 || lastSeq != 4 {
		t.Fatalf("gen=%d lastSeq=%d", gen, lastSeq)
	}
	if goodOffset != int64(len(sampleWAL(t, 9))) {
		t.Fatalf("goodOffset %d want full stream %d", goodOffset, len(sampleWAL(t, 9)))
	}
	if s.Len() != 1 {
		t.Fatalf("Len %d want 1 (b removed)", s.Len())
	}
	d, ok := s.Get("a")
	if !ok || !strings.Contains(d.XMLString(), "3") {
		t.Fatalf("replace lost: %v %v", ok, d)
	}
}

// TestWALReplayTruncatesTornTail: cutting the stream anywhere after the
// header replays exactly the records whose frames are complete — the
// durable prefix — and reports the boundary offset, never an error. A torn
// tail is the signature of a crash mid-append, not corruption.
func TestWALReplayTruncatesTornTail(t *testing.T) {
	full := sampleWAL(t, 1)
	var hdr bytes.Buffer
	encodeWALHeader(&hdr, 1)
	headerLen := hdr.Len()

	// The clean record boundaries, for checking goodOffset lands on one.
	boundaries := map[int64]bool{int64(headerLen): true}
	var walk bytes.Buffer
	encodeWALHeader(&walk, 1)
	for _, rec := range []walRecord{
		{op: walOpAdd, seq: 1, id: "a", doc: docBytes(t, `<r><c>1</c></r>`)},
		{op: walOpAdd, seq: 2, id: "b", doc: docBytes(t, `<r><c>2</c></r>`)},
		{op: walOpReplace, seq: 3, id: "a", doc: docBytes(t, `<r><c>3</c></r>`)},
		{op: walOpRemove, seq: 4, id: "b"},
	} {
		encodeWALRecord(&walk, rec)
		boundaries[int64(walk.Len())] = true
	}

	for cut := headerLen; cut <= len(full); cut++ {
		s := New()
		applied := 0
		_, goodOffset, _, err := replayWAL(bytes.NewReader(full[:cut]), func(rec walRecord) error {
			applied++
			return applyWALRecord(s, rec)
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !boundaries[goodOffset] {
			t.Fatalf("cut %d: goodOffset %d is not a record boundary", cut, goodOffset)
		}
		if goodOffset > int64(cut) {
			t.Fatalf("cut %d: goodOffset %d beyond stream", cut, goodOffset)
		}
	}
}

// TestWALReplayCorruptPayloadIsError: a CRC-valid but undecodable payload
// cannot come from a torn write — it must surface as corruption, not be
// silently truncated away.
func TestWALReplayCorruptPayloadIsError(t *testing.T) {
	var b bytes.Buffer
	encodeWALHeader(&b, 1)
	encodeWALRecord(&b, walRecord{op: 99, seq: 1, id: "a"})
	_, _, _, err := replayWAL(bytes.NewReader(b.Bytes()), func(walRecord) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("want unknown-op error, got %v", err)
	}
}

// TestWALReplayFlippedBitEndsPrefix: a bit flip inside a record's payload
// breaks its CRC, which ends the durable prefix at the previous record.
func TestWALReplayFlippedBitEndsPrefix(t *testing.T) {
	var b bytes.Buffer
	encodeWALHeader(&b, 1)
	encodeWALRecord(&b, walRecord{op: walOpAdd, seq: 1, id: "a", doc: docBytes(t, `<r/>`)})
	afterFirst := int64(b.Len())
	encodeWALRecord(&b, walRecord{op: walOpAdd, seq: 2, id: "b", doc: docBytes(t, `<r/>`)})
	mut := b.Bytes()
	mut[afterFirst+10] ^= 0xff // inside the second record's payload
	s := New()
	_, goodOffset, lastSeq, err := replayWAL(bytes.NewReader(mut),
		func(rec walRecord) error { return applyWALRecord(s, rec) })
	if err != nil {
		t.Fatal(err)
	}
	if goodOffset != afterFirst || lastSeq != 1 || s.Len() != 1 {
		t.Fatalf("goodOffset=%d (want %d) lastSeq=%d Len=%d", goodOffset, afterFirst, lastSeq, s.Len())
	}
}

func TestWALRejectsBadHeader(t *testing.T) {
	if _, _, _, err := replayWAL(bytes.NewReader([]byte("nope")), nil); err == nil {
		t.Fatal("bad magic must fail")
	}
	var b bytes.Buffer
	encodeWALHeader(&b, 5)
	hdr := b.Bytes()
	hdr[len(hdr)-1] ^= 0xff // header CRC
	if _, _, _, err := replayWAL(bytes.NewReader(hdr), nil); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want header checksum error, got %v", err)
	}
}
