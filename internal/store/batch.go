package store

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Batch instruments (process-wide).
var (
	mBatches     = metrics.Default().Counter("store.batch.batches")
	mBatchDocs   = metrics.Default().Counter("store.batch.docs")
	mBatchErrors = metrics.Default().Counter("store.batch.errors")
	mQueueWaitNs = metrics.Default().Histogram("store.batch.queue_wait_ns")
	mDocEvalNs   = metrics.Default().Histogram("store.batch.eval_ns")
	mBatchNs     = metrics.Default().Histogram("store.batch.batch_ns")
)

// QueryOptions configures one batch evaluation.
type QueryOptions struct {
	// Engine evaluates the query on each document. It must be safe for
	// concurrent use (every engine in this repository is: evaluation state
	// lives in per-call evaluators, documents are immutable).
	Engine engine.Engine
	// Workers bounds the worker pool (≤ 0 means GOMAXPROCS). One worker
	// degenerates to serial evaluation in ID order.
	Workers int
	// IDs restricts the batch to the given documents, evaluated in the
	// given order; an unknown ID yields a DocResult with Err set. Nil means
	// every stored document, in sorted ID order.
	IDs []string
	// Tracer, when non-nil, is handed to every per-document evaluation
	// context and additionally receives one KindBatchDoc span per document.
	// Unlike an axes.Scratch, one tracer serves all workers at once, so it
	// must be safe for concurrent use (trace.Recorder is).
	Tracer trace.Tracer
	// Budget, when non-nil, is shared by every worker: each claimed document
	// first polls it (a tripped budget marks the remaining documents with
	// the budget error without evaluating them), each evaluation checks it
	// cooperatively, and a budget-classed per-document failure cancels it so
	// sibling workers stop. Generic per-document failures (unknown IDs,
	// engine limits) stay isolated to their document, as before.
	Budget *budget.Budget
}

// isBudgetErr classifies the errors that should propagate across a fan-out:
// the shared budget tripping, in any of its three flavors.
func isBudgetErr(err error) bool {
	return errors.Is(err, budget.ErrCanceled) ||
		errors.Is(err, budget.ErrDeadlineExceeded) ||
		errors.Is(err, budget.ErrBudgetExceeded)
}

// DocResult is the outcome of the query on one document of the batch.
type DocResult struct {
	ID    string
	Value values.Value
	Stats engine.Stats
	Err   error
}

// Query fans the compiled query out across the selected documents on a
// bounded worker pool and returns one DocResult per document plus the
// summed instrumentation counters. The result order is deterministic
// (sorted IDs, or the order of opts.IDs) regardless of scheduling: workers
// claim documents from an atomic cursor and write results by index.
//
// Evaluation scratch memory is reused per worker, not per document: the
// engines pool their per-evaluation state (the compiled engine its VM
// machines — register file, set arena, axis-kernel scratch — and the
// interpreters their axes.Scratch arenas), and with k workers exactly k
// pool entries circulate, so a batch's steady state allocates no
// per-evaluation scratch at all.
func (s *Store) Query(q *syntax.Query, opts QueryOptions) ([]DocResult, engine.Stats) {
	items := s.batchItems(opts.IDs)
	results := make([]DocResult, len(items))

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	t0 := trace.Now()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				if it.doc == nil {
					// Unknown ID: no evaluation happens, so the item must
					// not feed the queue-wait histogram — and a shared
					// tracer still gets its KindBatchDoc span (zero-cost,
					// unknown cardinality), so a traced batch accounts for
					// exactly len(Docs) documents, errors included.
					results[i] = DocResult{ID: it.id,
						Err: fmt.Errorf("store: no document with ID %q", it.id)}
					mBatchErrors.Add(1)
					if opts.Tracer != nil {
						opts.Tracer.Emit(trace.Event{
							Kind: trace.KindBatchDoc, Name: it.id,
							In: trace.CardUnknown, Out: trace.CardUnknown, Ns: 0,
						})
					}
					continue
				}
				if b := opts.Budget; b != nil {
					if err := b.Err(); err != nil {
						// Tripped budget: mark the rest of the batch without
						// evaluating (each worker drains its claims quickly).
						results[i] = DocResult{ID: it.id, Err: err}
						mBatchErrors.Add(1)
						continue
					}
				}
				// Queue wait: how long the item sat behind earlier claims
				// before a worker reached it.
				tClaim := trace.Now()
				mQueueWaitNs.Observe(tClaim - t0)
				ctx := engine.RootContext(it.doc)
				ctx.Tracer = opts.Tracer
				ctx.Budget = opts.Budget
				v, st, err := evalBatchDoc(opts.Engine, q, it.doc, ctx)
				evalNs := trace.Now() - tClaim
				mDocEvalNs.Observe(evalNs)
				if err != nil {
					mBatchErrors.Add(1)
					// A budget-classed failure is batch-wide by definition:
					// trip the shared budget so sibling workers stop instead
					// of finishing their own documents at full cost.
					if opts.Budget != nil && isBudgetErr(err) {
						opts.Budget.Cancel()
					}
				}
				if opts.Tracer != nil {
					out := trace.CardUnknown
					if v.T == values.KindNodeSet && v.Set != nil {
						out = v.Set.Len()
					}
					opts.Tracer.Emit(trace.Event{
						Kind: trace.KindBatchDoc, Name: it.id,
						In: trace.CardUnknown, Out: out, Ns: evalNs,
					})
				}
				results[i] = DocResult{ID: it.id, Value: v, Stats: st, Err: err}
			}
		}()
	}
	wg.Wait()
	mBatches.Add(1)
	mBatchDocs.Add(int64(len(items)))
	mBatchNs.Observe(trace.Now() - t0)

	var agg engine.Stats
	for i := range results {
		agg.Add(results[i].Stats)
	}
	return results, agg
}

// evalBatchDoc runs one document's evaluation behind the batch's panic
// guard: a panicking engine poisons one DocResult, not the whole process.
func evalBatchDoc(eng engine.Engine, q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (v values.Value, st engine.Stats, err error) {
	defer engine.RecoverPanic(&err)
	faultinject.Hit("store.batch.worker")
	return eng.Evaluate(q, doc, ctx)
}

// batchItems resolves the document selection of a batch. Unknown IDs are
// kept as nil-document entries so the caller gets a per-document error in
// the right slot instead of a silently shorter batch.
func (s *Store) batchItems(ids []string) []entry {
	if ids == nil {
		return s.snapshot()
	}
	items := make([]entry, len(ids))
	for i, id := range ids {
		doc, _ := s.Get(id)
		items[i] = entry{id: id, doc: doc}
	}
	return items
}
