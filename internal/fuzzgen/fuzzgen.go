// Package fuzzgen is a seeded random generator of XPath 1.0 queries and XML
// documents for the cross-engine differential fuzz suite. Everything is
// deterministic given the seed, so a failing (query, document) pair is
// reproducible from its seed alone.
//
// The query generator covers the surface the seven engines disagree on
// when one of them has a semantic bug: all eleven axes, the three node-test
// kinds, nested predicates mixing path existence with comparisons,
// position()/last() arithmetic, count/sum aggregation, string functions,
// boolean connectives, unions, filter-expression heads and id()
// dereferencing. The document generator produces trees over the same small
// label vocabulary with numeric-ish text content (sprinkling the value 100
// so the workload predicates select nonempty sets) and unique id
// attributes.
package fuzzgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/xmltree"
)

// Labels is the tag vocabulary shared by generated queries and documents;
// "e" appears in queries but rarely in documents, so empty-set paths are
// exercised too.
var Labels = []string{"a", "b", "c", "d", "e"}

var axes = []string{
	"self", "child", "parent", "descendant", "ancestor",
	"descendant-or-self", "ancestor-or-self", "following", "preceding",
	"following-sibling", "preceding-sibling",
}

var nodeTests = []string{"a", "b", "c", "d", "e", "*", "node()"}

// Config bounds the shape of generated queries.
type Config struct {
	// MaxSteps bounds the location steps per path (≥ 1).
	MaxSteps int
	// MaxDepth bounds predicate/subpath nesting.
	MaxDepth int
}

// Defaults fills in unset fields: up to 4 steps, predicates nested 2 deep.
func (c Config) Defaults() Config {
	if c.MaxSteps <= 0 {
		c.MaxSteps = 4
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 2
	}
	return c
}

// Query generates one random XPath 1.0 expression. The result always
// compiles (the generator emits only grammar the parser accepts); the
// differential suite treats a compile failure as a test failure.
func Query(rng *rand.Rand, cfg Config) string {
	cfg = cfg.Defaults()
	// Mostly node-set-valued paths (they exercise the table machinery);
	// sometimes a scalar expression at the top.
	switch rng.Intn(8) {
	case 0:
		return genScalar(rng, cfg.MaxDepth, cfg)
	case 1:
		return genPath(rng, cfg.MaxDepth, cfg, true) + " | " + genPath(rng, cfg.MaxDepth-1, cfg, true)
	default:
		return genPath(rng, cfg.MaxDepth, cfg, true)
	}
}

// AxisChainQuery generates a long location path that deliberately chains
// many distinct axes with name and node-test combinations — the shape that
// drives the engines' set-at-a-time axis kernels (and the fused axis+test
// path) hardest. All twelve axes appear across the distribution: the eleven
// structural axes as steps, and the id-axis through id() filter heads and
// id() predicates. Predicates are kept in the Core XPath shape (pure
// relative paths) so the satisfaction-set and backward-propagation kernels
// are exercised too, and every generated query stays cheap enough for the
// exponential naive comparator on the small differential documents.
func AxisChainQuery(rng *rand.Rand) string {
	var b strings.Builder
	// Head: absolute, descendant-or-self expanded, or the id-axis. A
	// node-set argument to id() is what normalization rewrites into an
	// ID-axis location step (§4), so both forms appear.
	switch rng.Intn(6) {
	case 0:
		fmt.Fprintf(&b, "id(\"%d %d %d\")", rng.Intn(30), rng.Intn(30), rng.Intn(30))
	case 1:
		fmt.Fprintf(&b, "id(/descendant::%s)", Labels[rng.Intn(len(Labels))])
	case 2:
		b.WriteString("/descendant-or-self::node()")
	default:
		b.WriteString("/descendant::" + nodeTests[rng.Intn(len(nodeTests))])
	}
	// A shuffled pass over all eleven structural axes guarantees every axis
	// kernel runs; a random suffix then mixes repeats in random order.
	order := rng.Perm(len(axes))
	steps := len(axes) - rng.Intn(6) // 6..11 distinct-axis steps
	for i := 0; i < steps; i++ {
		b.WriteString("/")
		b.WriteString(axes[order[i]])
		b.WriteString("::")
		// Bias toward name tests: they are what the fused axis+test kernel
		// intersects as a per-label bitset.
		if rng.Intn(10) < 7 {
			b.WriteString(Labels[rng.Intn(len(Labels))])
		} else {
			b.WriteString(nodeTests[rng.Intn(len(nodeTests))])
		}
		switch rng.Intn(6) {
		case 0: // existence predicate: one more axis+test pair per step
			fmt.Fprintf(&b, "[%s::%s]", axes[rng.Intn(len(axes))], nodeTests[rng.Intn(len(nodeTests))])
		case 1: // id(path) predicate: the twelfth axis inside the chain
			fmt.Fprintf(&b, "[id(%s::%s)]", axes[rng.Intn(len(axes))], Labels[rng.Intn(len(Labels))])
		}
	}
	return b.String()
}

// genPath emits a location path; absolute paths may carry filter heads.
func genPath(rng *rand.Rand, depth int, cfg Config, absolute bool) string {
	var b strings.Builder
	switch {
	case absolute && depth > 0 && rng.Intn(6) == 0:
		// Filter-expression head: id(...) or a parenthesized path with a
		// positional predicate (the shapes EvaluateParallel must refuse).
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "id(\"%d %d\")/", rng.Intn(30), rng.Intn(30))
		} else {
			fmt.Fprintf(&b, "(%s)[%d]/", genPath(rng, depth-1, cfg, true), 1+rng.Intn(3))
		}
	case absolute:
		b.WriteString("/")
		if rng.Intn(2) == 0 {
			b.WriteString("descendant-or-self::node()/")
		}
	}
	steps := 1 + rng.Intn(cfg.MaxSteps)
	for i := 0; i < steps; i++ {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(axes[rng.Intn(len(axes))])
		b.WriteString("::")
		b.WriteString(nodeTests[rng.Intn(len(nodeTests))])
		for depth > 0 && rng.Intn(3) == 0 {
			b.WriteString("[")
			b.WriteString(genPredicate(rng, depth-1, cfg))
			b.WriteString("]")
			if rng.Intn(4) != 0 {
				break // usually at most one predicate per step
			}
		}
	}
	return b.String()
}

// genPredicate emits one predicate expression.
func genPredicate(rng *rand.Rand, depth int, cfg Config) string {
	switch rng.Intn(12) {
	case 0: // path existence
		return genPath(rng, depth, cfg, false)
	case 1: // positional arithmetic
		return fmt.Sprintf("position() %s %s", relOp(rng), genArith(rng, depth, cfg))
	case 2:
		return fmt.Sprintf("position() %s last() %s %d", relOp(rng), []string{"-", "+"}[rng.Intn(2)], rng.Intn(3))
	case 3: // value comparison against a path
		return fmt.Sprintf("%s %s %s", genPath(rng, depth, cfg, false), relOp(rng), genArith(rng, depth, cfg))
	case 4: // aggregation
		fn := []string{"count", "sum"}[rng.Intn(2)]
		return fmt.Sprintf("%s(%s) %s %d", fn, genPath(rng, depth, cfg, false), relOp(rng), rng.Intn(4))
	case 5: // boolean connectives
		if depth > 0 {
			op := []string{"and", "or"}[rng.Intn(2)]
			return fmt.Sprintf("(%s) %s (%s)", genPredicate(rng, depth-1, cfg), op, genPredicate(rng, depth-1, cfg))
		}
		return genPath(rng, depth, cfg, false)
	case 6:
		if depth > 0 {
			return fmt.Sprintf("not(%s)", genPredicate(rng, depth-1, cfg))
		}
		return "true()"
	case 7: // lexical disambiguation after a wildcard ('* and', '* = …')
		if depth > 0 {
			return fmt.Sprintf("self::* and %s", genPredicate(rng, depth-1, cfg))
		}
		return "self::* or false()"
	case 8: // string functions on the context node
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("contains(string(), %q)", fmt.Sprint(rng.Intn(10)))
		case 1:
			return fmt.Sprintf("starts-with(string(), %q)", fmt.Sprint(rng.Intn(10)))
		case 2:
			return fmt.Sprintf("string-length(normalize-space(string())) %s %d", relOp(rng), rng.Intn(8))
		default:
			return fmt.Sprintf("substring(string(), %d, %d) = %q", 1+rng.Intn(3), 1+rng.Intn(3), fmt.Sprint(rng.Intn(10)))
		}
	case 9: // union inside boolean()
		return fmt.Sprintf("boolean(%s | %s)", genPath(rng, depth, cfg, false), genPath(rng, depth, cfg, false))
	case 10: // id() round trip through a string value
		return fmt.Sprintf("id(string(%s)) %s %d", genPath(rng, depth, cfg, false), relOp(rng), rng.Intn(40))
	default: // node-set vs node-set comparison (existential semantics)
		return fmt.Sprintf("%s %s %s", genPath(rng, depth, cfg, false), relOp(rng), genPath(rng, depth, cfg, false))
	}
}

// genArith emits a numeric expression mixing literals, position()/last(),
// count() and the five arithmetic operators.
func genArith(rng *rand.Rand, depth int, cfg Config) string {
	atom := func() string {
		switch rng.Intn(5) {
		case 0:
			return "position()"
		case 1:
			return "last()"
		case 2:
			return fmt.Sprintf("count(%s)", genPath(rng, 0, cfg, false))
		case 3:
			return fmt.Sprintf("%d.%d", rng.Intn(120), rng.Intn(10))
		default:
			return fmt.Sprint(rng.Intn(120))
		}
	}
	if depth <= 0 || rng.Intn(2) == 0 {
		return atom()
	}
	op := []string{"+", "-", "*", "div", "mod"}[rng.Intn(5)]
	return fmt.Sprintf("(%s %s %s)", atom(), op, atom())
}

// genScalar emits a scalar-valued top-level expression.
func genScalar(rng *rand.Rand, depth int, cfg Config) string {
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf("count(%s)", genPath(rng, depth, cfg, true))
	case 1:
		return fmt.Sprintf("sum(%s)", genPath(rng, depth, cfg, true))
	case 2:
		return fmt.Sprintf("string(%s)", genPath(rng, depth, cfg, true))
	case 3:
		return fmt.Sprintf("boolean(%s)", genPath(rng, depth, cfg, true))
	case 4:
		return fmt.Sprintf("%s %s %s", genPath(rng, depth, cfg, true), relOp(rng), genArith(rng, depth, cfg))
	default:
		return fmt.Sprintf("floor(sum(%s) div (count(%s) + 1))",
			genPath(rng, depth, cfg, true), genPath(rng, depth, cfg, true))
	}
}

func relOp(rng *rand.Rand) string {
	return []string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)]
}

// Document generates a random tree of approximately n element nodes:
// random labels over the vocabulary, depth-biased shape, numeric-ish text
// (with 100 sprinkled in), and unique id attributes on every third node.
func Document(rng *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Start("a", xmltree.Attr{Name: "id", Value: "0"})
	id := 1
	depth := 1
	for b.Count() < n {
		switch {
		case depth > 1 && rng.Intn(4) == 0:
			// Close one level.
			if err := b.End(); err != nil {
				panic(err)
			}
			depth--
		case depth < 6 && rng.Intn(3) == 0:
			// Open a nested element.
			b.Start(Labels[rng.Intn(len(Labels)-1)], idAttr(rng, &id)...)
			depth++
			if rng.Intn(2) == 0 {
				b.Text(genText(rng))
			}
		default:
			// Leaf element.
			b.Elem(Labels[rng.Intn(len(Labels))], genText(rng), idAttr(rng, &id)...)
		}
	}
	for depth > 0 {
		if err := b.End(); err != nil {
			panic(err)
		}
		depth--
	}
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

func idAttr(rng *rand.Rand, id *int) []xmltree.Attr {
	if rng.Intn(3) != 0 {
		return nil
	}
	a := []xmltree.Attr{{Name: "id", Value: fmt.Sprint(*id)}}
	*id++
	return a
}

func genText(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return "100"
	case 1:
		return fmt.Sprintf("%d %d", rng.Intn(40), rng.Intn(40))
	case 2:
		return fmt.Sprint(rng.Intn(120))
	default:
		return ""
	}
}

// Pair derives a (query, document) pair from one seed — the reproduction
// handle printed by the differential suite on failure.
func Pair(seed int64, cfg Config, docSize int) (string, *xmltree.Document) {
	rng := rand.New(rand.NewSource(seed))
	q := Query(rng, cfg)
	return q, Document(rng, docSize)
}

// VersionedDocument derives version v of a mutating document from one
// seed: the same (seed, n, v) always yields an identical tree, and every
// call returns a fresh instance. The interleaved mutate/query fuzz mode
// needs both properties — a store takes over a document's label storage on
// insert, so the mutator must feed it fresh instances, while the checker
// must be able to regenerate each version privately to precompute the
// admissible results.
func VersionedDocument(seed int64, n, v int) *xmltree.Document {
	const mix = int64(-0x61c8864680b583eb) // golden-ratio odd constant, splitmix-style
	return Document(rand.New(rand.NewSource(seed^(int64(v+1)*mix))), n)
}
