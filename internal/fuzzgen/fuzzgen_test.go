package fuzzgen

import (
	"math/rand"
	"testing"

	axespkg "repro/internal/axes"
	"repro/internal/syntax"
)

// TestQueriesAlwaysCompile: the generator must emit only grammar the parser
// accepts — a compile failure in the differential suite would otherwise be
// ambiguous between generator and parser bugs.
func TestQueriesAlwaysCompile(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 300
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		src := Query(rng, Config{})
		if _, err := syntax.Compile(src); err != nil {
			t.Fatalf("generated query %d does not compile: %q: %v", i, src, err)
		}
	}
}

// TestDeterministic: the same seed yields the same query and document.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		q1, d1 := Pair(seed, Config{}, 60)
		q2, d2 := Pair(seed, Config{}, 60)
		if q1 != q2 {
			t.Fatalf("seed %d: queries differ:\n%s\n%s", seed, q1, q2)
		}
		if d1.XMLString() != d2.XMLString() {
			t.Fatalf("seed %d: documents differ", seed)
		}
	}
}

// TestDocumentShape: generated documents hit the requested size and carry
// resolvable ids.
func TestDocumentShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{10, 60, 300} {
		doc := Document(rng, n)
		if doc.Size() < n-1 || doc.Size() > n+8 {
			t.Errorf("size %d: got %d", n, doc.Size())
		}
		if doc.ByID("0") == nil {
			t.Errorf("size %d: root id missing", n)
		}
	}
}

// TestQueryVariety: over many seeds the generator exercises scalars,
// unions, filter heads and predicates — guard against a silent collapse of
// a generation branch.
func TestQueryVariety(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var scalars, unions, preds, heads int
	for i := 0; i < 500; i++ {
		src := Query(rng, Config{})
		q, err := syntax.Compile(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		switch q.Root.(type) {
		case *syntax.Path:
			if q.Root.(*syntax.Path).Filter != nil {
				heads++
			}
		case *syntax.Union:
			unions++
		default:
			scalars++
		}
		for _, e := range q.Nodes {
			if s, ok := e.(*syntax.Step); ok && len(s.Preds) > 0 {
				preds++
				break
			}
		}
	}
	if scalars == 0 || unions == 0 || preds == 0 || heads == 0 {
		t.Errorf("variety collapsed: scalars=%d unions=%d preds=%d filter-heads=%d",
			scalars, unions, preds, heads)
	}
}

// TestAxisChainQueriesCompileAndCoverAxes: every generated axis chain must
// compile, and across a modest sample all twelve axes (the eleven
// structural ones as steps, the id-axis via the syntax tree's id()
// rewriting) must appear — the coverage guarantee the fused-kernel
// differential suite relies on.
func TestAxisChainQueriesCompileAndCoverAxes(t *testing.T) {
	n := 600
	if testing.Short() {
		n = 200
	}
	rng := rand.New(rand.NewSource(9))
	seen := make(map[axespkg.Axis]int)
	for i := 0; i < n; i++ {
		src := AxisChainQuery(rng)
		q, err := syntax.Compile(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for _, e := range q.Nodes {
			if s, ok := e.(*syntax.Step); ok {
				seen[s.Axis]++
			}
		}
	}
	for _, a := range axespkg.All() {
		if seen[a] == 0 {
			t.Errorf("axis %v never generated across %d chains", a, n)
		}
	}
}
