// Package values implements the XPath 1.0 value system used by all engines:
// the four expression types of Section 2.2 (number, string, boolean, node
// set), the conversion functions to_string / to_number / boolean of the REC,
// and the effective semantics function F of Figure 1 together with the
// string and number core-library operations the figure omits for lack of
// space.
//
// Two deliberate deviations from the letter of Figure 1 (both following the
// XPath 1.0 REC, which the paper defers to via [18]) are documented at
// Compare: the ordering operators <, <=, >, >= convert operands to numbers,
// and equality between two non-node-set operands prefers boolean, then
// number, then string comparison.
package values

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Value is one XPath 1.0 value. Exactly the field selected by T is
// meaningful; Set is non-nil iff T == syntax.TypeNodeSet.
type Value struct {
	T    Kind
	Num  float64
	Str  string
	Bool bool
	Set  *xmltree.Set
}

// Kind mirrors syntax.Type for the four value kinds; values keeps its own
// copy to stay independent of the syntax package.
type Kind int

// Value kinds.
const (
	KindNodeSet Kind = iota
	KindNumber
	KindString
	KindBoolean
)

// String names the kind the way the paper abbreviates it.
func (k Kind) String() string {
	switch k {
	case KindNodeSet:
		return "nset"
	case KindNumber:
		return "num"
	case KindString:
		return "str"
	default:
		return "bool"
	}
}

// Number builds a number value.
func Number(v float64) Value { return Value{T: KindNumber, Num: v} }

// String builds a string value.
func String(s string) Value { return Value{T: KindString, Str: s} }

// Boolean builds a boolean value.
func Boolean(b bool) Value { return Value{T: KindBoolean, Bool: b} }

// NodeSet builds a node-set value.
func NodeSet(s *xmltree.Set) Value { return Value{T: KindNodeSet, Set: s} }

// ToNumber implements F[[number]] for every operand type (Figure 1):
// strings via to_number, booleans as 1/0, node sets via their string value.
func ToNumber(v Value) float64 {
	switch v.T {
	case KindNumber:
		return v.Num
	case KindString:
		return StringToNumber(v.Str)
	case KindBoolean:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return StringToNumber(ToString(v))
	}
}

// ToString implements F[[string]] for every operand type (Figure 1): the
// empty set yields "", otherwise the string value of the first node in
// document order.
func ToString(v Value) string {
	switch v.T {
	case KindString:
		return v.Str
	case KindNumber:
		return NumberToString(v.Num)
	case KindBoolean:
		if v.Bool {
			return "true"
		}
		return "false"
	default:
		if first := v.Set.First(); first != nil {
			return first.StringValue()
		}
		return ""
	}
}

// ToBool implements F[[boolean]] for every operand type (Figure 1).
func ToBool(v Value) bool {
	switch v.T {
	case KindBoolean:
		return v.Bool
	case KindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case KindString:
		return v.Str != ""
	default:
		return !v.Set.IsEmpty()
	}
}

// NumberToString implements to_string : num → str per the REC: NaN,
// Infinity, integers without a decimal point, other values in plain decimal
// notation (never exponent form). Negative zero renders as "0".
func NumberToString(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == 0:
		return "0"
	}
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// StringToNumber implements to_number : str → num per the REC grammar
// (optional minus, Digits ('.' Digits?)? | '.' Digits, surrounded by
// whitespace); anything else is NaN. Note that '+', exponents, "Infinity"
// and "NaN" spellings are all invalid and yield NaN.
func StringToNumber(s string) float64 {
	s = strings.Trim(s, " \t\r\n")
	if s == "" {
		return math.NaN()
	}
	body := s
	if body[0] == '-' {
		body = body[1:]
	}
	digits, dot := 0, false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '.' && !dot:
			dot = true
		default:
			return math.NaN()
		}
	}
	if digits == 0 {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// Equal reports deep equality of two values; node sets compare by
// membership. It is used by tests and by the differential harness.
func Equal(a, b Value) bool {
	if a.T != b.T {
		return false
	}
	switch a.T {
	case KindNumber:
		return a.Num == b.Num || (math.IsNaN(a.Num) && math.IsNaN(b.Num))
	case KindString:
		return a.Str == b.Str
	case KindBoolean:
		return a.Bool == b.Bool
	default:
		return a.Set.Equal(b.Set)
	}
}

// Render formats the value for CLI and example output: node sets via
// xmltree.Set.String, scalars via their XPath string conversion.
func Render(v Value) string {
	if v.T == KindNodeSet {
		return v.Set.String()
	}
	return ToString(v)
}
