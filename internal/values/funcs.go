package values

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/syntax"
	"repro/internal/xmltree"
)

// CallEnv is the context information a core-library call may consult: the
// document (for id()) and the context node (for the zero-argument forms of
// string(), number(), name(), … and for lang()). position() and last() are
// not library calls in this implementation — they are context accessors
// handled directly by the engines, as in Definition 2.
type CallEnv struct {
	Doc  *xmltree.Document
	Node *xmltree.Node
}

// Call implements the effective semantics function F of Figure 1 for the
// core-library functions, including the string/number operations Figure 1
// omits "for lack of space". Arguments arrive already evaluated; implicit
// conversions follow the REC.
func Call(fn syntax.Func, args []Value, env CallEnv) (Value, error) {
	arg := func(i int) Value {
		if i < len(args) {
			return args[i]
		}
		return Value{}
	}
	// contextDefault supplies the implicit current-node argument of the
	// zero-argument function forms.
	contextDefault := func() Value {
		return NodeSet(xmltree.Singleton(env.Node))
	}

	switch fn {
	case syntax.FnTrue:
		return Boolean(true), nil
	case syntax.FnFalse:
		return Boolean(false), nil
	case syntax.FnNot:
		return Boolean(!ToBool(arg(0))), nil
	case syntax.FnBoolean:
		return Boolean(ToBool(arg(0))), nil

	case syntax.FnNumber:
		if len(args) == 0 {
			return Number(ToNumber(contextDefault())), nil
		}
		return Number(ToNumber(arg(0))), nil
	case syntax.FnString:
		if len(args) == 0 {
			return String(ToString(contextDefault())), nil
		}
		return String(ToString(arg(0))), nil

	case syntax.FnCount:
		return Number(float64(arg(0).Set.Len())), nil
	case syntax.FnSum:
		// F[[sum]](S) = Σ_{n∈S} to_number(strval(n)).
		total := 0.0
		arg(0).Set.ForEach(func(n *xmltree.Node) {
			total += StringToNumber(n.StringValue())
		})
		return Number(total), nil

	case syntax.FnID:
		// F[[id : str → nset]]; the nset form was rewritten to id-axis
		// steps by normalization, but accept it anyway for the benefit of
		// engines evaluating un-normalized trees.
		if arg(0).T == KindNodeSet {
			out := xmltree.NewSet(env.Doc)
			arg(0).Set.ForEach(func(n *xmltree.Node) {
				out.UnionWith(env.Doc.DerefIDs(n.StringValue()))
			})
			return NodeSet(out), nil
		}
		return NodeSet(env.Doc.DerefIDs(ToString(arg(0)))), nil

	case syntax.FnLocalName, syntax.FnName:
		// No namespaces in the paper's data model: both return the label.
		var n *xmltree.Node
		if len(args) == 0 {
			n = env.Node
		} else {
			n = arg(0).Set.First()
		}
		if n == nil || n.IsRoot() {
			return String(""), nil
		}
		return String(n.Label()), nil

	case syntax.FnConcat:
		var b strings.Builder
		for _, a := range args {
			b.WriteString(ToString(a))
		}
		return String(b.String()), nil

	case syntax.FnStartsWith:
		return Boolean(strings.HasPrefix(ToString(arg(0)), ToString(arg(1)))), nil
	case syntax.FnContains:
		return Boolean(strings.Contains(ToString(arg(0)), ToString(arg(1)))), nil

	case syntax.FnSubstringBefore:
		s, sep := ToString(arg(0)), ToString(arg(1))
		if i := strings.Index(s, sep); i >= 0 && sep != "" {
			return String(s[:i]), nil
		}
		return String(""), nil
	case syntax.FnSubstringAfter:
		s, sep := ToString(arg(0)), ToString(arg(1))
		if i := strings.Index(s, sep); i >= 0 && sep != "" {
			return String(s[i+len(sep):]), nil
		}
		return String(""), nil

	case syntax.FnSubstring:
		return String(substring(args)), nil

	case syntax.FnStringLength:
		s := ""
		if len(args) == 0 {
			s = ToString(contextDefault())
		} else {
			s = ToString(arg(0))
		}
		return Number(float64(len([]rune(s)))), nil

	case syntax.FnNormalizeSpace:
		s := ""
		if len(args) == 0 {
			s = ToString(contextDefault())
		} else {
			s = ToString(arg(0))
		}
		return String(strings.Join(strings.Fields(s), " ")), nil

	case syntax.FnTranslate:
		return String(translate(ToString(arg(0)), ToString(arg(1)), ToString(arg(2)))), nil

	case syntax.FnLang:
		return Boolean(lang(env.Node, ToString(arg(0)))), nil

	case syntax.FnFloor:
		return Number(math.Floor(ToNumber(arg(0)))), nil
	case syntax.FnCeiling:
		return Number(math.Ceil(ToNumber(arg(0)))), nil
	case syntax.FnRound:
		return Number(round(ToNumber(arg(0)))), nil
	}
	return Value{}, fmt.Errorf("values: unhandled function %s()", fn)
}

// substring implements the REC's substring() with its IEEE rounding rules:
// substring("12345", 1.5, 2.6) = "234", substring("12345", 0 div 0) = "".
// Positions are 1-based and counted in runes.
func substring(args []Value) string {
	runes := []rune(ToString(args[0]))
	start := round(ToNumber(args[1]))
	var end float64
	if len(args) == 3 {
		end = start + round(ToNumber(args[2]))
	} else {
		end = math.Inf(1)
	}
	if math.IsNaN(start) || math.IsNaN(end) {
		return ""
	}
	var b strings.Builder
	for i, r := range runes {
		pos := float64(i + 1)
		if pos >= start && pos < end {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// translate implements translate(s, from, to): characters of s occurring in
// from are replaced by the corresponding character of to, or removed when
// from is longer than to. The first occurrence in from wins.
func translate(s, from, to string) string {
	fromR, toR := []rune(from), []rune(to)
	repl := make(map[rune]rune, len(fromR))
	drop := make(map[rune]bool)
	for i, r := range fromR {
		if _, seen := repl[r]; seen || drop[r] {
			continue
		}
		if i < len(toR) {
			repl[r] = toR[i]
		} else {
			drop[r] = true
		}
	}
	var b strings.Builder
	for _, r := range s {
		if drop[r] {
			continue
		}
		if rr, ok := repl[r]; ok {
			b.WriteRune(rr)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// lang tests the xml:lang attribute of the nearest ancestor-or-self node
// against the argument, case-insensitively, ignoring any suffix after '-'.
func lang(node *xmltree.Node, want string) bool {
	for n := node; n != nil; n = n.Parent() {
		l, ok := n.Attr("xml:lang")
		if !ok {
			continue
		}
		l = strings.ToLower(l)
		want := strings.ToLower(want)
		return l == want || strings.HasPrefix(l, want+"-")
	}
	return false
}

// round implements round(): nearest integer, ties toward +∞; NaN and
// infinities pass through; arguments in [-0.5, -0) round to negative zero.
func round(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	if f < 0 && f >= -0.5 {
		return math.Copysign(0, -1)
	}
	return math.Floor(f + 0.5)
}
