package values

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/syntax"
	"repro/internal/xmltree"
)

func sampleDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(`<a id="10"><b id="11">7</b><b id="12">x</b><c id="13">100</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNumberToString(t *testing.T) {
	cases := map[float64]string{
		0: "0", 1: "1", -1: "-1", 2.5: "2.5", -0.5: "-0.5",
		100: "100", 1e15: "1000000000000000", 0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := NumberToString(in); got != want {
			t.Errorf("NumberToString(%v) = %q, want %q", in, got, want)
		}
	}
	if got := NumberToString(math.NaN()); got != "NaN" {
		t.Errorf("NaN → %q", got)
	}
	if got := NumberToString(math.Inf(1)); got != "Infinity" {
		t.Errorf("+Inf → %q", got)
	}
	if got := NumberToString(math.Inf(-1)); got != "-Infinity" {
		t.Errorf("-Inf → %q", got)
	}
	if got := NumberToString(math.Copysign(0, -1)); got != "0" {
		t.Errorf("-0 → %q, want 0", got)
	}
}

func TestStringToNumber(t *testing.T) {
	cases := map[string]float64{
		"1": 1, " 42 ": 42, "-3.5": -3.5, ".5": 0.5, "5.": 5,
		"\t7\n": 7, "-0": 0, "007": 7,
	}
	for in, want := range cases {
		if got := StringToNumber(in); got != want {
			t.Errorf("StringToNumber(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "1x", "1 2", "+1", "1e3", "Infinity", "NaN", "--1", "1.2.3", "-", "."} {
		if got := StringToNumber(bad); !math.IsNaN(got) {
			t.Errorf("StringToNumber(%q) = %v, want NaN", bad, got)
		}
	}
}

func TestConversions(t *testing.T) {
	d := sampleDoc(t)
	set := xmltree.NewSet(d)
	set.Add(d.ByID("13"))
	set.Add(d.ByID("11"))

	if got := ToString(NodeSet(set)); got != "7" {
		t.Errorf("string(nset) = %q, want first node's strval", got)
	}
	if got := ToNumber(NodeSet(set)); got != 7 {
		t.Errorf("number(nset) = %v", got)
	}
	if !ToBool(NodeSet(set)) || ToBool(NodeSet(xmltree.NewSet(d))) {
		t.Error("boolean(nset) wrong")
	}
	if ToNumber(Boolean(true)) != 1 || ToNumber(Boolean(false)) != 0 {
		t.Error("number(bool) wrong")
	}
	if ToString(Boolean(true)) != "true" || ToString(Boolean(false)) != "false" {
		t.Error("string(bool) wrong")
	}
	if ToBool(Number(0)) || !ToBool(Number(-2)) || ToBool(Number(math.NaN())) {
		t.Error("boolean(num) wrong")
	}
	if ToBool(String("")) || !ToBool(String("0")) {
		t.Error("boolean(str) wrong: boolean('0') is true in XPath 1.0")
	}
}

func TestCompareScalars(t *testing.T) {
	type tc struct {
		op   syntax.BinOp
		a, b Value
		want bool
	}
	cases := []tc{
		{syntax.OpEq, Number(1), Number(1), true},
		{syntax.OpEq, Number(1), String("1"), true},
		{syntax.OpEq, String("a"), String("a"), true},
		{syntax.OpNeq, String("a"), String("b"), true},
		{syntax.OpEq, Boolean(true), Number(5), true},   // bool wins: boolean(5)=true
		{syntax.OpEq, Boolean(false), String(""), true}, // boolean("")=false
		{syntax.OpEq, Boolean(true), String("0"), true}, // boolean("0")=true!
		{syntax.OpLt, String("2"), String("10"), true},  // numeric, not lexicographic
		{syntax.OpGt, Boolean(true), Boolean(false), true},
		{syntax.OpEq, Number(math.NaN()), Number(math.NaN()), false},
		{syntax.OpNeq, Number(math.NaN()), Number(math.NaN()), true},
		{syntax.OpLt, Number(math.NaN()), Number(1), false},
		{syntax.OpLe, Number(1), Number(1), true},
		{syntax.OpGe, Number(0), Number(1), false},
	}
	for _, c := range cases {
		if got := Compare(c.op, c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNodeSets(t *testing.T) {
	d := sampleDoc(t)
	bs := d.LabelSet("b") // strvals "7", "x"
	cs := d.LabelSet("c") // strval "100"

	if !Compare(syntax.OpEq, NodeSet(bs), Number(7)) {
		t.Error("bs = 7 should hold (x11)")
	}
	if Compare(syntax.OpEq, NodeSet(cs), Number(7)) {
		t.Error("cs = 7 should not hold")
	}
	if !Compare(syntax.OpNeq, NodeSet(bs), Number(7)) {
		t.Error("bs != 7 should hold too (x12 is 'x' → NaN ≠ 7)")
	}
	if !Compare(syntax.OpLt, NodeSet(bs), Number(8)) {
		t.Error("bs < 8 should hold")
	}
	if !Compare(syntax.OpEq, NodeSet(bs), String("x")) {
		t.Error(`bs = "x" should hold`)
	}
	// nset × nset existential.
	if Compare(syntax.OpEq, NodeSet(bs), NodeSet(cs)) {
		t.Error("bs = cs should not hold")
	}
	if !Compare(syntax.OpLt, NodeSet(bs), NodeSet(cs)) {
		t.Error("bs < cs should hold (7 < 100)")
	}
	// Empty sets never satisfy existential comparisons.
	empty := NodeSet(xmltree.NewSet(d))
	for _, op := range []syntax.BinOp{syntax.OpEq, syntax.OpNeq, syntax.OpLt, syntax.OpGt} {
		if Compare(op, empty, Number(0)) {
			t.Errorf("∅ %v 0 should be false", op)
		}
	}
	// nset × bool goes through boolean(nset).
	if !Compare(syntax.OpEq, NodeSet(bs), Boolean(true)) {
		t.Error("bs = true() should hold")
	}
	if !Compare(syntax.OpEq, empty, Boolean(false)) {
		t.Error("∅ = false() should hold")
	}
	// Mirrored operands.
	if !Compare(syntax.OpGt, Number(8), NodeSet(bs)) {
		t.Error("8 > bs should hold")
	}
}

func TestArith(t *testing.T) {
	if Arith(syntax.OpAdd, 2, 3) != 5 || Arith(syntax.OpSub, 2, 3) != -1 ||
		Arith(syntax.OpMul, 2, 3) != 6 {
		t.Error("basic arithmetic broken")
	}
	if got := Arith(syntax.OpDiv, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("1 div 0 = %v", got)
	}
	if got := Arith(syntax.OpDiv, -1, 0); !math.IsInf(got, -1) {
		t.Errorf("-1 div 0 = %v", got)
	}
	if got := Arith(syntax.OpDiv, 0, 0); !math.IsNaN(got) {
		t.Errorf("0 div 0 = %v", got)
	}
	// XPath mod follows the truncated remainder: 5 mod -2 = 1, -5 mod 2 = -1.
	if got := Arith(syntax.OpMod, 5, -2); got != 1 {
		t.Errorf("5 mod -2 = %v", got)
	}
	if got := Arith(syntax.OpMod, -5, 2); got != -1 {
		t.Errorf("-5 mod 2 = %v", got)
	}
	if got := Arith(syntax.OpMod, 5.5, 3); got != 2.5 {
		t.Errorf("5.5 mod 3 = %v", got)
	}
}

func callOK(t *testing.T, fn syntax.Func, env CallEnv, args ...Value) Value {
	t.Helper()
	v, err := Call(fn, args, env)
	if err != nil {
		t.Fatalf("Call(%v): %v", fn, err)
	}
	return v
}

func TestStringFunctions(t *testing.T) {
	env := CallEnv{}
	if got := callOK(t, syntax.FnConcat, env, String("a"), Number(1), Boolean(true)); got.Str != "a1true" {
		t.Errorf("concat = %q", got.Str)
	}
	if got := callOK(t, syntax.FnSubstring, env, String("12345"), Number(2), Number(3)); got.Str != "234" {
		t.Errorf("substring(12345,2,3) = %q", got.Str)
	}
	// The REC's rounding edge cases.
	if got := callOK(t, syntax.FnSubstring, env, String("12345"), Number(1.5), Number(2.6)); got.Str != "234" {
		t.Errorf("substring(12345,1.5,2.6) = %q, want 234", got.Str)
	}
	if got := callOK(t, syntax.FnSubstring, env, String("12345"), Number(0), Number(3)); got.Str != "12" {
		t.Errorf("substring(12345,0,3) = %q, want 12", got.Str)
	}
	if got := callOK(t, syntax.FnSubstring, env, String("12345"), Number(math.NaN())); got.Str != "" {
		t.Errorf("substring with NaN start = %q", got.Str)
	}
	if got := callOK(t, syntax.FnSubstring, env, String("12345"), Number(-42), Number(math.Inf(1))); got.Str != "12345" {
		t.Errorf("substring(12345,-42,inf) = %q", got.Str)
	}
	if got := callOK(t, syntax.FnSubstring, env, String("héllo"), Number(2), Number(2)); got.Str != "él" {
		t.Errorf("substring rune handling = %q", got.Str)
	}
	if got := callOK(t, syntax.FnNormalizeSpace, env, String("  a \t b\n c ")); got.Str != "a b c" {
		t.Errorf("normalize-space = %q", got.Str)
	}
	if got := callOK(t, syntax.FnTranslate, env, String("bar"), String("abc"), String("ABC")); got.Str != "BAr" {
		t.Errorf("translate = %q", got.Str)
	}
	if got := callOK(t, syntax.FnTranslate, env, String("-aaa-"), String("a-"), String("A")); got.Str != "AAA" {
		t.Errorf("translate with removal = %q", got.Str)
	}
	if got := callOK(t, syntax.FnStringLength, env, String("héllo")); got.Num != 5 {
		t.Errorf("string-length = %v (runes, not bytes)", got.Num)
	}
	if got := callOK(t, syntax.FnSubstringBefore, env, String("1999/04"), String("/")); got.Str != "1999" {
		t.Errorf("substring-before = %q", got.Str)
	}
	if got := callOK(t, syntax.FnSubstringAfter, env, String("1999/04"), String("/")); got.Str != "04" {
		t.Errorf("substring-after = %q", got.Str)
	}
	if got := callOK(t, syntax.FnSubstringBefore, env, String("ab"), String("")); got.Str != "" {
		t.Errorf("substring-before with empty sep = %q", got.Str)
	}
	if got := callOK(t, syntax.FnStartsWith, env, String("abc"), String("ab")); !got.Bool {
		t.Error("starts-with failed")
	}
	if got := callOK(t, syntax.FnContains, env, String("abc"), String("")); !got.Bool {
		t.Error("contains with empty needle should be true")
	}
}

func TestNumberFunctions(t *testing.T) {
	env := CallEnv{}
	if got := callOK(t, syntax.FnFloor, env, Number(2.7)); got.Num != 2 {
		t.Errorf("floor = %v", got.Num)
	}
	if got := callOK(t, syntax.FnFloor, env, Number(-2.1)); got.Num != -3 {
		t.Errorf("floor(-2.1) = %v", got.Num)
	}
	if got := callOK(t, syntax.FnCeiling, env, Number(2.1)); got.Num != 3 {
		t.Errorf("ceiling = %v", got.Num)
	}
	if got := callOK(t, syntax.FnRound, env, Number(2.5)); got.Num != 3 {
		t.Errorf("round(2.5) = %v", got.Num)
	}
	if got := callOK(t, syntax.FnRound, env, Number(-2.5)); got.Num != -2 {
		t.Errorf("round(-2.5) = %v, want -2 (ties toward +∞)", got.Num)
	}
	if got := callOK(t, syntax.FnRound, env, Number(-0.3)); !(got.Num == 0 && math.Signbit(got.Num)) {
		t.Errorf("round(-0.3) = %v, want -0", got.Num)
	}
	if got := callOK(t, syntax.FnRound, env, Number(math.NaN())); !math.IsNaN(got.Num) {
		t.Errorf("round(NaN) = %v", got.Num)
	}
}

func TestNodeSetFunctions(t *testing.T) {
	d := sampleDoc(t)
	env := CallEnv{Doc: d, Node: d.ByID("11")}
	bs := d.LabelSet("b")

	if got := callOK(t, syntax.FnCount, env, NodeSet(bs)); got.Num != 2 {
		t.Errorf("count = %v", got.Num)
	}
	// sum over {7, x}: 7 + NaN = NaN.
	if got := callOK(t, syntax.FnSum, env, NodeSet(bs)); !math.IsNaN(got.Num) {
		t.Errorf("sum with non-numeric member = %v, want NaN", got.Num)
	}
	if got := callOK(t, syntax.FnSum, env, NodeSet(d.LabelSet("c"))); got.Num != 100 {
		t.Errorf("sum(c) = %v", got.Num)
	}
	if got := callOK(t, syntax.FnID, env, String("13 11 99")); got.Set.Len() != 2 {
		t.Errorf("id() = %v", got.Set)
	}
	if got := callOK(t, syntax.FnName, env); got.Str != "b" {
		t.Errorf("name() = %q", got.Str)
	}
	if got := callOK(t, syntax.FnLocalName, env, NodeSet(d.LabelSet("c"))); got.Str != "c" {
		t.Errorf("local-name(c) = %q", got.Str)
	}
	if got := callOK(t, syntax.FnName, env, NodeSet(xmltree.NewSet(d))); got.Str != "" {
		t.Errorf("name(∅) = %q", got.Str)
	}
	// Zero-argument string()/number() use the context node.
	if got := callOK(t, syntax.FnString, env); got.Str != "7" {
		t.Errorf("string() = %q", got.Str)
	}
	if got := callOK(t, syntax.FnNumber, env); got.Num != 7 {
		t.Errorf("number() = %v", got.Num)
	}
}

func TestLang(t *testing.T) {
	d, err := xmltree.ParseString(`<a xml:lang="en"><b/><c xml:lang="de-AT"><d/></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	b := d.Root().Children()[0].Children()[0]
	c := d.Root().Children()[0].Children()[1]
	dd := c.Children()[0]
	cases := []struct {
		n    *xmltree.Node
		arg  string
		want bool
	}{
		{b, "en", true}, {b, "EN", true}, {b, "de", false},
		{dd, "de", true}, {dd, "de-AT", true}, {dd, "en", false},
		{c, "de", true},
	}
	for _, cse := range cases {
		got := callOK(t, syntax.FnLang, CallEnv{Doc: d, Node: cse.n}, String(cse.arg))
		if got.Bool != cse.want {
			t.Errorf("lang(%q) at %s = %v, want %v", cse.arg, cse.n.Label(), got.Bool, cse.want)
		}
	}
}

// TestQuickNumberStringRoundTrip: to_number(to_string(n)) == n for finite
// numbers (testing/quick).
func TestQuickNumberStringRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got := StringToNumber(NumberToString(v))
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareMirror: a op b == b mirror(op) a for numbers.
func TestQuickCompareMirror(t *testing.T) {
	ops := []syntax.BinOp{syntax.OpEq, syntax.OpNeq, syntax.OpLt, syntax.OpLe, syntax.OpGt, syntax.OpGe}
	f := func(a, b float64) bool {
		for _, op := range ops {
			if Compare(op, Number(a), Number(b)) != Compare(op.Mirror(), Number(b), Number(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTranslateIdempotentOnDisjoint: translating characters not present
// in the string changes nothing.
func TestQuickTranslateIdempotentOnDisjoint(t *testing.T) {
	f := func(s string) bool {
		out := translate(s, "\x00\x01", "xy")
		cleaned := translate(s, "", "")
		return cleaned == s && (out == s || (len(s) > 0 && out != ""))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualAndRender(t *testing.T) {
	d := sampleDoc(t)
	s := d.LabelSet("b")
	if !Equal(NodeSet(s), NodeSet(s.Clone())) {
		t.Error("Equal on identical sets")
	}
	if Equal(Number(1), String("1")) {
		t.Error("Equal across kinds must be false")
	}
	if !Equal(Number(math.NaN()), Number(math.NaN())) {
		t.Error("Equal treats NaN as identical for test comparison")
	}
	if got := Render(Number(2.5)); got != "2.5" {
		t.Errorf("Render = %q", got)
	}
	if got := Render(NodeSet(s)); got != "{x11, x12}" {
		t.Errorf("Render nset = %q", got)
	}
}
