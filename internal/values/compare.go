package values

import (
	"math"

	"repro/internal/syntax"
	"repro/internal/xmltree"
)

// Compare implements the relational operators over all sixteen type
// combinations: the RelOp/EqOp/GtOp rules of Figure 1, completed per the
// XPath 1.0 REC §3.4 where the figure is schematic:
//
//   - node-set × node-set is existential over the string values; for the
//     ordering operators the string values are compared as numbers (REC);
//   - node-set × scalar is existential over the node-set's members
//     (to_number(strval) against numbers, strval against strings);
//   - node-set × boolean compares boolean(nset) with the boolean — this
//     combination is normally rewritten away by normalization but is also
//     handled here so engines can evaluate un-normalized trees;
//   - scalar × scalar equality prefers boolean, then number, then string
//     comparison; ordering always compares numbers.
func Compare(op syntax.BinOp, a, b Value) bool {
	if a.T == KindNodeSet || b.T == KindNodeSet {
		return compareWithNodeSet(op, a, b)
	}
	if op.IsEquality() {
		switch {
		case a.T == KindBoolean || b.T == KindBoolean:
			return applyCmpBool(op, ToBool(a), ToBool(b))
		case a.T == KindNumber || b.T == KindNumber:
			return applyCmpNum(op, ToNumber(a), ToNumber(b))
		default:
			return applyCmpStr(op, a.Str, b.Str)
		}
	}
	// GtOp of Figure 1: both operands to numbers.
	return applyCmpNum(op, ToNumber(a), ToNumber(b))
}

func compareWithNodeSet(op syntax.BinOp, a, b Value) bool {
	switch {
	case a.T == KindNodeSet && b.T == KindNodeSet:
		// ∃ n1 ∈ S1, n2 ∈ S2 : strval(n1) RelOp strval(n2). For ordering
		// operators the REC compares the numbers; doing so via min/max
		// would not respect NaN, so stay with the existential loop —
		// sets are O(|D|), so this is the O(|D|²) step the paper's
		// Restriction 2 points at.
		found := false
		a.Set.ForEach(func(n1 *xmltree.Node) {
			if found {
				return
			}
			s1 := n1.StringValue()
			b.Set.ForEach(func(n2 *xmltree.Node) {
				if found {
					return
				}
				if op.IsEquality() {
					if applyCmpStr(op, s1, n2.StringValue()) {
						found = true
					}
				} else if applyCmpNum(op, StringToNumber(s1), StringToNumber(n2.StringValue())) {
					found = true
				}
			})
		})
		return found

	case a.T == KindNodeSet:
		return nodeSetVsScalar(op, a, b)
	default:
		return nodeSetVsScalar(op.Mirror(), b, a)
	}
}

// nodeSetVsScalar evaluates S RelOp v with the node set on the left.
func nodeSetVsScalar(op syntax.BinOp, s, v Value) bool {
	switch v.T {
	case KindBoolean:
		// F[[RelOp : nset × bool]]: boolean(S) RelOp b.
		return Compare(op, Boolean(ToBool(s)), v)
	case KindNumber:
		found := false
		s.Set.ForEach(func(n *xmltree.Node) {
			if !found && applyCmpNum(op, StringToNumber(n.StringValue()), v.Num) {
				found = true
			}
		})
		return found
	default: // string
		found := false
		s.Set.ForEach(func(n *xmltree.Node) {
			if found {
				return
			}
			if op.IsEquality() {
				if applyCmpStr(op, n.StringValue(), v.Str) {
					found = true
				}
			} else if applyCmpNum(op, StringToNumber(n.StringValue()), StringToNumber(v.Str)) {
				found = true
			}
		})
		return found
	}
}

func applyCmpNum(op syntax.BinOp, a, b float64) bool {
	switch op {
	case syntax.OpEq:
		return a == b
	case syntax.OpNeq:
		// IEEE semantics: NaN != x is true for every x, including NaN.
		return a != b
	case syntax.OpLt:
		return a < b
	case syntax.OpLe:
		return a <= b
	case syntax.OpGt:
		return a > b
	case syntax.OpGe:
		return a >= b
	}
	panic("values: applyCmpNum: not a relational operator")
}

func applyCmpStr(op syntax.BinOp, a, b string) bool {
	switch op {
	case syntax.OpEq:
		return a == b
	case syntax.OpNeq:
		return a != b
	}
	panic("values: applyCmpStr: ordering operators compare numbers")
}

func applyCmpBool(op syntax.BinOp, a, b bool) bool {
	switch op {
	case syntax.OpEq:
		return a == b
	case syntax.OpNeq:
		return a != b
	}
	// Ordering on booleans goes through numbers (GtOp rule of Figure 1).
	return applyCmpNum(op, boolToNum(a), boolToNum(b))
}

func boolToNum(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Arith implements the ArithOp rule of Figure 1 over numbers, with XPath's
// IEEE semantics: division by zero yields ±Infinity, mod follows the
// truncated remainder of Java/ECMAScript (math.Mod).
func Arith(op syntax.BinOp, a, b float64) float64 {
	switch op {
	case syntax.OpAdd:
		return a + b
	case syntax.OpSub:
		return a - b
	case syntax.OpMul:
		return a * b
	case syntax.OpDiv:
		return a / b
	case syntax.OpMod:
		return math.Mod(a, b)
	}
	panic("values: Arith: not an arithmetic operator")
}
