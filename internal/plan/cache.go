package plan

import (
	"sync"
	"sync/atomic"

	"repro/internal/syntax"
)

// planCache maps compiled queries to their programs. Keys are *syntax.Query
// pointers: a query object is immutable after syntax.Compile, so pointer
// identity is a sound (and collision-free) cache key even when two queries
// share source text but were compiled with different variable bindings.
type planCache struct {
	mu sync.RWMutex
	m  map[*syntax.Query]*Program
}

// maxCachedPlans bounds the pointer-keyed cache; beyond it, an arbitrary
// entry is evicted (plans are cheap to recompile, the bound only prevents
// unbounded growth under churning ad-hoc queries).
const maxCachedPlans = 1024

func (c *planCache) get(q *syntax.Query) (*Program, error) {
	c.mu.RLock()
	p := c.m[q]
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	c.put(q, p)
	return p, nil
}

func (c *planCache) put(q *syntax.Query, p *Program) {
	// Fast path for repeated traffic (CompileCached primes on every call):
	// a read lock suffices to see the entry is already there.
	c.mu.RLock()
	_, present := c.m[q]
	c.mu.RUnlock()
	if present {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[*syntax.Query]*Program)
	}
	if _, ok := c.m[q]; ok {
		return // first store wins; concurrent compiles produce equal programs
	}
	if len(c.m) >= maxCachedPlans {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[q] = p
}

// CachedQuery is one entry of a SourceCache: the analyzed syntax tree and
// its compiled program.
type CachedQuery struct {
	Query *syntax.Query
	Prog  *Program
}

// SourceCache is a concurrency-safe compiled-plan cache keyed by query
// source text: repeated traffic for the same query string skips lexing,
// parsing, normalization, the Relev/fragment analyses and plan compilation
// entirely. Entries are immutable and shared; concurrent lookups of the
// same source converge on one entry.
//
// Sources compiled with variable bindings must not go through a
// SourceCache (the bindings are substituted into the tree, so source text
// alone does not identify the query).
type SourceCache struct {
	mu       sync.RWMutex
	cap      int
	m        map[string]*CachedQuery
	compiles atomic.Int64
}

// NewSourceCache returns a cache bounded to roughly capacity entries
// (capacity <= 0 means a default of 1024).
func NewSourceCache(capacity int) *SourceCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &SourceCache{cap: capacity, m: make(map[string]*CachedQuery)}
}

// Get returns the cached compilation of src, compiling and caching on a
// miss.
func (c *SourceCache) Get(src string) (*CachedQuery, error) {
	c.mu.RLock()
	e := c.m[src]
	c.mu.RUnlock()
	if e != nil {
		return e, nil
	}
	c.compiles.Add(1)
	q, err := syntax.Compile(src)
	if err != nil {
		return nil, err
	}
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	fresh := &CachedQuery{Query: q, Prog: p}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.m[src]; e != nil {
		return e, nil // a concurrent miss won the race; converge on it
	}
	if len(c.m) >= c.cap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[src] = fresh
	return fresh, nil
}

// Len returns the number of cached entries.
func (c *SourceCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Compiles returns how many cache misses actually compiled. Concurrent
// first requests for one source may each compile (the losers' results are
// discarded at the store), so the count can exceed the number of distinct
// sources while they race — but once a source is cached, further Gets add
// nothing. The race tests pin exactly that: a warm cache serves any number
// of goroutines with zero new compilations.
func (c *SourceCache) Compiles() int64 { return c.compiles.Load() }
