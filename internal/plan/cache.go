package plan

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/syntax"
	"repro/internal/trace"
)

// Process-wide plan-cache instruments (summed over every SourceCache of the
// process; per-cache views come from the Hits/Misses/Evictions accessors).
var (
	mSrcHits    = metrics.Default().Counter("plan.source_cache.hits")
	mSrcMisses  = metrics.Default().Counter("plan.source_cache.misses")
	mSrcErrHits = metrics.Default().Counter("plan.source_cache.error_hits")
	mSrcEvicts  = metrics.Default().Counter("plan.source_cache.evictions")
	mSrcLen     = metrics.Default().Gauge("plan.source_cache.len")
	mCompileNs  = metrics.Default().Histogram("plan.compile_ns")
)

// planCache maps compiled queries to their programs. Keys are *syntax.Query
// pointers: a query object is immutable after syntax.Compile, so pointer
// identity is a sound (and collision-free) cache key even when two queries
// share source text but were compiled with different variable bindings.
type planCache struct {
	mu sync.RWMutex
	m  map[*syntax.Query]*Program
}

// maxCachedPlans bounds the pointer-keyed cache; beyond it, an arbitrary
// entry is evicted (plans are cheap to recompile, the bound only prevents
// unbounded growth under churning ad-hoc queries).
const maxCachedPlans = 1024

func (c *planCache) get(q *syntax.Query) (*Program, error) {
	c.mu.RLock()
	p := c.m[q]
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	c.put(q, p)
	return p, nil
}

func (c *planCache) put(q *syntax.Query, p *Program) {
	// Fast path for repeated traffic (CompileCached primes on every call):
	// a read lock suffices to see the entry is already there.
	c.mu.RLock()
	_, present := c.m[q]
	c.mu.RUnlock()
	if present {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[*syntax.Query]*Program)
	}
	if _, ok := c.m[q]; ok {
		return // first store wins; concurrent compiles produce equal programs
	}
	if len(c.m) >= maxCachedPlans {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[q] = p
}

// CachedQuery is one entry of a SourceCache: the analyzed syntax tree and
// its compiled program.
type CachedQuery struct {
	Query *syntax.Query
	Prog  *Program

	// lastUsed is the cache's logical clock value at this entry's most
	// recent hit (or its insertion). It is updated under the cache's read
	// lock, so it must be atomic; eviction scans it under the write lock.
	lastUsed atomic.Int64
}

// SourceCache is a concurrency-safe compiled-plan cache keyed by query
// source text: repeated traffic for the same query string skips lexing,
// parsing, normalization, the Relev/fragment analyses and plan compilation
// entirely. Entries are immutable and shared; concurrent lookups of the
// same source converge on one entry. Sources that fail to compile enter a
// bounded negative cache, so a hot invalid query is rejected from memory
// instead of re-parsing on every request.
//
// Sources compiled with variable bindings must not go through a
// SourceCache (the bindings are substituted into the tree, so source text
// alone does not identify the query).
type SourceCache struct {
	mu       sync.RWMutex
	cap      int
	m        map[string]*CachedQuery
	compiles atomic.Int64

	// errs is the negative cache: sources whose compilation failed, mapped
	// to the error the first compile produced. Without it a hot *invalid*
	// query re-lexes and re-parses on every request — a trivial degradation
	// vector for a server whose clients control the source text. Bounded by
	// the same capacity as the entry map; beyond it an arbitrary error is
	// dropped (errors are cheap to rediscover, the bound only prevents
	// unbounded growth under churning garbage sources).
	errs map[string]error

	// tick is the cache's logical clock: every hit and insert advances it
	// and stamps the entry, giving eviction a least-recently-used order
	// without promoting entries under the write lock.
	tick      atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	errorHits atomic.Int64
	evictions atomic.Int64
}

// NewSourceCache returns a cache bounded to roughly capacity entries
// (capacity <= 0 means a default of 1024).
func NewSourceCache(capacity int) *SourceCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &SourceCache{
		cap:  capacity,
		m:    make(map[string]*CachedQuery),
		errs: make(map[string]error),
	}
}

// Get returns the cached compilation of src, compiling and caching on a
// miss. Hits refresh the entry's recency stamp; when the cache is full, the
// least recently used entry is evicted to make room — a full cache serving
// its working set never discards a hot entry for a newly seen source's sake
// of anything but the coldest slot.
func (c *SourceCache) Get(src string) (*CachedQuery, error) {
	e, _, err := c.getTraced(src, nil)
	return e, err
}

// GetTraced is Get with an optional tracer: a cache miss that compiles
// emits one KindCompile span (named by the source) carrying the compile
// time. tr may be nil.
func (c *SourceCache) GetTraced(src string, tr trace.Tracer) (*CachedQuery, error) {
	e, _, err := c.getTraced(src, tr)
	return e, err
}

// GetInfo is GetTraced plus a cache-hit report: hit is true when the call
// was served from the cache without compiling anything — from the entry map
// (err nil) or from the negative cache (err non-nil). Servers use it to
// attribute per-request cache behavior without racing on counter deltas.
func (c *SourceCache) GetInfo(src string, tr trace.Tracer) (e *CachedQuery, hit bool, err error) {
	return c.getTraced(src, tr)
}

func (c *SourceCache) getTraced(src string, tr trace.Tracer) (*CachedQuery, bool, error) {
	c.mu.RLock()
	e := c.m[src]
	if e != nil {
		e.lastUsed.Store(c.tick.Add(1))
	}
	var cachedErr error
	if e == nil {
		cachedErr = c.errs[src]
	}
	c.mu.RUnlock()
	if e != nil {
		c.hits.Add(1)
		mSrcHits.Add(1)
		return e, true, nil
	}
	if cachedErr != nil {
		// Negative hit: the source is known-bad; hand back the original
		// error without re-lexing. Counted separately from hits and misses
		// (it is neither a served compilation nor compile work).
		c.errorHits.Add(1)
		mSrcErrHits.Add(1)
		return nil, true, cachedErr
	}
	c.misses.Add(1)
	mSrcMisses.Add(1)
	t0 := trace.Now()
	q, err := syntax.Compile(src)
	var p *Program
	if err == nil {
		p, err = Compile(q)
	}
	if err != nil {
		c.storeError(src, err)
		return nil, false, err
	}
	// Count the compile only now: a parse/compile error above produced no
	// plan, so it must not inflate the compile counter.
	c.compiles.Add(1)
	compileNs := trace.Now() - t0
	mCompileNs.Observe(compileNs)
	if tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.KindCompile, Name: src,
			In: trace.CardUnknown, Out: trace.CardUnknown, Ns: compileNs,
		})
	}
	fresh := &CachedQuery{Query: q, Prog: p}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.m[src]; e != nil {
		e.lastUsed.Store(c.tick.Add(1))
		return e, false, nil // a concurrent miss won the race; converge on it
	}
	if len(c.m) >= c.cap {
		c.evictLRULocked()
	}
	fresh.lastUsed.Store(c.tick.Add(1))
	c.m[src] = fresh
	mSrcLen.Add(1)
	return fresh, false, nil
}

// storeError stores a compile failure in the bounded negative cache.
// Concurrent failures for one source race benignly — both errors carry the
// same message, either may win (first store kept).
func (c *SourceCache) storeError(src string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.errs[src]; ok {
		return
	}
	if len(c.errs) >= c.cap {
		for k := range c.errs {
			delete(c.errs, k)
			break
		}
	}
	c.errs[src] = err
}

// evictLRULocked removes the entry with the oldest recency stamp. The O(cap)
// scan runs only on insertion into a full cache — by then a compile (orders
// of magnitude more work) has already happened, so the scan is noise.
func (c *SourceCache) evictLRULocked() {
	var victim string
	found := false
	oldest := int64(1<<63 - 1)
	for k, e := range c.m {
		if lu := e.lastUsed.Load(); lu < oldest {
			oldest, victim, found = lu, k, true
		}
	}
	if found {
		delete(c.m, victim)
		c.evictions.Add(1)
		mSrcEvicts.Add(1)
		mSrcLen.Add(-1)
	}
}

// Contains reports whether src is cached, without refreshing its recency or
// touching the hit/miss counters (a pure peek, for tests and diagnostics).
func (c *SourceCache) Contains(src string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[src] != nil
}

// Hits returns how many Gets were served from the cache.
func (c *SourceCache) Hits() int64 { return c.hits.Load() }

// Misses returns how many Gets had to compile.
func (c *SourceCache) Misses() int64 { return c.misses.Load() }

// ErrorHits returns how many Gets were answered from the negative cache —
// a known-bad source rejected without re-parsing. Counted separately from
// Hits and Misses.
func (c *SourceCache) ErrorHits() int64 { return c.errorHits.Load() }

// Evictions returns how many entries were displaced by capacity pressure.
func (c *SourceCache) Evictions() int64 { return c.evictions.Load() }

// Len returns the number of cached entries.
func (c *SourceCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Compiles returns how many cache misses compiled successfully (a source
// that fails to parse or plan counts zero — see ErrorHits). Concurrent
// first requests for one source may each compile (the losers' results are
// discarded at the store), so the count can exceed the number of distinct
// sources while they race — but once a source is cached, further Gets add
// nothing. The race tests pin exactly that: a warm cache serves any number
// of goroutines with zero new compilations.
func (c *SourceCache) Compiles() int64 { return c.compiles.Load() }
