//go:build race

package plan

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation allocates and would invalidate exact allocs/op
// pins.
const raceEnabled = true
