package plan

// Satisfaction-set compilation: the compile-time counterpart of the paper's
// Algorithm 8 backward propagation. A position-independent predicate that is
// an and/or/not combination of
//
//   - location-path existence tests (Definition 12's Core XPath predicates,
//     possibly via an explicit boolean(π)), and
//   - π RelOp s comparisons with a compile-time-constant scalar s
//     (Restriction 2 of the Extended Wadler Fragment),
//
// is lowered to straight-line set algebra computing the whole-domain
// satisfaction set S = {n ∈ dom ∪ {root} | pred holds at 〈n,∗,∗〉}: seed
// sets from the document's cached label sets (or one OpScanCmp string-value
// scan), propagated backwards through inverse axes, combined with
// intersection/union/complement. Step filtering then costs one bitset
// intersection per evaluation instead of a per-candidate evaluation loop.

import (
	"repro/internal/syntax"
	"repro/internal/values"
)

// trySat attempts satisfaction-set compilation of pred, emitting the set
// program into b. It reports false — leaving b untouched — when the
// predicate is outside the satisfiable shape.
func (c *compiler) trySat(b *blockBuf, pred syntax.Expr) (int, bool) {
	if !c.satisfiable(pred) {
		return 0, false
	}
	return c.emitSat(b, pred), true
}

// satisfiable is the dry-run shape check mirrored by emitSat.
func (c *compiler) satisfiable(e syntax.Expr) bool {
	switch e := e.(type) {
	case *syntax.Binary:
		if e.Op == syntax.OpAnd || e.Op == syntax.OpOr {
			return c.satisfiable(e.L) && c.satisfiable(e.R)
		}
		if e.Op.IsRelational() {
			_, _, _, ok := c.satCmpParts(e)
			return ok
		}
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnNot:
			return c.satisfiable(e.Args[0])
		case syntax.FnBoolean:
			return c.satExistable(e.Args[0])
		}
	case *syntax.Path, *syntax.Union:
		return c.satExistable(e)
	}
	return false
}

// satExistable reports whether e is a location path (or union of paths)
// whose existence set can be computed by backward propagation: relative,
// pure steps over invertible axes, and every step predicate either folds to
// a constant or is itself satisfiable and position-independent.
func (c *compiler) satExistable(e syntax.Expr) bool {
	switch e := e.(type) {
	case *syntax.Union:
		for _, p := range e.Paths {
			if !c.satExistable(p) {
				return false
			}
		}
		return true
	case *syntax.Path:
		if e.Abs || e.Filter != nil || len(e.Steps) == 0 {
			return false
		}
		for _, s := range e.Steps {
			if !axisHasInverse(s.Axis) {
				return false
			}
			for _, pred := range s.Preds {
				if _, ok := fold(pred); ok {
					continue
				}
				if c.q.Relev[pred.ID()].NeedsPosition() || !c.satisfiable(pred) {
					return false
				}
			}
		}
		return true
	}
	return false
}

// satCmpParts decomposes a relational comparison into (path, mirrored op,
// constant scalar). ok requires one operand to be an existable path and the
// other a compile-time constant scalar; boolean constants are admitted for
// =/!= only (their node-set comparison goes through boolean(π), not through
// per-member string values).
func (c *compiler) satCmpParts(e *syntax.Binary) (path syntax.Expr, op syntax.BinOp, scalar values.Value, ok bool) {
	op = e.Op
	path, other := syntax.Expr(e.L), syntax.Expr(e.R)
	if !c.satExistable(path) {
		path, other = other, path
		op = op.Mirror()
	}
	if !c.satExistable(path) {
		return nil, 0, values.Value{}, false
	}
	v, isConst := fold(other)
	if !isConst {
		return nil, 0, values.Value{}, false
	}
	if v.T == values.KindBoolean && !op.IsEquality() {
		return nil, 0, values.Value{}, false
	}
	return path, op, v, true
}

// emitSat emits the satisfaction-set program for a satisfiable predicate
// and returns the register holding S. Every returned register holds a set
// owned by this evaluation (never a shared document cache), so callers may
// intersect into it in place.
func (c *compiler) emitSat(b *blockBuf, e syntax.Expr) int {
	switch e := e.(type) {
	case *syntax.Binary:
		if e.Op == syntax.OpAnd || e.Op == syntax.OpOr {
			l := c.emitSat(b, e.L)
			r := c.emitSat(b, e.R)
			op := OpIntersect
			if e.Op == syntax.OpOr {
				op = OpUnionSet
			}
			c.emit(b, Instr{Op: op, Dst: l, B: l, C: r}) // in place: l is owned
			return l
		}
		path, op, scalar, ok := c.satCmpParts(e)
		if !ok {
			c.fail("emitSat: comparison not satisfiable: %s", e)
		}
		if scalar.T == values.KindBoolean {
			// π = b  ⇔  boolean(π) = b (the nset × bool rule of Figure 1).
			exist := c.emitSatExist(b, path)
			wantNonEmpty := scalar.Bool == (op == syntax.OpEq)
			if wantNonEmpty {
				return exist
			}
			return c.emitComplement(b, exist)
		}
		// Seed from the string-value scan, then propagate backwards.
		seed := c.newReg()
		c.emit(b, Instr{Op: OpScanCmp, Dst: seed, A: int(op), B: c.constIdx(scalar)})
		return c.emitSatPath(b, path.(*syntax.Path), seed)
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnNot:
			return c.emitComplement(b, c.emitSat(b, e.Args[0]))
		case syntax.FnBoolean:
			return c.emitSatExist(b, e.Args[0])
		}
	case *syntax.Path, *syntax.Union:
		return c.emitSatExist(b, e)
	}
	c.fail("emitSat: unhandled predicate %s", e)
	return 0
}

func (c *compiler) emitComplement(b *blockBuf, r int) int {
	dst := c.newReg()
	c.emit(b, Instr{Op: OpComplement, Dst: dst, C: r})
	return dst
}

// emitSatExist emits the existence set {n | π(n) ≠ ∅} of a path or union.
func (c *compiler) emitSatExist(b *blockBuf, e syntax.Expr) int {
	switch e := e.(type) {
	case *syntax.Union:
		cur := c.emitSatExist(b, e.Paths[0])
		for _, p := range e.Paths[1:] {
			r := c.emitSatExist(b, p)
			c.emit(b, Instr{Op: OpUnionSet, Dst: cur, B: cur, C: r})
		}
		return cur
	case *syntax.Path:
		return c.emitSatPath(b, e, -1)
	}
	c.fail("emitSatExist: not a path: %s", e)
	return 0
}

// emitSatPath emits backward propagation through the steps of π. seed (a
// register, or -1) restricts the nodes the path must reach — the Y′ of the
// paper's propagate_path_backwards, here the OpScanCmp set of a π RelOp s
// predicate. Returns the register of {n | π(n) ∩ seed ≠ ∅} (seed = dom when
// absent). The returned set is owned.
func (c *compiler) emitSatPath(b *blockBuf, p *syntax.Path, seed int) int {
	// "after" holds the requirement set at the boundary below step i:
	// candidates of step i must lie in T(t_i) ∩ sat(preds_i) ∩ after.
	after := seed
	afterOwned := seed >= 0
	for i := len(p.Steps) - 1; i >= 0; i-- {
		s := p.Steps[i]
		// Collect the step's own predicate satisfaction sets (constants were
		// validated by satExistable: true folds drop, false empties).
		var predRegs []int
		emptyStep := false
		for _, pred := range s.Preds {
			if v, ok := fold(pred); ok {
				if !values.ToBool(v) {
					emptyStep = true
				}
				continue
			}
			predRegs = append(predRegs, c.emitSat(b, pred))
		}
		if emptyStep {
			dst := c.newReg()
			c.emit(b, Instr{Op: OpEmptySet, Dst: dst})
			return dst
		}
		testI := c.testIdx(s.Test)
		// Build cur = T(t_i) ∩ preds ∩ after, starting from an owned operand
		// so intersections can run in place; fall back to the shared cached
		// test set when it is the only constraint (it is then only read).
		var cur int
		switch {
		case afterOwned:
			cur = after
			c.emit(b, Instr{Op: OpTestFilter, Dst: cur, B: testI, C: cur})
		case len(predRegs) > 0:
			cur = predRegs[0]
			predRegs = predRegs[1:]
			c.emit(b, Instr{Op: OpTestFilter, Dst: cur, B: testI, C: cur})
		default:
			cur = c.newReg()
			c.emit(b, Instr{Op: OpTestSet, Dst: cur, B: testI})
		}
		for _, pr := range predRegs {
			c.emit(b, Instr{Op: OpIntersect, Dst: cur, B: cur, C: pr})
		}
		after = c.newReg()
		c.emit(b, Instr{Op: OpStepInv, Dst: after, A: int(s.Axis), C: cur})
		afterOwned = true
	}
	return after
}
