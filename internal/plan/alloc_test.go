package plan

import (
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestWarmEvaluateAllocs pins the steady-state allocation count of compiled
// plan evaluation, so alloc regressions in the VM or the axis kernels fail
// CI rather than silently eroding the zero-alloc design:
//
//   - a node-set query costs exactly 2 allocations per warm evaluation —
//     the result-detach Clone (one Set header + one word slice) that hands
//     the caller a set independent of the machine's reusable arena;
//   - a scalar query costs exactly 0: registers, arena sets, candidate
//     buffers and axis-kernel scratch are all pooled with the machine.
//
// If an intentional change moves these constants, update them here together
// with the ownership rules documented in the README.
func TestWarmEvaluateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact pins run in the non-race job")
	}
	doc := workload.Scaled(400)
	e := New()
	ctx := engine.RootContext(doc)
	cases := []struct {
		src  string
		want float64
	}{
		{"/descendant::b[child::d]/child::c", 2}, // fused steps, sat-set predicate
		{"//b[.//d]//c", 2},                      // descendant-heavy chain
		{"/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]", 2}, // positional loop
		{"count(//b)", 0},   // scalar result: nothing to detach
		{"sum(//b/d)", 0},   // scalar over a two-step path
		{"boolean(//e)", 0}, // satisfaction-set program
	}
	for _, c := range cases {
		q, err := syntax.Compile(c.src)
		if err != nil {
			t.Fatalf("compile %q: %v", c.src, err)
		}
		// Warm the plan cache, the machine pool and the arena.
		for i := 0; i < 5; i++ {
			if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
				t.Fatalf("evaluate %q: %v", c.src, err)
			}
		}
		got := testing.AllocsPerRun(50, func() {
			if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
				t.Fatalf("evaluate %q: %v", c.src, err)
			}
		})
		if got != c.want {
			t.Errorf("%q: %v allocs/op on warm evaluation, want %v", c.src, got, c.want)
		}

		// The Budget contract mirrors the Tracer contract: a live Budget —
		// fuel, deadline and cardinality cap all armed — must hold the same
		// pins, because Step/Err/Card are allocation-free.
		bctx := ctx
		bctx.Budget = budget.New(budget.Limits{
			Steps:         1 << 40,
			Deadline:      time.Hour,
			MaxResultCard: 1 << 30,
		})
		for i := 0; i < 5; i++ {
			if _, _, err := e.Evaluate(q, doc, bctx); err != nil {
				t.Fatalf("budgeted evaluate %q: %v", c.src, err)
			}
		}
		got = testing.AllocsPerRun(50, func() {
			if _, _, err := e.Evaluate(q, doc, bctx); err != nil {
				t.Fatalf("budgeted evaluate %q: %v", c.src, err)
			}
		})
		if got != c.want {
			t.Errorf("%q: %v allocs/op with live Budget, want the pinned %v", c.src, got, c.want)
		}
	}
}

// TestTracedEvaluateAllocs guards both sides of the observability contract:
// a context whose Tracer field is explicitly nil costs exactly the pinned
// counts of TestWarmEvaluateAllocs (the nil check is the whole price of the
// instrumentation), and an attached recorder actually receives per-opcode
// spans whose timings are coherent.
func TestTracedEvaluateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact pins run in the non-race job")
	}
	doc := workload.Scaled(400)
	e := New()
	ctx := engine.RootContext(doc)
	ctx.Tracer = nil // explicit: the zero-cost default
	q, err := syntax.Compile("/descendant::b[child::d]/child::c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(50, func() {
		if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
			t.Fatal(err)
		}
	}); got != 2 {
		t.Errorf("nil-tracer evaluation: %v allocs/op, want the pinned 2", got)
	}

	rec := trace.NewRecorder()
	traced := ctx
	traced.Tracer = rec
	if _, _, err := e.Evaluate(q, doc, traced); err != nil {
		t.Fatal(err)
	}
	rows := rec.Rows()
	if len(rows) == 0 {
		t.Fatal("traced evaluation emitted no spans")
	}
	var opcodeRows, totalNs int64
	for _, r := range rows {
		if r.Kind != trace.KindOpcode {
			t.Errorf("VM emitted kind %v, want only opcode spans", r.Kind)
		}
		opcodeRows++
		totalNs += r.Ns
		if r.Calls <= 0 {
			t.Errorf("row %+v: non-positive call count", r)
		}
	}
	if opcodeRows < 4 {
		t.Errorf("only %d distinct instructions traced for a 7-instruction plan", opcodeRows)
	}
	if totalNs <= 0 {
		t.Error("traced spans carry no time")
	}
}
