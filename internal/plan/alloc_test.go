package plan

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/workload"
)

// TestWarmEvaluateAllocs pins the steady-state allocation count of compiled
// plan evaluation, so alloc regressions in the VM or the axis kernels fail
// CI rather than silently eroding the zero-alloc design:
//
//   - a node-set query costs exactly 2 allocations per warm evaluation —
//     the result-detach Clone (one Set header + one word slice) that hands
//     the caller a set independent of the machine's reusable arena;
//   - a scalar query costs exactly 0: registers, arena sets, candidate
//     buffers and axis-kernel scratch are all pooled with the machine.
//
// If an intentional change moves these constants, update them here together
// with the ownership rules documented in the README.
func TestWarmEvaluateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact pins run in the non-race job")
	}
	doc := workload.Scaled(400)
	e := New()
	ctx := engine.RootContext(doc)
	cases := []struct {
		src  string
		want float64
	}{
		{"/descendant::b[child::d]/child::c", 2}, // fused steps, sat-set predicate
		{"//b[.//d]//c", 2},                      // descendant-heavy chain
		{"/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]", 2}, // positional loop
		{"count(//b)", 0},   // scalar result: nothing to detach
		{"sum(//b/d)", 0},   // scalar over a two-step path
		{"boolean(//e)", 0}, // satisfaction-set program
	}
	for _, c := range cases {
		q, err := syntax.Compile(c.src)
		if err != nil {
			t.Fatalf("compile %q: %v", c.src, err)
		}
		// Warm the plan cache, the machine pool and the arena.
		for i := 0; i < 5; i++ {
			if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
				t.Fatalf("evaluate %q: %v", c.src, err)
			}
		}
		got := testing.AllocsPerRun(50, func() {
			if _, _, err := e.Evaluate(q, doc, ctx); err != nil {
				t.Fatalf("evaluate %q: %v", c.src, err)
			}
		})
		if got != c.want {
			t.Errorf("%q: %v allocs/op on warm evaluation, want %v", c.src, got, c.want)
		}
	}
}
