// Package plan implements the seventh evaluation engine of this repository:
// a whole-query compiler that lowers a normalized *syntax.Query into a flat,
// register-based instruction program, and a virtual machine that executes
// such programs with preallocated register slots and reusable scratch sets.
//
// The other six engines interpret the parse tree on every evaluation,
// re-dispatching on AST node kinds in the hot path. Following the
// whole-query-compilation argument of Maneth & Nguyen ("XPath Whole Query
// Optimization", PVLDB 2011) and the precomputed per-label structures of
// Arroyuelo et al. ("Fast In-Memory XPath Search over Compressed Text and
// Tree Indexes", ICDE 2010), the compiler performs the analysis the
// interpreters redo per evaluation exactly once per query:
//
//   - location steps are fused axis+node-test opcodes executing
//     set-at-a-time over the document's bitset node sets;
//   - position-independent predicates are compiled, where possible, into
//     satisfaction-set programs — straight-line set algebra computing
//     {n ∈ dom | pred(n)} wholesale via inverse axes (the compile-time form
//     of the paper's Algorithm 8 backward propagation), so step filtering is
//     one bitset intersection instead of a per-candidate loop;
//   - position()=k and position()=last() predicates are specialized into
//     direct candidate-index selection;
//   - context-free scalar subexpressions are constant-folded at compile
//     time, and and/or branches decided by a folded operand are eliminated;
//   - everything else falls back to generic predicate blocks evaluated per
//     candidate, so the engine covers full XPath 1.0, not just a fragment.
//
// A Program is a single flat instruction array; predicate subexpressions are
// code blocks (entry points into the array) invoked by the step and filter
// instructions. Registers are dense indexes into one preallocated value
// slice, assigned single-statically by the compiler.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/axes"
	"repro/internal/syntax"
	"repro/internal/values"
)

// Op is an instruction opcode.
type Op uint8

// The instruction set. Operand conventions: Dst is the result register;
// A, B, C are opcode-specific (register numbers, pool indexes, jump targets
// or operator codes), spelled out per opcode below.
const (
	// OpConst: R[Dst] = Consts[A].
	OpConst Op = iota
	// OpMove: R[Dst] = R[A].
	OpMove
	// OpCtxNode: R[Dst] = {cn}, the frame's context node as a singleton set.
	OpCtxNode
	// OpRootSet: R[Dst] = {root}.
	OpRootSet
	// OpEmptySet: R[Dst] = ∅.
	OpEmptySet
	// OpPosition: R[Dst] = number(cp) of the current frame.
	OpPosition
	// OpLast: R[Dst] = number(cs) of the current frame.
	OpLast
	// OpArith: R[Dst] = number(R[B]) op_A number(R[C]), op_A a syntax.BinOp.
	OpArith
	// OpNegate: R[Dst] = -number(R[A]).
	OpNegate
	// OpCompare: R[Dst] = boolean(R[B] op_A R[C]) with the full sixteen-case
	// comparison semantics of values.Compare.
	OpCompare
	// OpCoerceBool: R[Dst] = boolean(R[A]).
	OpCoerceBool
	// OpCall: R[Dst] = F[[fn_A]](R[B], …, R[B+C-1]).
	OpCall
	// OpJump: pc = A.
	OpJump
	// OpJumpIfTrue: if boolean(R[B]) { pc = A }.
	OpJumpIfTrue
	// OpJumpIfFalse: if !boolean(R[B]) { pc = A }.
	OpJumpIfFalse
	// OpStep: R[Dst] = χ_A(R[C]) ∩ T(Tests[B]) — one fused set-at-a-time
	// location step (axis apply + node test) with no predicates.
	OpStep
	// OpStepInv: R[Dst] = χ_A⁻¹(R[C]) — inverse axis application, the
	// backward-propagation step of satisfaction-set programs.
	OpStepInv
	// OpTestFilter: R[Dst] = R[C] ∩ T(Tests[B]). The compiler only emits
	// this onto freshly produced sets, so the VM may intersect in place.
	OpTestFilter
	// OpTestSet: R[Dst] = T(Tests[B]), the document's cached label set. The
	// register aliases the shared cache; the compiler never emits in-place
	// mutation of it (it is only read, e.g. as an OpStepInv source).
	OpTestSet
	// OpScanCmp: R[Dst] = {n ∈ dom ∪ {root} | strval(n) op_A Consts[B]} —
	// the whole-document comparison scan seeding satisfaction sets for
	// π RelOp s predicates.
	OpScanCmp
	// OpUnionSet: R[Dst] = R[B] ∪ R[C].
	OpUnionSet
	// OpIntersect: R[Dst] = R[B] ∩ R[C] (in place when Dst == B).
	OpIntersect
	// OpComplement: R[Dst] = (dom ∪ {root}) \ R[C].
	OpComplement
	// OpBoolGate: R[Dst] = R[C] if boolean(R[B]) else ∅ — the whole-step
	// gate for context-uniform predicates.
	OpBoolGate
	// OpFilterSet: R[Dst] = {y ∈ R[C] | Blocks[B](y, ∗, ∗)} — generic
	// position-independent predicate filtering over a whole image set.
	OpFilterSet
	// OpFilterList: order R[C] in document order and apply the Preds chain
	// with 1-based positions (the filter-expression predicate semantics);
	// R[Dst] = surviving nodes.
	OpFilterList
	// OpStepSel: for every x ∈ R[C], build the ordered candidate list of
	// χ_A::Tests[B] and apply the Preds chain with per-x positions; R[Dst]
	// is the union of the survivors (the positional step case).
	OpStepSel
	// OpSatHas: R[Dst] = boolean(cn ∈ R[A]) — membership test of the
	// frame's context node in a hoisted satisfaction set; the per-candidate
	// form of a predicate subexpression computed wholesale in the main
	// block.
	OpSatHas
	// OpReturn: finish the current block with R[A] as its result.
	OpReturn
)

var opNames = [...]string{
	OpConst: "const", OpMove: "move", OpCtxNode: "ctxnode", OpRootSet: "rootset",
	OpEmptySet: "emptyset", OpPosition: "position", OpLast: "last",
	OpArith: "arith", OpNegate: "negate", OpCompare: "compare",
	OpCoerceBool: "coercebool", OpCall: "call", OpJump: "jump",
	OpJumpIfTrue: "jumptrue", OpJumpIfFalse: "jumpfalse", OpStep: "step",
	OpStepInv: "stepinv", OpTestFilter: "testfilter", OpTestSet: "testset",
	OpScanCmp:  "scancmp",
	OpUnionSet: "union", OpIntersect: "intersect", OpComplement: "complement",
	OpBoolGate: "boolgate", OpFilterSet: "filterset", OpFilterList: "filterlist",
	OpStepSel: "stepsel", OpSatHas: "sathas", OpReturn: "return",
}

// String returns the opcode's mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// PredKind classifies one entry of a step/filter predicate chain.
type PredKind uint8

// Predicate chain entry kinds, ordered by how statically the compiler
// resolved them.
const (
	// PredIndex selects the K-th candidate — the position() = k
	// specialization.
	PredIndex PredKind = iota
	// PredLast selects the last candidate — the position() = last()
	// specialization.
	PredLast
	// PredSat keeps candidates that are members of the satisfaction set in
	// R[Reg].
	PredSat
	// PredGate empties the candidate list unless boolean(R[Reg]) — a
	// context-uniform predicate hoisted out of the loop.
	PredGate
	// PredBlock evaluates Blocks[Block] per candidate with context
	// 〈z_j, j, m〉 — the generic fallback.
	PredBlock
)

// PredRef is one entry of a predicate chain, applied left to right exactly
// as XPath applies step predicates.
type PredRef struct {
	Kind  PredKind
	K     int // PredIndex: the 1-based candidate index
	Reg   int // PredSat / PredGate: the register holding the set / gate value
	Block int // PredBlock: the block index
}

func (p PredRef) String() string {
	switch p.Kind {
	case PredIndex:
		return fmt.Sprintf("[#%d]", p.K)
	case PredLast:
		return "[#last]"
	case PredSat:
		return fmt.Sprintf("[sat r%d]", p.Reg)
	case PredGate:
		return fmt.Sprintf("[gate r%d]", p.Reg)
	default:
		return fmt.Sprintf("[block b%d]", p.Block)
	}
}

// Instr is one instruction. The operand fields are interpreted per opcode
// (see the Op constants); Preds is the predicate chain of OpStepSel and
// OpFilterList.
type Instr struct {
	Op      Op
	Dst     int
	A, B, C int
	Preds   []PredRef
}

// Program is one compiled query: a flat instruction array with block entry
// points, plus the constant and node-test pools. Programs are immutable
// after Compile and safe for concurrent execution by any number of VMs.
type Program struct {
	// Source is the query text the program was compiled from.
	Source string
	// Code is the flat instruction array.
	Code []Instr
	// Blocks holds entry pcs into Code; block 0 is the main program, the
	// rest are predicate/filter blocks invoked by step instructions.
	Blocks []int
	// Consts is the constant pool (folded scalars and literals).
	Consts []values.Value
	// Tests is the node-test pool referenced by step instructions.
	Tests []syntax.NodeTest
	// NumRegs is the size of the register file.
	NumRegs int
}

// blockEnd returns the pc one past block b's OpReturn.
func (p *Program) blockEnd(b int) int {
	if b+1 < len(p.Blocks) {
		return p.Blocks[b+1]
	}
	return len(p.Code)
}

// Disasm renders the program as a human-readable instruction listing — the
// compiled-engine counterpart of Query.Explain, shown by the CLI's -explain
// flag. The exact format is not part of the API contract.
//
//xpathlint:deterministic
func (p *Program) Disasm() string {
	return p.DisasmAnnotated(nil)
}

// DisasmAnnotated renders the instruction listing with a per-instruction
// annotation appended to each line: annot is called with the block number
// and the global program counter of the instruction, and whatever non-empty
// string it returns is printed after the mnemonic. A nil annot (or an annot
// returning "") yields the plain Disasm listing. EXPLAIN ANALYZE uses it to
// splice observed call counts, cardinalities and timings into the listing.
//
//xpathlint:deterministic
func (p *Program) DisasmAnnotated(annot func(block, pc int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d instruction(s), %d block(s), %d register(s), %d const(s)\n",
		len(p.Code), len(p.Blocks), p.NumRegs, len(p.Consts))
	block := 0
	for pc, in := range p.Code {
		for block < len(p.Blocks) && p.Blocks[block] == pc {
			if block == 0 {
				fmt.Fprintf(&b, "b%d:  (main)\n", block)
			} else {
				fmt.Fprintf(&b, "b%d:\n", block)
			}
			block++
		}
		fmt.Fprintf(&b, "  %3d  %s", pc, p.disasmInstr(in))
		if annot != nil {
			if a := annot(block-1, pc); a != "" {
				b.WriteString(a)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (p *Program) disasmInstr(in Instr) string {
	reg := func(r int) string { return fmt.Sprintf("r%d", r) }
	cst := func(i int) string { return fmt.Sprintf("#%d (%s)", i, values.Render(p.Consts[i])) }
	tst := func(i int) string { return p.Tests[i].String() }
	axis := func(a int) string { return axes.Axis(a).String() }
	preds := func(ps []PredRef) string {
		parts := make([]string, len(ps))
		for i, pr := range ps {
			parts[i] = pr.String()
		}
		return strings.Join(parts, "")
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("const      %s = %s", reg(in.Dst), cst(in.A))
	case OpMove:
		return fmt.Sprintf("move       %s = %s", reg(in.Dst), reg(in.A))
	case OpCtxNode:
		return fmt.Sprintf("ctxnode    %s = {cn}", reg(in.Dst))
	case OpRootSet:
		return fmt.Sprintf("rootset    %s = {root}", reg(in.Dst))
	case OpEmptySet:
		return fmt.Sprintf("emptyset   %s = {}", reg(in.Dst))
	case OpPosition:
		return fmt.Sprintf("position   %s = cp", reg(in.Dst))
	case OpLast:
		return fmt.Sprintf("last       %s = cs", reg(in.Dst))
	case OpArith:
		return fmt.Sprintf("arith      %s = %s %s %s", reg(in.Dst), reg(in.B), syntax.BinOp(in.A), reg(in.C))
	case OpNegate:
		return fmt.Sprintf("negate     %s = -%s", reg(in.Dst), reg(in.A))
	case OpCompare:
		return fmt.Sprintf("compare    %s = %s %s %s", reg(in.Dst), reg(in.B), syntax.BinOp(in.A), reg(in.C))
	case OpCoerceBool:
		return fmt.Sprintf("coercebool %s = boolean(%s)", reg(in.Dst), reg(in.A))
	case OpCall:
		args := make([]string, in.C)
		for i := range args {
			args[i] = reg(in.B + i)
		}
		return fmt.Sprintf("call       %s = %s(%s)", reg(in.Dst), syntax.Func(in.A), strings.Join(args, ", "))
	case OpJump:
		return fmt.Sprintf("jump       -> %d", in.A)
	case OpJumpIfTrue:
		return fmt.Sprintf("jumptrue   %s -> %d", reg(in.B), in.A)
	case OpJumpIfFalse:
		return fmt.Sprintf("jumpfalse  %s -> %d", reg(in.B), in.A)
	case OpStep:
		return fmt.Sprintf("step       %s = %s::%s(%s)", reg(in.Dst), axis(in.A), tst(in.B), reg(in.C))
	case OpStepInv:
		return fmt.Sprintf("stepinv    %s = %s⁻¹(%s)", reg(in.Dst), axis(in.A), reg(in.C))
	case OpTestFilter:
		return fmt.Sprintf("testfilter %s = %s ∩ T(%s)", reg(in.Dst), reg(in.C), tst(in.B))
	case OpTestSet:
		return fmt.Sprintf("testset    %s = T(%s)", reg(in.Dst), tst(in.B))
	case OpScanCmp:
		return fmt.Sprintf("scancmp    %s = {n | strval(n) %s %s}", reg(in.Dst), syntax.BinOp(in.A), cst(in.B))
	case OpUnionSet:
		return fmt.Sprintf("union      %s = %s ∪ %s", reg(in.Dst), reg(in.B), reg(in.C))
	case OpIntersect:
		return fmt.Sprintf("intersect  %s = %s ∩ %s", reg(in.Dst), reg(in.B), reg(in.C))
	case OpComplement:
		return fmt.Sprintf("complement %s = dom \\ %s", reg(in.Dst), reg(in.C))
	case OpBoolGate:
		return fmt.Sprintf("boolgate   %s = %s if %s else {}", reg(in.Dst), reg(in.C), reg(in.B))
	case OpFilterSet:
		return fmt.Sprintf("filterset  %s = %s where b%d", reg(in.Dst), reg(in.C), in.B)
	case OpFilterList:
		return fmt.Sprintf("filterlist %s = %s%s", reg(in.Dst), reg(in.C), preds(in.Preds))
	case OpStepSel:
		return fmt.Sprintf("stepsel    %s = %s::%s(%s)%s", reg(in.Dst), axis(in.A), tst(in.B), reg(in.C), preds(in.Preds))
	case OpSatHas:
		return fmt.Sprintf("sathas     %s = cn ∈ %s", reg(in.Dst), reg(in.A))
	case OpReturn:
		return fmt.Sprintf("return     %s", reg(in.A))
	}
	return fmt.Sprintf("?%d", int(in.Op))
}
