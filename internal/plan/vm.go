package plan

import (
	"fmt"
	"sync"

	"repro/internal/axes"
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Engine evaluates queries by compiling them to flat instruction programs
// and running them on a register VM. It implements engine.Engine and is
// safe for concurrent use: programs are immutable, compiled plans are
// cached per query, and each evaluation checks a machine (register file +
// scratch sets) out of a pool.
type Engine struct {
	plans planCache
	pool  sync.Pool
}

// New returns a compiled-plan engine with an empty plan cache.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "compiled" }

// Prime inserts an externally compiled plan into the engine's cache (used
// by the source-keyed query cache so repeated traffic skips compilation).
func (e *Engine) Prime(q *syntax.Query, p *Program) { e.plans.put(q, p) }

// Plan returns the cached program for q, compiling it on a miss.
func (e *Engine) Plan(q *syntax.Query) (*Program, error) { return e.plans.get(q) }

// Evaluate implements engine.Engine.
func (e *Engine) Evaluate(q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (values.Value, engine.Stats, error) {
	prog, err := e.plans.get(q)
	if err != nil {
		return values.Value{}, engine.Stats{}, err
	}
	m, _ := e.pool.Get().(*machine)
	if m == nil {
		m = &machine{}
	}
	m.reset(prog, doc)
	m.tr = ctx.Tracer
	m.bud = ctx.Budget
	v, err := m.runBlock(0, ctx.Node, ctx.Pos, ctx.Size)
	st := m.st
	if err == nil && v.T == values.KindNodeSet {
		// Detach the result from the machine's reusable arena.
		v = values.NodeSet(v.Set.Clone())
	}
	m.prog, m.doc, m.tr, m.bud = nil, nil, nil, nil
	e.pool.Put(m)
	return v, st, err
}

// machine is one VM instance: the register file, the instrumentation
// counters, and the reusable scratch memory (a set arena and candidate-list
// buffers) that make repeated evaluations allocation-light.
type machine struct {
	prog *Program
	doc  *xmltree.Document
	// lastDoc survives the end-of-Evaluate field clearing so reset can
	// detect document switches and drop document-bound scratch memory.
	lastDoc *xmltree.Document
	regs    []values.Value
	st      engine.Stats

	// arena recycles node sets across evaluations (and, stack-wise, across
	// predicate-block invocations); arenaN is the bump pointer.
	arena  []*xmltree.Set
	arenaN int
	// bufs is a free list of candidate-list buffers for OpStepSel and
	// OpFilterList.
	bufs [][]*xmltree.Node
	// sc is the axis-kernel scratch arena threaded through every step and
	// inverse-step instruction of the program; it rebinds itself when the
	// machine is reset onto a different document.
	sc axes.Scratch
	// tr, when non-nil, receives one KindOpcode span per executed
	// instruction. The nil case is the hot path: one predicted branch per
	// instruction and nothing else (pinned by TestWarmEvaluateAllocs).
	tr trace.Tracer
	// bud, when non-nil, is charged one step per block entry — the main
	// block once per evaluation, predicate blocks once per candidate — so a
	// positional predicate loop observes cancellation per candidate. The nil
	// case is one predicted branch (pinned by TestWarmEvaluateAllocs with a
	// live budget too).
	bud *budget.Budget
}

func (m *machine) reset(p *Program, doc *xmltree.Document) {
	docChanged := m.lastDoc != nil && m.lastDoc != doc
	m.prog, m.doc, m.lastDoc = p, doc, doc
	if cap(m.regs) < p.NumRegs {
		m.regs = make([]values.Value, p.NumRegs)
	} else {
		// Clear the whole backing array, not just the visible prefix: a
		// pooled machine must not pin a prior document through stale
		// high-register values of a larger earlier program.
		full := m.regs[:cap(m.regs)]
		for i := range full {
			full[i] = values.Value{}
		}
		m.regs = m.regs[:p.NumRegs]
	}
	if docChanged {
		// Arena sets are sized for (and reference) the old document, and
		// candidate buffers keep node pointers beyond their zero length.
		m.arena = nil
		m.bufs = nil
		m.sc.Release()
	}
	m.arenaN = 0
	m.st = engine.Stats{}
}

// newSet returns a cleared set from the arena (allocating on first use).
// Sets above the caller's saved arena mark may be recycled once the caller
// restores the mark, so only values consumed before the restore may live in
// them.
func (m *machine) newSet() *xmltree.Set {
	if m.arenaN < len(m.arena) {
		s := m.arena[m.arenaN]
		m.arenaN++
		s.Clear()
		return s
	}
	s := xmltree.NewSet(m.doc)
	m.arena = append(m.arena, s)
	m.arenaN++
	return s
}

func (m *machine) getBuf() []*xmltree.Node {
	if n := len(m.bufs); n > 0 {
		b := m.bufs[n-1]
		m.bufs = m.bufs[:n-1]
		return b
	}
	return nil
}

func (m *machine) putBuf(b []*xmltree.Node) { m.bufs = append(m.bufs, b[:0]) }

// runBlock executes one block in the context 〈cn, cp, cs〉 (cp/cs 0 = the
// wildcard "∗") and returns its result value.
//
//xpathlint:noalloc
func (m *machine) runBlock(block int, cn *xmltree.Node, cp, cs int) (values.Value, error) {
	if b := m.bud; b != nil {
		if err := b.Step(1); err != nil {
			return values.Value{}, err
		}
	}
	m.st.ContextsEvaluated++
	code := m.prog.Code
	R := m.regs
	tr := m.tr
	for pc := m.prog.Blocks[block]; pc < len(code); pc++ {
		in := &code[pc]
		var t0 int64
		var opPC, inCard int
		if tr != nil {
			t0, opPC, inCard = trace.Now(), pc, m.opInputCard(in)
		}
		switch in.Op {
		case OpConst:
			R[in.Dst] = m.prog.Consts[in.A]
		case OpMove:
			R[in.Dst] = R[in.A]
		case OpCtxNode:
			s := m.newSet()
			s.Add(cn)
			R[in.Dst] = values.NodeSet(s)
		case OpRootSet:
			s := m.newSet()
			s.Add(m.doc.Root())
			R[in.Dst] = values.NodeSet(s)
		case OpEmptySet:
			R[in.Dst] = values.NodeSet(m.newSet())
		case OpPosition:
			R[in.Dst] = values.Number(float64(cp))
		case OpLast:
			R[in.Dst] = values.Number(float64(cs))
		case OpArith:
			R[in.Dst] = values.Number(values.Arith(syntax.BinOp(in.A),
				values.ToNumber(R[in.B]), values.ToNumber(R[in.C])))
		case OpNegate:
			R[in.Dst] = values.Number(-values.ToNumber(R[in.A]))
		case OpCompare:
			R[in.Dst] = values.Boolean(values.Compare(syntax.BinOp(in.A), R[in.B], R[in.C]))
		case OpCoerceBool:
			R[in.Dst] = values.Boolean(values.ToBool(R[in.A]))
		case OpCall:
			v, err := values.Call(syntax.Func(in.A), R[in.B:in.B+in.C],
				values.CallEnv{Doc: m.doc, Node: cn})
			if err != nil {
				return values.Value{}, err
			}
			R[in.Dst] = v
		case OpJump:
			pc = in.A - 1
		case OpJumpIfTrue:
			if values.ToBool(R[in.B]) {
				pc = in.A - 1
			}
		case OpJumpIfFalse:
			if !values.ToBool(R[in.B]) {
				pc = in.A - 1
			}
		case OpStep:
			R[in.Dst] = values.NodeSet(m.step(in, R[in.C].Set))
		case OpStepInv:
			m.st.AxisCalls++
			s := m.newSet()
			axes.ApplyInverseInto(s, axes.Axis(in.A), R[in.C].Set, &m.sc)
			R[in.Dst] = values.NodeSet(s)
		case OpTestFilter:
			s := R[in.C].Set
			if in.Dst != in.C {
				fresh := m.newSet()
				fresh.CopyFrom(s)
				s = fresh
			}
			s.IntersectWith(engine.TestSet(m.doc, m.prog.Tests[in.B]))
			R[in.Dst] = values.NodeSet(s)
		case OpTestSet:
			R[in.Dst] = values.NodeSet(engine.TestSet(m.doc, m.prog.Tests[in.B]))
		case OpScanCmp:
			R[in.Dst] = values.NodeSet(m.scanCmp(in))
		case OpUnionSet:
			s := R[in.B].Set
			if in.Dst != in.B {
				fresh := m.newSet()
				fresh.UnionWith(s)
				s = fresh
			}
			s.UnionWith(R[in.C].Set)
			R[in.Dst] = values.NodeSet(s)
		case OpIntersect:
			s := R[in.B].Set
			if in.Dst != in.B {
				fresh := m.newSet()
				fresh.UnionWith(s)
				s = fresh
			}
			s.IntersectWith(R[in.C].Set)
			R[in.Dst] = values.NodeSet(s)
		case OpComplement:
			s := m.newSet()
			s.UnionWith(m.doc.AllNodes())
			s.SubtractWith(R[in.C].Set)
			R[in.Dst] = values.NodeSet(s)
		case OpBoolGate:
			if values.ToBool(R[in.B]) {
				R[in.Dst] = R[in.C]
			} else {
				R[in.Dst] = values.NodeSet(m.newSet())
			}
		case OpFilterSet:
			s, err := m.filterSet(in, R[in.C].Set)
			if err != nil {
				return values.Value{}, err
			}
			R[in.Dst] = values.NodeSet(s)
		case OpFilterList:
			s, err := m.filterList(in, R[in.C].Set)
			if err != nil {
				return values.Value{}, err
			}
			R[in.Dst] = values.NodeSet(s)
		case OpStepSel:
			s, err := m.stepSel(in, R[in.C].Set)
			if err != nil {
				return values.Value{}, err
			}
			R[in.Dst] = values.NodeSet(s)
		case OpSatHas:
			R[in.Dst] = values.Boolean(R[in.A].Set.Has(cn))
		case OpReturn:
			if tr != nil {
				m.emitOp(block, opPC, in, inCard, t0)
			}
			return R[in.A], nil
		default:
			//xpathlint:ignore noalloc cold error path, unreachable for compiled programs
			return values.Value{}, fmt.Errorf("plan: vm: unknown opcode %v", in.Op)
		}
		if tr != nil {
			m.emitOp(block, opPC, in, inCard, t0)
		}
	}
	//xpathlint:ignore noalloc cold error path, every compiled block ends in OpReturn
	return values.Value{}, fmt.Errorf("plan: vm: block %d fell off the end", block)
}

// setCard returns the cardinality of a node-set value, CardUnknown for
// scalars and empty registers.
//
//xpathlint:noalloc
func setCard(v values.Value) int {
	if v.T == values.KindNodeSet && v.Set != nil {
		return v.Set.Len()
	}
	return trace.CardUnknown
}

// opInputCard returns the cardinality of the instruction's node-set input
// register, CardUnknown when the opcode has none (constants, context
// loads). Only called when tracing is on.
//
//xpathlint:noalloc
func (m *machine) opInputCard(in *Instr) int {
	switch in.Op {
	case OpConst, OpCtxNode, OpRootSet, OpEmptySet, OpPosition, OpLast,
		OpTestSet, OpScanCmp, OpJump:
		return trace.CardUnknown
	case OpMove, OpNegate, OpCoerceBool, OpSatHas, OpReturn:
		return setCard(m.regs[in.A])
	case OpUnionSet, OpIntersect:
		return setCard(m.regs[in.B])
	case OpJumpIfTrue, OpJumpIfFalse:
		return setCard(m.regs[in.B])
	default:
		return setCard(m.regs[in.C])
	}
}

// emitOp reports one executed instruction as a KindOpcode span; the Out
// cardinality reads the destination register (for OpReturn, the returned
// register) after execution.
//
//xpathlint:noalloc
func (m *machine) emitOp(block, pc int, in *Instr, inCard int, t0 int64) {
	if m.tr == nil {
		return
	}
	dst := in.Dst
	if in.Op == OpReturn {
		dst = in.A
	}
	m.tr.Emit(trace.Event{
		Kind: trace.KindOpcode, Name: in.Op.String(), Block: block, PC: pc,
		In: inCard, Out: setCard(m.regs[dst]), Ns: trace.Now() - t0,
		HighWater: m.sc.HighWater(),
	})
}

// step executes a fused predicate-free location step. Singleton sources
// (the common case inside predicate blocks) walk the per-node neighborhood
// instead of paying the O(|D|) set-at-a-time scan.
//
//xpathlint:noalloc
func (m *machine) step(in *Instr, src *xmltree.Set) *xmltree.Set {
	axis, test := axes.Axis(in.A), m.prog.Tests[in.B]
	if src.Len() == 1 {
		m.st.AxisCalls++
		buf := m.getBuf()
		z := engine.Candidates(axis, test, src.First(), buf[:0])
		out := m.newSet()
		for _, n := range z {
			out.Add(n)
		}
		m.putBuf(z)
		return out
	}
	out := m.newSet()
	engine.StepImageInto(&m.st, out, axis, test, src, &m.sc)
	return out
}

// scanCmp executes the whole-document string-value comparison scan.
func (m *machine) scanCmp(in *Instr) *xmltree.Set {
	out := m.newSet()
	op := syntax.BinOp(in.A)
	want := m.prog.Consts[in.B]
	for _, n := range m.doc.Nodes() {
		if values.Compare(op, values.String(n.StringValue()), want) {
			out.Add(n)
		}
	}
	return out
}

// filterSet keeps the members of src satisfying the block at the wildcard
// context 〈n, ∗, ∗〉 — generic position-independent predicate filtering.
func (m *machine) filterSet(in *Instr, src *xmltree.Set) (*xmltree.Set, error) {
	out := m.newSet()
	var err error
	src.ForEach(func(n *xmltree.Node) {
		if err != nil {
			return
		}
		mark := m.arenaN
		v, e := m.runBlock(in.B, n, 0, 0)
		if e != nil {
			err = e
			return
		}
		keep := values.ToBool(v)
		m.arenaN = mark
		if keep {
			out.Add(n)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// applyChain runs a predicate chain over an ordered candidate list,
// left-to-right with positions recomputed per predicate (the step/filter
// predicate semantics of Definition 2).
//
//xpathlint:noalloc
func (m *machine) applyChain(preds []PredRef, z []*xmltree.Node) ([]*xmltree.Node, error) {
	for _, pr := range preds {
		if len(z) == 0 {
			break
		}
		switch pr.Kind {
		case PredIndex:
			if pr.K <= len(z) {
				z = z[pr.K-1 : pr.K]
			} else {
				z = z[:0]
			}
		case PredLast:
			z = z[len(z)-1:]
		case PredSat:
			sat := m.regs[pr.Reg].Set
			kept := z[:0]
			for _, n := range z {
				if sat.Has(n) {
					kept = append(kept, n)
				}
			}
			z = kept
		case PredGate:
			if !values.ToBool(m.regs[pr.Reg]) {
				z = z[:0]
			}
		case PredBlock:
			size := len(z)
			kept := z[:0]
			for j, n := range z {
				mark := m.arenaN
				v, err := m.runBlock(pr.Block, n, j+1, size)
				if err != nil {
					return nil, err
				}
				keep := values.ToBool(v)
				m.arenaN = mark
				if keep {
					kept = append(kept, n)
				}
			}
			z = kept
		}
	}
	return z, nil
}

// filterList applies filter-expression predicates to src in document order.
func (m *machine) filterList(in *Instr, src *xmltree.Set) (*xmltree.Set, error) {
	buf := m.getBuf()
	z := src.AppendTo(buf[:0])
	if cap(z) > cap(buf) {
		buf = z
	}
	z, err := m.applyChain(in.Preds, z)
	if err != nil {
		m.putBuf(buf)
		return nil, err
	}
	out := m.newSet()
	for _, n := range z {
		out.Add(n)
	}
	m.putBuf(buf)
	return out, nil
}

// stepSel executes a positional location step: per context node, the
// ordered candidate list of χ::t runs through the predicate chain, and the
// survivors are united.
func (m *machine) stepSel(in *Instr, src *xmltree.Set) (*xmltree.Set, error) {
	axis, test := axes.Axis(in.A), m.prog.Tests[in.B]
	out := m.newSet()
	buf := m.getBuf()
	var err error
	src.ForEach(func(x *xmltree.Node) {
		if err != nil {
			return
		}
		m.st.AxisCalls++
		z := engine.Candidates(axis, test, x, buf[:0])
		if cap(z) > cap(buf) {
			buf = z
		}
		z, err = m.applyChain(in.Preds, z)
		if err != nil {
			return
		}
		for _, n := range z {
			out.Add(n)
		}
	})
	m.putBuf(buf)
	if err != nil {
		return nil, err
	}
	return out, nil
}
