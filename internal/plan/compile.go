package plan

import (
	"fmt"
	"math"

	"repro/internal/axes"
	"repro/internal/syntax"
	"repro/internal/values"
)

// Compile lowers a normalized query into a flat instruction program. The
// compiler performs constant folding, dead-branch elimination, static
// specialization of position() = k / position() = last() predicates, and
// satisfaction-set compilation of eligible position-independent predicates
// (see sat.go); everything the six interpreting engines re-derive per
// evaluation happens here exactly once.
func Compile(q *syntax.Query) (p *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				p, err = nil, fmt.Errorf("plan: %s", string(ce))
				return
			}
			panic(r)
		}
	}()
	c := &compiler{q: q}
	main := c.newBlock() // block 0 = main program
	c.satHoist = main
	res := c.compileExpr(main, q.Root)
	c.emit(main, Instr{Op: OpReturn, A: res})
	return c.link(), nil
}

// compileError aborts compilation through the recover in Compile.
type compileError string

// blockBuf accumulates one block's instructions with block-relative jump
// targets; link concatenates the buffers and absolutizes the targets.
type blockBuf struct {
	id   int
	code []Instr
}

type compiler struct {
	q      *syntax.Query
	blocks []*blockBuf
	consts []values.Value
	tests  []syntax.NodeTest
	nreg   int
	// satHoist is the main block: satisfaction sets for subexpressions of
	// per-candidate predicate blocks are hoisted here, so they are computed
	// once per evaluation instead of once per candidate (the compile-time
	// analogue of MINCONTEXT's context-value tables for Relev = {cn} nodes).
	satHoist *blockBuf
}

func (c *compiler) fail(format string, args ...any) {
	panic(compileError(fmt.Sprintf(format, args...)))
}

func (c *compiler) newBlock() *blockBuf {
	b := &blockBuf{id: len(c.blocks)}
	c.blocks = append(c.blocks, b)
	return b
}

func (c *compiler) newReg() int {
	c.nreg++
	return c.nreg - 1
}

func (c *compiler) emit(b *blockBuf, in Instr) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

func (c *compiler) constIdx(v values.Value) int {
	for i, have := range c.consts {
		if have.T == v.T && values.Equal(have, v) {
			return i
		}
	}
	c.consts = append(c.consts, v)
	return len(c.consts) - 1
}

func (c *compiler) testIdx(t syntax.NodeTest) int {
	for i, have := range c.tests {
		if have == t {
			return i
		}
	}
	c.tests = append(c.tests, t)
	return len(c.tests) - 1
}

// link concatenates the block buffers into the final flat program,
// absolutizing jump targets (jumps never cross block boundaries).
func (c *compiler) link() *Program {
	p := &Program{
		Source:  c.q.Source,
		Consts:  c.consts,
		Tests:   c.tests,
		NumRegs: c.nreg,
		Blocks:  make([]int, len(c.blocks)),
	}
	for i, b := range c.blocks {
		start := len(p.Code)
		p.Blocks[i] = start
		for _, in := range b.code {
			switch in.Op {
			case OpJump, OpJumpIfTrue, OpJumpIfFalse:
				in.A += start
			}
			p.Code = append(p.Code, in)
		}
	}
	return p
}

// emitConst emits a constant load and returns its register.
func (c *compiler) emitConst(b *blockBuf, v values.Value) int {
	dst := c.newReg()
	c.emit(b, Instr{Op: OpConst, Dst: dst, A: c.constIdx(v)})
	return dst
}

// compileExpr emits code evaluating e in the current frame's context and
// returns the result register.
func (c *compiler) compileExpr(b *blockBuf, e syntax.Expr) int {
	if v, ok := fold(e); ok {
		return c.emitConst(b, v)
	}
	switch e := e.(type) {
	case *syntax.Negate:
		r := c.compileExpr(b, e.E)
		dst := c.newReg()
		c.emit(b, Instr{Op: OpNegate, Dst: dst, A: r})
		return dst
	case *syntax.Binary:
		return c.compileBinary(b, e)
	case *syntax.Call:
		return c.compileCall(b, e)
	case *syntax.Union:
		return c.compileUnion(b, e)
	case *syntax.Path:
		return c.compilePath(b, e)
	}
	c.fail("compileExpr: unhandled expression %T", e)
	return 0
}

// compileBinary lowers a binary operator. and/or get short-circuit jumps;
// a constant-folded operand eliminates the dead branch entirely (operands
// are side-effect free, so this is always sound).
func (c *compiler) compileBinary(b *blockBuf, e *syntax.Binary) int {
	if e.Op == syntax.OpAnd || e.Op == syntax.OpOr {
		return c.compileBool(b, e)
	}
	l := c.compileExpr(b, e.L)
	r := c.compileExpr(b, e.R)
	dst := c.newReg()
	op := OpArith
	if e.Op.IsRelational() {
		op = OpCompare
	}
	c.emit(b, Instr{Op: op, Dst: dst, A: int(e.Op), B: l, C: r})
	return dst
}

func (c *compiler) compileBool(b *blockBuf, e *syntax.Binary) int {
	isOr := e.Op == syntax.OpOr
	// Dead-branch elimination: a folded operand decides the result or
	// reduces the connective to boolean(other side).
	if v, ok := fold(e.L); ok {
		if values.ToBool(v) == isOr {
			return c.emitConst(b, values.Boolean(isOr))
		}
		return c.coerceBool(b, c.compileExpr(b, e.R))
	}
	if v, ok := fold(e.R); ok {
		if values.ToBool(v) == isOr {
			return c.emitConst(b, values.Boolean(isOr))
		}
		return c.coerceBool(b, c.compileExpr(b, e.L))
	}
	// Short-circuit: evaluate L into dst; skip R when L decides.
	dst := c.newReg()
	l := c.compileBoolOperand(b, e.L)
	c.emit(b, Instr{Op: OpCoerceBool, Dst: dst, A: l})
	jop := OpJumpIfFalse
	if isOr {
		jop = OpJumpIfTrue
	}
	j := c.emit(b, Instr{Op: jop, B: dst})
	r := c.compileBoolOperand(b, e.R)
	c.emit(b, Instr{Op: OpCoerceBool, Dst: dst, A: r})
	b.code[j].A = len(b.code)
	return dst
}

// compileBoolOperand compiles one and/or operand. Inside a per-candidate
// predicate block, a position-independent operand of satisfiable shape is
// replaced by a membership test against a satisfaction set hoisted into the
// main block: the set is computed once per evaluation, and each candidate
// pays O(1) instead of re-walking the subexpression (this is what keeps
// mixed predicates like "position() > last()*0.5 or self::* = 100" from
// re-evaluating their path half per 〈context, candidate〉 pair).
func (c *compiler) compileBoolOperand(b *blockBuf, e syntax.Expr) int {
	if b != c.satHoist && !c.q.Relev[e.ID()].NeedsPosition() && c.satisfiable(e) {
		sat := c.emitSat(c.satHoist, e)
		dst := c.newReg()
		c.emit(b, Instr{Op: OpSatHas, Dst: dst, A: sat})
		return dst
	}
	return c.compileExpr(b, e)
}

func (c *compiler) coerceBool(b *blockBuf, r int) int {
	dst := c.newReg()
	c.emit(b, Instr{Op: OpCoerceBool, Dst: dst, A: r})
	return dst
}

func (c *compiler) compileCall(b *blockBuf, e *syntax.Call) int {
	switch e.Fn {
	case syntax.FnPosition:
		dst := c.newReg()
		c.emit(b, Instr{Op: OpPosition, Dst: dst})
		return dst
	case syntax.FnLast:
		dst := c.newReg()
		c.emit(b, Instr{Op: OpLast, Dst: dst})
		return dst
	}
	regs := make([]int, len(e.Args))
	for i, a := range e.Args {
		regs[i] = c.compileExpr(b, a)
	}
	// values.Call takes a contiguous register window.
	base := c.nreg
	for range regs {
		c.newReg()
	}
	for i, r := range regs {
		c.emit(b, Instr{Op: OpMove, Dst: base + i, A: r})
	}
	dst := c.newReg()
	c.emit(b, Instr{Op: OpCall, Dst: dst, A: int(e.Fn), B: base, C: len(regs)})
	return dst
}

func (c *compiler) compileUnion(b *blockBuf, e *syntax.Union) int {
	cur := c.compileExpr(b, e.Paths[0])
	for _, p := range e.Paths[1:] {
		r := c.compileExpr(b, p)
		dst := c.newReg()
		c.emit(b, Instr{Op: OpUnionSet, Dst: dst, B: cur, C: r})
		cur = dst
	}
	return cur
}

// compilePath lowers a location path: head (root, context node, or filter
// expression with its predicates), then the step chain.
func (c *compiler) compilePath(b *blockBuf, p *syntax.Path) int {
	var cur int
	switch {
	case p.Abs:
		cur = c.newReg()
		c.emit(b, Instr{Op: OpRootSet, Dst: cur})
	case p.Filter != nil:
		cur = c.compileExpr(b, p.Filter)
		if len(p.FPreds) > 0 {
			chain, empty := c.predChain(p.FPreds)
			if empty {
				dst := c.newReg()
				c.emit(b, Instr{Op: OpEmptySet, Dst: dst})
				return dst
			}
			if len(chain) > 0 {
				dst := c.newReg()
				c.emit(b, Instr{Op: OpFilterList, Dst: dst, C: cur, Preds: chain})
				cur = dst
			}
		}
	default:
		cur = c.newReg()
		c.emit(b, Instr{Op: OpCtxNode, Dst: cur})
	}
	for _, s := range p.Steps {
		cur = c.compileStep(b, s, cur)
	}
	return cur
}

// predClass is the compile-time classification of one predicate.
type predClass struct {
	kind  PredKind
	drop  bool // constant-true predicate: no code needed
	empty bool // constant-false predicate: the whole step selects nothing
	k     int  // PredIndex
	reg   int  // PredSat / PredGate
	block int  // PredBlock
	pos   bool // PredBlock only: predicate depends on cp/cs
}

// classifyPred resolves one predicate as statically as possible. Support
// code (satisfaction sets, hoisted uniform gate values) is emitted into the
// main block c.satHoist, never into the block being compiled.
func (c *compiler) classifyPred(pred syntax.Expr) predClass {
	if v, ok := fold(pred); ok {
		if values.ToBool(v) {
			return predClass{drop: true}
		}
		return predClass{empty: true}
	}
	if k, last, bad, ok := matchPositionEq(pred); ok {
		if bad {
			return predClass{empty: true}
		}
		if last {
			return predClass{kind: PredLast}
		}
		return predClass{kind: PredIndex, k: k}
	}
	needsPos := c.q.Relev[pred.ID()].NeedsPosition()
	if !needsPos {
		// Gate values and satisfaction sets are context-independent, so
		// they are hoisted into the main block: computed once per
		// evaluation even when this step sits inside a per-candidate
		// predicate block. (A skipped short-circuit branch skips both the
		// hoisted code and its only readers, so defs still precede uses.)
		if ctxFree(pred) {
			// Context-uniform predicate: evaluate once, gate the whole step.
			r := c.coerceBool(c.satHoist, c.compileExpr(c.satHoist, pred))
			return predClass{kind: PredGate, reg: r}
		}
		if reg, ok := c.trySat(c.satHoist, pred); ok {
			return predClass{kind: PredSat, reg: reg}
		}
	}
	block := c.compileBlock(pred)
	return predClass{kind: PredBlock, block: block, pos: needsPos}
}

// compileBlock compiles an expression as a standalone block evaluated per
// context; returns the block index.
func (c *compiler) compileBlock(e syntax.Expr) int {
	nb := c.newBlock()
	r := c.compileExpr(nb, e)
	c.emit(nb, Instr{Op: OpReturn, A: r})
	return nb.id
}

// predChain classifies a predicate list into a PredRef chain. empty reports
// that some predicate is constant-false (the result is the empty set).
func (c *compiler) predChain(preds []syntax.Expr) (chain []PredRef, empty bool) {
	for _, pred := range preds {
		pc := c.classifyPred(pred)
		switch {
		case pc.drop:
			continue
		case pc.empty:
			return nil, true
		}
		chain = append(chain, PredRef{Kind: pc.kind, K: pc.k, Reg: pc.reg, Block: pc.block})
	}
	return chain, false
}

// compileStep lowers one location step χ::t[e1]…[em] applied to the node
// set in src. Steps whose predicates are all position-independent run
// set-at-a-time over the whole image (satisfaction-set intersections, gates
// and per-node filters); a positional predicate switches the step to the
// per-context candidate loop of OpStepSel, with position() = k / last()
// predicates specialized to direct index selection.
func (c *compiler) compileStep(b *blockBuf, s *syntax.Step, src int) int {
	axisI, testI := int(s.Axis), c.testIdx(s.Test)
	classes := make([]predClass, 0, len(s.Preds))
	positional := false
	for _, pred := range s.Preds {
		pc := c.classifyPred(pred)
		if pc.empty {
			dst := c.newReg()
			c.emit(b, Instr{Op: OpEmptySet, Dst: dst})
			return dst
		}
		if pc.drop {
			continue
		}
		if pc.kind == PredIndex || pc.kind == PredLast || (pc.kind == PredBlock && pc.pos) {
			positional = true
		}
		classes = append(classes, pc)
	}

	if positional {
		chain := make([]PredRef, len(classes))
		for i, pc := range classes {
			chain[i] = PredRef{Kind: pc.kind, K: pc.k, Reg: pc.reg, Block: pc.block}
		}
		dst := c.newReg()
		c.emit(b, Instr{Op: OpStepSel, Dst: dst, A: axisI, B: testI, C: src, Preds: chain})
		return dst
	}

	// Whole-image mode: one fused axis+test image, then set-at-a-time
	// filtering. (For position-independent predicates, filtering the union
	// image equals filtering per context node and re-uniting.)
	cur := c.newReg()
	c.emit(b, Instr{Op: OpStep, Dst: cur, A: axisI, B: testI, C: src})
	for _, pc := range classes {
		switch pc.kind {
		case PredSat:
			// In place: OpStep produced an owned set.
			c.emit(b, Instr{Op: OpIntersect, Dst: cur, B: cur, C: pc.reg})
		case PredGate:
			c.emit(b, Instr{Op: OpBoolGate, Dst: cur, B: pc.reg, C: cur})
		default: // PredBlock, position-independent
			dst := c.newReg()
			c.emit(b, Instr{Op: OpFilterSet, Dst: dst, B: pc.block, C: cur})
			cur = dst
		}
	}
	return cur
}

// matchPositionEq recognizes the normalized positional shorthands
// position() = k and position() = last(). bad reports a statically
// unsatisfiable index (k < 1 or non-integral).
func matchPositionEq(e syntax.Expr) (k int, last, bad, ok bool) {
	bin, isBin := e.(*syntax.Binary)
	if !isBin || bin.Op != syntax.OpEq {
		return 0, false, false, false
	}
	l, r := bin.L, bin.R
	if !isCallOf(l, syntax.FnPosition) {
		l, r = r, l
	}
	if !isCallOf(l, syntax.FnPosition) {
		return 0, false, false, false
	}
	if isCallOf(r, syntax.FnLast) {
		return 0, true, false, true
	}
	if num, isNum := r.(*syntax.NumberLit); isNum {
		if num.Val < 1 || num.Val != math.Trunc(num.Val) {
			return 0, false, true, true
		}
		return int(num.Val), false, false, true
	}
	return 0, false, false, false
}

func isCallOf(e syntax.Expr, fn syntax.Func) bool {
	call, ok := e.(*syntax.Call)
	return ok && call.Fn == fn && len(call.Args) == 0
}

// ctxFree reports whether the expression's value is independent of the
// evaluation context entirely (node, position and size) — such predicates
// gate the whole step instead of being re-evaluated per candidate. This is
// finer than Relev(N): the §3.1 analysis assigns {'cn'} to every location
// path, including absolute ones.
func ctxFree(e syntax.Expr) bool {
	switch e := e.(type) {
	case *syntax.NumberLit, *syntax.StringLit:
		return true
	case *syntax.Negate:
		return ctxFree(e.E)
	case *syntax.Binary:
		return ctxFree(e.L) && ctxFree(e.R)
	case *syntax.Union:
		for _, p := range e.Paths {
			if !ctxFree(p) {
				return false
			}
		}
		return true
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnPosition, syntax.FnLast, syntax.FnLang:
			return false
		case syntax.FnString, syntax.FnNumber, syntax.FnStringLength,
			syntax.FnNormalizeSpace, syntax.FnLocalName, syntax.FnName:
			// The zero-argument forms read the context node.
			if len(e.Args) == 0 {
				return false
			}
		}
		for _, a := range e.Args {
			if !ctxFree(a) {
				return false
			}
		}
		return true
	case *syntax.Path:
		// Step predicates and filter predicates see step-local contexts, so
		// only the path's own starting point can leak the outer context in.
		if e.Filter != nil {
			return ctxFree(e.Filter)
		}
		return e.Abs
	}
	return false
}

// fold evaluates a context- and document-independent scalar subexpression
// at compile time. Functions touching the document (id) or the context
// (lang, the zero-argument string forms, position, last) are excluded, as
// is anything containing a location path.
func fold(e syntax.Expr) (values.Value, bool) {
	switch e := e.(type) {
	case *syntax.NumberLit:
		return values.Number(e.Val), true
	case *syntax.StringLit:
		return values.String(e.Val), true
	case *syntax.Negate:
		if v, ok := fold(e.E); ok {
			return values.Number(-values.ToNumber(v)), true
		}
	case *syntax.Binary:
		l, okL := fold(e.L)
		if !okL {
			return values.Value{}, false
		}
		r, okR := fold(e.R)
		if !okR {
			return values.Value{}, false
		}
		switch {
		case e.Op == syntax.OpOr:
			return values.Boolean(values.ToBool(l) || values.ToBool(r)), true
		case e.Op == syntax.OpAnd:
			return values.Boolean(values.ToBool(l) && values.ToBool(r)), true
		case e.Op.IsRelational():
			return values.Boolean(values.Compare(e.Op, l, r)), true
		default:
			return values.Number(values.Arith(e.Op, values.ToNumber(l), values.ToNumber(r))), true
		}
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnPosition, syntax.FnLast, syntax.FnID, syntax.FnLang:
			return values.Value{}, false
		case syntax.FnString, syntax.FnNumber, syntax.FnStringLength,
			syntax.FnNormalizeSpace, syntax.FnLocalName, syntax.FnName:
			if len(e.Args) == 0 {
				return values.Value{}, false
			}
		}
		args := make([]values.Value, len(e.Args))
		for i, a := range e.Args {
			v, ok := fold(a)
			if !ok {
				return values.Value{}, false
			}
			args[i] = v
		}
		v, err := values.Call(e.Fn, args, values.CallEnv{})
		if err != nil {
			return values.Value{}, false
		}
		return v, true
	}
	return values.Value{}, false
}

// axisHasInverse reports whether backward propagation can run over the
// axis. The id-"axis" is excluded: its inverse is a whole-document string
// scan with subtly different root handling, so id steps stay on the
// forward/generic path.
func axisHasInverse(a axes.Axis) bool { return a != axes.ID }
