package plan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/values"
	"repro/internal/workload"
)

// TestSourceCacheProperty: for every query in the workload matrix, a
// SourceCache hit must return the same entry as the first miss, and
// evaluating the cached plan must produce exactly the result of a cold
// compile — the plan-cache correctness property of EXPERIMENTS.md §E14.
func TestSourceCacheProperty(t *testing.T) {
	cache := NewSourceCache(0)
	doc := workload.Scaled(80)
	eng := New()
	for _, src := range workloadQueries() {
		cold, err := cache.Get(src)
		if err != nil {
			t.Fatalf("cold Get(%q): %v", src, err)
		}
		warm, err := cache.Get(src)
		if err != nil {
			t.Fatalf("warm Get(%q): %v", src, err)
		}
		if warm != cold {
			t.Errorf("%q: cache hit returned a different entry", src)
		}
		eng.Prime(cold.Query, cold.Prog)
		got, _, err := eng.Evaluate(cold.Query, doc, engine.RootContext(doc))
		if err != nil {
			t.Fatalf("cached eval %q: %v", src, err)
		}
		freshQ := mustCompileQuery(t, src)
		want, _, err := New().Evaluate(freshQ, doc, engine.RootContext(doc))
		if err != nil {
			t.Fatalf("cold eval %q: %v", src, err)
		}
		if !values.Equal(got, want) {
			t.Errorf("%q: cached result %s != cold result %s",
				src, values.Render(got), values.Render(want))
		}
	}
}

// TestSourceCacheConcurrent: concurrent misses for the same source converge
// on one entry; the cache never returns an error or a divergent plan under
// contention.
func TestSourceCacheConcurrent(t *testing.T) {
	cache := NewSourceCache(64)
	const goroutines = 16
	srcs := workloadQueries()
	var wg sync.WaitGroup
	entries := make([][]*CachedQuery, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			entries[g] = make([]*CachedQuery, len(srcs))
			for i, src := range srcs {
				e, err := cache.Get(src)
				if err != nil {
					t.Errorf("Get(%q): %v", src, err)
					return
				}
				entries[g][i] = e
			}
		}(g)
	}
	wg.Wait()
	for i := range srcs {
		for g := 1; g < goroutines; g++ {
			if entries[g][i] != entries[0][i] {
				t.Errorf("%q: goroutines saw different cache entries", srcs[i])
			}
		}
	}
}

// TestSourceCacheBound: the cache stays within its capacity under churn.
func TestSourceCacheBound(t *testing.T) {
	cache := NewSourceCache(8)
	for i := 0; i < 50; i++ {
		if _, err := cache.Get(fmt.Sprintf(`/child::a[%d]`, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if n := cache.Len(); n > 8 {
		t.Errorf("cache grew to %d entries, cap 8", n)
	}
}

// TestSourceCacheLRU pins the eviction policy: a full cache displaces its
// least recently used entry, never the hottest one. (The first version of
// this cache evicted an arbitrary map entry at capacity, so a full cache
// serving a hot working set could silently drop its hottest plan on any
// insert; the recency stamps make eviction deterministic.)
func TestSourceCacheLRU(t *testing.T) {
	cache := NewSourceCache(3)
	srcs := []string{`/child::a`, `/child::b`, `/child::c`}
	for _, src := range srcs {
		if _, err := cache.Get(src); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a and c so b is the least recently used entry.
	for _, src := range []string{srcs[0], srcs[2]} {
		if _, err := cache.Get(src); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cache.Get(`/child::d`); err != nil { // displaces exactly one entry
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Fatalf("cache has %d entries after eviction, want 3", cache.Len())
	}
	for _, want := range []string{srcs[0], srcs[2], `/child::d`} {
		if !cache.Contains(want) {
			t.Errorf("recently used %q was evicted", want)
		}
	}
	if cache.Contains(srcs[1]) {
		t.Errorf("LRU entry %q survived eviction", srcs[1])
	}
	if got := cache.Evictions(); got != 1 {
		t.Errorf("Evictions() = %d, want 1", got)
	}
}

// TestSourceCacheCounters checks the hit/miss accessors: misses equal the
// distinct sources compiled, hits the repeat traffic, and Contains is a
// pure peek (no counter movement, no recency refresh).
func TestSourceCacheCounters(t *testing.T) {
	cache := NewSourceCache(8)
	for i := 0; i < 3; i++ {
		if _, err := cache.Get(`/child::a`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cache.Get(`/child::b`); err != nil {
		t.Fatal(err)
	}
	cache.Contains(`/child::a`)
	cache.Contains(`/child::zzz`)
	if h, m := cache.Hits(), cache.Misses(); h != 2 || m != 2 {
		t.Errorf("hits=%d misses=%d, want 2 and 2", h, m)
	}
	if cache.Evictions() != 0 {
		t.Errorf("Evictions() = %d, want 0", cache.Evictions())
	}
	if cache.Compiles() != 2 {
		t.Errorf("Compiles() = %d, want 2", cache.Compiles())
	}
}

// TestSourceCacheError: invalid queries never enter the entry map and keep
// failing, and — the regression this pins — a failed compile contributes
// nothing to the Compiles counter. The first version of the cache counted
// the compile before syntax.Compile ran, so a stream of parse errors
// inflated the counter without ever producing a plan.
func TestSourceCacheError(t *testing.T) {
	cache := NewSourceCache(8)
	if _, err := cache.Get(`//a[`); err == nil {
		t.Fatal("invalid query must fail")
	}
	if cache.Len() != 0 {
		t.Error("failed compile entered the entry map")
	}
	if got := cache.Compiles(); got != 0 {
		t.Errorf("Compiles() = %d after a parse error, want 0 (no plan was produced)", got)
	}
	if got := cache.Misses(); got != 1 {
		t.Errorf("Misses() = %d, want 1", got)
	}
}

// TestSourceCacheNegative: a known-bad source is answered from the negative
// cache — the identical error value comes back (proof no re-parse happened)
// and the ErrorHits counter moves. A hot invalid query must not cost a lex
// and parse per request once it has failed once.
func TestSourceCacheNegative(t *testing.T) {
	cache := NewSourceCache(8)
	_, err1 := cache.Get(`//a[`)
	if err1 == nil {
		t.Fatal("invalid query must fail")
	}
	_, err2 := cache.Get(`//a[`)
	if err2 == nil {
		t.Fatal("invalid query must keep failing")
	}
	if err1 != err2 {
		t.Errorf("second Get re-parsed: got a fresh error %q, want the cached %q", err2, err1)
	}
	if got := cache.ErrorHits(); got != 1 {
		t.Errorf("ErrorHits() = %d, want 1", got)
	}
	if got := cache.Misses(); got != 1 {
		t.Errorf("Misses() = %d, want 1 (negative hits are not misses)", got)
	}
	if got := cache.Compiles(); got != 0 {
		t.Errorf("Compiles() = %d, want 0", got)
	}
	// A valid source afterwards compiles exactly once.
	if _, err := cache.Get(`/child::a`); err != nil {
		t.Fatal(err)
	}
	if got := cache.Compiles(); got != 1 {
		t.Errorf("Compiles() = %d after one valid compile, want 1", got)
	}
	// GetInfo reports the negative hit as served-from-cache.
	if _, hit, err := cache.GetInfo(`//a[`, nil); err == nil || !hit {
		t.Errorf("GetInfo(bad source) = hit=%v err=%v, want a negative-cache hit", hit, err)
	}
	if _, hit, err := cache.GetInfo(`/child::a`, nil); err != nil || !hit {
		t.Errorf("GetInfo(warm source) = hit=%v err=%v, want hit", hit, err)
	}
}

// TestSourceCacheNegativeBound: the negative cache honors the capacity
// bound under a churn of distinct garbage sources.
func TestSourceCacheNegativeBound(t *testing.T) {
	cache := NewSourceCache(8)
	for i := 0; i < 50; i++ {
		if _, err := cache.Get(fmt.Sprintf(`//a[%d`, i)); err == nil {
			t.Fatal("invalid query must fail")
		}
	}
	cache.mu.RLock()
	n := len(cache.errs)
	cache.mu.RUnlock()
	if n > 8 {
		t.Errorf("negative cache grew to %d entries, cap 8", n)
	}
}

// TestConcurrentEvaluation: one engine, one plan, many goroutines — the VM
// pool must hand out independent machines.
func TestConcurrentEvaluation(t *testing.T) {
	e := New()
	doc := workload.Scaled(120)
	q := mustCompileQuery(t, `/descendant::b[child::d]/child::c[position() = last()]`)
	want, _, err := e.Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				got, _, err := e.Evaluate(q, doc, engine.RootContext(doc))
				if err != nil {
					t.Error(err)
					return
				}
				if !values.Equal(got, want) {
					t.Errorf("concurrent run diverged: %s", values.Render(got))
					return
				}
			}
		}()
	}
	wg.Wait()
}
