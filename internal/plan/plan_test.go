package plan

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func mustCompileQuery(t *testing.T, src string) *syntax.Query {
	t.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		t.Fatalf("syntax.Compile(%q): %v", src, err)
	}
	return q
}

func mustPlan(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(mustCompileQuery(t, src))
	if err != nil {
		t.Fatalf("plan.Compile(%q): %v", src, err)
	}
	return p
}

// countOps tallies opcode occurrences in a program.
func countOps(p *Program) map[Op]int {
	out := make(map[Op]int)
	for _, in := range p.Code {
		out[in.Op]++
	}
	return out
}

// TestConstantFolding: context-free scalar subtrees compile to one constant
// load, and and/or branches decided by a folded operand disappear.
func TestConstantFolding(t *testing.T) {
	p := mustPlan(t, `2 + 3 * 4`)
	ops := countOps(p)
	if ops[OpConst] != 1 || ops[OpArith] != 0 {
		t.Errorf("2+3*4 not folded:\n%s", p.Disasm())
	}
	if values.ToNumber(p.Consts[0]) != 14 {
		t.Errorf("folded value = %v, want 14", p.Consts[0])
	}

	// Dead-branch elimination: the or is decided by true(), the path under
	// it must not be compiled.
	p = mustPlan(t, `true() or //a`)
	ops = countOps(p)
	if ops[OpStep]+ops[OpStepSel] != 0 || ops[OpJumpIfTrue]+ops[OpJumpIfFalse] != 0 {
		t.Errorf("true() or //a kept the dead branch:\n%s", p.Disasm())
	}

	// A constant-false predicate empties the step statically.
	p = mustPlan(t, `//a[false()]`)
	if ops := countOps(p); ops[OpEmptySet] != 1 {
		t.Errorf("//a[false()] did not compile to an empty set:\n%s", p.Disasm())
	}
	// A constant-true predicate is dropped.
	p = mustPlan(t, `//a[true()]`)
	if ops := countOps(p); ops[OpFilterSet]+ops[OpStepSel]+ops[OpBoolGate] != 0 {
		t.Errorf("//a[true()] kept predicate code:\n%s", p.Disasm())
	}
}

// TestPositionSpecialization: position() = k and [last()] predicates become
// index selections, not per-candidate blocks.
func TestPositionSpecialization(t *testing.T) {
	for _, src := range []string{`//b/c[2]`, `//b/c[last()]`, `//b/c[position() = 2]`} {
		p := mustPlan(t, src)
		ops := countOps(p)
		if ops[OpStepSel] != 1 {
			t.Errorf("%s: want one stepsel:\n%s", src, p.Disasm())
			continue
		}
		if len(p.Blocks) != 1 {
			t.Errorf("%s: index predicate compiled to a block:\n%s", src, p.Disasm())
		}
	}
	// Statically out-of-range indexes are dead.
	p := mustPlan(t, `//b/c[0]`)
	if ops := countOps(p); ops[OpEmptySet] != 1 || ops[OpStepSel] != 0 {
		t.Errorf("//b/c[0] not eliminated:\n%s", p.Disasm())
	}
}

// TestSatisfactionSets: Core XPath existence predicates and π RelOp const
// comparisons compile to whole-domain set programs — no predicate blocks,
// no per-candidate loops.
func TestSatisfactionSets(t *testing.T) {
	cases := []string{
		`/descendant::b[child::d]/child::c`,
		`/descendant::*[following-sibling::d and not(child::node())]`,
		`//b[.//d]//c`,
		`/descendant::*[preceding-sibling::*/preceding::* = 100]`,
		`/descendant::b[child::c = "21 22"]`,
	}
	for _, src := range cases {
		p := mustPlan(t, src)
		if len(p.Blocks) != 1 {
			t.Errorf("%s: expected pure satisfaction-set compilation, got %d blocks:\n%s",
				src, len(p.Blocks), p.Disasm())
		}
		if ops := countOps(p); ops[OpStepInv] == 0 {
			t.Errorf("%s: no backward propagation emitted:\n%s", src, p.Disasm())
		}
	}
}

// TestDisasm: the listing names every opcode it contains and stays stable
// against the block layout.
func TestDisasm(t *testing.T) {
	p := mustPlan(t, `/descendant::b[child::d and position() != last()]/child::c[2]`)
	d := p.Disasm()
	for _, want := range []string{"b0:", "(main)", "step", "return", "stepsel"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
	if len(p.Blocks) < 2 {
		t.Errorf("positional non-index predicate should need a block:\n%s", d)
	}
}

// evalBoth evaluates one query on one document with both the compiled
// engine and OPTMINCONTEXT and requires identical values.
func evalBoth(t *testing.T, compiled *Engine, ref engine.Engine, q *syntax.Query, doc *xmltree.Document, ctx engine.Context) {
	t.Helper()
	got, _, err := compiled.Evaluate(q, doc, ctx)
	if err != nil {
		t.Errorf("compiled %q: %v", q.Source, err)
		return
	}
	want, _, err := ref.Evaluate(q, doc, ctx)
	if err != nil {
		t.Errorf("optmincontext %q: %v", q.Source, err)
		return
	}
	if !values.Equal(got, want) {
		t.Errorf("disagreement on %q (cn=%d):\n  compiled:      %s\n  optmincontext: %s",
			q.Source, ctx.Node.Pre(), values.Render(got), values.Render(want))
	}
}

// workloadQueries is the full named query matrix of internal/workload.
func workloadQueries() []string {
	var out []string
	out = append(out, workload.WadlerQueries()...)
	out = append(out, workload.CoreQueries()...)
	out = append(out, workload.FullXPathQueries()...)
	out = append(out, workload.MixedQuery(), workload.PositionHeavy())
	for i := 1; i <= 6; i++ {
		out = append(out, workload.DoublingQuery(i))
	}
	return out
}

// TestDifferentialWorkloadMatrix runs the compiled engine against
// OPTMINCONTEXT over the full internal/workload query/document matrix,
// from the root and from a mid-document context node.
func TestDifferentialWorkloadMatrix(t *testing.T) {
	docs := map[string]*xmltree.Document{
		"figure2":  workload.Figure2(),
		"doubling": workload.Doubling(),
		"scaled":   workload.Scaled(90),
		"nested":   workload.Nested(70),
		"deep":     workload.DeepChain(50),
		"widefan":  workload.WideFan(64),
		"random":   workload.Random(80, 7),
	}
	compiled, ref := New(), core.NewOptMinContext()
	for name, doc := range docs {
		for _, src := range workloadQueries() {
			q := mustCompileQuery(t, src)
			t.Run(name+"/"+src, func(t *testing.T) {
				evalBoth(t, compiled, ref, q, doc, engine.RootContext(doc))
				if mid := doc.Node(doc.NumNodes() / 2); mid != nil {
					evalBoth(t, compiled, ref, q, doc, engine.Context{Node: mid, Pos: 1, Size: 1})
				}
			})
		}
	}
}

// TestDifferentialRandomQueries sweeps seeded random full-XPath queries
// (the E13 generator) against OPTMINCONTEXT.
func TestDifferentialRandomQueries(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 25
	}
	compiled, ref := New(), core.NewOptMinContext()
	doc := workload.Random(60, 3)
	for seed := int64(1); seed <= int64(n); seed++ {
		src := workload.RandomQuery(5000 + seed)
		q := mustCompileQuery(t, src)
		evalBoth(t, compiled, ref, q, doc, engine.RootContext(doc))
	}
}

// TestEngineInterface: the compiled engine satisfies engine.Engine and
// reports sensible instrumentation.
func TestEngineInterface(t *testing.T) {
	var _ engine.Engine = New()
	e := New()
	if e.Name() != "compiled" {
		t.Errorf("Name() = %q", e.Name())
	}
	doc := workload.Figure2()
	q := mustCompileQuery(t, `/descendant::b/child::c`)
	v, st, err := e.Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatal(err)
	}
	if v.T != values.KindNodeSet || v.Set.Len() != 3 {
		t.Errorf("result: %s", values.Render(v))
	}
	if st.AxisCalls == 0 {
		t.Error("AxisCalls not counted")
	}
	if st.TableCells != 0 {
		t.Error("compiled engine writes no context-value tables")
	}
}

// TestPlanCacheReuse: repeated evaluations reuse one compiled program, and
// results from cache hits equal cold-compile results.
func TestPlanCacheReuse(t *testing.T) {
	e := New()
	q := mustCompileQuery(t, `/descendant::b[child::d]/child::c`)
	p1, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("plan cache missed on identical query pointer")
	}
	doc := workload.Scaled(50)
	warm, _, err := e.Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := New().Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !values.Equal(warm, cold) {
		t.Errorf("cache hit diverged from cold compile: %s vs %s",
			values.Render(warm), values.Render(cold))
	}
}
