// Package corexpath is a standalone linear-time evaluator for the Core
// XPath fragment of Definition 12 ([11]): location paths whose predicates
// are and/or/not combinations of location paths. It evaluates a query in
// time O(|D|·|Q|) using only set-at-a-time axis functions:
//
//   - each predicate subtree is turned into its satisfaction set — the set
//     of context nodes at which the predicate holds — by propagating node
//     sets backwards through inverse axes;
//   - the main path then runs forward, intersecting each step's image with
//     the node-test set and the predicates' satisfaction sets.
//
// The engine exists as an independent cross-check for Theorem 13: on Core
// XPath subexpressions OPTMINCONTEXT must match both its results and its
// linear growth (experiment E9).
package corexpath

import (
	"fmt"
	"sync"

	"repro/internal/axes"
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/trace"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Engine is the Core XPath evaluator. The zero value is ready to use.
type Engine struct {
	// scratch pools axis-kernel scratch arenas, one per concurrent
	// evaluation (e.g. per store batch worker).
	scratch sync.Pool
}

// New returns a Core XPath engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (*Engine) Name() string { return "corexpath" }

// ErrNotCore is returned for queries outside the fragment.
var ErrNotCore = fmt.Errorf("corexpath: query is not in the Core XPath fragment (Definition 12)")

// Evaluate implements engine.Engine.
func (e *Engine) Evaluate(q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (v values.Value, st engine.Stats, err error) {
	if q.Fragment != syntax.FragmentCoreXPath {
		return values.Value{}, engine.Stats{}, ErrNotCore
	}
	sc, _ := e.scratch.Get().(*axes.Scratch)
	if sc == nil {
		sc = axes.NewScratch()
	}
	defer e.scratch.Put(sc)
	// The satisfaction-set recursion has no error returns; budget trips
	// travel out of it as a bail.
	defer budget.RecoverBail(&err)
	ev := &evaluator{doc: doc, sc: sc, tr: ctx.Tracer, bud: ctx.Budget}
	p := q.Root.(*syntax.Path)

	// The main path runs forward over two alternating buffers: every step is
	// one fused StepImageInto plus per-predicate bitset intersections, so the
	// whole chain allocates two sets regardless of its length.
	cur := xmltree.Singleton(ctx.Node)
	if p.Abs {
		cur = xmltree.Singleton(doc.Root())
	}
	next := xmltree.NewSet(doc)
	for i, step := range p.Steps {
		// Each forward step is Θ(|D|) (fused image over the document), so
		// it costs |D| fuel units — the engine-wide unit is "node touched".
		if b := ev.bud; b != nil {
			if err := b.Step(int64(doc.NumNodes())); err != nil {
				return values.Value{}, ev.st, err
			}
		}
		var t0 int64
		var inCard int
		if ev.tr != nil {
			t0, inCard = trace.Now(), cur.Len()
		}
		ev.forwardStepInto(next, step, cur)
		if ev.tr != nil {
			ev.tr.Emit(trace.Event{
				Kind: trace.KindStep, Name: step.String(), PC: i,
				In: inCard, Out: next.Len(), Ns: trace.Now() - t0,
				HighWater: ev.sc.HighWater(),
			})
		}
		cur, next = next, cur
	}
	return values.NodeSet(cur), ev.st, nil
}

type evaluator struct {
	doc *xmltree.Document
	st  engine.Stats
	sc  *axes.Scratch
	tr  trace.Tracer
	bud *budget.Budget
}

// forwardStepInto computes χ(X) ∩ T(t) ∩ ⋂ⱼ sat(eⱼ) into dst, in O(|D|).
func (ev *evaluator) forwardStepInto(dst *xmltree.Set, step *syntax.Step, x *xmltree.Set) {
	engine.StepImageInto(&ev.st, dst, step.Axis, step.Test, x, ev.sc)
	for _, pred := range step.Preds {
		dst.IntersectWith(ev.satSet(pred))
	}
	ev.st.TableCells += int64(dst.Len())
}

// satSet returns the set of context nodes at which the predicate holds.
func (ev *evaluator) satSet(e syntax.Expr) *xmltree.Set {
	switch e := e.(type) {
	case *syntax.Binary:
		l, r := ev.satSet(e.L), ev.satSet(e.R)
		if e.Op == syntax.OpAnd {
			return l.Intersect(r)
		}
		return l.Union(r)
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnNot:
			out := ev.doc.AllNodes().Clone()
			out.SubtractWith(ev.satSet(e.Args[0]))
			return out
		case syntax.FnBoolean:
			return ev.pathSat(e.Args[0].(*syntax.Path))
		}
	case *syntax.Path:
		return ev.pathSat(e)
	}
	panic("corexpath: satSet: expression outside the fragment (classifier bug)")
}

// pathSat computes {x | the path selects at least one node from x} by
// backward propagation: D_k is the set of nodes that can be the step-k
// node of a full match; χ⁻¹ chains the steps.
func (ev *evaluator) pathSat(p *syntax.Path) *xmltree.Set {
	var t0 int64
	if ev.tr != nil {
		t0 = trace.Now()
		defer func() {
			ev.tr.Emit(trace.Event{
				Kind: trace.KindSat, Name: p.String(),
				In: trace.CardUnknown, Out: trace.CardUnknown,
				Ns: trace.Now() - t0, HighWater: ev.sc.HighWater(),
			})
		}()
	}
	cur := ev.doc.AllNodes().Clone()
	buf := xmltree.NewSet(ev.doc) // alternates with cur through the steps
	for i := len(p.Steps) - 1; i >= 0; i-- {
		// As in the forward loop, one backward step costs |D| fuel units.
		if b := ev.bud; b != nil {
			if err := b.Step(int64(ev.doc.NumNodes())); err != nil {
				budget.Bail(err)
			}
		}
		step := p.Steps[i]
		cur.IntersectWith(engine.TestSet(ev.doc, step.Test))
		for _, pred := range step.Preds {
			cur.IntersectWith(ev.satSet(pred))
		}
		ev.st.AxisCalls++
		ev.st.TableCells += int64(cur.Len())
		axes.ApplyInverseInto(buf, step.Axis, cur, ev.sc)
		cur, buf = buf, cur
	}
	if p.Abs {
		if cur.Has(ev.doc.Root()) {
			return ev.doc.AllNodes().Clone()
		}
		return xmltree.NewSet(ev.doc)
	}
	return cur
}
