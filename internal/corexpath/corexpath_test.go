package corexpath

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func eval(t *testing.T, doc *xmltree.Document, src string) (values.Value, engine.Stats) {
	t.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, st, err := New().Evaluate(q, doc, engine.RootContext(doc))
	if err != nil {
		t.Fatalf("evaluate %q: %v", src, err)
	}
	return v, st
}

func TestRejectsNonCore(t *testing.T) {
	doc := workload.Figure2()
	for _, src := range []string{
		`//b[position() = 1]`, `count(//b)`, `//b[c = 100]`, `//b | 1 + 1`,
	} {
		q, err := syntax.Compile(src)
		if err != nil {
			continue // non-nset top levels may fail union typing; fine
		}
		if _, _, err := New().Evaluate(q, doc, engine.RootContext(doc)); err != ErrNotCore {
			t.Errorf("%q: err = %v, want ErrNotCore", src, err)
		}
	}
}

func TestBasicPaths(t *testing.T) {
	doc := workload.Figure2()
	cases := map[string]string{
		`/child::a/child::b`:                        "{x11, x21}",
		`/descendant::d`:                            "{x14, x23, x24}",
		`/descendant::b[child::d]`:                  "{x11, x21}",
		`/descendant::c[following-sibling::d]`:      "{x12, x13, x22}",
		`/descendant::*[not(descendant::node())]`:   "{x12, x13, x14, x22, x23, x24}",
		`/descendant::b[child::c and child::d]`:     "{x11, x21}",
		`/descendant::*[ancestor::b][not(self::d)]`: "{x12, x13, x22}",
	}
	for src, want := range cases {
		v, _ := eval(t, doc, src)
		if got := v.Set.String(); got != want {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
}

// TestPredicatePathsWithInnerPredicates: nested Core XPath predicates.
func TestPredicatePathsWithInnerPredicates(t *testing.T) {
	doc := workload.Figure2()
	v, _ := eval(t, doc, `/descendant::b[descendant::d[preceding-sibling::c]]`)
	if got := v.Set.String(); got != "{x11, x21}" {
		t.Errorf("got %s", got)
	}
}

// TestLinearGrowth: axis-function calls are independent of |D| (they are
// per-step), and total table cells grow linearly — Theorem 13's shape.
func TestLinearGrowth(t *testing.T) {
	src := `/descendant::b[child::c[following-sibling::d]]/child::c`
	var cells [3]int64
	sizes := []int{100, 200, 400}
	for i, n := range sizes {
		doc := workload.Scaled(n)
		_, st := eval(t, doc, src)
		cells[i] = st.TableCells
	}
	r1 := float64(cells[1]) / float64(cells[0])
	r2 := float64(cells[2]) / float64(cells[1])
	if r1 > 2.6 || r2 > 2.6 {
		t.Errorf("cell growth %v not linear (ratios %.2f, %.2f)", cells, r1, r2)
	}
}

// TestAbsolutePredicatePath: absolute paths inside predicates are all-or-
// nothing over context nodes.
func TestAbsolutePredicatePath(t *testing.T) {
	doc := workload.Figure2()
	v, _ := eval(t, doc, `/descendant::c[/child::a/child::b]`)
	if v.Set.Len() != 3 {
		t.Errorf("got %d nodes, want all c's (the absolute predicate holds globally)", v.Set.Len())
	}
	v2, _ := eval(t, doc, `/descendant::c[/child::zzz]`)
	if !v2.Set.IsEmpty() {
		t.Errorf("got %s, want ∅", v2.Set)
	}
}

// TestRelativeContext: relative Core XPath queries start at the context node.
func TestRelativeContext(t *testing.T) {
	doc := workload.Figure2()
	q, err := syntax.Compile(`child::c[following-sibling::d]`)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := New().Evaluate(q, doc, engine.Context{Node: doc.ByID("21"), Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Set.String(); got != "{x22}" {
		t.Errorf("got %s", got)
	}
}
