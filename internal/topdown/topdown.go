// Package topdown implements the semantics function E↓ of Definition 2 —
// the "top-down" polynomial evaluation algorithm of the predecessor paper
// [11] that MINCONTEXT improves on. Expressions are evaluated *vectorized*
// over a list of contexts; location paths are evaluated set-at-a-time via
// the auxiliary function S↓, which materializes for every location step the
// pair relation
//
//	S = {〈x, y〉 | x ∈ ∪ᵢ Xᵢ, x χ y, y ∈ T(t)}
//
// and filters it through the step's predicates using the context triples
// 〈yⱼ, idxχ(yⱼ, Sⱼ), |Sⱼ|〉. Its bounds are O(|D|⁵·|Q|²) time and
// O(|D|⁴·|Q|²) space (§1).
package topdown

import (
	"repro/internal/budget"
	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/xmltree"
)

// Engine is the E↓ evaluator. The zero value is ready to use.
type Engine struct{}

// New returns a top-down E↓ engine.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (*Engine) Name() string { return "topdown" }

// Evaluate implements engine.Engine.
func (*Engine) Evaluate(q *syntax.Query, doc *xmltree.Document, ctx engine.Context) (v values.Value, st engine.Stats, err error) {
	// evalList mirrors Definition 2 and has no error returns; a tripped
	// budget travels out of the recursion as a bail.
	defer budget.RecoverBail(&err)
	ev := &evaluator{doc: doc, bud: ctx.Budget}
	rs := ev.evalList(q.Root, []engine.Context{ctx})
	return rs[0], ev.st, nil
}

type evaluator struct {
	doc *xmltree.Document
	st  engine.Stats
	bud *budget.Budget
}

// evalList is E↓: it maps a list of contexts to the list of results of the
// expression, one per context (Definition 2).
func (ev *evaluator) evalList(e syntax.Expr, ctxs []engine.Context) []values.Value {
	// Charge the vector width: the per-pair context lists of evalStep are
	// where E↓'s superlinear work lives, so fuel maps to real effort.
	if b := ev.bud; b != nil {
		if err := b.Step(int64(len(ctxs)) + 1); err != nil {
			budget.Bail(err)
		}
	}
	ev.st.ContextsEvaluated += int64(len(ctxs))
	ev.st.TableCells += int64(len(ctxs))
	out := make([]values.Value, len(ctxs))
	switch e := e.(type) {
	case *syntax.NumberLit:
		for i := range out {
			out[i] = values.Number(e.Val)
		}
	case *syntax.StringLit:
		for i := range out {
			out[i] = values.String(e.Val)
		}
	case *syntax.Negate:
		args := ev.evalList(e.E, ctxs)
		for i := range out {
			out[i] = values.Number(-values.ToNumber(args[i]))
		}
	case *syntax.Binary:
		// Op〈〉: vectorized application of F[[Op]].
		ls := ev.evalList(e.L, ctxs)
		rs := ev.evalList(e.R, ctxs)
		for i := range out {
			switch {
			case e.Op == syntax.OpOr:
				out[i] = values.Boolean(values.ToBool(ls[i]) || values.ToBool(rs[i]))
			case e.Op == syntax.OpAnd:
				out[i] = values.Boolean(values.ToBool(ls[i]) && values.ToBool(rs[i]))
			case e.Op.IsRelational():
				out[i] = values.Boolean(values.Compare(e.Op, ls[i], rs[i]))
			default:
				out[i] = values.Number(values.Arith(e.Op,
					values.ToNumber(ls[i]), values.ToNumber(rs[i])))
			}
		}
	case *syntax.Call:
		switch e.Fn {
		case syntax.FnPosition:
			// E↓[[position()]](…〈xl, kl, nl〉) = 〈k1, …, kl〉.
			for i, c := range ctxs {
				out[i] = values.Number(float64(c.Pos))
			}
			return out
		case syntax.FnLast:
			// E↓[[last()]](…〈xl, kl, nl〉) = 〈n1, …, nl〉.
			for i, c := range ctxs {
				out[i] = values.Number(float64(c.Size))
			}
			return out
		}
		args := make([][]values.Value, len(e.Args))
		for j, a := range e.Args {
			args[j] = ev.evalList(a, ctxs)
		}
		for i, c := range ctxs {
			row := make([]values.Value, len(e.Args))
			for j := range e.Args {
				row[j] = args[j][i]
			}
			v, err := values.Call(e.Fn, row, values.CallEnv{Doc: ev.doc, Node: c.Node})
			if err != nil {
				panic(err) // unreachable: signature checked at compile time
			}
			out[i] = v
		}
	case *syntax.Union:
		// S↓[[π1 | π2]] = S↓[[π1]] ∪〈〉 S↓[[π2]].
		sets := make([]*xmltree.Set, len(ctxs))
		for i := range sets {
			sets[i] = xmltree.NewSet(ev.doc)
		}
		for _, p := range e.Paths {
			part := ev.evalList(p, ctxs)
			for i := range sets {
				sets[i].UnionWith(part[i].Set)
			}
		}
		for i := range out {
			out[i] = values.NodeSet(sets[i])
		}
	case *syntax.Path:
		// E↓[[π]](〈x1,…〉,…) = S↓[[π]]({x1}, …, {xl}).
		xs := ev.pathStarts(e, ctxs)
		rs := ev.evalSteps(e.Steps, xs)
		for i := range out {
			out[i] = values.NodeSet(rs[i])
		}
	default:
		panic("topdown: evalList: unhandled expression")
	}
	return out
}

// pathStarts builds the input node-set list (X1, …, Xk) of S↓ for a path:
// singleton context nodes for relative paths, {root} for absolute paths
// (S↓[[/π]]), and the filtered head value for filter-headed paths.
func (ev *evaluator) pathStarts(p *syntax.Path, ctxs []engine.Context) []*xmltree.Set {
	xs := make([]*xmltree.Set, len(ctxs))
	switch {
	case p.Abs:
		root := xmltree.Singleton(ev.doc.Root())
		for i := range xs {
			xs[i] = root
		}
	case p.Filter != nil:
		heads := ev.evalList(p.Filter, ctxs)
		for i := range xs {
			nodes := heads[i].Set.Nodes()
			for _, pred := range p.FPreds {
				nodes = ev.filterList(pred, nodes)
			}
			xs[i] = xmltree.SetFromNodes(ev.doc, nodes)
		}
	default:
		for i, c := range ctxs {
			xs[i] = xmltree.Singleton(c.Node)
		}
	}
	return xs
}

// evalSteps is S↓ for a chain of location steps: it threads the node-set
// list through each step (S↓[[π1/π2]] = S↓[[π2]] ∘ S↓[[π1]]).
func (ev *evaluator) evalSteps(steps []*syntax.Step, xs []*xmltree.Set) []*xmltree.Set {
	for _, s := range steps {
		xs = ev.evalStep(s, xs)
	}
	return xs
}

// evalStep is S↓[[χ::t[e1]…[em]]](X1, …, Xk): it materializes the pair
// relation S, filters it through each predicate with vectorized context
// lists, and projects the per-input results Rᵢ.
func (ev *evaluator) evalStep(step *syntax.Step, xs []*xmltree.Set) []*xmltree.Set {
	// ∪ᵢ Xᵢ, deduplicated — the source column of S.
	union := xmltree.NewSet(ev.doc)
	for _, x := range xs {
		union.UnionWith(x)
	}
	ev.st.AxisCalls++

	// S as adjacency: per source node x the ordered candidate list
	// Sx = {y | x χ y, y ∈ T(t)} in <doc,χ order.
	type row struct {
		x     *xmltree.Node
		cands []*xmltree.Node
	}
	var rows []row
	union.ForEach(func(x *xmltree.Node) {
		cands := engine.Candidates(step.Axis, step.Test, x, nil)
		ev.st.TableCells += int64(len(cands))
		rows = append(rows, row{x: x, cands: cands})
	})

	// Predicate filtering, in ascending order, with vectorized E↓ calls:
	// one context per pair 〈x, y〉 of S.
	for _, pred := range step.Preds {
		var ctxs []engine.Context
		for _, r := range rows {
			size := len(r.cands)
			for j, y := range r.cands {
				ctxs = append(ctxs, engine.Context{Node: y, Pos: j + 1, Size: size})
			}
		}
		rs := ev.evalList(pred, ctxs)
		k := 0
		for ri := range rows {
			kept := rows[ri].cands[:0]
			for _, y := range rows[ri].cands {
				if values.ToBool(rs[k]) {
					kept = append(kept, y)
				}
				k++
			}
			rows[ri].cands = kept
		}
	}

	// Rᵢ = {y | 〈x, y〉 ∈ S, x ∈ Xᵢ}.
	perSource := make(map[*xmltree.Node][]*xmltree.Node, len(rows))
	for _, r := range rows {
		perSource[r.x] = r.cands
	}
	out := make([]*xmltree.Set, len(xs))
	for i, x := range xs {
		ri := xmltree.NewSet(ev.doc)
		x.ForEach(func(n *xmltree.Node) {
			for _, y := range perSource[n] {
				ri.Add(y)
			}
		})
		out[i] = ri
	}
	return out
}

// filterList applies one predicate to a node list with document-order
// positions (used for filter-expression predicates).
func (ev *evaluator) filterList(pred syntax.Expr, nodes []*xmltree.Node) []*xmltree.Node {
	size := len(nodes)
	ctxs := make([]engine.Context, size)
	for i, n := range nodes {
		ctxs[i] = engine.Context{Node: n, Pos: i + 1, Size: size}
	}
	rs := ev.evalList(pred, ctxs)
	out := nodes[:0]
	for i, n := range nodes {
		if values.ToBool(rs[i]) {
			out = append(out, n)
		}
	}
	return out
}
