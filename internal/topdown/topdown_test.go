package topdown

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func eval(t *testing.T, doc *xmltree.Document, src string, ctx engine.Context) (values.Value, engine.Stats) {
	t.Helper()
	q, err := syntax.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, st, err := New().Evaluate(q, doc, ctx)
	if err != nil {
		t.Fatalf("evaluate %q: %v", src, err)
	}
	return v, st
}

// TestVectorizedContexts: E↓ evaluates each predicate once per S-pair, not
// once per (pair × subexpression recomputation) — the polynomial property.
func TestVectorizedContexts(t *testing.T) {
	doc := workload.Doubling()
	// The doubling query that kills naive engines is linear here.
	var prev int64
	for i := 2; i <= 8; i++ {
		_, st := eval(t, doc, workload.DoublingQuery(i), engine.RootContext(doc))
		if i > 2 {
			growth := st.ContextsEvaluated - prev
			if growth > 200 {
				t.Errorf("step %d: work grew by %d, want small constant (polynomial)", i, growth)
			}
		}
		prev = st.ContextsEvaluated
	}
}

// TestPositionSemantics: positions are per previous context node and
// node-test filtered (Definition 2's idxχ over Sj).
func TestPositionSemantics(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b/><c/><b/><c/><b/></a>`)
	v, _ := eval(t, doc, `/child::a/child::b[position() = 2]`, engine.RootContext(doc))
	if v.Set.Len() != 1 || v.Set.First().Pre() != 4 {
		t.Errorf("b[2] = %s, want the second b (pre 4)", v.Set)
	}
	// Reverse axis: position counts in reverse document order.
	last := doc.Node(5) // the third b
	v2, _ := eval(t, doc, `preceding-sibling::b[1]`, engine.Context{Node: last, Pos: 1, Size: 1})
	if v2.Set.Len() != 1 || v2.Set.First().Pre() != 4 {
		t.Errorf("preceding-sibling::b[1] = %s, want nearest b", v2.Set)
	}
}

// TestSuccessivePredicates: predicates apply left to right with positions
// recomputed after each filter.
func TestSuccessivePredicates(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b x="1"/><c/><b x="2"/><b x="3"/></a>`)
	// [position() != 1][position() != 1] drops the first two b's.
	v, _ := eval(t, doc, `/child::a/child::b[position() != 1][position() != 1]`, engine.RootContext(doc))
	if v.Set.Len() != 1 {
		t.Fatalf("got %d nodes, want 1", v.Set.Len())
	}
	if attr, _ := v.Set.First().Attr("x"); attr != "3" {
		t.Errorf("kept b@x=%s, want 3", attr)
	}
}

// TestAbsoluteResetsContext: S↓[[/π]] ignores the incoming node sets.
func TestAbsoluteResetsContext(t *testing.T) {
	doc := workload.Figure2()
	deep := doc.ByID("24")
	v, _ := eval(t, doc, `/child::a`, engine.Context{Node: deep, Pos: 1, Size: 1})
	if v.Set.Len() != 1 || v.Set.First() != doc.ByID("10") {
		t.Errorf("/child::a from deep context = %s", v.Set)
	}
}

// TestUnionVectorized: S↓[[π1 | π2]] = S↓[[π1]] ∪〈〉 S↓[[π2]].
func TestUnionVectorized(t *testing.T) {
	doc := workload.Figure2()
	v, _ := eval(t, doc, `child::c | child::d`, engine.Context{Node: doc.ByID("11"), Pos: 1, Size: 1})
	if got := v.Set.String(); got != "{x12, x13, x14}" {
		t.Errorf("union = %s", got)
	}
}

// TestTableCellAccounting: cells grow with the pair relation, giving the
// E↓ space profile the E7 experiment compares against.
func TestTableCellAccounting(t *testing.T) {
	small := workload.Scaled(30)
	big := workload.Scaled(120)
	src := workload.PositionHeavy()
	_, stSmall := eval(t, small, src, engine.RootContext(small))
	_, stBig := eval(t, big, src, engine.RootContext(big))
	if stBig.TableCells <= stSmall.TableCells {
		t.Errorf("cells did not grow with |D|: %d vs %d", stSmall.TableCells, stBig.TableCells)
	}
}

// TestFilterHeadPaths: FilterExpr-headed paths ((π)[k]/steps, id(s)/steps)
// through the vectorized evaluator.
func TestFilterHeadPaths(t *testing.T) {
	doc := workload.Figure2()
	cases := map[string]string{
		`(//c)[2]/following-sibling::*`: "{x14}",
		`id("11")/child::d`:             "{x14}",
		`(//b)[last()]/child::*`:        "{x22, x23, x24}",
	}
	for src, want := range cases {
		v, _ := eval(t, doc, src, engine.RootContext(doc))
		if got := v.Set.String(); got != want {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
}

// TestScalarRoots: non-path roots of every type.
func TestScalarRoots(t *testing.T) {
	doc := workload.Figure2()
	if v, _ := eval(t, doc, `count(//d) * 10`, engine.RootContext(doc)); v.Num != 30 {
		t.Errorf("count arithmetic: %v", v.Num)
	}
	if v, _ := eval(t, doc, `concat("n", "=", string(count(//b)))`, engine.RootContext(doc)); v.Str != "n=2" {
		t.Errorf("concat: %q", v.Str)
	}
	if v, _ := eval(t, doc, `not(//zzz)`, engine.RootContext(doc)); !v.Bool {
		t.Errorf("not: %v", v.Bool)
	}
}
