package syntax

// Ctx is the relevant-context bitset Relev(N) ⊆ {'cn','cp','cs'} of
// Section 3.1.
type Ctx uint8

// The three context components of XPath 1.0 (§2.2).
const (
	CN Ctx = 1 << iota // context node
	CP                 // context position
	CS                 // context size
)

// Has reports whether the given components are all in the set.
func (c Ctx) Has(part Ctx) bool { return c&part == part }

// NeedsPosition reports whether the set intersects {'cp','cs'} — the test
// the Section 6 pseudo-code writes as {‘cp’,‘cs’} ∩ Relev(N) ≠ ∅.
func (c Ctx) NeedsPosition() bool { return c&(CP|CS) != 0 }

// String renders the set the way the paper writes it.
func (c Ctx) String() string {
	if c == 0 {
		return "∅"
	}
	out := "{"
	first := true
	add := func(s string) {
		if !first {
			out += ","
		}
		out += s
		first = false
	}
	if c.Has(CN) {
		add("cn")
	}
	if c.Has(CP) {
		add("cp")
	}
	if c.Has(CS) {
		add("cs")
	}
	return out + "}"
}

// Query is a compiled, normalized XPath 1.0 expression: the parse tree T of
// the paper, with dense node IDs, the relevant-context analysis of §3.1,
// and the fragment classification of §4 / Definition 12.
type Query struct {
	// Source is the original expression text.
	Source string
	// Root is the root node of the normalized parse tree.
	Root Expr
	// Nodes lists every parse-tree node, indexed by Expr.ID (preorder).
	Nodes []Expr
	// Relev maps node IDs to Relev(N).
	Relev []Ctx
	// Fragment is the query's fragment classification.
	Fragment Fragment
	// BottomUp lists the IDs of subexpressions eligible for the bottom-up
	// location-path evaluation of OPTMINCONTEXT (Algorithm 8), innermost
	// first.
	BottomUp []int
}

// Compile parses, normalizes and analyzes an XPath 1.0 expression with no
// variable bindings.
func Compile(src string) (*Query, error) { return CompileWithVars(src, nil) }

// CompileWithVars is Compile with an input variable binding (§2.2).
func CompileWithVars(src string, vars map[string]VarBinding) (*Query, error) {
	raw, err := ParseWithVars(src, vars)
	if err != nil {
		return nil, err
	}
	root := normalize(raw)
	q := &Query{Source: src, Root: root}
	q.assignIDs(root)
	q.computeRelev()
	q.Fragment = classify(q)
	q.BottomUp = findBottomUpPaths(q)
	return q, nil
}

// Subquery builds a fully analyzed Query from an already-normalized
// expression subtree. The subtree is cloned first, so the derived query's
// dense IDs, Relev analysis and fragment classification do not disturb the
// query the subtree was taken from. It is the splitting primitive of the
// data-partitioned parallel evaluator (internal/store), which decomposes an
// absolute location path into a serially-evaluated head and a per-context
// tail fanned out across goroutines.
func Subquery(src string, root Expr) *Query {
	clone := cloneExpr(root)
	q := &Query{Source: src, Root: clone}
	q.assignIDs(clone)
	q.computeRelev()
	q.Fragment = classify(q)
	q.BottomUp = findBottomUpPaths(q)
	return q
}

// Size returns |Q|, the number of parse-tree nodes.
func (q *Query) Size() int { return len(q.Nodes) }

// Node returns the parse-tree node with the given ID.
func (q *Query) Node(id int) Expr { return q.Nodes[id] }

// RelevOf returns Relev(N) for a parse-tree node.
func (q *Query) RelevOf(e Expr) Ctx { return q.Relev[e.ID()] }

// assignIDs numbers the parse tree in preorder.
func (q *Query) assignIDs(e Expr) {
	e.setID(len(q.Nodes))
	q.Nodes = append(q.Nodes, e)
	for _, c := range e.children() {
		q.assignIDs(c)
	}
}

// computeRelev implements the bottom-up Relev computation of Section 3.1.
// It runs in O(|Q|).
func (q *Query) computeRelev() {
	q.Relev = make([]Ctx, len(q.Nodes))
	var walk func(e Expr) Ctx
	walk = func(e Expr) Ctx {
		var r Ctx
		switch e := e.(type) {
		case *NumberLit, *StringLit:
			r = 0
		case *Negate:
			r = walk(e.E)
		case *Binary:
			r = walk(e.L) | walk(e.R)
		case *Union:
			// Location paths carry Relev = {'cn'} (§3.1); a union of paths
			// does too, but we still must traverse the children to fill in
			// their own entries.
			for _, p := range e.Paths {
				r |= walk(p)
			}
			r |= CN
		case *Call:
			for _, a := range e.Args {
				r |= walk(a)
			}
			switch e.Fn {
			case FnPosition:
				r |= CP
			case FnLast:
				r |= CS
			case FnTrue, FnFalse:
				// constants: ∅
			case FnString, FnNumber, FnStringLength, FnNormalizeSpace,
				FnLocalName, FnName:
				// Zero-argument forms operate on the context node (§3.1:
				// "parameterless XPath core library function that refers
				// to the context-node").
				if len(e.Args) == 0 {
					r |= CN
				}
			case FnLang:
				// lang() tests the context node's language.
				r |= CN
			}
		case *Path:
			// Location paths have Relev = {'cn'} (§3.1, cf. Example 3:
			// even the absolute path N1 carries {'cn'}). A filter head is
			// evaluated in the outer context, so any cp/cs dependency of
			// the head escapes to the path itself; predicate dependencies
			// do not (their positions are step-local).
			if e.Filter != nil {
				r |= walk(e.Filter) & (CP | CS)
			}
			for _, p := range e.FPreds {
				walk(p)
			}
			for _, s := range e.Steps {
				walk(s)
			}
			r |= CN
		case *Step:
			for _, p := range e.Preds {
				walk(p)
			}
			r = CN
		default:
			panic("syntax: computeRelev: unhandled expression")
		}
		q.Relev[e.ID()] = r
		return r
	}
	walk(q.Root)
}
