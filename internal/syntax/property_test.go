package syntax

// Property tests on the compilation pipeline, driven by a local random
// query generator (mirroring workload.RandomQuery, which cannot be imported
// here without a cycle).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randQuery(rng *rand.Rand, depth int) string {
	axes := []string{"self", "child", "parent", "descendant", "ancestor",
		"following", "preceding", "following-sibling", "preceding-sibling"}
	tests := []string{"a", "b", "*", "node()"}
	var step func(d int) string
	var pred func(d int) string
	step = func(d int) string {
		s := axes[rng.Intn(len(axes))] + "::" + tests[rng.Intn(len(tests))]
		if d > 0 && rng.Intn(3) == 0 {
			s += "[" + pred(d-1) + "]"
		}
		return s
	}
	pred = func(d int) string {
		switch rng.Intn(6) {
		case 0:
			return step(d)
		case 1:
			return fmt.Sprintf("position() = %d", 1+rng.Intn(3))
		case 2:
			return fmt.Sprintf("%s = %d", step(d), rng.Intn(50))
		case 3:
			if d > 0 {
				return "not(" + pred(d-1) + ")"
			}
			return "true()"
		case 4:
			if d > 0 {
				return pred(d-1) + " and " + pred(d-1)
			}
			return "last() > 1"
		default:
			return fmt.Sprintf("count(%s) != %d", step(d), rng.Intn(3))
		}
	}
	n := 1 + rng.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = step(2)
	}
	q := strings.Join(parts, "/")
	if rng.Intn(2) == 0 {
		q = "/" + q
	}
	return q
}

// TestQuickCompileRenderStable: Compile(q).String() is a fixed point —
// rendering a normalized tree and re-compiling yields the same rendering
// (normalization is idempotent and printing is faithful).
func TestQuickCompileRenderStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randQuery(rng, 2)
		q1, err := Compile(src)
		if err != nil {
			t.Logf("generator produced invalid query %q: %v", src, err)
			return false
		}
		r1 := q1.Root.String()
		q2, err := Compile(r1)
		if err != nil {
			t.Logf("rendered form %q does not re-parse: %v", r1, err)
			return false
		}
		return q2.Root.String() == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRelevMonotone: Relev of any parent contains each child's Relev
// intersected with what can escape it (paths absorb cp/cs of predicates;
// everything else unions). We assert the weaker invariant that holds by
// construction: a node's Relev never contains cp/cs unless some descendant
// introduces position()/last() or a filter head does.
func TestQuickRelevMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randQuery(rng, 2)
		q, err := Compile(src)
		if err != nil {
			return false
		}
		hasPosFn := strings.Contains(src, "position()") || strings.Contains(src, "last()")
		for _, e := range q.Nodes {
			if q.Relev[e.ID()].NeedsPosition() && !hasPosFn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickIDsDense: after compilation, node IDs are a dense preorder
// numbering and every node is reachable exactly once.
func TestQuickIDsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, err := Compile(randQuery(rng, 2))
		if err != nil {
			return false
		}
		seen := make([]bool, q.Size())
		var walk func(e Expr) bool
		walk = func(e Expr) bool {
			if e.ID() < 0 || e.ID() >= q.Size() || seen[e.ID()] {
				return false
			}
			seen[e.ID()] = true
			if q.Nodes[e.ID()] != e {
				return false
			}
			for _, c := range e.children() {
				if !walk(c) {
					return false
				}
			}
			return true
		}
		if !walk(q.Root) {
			return false
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickFragmentMonotone: adding a count() predicate to any query ejects
// it from the Extended Wadler fragment.
func TestQuickFragmentMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randQuery(rng, 1)
		q1, err := Compile(base)
		if err != nil {
			return false
		}
		if q1.Root.ResultType() != TypeNodeSet {
			return true
		}
		q2, err := Compile(base + "[count(child::a) > 99]")
		if err != nil {
			// The base may not end in a step that accepts predicates in
			// this grammar position; that is fine.
			return true
		}
		return q2.Fragment == FragmentFullXPath
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
