package syntax

import (
	"fmt"

	"repro/internal/axes"
)

// ParseError is returned for syntactically invalid expressions or for XPath
// 1.0 constructs that fall outside the paper's data model (attribute and
// namespace axes, text()/comment()/processing-instruction() node tests).
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("syntax: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

// parser is a recursive-descent parser for the full XPath 1.0 expression
// grammar (W3C REC sections 2 and 3), producing the raw AST that Compile
// then normalizes.
type parser struct {
	src  string
	toks []token
	pos  int
	vars map[string]VarBinding
}

// Parse parses an XPath 1.0 expression with no variable bindings.
func Parse(src string) (Expr, error) { return ParseWithVars(src, nil) }

// ParseWithVars parses an XPath 1.0 expression, replacing each variable
// reference by the constant value of the input binding (Section 2.2).
// Unbound variables are an error.
func ParseWithVars(src string, vars map[string]VarBinding) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks, vars: vars}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after complete expression", p.peek())
	}
	return e, nil
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokenKind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errorf("expected %s, found %s", what, p.peek())
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Input: p.src, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// parseExpr parses OrExpr, the grammar's start symbol for expressions.
func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(0)
}

// binOpFor maps the lookahead token to a binary operator at the given
// precedence level. Levels: 0 or, 1 and, 2 equality, 3 relational,
// 4 additive, 5 multiplicative.
func binOpFor(t token, level int) (BinOp, bool) {
	switch level {
	case 0:
		if t.kind == tokOr {
			return OpOr, true
		}
	case 1:
		if t.kind == tokAnd {
			return OpAnd, true
		}
	case 2:
		switch t.kind {
		case tokEq:
			return OpEq, true
		case tokNeq:
			return OpNeq, true
		}
	case 3:
		switch t.kind {
		case tokLt:
			return OpLt, true
		case tokLe:
			return OpLe, true
		case tokGt:
			return OpGt, true
		case tokGe:
			return OpGe, true
		}
	case 4:
		switch t.kind {
		case tokPlus:
			return OpAdd, true
		case tokMinus:
			return OpSub, true
		}
	case 5:
		switch t.kind {
		case tokStar:
			return OpMul, true
		case tokDiv:
			return OpDiv, true
		case tokMod:
			return OpMod, true
		}
	}
	return 0, false
}

// parseBinary parses left-associative binary operator levels; below the
// multiplicative level it hands off to UnaryExpr.
func (p *parser) parseBinary(level int) (Expr, error) {
	if level > 5 {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := binOpFor(p.peek(), level)
		if !ok {
			return left, nil
		}
		p.advance()
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

// parseUnary parses UnaryExpr ::= UnionExpr | '-' UnaryExpr.
func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokMinus) {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Negate{E: e}, nil
	}
	return p.parseUnion()
}

// parseUnion parses UnionExpr ::= PathExpr ('|' PathExpr)*.
func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if !p.at(tokUnion) {
		return first, nil
	}
	paths := []Expr{first}
	for p.accept(tokUnion) {
		next, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		paths = append(paths, next)
	}
	for _, e := range paths {
		if e.ResultType() != TypeNodeSet {
			return nil, p.errorf("operand of '|' must be a node set, got %s", e.ResultType())
		}
	}
	return &Union{Paths: paths}, nil
}

// startsStep reports whether the lookahead can begin a location step.
func (p *parser) startsStep() bool {
	switch p.peek().kind {
	case tokDot, tokDotDot, tokAt, tokStar, tokName:
		return true
	}
	return false
}

// startsFilter reports whether the lookahead begins a FilterExpr: a primary
// expression. An NCName followed by '(' is a function call unless it is a
// node-type name.
func (p *parser) startsFilter() bool {
	switch p.peek().kind {
	case tokVariable, tokLParen, tokLiteral, tokNumber:
		return true
	case tokName:
		if p.toks[p.pos+1].kind == tokLParen && !isNodeType(p.peek().text) {
			return true
		}
	}
	return false
}

func isNodeType(name string) bool {
	switch name {
	case "node", "text", "comment", "processing-instruction":
		return true
	}
	return false
}

// parsePath parses PathExpr ::= LocationPath
// | FilterExpr (('/'|'//') RelativeLocationPath)?.
func (p *parser) parsePath() (Expr, error) {
	if p.startsFilter() {
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var preds []Expr
		for p.at(tokLBracket) {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			preds = append(preds, pred)
		}
		hasPathTail := p.at(tokSlash) || p.at(tokDoubleSlash)
		if len(preds) == 0 && !hasPathTail {
			return prim, nil
		}
		if prim.ResultType() != TypeNodeSet {
			return nil, p.errorf("predicates and '/' require a node-set primary, got %s", prim.ResultType())
		}
		path := &Path{Filter: prim, FPreds: preds}
		if err := p.parseStepsInto(path); err != nil {
			return nil, err
		}
		return path, nil
	}

	// LocationPath.
	path := &Path{}
	switch {
	case p.at(tokSlash):
		path.Abs = true
		p.advance()
		if !p.startsStep() {
			// Bare "/" selects the document root.
			return path, nil
		}
		if err := p.parseStepList(path); err != nil {
			return nil, err
		}
		return path, nil
	case p.at(tokDoubleSlash):
		path.Abs = true
		p.advance()
		path.Steps = append(path.Steps, descendantOrSelfNodeStep())
		if err := p.parseStepList(path); err != nil {
			return nil, err
		}
		return path, nil
	case p.startsStep():
		if err := p.parseStepList(path); err != nil {
			return nil, err
		}
		return path, nil
	}
	return nil, p.errorf("expected an expression, found %s", p.peek())
}

// parseStepsInto parses the ('/'|'//') RelativeLocationPath tail of a
// FilterExpr-headed path.
func (p *parser) parseStepsInto(path *Path) error {
	for {
		switch {
		case p.accept(tokSlash):
		case p.accept(tokDoubleSlash):
			path.Steps = append(path.Steps, descendantOrSelfNodeStep())
		default:
			return nil
		}
		step, err := p.parseStep()
		if err != nil {
			return err
		}
		path.Steps = append(path.Steps, step)
	}
}

// parseStepList parses Step (('/'|'//') Step)*.
func (p *parser) parseStepList(path *Path) error {
	step, err := p.parseStep()
	if err != nil {
		return err
	}
	path.Steps = append(path.Steps, step)
	for {
		switch {
		case p.accept(tokSlash):
		case p.accept(tokDoubleSlash):
			path.Steps = append(path.Steps, descendantOrSelfNodeStep())
		default:
			return nil
		}
		step, err := p.parseStep()
		if err != nil {
			return err
		}
		path.Steps = append(path.Steps, step)
	}
}

func descendantOrSelfNodeStep() *Step {
	return &Step{Axis: axes.DescendantOrSelf, Test: NodeTest{Kind: TestNode}}
}

// parseStep parses one location step, including the abbreviations '.', '..'
// and the default child axis.
func (p *parser) parseStep() (*Step, error) {
	switch {
	case p.accept(tokDot):
		return &Step{Axis: axes.Self, Test: NodeTest{Kind: TestNode}}, nil
	case p.accept(tokDotDot):
		return &Step{Axis: axes.Parent, Test: NodeTest{Kind: TestNode}}, nil
	case p.at(tokAt):
		return nil, p.errorf("the attribute axis is outside the paper's data model (§2.1)")
	}

	axis := axes.Child
	if p.at(tokName) && p.toks[p.pos+1].kind == tokAxisSep {
		name := p.advance().text
		p.advance() // '::'
		switch name {
		case "attribute", "namespace":
			return nil, p.errorf("the %s axis is outside the paper's data model (§2.1)", name)
		}
		a, ok := axes.ByName(name)
		if !ok || a == axes.ID {
			return nil, p.errorf("unknown axis %q", name)
		}
		axis = a
	}

	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	step := &Step{Axis: axis, Test: test}
	for p.at(tokLBracket) {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

// parseNodeTest parses NameTest | 'node' '(' ')'. The text(), comment() and
// processing-instruction() node tests address node kinds the paper's
// single-kind data model does not have.
func (p *parser) parseNodeTest() (NodeTest, error) {
	if p.accept(tokStar) {
		return NodeTest{Kind: TestStar}, nil
	}
	tok, err := p.expect(tokName, "a node test")
	if err != nil {
		return NodeTest{}, err
	}
	if p.at(tokLParen) {
		switch tok.text {
		case "node":
			p.advance()
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return NodeTest{}, err
			}
			return NodeTest{Kind: TestNode}, nil
		case "text", "comment", "processing-instruction":
			return NodeTest{}, p.errorf("node test %s() is outside the paper's single-kind data model (§2.1)", tok.text)
		default:
			return NodeTest{}, p.errorf("unexpected '(' after node test %q", tok.text)
		}
	}
	return NodeTest{Kind: TestName, Name: tok.text}, nil
}

// parsePredicate parses '[' Expr ']'.
func (p *parser) parsePredicate() (Expr, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return nil, err
	}
	return e, nil
}

// parsePrimary parses PrimaryExpr ::= VariableReference | '(' Expr ')' |
// Literal | Number | FunctionCall.
func (p *parser) parsePrimary() (Expr, error) {
	switch p.peek().kind {
	case tokVariable:
		tok := p.advance()
		b, ok := p.vars[tok.text]
		if !ok {
			return nil, &ParseError{Input: p.src, Pos: tok.pos,
				Msg: fmt.Sprintf("unbound variable $%s (§2.2 requires an input binding)", tok.text)}
		}
		switch b.Type {
		case TypeNumber:
			return &NumberLit{Val: b.Num}, nil
		case TypeString:
			return &StringLit{Val: b.Str}, nil
		case TypeBoolean:
			if b.Bool {
				return &Call{Fn: FnTrue}, nil
			}
			return &Call{Fn: FnFalse}, nil
		default:
			return nil, &ParseError{Input: p.src, Pos: tok.pos,
				Msg: "node-set variable bindings are not supported"}
		}
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLiteral:
		return &StringLit{Val: p.advance().text}, nil
	case tokNumber:
		return &NumberLit{Val: p.advance().num}, nil
	case tokName:
		return p.parseFunctionCall()
	}
	return nil, p.errorf("expected a primary expression, found %s", p.peek())
}

// parseFunctionCall parses name '(' (Expr (',' Expr)*)? ')' and checks the
// call against the core-library signature.
func (p *parser) parseFunctionCall() (Expr, error) {
	tok := p.advance()
	fn, ok := FuncByName(tok.text)
	if !ok {
		return nil, &ParseError{Input: p.src, Pos: tok.pos,
			Msg: fmt.Sprintf("unknown function %s()", tok.text)}
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.at(tokRParen) {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	call := &Call{Fn: fn, Args: args}
	if err := checkSignature(call); err != nil {
		return nil, &ParseError{Input: p.src, Pos: tok.pos, Msg: err.Error()}
	}
	return call, nil
}

// checkSignature validates arity and those argument types that XPath 1.0
// fixes statically (node-set-only parameters). Scalar parameters accept any
// type; the implicit conversions of the REC are applied by normalization
// and by the effective semantics function F at evaluation time.
func checkSignature(c *Call) error {
	arity := func(min, max int) error {
		if len(c.Args) < min || len(c.Args) > max {
			if min == max {
				return fmt.Errorf("%s() expects %d argument(s), got %d", c.Fn, min, len(c.Args))
			}
			return fmt.Errorf("%s() expects %d to %d arguments, got %d", c.Fn, min, max, len(c.Args))
		}
		return nil
	}
	needNodeSet := func(i int) error {
		if c.Args[i].ResultType() != TypeNodeSet {
			return fmt.Errorf("argument %d of %s() must be a node set, got %s",
				i+1, c.Fn, c.Args[i].ResultType())
		}
		return nil
	}
	switch c.Fn {
	case FnLast, FnPosition, FnTrue, FnFalse:
		return arity(0, 0)
	case FnCount, FnSum:
		if err := arity(1, 1); err != nil {
			return err
		}
		return needNodeSet(0)
	case FnID:
		return arity(1, 1)
	case FnLocalName, FnName:
		if err := arity(0, 1); err != nil {
			return err
		}
		if len(c.Args) == 1 {
			return needNodeSet(0)
		}
		return nil
	case FnString, FnNumber, FnNormalizeSpace:
		return arity(0, 1)
	case FnBoolean, FnNot, FnLang, FnStringLength, FnFloor, FnCeiling, FnRound:
		if c.Fn == FnStringLength || c.Fn == FnLang {
			if c.Fn == FnLang {
				return arity(1, 1)
			}
			return arity(0, 1)
		}
		return arity(1, 1)
	case FnConcat:
		if len(c.Args) < 2 {
			return fmt.Errorf("concat() expects at least 2 arguments, got %d", len(c.Args))
		}
		return nil
	case FnStartsWith, FnContains, FnSubstringBefore, FnSubstringAfter:
		return arity(2, 2)
	case FnSubstring:
		return arity(2, 3)
	case FnTranslate:
		return arity(3, 3)
	}
	return fmt.Errorf("unhandled function %s()", c.Fn)
}
