package syntax

import (
	"repro/internal/axes"
)

// normalize rewrites a raw parse tree into the normal form the paper's
// algorithms assume (§2.2: "W.l.o.g., we assume that all type conversions
// are made explicit"):
//
//  1. id(e) with a node-set argument becomes a location path ending in the
//     id-"axis" step of Section 4 (id(id(π)) ⇒ π/id/id).
//  2. Numeric predicates [e] become [position() = e]; string and node-set
//     predicates become [boolean(e)] (the implicit conversions of the REC).
//  3. nset RelOp bool is rewritten to boolean(nset) RelOp bool, matching
//     F[[RelOp : nset × bool]] of Figure 1.
//  4. Unions are flattened, and — per Section 4 — boolean(π1|…|πk) becomes
//     boolean(π1) or … or boolean(πk), and (π1|…|πk) RelOp s becomes
//     (π1 RelOp s) or … or (πk RelOp s) when the other operand is scalar.
//
// The rewrites are semantics-preserving for all of XPath 1.0 (the union
// distributions hold because RelOp over node sets is existential).
func normalize(e Expr) Expr {
	switch e := e.(type) {
	case *NumberLit, *StringLit:
		return e

	case *Negate:
		e.E = normalize(e.E)
		return e

	case *Call:
		for i := range e.Args {
			e.Args[i] = normalize(e.Args[i])
		}
		if e.Fn == FnID && len(e.Args) == 1 && e.Args[0].ResultType() == TypeNodeSet {
			return appendIDStep(e.Args[0])
		}
		if e.Fn == FnBoolean {
			if u, ok := e.Args[0].(*Union); ok {
				return orChain(u.Paths, func(p Expr) Expr {
					return &Call{Fn: FnBoolean, Args: []Expr{p}}
				})
			}
		}
		// Make the node-set-to-scalar conversions of typed parameters
		// explicit (§2.2): a node-set argument in a boolean/string/number
		// parameter position becomes boolean(π)/string(π)/number(π).
		for i := range e.Args {
			if e.Args[i].ResultType() != TypeNodeSet {
				continue
			}
			switch paramKind(e.Fn, i) {
			case TypeBoolean:
				e.Args[i] = normalize(&Call{Fn: FnBoolean, Args: []Expr{e.Args[i]}})
			case TypeString:
				e.Args[i] = normalize(&Call{Fn: FnString, Args: []Expr{e.Args[i]}})
			case TypeNumber:
				e.Args[i] = normalize(&Call{Fn: FnNumber, Args: []Expr{e.Args[i]}})
			}
		}
		return e

	case *Binary:
		e.L = normalize(e.L)
		e.R = normalize(e.R)
		if !e.Op.IsRelational() {
			return e
		}
		lt, rt := e.L.ResultType(), e.R.ResultType()
		// Rewrite 3: nset RelOp bool ⇒ boolean(nset) RelOp bool.
		if lt == TypeNodeSet && rt == TypeBoolean {
			e.L = normalize(&Call{Fn: FnBoolean, Args: []Expr{e.L}})
			lt = TypeBoolean
		}
		if rt == TypeNodeSet && lt == TypeBoolean {
			e.R = normalize(&Call{Fn: FnBoolean, Args: []Expr{e.R}})
			rt = TypeBoolean
		}
		// Rewrite 4: distribute a union operand over the comparison when
		// the other side is scalar. The scalar is deep-copied into each
		// branch: parse-tree nodes must stay unshared so the dense ID
		// numbering (and with it per-node tables) remains well-defined.
		if u, ok := e.L.(*Union); ok && rt != TypeNodeSet {
			op, r := e.Op, e.R
			return orChain(u.Paths, func(p Expr) Expr {
				return &Binary{Op: op, L: p, R: cloneExpr(r)}
			})
		}
		if u, ok := e.R.(*Union); ok && lt != TypeNodeSet {
			op, l := e.Op, e.L
			return orChain(u.Paths, func(p Expr) Expr {
				return &Binary{Op: op, L: cloneExpr(l), R: p}
			})
		}
		return e

	case *Union:
		var flat []Expr
		for _, p := range e.Paths {
			p = normalize(p)
			if inner, ok := p.(*Union); ok {
				flat = append(flat, inner.Paths...)
			} else {
				flat = append(flat, p)
			}
		}
		e.Paths = flat
		return e

	case *Path:
		if e.Filter != nil {
			e.Filter = normalize(e.Filter)
			// A normalized filter may itself have become a path (id()
			// rewriting); merge step lists so that MINCONTEXT sees one
			// location path rather than a nested head.
			if fp, ok := e.Filter.(*Path); ok && len(e.FPreds) == 0 {
				merged := &Path{Abs: fp.Abs, Filter: fp.Filter, FPreds: fp.FPreds}
				merged.Steps = append(merged.Steps, fp.Steps...)
				merged.Steps = append(merged.Steps, e.Steps...)
				e = merged
			}
		}
		for i := range e.FPreds {
			e.FPreds[i] = normalizePredicate(e.FPreds[i])
		}
		for _, s := range e.Steps {
			for i := range s.Preds {
				s.Preds[i] = normalizePredicate(s.Preds[i])
			}
		}
		return e

	case *Step:
		// Steps are normalized via their owning Path.
		return e
	}
	panic("syntax: normalize: unhandled expression")
}

// normalizePredicate applies the implicit predicate conversions of the REC:
// a number predicate tests the context position, any other non-boolean
// predicate is wrapped in boolean().
func normalizePredicate(e Expr) Expr {
	e = normalize(e)
	switch e.ResultType() {
	case TypeBoolean:
		return e
	case TypeNumber:
		return normalize(&Binary{Op: OpEq, L: &Call{Fn: FnPosition}, R: e})
	default:
		return normalize(&Call{Fn: FnBoolean, Args: []Expr{e}})
	}
}

// paramKind returns the declared scalar type of parameter i of fn, or
// TypeNodeSet when the parameter accepts node sets (or any type) unchanged.
func paramKind(fn Func, i int) Type {
	switch fn {
	case FnNot:
		return TypeBoolean
	case FnStartsWith, FnContains, FnSubstringBefore, FnSubstringAfter,
		FnConcat, FnStringLength, FnNormalizeSpace, FnTranslate, FnLang:
		return TypeString
	case FnSubstring:
		if i == 0 {
			return TypeString
		}
		return TypeNumber
	case FnFloor, FnCeiling, FnRound:
		return TypeNumber
	}
	// boolean/string/number/count/sum/id/name/local-name take node sets (or
	// any type) directly.
	return TypeNodeSet
}

// appendIDStep turns a node-set expression into the same expression followed
// by one id-axis location step (the id-"axis" rewriting of Section 4).
func appendIDStep(e Expr) Expr {
	idStep := &Step{Axis: axes.ID, Test: NodeTest{Kind: TestNode}}
	if p, ok := e.(*Path); ok {
		p.Steps = append(p.Steps, idStep)
		return p
	}
	return &Path{Filter: e, Steps: []*Step{idStep}}
}

// cloneExpr returns a structurally identical copy of a (normalized)
// expression with fresh, unshared nodes.
func cloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *NumberLit:
		return &NumberLit{Val: e.Val}
	case *StringLit:
		return &StringLit{Val: e.Val}
	case *Negate:
		return &Negate{E: cloneExpr(e.E)}
	case *Binary:
		return &Binary{Op: e.Op, L: cloneExpr(e.L), R: cloneExpr(e.R)}
	case *Call:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = cloneExpr(a)
		}
		return &Call{Fn: e.Fn, Args: args}
	case *Union:
		paths := make([]Expr, len(e.Paths))
		for i, p := range e.Paths {
			paths[i] = cloneExpr(p)
		}
		return &Union{Paths: paths}
	case *Path:
		out := &Path{Abs: e.Abs}
		if e.Filter != nil {
			out.Filter = cloneExpr(e.Filter)
		}
		for _, p := range e.FPreds {
			out.FPreds = append(out.FPreds, cloneExpr(p))
		}
		for _, s := range e.Steps {
			out.Steps = append(out.Steps, cloneExpr(s).(*Step))
		}
		return out
	case *Step:
		out := &Step{Axis: e.Axis, Test: e.Test}
		for _, p := range e.Preds {
			out.Preds = append(out.Preds, cloneExpr(p))
		}
		return out
	}
	panic("syntax: cloneExpr: unhandled expression")
}

// orChain builds f(e1) or f(e2) or … or f(ek), left-associated.
func orChain(exprs []Expr, f func(Expr) Expr) Expr {
	out := normalize(f(exprs[0]))
	for _, e := range exprs[1:] {
		out = &Binary{Op: OpOr, L: out, R: normalize(f(e))}
	}
	return out
}
