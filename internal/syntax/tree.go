package syntax

import (
	"fmt"
	"io"
	"strings"
)

// kindLabel returns a short human-readable label for a parse-tree node, in
// the style of the paper's Figure 3/6 node annotations.
func kindLabel(e Expr) string {
	switch e := e.(type) {
	case *NumberLit:
		return e.String()
	case *StringLit:
		return e.String()
	case *Binary:
		return e.Op.String()
	case *Negate:
		return "unary -"
	case *Call:
		return e.Fn.String() + "()"
	case *Union:
		return "|"
	case *Path:
		switch {
		case e.Filter != nil:
			return "path (filter head)"
		case e.Abs:
			return "path (absolute)"
		default:
			return "path (relative)"
		}
	case *Step:
		if e.Axis.String() == "id" {
			return "step id"
		}
		return "step " + e.Axis.String() + "::" + e.Test.String()
	}
	return "?"
}

// TreeString renders the normalized parse tree T as an indented outline
// with the node IDs and Relev(N) annotations — the textual counterpart of
// the paper's Figure 3 and Figure 6 parse-tree drawings.
func (q *Query) TreeString() string {
	var b strings.Builder
	var walk func(e Expr, depth int)
	walk = func(e Expr, depth int) {
		fmt.Fprintf(&b, "%sN%-3d %-28s Relev=%-12s %s\n",
			strings.Repeat("  ", depth), e.ID(), kindLabel(e),
			q.Relev[e.ID()].String(), abbreviate(e.String(), 60))
		for _, c := range e.children() {
			walk(c, depth+1)
		}
	}
	walk(q.Root, 0)
	return b.String()
}

// WriteDot emits the parse tree in Graphviz DOT format, one node per
// parse-tree node labeled with its ID, kind and Relev set. Rendering it
// reproduces the shape of the paper's Figure 3 (the §2.4 query) and
// Figure 6 (the Example 9 query).
func (q *Query) WriteDot(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph parsetree {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, `  node [shape=box, fontname="monospace"];`); err != nil {
		return err
	}
	var walk func(e Expr) error
	walk = func(e Expr) error {
		label := fmt.Sprintf("N%d\\n%s\\nRelev=%s",
			e.ID(), escapeDot(kindLabel(e)), q.Relev[e.ID()])
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", e.ID(), label); err != nil {
			return err
		}
		for _, c := range e.children() {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", e.ID(), c.ID()); err != nil {
				return err
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(q.Root); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func abbreviate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func escapeDot(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(s)
}
