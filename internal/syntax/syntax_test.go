package syntax

import (
	"strings"
	"testing"

	"repro/internal/axes"
)

func compile(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return q
}

func TestParseBasicShapes(t *testing.T) {
	cases := map[string]string{
		// Abbreviations expand to unabbreviated form.
		`//b`:      `/descendant-or-self::node()/child::b`,
		`a/b`:      `child::a/child::b`,
		`.`:        `self::node()`,
		`..`:       `parent::node()`,
		`a//b`:     `child::a/descendant-or-self::node()/child::b`,
		`/`:        `/`,
		`./a`:      `self::node()/child::a`,
		`a[2]`:     `child::a[(position() = 2)]`,
		`a[b]`:     `child::a[boolean(child::b)]`,
		`a[b="x"]`: `child::a[(child::b = "x")]`,
		// Operators and precedence.
		`1+2*3`:         `(1 + (2 * 3))`,
		`(1+2)*3`:       `((1 + 2) * 3)`,
		`1<2 or 2>=3`:   `((1 < 2) or (2 >= 3))`,
		`-a`:            `-(child::a)`,
		`2 div 4 mod 3`: `((2 div 4) mod 3)`,
		// Unions.
		`a|b|c`: `child::a | child::b | child::c`,
		// Functions.
		`count(//a)`: `count(/descendant-or-self::node()/child::a)`,
		`not(a)`:     `not(boolean(child::a))`,
	}
	for src, want := range cases {
		q := compile(t, src)
		if got := q.Root.String(); got != want {
			t.Errorf("Compile(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// The normalized rendering must re-parse to the same rendering.
	queries := []string{
		`//b/c[position() != last()][. = 100]`,
		`/descendant::*[position() > last()*0.5 or self::* = 100]`,
		`id("a b")/child::c | //d[preceding::c]`,
		`count(//a[b][c]) + sum(//d) * 2`,
		`(//a | //b)[3]/child::*[not(self::c)]`,
		`substring(concat(string(//a), "x"), 2, 3)`,
		`boolean(//a[.//b = //c])`,
	}
	for _, src := range queries {
		q1 := compile(t, src)
		q2 := compile(t, q1.Root.String())
		if q1.Root.String() != q2.Root.String() {
			t.Errorf("round trip diverged:\n  1: %s\n  2: %s", q1.Root, q2.Root)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `/a/`, `a[`, `a]`, `a[]`, `)`, `a b`, `1 +`, `"unterminated`,
		`@href`, `attribute::x`, `namespace::x`, `text()`, `comment()`,
		`processing-instruction()`, `$unbound`, `unknown-fn()`, `a:b`,
		`count()`, `count(1)`, `position(1)`, `substring("x")`, `!`,
		`a!b`, `id()`, `concat("a")`, `translate("a","b")`, `..b`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestVariableBinding(t *testing.T) {
	vars := map[string]VarBinding{
		"n": NumberVar(3),
		"s": StringVar("abc"),
		"b": BoolVar(true),
	}
	q, err := CompileWithVars(`//a[position() = $n][$b]/child::*[. = $s]`, vars)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(q.Root.String(), "$") {
		t.Errorf("variables not substituted: %s", q.Root)
	}
	if _, err := Compile(`//a[$x]`); err == nil {
		t.Error("unbound variable must fail")
	}
}

func TestNormalizeIDRewriting(t *testing.T) {
	// id(nset) becomes a path with an id-axis step (§4).
	q := compile(t, `id(//a)`)
	p, ok := q.Root.(*Path)
	if !ok {
		t.Fatalf("id(//a) should normalize to a path, got %T", q.Root)
	}
	last := p.Steps[len(p.Steps)-1]
	if last.Axis != axes.ID {
		t.Errorf("last step axis = %v, want id", last.Axis)
	}
	// Nested id calls chain.
	q2 := compile(t, `id(id(//a))`)
	p2 := q2.Root.(*Path)
	n := 0
	for _, s := range p2.Steps {
		if s.Axis == axes.ID {
			n++
		}
	}
	if n != 2 {
		t.Errorf("id(id(π)) should have 2 id steps, got %d", n)
	}
	// id(string) stays a call (Restriction 3 shape).
	q3 := compile(t, `id("x")`)
	if _, ok := q3.Root.(*Call); !ok {
		t.Errorf("id(str) should stay a call, got %T", q3.Root)
	}
}

func TestNormalizeUnionDistribution(t *testing.T) {
	q := compile(t, `boolean(//a | //b)`)
	if got := q.Root.String(); got != `(boolean(/descendant-or-self::node()/child::a) or boolean(/descendant-or-self::node()/child::b))` {
		t.Errorf("boolean(union) not distributed: %s", got)
	}
	q2 := compile(t, `(//a | //b) = 5`)
	if b, ok := q2.Root.(*Binary); !ok || b.Op != OpOr {
		t.Errorf("(union = scalar) not distributed: %s", q2.Root)
	}
	// nset RelOp bool becomes boolean(nset) RelOp bool.
	q3 := compile(t, `//a = true()`)
	b3 := q3.Root.(*Binary)
	if c, ok := b3.L.(*Call); !ok || c.Fn != FnBoolean {
		t.Errorf("nset=bool not rewritten: %s", q3.Root)
	}
}

// TestExample3Relev reproduces Example 3: the Relev sets of the parse tree
// of the §2.4 query.
func TestExample3Relev(t *testing.T) {
	q := compile(t, `/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]`)
	find := func(pred func(Expr) bool) Expr {
		for _, e := range q.Nodes {
			if pred(e) {
				return e
			}
		}
		t.Fatal("node not found")
		return nil
	}
	// N1 (the whole path) and the steps: {'cn'}.
	if got := q.RelevOf(q.Root); got != CN {
		t.Errorf("Relev(N1) = %v, want {cn}", got)
	}
	// N3: position() > last()*0.5 or self::* = 100 → {cn,cp,cs}.
	n3 := find(func(e Expr) bool {
		b, ok := e.(*Binary)
		return ok && b.Op == OpOr
	})
	if got := q.RelevOf(n3); got != CN|CP|CS {
		t.Errorf("Relev(N3) = %v, want {cn,cp,cs}", got)
	}
	// N4: position() > last()*0.5 → {cp,cs}.
	n4 := find(func(e Expr) bool {
		b, ok := e.(*Binary)
		return ok && b.Op == OpGt
	})
	if got := q.RelevOf(n4); got != CP|CS {
		t.Errorf("Relev(N4) = %v, want {cp,cs}", got)
	}
	// N5: self::* = 100 → {cn}.
	n5 := find(func(e Expr) bool {
		b, ok := e.(*Binary)
		return ok && b.Op == OpEq
	})
	if got := q.RelevOf(n5); got != CN {
		t.Errorf("Relev(N5) = %v, want {cn}", got)
	}
	// N6: position() → {cp};  N7: last()*0.5 → {cs};  N9: 100 → ∅.
	n6 := find(func(e Expr) bool { c, ok := e.(*Call); return ok && c.Fn == FnPosition })
	if got := q.RelevOf(n6); got != CP {
		t.Errorf("Relev(position()) = %v, want {cp}", got)
	}
	n7 := find(func(e Expr) bool {
		b, ok := e.(*Binary)
		return ok && b.Op == OpMul
	})
	if got := q.RelevOf(n7); got != CS {
		t.Errorf("Relev(last()*0.5) = %v, want {cs}", got)
	}
	n9 := find(func(e Expr) bool {
		n, ok := e.(*NumberLit)
		return ok && n.Val == 100
	})
	if got := q.RelevOf(n9); got != 0 {
		t.Errorf("Relev(100) = %v, want ∅", got)
	}
}

func TestRelevContextFunctions(t *testing.T) {
	cases := map[string]Ctx{
		`string()`:          CN,
		`string(5)`:         0,
		`normalize-space()`: CN,
		`true()`:            0,
		`"lit"`:             0,
		`last()`:            CS,
		`position()+last()`: CP | CS,
		`count(//a)`:        CN, // paths carry {'cn'} even when absolute (§3.1)
	}
	for src, want := range cases {
		q := compile(t, src)
		if got := q.RelevOf(q.Root); got != want {
			t.Errorf("Relev(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestFragmentClassification(t *testing.T) {
	core := []string{
		`/descendant::b[child::c]/child::d`,
		`//a`, `a/b/c`, `//*[not(child::a) and descendant::b]`,
		`/child::a[child::b or child::c]`,
	}
	wadler := []string{
		`/descendant::*[position() > last()*0.5 or self::* = 100]`,
		`//b[c = 100]`,
		`//b[boolean(c)]/d[position() != last()]`,
		`id("x")/child::a`,
		`//a[. = "txt"]`,
		`/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]`,
	}
	full := []string{
		`//a[count(b) > 1]`,            // Restriction 2: count
		`//a[sum(b) = 5]`,              // Restriction 2: sum
		`//a[b = //c]`,                 // Restriction 2: nset RelOp nset
		`//a[b = position()]`,          // Restriction 2: scalar depends on context
		`//a[string() = "x"]`,          // Restriction 1: string()
		`//a[string-length(.) > 2]`,    // Restriction 1 (and nset arg)
		`id(string(//a))`,              // Restriction 1 inside id
		`//a[name() = "a"]`,            // Restriction 1: name
		`count(//a)`,                   // count anywhere
		`//a[normalize-space() = "x"]`, // Restriction 1
		`(//a)[2]`,                     // filter-headed path
		`//a[id(string(.)) = "x"]`,     // id of context-dependent string
	}
	for _, src := range core {
		if q := compile(t, src); q.Fragment != FragmentCoreXPath {
			t.Errorf("%q classified %v, want core-xpath", src, q.Fragment)
		}
	}
	for _, src := range wadler {
		if q := compile(t, src); q.Fragment != FragmentExtendedWadler {
			t.Errorf("%q classified %v, want extended-wadler", src, q.Fragment)
		}
	}
	for _, src := range full {
		if q := compile(t, src); q.Fragment != FragmentFullXPath {
			t.Errorf("%q classified %v, want full-xpath", src, q.Fragment)
		}
	}
}

func TestBottomUpDetection(t *testing.T) {
	// boolean(π) and π RelOp const are bottom-up nodes; innermost first.
	q := compile(t, `//a[boolean(b[c = 100])]`)
	if len(q.BottomUp) != 2 {
		t.Fatalf("BottomUp = %v, want 2 nodes", q.BottomUp)
	}
	// Innermost (c = 100) must come first.
	first := q.Node(q.BottomUp[0])
	if b, ok := first.(*Binary); !ok || b.Op != OpEq {
		t.Errorf("first bottom-up node = %s, want (c = 100)", first)
	}
	pi, op, scalar := q.BottomUpPath(q.BottomUp[0])
	if pi == nil || op != OpEq || scalar == nil {
		t.Errorf("BottomUpPath: %v %v %v", pi, op, scalar)
	}
	pi2, _, scalar2 := q.BottomUpPath(q.BottomUp[1])
	if pi2 == nil || scalar2 != nil {
		t.Errorf("outer boolean(π): %v %v", pi2, scalar2)
	}
	// Context-dependent scalar disqualifies.
	q2 := compile(t, `//a[b = position()]`)
	if len(q2.BottomUp) != 0 {
		t.Errorf("π RelOp position() must not be bottom-up: %v", q2.BottomUp)
	}
	// Filter-headed paths disqualify.
	q3 := compile(t, `//a[boolean((//b)[2])]`)
	if len(q3.BottomUp) != 0 {
		t.Errorf("filter-headed π must not be bottom-up: %v", q3.BottomUp)
	}
	// Scalar side may be a context-independent nset like id("k").
	q4 := compile(t, `//a[b = id("k")]`)
	if len(q4.BottomUp) != 1 {
		t.Errorf("π RelOp id(const) should be bottom-up: %v", q4.BottomUp)
	}
}

func TestQuerySizeAndIDs(t *testing.T) {
	q := compile(t, `//a[b]/c`)
	if q.Size() != len(q.Nodes) {
		t.Error("Size mismatch")
	}
	for i, e := range q.Nodes {
		if e.ID() != i {
			t.Errorf("node %d has ID %d", i, e.ID())
		}
	}
	if q.Size() < 5 {
		t.Errorf("surprisingly small parse tree: %d", q.Size())
	}
}

func TestLexerDisambiguation(t *testing.T) {
	// '*' as operator vs wildcard; operator names vs element names.
	ok := []string{
		`2*3`, `a/*`, `*/*`, `a[* > 2]`, `div/div`, `mod/child::mod`,
		`and/or`, `a and b`, `//and`, `a[and]`, `. * 2`, `last() * 0.5`,
	}
	for _, src := range ok {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
	// div as element then operator: `div div div` = (div) div (div).
	q := compile(t, `div div div`)
	if b, ok := q.Root.(*Binary); !ok || b.Op != OpDiv {
		t.Errorf("div div div parsed as %s", q.Root)
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := map[string]float64{
		`5`: 5, `5.5`: 5.5, `.5`: 0.5, `5.`: 5, `0.000`: 0,
	}
	for src, want := range cases {
		q := compile(t, src)
		n, ok := q.Root.(*NumberLit)
		if !ok || n.Val != want {
			t.Errorf("Compile(%q) = %v, want %v", src, q.Root, want)
		}
	}
}

func TestStringLiteralQuotes(t *testing.T) {
	q := compile(t, `concat('a"b', "c'd")`)
	c := q.Root.(*Call)
	if c.Args[0].(*StringLit).Val != `a"b` || c.Args[1].(*StringLit).Val != `c'd` {
		t.Errorf("quote handling: %s", q.Root)
	}
	// Rendering picks a non-conflicting quote and re-parses.
	q2 := compile(t, q.Root.String())
	if q2.Root.String() != q.Root.String() {
		t.Errorf("quote round trip: %s vs %s", q.Root, q2.Root)
	}
}
